// Package repro is GenomicsBench-Go: a from-scratch Go reproduction of
// the GenomicsBench benchmark suite (Subramaniyan et al., ISPASS 2021).
//
// The twelve kernels live under internal/<kernel>; the suite driver and
// experiment harness under internal/core; runnable binaries under cmd;
// worked examples under examples. The package-level bench_test.go holds
// one testing.B benchmark per paper table and figure.
package repro
