package nn

import (
	"math"
	"math/rand"
	"testing"
)

// A kernel-1, stride-1 convolution is exactly a dense layer applied per
// time step.
func TestConv1x1EqualsDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	conv := NewConv1D(rng, 8, 6, 1, 1, nil, "c1")
	dense := &Dense{W: conv.W[0].Clone(), B: append([]float32(nil), conv.B...), Name: "d"}
	x := RandomTensor(rng, 20, 8, 1)
	yc := conv.Forward(x)
	yd := dense.Forward(x)
	if yc.Rows != yd.Rows || yc.Cols != yd.Cols {
		t.Fatalf("shape mismatch (%d,%d) vs (%d,%d)", yc.Rows, yc.Cols, yd.Rows, yd.Cols)
	}
	for i := range yc.Data {
		if math.Abs(float64(yc.Data[i]-yd.Data[i])) > 1e-5 {
			t.Fatalf("element %d: conv %v dense %v", i, yc.Data[i], yd.Data[i])
		}
	}
}

// A separable convolution with an identity pointwise stage equals the
// depthwise stage alone; with identity depthwise taps it equals a
// dense layer.
func TestSeparableConvIdentityPointwise(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const ch = 5
	sep := NewSeparableConv1D(rng, ch, ch, 3, 1, nil, "sep")
	// Identity pointwise.
	for r := 0; r < ch; r++ {
		for c := 0; c < ch; c++ {
			v := float32(0)
			if r == c {
				v = 1
			}
			sep.Point.Set(r, c, v)
		}
	}
	for c := range sep.B {
		sep.B[c] = 0
	}
	x := RandomTensor(rng, 15, ch, 1)
	y := sep.Forward(x)
	// Manual depthwise computation.
	for o := 0; o < y.Rows; o++ {
		for chI := 0; chI < ch; chI++ {
			var want float32
			for k := 0; k < 3; k++ {
				tIdx := o + k - 1
				if tIdx < 0 || tIdx >= x.Rows {
					continue
				}
				want += x.At(tIdx, chI) * sep.Depth[k][chI]
			}
			if math.Abs(float64(y.At(o, chI)-want)) > 1e-5 {
				t.Fatalf("(%d,%d): got %v want %v", o, chI, y.At(o, chI), want)
			}
		}
	}
}

// LSTM state stays bounded regardless of input magnitude (gates
// saturate) — a stability property the variant caller depends on.
func TestLSTMBoundedUnderExtremeInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := NewLSTM(rng, 4, 6, "lstm")
	x := NewTensor(50, 4)
	for i := range x.Data {
		x.Data[i] = float32((rng.Float64() - 0.5) * 1e6)
	}
	y := l.Forward(x, false)
	for _, v := range y.Data {
		if v < -1 || v > 1 || math.IsNaN(float64(v)) {
			t.Fatalf("hidden state %v escaped [-1,1]", v)
		}
	}
}

// Softmax is invariant to additive shifts of a row (numerical
// stability path must not change results).
func TestSoftmaxShiftInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := RandomTensor(rng, 4, 6, 2)
	b := a.Clone()
	for r := 0; r < b.Rows; r++ {
		row := b.Row(r)
		for c := range row {
			row[c] += 1000
		}
	}
	a.Softmax()
	b.Softmax()
	for i := range a.Data {
		if math.Abs(float64(a.Data[i]-b.Data[i])) > 1e-5 {
			t.Fatalf("element %d: %v vs %v", i, a.Data[i], b.Data[i])
		}
	}
}
