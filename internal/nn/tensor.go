// Package nn is a minimal neural-network inference library built for
// the suite's two network kernels: nn-base (a Bonito-style separable
// convolution basecaller) and nn-variant (a Clair-style bidirectional
// LSTM variant caller). It implements exactly the layer set those
// models need — dense matrix multiply, 1-D and depthwise-separable
// convolutions, LSTM cells, batch norm, activations and CTC decoding —
// in float32 with deterministic seeded initialization.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense row-major 2-D float32 matrix (rows x cols). The
// sequence dimension is rows; feature channels are cols.
type Tensor struct {
	Rows, Cols int
	Data       []float32
}

// NewTensor allocates a zeroed rows x cols tensor.
func NewTensor(rows, cols int) *Tensor {
	return &Tensor{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// At returns element (r,c).
func (t *Tensor) At(r, c int) float32 { return t.Data[r*t.Cols+c] }

// Set assigns element (r,c).
func (t *Tensor) Set(r, c int, v float32) { t.Data[r*t.Cols+c] = v }

// Row returns a view of row r.
func (t *Tensor) Row(r int) []float32 { return t.Data[r*t.Cols : (r+1)*t.Cols] }

// Clone deep-copies the tensor.
func (t *Tensor) Clone() *Tensor {
	out := NewTensor(t.Rows, t.Cols)
	copy(out.Data, t.Data)
	return out
}

// RandomTensor fills a tensor with scaled uniform weights in
// [-scale, scale], Xavier-style when scale = 1/sqrt(fanIn).
func RandomTensor(rng *rand.Rand, rows, cols int, scale float64) *Tensor {
	t := NewTensor(rows, cols)
	for i := range t.Data {
		t.Data[i] = float32((rng.Float64()*2 - 1) * scale)
	}
	return t
}

// MatMul computes a @ b. Shapes must agree as (m,k)x(k,n).
func MatMul(a, b *Tensor) *Tensor {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("nn: MatMul shape mismatch (%d,%d)x(%d,%d)", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewTensor(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k := 0; k < a.Cols; k++ {
			av := arow[k]
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j := range orow {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// AddBias adds a length-Cols bias vector to every row in place.
func (t *Tensor) AddBias(bias []float32) {
	if len(bias) != t.Cols {
		panic("nn: bias length mismatch")
	}
	for r := 0; r < t.Rows; r++ {
		row := t.Row(r)
		for c := range row {
			row[c] += bias[c]
		}
	}
}

// Activation is an elementwise nonlinearity.
type Activation func(float32) float32

// ReLU clamps negatives to zero.
func ReLU(x float32) float32 {
	if x < 0 {
		return 0
	}
	return x
}

// Sigmoid is the logistic function.
func Sigmoid(x float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(x))))
}

// Tanh is the hyperbolic tangent.
func Tanh(x float32) float32 { return float32(math.Tanh(float64(x))) }

// Swish is x*sigmoid(x), Bonito's activation.
func Swish(x float32) float32 { return x * Sigmoid(x) }

// Apply maps the activation over the tensor in place and returns it.
func (t *Tensor) Apply(f Activation) *Tensor {
	for i, v := range t.Data {
		t.Data[i] = f(v)
	}
	return t
}

// Softmax normalizes each row into a probability distribution in place.
func (t *Tensor) Softmax() *Tensor {
	for r := 0; r < t.Rows; r++ {
		row := t.Row(r)
		maxV := row[0]
		for _, v := range row[1:] {
			if v > maxV {
				maxV = v
			}
		}
		var sum float32
		for c, v := range row {
			e := float32(math.Exp(float64(v - maxV)))
			row[c] = e
			sum += e
		}
		for c := range row {
			row[c] /= sum
		}
	}
	return t
}

// LogSoftmax converts each row to log-probabilities in place.
func (t *Tensor) LogSoftmax() *Tensor {
	for r := 0; r < t.Rows; r++ {
		row := t.Row(r)
		maxV := row[0]
		for _, v := range row[1:] {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - maxV))
		}
		logSum := float32(math.Log(sum)) + maxV
		for c := range row {
			row[c] -= logSum
		}
	}
	return t
}
