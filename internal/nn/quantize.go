package nn

import "math"

// Int8 quantized inference: production basecallers ship quantized
// models to trade a little accuracy for integer throughput. Weights
// quantize per-output-channel symmetrically to int8; activations
// quantize dynamically per tensor. The quantized path exists both as a
// deployment feature and as an ablation target (float vs int8 op mix).

// QuantizedDense is a Dense layer with int8 weights and per-column
// scales.
type QuantizedDense struct {
	W      []int8 // (in, out) row-major
	In     int
	Out    int
	Scales []float32 // per output column: w_float = w_int8 * scale
	B      []float32
	Act    Activation
	Name   string
}

// Quantize converts a Dense layer to int8.
func (d *Dense) Quantize() *QuantizedDense {
	in, out := d.W.Rows, d.W.Cols
	q := &QuantizedDense{
		W:      make([]int8, in*out),
		In:     in,
		Out:    out,
		Scales: make([]float32, out),
		B:      append([]float32(nil), d.B...),
		Act:    d.Act,
		Name:   d.Name + ".q8",
	}
	for c := 0; c < out; c++ {
		var maxAbs float32
		for r := 0; r < in; r++ {
			v := d.W.At(r, c)
			if v < 0 {
				v = -v
			}
			if v > maxAbs {
				maxAbs = v
			}
		}
		if maxAbs == 0 {
			q.Scales[c] = 1
			continue
		}
		scale := maxAbs / 127
		q.Scales[c] = scale
		for r := 0; r < in; r++ {
			q.W[r*out+c] = int8(roundf(d.W.At(r, c) / scale))
		}
	}
	return q
}

func roundf(v float32) float32 {
	return float32(math.Round(float64(v)))
}

// Forward runs the quantized layer: activations are dynamically
// quantized to int8, the matmul accumulates in int32, and the output
// dequantizes through the combined scales.
func (q *QuantizedDense) Forward(x *Tensor) *Tensor {
	if x.Cols != q.In {
		panic("nn: quantized dense shape mismatch")
	}
	// Dynamic activation quantization (per tensor, symmetric).
	var maxAbs float32
	for _, v := range x.Data {
		if v < 0 {
			v = -v
		}
		if v > maxAbs {
			maxAbs = v
		}
	}
	actScale := float32(1)
	if maxAbs > 0 {
		actScale = maxAbs / 127
	}
	xq := make([]int8, len(x.Data))
	for i, v := range x.Data {
		xq[i] = int8(roundf(v / actScale))
	}
	out := NewTensor(x.Rows, q.Out)
	for r := 0; r < x.Rows; r++ {
		xrow := xq[r*q.In : (r+1)*q.In]
		orow := out.Row(r)
		acc := make([]int32, q.Out)
		for k, xv := range xrow {
			if xv == 0 {
				continue
			}
			wrow := q.W[k*q.Out : (k+1)*q.Out]
			for c := range acc {
				acc[c] += int32(xv) * int32(wrow[c])
			}
		}
		for c := range orow {
			orow[c] = float32(acc[c])*actScale*q.Scales[c] + q.B[c]
			if q.Act != nil {
				orow[c] = q.Act(orow[c])
			}
		}
	}
	return out
}
