package nn

import "sort"

// CTC decoding for basecalling: the network emits per-timestep
// probabilities over {blank, A, C, G, T}; decoding collapses repeats and
// removes blanks to produce the called sequence. Class 0 is the blank.

// CTCGreedyDecode returns the best-path decoding of a (T, classes)
// probability (or logit) tensor: argmax per step, collapse runs, drop
// blanks. Output symbols are class-1 (so A=0 ... T=3 for 5 classes).
func CTCGreedyDecode(probs *Tensor) []byte {
	out := make([]byte, 0, probs.Rows/2)
	prev := -1
	for t := 0; t < probs.Rows; t++ {
		row := probs.Row(t)
		best := 0
		for c := 1; c < len(row); c++ {
			if row[c] > row[best] {
				best = c
			}
		}
		if best != prev && best != 0 {
			out = append(out, byte(best-1))
		}
		prev = best
	}
	return out
}

// ctcHyp is one beam-search hypothesis: probability mass split by
// whether the path ends in a blank.
type ctcHyp struct {
	seq               string
	pBlank, pNonBlank float64
}

// CTCBeamDecode performs prefix beam search over a (T, classes)
// probability tensor (rows must be normalized probabilities, e.g. after
// Softmax). beamWidth bounds the live hypothesis count.
func CTCBeamDecode(probs *Tensor, beamWidth int) []byte {
	if beamWidth < 1 {
		beamWidth = 1
	}
	beams := map[string]*ctcHyp{"": {seq: "", pBlank: 1}}
	for t := 0; t < probs.Rows; t++ {
		row := probs.Row(t)
		next := make(map[string]*ctcHyp, len(beams)*len(row))
		get := func(seq string) *ctcHyp {
			h, ok := next[seq]
			if !ok {
				h = &ctcHyp{seq: seq}
				next[seq] = h
			}
			return h
		}
		for _, h := range beams {
			total := h.pBlank + h.pNonBlank
			// Extend with blank: sequence unchanged.
			get(h.seq).pBlank += total * float64(row[0])
			for c := 1; c < len(row); c++ {
				p := float64(row[c])
				if p == 0 {
					continue
				}
				sym := byte('A' + c - 1)
				lastSame := len(h.seq) > 0 && h.seq[len(h.seq)-1] == sym
				if lastSame {
					// Repeat symbol: only paths ending in blank extend the
					// sequence; non-blank paths merge into the same sequence.
					get(h.seq).pNonBlank += h.pNonBlank * p
					get(h.seq + string(sym)).pNonBlank += h.pBlank * p
				} else {
					get(h.seq + string(sym)).pNonBlank += total * p
				}
			}
		}
		// Prune to beamWidth.
		hyps := make([]*ctcHyp, 0, len(next))
		for _, h := range next {
			hyps = append(hyps, h)
		}
		sort.Slice(hyps, func(i, j int) bool {
			return hyps[i].pBlank+hyps[i].pNonBlank > hyps[j].pBlank+hyps[j].pNonBlank
		})
		if len(hyps) > beamWidth {
			hyps = hyps[:beamWidth]
		}
		beams = make(map[string]*ctcHyp, len(hyps))
		for _, h := range hyps {
			beams[h.seq] = h
		}
	}
	var best *ctcHyp
	for _, h := range beams {
		if best == nil || h.pBlank+h.pNonBlank > best.pBlank+best.pNonBlank {
			best = h
		}
	}
	if best == nil {
		return nil
	}
	out := make([]byte, len(best.seq))
	for i := 0; i < len(best.seq); i++ {
		out[i] = best.seq[i] - 'A'
	}
	return out
}
