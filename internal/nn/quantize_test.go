package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestQuantizedDenseApproximatesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(rng, 64, 32, nil, "fc")
	q := d.Quantize()
	x := RandomTensor(rng, 10, 64, 1)
	yf := d.Forward(x)
	yq := q.Forward(x)
	if yq.Rows != yf.Rows || yq.Cols != yf.Cols {
		t.Fatalf("shape mismatch (%d,%d) vs (%d,%d)", yq.Rows, yq.Cols, yf.Rows, yf.Cols)
	}
	var maxErr, scaleRef float64
	for i := range yf.Data {
		e := math.Abs(float64(yf.Data[i] - yq.Data[i]))
		if e > maxErr {
			maxErr = e
		}
		if a := math.Abs(float64(yf.Data[i])); a > scaleRef {
			scaleRef = a
		}
	}
	// Int8 dual quantization: relative error should stay within a few
	// percent of the output range.
	if maxErr > 0.05*scaleRef {
		t.Errorf("max error %v vs output scale %v", maxErr, scaleRef)
	}
}

func TestQuantizedWeightsInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	q := NewDense(rng, 20, 10, nil, "fc").Quantize()
	for _, w := range q.W {
		if w == -128 {
			t.Fatal("weight at -128: symmetric quantization violated")
		}
	}
	if len(q.Scales) != 10 {
		t.Fatalf("scales per column: %d", len(q.Scales))
	}
	for _, s := range q.Scales {
		if s <= 0 {
			t.Fatal("non-positive scale")
		}
	}
}

func TestQuantizeZeroWeights(t *testing.T) {
	d := &Dense{W: NewTensor(4, 3), B: make([]float32, 3), Name: "zero"}
	q := d.Quantize()
	x := NewTensor(2, 4)
	for i := range x.Data {
		x.Data[i] = 1
	}
	y := q.Forward(x)
	for _, v := range y.Data {
		if v != 0 {
			t.Fatalf("zero layer output %v", v)
		}
	}
}

func TestQuantizedDenseActivation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := NewDense(rng, 16, 8, ReLU, "fc")
	q := d.Quantize()
	x := RandomTensor(rng, 5, 16, 1)
	y := q.Forward(x)
	for _, v := range y.Data {
		if v < 0 {
			t.Fatal("ReLU not applied in quantized path")
		}
	}
}

func TestQuantizedArgmaxAgreement(t *testing.T) {
	// For classification heads what matters is the argmax agreeing.
	rng := rand.New(rand.NewSource(4))
	d := NewDense(rng, 48, 5, nil, "head")
	q := d.Quantize()
	agree := 0
	const trials = 50
	for i := 0; i < trials; i++ {
		x := RandomTensor(rng, 1, 48, 1)
		yf := d.Forward(x).Row(0)
		yq := q.Forward(x).Row(0)
		if argmax(yf) == argmax(yq) {
			agree++
		}
	}
	if agree < trials*9/10 {
		t.Errorf("argmax agreement %d/%d below 90%%", agree, trials)
	}
}

func argmax(xs []float32) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}
