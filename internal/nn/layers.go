package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Dense is a fully connected layer y = act(xW + b).
type Dense struct {
	W    *Tensor // (in, out)
	B    []float32
	Act  Activation
	Name string
}

// NewDense builds a dense layer with Xavier-scaled random weights.
func NewDense(rng *rand.Rand, in, out int, act Activation, name string) *Dense {
	return &Dense{
		W:    RandomTensor(rng, in, out, 1/math.Sqrt(float64(in))),
		B:    make([]float32, out),
		Act:  act,
		Name: name,
	}
}

// Forward applies the layer to (T, in) producing (T, out).
func (d *Dense) Forward(x *Tensor) *Tensor {
	out := MatMul(x, d.W)
	out.AddBias(d.B)
	if d.Act != nil {
		out.Apply(d.Act)
	}
	return out
}

// Conv1D is a standard 1-D convolution over (T, inCh) with 'same'
// zero padding and configurable stride.
type Conv1D struct {
	// W[k] is the (inCh, outCh) weight slice for kernel offset k.
	W      []*Tensor
	B      []float32
	Kernel int
	Stride int
	Act    Activation
	Name   string
}

// NewConv1D builds a convolution with Xavier-scaled random weights.
func NewConv1D(rng *rand.Rand, inCh, outCh, kernel, stride int, act Activation, name string) *Conv1D {
	if kernel <= 0 || stride <= 0 {
		panic("nn: non-positive conv geometry")
	}
	w := make([]*Tensor, kernel)
	scale := 1 / math.Sqrt(float64(inCh*kernel))
	for k := range w {
		w[k] = RandomTensor(rng, inCh, outCh, scale)
	}
	return &Conv1D{W: w, B: make([]float32, outCh), Kernel: kernel, Stride: stride, Act: act, Name: name}
}

// OutLen reports the output length for an input of length t.
func (c *Conv1D) OutLen(t int) int {
	if t <= 0 {
		return 0
	}
	return (t + c.Stride - 1) / c.Stride
}

// Forward applies the convolution to (T, inCh) producing (OutLen(T), outCh).
func (c *Conv1D) Forward(x *Tensor) *Tensor {
	inCh := c.W[0].Rows
	outCh := c.W[0].Cols
	if x.Cols != inCh {
		panic(fmt.Sprintf("nn: %s: input channels %d, want %d", c.Name, x.Cols, inCh))
	}
	outLen := c.OutLen(x.Rows)
	out := NewTensor(outLen, outCh)
	half := (c.Kernel - 1) / 2
	for o := 0; o < outLen; o++ {
		center := o * c.Stride
		orow := out.Row(o)
		copy(orow, c.B)
		for k := 0; k < c.Kernel; k++ {
			tIdx := center + k - half
			if tIdx < 0 || tIdx >= x.Rows {
				continue
			}
			xrow := x.Row(tIdx)
			wk := c.W[k]
			for ic := 0; ic < inCh; ic++ {
				xv := xrow[ic]
				if xv == 0 {
					continue
				}
				wrow := wk.Row(ic)
				for oc := range orow {
					orow[oc] += xv * wrow[oc]
				}
			}
		}
		if c.Act != nil {
			for oc := range orow {
				orow[oc] = c.Act(orow[oc])
			}
		}
	}
	return out
}

// SeparableConv1D is a depthwise convolution followed by a pointwise
// (1x1) convolution — the building block of Bonito's CNN.
type SeparableConv1D struct {
	// Depth[k][ch] is the depthwise weight at kernel offset k, channel ch.
	Depth  [][]float32
	Point  *Tensor // (inCh, outCh)
	B      []float32
	Kernel int
	Stride int
	Act    Activation
	Name   string
}

// NewSeparableConv1D builds a separable convolution.
func NewSeparableConv1D(rng *rand.Rand, inCh, outCh, kernel, stride int, act Activation, name string) *SeparableConv1D {
	depth := make([][]float32, kernel)
	scale := 1 / math.Sqrt(float64(kernel))
	for k := range depth {
		depth[k] = make([]float32, inCh)
		for ch := range depth[k] {
			depth[k][ch] = float32((rng.Float64()*2 - 1) * scale)
		}
	}
	return &SeparableConv1D{
		Depth:  depth,
		Point:  RandomTensor(rng, inCh, outCh, 1/math.Sqrt(float64(inCh))),
		B:      make([]float32, outCh),
		Kernel: kernel,
		Stride: stride,
		Act:    act,
		Name:   name,
	}
}

// OutLen reports the output length for an input of length t.
func (c *SeparableConv1D) OutLen(t int) int {
	if t <= 0 {
		return 0
	}
	return (t + c.Stride - 1) / c.Stride
}

// Forward applies depthwise then pointwise convolution.
func (c *SeparableConv1D) Forward(x *Tensor) *Tensor {
	inCh := len(c.Depth[0])
	if x.Cols != inCh {
		panic(fmt.Sprintf("nn: %s: input channels %d, want %d", c.Name, x.Cols, inCh))
	}
	outLen := c.OutLen(x.Rows)
	mid := NewTensor(outLen, inCh)
	half := (c.Kernel - 1) / 2
	for o := 0; o < outLen; o++ {
		center := o * c.Stride
		mrow := mid.Row(o)
		for k := 0; k < c.Kernel; k++ {
			tIdx := center + k - half
			if tIdx < 0 || tIdx >= x.Rows {
				continue
			}
			xrow := x.Row(tIdx)
			dk := c.Depth[k]
			for ch := range mrow {
				mrow[ch] += xrow[ch] * dk[ch]
			}
		}
	}
	out := MatMul(mid, c.Point)
	out.AddBias(c.B)
	if c.Act != nil {
		out.Apply(c.Act)
	}
	return out
}

// LSTM is a single-direction LSTM layer over a sequence.
type LSTM struct {
	// Gate weights: Wx (in, 4*hidden), Wh (hidden, 4*hidden), bias 4*hidden.
	// Gate order: input, forget, cell, output.
	Wx, Wh *Tensor
	B      []float32
	Hidden int
	Name   string
}

// NewLSTM builds an LSTM with Xavier-scaled random weights and a +1
// forget-gate bias (standard practice).
func NewLSTM(rng *rand.Rand, in, hidden int, name string) *LSTM {
	l := &LSTM{
		Wx:     RandomTensor(rng, in, 4*hidden, 1/math.Sqrt(float64(in))),
		Wh:     RandomTensor(rng, hidden, 4*hidden, 1/math.Sqrt(float64(hidden))),
		B:      make([]float32, 4*hidden),
		Hidden: hidden,
		Name:   name,
	}
	for i := hidden; i < 2*hidden; i++ {
		l.B[i] = 1
	}
	return l
}

// Forward runs the LSTM over (T, in) producing hidden states (T, hidden).
// reverse processes the sequence back-to-front (for the bidirectional
// wrapper).
func (l *LSTM) Forward(x *Tensor, reverse bool) *Tensor {
	T := x.Rows
	h := make([]float32, l.Hidden)
	c := make([]float32, l.Hidden)
	gates := make([]float32, 4*l.Hidden)
	out := NewTensor(T, l.Hidden)
	for step := 0; step < T; step++ {
		t := step
		if reverse {
			t = T - 1 - step
		}
		xrow := x.Row(t)
		copy(gates, l.B)
		for i, xv := range xrow {
			if xv == 0 {
				continue
			}
			wrow := l.Wx.Row(i)
			for g := range gates {
				gates[g] += xv * wrow[g]
			}
		}
		for i, hv := range h {
			if hv == 0 {
				continue
			}
			wrow := l.Wh.Row(i)
			for g := range gates {
				gates[g] += hv * wrow[g]
			}
		}
		H := l.Hidden
		orow := out.Row(t)
		for j := 0; j < H; j++ {
			ig := Sigmoid(gates[j])
			fg := Sigmoid(gates[H+j])
			cg := Tanh(gates[2*H+j])
			og := Sigmoid(gates[3*H+j])
			c[j] = fg*c[j] + ig*cg
			h[j] = og * Tanh(c[j])
			orow[j] = h[j]
		}
	}
	return out
}

// BiLSTM runs forward and backward LSTMs and concatenates their hidden
// states, as in Clair's bidirectional layers.
type BiLSTM struct {
	Fwd, Bwd *LSTM
	Name     string
}

// NewBiLSTM builds a bidirectional LSTM pair.
func NewBiLSTM(rng *rand.Rand, in, hidden int, name string) *BiLSTM {
	return &BiLSTM{
		Fwd:  NewLSTM(rng, in, hidden, name+".fwd"),
		Bwd:  NewLSTM(rng, in, hidden, name+".bwd"),
		Name: name,
	}
}

// Forward produces (T, 2*hidden).
func (b *BiLSTM) Forward(x *Tensor) *Tensor {
	f := b.Fwd.Forward(x, false)
	r := b.Bwd.Forward(x, true)
	out := NewTensor(x.Rows, f.Cols+r.Cols)
	for t := 0; t < x.Rows; t++ {
		copy(out.Row(t)[:f.Cols], f.Row(t))
		copy(out.Row(t)[f.Cols:], r.Row(t))
	}
	return out
}

// BatchNorm applies per-channel normalization with learned scale/shift
// (inference form: running statistics folded into scale/shift).
type BatchNorm struct {
	Scale, Shift []float32
	Name         string
}

// NewBatchNorm builds an inference-mode batch norm with near-identity
// parameters perturbed per channel.
func NewBatchNorm(rng *rand.Rand, channels int, name string) *BatchNorm {
	bn := &BatchNorm{
		Scale: make([]float32, channels),
		Shift: make([]float32, channels),
		Name:  name,
	}
	for i := 0; i < channels; i++ {
		bn.Scale[i] = float32(0.8 + rng.Float64()*0.4)
		bn.Shift[i] = float32((rng.Float64() - 0.5) * 0.2)
	}
	return bn
}

// Forward applies the normalization in place and returns x.
func (bn *BatchNorm) Forward(x *Tensor) *Tensor {
	if x.Cols != len(bn.Scale) {
		panic(fmt.Sprintf("nn: %s: channels %d, want %d", bn.Name, x.Cols, len(bn.Scale)))
	}
	for r := 0; r < x.Rows; r++ {
		row := x.Row(r)
		for c := range row {
			row[c] = row[c]*bn.Scale[c] + bn.Shift[c]
		}
	}
	return x
}
