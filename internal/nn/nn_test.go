package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatMulKnown(t *testing.T) {
	a := NewTensor(2, 3)
	copy(a.Data, []float32{1, 2, 3, 4, 5, 6})
	b := NewTensor(3, 2)
	copy(b.Data, []float32{7, 8, 9, 10, 11, 12})
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, v := range want {
		if c.Data[i] != v {
			t.Errorf("c[%d] = %v, want %v", i, c.Data[i], v)
		}
	}
}

func TestMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected shape panic")
		}
	}()
	MatMul(NewTensor(2, 3), NewTensor(2, 3))
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := RandomTensor(rng, 5, 7, 3)
	x.Softmax()
	for r := 0; r < x.Rows; r++ {
		var sum float64
		for _, v := range x.Row(r) {
			if v < 0 || v > 1 {
				t.Fatalf("softmax value %v out of [0,1]", v)
			}
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Errorf("row %d sums to %v", r, sum)
		}
	}
}

func TestLogSoftmaxConsistentWithSoftmax(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := RandomTensor(rng, 3, 5, 2)
	soft := x.Clone().Softmax()
	logSoft := x.Clone().LogSoftmax()
	for i := range soft.Data {
		if math.Abs(math.Log(float64(soft.Data[i]))-float64(logSoft.Data[i])) > 1e-4 {
			t.Fatalf("element %d: log(softmax)=%v logsoftmax=%v", i,
				math.Log(float64(soft.Data[i])), logSoft.Data[i])
		}
	}
}

func TestActivations(t *testing.T) {
	if ReLU(-3) != 0 || ReLU(2) != 2 {
		t.Error("ReLU wrong")
	}
	if math.Abs(float64(Sigmoid(0))-0.5) > 1e-6 {
		t.Error("Sigmoid(0) != 0.5")
	}
	if Tanh(0) != 0 {
		t.Error("Tanh(0) != 0")
	}
	if Swish(0) != 0 {
		t.Error("Swish(0) != 0")
	}
}

func TestDenseShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := NewDense(rng, 8, 4, ReLU, "fc")
	x := RandomTensor(rng, 10, 8, 1)
	y := d.Forward(x)
	if y.Rows != 10 || y.Cols != 4 {
		t.Errorf("dense output (%d,%d)", y.Rows, y.Cols)
	}
	for _, v := range y.Data {
		if v < 0 {
			t.Fatal("ReLU output negative")
		}
	}
}

func TestConv1DIdentityKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := NewConv1D(rng, 1, 1, 1, 1, nil, "id")
	c.W[0].Set(0, 0, 1)
	c.B[0] = 0
	x := NewTensor(5, 1)
	for i := 0; i < 5; i++ {
		x.Set(i, 0, float32(i))
	}
	y := c.Forward(x)
	for i := 0; i < 5; i++ {
		if y.At(i, 0) != float32(i) {
			t.Errorf("identity conv y[%d] = %v", i, y.At(i, 0))
		}
	}
}

func TestConv1DStrideHalvesLength(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := NewConv1D(rng, 4, 8, 5, 2, ReLU, "down")
	x := RandomTensor(rng, 100, 4, 1)
	y := c.Forward(x)
	if y.Rows != 50 || y.Cols != 8 {
		t.Errorf("strided conv output (%d,%d), want (50,8)", y.Rows, y.Cols)
	}
}

func TestConv1DMovingAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c := NewConv1D(rng, 1, 1, 3, 1, nil, "avg")
	for k := 0; k < 3; k++ {
		c.W[k].Set(0, 0, 1.0/3)
	}
	x := NewTensor(4, 1)
	for i := range x.Data {
		x.Data[i] = 3
	}
	y := c.Forward(x)
	// Interior positions see all three taps: 3; edges see two: 2.
	if math.Abs(float64(y.At(1, 0))-3) > 1e-5 {
		t.Errorf("interior avg = %v", y.At(1, 0))
	}
	if math.Abs(float64(y.At(0, 0))-2) > 1e-5 {
		t.Errorf("edge avg = %v", y.At(0, 0))
	}
}

func TestSeparableConvShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := NewSeparableConv1D(rng, 16, 32, 9, 3, Swish, "sep")
	x := RandomTensor(rng, 99, 16, 1)
	y := c.Forward(x)
	if y.Rows != 33 || y.Cols != 32 {
		t.Errorf("separable conv output (%d,%d), want (33,32)", y.Rows, y.Cols)
	}
}

func TestLSTMShapesAndDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	l := NewLSTM(rng, 6, 10, "lstm")
	x := RandomTensor(rand.New(rand.NewSource(9)), 20, 6, 1)
	y1 := l.Forward(x, false)
	y2 := l.Forward(x, false)
	if y1.Rows != 20 || y1.Cols != 10 {
		t.Fatalf("lstm output (%d,%d)", y1.Rows, y1.Cols)
	}
	for i := range y1.Data {
		if y1.Data[i] != y2.Data[i] {
			t.Fatal("LSTM not deterministic")
		}
		if v := float64(y1.Data[i]); v < -1 || v > 1 {
			t.Fatalf("hidden state %v outside tanh range", v)
		}
	}
}

func TestLSTMReverseDiffers(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	l := NewLSTM(rng, 4, 8, "lstm")
	x := RandomTensor(rng, 12, 4, 1)
	fwd := l.Forward(x, false)
	rev := l.Forward(x, true)
	same := true
	for i := range fwd.Data {
		if fwd.Data[i] != rev.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("forward and reverse LSTM outputs identical")
	}
}

func TestBiLSTMConcats(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	b := NewBiLSTM(rng, 5, 7, "bi")
	x := RandomTensor(rng, 9, 5, 1)
	y := b.Forward(x)
	if y.Rows != 9 || y.Cols != 14 {
		t.Errorf("bilstm output (%d,%d), want (9,14)", y.Rows, y.Cols)
	}
}

func TestBatchNormAffine(t *testing.T) {
	bn := &BatchNorm{Scale: []float32{2}, Shift: []float32{1}, Name: "bn"}
	x := NewTensor(3, 1)
	x.Data = []float32{0, 1, 2}
	bn.Forward(x)
	want := []float32{1, 3, 5}
	for i := range want {
		if x.Data[i] != want[i] {
			t.Errorf("bn[%d] = %v, want %v", i, x.Data[i], want[i])
		}
	}
}

func TestCTCGreedyDecodeCollapses(t *testing.T) {
	// classes: blank, A, C, G, T
	p := NewTensor(6, 5)
	set := func(t_, c int) { p.Set(t_, c, 1) }
	set(0, 1) // A
	set(1, 1) // A (repeat, collapsed)
	set(2, 0) // blank
	set(3, 1) // A (new after blank)
	set(4, 2) // C
	set(5, 4) // T
	got := CTCGreedyDecode(p)
	want := []byte{0, 0, 1, 3} // A A C T
	if len(got) != len(want) {
		t.Fatalf("decoded %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("decoded %v, want %v", got, want)
		}
	}
}

func TestCTCBeamMatchesGreedyOnPeakedDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := NewTensor(15, 5)
		for t_ := 0; t_ < p.Rows; t_++ {
			best := r.Intn(5)
			for c := 0; c < 5; c++ {
				if c == best {
					p.Set(t_, c, 0.9)
				} else {
					p.Set(t_, c, 0.025)
				}
			}
		}
		g := CTCGreedyDecode(p)
		b := CTCBeamDecode(p, 8)
		if len(g) != len(b) {
			return false
		}
		for i := range g {
			if g[i] != b[i] {
				return false
			}
		}
		return true
	}
	for i := 0; i < 20; i++ {
		if !f(rng.Int63()) {
			t.Fatal("beam decode diverges from greedy on peaked distribution")
		}
	}
}

func TestCTCBeamEmpty(t *testing.T) {
	p := NewTensor(3, 5)
	for t_ := 0; t_ < 3; t_++ {
		p.Set(t_, 0, 1) // all blanks
	}
	if got := CTCBeamDecode(p, 4); len(got) != 0 {
		t.Errorf("all-blank decode = %v", got)
	}
}

func TestTensorCloneIndependence(t *testing.T) {
	f := func(vals []float32) bool {
		if len(vals) == 0 {
			return true
		}
		x := &Tensor{Rows: 1, Cols: len(vals), Data: append([]float32(nil), vals...)}
		orig := x.Data[0]
		y := x.Clone()
		if y.Data[0] == 0 {
			y.Data[0] = 1
		} else {
			y.Data[0] = 0
		}
		return x.Data[0] == orig
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
