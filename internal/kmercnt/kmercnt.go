// Package kmercnt implements the k-mer counting kernel from Flye's
// assembly pipeline: every k-mer of every read is inserted into a large
// open-addressing hash table of counters. The access pattern — one
// random cache line touched per insert with a 1-2 byte useful payload —
// is what makes kmer-cnt the most memory-bound kernel in the paper
// (484 BPKI, 69% stall cycles). Both plain linear probing and robin-
// hood probing (the paper's suggested optimization) are provided.
package kmercnt

import (
	"context"
	"sort"

	"repro/internal/faultinject"
	"repro/internal/genome"
	"repro/internal/parallel"
	"repro/internal/perf"
	"repro/internal/seq2"
)

// Probing selects the collision-resolution strategy.
type Probing int

// Probing strategies.
const (
	Linear Probing = iota
	RobinHood
)

// MemTracer mirrors cachesim's access interface.
type MemTracer interface {
	Access(addr uint64, size int, write bool)
}

// Table is an open-addressing k-mer counter. Keys are packed canonical
// k-mer codes stored +1 so the zero word means empty.
type Table struct {
	keys   []uint64
	counts []uint32
	mask   uint64
	used   int
	mode   Probing

	// Probes counts slot inspections; ProbeDistance accumulates the
	// displacement of performed inserts (robin-hood quality metric).
	Probes        uint64
	ProbeDistance uint64
	Tracer        MemTracer

	// wave is the batched counters' grow-only k-mer buffer (batched.go);
	// it lives on the table so steady-state waves allocate nothing.
	wave []uint64
}

// NewTable creates a table with at least capacity slots (rounded up to
// a power of two).
func NewTable(capacity int, mode Probing) *Table {
	size := 16
	for size < capacity {
		size *= 2
	}
	return &Table{
		keys:   make([]uint64, size),
		counts: make([]uint32, size),
		mask:   uint64(size - 1),
		mode:   mode,
	}
}

// Len reports the number of distinct k-mers stored.
func (t *Table) Len() int { return t.used }

// Cap reports the slot count.
func (t *Table) Cap() int { return len(t.keys) }

// hash mixes a k-mer code (murmur-style finalizer).
func hash(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

func (t *Table) trace(slot uint64, write bool) {
	if t.Tracer != nil {
		// keys and counts are separate arrays; an insert touches both.
		t.Tracer.Access(slot*8, 8, write)
		t.Tracer.Access(1<<40+slot*4, 4, write)
	}
}

// Increment adds one to the count of key, growing the table when load
// exceeds 70%.
func (t *Table) Increment(key uint64) {
	if t.used*10 >= len(t.keys)*7 {
		t.grow()
	}
	stored := key + 1
	switch t.mode {
	case Linear:
		slot := hash(key) & t.mask
		for {
			t.Probes++
			t.trace(slot, false)
			if t.keys[slot] == stored {
				t.counts[slot]++
				t.trace(slot, true)
				return
			}
			if t.keys[slot] == 0 {
				t.keys[slot] = stored
				t.counts[slot] = 1
				t.used++
				t.trace(slot, true)
				return
			}
			slot = (slot + 1) & t.mask
		}
	case RobinHood:
		slot := hash(key) & t.mask
		dist := uint64(0)
		curKey := stored
		curCount := uint32(1)
		isNew := true
		for {
			t.Probes++
			t.trace(slot, false)
			if t.keys[slot] == 0 {
				t.keys[slot] = curKey
				t.counts[slot] = curCount
				t.trace(slot, true)
				if isNew {
					t.used++
				}
				t.ProbeDistance += dist
				return
			}
			if isNew && t.keys[slot] == curKey {
				t.counts[slot]++
				t.trace(slot, true)
				t.ProbeDistance += dist
				return
			}
			// Robin hood: displace richer residents.
			residentDist := (slot - hash(t.keys[slot]-1)) & t.mask
			if residentDist < dist {
				t.keys[slot], curKey = curKey, t.keys[slot]
				t.counts[slot], curCount = curCount, t.counts[slot]
				t.trace(slot, true)
				if isNew {
					t.used++
					t.ProbeDistance += dist
				}
				isNew = false // the displaced entry is always pre-existing
				dist = residentDist
			}
			slot = (slot + 1) & t.mask
			dist++
		}
	}
}

// Count returns the stored count for key (0 when absent).
func (t *Table) Count(key uint64) uint32 {
	stored := key + 1
	slot := hash(key) & t.mask
	for probes := 0; probes <= len(t.keys); probes++ {
		if t.keys[slot] == stored {
			return t.counts[slot]
		}
		if t.keys[slot] == 0 {
			return 0
		}
		slot = (slot + 1) & t.mask
	}
	return 0
}

// scanStride returns an odd stride for visiting all slots of a
// power-of-two table in an order decorrelated from slot order. Walking
// a source table in plain slot order yields keys in ascending hash
// order, and feeding another linear-probe table keys in ascending slot
// order is its worst case: every insert lands at the frontier of one
// ever-growing run (measured 4x slower than decorrelated order on a
// 142k-key merge). An odd stride on a power-of-two size is a full
// cycle, so every slot is still visited exactly once. grow()
// deliberately does NOT use it: a doubling rehash splits each source
// run across two well-spaced destinations anyway, and the sequential
// source scan's locality wins there (measured ~20% on the t1 kernel).
func scanStride(size int) int {
	return (0x9E3779B1 & (size - 1)) | 1
}

// grow doubles the table and reinserts all entries.
func (t *Table) grow() {
	oldKeys, oldCounts := t.keys, t.counts
	t.keys = make([]uint64, 2*len(oldKeys))
	t.counts = make([]uint32, 2*len(oldCounts))
	t.mask = uint64(len(t.keys) - 1)
	t.used = 0
	savedProbes, savedDist := t.Probes, t.ProbeDistance
	tracer := t.Tracer
	t.Tracer = nil
	for i, k := range oldKeys {
		if k == 0 {
			continue
		}
		t.reinsert(k, oldCounts[i])
	}
	t.Probes, t.ProbeDistance = savedProbes, savedDist
	t.Tracer = tracer
}

// reinsert places an existing key/count pair into the grown table.
func (t *Table) reinsert(stored uint64, count uint32) {
	switch t.mode {
	case Linear:
		slot := hash(stored-1) & t.mask
		for t.keys[slot] != 0 {
			slot = (slot + 1) & t.mask
		}
		t.keys[slot] = stored
		t.counts[slot] = count
		t.used++
	case RobinHood:
		slot := hash(stored-1) & t.mask
		dist := uint64(0)
		curKey, curCount := stored, count
		for {
			if t.keys[slot] == 0 {
				t.keys[slot] = curKey
				t.counts[slot] = curCount
				t.used++
				return
			}
			residentDist := (slot - hash(t.keys[slot]-1)) & t.mask
			if residentDist < dist {
				t.keys[slot], curKey = curKey, t.keys[slot]
				t.counts[slot], curCount = curCount, t.counts[slot]
				dist = residentDist
			}
			slot = (slot + 1) & t.mask
			dist++
		}
	}
}

// Canonical returns the lexicographically smaller of a k-mer code and
// its reverse complement, the standard counting key.
func Canonical(code uint64, k int) uint64 {
	rc := uint64(0)
	x := code
	for i := 0; i < k; i++ {
		rc = rc<<2 | (3 - (x & 3))
		x >>= 2
	}
	if rc < code {
		return rc
	}
	return code
}

// CountSeq inserts every canonical k-mer of s into the table and
// returns the number of k-mers processed. It is the scalar reference
// implementation; CountSeqFast produces identical tables.
func CountSeq(t *Table, s genome.Seq, k int) uint64 {
	var n uint64
	genome.EachKmer(s, k, func(_ int, code uint64) {
		t.Increment(Canonical(code, k))
		n++
	})
	return n
}

// CountSeqFast is CountSeq with the reverse-complement code maintained
// incrementally alongside the forward code, replacing the O(k)
// per-k-mer canonicalization with O(1) work. Tables produced are
// identical to CountSeq's.
func CountSeqFast(t *Table, s genome.Seq, k int) uint64 {
	if len(s) < k || k <= 0 || k > 31 {
		return 0
	}
	shift := 2 * uint(k-1)
	mask := uint64(1)<<(2*uint(k)) - 1
	var code, rcode uint64
	for i := 0; i < k; i++ {
		b := uint64(s[i] & 3)
		code = code<<2 | b
		rcode = rcode>>2 | (3-b)<<shift
	}
	canon := code
	if rcode < code {
		canon = rcode
	}
	t.Increment(canon)
	n := uint64(1)
	for i := k; i < len(s); i++ {
		b := uint64(s[i] & 3)
		code = (code<<2 | b) & mask
		rcode = rcode>>2 | (3-b)<<shift
		canon := code
		if rcode < code {
			canon = rcode
		}
		t.Increment(canon)
		n++
	}
	return n
}

// CountSeqPacked counts the canonical k-mers of a 2-bit packed
// sequence: bases stream out of each packed word two bits at a time,
// so the encoder issues one word load per 32 bases instead of 32 byte
// loads. Tables produced are identical to CountSeq's on the unpacked
// sequence.
func CountSeqPacked(t *Table, p seq2.Packed, k int) uint64 {
	n := p.Len()
	if n < k || k <= 0 || k > 31 {
		return 0
	}
	shift := 2 * uint(k-1)
	mask := uint64(1)<<(2*uint(k)) - 1
	words := p.WordsSlice()
	var code, rcode uint64
	var w uint64
	var count uint64
	for i := 0; i < n; i++ {
		if i%seq2.BasesPerWord == 0 {
			w = words[i/seq2.BasesPerWord]
		}
		b := w & 3
		w >>= 2
		code = (code<<2 | b) & mask
		rcode = rcode>>2 | (3-b)<<shift
		if i >= k-1 {
			canon := code
			if rcode < code {
				canon = rcode
			}
			t.Increment(canon)
			count++
		}
	}
	return count
}

// TopKmers returns the n most frequent k-mers (count-descending,
// key-ascending for ties).
func (t *Table) TopKmers(n int) []KmerCount {
	var all []KmerCount
	for i, key := range t.keys {
		if key != 0 {
			all = append(all, KmerCount{Kmer: key - 1, Count: t.counts[i]})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Kmer < all[j].Kmer
	})
	if n < len(all) {
		all = all[:n]
	}
	return all
}

// KmerCount pairs a k-mer code with its abundance.
type KmerCount struct {
	Kmer  uint64
	Count uint32
}

// KernelResult aggregates a kmer-cnt benchmark execution.
type KernelResult struct {
	Kmers     uint64
	Distinct  int
	Probes    uint64
	TaskStats *perf.TaskStats
	Counters  perf.Counters
}

// RunKernel counts k-mers across reads. Threads each fill a private
// table (the shared-table version does not scale, as the paper's
// Figure 7 shows for kmer-cnt); results merge at the end.
// It panics on failure; cancellable callers use RunKernelCtx.
func RunKernel(reads []genome.Seq, k, threads int, mode Probing) KernelResult {
	res, err := RunKernelCtx(context.Background(), reads, k, threads, mode)
	if err != nil {
		panic(err)
	}
	return res
}

// RunKernelCtx is RunKernel with cooperative cancellation and a fault
// trip-point per read.
func RunKernelCtx(ctx context.Context, reads []genome.Seq, k, threads int, mode Probing) (KernelResult, error) {
	if threads <= 0 {
		threads = 1
	}
	// Per-worker shards are padded: bare adjacent uint64 accumulators
	// false-share cache lines between workers, skewing the timings the
	// kernel exists to measure.
	type ws struct {
		table   *Table
		stats   *perf.TaskStats
		count   uint64
		packBuf []uint64 // grow-only 2-bit packing buffer, reused per read
		_       perf.CacheLinePad
	}
	workers := make([]ws, threads)
	for i := range workers {
		workers[i].table = NewTable(1<<12, mode)
		workers[i].stats = perf.NewTaskStats("kmers")
	}
	// Reads are fine-grained tasks; chunked dispatch amortizes the
	// scheduler's atomic fetch across a batch of them.
	chunk := parallel.ChunkFor(len(reads), threads)
	err := parallel.ForEachChunkedCtxErr(ctx, len(reads), threads, chunk, func(tctx context.Context, w, i int) error {
		if err := faultinject.Point(tctx); err != nil {
			return err
		}
		p := seq2.PackInto(workers[w].packBuf, reads[i])
		workers[w].packBuf = p.WordsSlice()
		n := CountSeqPackedBatched(workers[w].table, p, k)
		workers[w].count += n
		workers[w].stats.Observe(float64(n))
		return nil
	})
	if err != nil {
		return KernelResult{}, err
	}
	res := KernelResult{TaskStats: perf.NewTaskStats("kmers")}
	merged := workers[0].table
	for i := 1; i < threads; i++ {
		// Stride order, not slot order: slot order feeds merged keys in
		// ascending hash order, linear probing's worst case (scanStride).
		src := workers[i].table
		mask := len(src.keys) - 1
		stride := scanStride(len(src.keys))
		for j := range src.keys {
			s := (j * stride) & mask
			if key := src.keys[s]; key != 0 {
				for c := uint32(0); c < src.counts[s]; c++ {
					merged.Increment(key - 1)
				}
			}
		}
	}
	res.Distinct = merged.Len()
	for i := 0; i < threads; i++ {
		res.Kmers += workers[i].count
		res.Probes += workers[i].table.Probes
		res.TaskStats.Merge(workers[i].stats)
	}
	// Memory-dominated: each insert is a random load + tiny store.
	res.Counters.Add(perf.Load, res.Probes*2)
	res.Counters.Add(perf.Store, res.Kmers)
	res.Counters.Add(perf.IntALU, res.Kmers*3)
	res.Counters.Add(perf.Branch, res.Probes)
	return res, nil
}
