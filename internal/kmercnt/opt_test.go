package kmercnt

import (
	"math/rand"
	"testing"

	"repro/internal/genome"
	"repro/internal/seq2"
)

// tablesEqual reports whether two tables hold the same key->count
// mapping (slot layout may differ only if insertion order differed, so
// equality here also certifies identical insertion sequences).
func tablesEqual(a, b *Table) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i, key := range a.keys {
		if key == 0 {
			continue
		}
		if b.Count(key-1) != a.counts[i] {
			return false
		}
	}
	return true
}

// The rolling-reverse-complement and packed encoders must produce
// tables identical to the scalar reference, including probe counts
// (same keys in the same order means the same probe sequence).
func TestCountSeqVariantsDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, mode := range []Probing{Linear, RobinHood} {
		for _, k := range []int{5, 17, 31} {
			ref := NewTable(1<<10, mode)
			fast := NewTable(1<<10, mode)
			packed := NewTable(1<<10, mode)
			var refN, fastN, packedN uint64
			var buf []uint64
			for trial := 0; trial < 30; trial++ {
				s := genome.Random(rng, k-2+rng.Intn(400))
				refN += CountSeq(ref, s, k)
				fastN += CountSeqFast(fast, s, k)
				p := seq2.PackInto(buf, s)
				buf = p.WordsSlice()
				packedN += CountSeqPacked(packed, p, k)
			}
			if fastN != refN || packedN != refN {
				t.Fatalf("mode=%v k=%d: kmer counts %d/%d, want %d", mode, k, fastN, packedN, refN)
			}
			if !tablesEqual(ref, fast) {
				t.Fatalf("mode=%v k=%d: fast table differs from reference", mode, k)
			}
			if !tablesEqual(ref, packed) {
				t.Fatalf("mode=%v k=%d: packed table differs from reference", mode, k)
			}
			if fast.Probes != ref.Probes || packed.Probes != ref.Probes {
				t.Fatalf("mode=%v k=%d: probes %d/%d, want %d", mode, k, fast.Probes, packed.Probes, ref.Probes)
			}
		}
	}
}

func TestCountSeqFastShortInputs(t *testing.T) {
	tb := NewTable(16, Linear)
	if n := CountSeqFast(tb, genome.MustFromString("ACG"), 5); n != 0 {
		t.Fatalf("short seq: n=%d", n)
	}
	if n := CountSeqPacked(tb, seq2.Pack(genome.MustFromString("ACG")), 5); n != 0 {
		t.Fatalf("short packed seq: n=%d", n)
	}
}

// Scalar canonicalization versus rolling/packed encoders: the bench
// harness's kmercnt before/after pair.
func BenchmarkCountSeq(b *testing.B) {
	rng := rand.New(rand.NewSource(22))
	const k = 17
	reads := make([]genome.Seq, 32)
	for i := range reads {
		reads[i] = genome.Random(rng, 1000)
	}
	b.Run("scalar", func(b *testing.B) {
		b.ReportAllocs()
		tb := NewTable(1<<16, Linear)
		for i := 0; i < b.N; i++ {
			CountSeq(tb, reads[i%len(reads)], k)
		}
	})
	b.Run("rolling", func(b *testing.B) {
		b.ReportAllocs()
		tb := NewTable(1<<16, Linear)
		for i := 0; i < b.N; i++ {
			CountSeqFast(tb, reads[i%len(reads)], k)
		}
	})
	b.Run("packed", func(b *testing.B) {
		b.ReportAllocs()
		tb := NewTable(1<<16, Linear)
		var buf []uint64
		for i := 0; i < b.N; i++ {
			p := seq2.PackInto(buf, reads[i%len(reads)])
			buf = p.WordsSlice()
			CountSeqPacked(tb, p, k)
		}
	})
}
