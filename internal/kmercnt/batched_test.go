package kmercnt

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/cachesim"
	"repro/internal/genome"
	"repro/internal/seq2"
)

func TestBatchedMatchesUnbatched(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	reads := make([]genome.Seq, 15)
	for i := range reads {
		reads[i] = genome.Random(rng, 300)
	}
	k := 17
	plain := NewTable(64, Linear)
	batched := NewTable(64, Linear)
	var nPlain, nBatched uint64
	for _, r := range reads {
		nPlain += CountSeq(plain, r, k)
		nBatched += CountSeqBatched(batched, r, k)
	}
	if nPlain != nBatched {
		t.Fatalf("k-mer counts differ: %d vs %d", nPlain, nBatched)
	}
	if plain.Len() != batched.Len() {
		t.Fatalf("distinct counts differ: %d vs %d", plain.Len(), batched.Len())
	}
	for _, kc := range plain.TopKmers(1 << 20) {
		if got := batched.Count(kc.Kmer); got != kc.Count {
			t.Fatalf("k-mer %x: %d vs %d", kc.Kmer, got, kc.Count)
		}
	}
}

func TestBatchedShortRead(t *testing.T) {
	tab := NewTable(64, Linear)
	// Fewer k-mers than a batch.
	n := CountSeqBatched(tab, genome.MustFromString("ACGTACGTACGTACGTACGTA"), 17)
	if n != 5 {
		t.Errorf("counted %d k-mers, want 5", n)
	}
	if tab.Len() == 0 {
		t.Error("no k-mers stored")
	}
}

// A plain MemTracer (no Prefetcher) must observe the EXACT demand
// stream the serial counter issues — the wave schedule adds prefetches,
// never demand accesses.
func TestBatchedDemandStreamIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	read := genome.Random(rng, 2000)
	type acc struct {
		addr  uint64
		size  int
		write bool
	}
	record := func(count func(*Table, genome.Seq, int) uint64) []acc {
		tab := NewTable(1<<12, Linear)
		var got []acc
		tab.Tracer = tracerFunc(func(addr uint64, size int, write bool) {
			got = append(got, acc{addr, size, write})
		})
		count(tab, read, 17)
		return got
	}
	plain := record(CountSeq)
	batched := record(CountSeqBatched)
	if !reflect.DeepEqual(plain, batched) {
		t.Fatalf("demand streams diverge: serial %d accesses, batched %d",
			len(plain), len(batched))
	}
}

// With the cache simulator attached, the wave's prefetch pass installs
// the slot lines at the discounted penalty and the inserts hit: the
// batched trace must score strictly less stall than the serial one on
// the same reads. This is the CI smoke gate's kmercnt assertion.
func TestBatchedPrefetchReducesSimulatedStalls(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	reads := make([]genome.Seq, 16)
	for i := range reads {
		reads[i] = genome.Random(rng, 4000)
	}
	run := func(count func(*Table, genome.Seq, int) uint64) (*cachesim.Hierarchy, *Table) {
		tab := NewTable(1<<20, Linear) // slot arrays far exceed the simulated L2
		sim := cachesim.NewHierarchy(cachesim.XeonE31240v5())
		tab.Tracer = sim
		for _, r := range reads {
			count(tab, r, 17)
		}
		return sim, tab
	}
	serialSim, serialTab := run(CountSeq)
	batchedSim, batchedTab := run(CountSeqBatched)

	if serialTab.Probes != batchedTab.Probes {
		t.Fatalf("probe counts diverge: %d vs %d", serialTab.Probes, batchedTab.Probes)
	}
	if batchedSim.Prefetches == 0 {
		t.Fatal("batched run issued no prefetches")
	}
	instr := serialTab.Probes * 6
	rs := serialSim.Report(instr)
	rb := batchedSim.Report(instr)
	if rb.CyclesEstimate >= rs.CyclesEstimate {
		t.Fatalf("batched cycle estimate %.0f not below serial %.0f",
			rb.CyclesEstimate, rs.CyclesEstimate)
	}
	t.Logf("stall: serial %.0f -> batched %.0f cycles, L1 miss %.3f -> %.3f",
		rs.CyclesEstimate*rs.StallFraction, rb.CyclesEstimate*rb.StallFraction,
		rs.L1MissRatio, rb.L1MissRatio)
}

// CountSeqPackedBatched must produce tables identical to
// CountSeqPacked's at every wave width, including widths larger than
// the read's k-mer count.
func TestPackedBatchedForcedWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	reads := make([]genome.Seq, 10)
	for i := range reads {
		reads[i] = genome.Random(rng, 50+rng.Intn(500))
	}
	for _, k := range []int{5, 17, 31} {
		want := NewTable(64, Linear)
		var wantN uint64
		for _, r := range reads {
			wantN += CountSeqPacked(want, seq2.Pack(r), k)
		}
		for _, width := range []int{4, 7, 64, 512} {
			restore := WaveWidth.Set(width)
			got := NewTable(64, Linear)
			var gotN uint64
			for _, r := range reads {
				gotN += CountSeqPackedBatched(got, seq2.Pack(r), k)
			}
			restore()
			if gotN != wantN {
				t.Fatalf("k=%d width=%d: counted %d, want %d", k, width, gotN, wantN)
			}
			if got.Len() != want.Len() {
				t.Fatalf("k=%d width=%d: distinct %d, want %d", k, width, got.Len(), want.Len())
			}
			for _, kc := range want.TopKmers(1 << 20) {
				if c := got.Count(kc.Kmer); c != kc.Count {
					t.Fatalf("k=%d width=%d kmer %x: %d, want %d", k, width, kc.Kmer, c, kc.Count)
				}
			}
		}
	}
}

// Steady-state wave counting must not allocate: the wave buffer lives
// on the table.
func TestPackedBatchedZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	read := genome.Random(rng, 3000)
	p := seq2.Pack(read)
	tab := NewTable(1<<16, Linear) // large enough that no grow happens
	CountSeqPackedBatched(tab, p, 17)
	if allocs := testing.AllocsPerRun(10, func() {
		CountSeqPackedBatched(tab, p, 17)
	}); allocs != 0 {
		t.Fatalf("steady-state allocs/run = %v, want 0", allocs)
	}
}

// The kernel path (RunKernelCtx -> CountSeqPackedBatched) must agree
// with the serial counter's aggregates.
func TestKernelBatchedDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	reads := make([]genome.Seq, 30)
	for i := range reads {
		reads[i] = genome.Random(rng, 100+rng.Intn(400))
	}
	want := NewTable(64, Linear)
	var wantN uint64
	for _, r := range reads {
		wantN += CountSeq(want, r, 17)
	}
	res := RunKernel(reads, 17, 4, Linear)
	if res.Kmers != wantN {
		t.Fatalf("kernel counted %d k-mers, want %d", res.Kmers, wantN)
	}
	if res.Distinct != want.Len() {
		t.Fatalf("kernel distinct %d, want %d", res.Distinct, want.Len())
	}
}
