package kmercnt

import (
	"math/rand"
	"testing"

	"repro/internal/genome"
)

func TestBatchedMatchesUnbatched(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	reads := make([]genome.Seq, 15)
	for i := range reads {
		reads[i] = genome.Random(rng, 300)
	}
	k := 17
	plain := NewTable(64, Linear)
	batched := NewTable(64, Linear)
	var nPlain, nBatched uint64
	for _, r := range reads {
		nPlain += CountSeq(plain, r, k)
		nBatched += CountSeqBatched(batched, r, k)
	}
	if nPlain != nBatched {
		t.Fatalf("k-mer counts differ: %d vs %d", nPlain, nBatched)
	}
	if plain.Len() != batched.Len() {
		t.Fatalf("distinct counts differ: %d vs %d", plain.Len(), batched.Len())
	}
	for _, kc := range plain.TopKmers(1 << 20) {
		if got := batched.Count(kc.Kmer); got != kc.Count {
			t.Fatalf("k-mer %x: %d vs %d", kc.Kmer, got, kc.Count)
		}
	}
}

func TestBatchedShortRead(t *testing.T) {
	tab := NewTable(64, Linear)
	// Fewer k-mers than a batch.
	n := CountSeqBatched(tab, genome.MustFromString("ACGTACGTACGTACGTACGTA"), 17)
	if n != 5 {
		t.Errorf("counted %d k-mers, want 5", n)
	}
	if tab.Len() == 0 {
		t.Error("no k-mers stored")
	}
}

func TestBatchedPrefetchReducesSimulatedStalls(t *testing.T) {
	// With the cache simulator attached, the prefetch pass issues the
	// misses and the insert pass hits: total accesses rise but the
	// insert-path misses collapse. We assert the access pattern is
	// observable through the tracer.
	rng := rand.New(rand.NewSource(2))
	read := genome.Random(rng, 2000)
	plain := NewTable(1<<12, Linear)
	var plainAccesses int
	plain.Tracer = tracerFunc(func(addr uint64, size int, write bool) { plainAccesses++ })
	CountSeq(plain, read, 17)

	batched := NewTable(1<<12, Linear)
	var batchedAccesses int
	batched.Tracer = tracerFunc(func(addr uint64, size int, write bool) { batchedAccesses++ })
	CountSeqBatched(batched, read, 17)

	if batchedAccesses <= plainAccesses {
		t.Errorf("batched mode should issue extra prefetch accesses: %d vs %d",
			batchedAccesses, plainAccesses)
	}
}
