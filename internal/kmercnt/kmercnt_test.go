package kmercnt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/genome"
)

func naiveCounts(reads []genome.Seq, k int) map[uint64]uint32 {
	m := map[uint64]uint32{}
	for _, r := range reads {
		genome.EachKmer(r, k, func(_ int, code uint64) {
			m[Canonical(code, k)]++
		})
	}
	return m
}

func testReads(seed int64, n, length int) []genome.Seq {
	rng := rand.New(rand.NewSource(seed))
	reads := make([]genome.Seq, n)
	for i := range reads {
		reads[i] = genome.Random(rng, length)
	}
	return reads
}

func TestCountsMatchNaive(t *testing.T) {
	reads := testReads(1, 20, 200)
	k := 15
	want := naiveCounts(reads, k)
	for _, mode := range []Probing{Linear, RobinHood} {
		tab := NewTable(64, mode) // force growth
		var total uint64
		for _, r := range reads {
			total += CountSeq(tab, r, k)
		}
		if tab.Len() != len(want) {
			t.Fatalf("mode %d: %d distinct, want %d", mode, tab.Len(), len(want))
		}
		for key, count := range want {
			if got := tab.Count(key); got != count {
				t.Fatalf("mode %d: Count(%x) = %d, want %d", mode, key, got, count)
			}
		}
		if total != uint64(20*(200-k+1)) {
			t.Errorf("processed %d k-mers", total)
		}
	}
}

func TestCanonicalInvolution(t *testing.T) {
	f := func(raw uint64) bool {
		k := 15
		code := raw & (1<<(2*15) - 1)
		canon := Canonical(code, k)
		// Canonical of the reverse complement must equal canonical of code.
		rc := uint64(0)
		x := code
		for i := 0; i < k; i++ {
			rc = rc<<2 | (3 - (x & 3))
			x >>= 2
		}
		return Canonical(rc, k) == canon && canon <= code
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCanonicalMatchesSequences(t *testing.T) {
	s := genome.MustFromString("ACGTTGCAACGTTGT")
	k := len(s)
	code := genome.KmerCode(s, 0, k)
	rcCode := genome.KmerCode(s.ReverseComplement(), 0, k)
	if Canonical(code, k) != Canonical(rcCode, k) {
		t.Error("sequence and its reverse complement canonicalize differently")
	}
}

func TestForwardAndRCReadsCountTogether(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	read := genome.Random(rng, 100)
	k := 15
	tab := NewTable(1024, Linear)
	CountSeq(tab, read, k)
	CountSeq(tab, read.ReverseComplement(), k)
	// Every canonical k-mer should now have an even count (doubled).
	for _, kc := range tab.TopKmers(1 << 20) {
		if kc.Count%2 != 0 {
			t.Fatalf("k-mer %x count %d not doubled by RC read", kc.Kmer, kc.Count)
		}
	}
}

func TestGrowthPreservesCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tab := NewTable(16, RobinHood)
	ref := map[uint64]uint32{}
	for i := 0; i < 5000; i++ {
		key := rng.Uint64() & (1<<30 - 1)
		tab.Increment(key)
		ref[key]++
	}
	if tab.Len() != len(ref) {
		t.Fatalf("distinct %d, want %d", tab.Len(), len(ref))
	}
	for key, want := range ref {
		if got := tab.Count(key); got != want {
			t.Fatalf("Count(%x) = %d, want %d", key, got, want)
		}
	}
	if tab.Cap() < 5000 {
		t.Errorf("table did not grow: cap %d", tab.Cap())
	}
}

func TestTopKmers(t *testing.T) {
	tab := NewTable(64, Linear)
	for i := 0; i < 5; i++ {
		tab.Increment(100)
	}
	for i := 0; i < 3; i++ {
		tab.Increment(200)
	}
	tab.Increment(300)
	top := tab.TopKmers(2)
	if len(top) != 2 || top[0].Kmer != 100 || top[0].Count != 5 || top[1].Kmer != 200 {
		t.Errorf("TopKmers = %v", top)
	}
}

func TestRobinHoodReducesProbesAtHighLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	keys := make([]uint64, 40000)
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	lin := NewTable(1<<14, Linear)
	rh := NewTable(1<<14, RobinHood)
	for _, k := range keys {
		lin.Increment(k)
		rh.Increment(k)
	}
	// Robin hood should not be dramatically worse; its win is bounded
	// variance. Check mean probes stay comparable (within 2x) and both
	// tables agree on counts.
	if rh.Probes > lin.Probes*2 {
		t.Errorf("robin hood probes %d vs linear %d", rh.Probes, lin.Probes)
	}
	for _, k := range keys[:100] {
		if lin.Count(k) != rh.Count(k) {
			t.Fatalf("mode disagreement on key %x", k)
		}
	}
}

func TestRunKernelMatchesNaiveDistinct(t *testing.T) {
	reads := testReads(5, 30, 150)
	k := 17
	want := naiveCounts(reads, k)
	for _, threads := range []int{1, 4} {
		res := RunKernel(reads, k, threads, Linear)
		if res.Distinct != len(want) {
			t.Errorf("threads=%d: distinct %d, want %d", threads, res.Distinct, len(want))
		}
		if res.Kmers != uint64(30*(150-k+1)) {
			t.Errorf("threads=%d: kmers %d", threads, res.Kmers)
		}
		if res.TaskStats.Count() != 30 {
			t.Errorf("task count %d", res.TaskStats.Count())
		}
	}
}

func TestTracerReceivesAccesses(t *testing.T) {
	tab := NewTable(64, Linear)
	var accesses int
	tab.Tracer = tracerFunc(func(addr uint64, size int, write bool) { accesses++ })
	tab.Increment(42)
	if accesses == 0 {
		t.Error("tracer saw no accesses")
	}
}

type tracerFunc func(addr uint64, size int, write bool)

func (f tracerFunc) Access(addr uint64, size int, write bool) { f(addr, size, write) }
