package kmercnt

import (
	"unsafe"

	"repro/internal/genome"
	"repro/internal/prefetch"
	"repro/internal/seq2"
	"repro/internal/tuning"
)

// Wave-batched counting: the paper observes that kmer-cnt's stalls
// "could potentially be mitigated by implementing software prefetching,
// since the k-mers to be looked up are known in advance". This is the
// hash-table sibling of fmindex's lock-step batch engine: k-mers are
// collected into a wave, every wave member's primary slot is software-
// prefetched (PREFETCHT0/PRFM via internal/prefetch), and the inserts
// then run over lines already in flight — W independent misses overlap
// instead of serializing. Insert order within a wave is unchanged, so
// tables are bit-identical to the serial counters'.

// WaveWidth is the prefetch window: how many k-mer slots are issued
// before the first insert consumes one. Like fmindex.batch_width it is
// probed from the host's memory-level-parallelism capacity (and cached
// on disk); unlike it, hash probes carry no per-lane state, so wider
// waves stay cheap and the default sits higher. Width is pure dispatch
// policy — any value yields identical tables.
var WaveWidth = tuning.NewInt("kmercnt.wave_width", 64, 4, 512, func() int {
	return prefetch.BestWidth([]int{16, 32, 64, 128})
})

// Prefetcher is the optional MemTracer extension for software-prefetch
// visibility (cachesim.Hierarchy implements it). Tracers without it see
// only the demand stream — identical, insert for insert, to the serial
// counters'.
type Prefetcher interface {
	Prefetch(addr uint64, size int)
}

// prefetchSlot pulls a key's primary slot lines toward the core and
// mirrors them into pt's prefetch stream (at the same synthetic
// addresses trace uses). Collision chains past the primary slot are
// not prefetched — they are the rare case by construction.
func (t *Table) prefetchSlot(key uint64, pt Prefetcher) {
	slot := hash(key) & t.mask
	prefetch.Ptr(unsafe.Pointer(&t.keys[slot]))
	prefetch.Ptr(unsafe.Pointer(&t.counts[slot]))
	if pt != nil {
		pt.Prefetch(slot*8, 8)
		pt.Prefetch(1<<40+slot*4, 4)
	}
}

// flushWave prefetches every wave member's slot, then inserts them in
// collection order. A mid-wave grow makes the remaining prefetches
// stale (wrong mask) — harmless: prefetch is advisory, inserts recompute.
func (t *Table) flushWave(wave []uint64, pt Prefetcher) {
	for _, key := range wave {
		t.prefetchSlot(key, pt)
	}
	for _, key := range wave {
		t.Increment(key)
	}
}

// waveScratch returns the table's grow-only wave buffer sized to the
// resolved width.
func (t *Table) waveScratch() []uint64 {
	w := WaveWidth.Get()
	if cap(t.wave) < w {
		t.wave = make([]uint64, 0, w)
	}
	return t.wave[:0]
}

// CountSeqBatched inserts every canonical k-mer of s using the
// wave-batched schedule and returns the k-mer count. Tables are
// identical to CountSeq's.
func CountSeqBatched(t *Table, s genome.Seq, k int) uint64 {
	wave := t.waveScratch()
	pt, _ := t.Tracer.(Prefetcher)
	var n uint64
	genome.EachKmer(s, k, func(_ int, code uint64) {
		wave = append(wave, Canonical(code, k))
		n++
		if len(wave) == cap(wave) {
			t.flushWave(wave, pt)
			wave = wave[:0]
		}
	})
	t.flushWave(wave, pt)
	t.wave = wave[:0]
	return n
}

// CountSeqPackedBatched is CountSeqPacked on the wave-batched schedule:
// the 2-bit stream decoder fills the wave, the flush overlaps the slot
// misses. This is the kernel's hot path (RunKernelCtx). Tables are
// identical to CountSeqPacked's.
func CountSeqPackedBatched(t *Table, p seq2.Packed, k int) uint64 {
	n := p.Len()
	if n < k || k <= 0 || k > 31 {
		return 0
	}
	wave := t.waveScratch()
	pt, _ := t.Tracer.(Prefetcher)
	shift := 2 * uint(k-1)
	mask := uint64(1)<<(2*uint(k)) - 1
	words := p.WordsSlice()
	var code, rcode uint64
	var w uint64
	var count uint64
	for i := 0; i < n; i++ {
		if i%seq2.BasesPerWord == 0 {
			w = words[i/seq2.BasesPerWord]
		}
		b := w & 3
		w >>= 2
		code = (code<<2 | b) & mask
		rcode = rcode>>2 | (3-b)<<shift
		if i >= k-1 {
			canon := code
			if rcode < code {
				canon = rcode
			}
			wave = append(wave, canon)
			count++
			if len(wave) == cap(wave) {
				t.flushWave(wave, pt)
				wave = wave[:0]
			}
		}
	}
	t.flushWave(wave, pt)
	t.wave = wave[:0]
	return count
}
