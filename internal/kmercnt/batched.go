package kmercnt

import "repro/internal/genome"

// Batched counting: the paper observes that kmer-cnt's stalls "could
// potentially be mitigated by implementing software prefetching, since
// the k-mers to be looked up are known in advance". This implements
// that optimization: k-mers are collected into a batch, their slots
// are computed and prefetched up front (touching the slot memory so
// the hardware fetches the lines), and the inserts then run over warm
// lines. On real hardware this converts serial DRAM latencies into
// overlapped ones; in the cache simulator the first touch issues the
// miss and the insert hits.

// batchSize is the prefetch window: large enough to cover DRAM
// latency, small enough to stay in the L1 (64 lines).
const batchSize = 64

// prefetchSlot touches the primary slot for a key, pulling its lines
// toward the core (and into the simulated hierarchy via the tracer).
func (t *Table) prefetchSlot(key uint64) {
	slot := hash(key) & t.mask
	if t.Tracer != nil {
		t.Tracer.Access(slot*8, 8, false)
		t.Tracer.Access(1<<40+slot*4, 4, false)
	}
	// Touch the slot so the line is resident; the compiler cannot
	// remove a read with an observable sink.
	if t.keys[slot] == ^uint64(0) {
		panic("kmercnt: sentinel collision")
	}
}

// CountSeqBatched inserts every canonical k-mer of s using the
// prefetch-batched schedule and returns the k-mer count.
func CountSeqBatched(t *Table, s genome.Seq, k int) uint64 {
	var batch [batchSize]uint64
	fill := 0
	var n uint64
	flush := func() {
		for i := 0; i < fill; i++ {
			t.prefetchSlot(batch[i])
		}
		for i := 0; i < fill; i++ {
			t.Increment(batch[i])
		}
		fill = 0
	}
	genome.EachKmer(s, k, func(_ int, code uint64) {
		batch[fill] = Canonical(code, k)
		fill++
		n++
		if fill == batchSize {
			flush()
		}
	})
	flush()
	return n
}
