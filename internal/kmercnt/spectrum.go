package kmercnt

// K-mer spectrum analysis: what Flye does with the counts. The
// abundance histogram of sequencing reads has a characteristic shape —
// an error spike at count 1-2, a coverage peak near the sequencing
// depth — from which assemblers estimate coverage, genome size and the
// solid-k-mer threshold without any reference.

// Histogram returns h where h[c] is the number of distinct k-mers with
// count c, for c in [1, maxCount]; counts above maxCount accumulate in
// h[maxCount].
func (t *Table) Histogram(maxCount int) []uint64 {
	if maxCount < 1 {
		maxCount = 1
	}
	h := make([]uint64, maxCount+1)
	for i, key := range t.keys {
		if key == 0 {
			continue
		}
		c := int(t.counts[i])
		if c > maxCount {
			c = maxCount
		}
		h[c]++
	}
	return h
}

// SpectrumStats summarizes a read-set k-mer spectrum.
type SpectrumStats struct {
	CoveragePeak   int     // abundance at the homozygous coverage peak
	SolidThreshold int     // minimum count separating errors from genuine k-mers
	GenomeSize     uint64  // estimated distinct genomic k-mers
	ErrorKmers     uint64  // k-mers below the solid threshold
	TotalKmers     uint64  // all counted k-mer instances
	ErrorRateEst   float64 // per-k-mer error fraction estimate
}

// AnalyzeSpectrum finds the coverage peak (the histogram maximum above
// the error valley) and derives genome-size and error estimates, the
// way GenomeScope-style estimators and Flye's solid-k-mer selection
// work.
func AnalyzeSpectrum(hist []uint64) SpectrumStats {
	var s SpectrumStats
	if len(hist) < 3 {
		return s
	}
	// Error k-mers dominate count 1 and decay; the valley is the first
	// local minimum, the coverage peak the maximum after it.
	valley := 1
	for c := 2; c < len(hist)-1; c++ {
		if hist[c] <= hist[c-1] && hist[c] <= hist[c+1] {
			valley = c
			break
		}
	}
	peak := valley
	for c := valley; c < len(hist); c++ {
		if hist[c] > hist[peak] {
			peak = c
		}
	}
	s.CoveragePeak = peak
	s.SolidThreshold = valley
	for c := 1; c < len(hist); c++ {
		instances := hist[c] * uint64(c)
		s.TotalKmers += instances
		if c < valley {
			s.ErrorKmers += hist[c]
		} else {
			s.GenomeSize += hist[c]
		}
	}
	if s.TotalKmers > 0 {
		var errInstances uint64
		for c := 1; c < valley; c++ {
			errInstances += hist[c] * uint64(c)
		}
		s.ErrorRateEst = float64(errInstances) / float64(s.TotalKmers)
	}
	return s
}
