package kmercnt

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/genome"
	"repro/internal/readsim"
)

func TestHistogramBasics(t *testing.T) {
	tab := NewTable(64, Linear)
	for i := 0; i < 5; i++ {
		tab.Increment(100)
	}
	tab.Increment(200)
	tab.Increment(300)
	tab.Increment(300)
	h := tab.Histogram(10)
	if h[1] != 1 || h[2] != 1 || h[5] != 1 {
		t.Errorf("histogram %v", h)
	}
	// Clamping: count 5 lands in h[3] when maxCount = 3.
	h3 := tab.Histogram(3)
	if h3[3] != 1 || h3[1] != 1 || h3[2] != 1 {
		t.Errorf("clamped histogram %v", h3)
	}
}

func TestSpectrumRecoversCoverageAndGenomeSize(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ref := genome.NewReference(rng, "g", 30_000, 0).Seq
	const k = 17
	const coverage = 20
	sim := readsim.New(2)
	cfg := readsim.DefaultShort()
	cfg.Length = 150
	cfg.SubRate = 0.005
	nReads := coverage * len(ref) / cfg.Length
	reads := sim.ShortReads(ref, -1, nReads, cfg, "r")

	tab := NewTable(1<<16, Linear)
	for _, r := range reads {
		CountSeq(tab, r.Seq, k)
	}
	stats := AnalyzeSpectrum(tab.Histogram(60))
	// Coverage peak near 20x (k-mer coverage is slightly below read
	// coverage by the (L-k+1)/L factor: ~17.9).
	wantPeak := float64(coverage) * float64(cfg.Length-k+1) / float64(cfg.Length)
	if math.Abs(float64(stats.CoveragePeak)-wantPeak) > 5 {
		t.Errorf("coverage peak %d, want ~%.0f", stats.CoveragePeak, wantPeak)
	}
	// Genome size: ~30k distinct k-mers (unique random genome).
	if float64(stats.GenomeSize) < 25_000 || float64(stats.GenomeSize) > 40_000 {
		t.Errorf("genome size estimate %d, want ~30000", stats.GenomeSize)
	}
	if stats.SolidThreshold < 2 {
		t.Errorf("solid threshold %d, want above the error spike", stats.SolidThreshold)
	}
	if stats.ErrorRateEst <= 0 || stats.ErrorRateEst > 0.2 {
		t.Errorf("error rate estimate %v", stats.ErrorRateEst)
	}
}

func TestSpectrumErrorFreeReads(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ref := genome.NewReference(rng, "g", 10_000, 0).Seq
	sim := readsim.New(4)
	cfg := readsim.DefaultShort()
	cfg.Length = 100
	cfg.SubRate = 0
	cfg.IndelRate = 0
	reads := sim.ShortReads(ref, -1, 1500, cfg, "r")
	tab := NewTable(1<<14, Linear)
	for _, r := range reads {
		CountSeq(tab, r.Seq, 17)
	}
	stats := AnalyzeSpectrum(tab.Histogram(40))
	// No errors: the error fraction should be tiny.
	if stats.ErrorRateEst > 0.02 {
		t.Errorf("error-free reads estimated error rate %v", stats.ErrorRateEst)
	}
}

func TestAnalyzeSpectrumDegenerate(t *testing.T) {
	if s := AnalyzeSpectrum(nil); s.GenomeSize != 0 {
		t.Error("nil histogram produced estimates")
	}
	if s := AnalyzeSpectrum([]uint64{0, 5}); s.GenomeSize != 0 {
		t.Error("tiny histogram produced estimates")
	}
}
