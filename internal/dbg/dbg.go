// Package dbg implements the De-Bruijn graph construction kernel from
// the Platypus variant caller: reads aligned to a reference window are
// re-assembled into a De-Bruijn graph (hash table of k-mer nodes), the
// graph is checked for cycles — retrying with a larger k when one is
// found — and candidate haplotypes are enumerated by traversing
// reference-anchored paths with sufficient read support.
package dbg

import (
	"context"

	"repro/internal/faultinject"
	"repro/internal/genome"
	"repro/internal/parallel"
	"repro/internal/perf"
)

// Config parameterizes assembly.
type Config struct {
	K             int // initial k-mer size
	MaxK          int // largest k to try when cycles appear
	KStep         int // k increment per retry
	MinEdgeWeight int // read support needed to traverse a non-reference edge
	MaxHaplotypes int // cap on enumerated haplotypes
	MaxPathLen    int // cap on haplotype length (cycle safety net)
}

// DefaultConfig mirrors Platypus-scale assembly parameters.
func DefaultConfig() Config {
	return Config{K: 15, MaxK: 65, KStep: 10, MinEdgeWeight: 2, MaxHaplotypes: 16, MaxPathLen: 4096}
}

// Region is one assembly task: a reference window plus the reads
// aligned to it.
type Region struct {
	Ref   genome.Seq
	Reads []genome.Seq
}

// node is one k-mer vertex: out-edge weights per next base, with
// reference edges flagged.
type node struct {
	weight [4]int32
	refOut int8 // reference out-edge base, -1 if none
}

// graph is a De-Bruijn graph keyed by packed k-mer code. Node payloads
// live in a contiguous slab indexed through the hash map, so a reset
// graph keeps both the slab and the map's buckets: steady-state
// assembly over same-sized regions stops allocating node storage.
type graph struct {
	k     int
	mask  uint64
	index map[uint64]int32 // k-mer code -> slab position
	slab  []node

	lookups uint64 // hash-table lookups (Table III unit)
	edges   int

	// Reusable traversal storage (cycle DFS and path enumeration).
	color   map[uint64]uint8
	stack   []frame
	pathBuf genome.Seq
}

// frame is one iterative-DFS stack entry.
type frame struct {
	code uint64
	next int
}

func newGraph(k int) *graph {
	g := &graph{}
	g.reset(k)
	return g
}

// reset clears the graph for a new build at k-mer size k, retaining
// the node slab, map buckets, and traversal buffers.
func (g *graph) reset(k int) {
	g.k = k
	g.mask = uint64(1)<<(2*uint(k)) - 1
	g.slab = g.slab[:0]
	if g.index == nil {
		g.index = make(map[uint64]int32)
	} else {
		clear(g.index)
	}
	g.lookups = 0
	g.edges = 0
}

// getNode fetches or creates the node for a k-mer code, counting the
// hash lookup either way. The returned pointer is valid until the next
// getNode call (the slab may move when it grows).
func (g *graph) getNode(code uint64) *node {
	g.lookups++
	if idx, ok := g.index[code]; ok {
		return &g.slab[idx]
	}
	g.index[code] = int32(len(g.slab))
	g.slab = append(g.slab, node{refOut: -1})
	return &g.slab[len(g.slab)-1]
}

// node looks up an existing node, counting the hash lookup. The same
// pointer-validity rule as getNode applies.
func (g *graph) node(code uint64) (*node, bool) {
	g.lookups++
	idx, ok := g.index[code]
	if !ok {
		return nil, false
	}
	return &g.slab[idx], true
}

// addSeq threads a sequence through the graph, incrementing edge
// weights; isRef additionally marks reference edges.
func (g *graph) addSeq(s genome.Seq, isRef bool) {
	if len(s) <= g.k {
		return
	}
	code := genome.KmerCode(s, 0, g.k)
	for i := g.k; i < len(s); i++ {
		nd := g.getNode(code)
		b := s[i] & 3
		if nd.weight[b] == 0 {
			g.edges++
		}
		nd.weight[b]++
		if isRef {
			nd.refOut = int8(b)
		}
		code = (code<<2 | uint64(b)) & g.mask
	}
	g.getNode(code) // terminal node
}

// hasCycleFrom detects a directed cycle reachable from start using an
// iterative three-color DFS over traversable edges.
func (g *graph) hasCycleFrom(start uint64, minWeight int32) bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	if g.color == nil {
		g.color = make(map[uint64]uint8, len(g.slab))
	} else {
		clear(g.color)
	}
	color := g.color
	stack := append(g.stack[:0], frame{start, 0})
	defer func() { g.stack = stack[:0] }()
	color[start] = gray
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		nd, ok := g.node(f.code)
		if !ok {
			color[f.code] = black
			stack = stack[:len(stack)-1]
			continue
		}
		advanced := false
		for b := f.next; b < 4; b++ {
			w := nd.weight[b]
			if w < minWeight && int8(b) != nd.refOut {
				continue
			}
			if w == 0 {
				continue
			}
			succ := (f.code<<2 | uint64(b)) & g.mask
			f.next = b + 1
			switch color[succ] {
			case gray:
				return true
			case white:
				color[succ] = gray
				stack = append(stack, frame{succ, 0})
				advanced = true
			}
			if advanced {
				break
			}
		}
		if !advanced {
			color[f.code] = black
			stack = stack[:len(stack)-1]
		}
	}
	return false
}

// enumerate walks all traversable paths from the first reference k-mer
// to the last, emitting complete haplotype sequences.
func (g *graph) enumerate(ref genome.Seq, cfg Config) []genome.Seq {
	if len(ref) <= g.k {
		return nil
	}
	source := genome.KmerCode(ref, 0, g.k)
	sink := genome.KmerCode(ref, len(ref)-g.k, g.k)

	var haps []genome.Seq
	// Pre-size the path buffer to the enumeration cap so the recursive
	// appends below never reallocate; emitted haplotypes are cloned out.
	if need := cfg.MaxPathLen + g.k + 2; cap(g.pathBuf) < need {
		g.pathBuf = make(genome.Seq, 0, need)
	}
	prefix := append(g.pathBuf[:0], ref[:g.k]...)

	var walk func(code uint64, path genome.Seq)
	walk = func(code uint64, path genome.Seq) {
		if len(haps) >= cfg.MaxHaplotypes || len(path) > cfg.MaxPathLen {
			return
		}
		if code == sink && len(path) > g.k {
			haps = append(haps, path.Clone())
			// The sink k-mer may still extend (e.g. repeated terminal
			// k-mer) but Platypus stops haplotypes at the window end.
			return
		}
		nd, ok := g.node(code)
		if !ok {
			return
		}
		for b := 0; b < 4; b++ {
			w := nd.weight[b]
			if w == 0 {
				continue
			}
			if w < int32(cfg.MinEdgeWeight) && int8(b) != nd.refOut {
				continue
			}
			succ := (code<<2 | uint64(b)) & g.mask
			walk(succ, append(path, genome.Base(b)))
		}
	}
	walk(source, prefix)
	return haps
}

// Result reports one region assembly.
type Result struct {
	K            int // k-mer size that produced an acyclic graph
	Nodes, Edges int
	Haplotypes   []genome.Seq
	HashLookups  uint64
	CycleRetries int
}

// Assembler owns reusable De-Bruijn graph storage. One Assembler per
// worker: a worker looping over regions rebuilds into the same node
// slab, hash buckets, and traversal buffers instead of reallocating
// them per region. Not safe for concurrent use. Results are identical
// to the package-level AssembleRegion, including HashLookups.
type Assembler struct {
	g graph
}

// NewAssembler returns an empty Assembler; storage grows on first use.
func NewAssembler() *Assembler { return &Assembler{} }

// AssembleRegion builds the De-Bruijn graph for a region, escalating k
// until the graph is acyclic (or MaxK is reached), then enumerates
// candidate haplotypes.
func AssembleRegion(rg *Region, cfg Config) Result {
	return NewAssembler().AssembleRegion(rg, cfg)
}

// AssembleRegion assembles one region reusing a's graph storage.
func (a *Assembler) AssembleRegion(rg *Region, cfg Config) Result {
	var res Result
	g := &a.g
	for k := cfg.K; k <= cfg.MaxK; k += cfg.KStep {
		if len(rg.Ref) <= k {
			break
		}
		g.reset(k)
		g.addSeq(rg.Ref, true)
		for _, r := range rg.Reads {
			g.addSeq(r, false)
		}
		source := genome.KmerCode(rg.Ref, 0, k)
		cyclic := g.hasCycleFrom(source, int32(cfg.MinEdgeWeight))
		res.HashLookups += g.lookups
		if cyclic {
			res.CycleRetries++
			continue
		}
		res.K = k
		res.Nodes = len(g.slab)
		res.Edges = g.edges
		g.lookups = 0
		res.Haplotypes = g.enumerate(rg.Ref, cfg)
		res.HashLookups += g.lookups
		return res
	}
	// Cyclic at every k: fall back to the reference haplotype only,
	// as Platypus does when assembly fails.
	res.K = 0
	res.Haplotypes = []genome.Seq{rg.Ref.Clone()}
	return res
}

// KernelResult aggregates a dbg benchmark execution.
type KernelResult struct {
	Regions      int
	Haplotypes   int
	HashLookups  uint64
	CycleRetries int
	TaskStats    *perf.TaskStats
	Counters     perf.Counters
}

// RunKernel assembles all regions with dynamic scheduling.
// It panics on failure; cancellable callers use RunKernelCtx.
func RunKernel(regions []*Region, cfg Config, threads int) KernelResult {
	res, err := RunKernelCtx(context.Background(), regions, cfg, threads)
	if err != nil {
		panic(err)
	}
	return res
}

// RunKernelCtx is RunKernel with cooperative cancellation and a fault
// trip-point per region.
func RunKernelCtx(ctx context.Context, regions []*Region, cfg Config, threads int) (KernelResult, error) {
	if threads <= 0 {
		threads = 1
	}
	type ws struct {
		haps      int
		lookups   uint64
		retries   int
		stats     *perf.TaskStats
		assembler *Assembler
		_         perf.CacheLinePad // workers update these per task; keep shards on private cache lines
	}
	workers := make([]ws, threads)
	for i := range workers {
		workers[i].stats = perf.NewTaskStats("hash lookups")
		workers[i].assembler = NewAssembler()
	}
	// Region cost skews with repeat content (k-bumps and cycle
	// retries), so the scheduler is the probed parallel.dispatch choice:
	// shared counter or work stealing, pure policy either way.
	err := parallel.ForEachDispatchErr(ctx, len(regions), threads, func(tctx context.Context, w, i int) error {
		if err := faultinject.Point(tctx); err != nil {
			return err
		}
		r := workers[w].assembler.AssembleRegion(regions[i], cfg)
		workers[w].haps += len(r.Haplotypes)
		workers[w].lookups += r.HashLookups
		workers[w].retries += r.CycleRetries
		workers[w].stats.Observe(float64(r.HashLookups))
		return nil
	})
	if err != nil {
		return KernelResult{}, err
	}
	res := KernelResult{Regions: len(regions), TaskStats: perf.NewTaskStats("hash lookups")}
	for i := range workers {
		res.Haplotypes += workers[i].haps
		res.HashLookups += workers[i].lookups
		res.CycleRetries += workers[i].retries
		res.TaskStats.Merge(workers[i].stats)
	}
	// Hash-table dominated: every lookup carries hashing arithmetic,
	// k-mer packing, probe loads and compare branches (Platypus'
	// assembly loop runs ~18 instructions per lookup).
	res.Counters.Add(perf.Load, res.HashLookups*5)
	res.Counters.Add(perf.IntALU, res.HashLookups*9)
	res.Counters.Add(perf.Store, res.HashLookups)
	res.Counters.Add(perf.Branch, res.HashLookups*3)
	return res, nil
}
