package dbg

import "repro/internal/genome"

// Haplotype ranking: when a region assembles more candidate haplotypes
// than the caller can afford to evaluate (each costs |R| PairHMM
// alignments), Platypus ranks them by read support. The support score
// of a haplotype is the minimum edge weight along its path — the
// weakest link bounds how many reads could have produced it.

// RankedHaplotype pairs a haplotype with its support score.
type RankedHaplotype struct {
	Seq     genome.Seq
	Support int32 // minimum traversed edge weight
}

// RankHaplotypes scores each haplotype against the graph built from
// the region (the same k as the assembly result) and returns them
// sorted by descending support; the reference haplotype, if present,
// is always ranked first regardless of score, as callers need it as
// the baseline.
func RankHaplotypes(rg *Region, res *Result) []RankedHaplotype {
	if res.K <= 0 || len(res.Haplotypes) == 0 {
		out := make([]RankedHaplotype, len(res.Haplotypes))
		for i, h := range res.Haplotypes {
			out[i] = RankedHaplotype{Seq: h}
		}
		return out
	}
	g := newGraph(res.K)
	g.addSeq(rg.Ref, true)
	for _, r := range rg.Reads {
		g.addSeq(r, false)
	}
	ranked := make([]RankedHaplotype, 0, len(res.Haplotypes))
	for _, h := range res.Haplotypes {
		ranked = append(ranked, RankedHaplotype{Seq: h, Support: pathSupport(g, h)})
	}
	// Stable selection sort by descending support with the reference
	// pinned first.
	refIdx := -1
	for i, r := range ranked {
		if r.Seq.Equal(rg.Ref) {
			refIdx = i
			break
		}
	}
	if refIdx > 0 {
		ref := ranked[refIdx]
		copy(ranked[1:refIdx+1], ranked[:refIdx])
		ranked[0] = ref
	}
	start := 0
	if refIdx >= 0 {
		start = 1
	}
	for i := start; i < len(ranked); i++ {
		best := i
		for j := i + 1; j < len(ranked); j++ {
			if ranked[j].Support > ranked[best].Support {
				best = j
			}
		}
		ranked[i], ranked[best] = ranked[best], ranked[i]
	}
	return ranked
}

// pathSupport walks a haplotype through the graph and returns the
// minimum edge weight encountered (0 if any edge is missing).
func pathSupport(g *graph, hap genome.Seq) int32 {
	if len(hap) <= g.k {
		return 0
	}
	support := int32(1 << 30)
	code := genome.KmerCode(hap, 0, g.k)
	for i := g.k; i < len(hap); i++ {
		nd, ok := g.node(code)
		if !ok {
			return 0
		}
		b := hap[i] & 3
		w := nd.weight[b]
		if w == 0 {
			return 0
		}
		if w < support {
			support = w
		}
		code = (code<<2 | uint64(b)) & g.mask
	}
	return support
}
