package dbg

import (
	"math/rand"
	"testing"

	"repro/internal/genome"
)

// tileReads produces error-free reads of length rl tiled every step
// bases across src, so every position has coverage.
func tileReads(src genome.Seq, rl, step int) []genome.Seq {
	var out []genome.Seq
	for pos := 0; pos+rl <= len(src); pos += step {
		out = append(out, src[pos:pos+rl])
	}
	// Ensure the tail is covered.
	if len(src) >= rl {
		out = append(out, src[len(src)-rl:])
	}
	return out
}

func TestAssembleNoVariantsYieldsReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ref := genome.Random(rng, 300)
	rg := &Region{Ref: ref, Reads: tileReads(ref, 100, 10)}
	res := AssembleRegion(rg, DefaultConfig())
	if res.K == 0 {
		t.Fatal("assembly failed on clean input")
	}
	if len(res.Haplotypes) != 1 {
		t.Fatalf("got %d haplotypes, want 1", len(res.Haplotypes))
	}
	if !res.Haplotypes[0].Equal(ref) {
		t.Error("haplotype does not equal the reference")
	}
	if res.HashLookups == 0 {
		t.Error("no hash lookups counted")
	}
}

func TestAssembleHetSNVYieldsTwoHaplotypes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ref := genome.Random(rng, 300)
	alt := ref.Clone()
	alt[150] = genome.Complement(alt[150])
	reads := tileReads(ref, 100, 15)
	reads = append(reads, tileReads(alt, 100, 15)...)
	rg := &Region{Ref: ref, Reads: reads}
	res := AssembleRegion(rg, DefaultConfig())
	if len(res.Haplotypes) != 2 {
		t.Fatalf("got %d haplotypes, want 2", len(res.Haplotypes))
	}
	foundRef, foundAlt := false, false
	for _, h := range res.Haplotypes {
		if h.Equal(ref) {
			foundRef = true
		}
		if h.Equal(alt) {
			foundAlt = true
		}
	}
	if !foundRef || !foundAlt {
		t.Errorf("haplotypes missing ref (%v) or alt (%v)", foundRef, foundAlt)
	}
}

func TestAssembleInsertionHaplotype(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ref := genome.Random(rng, 300)
	// 5-base insertion at position 150 on the alt haplotype.
	alt := append(ref[:150].Clone(), genome.Random(rng, 5)...)
	alt = append(alt, ref[150:]...)
	reads := tileReads(ref, 100, 15)
	reads = append(reads, tileReads(alt, 100, 15)...)
	rg := &Region{Ref: ref, Reads: reads}
	res := AssembleRegion(rg, DefaultConfig())
	foundAlt := false
	for _, h := range res.Haplotypes {
		if h.Equal(alt) {
			foundAlt = true
		}
	}
	if !foundAlt {
		t.Errorf("insertion haplotype not recovered among %d haplotypes", len(res.Haplotypes))
	}
}

func TestSequencingErrorsPruned(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ref := genome.Random(rng, 300)
	reads := tileReads(ref, 100, 10)
	// One read with a single error: weight-1 edges, pruned by
	// MinEdgeWeight=2.
	bad := ref[100:200].Clone()
	bad[50] = genome.Complement(bad[50])
	reads = append(reads, bad)
	rg := &Region{Ref: ref, Reads: reads}
	res := AssembleRegion(rg, DefaultConfig())
	if len(res.Haplotypes) != 1 {
		t.Fatalf("got %d haplotypes, want 1 (error should be pruned)", len(res.Haplotypes))
	}
	if !res.Haplotypes[0].Equal(ref) {
		t.Error("haplotype is not the reference")
	}
}

func TestRepeatForcesKEscalation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Reference with a 20-base tandem-like repeat separated by a short
	// unique spacer: cyclic at k=15, acyclic at larger k.
	repeat := genome.Random(rng, 20)
	var ref genome.Seq
	ref = append(ref, genome.Random(rng, 80)...)
	ref = append(ref, repeat...)
	ref = append(ref, genome.Random(rng, 10)...)
	ref = append(ref, repeat...)
	ref = append(ref, genome.Random(rng, 80)...)
	rg := &Region{Ref: ref, Reads: tileReads(ref, 100, 10)}
	cfg := DefaultConfig()
	res := AssembleRegion(rg, cfg)
	if res.CycleRetries == 0 {
		t.Error("expected at least one cycle retry for repeat region")
	}
	if res.K <= cfg.K {
		t.Errorf("k did not escalate: %d", res.K)
	}
	foundRef := false
	for _, h := range res.Haplotypes {
		if h.Equal(ref) {
			foundRef = true
		}
	}
	if !foundRef {
		t.Error("reference haplotype not recovered after escalation")
	}
}

func TestGraphCycleDetection(t *testing.T) {
	// Sequence ending where it began: ACGTACGTACGT has k-mer cycle at k=4.
	s := genome.MustFromString("ACGTACGTACGT")
	g := newGraph(4)
	g.addSeq(s, true)
	if !g.hasCycleFrom(genome.KmerCode(s, 0, 4), 1) {
		t.Error("tandem repeat should be cyclic at k=4")
	}
	// A non-repetitive sequence is acyclic.
	rng := rand.New(rand.NewSource(6))
	u := genome.Random(rng, 50)
	g2 := newGraph(15)
	g2.addSeq(u, true)
	if g2.hasCycleFrom(genome.KmerCode(u, 0, 15), 1) {
		t.Error("random 50-mer flagged cyclic at k=15")
	}
}

func TestMaxHaplotypesCap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ref := genome.Random(rng, 300)
	reads := tileReads(ref, 100, 10)
	// Plant several het SNVs to explode the path count.
	for _, pos := range []int{60, 120, 180, 240} {
		alt := ref.Clone()
		alt[pos] = genome.Complement(alt[pos])
		reads = append(reads, tileReads(alt, 100, 10)...)
	}
	cfg := DefaultConfig()
	cfg.MaxHaplotypes = 4
	res := AssembleRegion(&Region{Ref: ref, Reads: reads}, cfg)
	if len(res.Haplotypes) > 4 {
		t.Errorf("%d haplotypes exceed cap 4", len(res.Haplotypes))
	}
}

func TestRunKernelDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var regions []*Region
	for i := 0; i < 6; i++ {
		ref := genome.Random(rng, 200+rng.Intn(200))
		alt := ref.Clone()
		alt[len(alt)/2] = genome.Complement(alt[len(alt)/2])
		reads := tileReads(ref, 80, 12)
		reads = append(reads, tileReads(alt, 80, 12)...)
		regions = append(regions, &Region{Ref: ref, Reads: reads})
	}
	r1 := RunKernel(regions, DefaultConfig(), 1)
	r4 := RunKernel(regions, DefaultConfig(), 4)
	if r1.Haplotypes != r4.Haplotypes || r1.HashLookups != r4.HashLookups {
		t.Errorf("threading changed results: %+v vs %+v", r1, r4)
	}
	if r1.TaskStats.Count() != 6 {
		t.Errorf("task count %d", r1.TaskStats.Count())
	}
	if r1.Counters.Total() == 0 {
		t.Error("no ops counted")
	}
}

func TestTinyRegionFallsBack(t *testing.T) {
	rg := &Region{Ref: genome.MustFromString("ACGTACGT")}
	res := AssembleRegion(rg, DefaultConfig())
	if len(res.Haplotypes) != 1 || !res.Haplotypes[0].Equal(rg.Ref) {
		t.Error("tiny region should fall back to the reference haplotype")
	}
}
