package dbg

import (
	"math/rand"
	"testing"

	"repro/internal/genome"
)

func randomDbgRegion(rng *rand.Rand) *Region {
	ref := genome.Random(rng, 80+rng.Intn(200))
	rg := &Region{Ref: ref}
	for r := 0; r < 5+rng.Intn(10); r++ {
		lo := rng.Intn(len(ref) / 2)
		hi := lo + 30 + rng.Intn(len(ref)-lo-30)
		read := ref[lo:hi].Clone()
		for m := 0; m < len(read)/25+1; m++ {
			read[rng.Intn(len(read))] = genome.Base(rng.Intn(4))
		}
		rg.Reads = append(rg.Reads, read)
	}
	return rg
}

func resultsEqual(a, b Result) bool {
	if a.K != b.K || a.Nodes != b.Nodes || a.Edges != b.Edges ||
		a.HashLookups != b.HashLookups || a.CycleRetries != b.CycleRetries ||
		len(a.Haplotypes) != len(b.Haplotypes) {
		return false
	}
	for i := range a.Haplotypes {
		if !a.Haplotypes[i].Equal(b.Haplotypes[i]) {
			return false
		}
	}
	return true
}

// A reused Assembler must produce results identical to fresh assembly
// — including HashLookups, the kernel's reported work metric.
func TestAssemblerReuseDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	a := NewAssembler()
	cfg := DefaultConfig()
	for trial := 0; trial < 40; trial++ {
		rg := randomDbgRegion(rng)
		want := AssembleRegion(rg, cfg)
		got := a.AssembleRegion(rg, cfg)
		if !resultsEqual(got, want) {
			t.Fatalf("trial %d: reused assembler diverged:\n got %+v\nwant %+v", trial, got, want)
		}
	}
}

// Interleaving regions of very different sizes stresses slab
// truncation and map clearing.
func TestAssemblerReuseAcrossSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	a := NewAssembler()
	cfg := DefaultConfig()
	big := randomDbgRegion(rng)
	small := &Region{Ref: genome.Random(rng, 40)}
	for trial := 0; trial < 10; trial++ {
		for _, rg := range []*Region{big, small, big} {
			want := AssembleRegion(rg, cfg)
			got := a.AssembleRegion(rg, cfg)
			if !resultsEqual(got, want) {
				t.Fatalf("trial %d: diverged after size change", trial)
			}
		}
	}
}

// Fresh-graph versus reused-Assembler region assembly: the bench
// harness's dbg before/after pair.
func BenchmarkAssembleRegion(b *testing.B) {
	rng := rand.New(rand.NewSource(63))
	regions := make([]*Region, 8)
	for i := range regions {
		regions[i] = randomDbgRegion(rng)
	}
	cfg := DefaultConfig()
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			AssembleRegion(regions[i%len(regions)], cfg)
		}
	})
	b.Run("pooled", func(b *testing.B) {
		b.ReportAllocs()
		a := NewAssembler()
		for i := 0; i < b.N; i++ {
			a.AssembleRegion(regions[i%len(regions)], cfg)
		}
	})
}
