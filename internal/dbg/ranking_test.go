package dbg

import (
	"math/rand"
	"testing"

	"repro/internal/genome"
)

func TestRankHaplotypesReferenceFirst(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ref := genome.Random(rng, 300)
	alt := ref.Clone()
	alt[150] = genome.Complement(alt[150])
	// Alt has much deeper coverage than ref, yet ref ranks first.
	reads := tileReads(ref, 100, 40)
	reads = append(reads, tileReads(alt, 100, 5)...)
	rg := &Region{Ref: ref, Reads: reads}
	res := AssembleRegion(rg, DefaultConfig())
	if len(res.Haplotypes) < 2 {
		t.Fatalf("expected 2+ haplotypes, got %d", len(res.Haplotypes))
	}
	ranked := RankHaplotypes(rg, &res)
	if !ranked[0].Seq.Equal(ref) {
		t.Error("reference not pinned first")
	}
}

func TestRankHaplotypesSupportOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ref := genome.Random(rng, 300)
	altDeep := ref.Clone()
	altDeep[100] = genome.Complement(altDeep[100])
	altShallow := ref.Clone()
	altShallow[200] = genome.Complement(altShallow[200])
	reads := tileReads(ref, 100, 20)
	reads = append(reads, tileReads(altDeep, 100, 8)...)     // deep support
	reads = append(reads, tileReads(altShallow, 100, 35)...) // shallow support
	rg := &Region{Ref: ref, Reads: reads}
	cfg := DefaultConfig()
	cfg.MaxHaplotypes = 8
	res := AssembleRegion(rg, cfg)
	ranked := RankHaplotypes(rg, &res)
	var deepRank, shallowRank = -1, -1
	for i, r := range ranked {
		if r.Seq.Equal(altDeep) {
			deepRank = i
		}
		if r.Seq.Equal(altShallow) {
			shallowRank = i
		}
	}
	if deepRank < 0 || shallowRank < 0 {
		t.Skip("one alt haplotype pruned; support comparison unavailable")
	}
	if deepRank > shallowRank {
		t.Errorf("deep-coverage haplotype ranked %d below shallow %d", deepRank, shallowRank)
	}
	for _, r := range ranked {
		if !r.Seq.Equal(rg.Ref) && r.Support <= 0 {
			t.Errorf("assembled haplotype has support %d", r.Support)
		}
	}
}

func TestRankHaplotypesFallbackAssembly(t *testing.T) {
	rg := &Region{Ref: genome.MustFromString("ACGTACGT")}
	res := AssembleRegion(rg, DefaultConfig()) // falls back, K == 0
	ranked := RankHaplotypes(rg, &res)
	if len(ranked) != 1 || !ranked[0].Seq.Equal(rg.Ref) {
		t.Error("fallback ranking wrong")
	}
}

func TestPathSupportMissingEdge(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ref := genome.Random(rng, 200)
	g := newGraph(15)
	g.addSeq(ref, true)
	foreign := genome.Random(rng, 100)
	if s := pathSupport(g, foreign); s != 0 {
		t.Errorf("foreign haplotype support %d, want 0", s)
	}
	if s := pathSupport(g, ref); s < 1 {
		t.Errorf("reference support %d, want >= 1", s)
	}
}
