package dbg

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/genome"
	"repro/internal/parallel"
)

// TestRunKernelDispatchPolicyPure pins that the stealing-vs-chunked
// scheduler choice behind parallel.dispatch is pure policy for the dbg
// region loop: identical aggregates and per-task work distribution
// under both forced policies.
func TestRunKernelDispatchPolicyPure(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var regions []*Region
	for i := 0; i < 10; i++ {
		ref := genome.Random(rng, 150+rng.Intn(350)) // skewed region sizes
		alt := ref.Clone()
		alt[len(alt)/2] = genome.Complement(alt[len(alt)/2])
		reads := tileReads(ref, 80, 12)
		reads = append(reads, tileReads(alt, 80, 12)...)
		regions = append(regions, &Region{Ref: ref, Reads: reads})
	}
	run := func(policy int) KernelResult {
		defer parallel.ForceDispatch(policy)()
		return RunKernel(regions, DefaultConfig(), 4)
	}
	chunked := run(parallel.DispatchChunked)
	stealing := run(parallel.DispatchStealing)
	if chunked.Haplotypes != stealing.Haplotypes ||
		chunked.HashLookups != stealing.HashLookups ||
		chunked.CycleRetries != stealing.CycleRetries ||
		chunked.Regions != stealing.Regions {
		t.Errorf("dispatch policy changed results:\nchunked  %+v\nstealing %+v", chunked, stealing)
	}
	if !reflect.DeepEqual(chunked.TaskStats.Summarize(), stealing.TaskStats.Summarize()) {
		t.Errorf("dispatch policy changed task-work distribution:\nchunked  %+v\nstealing %+v",
			chunked.TaskStats.Summarize(), stealing.TaskStats.Summarize())
	}
	if !reflect.DeepEqual(chunked.Counters, stealing.Counters) {
		t.Errorf("dispatch policy changed op counters")
	}
}
