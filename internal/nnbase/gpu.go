package nnbase

import "repro/internal/simt"

// GPU execution model for nn-base, reproducing the paper's Table IV/V
// profile: fixed-size matrix multiplication with no control flow
// (perfect branch and warp efficiency), near-full occupancy (small
// shared-memory tiles, 256-thread blocks), and ~70% global load
// efficiency because the separable filters' channel counts are not
// multiples of the warp width.

// GPULaunch is the matmul kernel's per-block footprint: 256 threads,
// two modest shared tiles, lean registers — thread-limited occupancy.
func GPULaunch(cfg Config) simt.Launch {
	// Register pressure (34/thread) limits an SM to 7 of 8 blocks,
	// matching the paper's ~88% occupancy.
	tile := 32 * cfg.Kernel * 4 * 2
	return simt.Launch{
		ThreadsPerBlock:    256,
		SharedMemPerBlock:  tile + 8<<10,
		RegistersPerThread: 34,
	}
}

// RunGPU replays the network's per-chunk computation as a SIMT lane
// program: tiled matrix-vector multiplies over the separable
// convolution stack.
func RunGPU(m *Model, cfg Config, chunks int, dev simt.Device) (*simt.Metrics, simt.Launch) {
	launch := GPULaunch(cfg)
	metrics := &simt.Metrics{}
	ch := cfg.Channels
	steps := ChunkSize / m.Stride
	// Simulate a reduced number of representative tiles per chunk; the
	// metric ratios are scale-invariant.
	tilesPerBlock := steps / 64
	if tilesPerBlock < 1 {
		tilesPerBlock = 1
	}
	for c := 0; c < chunks; c++ {
		for b := 0; b < len(m.Blocks); b++ {
			for tile := 0; tile < tilesPerBlock; tile++ {
				w := simt.NewWarp(metrics, dev)
				// Input tile load: mostly-contiguous float32 reads, but
				// the filter/channel geometry (not a multiple of the
				// 32-thread warp) staggers every 4-lane group across
				// sector boundaries — the paper's explanation for the
				// ~70% load efficiency.
				w.GlobalLoad(func(lane int) uint64 {
					return uint64(tile)*2048 + uint64(lane)*4 + uint64(lane/4)*12
				}, 4)
				// Weight tile load: broadcast-friendly contiguous.
				w.GlobalLoad(func(lane int) uint64 {
					return 1<<35 + uint64(b)*8192 + uint64(lane)*4
				}, 4)
				// The multiply-accumulate loop: kernel*ch/warp iterations
				// of fully uniform FMAs from shared memory.
				iters := cfg.Kernel * ch / simt.WarpSize
				for it := 0; it < iters; it++ {
					w.SharedLoad()
					w.Exec(2) // FMA + pointer bump
				}
				// Filter widths are not integer multiples of the warp
				// width, so the epilogue runs with some lanes predicated
				// off — the paper's explanation for nn-base's 94.4%
				// non-predicated efficiency.
				w.ExecPredicated(10, func(lane int) bool { return lane < 20 })
				// Results written back coalesced.
				w.GlobalStore(func(lane int) uint64 {
					return 1<<36 + uint64(tile)*128 + uint64(lane)*4
				}, 4)
			}
		}
	}
	return metrics, launch
}
