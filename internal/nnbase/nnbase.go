// Package nnbase implements the neural-network basecalling kernel
// modelled on Bonito: raw nanopore signal is split into fixed 4000-
// sample chunks, normalized, pushed through a stack of depthwise-
// separable 1-D convolutions with Swish activations, and decoded with
// CTC into bases; chunk outputs are stitched into the final read.
// Weights are seeded-random (training is out of scope for a
// performance benchmark suite); the computation, shapes and memory
// behaviour match the original. A SIMT lane program reproduces the
// kernel's GPU profile for the paper's Tables IV and V.
package nnbase

import (
	"context"
	"math/rand"
	"sort"

	"repro/internal/faultinject"
	"repro/internal/genome"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/perf"
)

// ChunkSize is the paper's fixed signal chunk length.
const ChunkSize = 4000

// NumClasses is blank + 4 bases for CTC.
const NumClasses = 5

// Model is a Bonito-style separable convolution basecaller.
type Model struct {
	Stem   *nn.Conv1D
	Blocks []*nn.SeparableConv1D
	Norms  []*nn.BatchNorm
	Head   *nn.Dense
	// Stride is the cumulative downsampling factor.
	Stride int
}

// Config sets model geometry.
type Config struct {
	Channels  int // trunk width (Bonito uses 256-512)
	Blocks    int // separable conv blocks
	Kernel    int // depthwise kernel width
	BeamWidth int // CTC beam (1 = greedy)
}

// DefaultConfig is a scaled-down Bonito geometry that keeps CPU test
// times reasonable while preserving the op mix.
func DefaultConfig() Config {
	return Config{Channels: 64, Blocks: 5, Kernel: 9, BeamWidth: 1}
}

// NewModel builds a model with seeded random weights.
func NewModel(seed int64, cfg Config) *Model {
	rng := rand.New(rand.NewSource(seed))
	m := &Model{
		Stem:   nn.NewConv1D(rng, 1, cfg.Channels, 9, 3, nn.Swish, "stem"),
		Stride: 3,
	}
	for b := 0; b < cfg.Blocks; b++ {
		m.Blocks = append(m.Blocks, nn.NewSeparableConv1D(rng, cfg.Channels, cfg.Channels, cfg.Kernel, 1, nn.Swish, "block"))
		m.Norms = append(m.Norms, nn.NewBatchNorm(rng, cfg.Channels, "bn"))
	}
	m.Head = nn.NewDense(rng, cfg.Channels, NumClasses, nil, "head")
	return m
}

// Normalize applies med/MAD normalization, Bonito's preprocessing.
func Normalize(signal []float32) []float32 {
	if len(signal) == 0 {
		return nil
	}
	sorted := append([]float32(nil), signal...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	med := sorted[len(sorted)/2]
	devs := make([]float32, len(signal))
	for i, v := range signal {
		d := v - med
		if d < 0 {
			d = -d
		}
		devs[i] = d
	}
	sort.Slice(devs, func(i, j int) bool { return devs[i] < devs[j] })
	mad := devs[len(devs)/2]
	if mad == 0 {
		mad = 1
	}
	out := make([]float32, len(signal))
	scale := 1 / (1.4826 * mad)
	for i, v := range signal {
		out[i] = (v - med) * scale
	}
	return out
}

// Forward runs the network on one normalized chunk, returning per-step
// class probabilities (rows = downsampled time).
func (m *Model) Forward(chunk []float32) *nn.Tensor {
	x := nn.NewTensor(len(chunk), 1)
	copy(x.Data, chunk)
	x = m.Stem.Forward(x)
	for i, blk := range m.Blocks {
		x = blk.Forward(x)
		x = m.Norms[i].Forward(x)
	}
	x = m.Head.Forward(x)
	return x.Softmax()
}

// Basecall splits signal into chunks, runs the network on each and
// stitches the decoded fragments. It returns the called sequence and
// the multiply-accumulate count performed.
func (m *Model) Basecall(signal []float32, cfg Config) (genome.Seq, uint64) {
	if len(signal) == 0 {
		return nil, 0
	}
	norm := Normalize(signal)
	var called genome.Seq
	var macs uint64
	for start := 0; start < len(norm); start += ChunkSize {
		end := start + ChunkSize
		if end > len(norm) {
			end = len(norm)
		}
		chunk := norm[start:end]
		if len(chunk) < m.Stem.Kernel {
			break
		}
		probs := m.Forward(chunk)
		macs += m.MACsPerChunk(len(chunk))
		var symbols []byte
		if cfg.BeamWidth > 1 {
			symbols = nn.CTCBeamDecode(probs, cfg.BeamWidth)
		} else {
			symbols = nn.CTCGreedyDecode(probs)
		}
		for _, s := range symbols {
			called = append(called, genome.Base(s))
		}
	}
	return called, macs
}

// MACsPerChunk estimates multiply-accumulates for a chunk of the given
// length — the Figure-5 work unit for nn-base.
func (m *Model) MACsPerChunk(chunkLen int) uint64 {
	t := uint64(m.Stem.OutLen(chunkLen))
	ch := uint64(len(m.Stem.B))
	macs := uint64(chunkLen/m.Stem.Stride) * uint64(m.Stem.Kernel) * ch
	for _, blk := range m.Blocks {
		macs += t * (uint64(blk.Kernel)*ch + ch*ch)
	}
	macs += t * ch * NumClasses
	return macs
}

// Read is one basecalling task.
type Read struct {
	Name   string
	Signal []float32
}

// KernelResult aggregates an nn-base benchmark execution.
type KernelResult struct {
	Reads     int
	BasesOut  int
	MACs      uint64
	TaskStats *perf.TaskStats
	Counters  perf.Counters
	Called    []genome.Seq
}

// RunKernel basecalls every read with dynamic scheduling.
// It panics on failure; cancellable callers use RunKernelCtx.
func RunKernel(m *Model, reads []Read, cfg Config, threads int) KernelResult {
	res, err := RunKernelCtx(context.Background(), m, reads, cfg, threads)
	if err != nil {
		panic(err)
	}
	return res
}

// RunKernelCtx is RunKernel with cooperative cancellation and a fault
// trip-point per read.
func RunKernelCtx(ctx context.Context, m *Model, reads []Read, cfg Config, threads int) (KernelResult, error) {
	if threads <= 0 {
		threads = 1
	}
	called := make([]genome.Seq, len(reads))
	type ws struct {
		bases int
		macs  uint64
		stats *perf.TaskStats
		_     perf.CacheLinePad // workers update these per task; keep shards on private cache lines
	}
	workers := make([]ws, threads)
	for i := range workers {
		workers[i].stats = perf.NewTaskStats("MACs")
	}
	err := parallel.ForEachCtxErr(ctx, len(reads), threads, func(tctx context.Context, w, i int) error {
		if err := faultinject.Point(tctx); err != nil {
			return err
		}
		seq, macs := m.Basecall(reads[i].Signal, cfg)
		called[i] = seq
		workers[w].bases += len(seq)
		workers[w].macs += macs
		workers[w].stats.Observe(float64(macs))
		return nil
	})
	if err != nil {
		return KernelResult{}, err
	}
	res := KernelResult{Reads: len(reads), Called: called, TaskStats: perf.NewTaskStats("MACs")}
	for i := range workers {
		res.BasesOut += workers[i].bases
		res.MACs += workers[i].macs
		res.TaskStats.Merge(workers[i].stats)
	}
	// Dense FP matrix arithmetic end to end.
	res.Counters.Add(perf.VecOp, res.MACs)
	res.Counters.Add(perf.FloatOp, res.MACs/4)
	res.Counters.Add(perf.Load, res.MACs/8)
	res.Counters.Add(perf.Store, res.MACs/32)
	res.Counters.Add(perf.Branch, res.MACs/256)
	return res, nil
}

// EditDistance computes Levenshtein distance between called and truth —
// the accuracy metric basecallers report. Exported for examples and
// tests that want to compare basecalls.
func EditDistance(a, b genome.Seq) int {
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			v := prev[j-1] + cost
			if s := prev[j] + 1; s < v {
				v = s
			}
			if s := cur[j-1] + 1; s < v {
				v = s
			}
			cur[j] = v
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}
