package nnbase

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/genome"
	"repro/internal/signalsim"
	"repro/internal/simt"
)

func TestNormalize(t *testing.T) {
	sig := []float32{10, 12, 11, 13, 9, 100} // one outlier
	norm := Normalize(sig)
	if len(norm) != len(sig) {
		t.Fatal("length changed")
	}
	// Median-centred: the middle values should straddle zero.
	var neg, pos int
	for _, v := range norm[:5] {
		if v < 0 {
			neg++
		}
		if v > 0 {
			pos++
		}
	}
	if neg == 0 || pos == 0 {
		t.Errorf("normalized values not centred: %v", norm)
	}
	if norm[5] < norm[0] {
		t.Error("outlier lost its ordering")
	}
	if Normalize(nil) != nil {
		t.Error("Normalize(nil) should be nil")
	}
}

func TestNormalizeConstantSignal(t *testing.T) {
	sig := []float32{5, 5, 5, 5}
	norm := Normalize(sig)
	for _, v := range norm {
		if v != 0 {
			t.Errorf("constant signal normalized to %v", v)
		}
	}
}

func TestForwardShapes(t *testing.T) {
	cfg := DefaultConfig()
	m := NewModel(1, cfg)
	chunk := make([]float32, 300)
	probs := m.Forward(chunk)
	if probs.Rows != 100 { // stride 3
		t.Errorf("output rows %d, want 100", probs.Rows)
	}
	if probs.Cols != NumClasses {
		t.Errorf("output cols %d, want %d", probs.Cols, NumClasses)
	}
	for r := 0; r < probs.Rows; r++ {
		var sum float64
		for _, v := range probs.Row(r) {
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-4 {
			t.Fatalf("row %d probabilities sum to %v", r, sum)
		}
	}
}

func TestBasecallDeterministicAndProducesBases(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	model := signalsim.NewPoreModel()
	seq := genome.Random(rng, 300)
	signal := signalsim.RawSignal(rng, model, seq, signalsim.DefaultConfig())
	if len(signal) < 1000 {
		t.Fatalf("raw signal too short: %d", len(signal))
	}
	cfg := DefaultConfig()
	m := NewModel(7, cfg)
	a, macsA := m.Basecall(signal, cfg)
	b, macsB := m.Basecall(signal, cfg)
	if !a.Equal(b) || macsA != macsB {
		t.Error("basecalling not deterministic")
	}
	if macsA == 0 {
		t.Error("no MACs counted")
	}
	// Untrained network: no accuracy claim, but it must emit a sequence
	// over the 4-letter alphabet with plausible length (< signal len).
	if len(a) == 0 || len(a) > len(signal) {
		t.Errorf("called %d bases from %d samples", len(a), len(signal))
	}
	for _, base := range a {
		if base > 3 {
			t.Fatal("invalid base emitted")
		}
	}
}

func TestBasecallEmptySignal(t *testing.T) {
	cfg := DefaultConfig()
	m := NewModel(3, cfg)
	if seq, macs := m.Basecall(nil, cfg); seq != nil || macs != 0 {
		t.Error("empty signal should produce nothing")
	}
}

func TestChunkingCoversWholeSignal(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Blocks = 1
	cfg.Channels = 8
	m := NewModel(5, cfg)
	// Two chunks worth of signal: MACs should be ~2x one chunk.
	sig := make([]float32, 2*ChunkSize)
	rng := rand.New(rand.NewSource(4))
	for i := range sig {
		sig[i] = float32(rng.NormFloat64())
	}
	_, macs2 := m.Basecall(sig, cfg)
	_, macs1 := m.Basecall(sig[:ChunkSize], cfg)
	ratio := float64(macs2) / float64(macs1)
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("2-chunk MACs ratio %v, want ~2", ratio)
	}
}

func TestMACsPerChunkScalesWithModel(t *testing.T) {
	small := NewModel(1, Config{Channels: 16, Blocks: 2, Kernel: 5})
	big := NewModel(1, Config{Channels: 64, Blocks: 6, Kernel: 9})
	if small.MACsPerChunk(ChunkSize) >= big.MACsPerChunk(ChunkSize) {
		t.Error("bigger model should cost more MACs")
	}
}

func TestEditDistance(t *testing.T) {
	a := genome.MustFromString("ACGT")
	cases := []struct {
		b    string
		want int
	}{
		{"ACGT", 0}, {"ACG", 1}, {"ACGTT", 1}, {"TCGT", 1}, {"", 4}, {"TTTT", 3},
	}
	for _, c := range cases {
		if got := EditDistance(a, genome.MustFromString(c.b)); got != c.want {
			t.Errorf("EditDistance(ACGT,%s) = %d, want %d", c.b, got, c.want)
		}
	}
}

func TestRunKernelThreads(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	model := signalsim.NewPoreModel()
	cfg := DefaultConfig()
	cfg.Channels = 16
	cfg.Blocks = 2
	m := NewModel(9, cfg)
	var reads []Read
	for i := 0; i < 4; i++ {
		seq := genome.Random(rng, 200)
		reads = append(reads, Read{
			Name:   "r",
			Signal: signalsim.RawSignal(rng, model, seq, signalsim.DefaultConfig()),
		})
	}
	r1 := RunKernel(m, reads, cfg, 1)
	r2 := RunKernel(m, reads, cfg, 2)
	if r1.MACs != r2.MACs || r1.BasesOut != r2.BasesOut {
		t.Errorf("threading changed results: %+v vs %+v", r1, r2)
	}
	for i := range r1.Called {
		if !r1.Called[i].Equal(r2.Called[i]) {
			t.Fatal("called sequences differ across thread counts")
		}
	}
	if r1.TaskStats.Count() != 4 {
		t.Errorf("task count %d", r1.TaskStats.Count())
	}
}

func TestGPUMetricsShape(t *testing.T) {
	cfg := DefaultConfig()
	m := NewModel(11, cfg)
	dev := simt.TitanXp()
	metrics, launch := RunGPU(m, cfg, 4, dev)

	if be := metrics.BranchEfficiency(); be != 1 {
		t.Errorf("branch efficiency %v, want 1", be)
	}
	if we := metrics.WarpEfficiency(); we != 1 {
		t.Errorf("warp efficiency %v, want 1 (regular matmul)", we)
	}
	npe := metrics.NonPredicatedWarpEfficiency()
	if npe < 0.9 {
		t.Errorf("non-predicated efficiency %v, want ~0.94", npe)
	}
	occ := dev.Occupancy(launch)
	if occ < 0.75 {
		t.Errorf("occupancy %v, want high (paper ~0.88)", occ)
	}
	gle := metrics.GlobalLoadEfficiency()
	if gle < 0.4 || gle > 0.95 {
		t.Errorf("global load efficiency %v, want ~0.70", gle)
	}
	if gse := metrics.GlobalStoreEfficiency(); gse != 1 {
		t.Errorf("store efficiency %v, want 1", gse)
	}
	util := metrics.SMUtilization(dev, occ)
	if util < 0.9 {
		t.Errorf("SM utilization %v, want ~0.99", util)
	}
}
