package shard

import (
	"context"
	"fmt"
	"sort"
	"sync"
)

// Executor runs one kernel's tasks for the fabric. Prepare builds the
// kernel's dataset — deterministic in (size, seed), exactly like
// core.Benchmark.Prepare — and reports the task count; RunTask
// executes one task and folds its complete output (scores, consensus
// bases, counts, likelihood bits, ...) into a 64-bit digest plus a
// work-unit count. Digests are the fabric's correctness currency: the
// merged digest vector of a distributed run must equal, bit for bit,
// the vector a single process produces, no matter which workers ran
// which shards or how many times faults forced rescheduling.
//
// Implementations live next to the kernels (internal/core registers
// one per shardable kernel); this package only defines the contract so
// the coordinator, workers, and tests stay kernel-agnostic.
type Executor interface {
	Prepare(size string, seed int64) (ntasks int, err error)
	RunTask(ctx context.Context, task int) (digest, ops uint64, err error)
}

var (
	execMu      sync.RWMutex
	execFactory = map[string]func() Executor{}
)

// RegisterExecutor installs a factory for a kernel's shard executor;
// called from init functions in the packages that own the kernels.
func RegisterExecutor(kernel string, factory func() Executor) {
	execMu.Lock()
	defer execMu.Unlock()
	execFactory[kernel] = factory
}

// NewExecutor builds a fresh executor for the kernel.
func NewExecutor(kernel string) (Executor, error) {
	execMu.RLock()
	f := execFactory[kernel]
	execMu.RUnlock()
	if f == nil {
		return nil, fmt.Errorf("shard: no executor registered for kernel %q", kernel)
	}
	return f(), nil
}

// HasExecutor reports whether the kernel can run on the fabric.
func HasExecutor(kernel string) bool {
	execMu.RLock()
	defer execMu.RUnlock()
	return execFactory[kernel] != nil
}

// ExecutorKernels lists the registered kernels, sorted.
func ExecutorKernels() []string {
	execMu.RLock()
	defer execMu.RUnlock()
	out := make([]string, 0, len(execFactory))
	for k := range execFactory {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
