package shard

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/obs"
)

// Options tunes the coordinator's failure detectors. The defaults suit
// real runs (multi-second kernels, worker processes on one host);
// tests shrink everything to tens of milliseconds.
type Options struct {
	// Lease is how long a worker owns a dispatched shard before the
	// coordinator may reassign it. Heartbeats extend the lease, so the
	// lease only expires on a worker that is dead, hung, or partitioned.
	Lease time.Duration
	// HeartbeatGrace is how long a silent worker stays trusted. Workers
	// are told to beat every Lease/3; missing three beats in a row
	// declares the worker dead and reschedules everything it holds.
	HeartbeatGrace time.Duration
	// Sweep is the failure-detector tick: how often leases, heartbeats
	// and job liveness are checked.
	Sweep time.Duration
	// MaxAttempts bounds how many times one shard may be dispatched
	// (initial dispatch + reschedules + hedges). Exhausting it fails
	// the job: the fabric degrades rather than spinning forever.
	MaxAttempts int
	// HedgeAge is the minimum time a shard must have been outstanding
	// before it is eligible for hedged re-dispatch.
	HedgeAge time.Duration
	// HedgeQuantile/HedgeFactor set the straggler threshold: a shard is
	// hedged once its lease age exceeds HedgeFactor times the given
	// quantile of completed shard durations (and HedgeAge). Hedging
	// only happens when a worker asks for work and the pending queue is
	// empty, so it never steals capacity from first-dispatch work.
	HedgeQuantile float64
	HedgeFactor   float64
	// NoWorkerGrace fails a job that has had no live workers for this
	// long, so a suite whose worker pool died reports the kernel as
	// failed instead of hanging.
	NoWorkerGrace time.Duration
}

// DefaultOptions returns production-shaped failure-detector settings.
func DefaultOptions() Options {
	return Options{
		Lease:          2 * time.Second,
		HeartbeatGrace: 2 * time.Second,
		Sweep:          50 * time.Millisecond,
		MaxAttempts:    5,
		HedgeAge:       250 * time.Millisecond,
		HedgeQuantile:  0.9,
		HedgeFactor:    3,
		NoWorkerGrace:  10 * time.Second,
	}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.Lease <= 0 {
		o.Lease = d.Lease
	}
	if o.HeartbeatGrace <= 0 {
		o.HeartbeatGrace = d.HeartbeatGrace
	}
	if o.Sweep <= 0 {
		o.Sweep = d.Sweep
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = d.MaxAttempts
	}
	if o.HedgeAge <= 0 {
		o.HedgeAge = d.HedgeAge
	}
	if o.HedgeQuantile <= 0 || o.HedgeQuantile >= 1 {
		o.HedgeQuantile = d.HedgeQuantile
	}
	if o.HedgeFactor <= 0 {
		o.HedgeFactor = d.HedgeFactor
	}
	if o.NoWorkerGrace <= 0 {
		o.NoWorkerGrace = d.NoWorkerGrace
	}
	return o
}

// JobSpec names one kernel execution to distribute.
type JobSpec struct {
	ID        uint64
	Kernel    string
	Size      string
	Seed      int64
	NumTasks  int
	NumShards int
}

// Summary is the shard lifecycle accounting for one job; every field
// is also mirrored into obs counters (shard.dispatched, ...) labelled
// by kernel as it increments.
type Summary struct {
	Shards       int    `json:"shards"`
	Workers      int    `json:"workers"` // distinct workers that completed at least one shard
	Dispatched   uint64 `json:"dispatched"`
	Completed    uint64 `json:"completed"`
	Rescheduled  uint64 `json:"rescheduled"`
	Hedged       uint64 `json:"hedged"`
	Lost         uint64 `json:"lost"`
	LeaseExpired uint64 `json:"lease_expired"`
	Duplicates   uint64 `json:"duplicates"`
	Failed       uint64 `json:"failed"` // worker-reported shard errors
}

// JobResult is a completed job: per-task digests in task order, the
// work-unit total, per-shard wall times, and the lifecycle summary.
// Fingerprint folds the digest vector into one value — two runs of the
// same job match iff their fingerprints match.
type JobResult struct {
	Digests     []uint64
	Ops         uint64
	ShardNs     []int64 // per-shard worker-side execution time
	Summary     Summary
	Fingerprint uint64
}

// ErrShardLost reports a shard whose dispatch attempts were exhausted.
type ErrShardLost struct {
	Kernel   string
	Shard    int
	Attempts int
}

func (e *ErrShardLost) Error() string {
	return fmt.Sprintf("shard: %s shard %d lost after %d dispatch attempt(s)", e.Kernel, e.Shard, e.Attempts)
}

// ErrNoWorkers reports a job starved of workers past the grace window.
var ErrNoWorkers = errors.New("shard: no live workers")

type lease struct {
	worker   string
	deadline time.Time
	started  time.Time
	attempt  int
	hedged   bool
}

type shardState struct {
	id      int
	tasks   []int
	wire    []byte // EncodeTasks(tasks), computed once
	attempt int    // dispatch attempts so far
	done    bool
	queued  bool
	digests []uint64
	ops     uint64
	elapsed int64
	leases  []lease
}

type jobState struct {
	spec      JobSpec
	shards    []*shardState
	pending   []int // shard IDs awaiting (re)dispatch, FIFO
	remaining int
	durations []time.Duration // completed shard wall times, for the hedge quantile
	summary   Summary
	completedBy map[string]bool
	done      chan struct{}
	err       error
	starved   time.Time // first sweep instant with zero live workers; zero when workers exist
}

type workerState struct {
	id       string
	conn     net.Conn
	writeMu  sync.Mutex // serializes frames to conn (serveConn replies vs Close's shutdown)
	lastBeat time.Time
	shards   map[int]bool // shard IDs currently leased to this worker
	gone     bool
}

// send writes one frame to the worker, serialized per connection.
func (w *workerState) send(m *Msg) error {
	w.writeMu.Lock()
	defer w.writeMu.Unlock()
	return writeMsg(w.conn, m)
}

// Coordinator owns the listener, the worker table, and at most one
// active job. The suite runs kernels serially, so a single-job fabric
// matches the driver exactly; workers outlive jobs and keep polling
// between kernels.
type Coordinator struct {
	opts Options

	mu      sync.Mutex
	ln      net.Listener
	workers map[string]*workerState
	job     *jobState
	o       *obs.Observer
	label   string
	closed  bool
	nextJob uint64

	wg sync.WaitGroup
}

// NewCoordinator returns an unstarted coordinator.
func NewCoordinator(opts Options) *Coordinator {
	return &Coordinator{opts: opts.withDefaults(), workers: map[string]*workerState{}}
}

// Start listens on addr ("127.0.0.1:0" for an ephemeral local port)
// and begins accepting workers and sweeping failure detectors.
func (c *Coordinator) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("shard: coordinator listen: %w", err)
	}
	c.mu.Lock()
	c.ln = ln
	c.mu.Unlock()
	c.wg.Add(2)
	go c.acceptLoop(ln)
	go c.sweepLoop()
	return nil
}

// Addr reports the listen address workers should dial.
func (c *Coordinator) Addr() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ln == nil {
		return ""
	}
	return c.ln.Addr().String()
}

// Close shuts the fabric down: the listener stops, connected workers
// are told to shut down, and any active job fails.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	ln := c.ln
	var conns []*workerState
	for _, w := range c.workers {
		if !w.gone {
			conns = append(conns, w)
		}
	}
	c.failJobLocked(errors.New("shard: coordinator closed"))
	c.mu.Unlock()
	for _, w := range conns {
		w.send(&Msg{Type: MsgShutdown})
		w.conn.Close()
	}
	if ln != nil {
		ln.Close()
	}
	c.wg.Wait()
}

// Workers reports the live worker count.
func (c *Coordinator) Workers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, w := range c.workers {
		if !w.gone {
			n++
		}
	}
	return n
}

// WaitForWorkers blocks until n workers have joined or ctx expires.
func (c *Coordinator) WaitForWorkers(ctx context.Context, n int) error {
	for {
		if c.Workers() >= n {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("shard: waiting for %d worker(s): %w", n, ctx.Err())
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// NextJobID hands out suite-unique job IDs.
func (c *Coordinator) NextJobID() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextJob++
	return c.nextJob
}

// RunJob partitions the spec's task range into shards by consistent
// hashing, leases shards to pulling workers, and blocks until every
// shard completed (returning the merged, task-ordered digest vector)
// or the job failed: attempts exhausted on some shard, worker pool
// starved past the grace window, or ctx cancelled. An observer in ctx
// receives the shard lifecycle counters labelled by kernel.
func (c *Coordinator) RunJob(ctx context.Context, spec JobSpec) (*JobResult, error) {
	if spec.NumShards < 1 {
		spec.NumShards = 1
	}
	parts := Partition(spec.ID, spec.NumTasks, spec.NumShards)

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("shard: coordinator closed")
	}
	if c.job != nil {
		c.mu.Unlock()
		return nil, errors.New("shard: a job is already running")
	}
	j := &jobState{
		spec:        spec,
		done:        make(chan struct{}),
		completedBy: map[string]bool{},
	}
	j.summary.Shards = spec.NumShards
	for id, tasks := range parts {
		s := &shardState{id: id, tasks: tasks, wire: EncodeTasks(tasks)}
		if len(tasks) == 0 {
			s.done = true // empty shards are trivially complete
		} else {
			j.pending = append(j.pending, id)
			s.queued = true
			j.remaining++
		}
		j.shards = append(j.shards, s)
	}
	c.job = j
	c.o = obs.From(ctx)
	c.label = spec.Kernel
	finished := j.remaining == 0
	c.mu.Unlock()

	if finished {
		c.mu.Lock()
		c.finishJobLocked(j)
		c.mu.Unlock()
	}

	select {
	case <-ctx.Done():
		c.mu.Lock()
		c.failJobLocked(ctx.Err())
		c.mu.Unlock()
		<-j.done
	case <-j.done:
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if j.err != nil {
		return nil, j.err
	}
	return c.assembleLocked(j), nil
}

// assembleLocked merges completed shard results into task order.
func (c *Coordinator) assembleLocked(j *jobState) *JobResult {
	res := &JobResult{Digests: make([]uint64, j.spec.NumTasks), Summary: j.summary}
	res.Summary.Workers = len(j.completedBy)
	for _, s := range j.shards {
		for i, t := range s.tasks {
			res.Digests[t] = s.digests[i]
		}
		res.Ops += s.ops
		if len(s.tasks) > 0 {
			res.ShardNs = append(res.ShardNs, s.elapsed)
		}
	}
	res.Fingerprint = Fingerprint(res.Digests)
	return res
}

// Fingerprint folds a digest vector into a single order-sensitive
// value (FNV-1a over the 64-bit words).
func Fingerprint(digests []uint64) uint64 {
	h := uint64(14695981039346656037)
	for _, d := range digests {
		for s := 0; s < 64; s += 8 {
			h ^= (d >> s) & 0xff
			h *= 1099511628211
		}
	}
	return h
}

// count bumps both the job summary field and the obs counter.
func (c *Coordinator) count(field *uint64, metric string, n uint64) {
	*field += n
	c.o.Counter(metric, c.label).Add(n)
}

// ---- connection handling ----

func (c *Coordinator) acceptLoop(ln net.Listener) {
	defer c.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		c.wg.Add(1)
		go c.serveConn(conn)
	}
}

// serveConn drives one worker connection: a Hello registers the
// worker, then Pull/Result/Heartbeat frames are handled sequentially.
// Any read error — including the abrupt close of a killed worker
// process — unregisters the worker and reschedules everything it held.
func (c *Coordinator) serveConn(conn net.Conn) {
	defer c.wg.Done()
	// Bound the handshake: a connection that never says Hello (a dialer
	// that died mid-join, a port scanner) must not pin this goroutine —
	// Close waits on it.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	var hello Msg
	if err := readMsg(conn, &hello); err != nil || hello.Type != MsgHello || hello.Worker == "" {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	id := hello.Worker
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return
	}
	if old, ok := c.workers[id]; ok && !old.gone {
		// Same ID reconnecting (dropconn recovery): the old connection is
		// dead even if its close has not surfaced yet. Drop it and
		// reschedule whatever the previous incarnation held.
		old.conn.Close()
		c.workerGoneLocked(old, "replaced")
	}
	w := &workerState{id: id, conn: conn, lastBeat: time.Now(), shards: map[int]bool{}}
	c.workers[id] = w
	c.o.Counter("shard.workers_joined", c.label).Inc()
	c.mu.Unlock()

	w.send(&Msg{Type: MsgHelloAck, LeaseMs: c.opts.Lease.Milliseconds()})

	for {
		var m Msg
		if err := readMsg(conn, &m); err != nil {
			break
		}
		c.mu.Lock()
		if w.gone {
			c.mu.Unlock()
			break
		}
		w.lastBeat = time.Now()
		var reply *Msg
		switch m.Type {
		case MsgPull:
			reply = c.assignLocked(w)
		case MsgResult:
			c.handleResultLocked(w, &m)
		case MsgHeartbeat:
			c.extendLeasesLocked(w)
		}
		closed := c.closed
		c.mu.Unlock()
		if closed {
			w.send(&Msg{Type: MsgShutdown})
			break
		}
		if reply != nil {
			if err := w.send(reply); err != nil {
				break
			}
		}
	}
	conn.Close()
	c.mu.Lock()
	if !w.gone {
		c.workerGoneLocked(w, "disconnected")
	}
	c.mu.Unlock()
}

// assignLocked picks work for a pulling worker: the oldest pending
// shard first; with an empty queue, a hedged duplicate of the worst
// straggler the worker is not already running. Dispatch attempts are
// bounded by MaxAttempts across reschedules and hedges combined.
func (c *Coordinator) assignLocked(w *workerState) *Msg {
	j := c.job
	if j == nil || j.err != nil || j.remaining == 0 {
		return &Msg{Type: MsgNoWork}
	}
	var s *shardState
	hedge := false
	for len(j.pending) > 0 {
		id := j.pending[0]
		j.pending = j.pending[1:]
		cand := j.shards[id]
		cand.queued = false
		if !cand.done {
			s = cand
			break
		}
	}
	if s == nil {
		// Pending queue drained: offer a hedged duplicate of the worst
		// straggler instead of leaving the worker idle.
		s = c.hedgeCandidateLocked(j, w)
		if s == nil {
			return &Msg{Type: MsgNoWork}
		}
		hedge = true
	}
	s.attempt++
	now := time.Now()
	s.leases = append(s.leases, lease{
		worker: w.id, deadline: now.Add(c.opts.Lease), started: now,
		attempt: s.attempt, hedged: hedge,
	})
	w.shards[s.id] = true
	c.count(&j.summary.Dispatched, "shard.dispatched", 1)
	if hedge {
		c.count(&j.summary.Hedged, "shard.hedged", 1)
	}
	return &Msg{
		Type: MsgAssign, Job: j.spec.ID, Kernel: j.spec.Kernel,
		Size: j.spec.Size, Seed: j.spec.Seed, Shard: s.id,
		Attempt: s.attempt, Tasks: s.wire, LeaseMs: c.opts.Lease.Milliseconds(),
	}
}

// hedgeCandidateLocked returns the oldest outstanding shard whose
// primary lease has aged past the straggler threshold and which the
// pulling worker is not already executing, or nil.
func (c *Coordinator) hedgeCandidateLocked(j *jobState, w *workerState) *shardState {
	threshold := c.hedgeThresholdLocked(j)
	now := time.Now()
	var best *shardState
	var bestAge time.Duration
	for _, s := range j.shards {
		if s.done || len(s.leases) == 0 || s.attempt >= c.opts.MaxAttempts {
			continue
		}
		mine := false
		oldest := time.Duration(0)
		for _, l := range s.leases {
			if l.worker == w.id {
				mine = true
			}
			if age := now.Sub(l.started); age > oldest {
				oldest = age
			}
		}
		if mine || oldest < threshold {
			continue
		}
		if best == nil || oldest > bestAge {
			best, bestAge = s, oldest
		}
	}
	return best
}

// hedgeThresholdLocked computes the straggler cutoff from completed
// shard durations; with no completions yet it falls back to HedgeAge.
func (c *Coordinator) hedgeThresholdLocked(j *jobState) time.Duration {
	th := c.opts.HedgeAge
	if n := len(j.durations); n > 0 {
		sorted := append([]time.Duration(nil), j.durations...)
		for i := 1; i < len(sorted); i++ { // insertion sort: n is small
			for k := i; k > 0 && sorted[k] < sorted[k-1]; k-- {
				sorted[k], sorted[k-1] = sorted[k-1], sorted[k]
			}
		}
		idx := int(c.opts.HedgeQuantile * float64(n))
		if idx >= n {
			idx = n - 1
		}
		if q := time.Duration(c.opts.HedgeFactor * float64(sorted[idx])); q > th {
			th = q
		}
	}
	return th
}

// handleResultLocked applies one shard result. First result wins:
// whichever attempt reports first — primary, reschedule, or hedge —
// completes the shard, and every later report of the same shard is
// deduplicated (results are bit-identical by construction, so there is
// nothing to reconcile). A worker-side error releases only that
// worker's lease and requeues the shard.
func (c *Coordinator) handleResultLocked(w *workerState, m *Msg) {
	j := c.job
	if j == nil || j.spec.ID != m.Job || m.Shard < 0 || m.Shard >= len(j.shards) {
		return
	}
	s := j.shards[m.Shard]
	if s.done {
		c.count(&j.summary.Duplicates, "shard.duplicate", 1)
		return
	}
	c.releaseLeaseLocked(s, w.id)
	if m.Err != "" {
		c.count(&j.summary.Failed, "shard.failed", 1)
		c.requeueLocked(j, s, "error")
		return
	}
	if len(m.Digests) != len(s.tasks) {
		c.count(&j.summary.Failed, "shard.failed", 1)
		c.requeueLocked(j, s, "short-result")
		return
	}
	s.done = true
	s.digests = m.Digests
	s.ops = m.Ops
	s.elapsed = m.ElapsedNs
	// The shard may still be leased to hedge/stale workers; drop those
	// leases — their eventual results dedup on arrival.
	for i := range s.leases {
		if lw := c.workers[s.leases[i].worker]; lw != nil {
			delete(lw.shards, s.id)
		}
	}
	s.leases = nil
	j.remaining--
	j.durations = append(j.durations, time.Duration(m.ElapsedNs))
	j.completedBy[w.id] = true
	c.count(&j.summary.Completed, "shard.completed", 1)
	c.o.Histogram("shard.duration_ns", c.label, "ns").Observe(float64(m.ElapsedNs))
	if j.remaining == 0 {
		c.finishJobLocked(j)
	}
}

// releaseLeaseLocked drops w's lease on s, if any.
func (c *Coordinator) releaseLeaseLocked(s *shardState, worker string) {
	keep := s.leases[:0]
	for _, l := range s.leases {
		if l.worker != worker {
			keep = append(keep, l)
		}
	}
	s.leases = keep
	if w := c.workers[worker]; w != nil {
		delete(w.shards, s.id)
	}
}

// requeueLocked puts an incomplete shard back on the pending queue
// unless its dispatch budget is exhausted, which fails the job.
func (c *Coordinator) requeueLocked(j *jobState, s *shardState, why string) {
	if s.done || s.queued || j.err != nil {
		return
	}
	if len(s.leases) > 0 {
		return // another lease is still live; let it run
	}
	if s.attempt >= c.opts.MaxAttempts {
		c.failJobLocked(&ErrShardLost{Kernel: j.spec.Kernel, Shard: s.id, Attempts: s.attempt})
		return
	}
	s.queued = true
	j.pending = append(j.pending, s.id)
	c.count(&j.summary.Rescheduled, "shard.rescheduled", 1)
}

// extendLeasesLocked renews every lease the heartbeating worker holds.
func (c *Coordinator) extendLeasesLocked(w *workerState) {
	if c.job == nil {
		return
	}
	deadline := time.Now().Add(c.opts.Lease)
	for id := range w.shards {
		s := c.job.shards[id]
		for i := range s.leases {
			if s.leases[i].worker == w.id {
				s.leases[i].deadline = deadline
			}
		}
	}
}

// workerGoneLocked unregisters a dead worker and reschedules its
// shards.
func (c *Coordinator) workerGoneLocked(w *workerState, why string) {
	w.gone = true
	if c.workers[w.id] == w { // a reconnected incarnation may already own the ID
		delete(c.workers, w.id)
	}
	c.o.Counter("shard.workers_lost", c.label).Inc()
	j := c.job
	if j == nil {
		return
	}
	for id := range w.shards {
		s := j.shards[id]
		keep := s.leases[:0]
		for _, l := range s.leases {
			if l.worker != w.id {
				keep = append(keep, l)
			}
		}
		s.leases = keep
		if !s.done {
			c.count(&j.summary.Lost, "shard.lost", 1)
			c.requeueLocked(j, s, "worker-"+why)
		}
	}
	w.shards = map[int]bool{}
}

// ---- failure detection ----

func (c *Coordinator) sweepLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.opts.Sweep)
	defer t.Stop()
	for range t.C {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return
		}
		c.sweepLocked(time.Now())
		c.mu.Unlock()
	}
}

// sweepLocked runs the failure detectors: heartbeat-silent workers are
// declared dead, expired leases are revoked and their shards
// rescheduled, and a worker-starved job is failed after the grace
// window.
func (c *Coordinator) sweepLocked(now time.Time) {
	for _, w := range c.workers {
		if now.Sub(w.lastBeat) > c.opts.HeartbeatGrace {
			w.conn.Close() // unblocks the serveConn reader
			c.workerGoneLocked(w, "heartbeat-timeout")
		}
	}
	j := c.job
	if j == nil || j.err != nil {
		return
	}
	for _, s := range j.shards {
		if s.done || len(s.leases) == 0 {
			continue
		}
		keep := s.leases[:0]
		expired := 0
		for _, l := range s.leases {
			if now.After(l.deadline) {
				expired++
				if w := c.workers[l.worker]; w != nil {
					delete(w.shards, s.id)
				}
			} else {
				keep = append(keep, l)
			}
		}
		s.leases = keep
		if expired > 0 {
			c.count(&j.summary.LeaseExpired, "shard.lease_expired", uint64(expired))
			c.requeueLocked(j, s, "lease-expired")
		}
	}
	live := 0
	for _, w := range c.workers {
		if !w.gone {
			live++
		}
	}
	if live > 0 {
		j.starved = time.Time{}
	} else if j.starved.IsZero() {
		j.starved = now
	} else if now.Sub(j.starved) > c.opts.NoWorkerGrace {
		c.failJobLocked(fmt.Errorf("%w for %v while %d shard(s) incomplete",
			ErrNoWorkers, c.opts.NoWorkerGrace, j.remaining))
	}
}

// finishJobLocked completes the active job successfully.
func (c *Coordinator) finishJobLocked(j *jobState) {
	if c.job != j {
		return
	}
	c.job = nil
	close(j.done)
}

// failJobLocked fails the active job, releasing every lease.
func (c *Coordinator) failJobLocked(err error) {
	j := c.job
	if j == nil {
		return
	}
	j.err = err
	c.o.Counter("shard.jobs_failed", c.label).Inc()
	for _, w := range c.workers {
		w.shards = map[int]bool{}
	}
	c.job = nil
	close(j.done)
}
