package shard

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
)

// WorkerBinary locates the gbench-worker executable: an explicit path
// wins, then a sibling of the running binary, then $PATH. Keeping the
// lookup here means cmd/gbench and the chaos tests resolve the worker
// the same way.
func WorkerBinary(explicit string) (string, error) {
	if explicit != "" {
		if _, err := os.Stat(explicit); err != nil {
			return "", fmt.Errorf("shard: worker binary %s: %w", explicit, err)
		}
		return explicit, nil
	}
	if self, err := os.Executable(); err == nil {
		sibling := filepath.Join(filepath.Dir(self), "gbench-worker")
		if _, err := os.Stat(sibling); err == nil {
			return sibling, nil
		}
	}
	if p, err := exec.LookPath("gbench-worker"); err == nil {
		return p, nil
	}
	return "", fmt.Errorf("shard: gbench-worker binary not found (build it with `go build ./cmd/gbench-worker` or pass -worker-bin)")
}

// Fleet is a set of spawned worker processes.
type Fleet struct {
	mu    sync.Mutex
	procs []*exec.Cmd
}

// SpawnWorkers launches n worker processes against addr, each with its
// own ID (w1, w2, ...) and the given fault spec (may be empty). The
// processes inherit stderr so worker-side fault logs surface in the
// suite's output; stdout is discarded.
func SpawnWorkers(ctx context.Context, bin, addr string, n int, faults string, faultSeed int64) (*Fleet, error) {
	f := &Fleet{}
	for i := 1; i <= n; i++ {
		args := []string{"-addr", addr, "-id", fmt.Sprintf("w%d", i)}
		if faults != "" {
			args = append(args, "-faults", faults, "-fault-seed", fmt.Sprint(faultSeed))
		}
		cmd := exec.CommandContext(ctx, bin, args...)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			f.Stop()
			return nil, fmt.Errorf("shard: starting worker %d: %w", i, err)
		}
		f.mu.Lock()
		f.procs = append(f.procs, cmd)
		f.mu.Unlock()
	}
	return f, nil
}

// Stop kills any still-running workers and reaps them. Workers that
// already exited (cleanly after Shutdown, or abruptly under killworker
// faults) are just reaped; Stop never fails the suite over a worker's
// exit status — the coordinator's counters are the source of truth for
// what happened out there.
func (f *Fleet) Stop() {
	f.mu.Lock()
	procs := f.procs
	f.procs = nil
	f.mu.Unlock()
	for _, cmd := range procs {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
		}
		_ = cmd.Wait()
	}
}

// Wait reaps all workers without killing them, for the clean-shutdown
// path after the coordinator broadcast Shutdown.
func (f *Fleet) Wait() {
	f.mu.Lock()
	procs := f.procs
	f.procs = nil
	f.mu.Unlock()
	for _, cmd := range procs {
		_ = cmd.Wait()
	}
}
