package shard

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

func TestMsgRoundTrip(t *testing.T) {
	in := Msg{
		Type: MsgAssign, Worker: "w1", Job: 42, Kernel: "spoa",
		Size: "small", Seed: 7, Shard: 3, Attempt: 2,
		Tasks: EncodeTasks([]int{1, 2, 9}), LeaseMs: 2000,
		Digests: []uint64{0xdeadbeef, 0x1234}, Ops: 99, ElapsedNs: 12345, Err: "boom",
	}
	var buf bytes.Buffer
	if err := writeMsg(&buf, &in); err != nil {
		t.Fatalf("writeMsg: %v", err)
	}
	var out Msg
	if err := readMsg(&buf, &out); err != nil {
		t.Fatalf("readMsg: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestReadMsgRejectsBadFrames(t *testing.T) {
	// Zero length.
	if err := readMsg(bytes.NewReader([]byte{0, 0, 0, 0}), &Msg{}); err == nil {
		t.Fatal("zero-length frame accepted")
	}
	// Oversized length.
	if err := readMsg(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff}), &Msg{}); err == nil {
		t.Fatal("oversized frame accepted")
	}
	// Truncated body.
	var buf bytes.Buffer
	if err := writeMsg(&buf, &Msg{Type: MsgPull, Worker: "w"}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if err := readMsg(bytes.NewReader(trunc), &Msg{}); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestMsgStreamIndependentFrames(t *testing.T) {
	// Frames are self-contained gob streams: decoding must work from
	// any frame boundary, not just the first.
	var buf bytes.Buffer
	for i := 0; i < 3; i++ {
		if err := writeMsg(&buf, &Msg{Type: MsgHeartbeat, Worker: "w", Job: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		var m Msg
		if err := readMsg(&buf, &m); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if m.Job != uint64(i) {
			t.Fatalf("frame %d decoded Job=%d", i, m.Job)
		}
	}
}

func TestEncodeDecodeTasks(t *testing.T) {
	cases := [][]int{
		nil,
		{0},
		{5},
		{0, 1, 2, 3, 4},
		{10, 20, 1000000, 1000001},
		{3, 1, 2}, // unsorted input comes back sorted
	}
	for _, in := range cases {
		got, err := DecodeTasks(EncodeTasks(in))
		if err != nil {
			t.Fatalf("decode(%v): %v", in, err)
		}
		want := append([]int(nil), in...)
		if len(want) > 1 {
			for i := 1; i < len(want); i++ {
				for k := i; k > 0 && want[k] < want[k-1]; k-- {
					want[k], want[k-1] = want[k-1], want[k]
				}
			}
		}
		if len(got) != len(want) {
			t.Fatalf("decode(%v) = %v", in, got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("decode(%v) = %v", in, got)
			}
		}
	}
}

func TestEncodeTasksDoesNotMutateInput(t *testing.T) {
	in := []int{9, 3, 7}
	EncodeTasks(in)
	if in[0] != 9 || in[1] != 3 || in[2] != 7 {
		t.Fatalf("input mutated: %v", in)
	}
}

func TestEncodeTasksCompact(t *testing.T) {
	// A dense run should cost ~1 byte per task after the first.
	tasks := make([]int, 1000)
	for i := range tasks {
		tasks[i] = 5000 + i
	}
	if n := len(EncodeTasks(tasks)); n > 1100 {
		t.Fatalf("dense run of 1000 tasks encoded to %d bytes", n)
	}
}

func TestDecodeTasksCorrupt(t *testing.T) {
	// A lone continuation byte is an invalid uvarint.
	if _, err := DecodeTasks([]byte{0x80}); err == nil {
		t.Fatal("corrupt task set accepted")
	}
}

func TestPartitionCoversRangeExactlyOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(500)
		nshards := 1 + rng.Intn(20)
		job := rng.Uint64()
		parts := Partition(job, n, nshards)
		if len(parts) != nshards {
			t.Fatalf("got %d shards, want %d", len(parts), nshards)
		}
		seen := make([]bool, n)
		for s, tasks := range parts {
			prev := -1
			for _, task := range tasks {
				if task < 0 || task >= n {
					t.Fatalf("shard %d holds out-of-range task %d (n=%d)", s, task, n)
				}
				if task <= prev {
					t.Fatalf("shard %d not ascending: %v", s, tasks)
				}
				if seen[task] {
					t.Fatalf("task %d assigned twice", task)
				}
				seen[task] = true
				prev = task
			}
		}
		for task, ok := range seen {
			if !ok {
				t.Fatalf("task %d unassigned (job=%d n=%d shards=%d)", task, job, n, nshards)
			}
		}
	}
}

func TestPartitionDeterministic(t *testing.T) {
	a := Partition(77, 300, 8)
	b := Partition(77, 300, 8)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (job, n, nshards) produced different partitions")
	}
	c := Partition(78, 300, 8)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different jobs produced identical partitions (vanishingly unlikely)")
	}
}

func TestPartitionSpread(t *testing.T) {
	parts := Partition(1, 1600, 16)
	empty := 0
	for _, tasks := range parts {
		if len(tasks) == 0 {
			empty++
		}
	}
	if empty > 0 {
		t.Fatalf("%d of 16 shards empty over 1600 tasks; virtual nodes too few", empty)
	}
}

func TestFingerprintOrderSensitive(t *testing.T) {
	a := Fingerprint([]uint64{1, 2, 3})
	b := Fingerprint([]uint64{3, 2, 1})
	if a == b {
		t.Fatal("fingerprint ignores order")
	}
	if Fingerprint(nil) != Fingerprint([]uint64{}) {
		t.Fatal("empty fingerprints differ")
	}
}
