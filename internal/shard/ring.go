package shard

import "sort"

// Consistent-hash partitioning of a dense task range [0, n) into
// shards. Each shard owns several virtual points on a 64-bit ring and
// a task lands on the first point clockwise of its own hash. The
// assignment is a pure function of (job, n, nshards) — every process
// that knows the job spec derives the identical partition, which is
// what lets the coordinator hand a worker nothing but shard IDs during
// recovery and still guarantee bit-identical reassembly.

// vnodesPerShard smooths the partition; 16 points per shard keeps the
// largest shard within ~2x of the mean, enough skew to exercise the
// straggler machinery without starving anyone.
const vnodesPerShard = 16

// mix64 is the splitmix64 finalizer, the same mixer faultinject uses
// for its deterministic fault draws.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Partition splits tasks [0, n) across nshards shards by consistent
// hashing, returning each shard's ascending task list. Shards may end
// up empty when nshards approaches n; callers treat an empty shard as
// trivially complete.
func Partition(job uint64, n, nshards int) [][]int {
	if nshards < 1 {
		nshards = 1
	}
	out := make([][]int, nshards)
	if n <= 0 {
		return out
	}
	type point struct {
		hash  uint64
		shard int
	}
	points := make([]point, 0, nshards*vnodesPerShard)
	for s := 0; s < nshards; s++ {
		for v := 0; v < vnodesPerShard; v++ {
			h := mix64(job ^ mix64(uint64(s)<<20|uint64(v)+1))
			points = append(points, point{h, s})
		}
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].hash != points[j].hash {
			return points[i].hash < points[j].hash
		}
		return points[i].shard < points[j].shard // total order even on hash ties
	})
	hashes := make([]uint64, len(points))
	for i, p := range points {
		hashes[i] = p.hash
	}
	for t := 0; t < n; t++ {
		h := mix64(job ^ mix64(uint64(t)+0x5bd1e995))
		i := sort.Search(len(hashes), func(i int) bool { return hashes[i] >= h })
		if i == len(hashes) {
			i = 0 // wrap around the ring
		}
		s := points[i].shard
		out[s] = append(out[s], t)
	}
	return out
}
