// Package shard is the suite's fault-tolerant distributed execution
// fabric: a coordinator partitions a kernel's task range into shards
// by consistent hashing and leases them to worker processes over a
// compact local RPC protocol. Robustness is the design center — shard
// leases with deadlines, worker heartbeats, rescheduling of lost and
// expired shards, hedged re-dispatch of stragglers with
// first-result-wins dedup, and bounded worker-side retries — and the
// invariant the whole package is tested against is *provable
// recovery*: a run that loses workers mid-flight must still produce
// results bit-identical to the single-process path.
//
// The protocol is deliberately small. Workers connect, say Hello, and
// pull shards; the coordinator never dials anyone. Every frame on the
// wire is a 4-byte big-endian length followed by one gob-encoded Msg,
// and a shard's task set travels as delta-encoded varints, so a
// thousand-task shard costs about a kilobyte. docs/DISTRIBUTED.md
// documents the message flow, the lease protocol, and the
// failure-mode matrix.
package shard

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"sort"
)

// MsgType discriminates wire messages.
type MsgType uint8

// Wire message types. Workers send Hello once, then loop Pull →
// (Assign | NoWork | Shutdown), interleaving Heartbeat and Result
// fire-and-forget frames; the coordinator only ever writes in response
// to Hello and Pull.
const (
	MsgHello     MsgType = iota + 1 // worker → coordinator: join (Worker)
	MsgHelloAck                     // coordinator → worker: accepted (LeaseMs = lease the worker must beat within)
	MsgPull                         // worker → coordinator: give me a shard (Worker)
	MsgAssign                       // coordinator → worker: one shard lease (Job..LeaseMs)
	MsgNoWork                       // coordinator → worker: nothing to do right now
	MsgShutdown                     // coordinator → worker: drain and exit
	MsgResult                       // worker → coordinator: shard outcome (Job, Shard, Attempt, Digests | Err)
	MsgHeartbeat                    // worker → coordinator: still alive (Worker)
)

func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "hello"
	case MsgHelloAck:
		return "hello-ack"
	case MsgPull:
		return "pull"
	case MsgAssign:
		return "assign"
	case MsgNoWork:
		return "no-work"
	case MsgShutdown:
		return "shutdown"
	case MsgResult:
		return "result"
	case MsgHeartbeat:
		return "heartbeat"
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// Msg is the single wire message shape; which fields are meaningful
// depends on Type. One struct (rather than an interface) keeps the gob
// stream free of per-frame type registration and the protocol trivially
// inspectable.
type Msg struct {
	Type    MsgType
	Worker  string // Hello, Pull, Heartbeat, Result: sender's worker ID
	Job     uint64 // Assign, Result: job the shard belongs to
	Kernel  string // Assign: kernel name ("bsw", "spoa", ...)
	Size    string // Assign: dataset size ("small", "large")
	Seed    int64  // Assign: dataset seed
	Shard   int    // Assign, Result: shard index within the job
	Attempt int    // Assign, Result: dispatch attempt (1-based)
	Tasks   []byte // Assign: delta-varint task index set (EncodeTasks)
	LeaseMs int64  // HelloAck, Assign: lease duration in milliseconds
	Digests []uint64 // Result: per-task digests, in Tasks order
	Ops     uint64   // Result: kernel work units executed in the shard
	ElapsedNs int64  // Result: worker-side shard execution time
	Err     string   // Result: non-empty when the shard failed worker-side
}

// maxFrame bounds one frame; a small-input shard result is a few KB,
// so anything past this is a corrupt or hostile stream.
const maxFrame = 16 << 20

// writeMsg frames m as length-prefixed gob. Each frame carries a
// self-contained gob stream: the per-frame type preamble costs a few
// dozen bytes but makes frames independently decodable, which is what
// lets a coordinator drop a worker mid-frame without poisoning a
// shared decoder state machine.
func writeMsg(w io.Writer, m *Msg) error {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 0}) // length placeholder
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return fmt.Errorf("shard: encoding %s frame: %w", m.Type, err)
	}
	b := buf.Bytes()
	n := len(b) - 4
	if n > maxFrame {
		return fmt.Errorf("shard: %s frame of %d bytes exceeds limit", m.Type, n)
	}
	binary.BigEndian.PutUint32(b[:4], uint32(n))
	_, err := w.Write(b)
	return err
}

// readMsg reads one length-prefixed gob frame into m.
func readMsg(r io.Reader, m *Msg) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrame {
		return fmt.Errorf("shard: bad frame length %d", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	*m = Msg{}
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(m); err != nil {
		return fmt.Errorf("shard: decoding frame: %w", err)
	}
	return nil
}

// EncodeTasks packs a set of task indices as delta-encoded uvarints.
// The input is sorted (a copy is taken; the argument is not mutated),
// so consecutive runs — the common case after consistent-hash
// partitioning of a dense range — cost one byte per task.
func EncodeTasks(tasks []int) []byte {
	if len(tasks) == 0 {
		return nil
	}
	sorted := append([]int(nil), tasks...)
	sort.Ints(sorted)
	buf := make([]byte, 0, len(sorted)+binary.MaxVarintLen64)
	prev := 0
	for _, t := range sorted {
		buf = binary.AppendUvarint(buf, uint64(t-prev))
		prev = t
	}
	return buf
}

// DecodeTasks unpacks an EncodeTasks buffer into ascending task
// indices.
func DecodeTasks(b []byte) ([]int, error) {
	if len(b) == 0 {
		return nil, nil
	}
	var tasks []int
	prev := 0
	for len(b) > 0 {
		d, n := binary.Uvarint(b)
		if n <= 0 {
			return nil, fmt.Errorf("shard: corrupt task set at offset %d", len(tasks))
		}
		b = b[n:]
		tasks = append(tasks, prev+int(d))
		prev += int(d)
	}
	return tasks, nil
}
