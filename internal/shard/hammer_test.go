package shard

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// TestHammerCoordinatorStateMachine drives the coordinator's
// lease/heartbeat state machine through sustained chaos — workers
// joining, dying by injection, dropping connections and rejoining
// under the same ID, leases expiring, hedges racing primaries into
// duplicate completions — across several back-to-back jobs, while
// asserting every job still assembles the exact digest vector. Run
// with -race; the point is as much the detector as the assertions.
func TestHammerCoordinatorStateMachine(t *testing.T) {
	if testing.Short() {
		t.Skip("hammer test skipped in -short mode")
	}
	registerSynth()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	opts := Options{
		Lease:          150 * time.Millisecond,
		HeartbeatGrace: 300 * time.Millisecond,
		Sweep:          10 * time.Millisecond,
		MaxAttempts:    20,
		HedgeAge:       20 * time.Millisecond,
		HedgeQuantile:  0.9,
		HedgeFactor:    2,
		NoWorkerGrace:  10 * time.Second,
	}
	c := NewCoordinator(opts)
	if err := c.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	// Three reliable workers guarantee forward progress.
	for i := 1; i <= 3; i++ {
		id := fmt.Sprintf("steady%d", i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			RunWorker(ctx, WorkerOptions{
				ID: id, Addr: c.Addr(),
				Heartbeat: 40 * time.Millisecond, PullDelay: 2 * time.Millisecond,
			})
		}()
	}
	// Three chaotic workers die and drop connections probabilistically
	// and are respawned under the same ID, exercising the replacement
	// and incarnation-fencing paths.
	for i := 1; i <= 3; i++ {
		id := fmt.Sprintf("chaos%d", i)
		plan, err := faultinject.Parse(
			fmt.Sprintf("killworker:%s:0.3,dropconn:%s:0.3", id, id), int64(i))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				err := RunWorker(ctx, WorkerOptions{
					ID: id, Addr: c.Addr(), Plan: plan,
					Heartbeat: 40 * time.Millisecond, PullDelay: 2 * time.Millisecond,
				})
				if err == nil { // clean shutdown: fabric is draining
					return
				}
				if !errors.Is(err, ErrKilled) && ctx.Err() != nil {
					return
				}
				select { // respawn after a beat, like a supervisor would
				case <-ctx.Done():
					return
				case <-time.After(15 * time.Millisecond):
				}
			}
		}()
	}
	if err := c.WaitForWorkers(ctx, 3); err != nil {
		t.Fatal(err)
	}

	// Concurrent observers poking the read paths while jobs run.
	obsCtx, obsCancel := context.WithCancel(ctx)
	var obsWG sync.WaitGroup
	obsWG.Add(1)
	go func() {
		defer obsWG.Done()
		for obsCtx.Err() == nil {
			_ = c.Workers()
			_ = c.Addr()
			time.Sleep(3 * time.Millisecond)
		}
	}()

	var summed Summary
	for job := 0; job < 5; job++ {
		n := 240 + 7*job
		seed := int64(1000 + job)
		res, err := c.RunJob(ctx, JobSpec{
			ID: c.NextJobID(), Kernel: "synth", Size: strconv.Itoa(n), Seed: seed,
			NumTasks: n, NumShards: 24,
		})
		if err != nil {
			t.Fatalf("job %d: %v", job, err)
		}
		checkDigests(t, res, seed, n)
		s := res.Summary
		summed.Dispatched += s.Dispatched
		summed.Completed += s.Completed
		summed.Rescheduled += s.Rescheduled
		summed.Hedged += s.Hedged
		summed.Lost += s.Lost
		summed.LeaseExpired += s.LeaseExpired
		summed.Duplicates += s.Duplicates
	}
	t.Logf("hammer totals: %+v", summed)
	if summed.Completed == 0 || summed.Dispatched < summed.Completed {
		t.Fatalf("inconsistent totals: %+v", summed)
	}
	// With kill probability 0.3 per chaotic shard boundary across five
	// jobs, recovery paths fire essentially always; a zero here means
	// the chaos never reached the state machine.
	if summed.Lost == 0 && summed.Rescheduled == 0 {
		t.Fatalf("chaos produced no lost/rescheduled shards: %+v", summed)
	}

	obsCancel()
	obsWG.Wait()
	cancel()
	c.Close()
	wg.Wait()
}
