package shard

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/resilience"
)

// ErrKilled is returned by RunWorker when a killworker fault fires:
// the worker abandoned its connection and everything it was executing,
// exactly as a SIGKILLed process would. cmd/gbench-worker turns it
// into an abrupt nonzero exit.
var ErrKilled = errors.New("shard: worker killed by fault injection")

// WorkerOptions configures one worker.
type WorkerOptions struct {
	ID   string
	Addr string
	// Heartbeat overrides the beat interval; 0 derives it from the
	// coordinator's advertised lease (a third of it).
	Heartbeat time.Duration
	// PullDelay is the idle re-poll interval after NoWork.
	PullDelay time.Duration
	// Plan, when non-nil, arms this worker's private fault plan
	// (killworker / slowshard / dropconn at shard boundaries, plus the
	// classic panic/delay/error kinds inside the task loop). Each
	// worker holds its own plan instance, so in-process fleets evaluate
	// faults without racing over package-global state.
	Plan *faultinject.Plan
	// Retry is the per-shard worker-side retry policy; zero value means
	// 2 attempts with 25ms..250ms backoff. Retries re-run the whole
	// shard locally before the coordinator ever sees a failure.
	Retry resilience.Policy
	// Reconnects bounds dial attempts after a lost connection.
	Reconnects int
}

func (o WorkerOptions) withDefaults() WorkerOptions {
	if o.PullDelay <= 0 {
		o.PullDelay = 10 * time.Millisecond
	}
	if o.Retry.Attempts == 0 {
		o.Retry = resilience.Policy{
			Attempts: 2, BackoffBase: 25 * time.Millisecond, BackoffCap: 250 * time.Millisecond,
		}
	}
	if o.Reconnects <= 0 {
		o.Reconnects = 5
	}
	return o
}

// sleepCtx sleeps for d or until ctx is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// worker is one connection-scoped execution loop.
type worker struct {
	opts   WorkerOptions
	conn   net.Conn
	wmu    sync.Mutex // serializes result/pull frames with heartbeats
	joined bool       // completed a Hello handshake at least once
	execs  map[string]Executor
	prep   map[string]int // prepared dataset task counts, keyed kernel|size|seed
}

// RunWorker connects to the coordinator at opts.Addr and processes
// shards until the coordinator says Shutdown, ctx is cancelled, or a
// killworker fault fires (ErrKilled). A lost connection is redialed
// with backoff up to opts.Reconnects times; an in-flight shard at the
// time of the loss is simply abandoned — the coordinator's lease
// machinery reschedules it, and if this worker already computed the
// result, the reschedule's duplicate is deduplicated upstream.
func RunWorker(ctx context.Context, opts WorkerOptions) error {
	w := &worker{opts: opts.withDefaults(), execs: map[string]Executor{}, prep: map[string]int{}}
	defer w.closeConn()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if w.conn == nil {
			if err := w.connect(ctx); err != nil {
				if w.joined && ctx.Err() == nil {
					// The coordinator we once served is gone: the run is
					// over (or we are fenced off); drain out cleanly rather
					// than reporting the expected post-shutdown dial failure.
					return nil
				}
				return err
			}
		}
		err := w.serve(ctx)
		switch {
		case err == nil:
			return nil // clean shutdown
		case errors.Is(err, ErrKilled):
			return ErrKilled
		case ctx.Err() != nil:
			return ctx.Err()
		default:
			// Connection-level failure (dropconn fault, coordinator
			// restart, transient refusal): redial and rejoin.
			w.closeConn()
		}
	}
}

func (w *worker) closeConn() {
	if w.conn != nil {
		w.conn.Close()
		w.conn = nil
	}
}

// connect dials the coordinator, says Hello, and derives the
// heartbeat interval from the acknowledged lease.
func (w *worker) connect(ctx context.Context) error {
	var lastErr error
	for i := 0; i < w.opts.Reconnects; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		d := net.Dialer{Timeout: 2 * time.Second}
		conn, err := d.DialContext(ctx, "tcp", w.opts.Addr)
		if err != nil {
			lastErr = err
			if err := sleepCtx(ctx, time.Duration(i+1)*50*time.Millisecond); err != nil {
				return err
			}
			continue
		}
		if err := writeMsg(conn, &Msg{Type: MsgHello, Worker: w.opts.ID}); err != nil {
			conn.Close()
			lastErr = err
			continue
		}
		var ack Msg
		if err := readMsg(conn, &ack); err != nil || ack.Type != MsgHelloAck {
			conn.Close()
			if err == nil {
				err = fmt.Errorf("shard: unexpected %s instead of hello-ack", ack.Type)
			}
			lastErr = err
			continue
		}
		w.conn = conn
		w.joined = true
		if w.opts.Heartbeat <= 0 {
			if lease := time.Duration(ack.LeaseMs) * time.Millisecond; lease > 0 {
				w.opts.Heartbeat = lease / 3
			} else {
				w.opts.Heartbeat = 500 * time.Millisecond
			}
		}
		return nil
	}
	return fmt.Errorf("shard: worker %s cannot reach coordinator %s: %w",
		w.opts.ID, w.opts.Addr, lastErr)
}

// send writes one frame to a pinned connection, serialized against
// the heartbeat goroutine. Callers pass the conn they captured at
// serve entry rather than reading w.conn, which the outer reconnect
// loop mutates; a stale conn just yields a write error.
func (w *worker) send(conn net.Conn, m *Msg) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	return writeMsg(conn, m)
}

// serve runs the pull loop over the current connection. Returns nil on
// Shutdown, ErrKilled on a killworker fault, and a transport error
// otherwise (the caller redials).
func (w *worker) serve(ctx context.Context) error {
	conn := w.conn

	// Heartbeats flow from a side goroutine for the lifetime of this
	// connection, so a worker grinding through a long shard still beats
	// and keeps its lease. It stops when the connection dies.
	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	go func() {
		t := time.NewTicker(w.opts.Heartbeat)
		defer t.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-t.C:
				if w.send(conn, &Msg{Type: MsgHeartbeat, Worker: w.opts.ID}) != nil {
					return
				}
			}
		}
	}()

	// Unblock the blocking read when ctx is cancelled.
	go func() {
		<-hbCtx.Done()
		conn.SetReadDeadline(time.Now())
	}()

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := w.send(conn, &Msg{Type: MsgPull, Worker: w.opts.ID}); err != nil {
			return err
		}
		var m Msg
		if err := readMsg(conn, &m); err != nil {
			return err
		}
		switch m.Type {
		case MsgShutdown:
			return nil
		case MsgNoWork:
			if err := sleepCtx(ctx, w.opts.PullDelay); err != nil {
				return err
			}
		case MsgAssign:
			if err := w.executeShard(ctx, conn, &m); err != nil {
				return err
			}
		default:
			return fmt.Errorf("shard: worker %s: unexpected %s frame", w.opts.ID, m.Type)
		}
	}
}

// executeShard runs one assigned shard: fault trip-points at the shard
// boundary, bounded local retries around the task loop, then the
// result frame. Returning an error tears the connection down (the
// outer loop decides whether to redial).
func (w *worker) executeShard(ctx context.Context, conn net.Conn, m *Msg) error {
	label := w.opts.ID + "/" + m.Kernel
	disrupt, err := w.opts.Plan.ShardFault(ctx, label)
	if err != nil {
		return err // cancelled mid-slowshard
	}
	if disrupt.Kill {
		// Die like a lost process: no result, no goodbye. The lease
		// expires or the conn close is noticed, and the shard reschedules.
		return ErrKilled
	}

	tasks, err := DecodeTasks(m.Tasks)
	if err != nil {
		return w.send(conn, &Msg{
			Type: MsgResult, Worker: w.opts.ID, Job: m.Job,
			Shard: m.Shard, Attempt: m.Attempt, Err: err.Error(),
		})
	}

	start := time.Now()
	var digests []uint64
	var ops uint64
	runErr := resilience.Run(ctx, "shard:"+m.Kernel, w.opts.Retry, func(actx context.Context) error {
		ex, err := w.executor(m.Kernel, m.Size, m.Seed, len(tasks))
		if err != nil {
			return err
		}
		digests = digests[:0]
		if cap(digests) < len(tasks) {
			digests = make([]uint64, 0, len(tasks))
		}
		ops = 0
		for _, t := range tasks {
			if err := w.opts.Plan.PointAt(actx, label); err != nil {
				return err
			}
			d, o, err := ex.RunTask(actx, t)
			if err != nil {
				return err
			}
			digests = append(digests, d)
			ops += o
		}
		return nil
	})

	if disrupt.Drop {
		// Partition after compute, before report: the freshest possible
		// lost result. Tear the connection down; the outer loop redials
		// and the coordinator reschedules this shard.
		return fmt.Errorf("shard: worker %s dropped connection (fault injection)", w.opts.ID)
	}

	res := &Msg{
		Type: MsgResult, Worker: w.opts.ID, Job: m.Job,
		Shard: m.Shard, Attempt: m.Attempt,
		ElapsedNs: time.Since(start).Nanoseconds(),
	}
	if runErr != nil {
		res.Err = runErr.Error()
	} else {
		res.Digests = digests
		res.Ops = ops
	}
	return w.send(conn, res)
}

// executor returns the prepared executor for (kernel, size, seed),
// building and preparing it on first use. Workers keep one executor
// per job key; the suite runs kernels serially, so the map stays tiny,
// and a rescheduled shard of an earlier kernel still finds its dataset
// warm.
func (w *worker) executor(kernel, size string, seed int64, want int) (Executor, error) {
	key := fmt.Sprintf("%s|%s|%d", kernel, size, seed)
	if ex, ok := w.execs[key]; ok {
		return ex, nil
	}
	ex, err := NewExecutor(kernel)
	if err != nil {
		return nil, err
	}
	n, err := ex.Prepare(size, seed)
	if err != nil {
		return nil, fmt.Errorf("shard: preparing %s: %w", key, err)
	}
	_ = want // the coordinator partitioned [0, n); any task index it sends is < n
	w.execs[key] = ex
	w.prep[key] = n
	return ex, nil
}
