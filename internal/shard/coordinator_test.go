package shard

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// The synthetic executor: Prepare parses the size string as the task
// count, and a task's digest is a pure function of (seed, task), so
// tests can compute the expected digest vector without running
// anything.

type synthExec struct {
	n    int
	seed int64
	fail bool // every RunTask errors
}

func (e *synthExec) Prepare(size string, seed int64) (int, error) {
	n, err := strconv.Atoi(size)
	if err != nil {
		return 0, fmt.Errorf("synth: bad size %q", size)
	}
	e.n, e.seed = n, seed
	return n, nil
}

func (e *synthExec) RunTask(ctx context.Context, task int) (uint64, uint64, error) {
	if e.fail {
		return 0, 0, errors.New("synth: injected task failure")
	}
	return synthDigest(e.seed, task), 1, nil
}

func synthDigest(seed int64, task int) uint64 {
	return mix64(uint64(seed) ^ uint64(task)<<1 ^ 0xabcdef)
}

func synthDigests(seed int64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = synthDigest(seed, i)
	}
	return out
}

var registerSynthOnce sync.Once

func registerSynth() {
	registerSynthOnce.Do(func() {
		RegisterExecutor("synth", func() Executor { return &synthExec{} })
		RegisterExecutor("synth-fail", func() Executor { return &synthExec{fail: true} })
	})
}

// testOptions shrinks the failure detectors to test scale.
func testOptions() Options {
	return Options{
		Lease:          250 * time.Millisecond,
		HeartbeatGrace: 250 * time.Millisecond,
		Sweep:          10 * time.Millisecond,
		MaxAttempts:    8,
		HedgeAge:       30 * time.Millisecond,
		HedgeQuantile:  0.9,
		HedgeFactor:    3,
		NoWorkerGrace:  5 * time.Second,
	}
}

func startCoordinator(t *testing.T, opts Options) *Coordinator {
	t.Helper()
	registerSynth()
	c := NewCoordinator(opts)
	if err := c.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("start: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

// startWorker runs an in-process worker goroutine and returns a
// channel carrying RunWorker's exit error.
func startWorker(t *testing.T, ctx context.Context, c *Coordinator, id string, plan *faultinject.Plan) <-chan error {
	t.Helper()
	done := make(chan error, 1)
	go func() {
		done <- RunWorker(ctx, WorkerOptions{
			ID: id, Addr: c.Addr(), Plan: plan,
			Heartbeat: 50 * time.Millisecond,
			PullDelay: 2 * time.Millisecond,
		})
	}()
	return done
}

func checkDigests(t *testing.T, res *JobResult, seed int64, n int) {
	t.Helper()
	want := synthDigests(seed, n)
	if len(res.Digests) != n {
		t.Fatalf("got %d digests, want %d", len(res.Digests), n)
	}
	for i := range want {
		if res.Digests[i] != want[i] {
			t.Fatalf("digest[%d] = %x, want %x", i, res.Digests[i], want[i])
		}
	}
	if fp := Fingerprint(want); res.Fingerprint != fp {
		t.Fatalf("fingerprint %x, want %x", res.Fingerprint, fp)
	}
}

func TestFabricRunsJob(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	c := startCoordinator(t, testOptions())
	for i := 1; i <= 3; i++ {
		startWorker(t, ctx, c, fmt.Sprintf("w%d", i), nil)
	}
	if err := c.WaitForWorkers(ctx, 3); err != nil {
		t.Fatal(err)
	}

	const n, seed = 200, int64(7)
	res, err := c.RunJob(ctx, JobSpec{
		ID: c.NextJobID(), Kernel: "synth", Size: strconv.Itoa(n), Seed: seed,
		NumTasks: n, NumShards: 16,
	})
	if err != nil {
		t.Fatalf("RunJob: %v", err)
	}
	checkDigests(t, res, seed, n)
	if res.Ops != n {
		t.Fatalf("ops = %d, want %d", res.Ops, n)
	}
	s := res.Summary
	if s.Completed == 0 || s.Dispatched < s.Completed {
		t.Fatalf("odd summary: %+v", s)
	}
	if s.Workers < 1 || s.Workers > 3 {
		t.Fatalf("workers = %d", s.Workers)
	}
}

func TestFabricRunsBackToBackJobs(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	c := startCoordinator(t, testOptions())
	startWorker(t, ctx, c, "w1", nil)
	if err := c.WaitForWorkers(ctx, 1); err != nil {
		t.Fatal(err)
	}
	for job := 0; job < 3; job++ {
		n := 40 + job
		seed := int64(100 + job)
		res, err := c.RunJob(ctx, JobSpec{
			ID: c.NextJobID(), Kernel: "synth", Size: strconv.Itoa(n), Seed: seed,
			NumTasks: n, NumShards: 4,
		})
		if err != nil {
			t.Fatalf("job %d: %v", job, err)
		}
		checkDigests(t, res, seed, n)
	}
}

func TestFabricZeroTasks(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c := startCoordinator(t, testOptions())
	res, err := c.RunJob(ctx, JobSpec{ID: c.NextJobID(), Kernel: "synth", Size: "0", NumTasks: 0, NumShards: 4})
	if err != nil {
		t.Fatalf("RunJob: %v", err)
	}
	if len(res.Digests) != 0 || res.Summary.Dispatched != 0 {
		t.Fatalf("unexpected result: %+v", res)
	}
}

func TestWorkerKilledMidRunReschedules(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	c := startCoordinator(t, testOptions())

	// w1 dies the instant it receives its first shard; w2 and w3 carry
	// the job. The shard w1 took must be rescheduled and the digest
	// vector must come out identical to a clean run.
	kill, err := faultinject.Parse("killworker:w1:1", 1)
	if err != nil {
		t.Fatal(err)
	}
	w1done := startWorker(t, ctx, c, "w1", kill)
	startWorker(t, ctx, c, "w2", nil)
	startWorker(t, ctx, c, "w3", nil)
	if err := c.WaitForWorkers(ctx, 3); err != nil {
		t.Fatal(err)
	}

	const n, seed = 120, int64(3)
	res, err := c.RunJob(ctx, JobSpec{
		ID: c.NextJobID(), Kernel: "synth", Size: strconv.Itoa(n), Seed: seed,
		NumTasks: n, NumShards: 12,
	})
	if err != nil {
		t.Fatalf("RunJob: %v", err)
	}
	checkDigests(t, res, seed, n)
	if res.Summary.Lost == 0 {
		t.Fatalf("expected lost shards from the killed worker: %+v", res.Summary)
	}
	if res.Summary.Rescheduled == 0 {
		t.Fatalf("expected reschedules after worker death: %+v", res.Summary)
	}
	if err := <-w1done; !errors.Is(err, ErrKilled) {
		t.Fatalf("w1 exit = %v, want ErrKilled", err)
	}
}

func TestShardAttemptsExhaustedFailsJob(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	opts := testOptions()
	opts.MaxAttempts = 2
	c := startCoordinator(t, opts)
	startWorker(t, ctx, c, "w1", nil)
	if err := c.WaitForWorkers(ctx, 1); err != nil {
		t.Fatal(err)
	}

	_, err := c.RunJob(ctx, JobSpec{
		ID: c.NextJobID(), Kernel: "synth-fail", Size: "10", NumTasks: 10, NumShards: 2,
	})
	var lost *ErrShardLost
	if !errors.As(err, &lost) {
		t.Fatalf("RunJob err = %v, want ErrShardLost", err)
	}
	if lost.Attempts < opts.MaxAttempts {
		t.Fatalf("failed after %d attempts, want >= %d", lost.Attempts, opts.MaxAttempts)
	}

	// The fabric must still be usable: the next job on the same
	// coordinator succeeds.
	res, err := c.RunJob(ctx, JobSpec{
		ID: c.NextJobID(), Kernel: "synth", Size: "30", Seed: 9, NumTasks: 30, NumShards: 3,
	})
	if err != nil {
		t.Fatalf("job after failed job: %v", err)
	}
	checkDigests(t, res, 9, 30)
}

func TestNoWorkersFailsJobAfterGrace(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	opts := testOptions()
	opts.NoWorkerGrace = 150 * time.Millisecond
	c := startCoordinator(t, opts)
	_, err := c.RunJob(ctx, JobSpec{ID: c.NextJobID(), Kernel: "synth", Size: "10", NumTasks: 10, NumShards: 2})
	if !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("RunJob err = %v, want ErrNoWorkers", err)
	}
}

func TestRunJobHonorsContextCancel(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c := startCoordinator(t, testOptions())
	jctx, jcancel := context.WithCancel(ctx)
	go func() {
		time.Sleep(50 * time.Millisecond)
		jcancel()
	}()
	_, err := c.RunJob(jctx, JobSpec{ID: c.NextJobID(), Kernel: "synth", Size: "10", NumTasks: 10, NumShards: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunJob err = %v, want context.Canceled", err)
	}
}

func TestCoordinatorCloseDrainsWorkers(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	registerSynth()
	c := NewCoordinator(testOptions())
	if err := c.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	w1 := startWorker(t, ctx, c, "w1", nil)
	w2 := startWorker(t, ctx, c, "w2", nil)
	if err := c.WaitForWorkers(ctx, 2); err != nil {
		t.Fatal(err)
	}
	c.Close()
	for i, ch := range []<-chan error{w1, w2} {
		select {
		case err := <-ch:
			if err != nil {
				t.Fatalf("worker %d exit = %v, want clean drain", i+1, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("worker %d did not drain after Close", i+1)
		}
	}
}

// ---- raw-protocol clients: deterministic control over frame order ----

type rawClient struct {
	t    *testing.T
	conn net.Conn
	id   string
}

func dialRaw(t *testing.T, addr, id string) *rawClient {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	c := &rawClient{t: t, conn: conn, id: id}
	c.send(&Msg{Type: MsgHello, Worker: id})
	if ack := c.recv(); ack.Type != MsgHelloAck {
		t.Fatalf("%s: got %s, want hello-ack", id, ack.Type)
	}
	return c
}

func (c *rawClient) send(m *Msg) {
	c.t.Helper()
	if err := writeMsg(c.conn, m); err != nil {
		c.t.Fatalf("%s: send %s: %v", c.id, m.Type, err)
	}
}

func (c *rawClient) recv() *Msg {
	c.t.Helper()
	var m Msg
	c.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if err := readMsg(c.conn, &m); err != nil {
		c.t.Fatalf("%s: recv: %v", c.id, err)
	}
	return &m
}

// pull sends one Pull and returns the reply.
func (c *rawClient) pull() *Msg {
	c.send(&Msg{Type: MsgPull, Worker: c.id})
	return c.recv()
}

// pullAssign pulls until an Assign arrives.
func (c *rawClient) pullAssign() *Msg {
	c.t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		m := c.pull()
		if m.Type == MsgAssign {
			return m
		}
		if m.Type != MsgNoWork {
			c.t.Fatalf("%s: pull got %s", c.id, m.Type)
		}
		time.Sleep(5 * time.Millisecond)
	}
	c.t.Fatalf("%s: no assignment within deadline", c.id)
	return nil
}

// finish computes the assignment's synthetic digests and reports them.
func (c *rawClient) finish(a *Msg) {
	c.t.Helper()
	tasks, err := DecodeTasks(a.Tasks)
	if err != nil {
		c.t.Fatalf("decode tasks: %v", err)
	}
	digests := make([]uint64, len(tasks))
	for i, task := range tasks {
		digests[i] = synthDigest(a.Seed, task)
	}
	c.send(&Msg{
		Type: MsgResult, Worker: c.id, Job: a.Job, Shard: a.Shard,
		Attempt: a.Attempt, Digests: digests, Ops: uint64(len(tasks)), ElapsedNs: 1000,
	})
}

// runJobAsync submits a job from a goroutine, returning result channels.
func runJobAsync(ctx context.Context, c *Coordinator, spec JobSpec) (<-chan *JobResult, <-chan error) {
	resCh := make(chan *JobResult, 1)
	errCh := make(chan error, 1)
	go func() {
		res, err := c.RunJob(ctx, spec)
		resCh <- res
		errCh <- err
	}()
	return resCh, errCh
}

func TestLeaseExpiryReschedulesShard(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	opts := testOptions()
	opts.Lease = 120 * time.Millisecond
	opts.HeartbeatGrace = 10 * time.Second // isolate lease expiry from heartbeat death
	opts.HedgeAge = 10 * time.Second       // and from hedging
	c := startCoordinator(t, opts)

	// "hog" takes a shard and never reports, but keeps its connection
	// warm with Pull frames (which refresh the heartbeat clock without
	// extending leases). Its lease must expire and the shard must be
	// rescheduled onto "carrier".
	hog := dialRaw(t, c.Addr(), "hog")
	carrier := dialRaw(t, c.Addr(), "carrier")

	const n, seed = 60, int64(11)
	resCh, errCh := runJobAsync(ctx, c, JobSpec{
		ID: c.NextJobID(), Kernel: "synth", Size: strconv.Itoa(n), Seed: seed,
		NumTasks: n, NumShards: 3,
	})

	hogged := hog.pullAssign() // hog now holds one shard and sits on it

	done := make(chan struct{})
	go func() { // carrier completes everything it is offered, forever
		defer close(done)
		for ctx.Err() == nil {
			if writeMsg(carrier.conn, &Msg{Type: MsgPull, Worker: carrier.id}) != nil {
				return
			}
			var m Msg
			carrier.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
			if readMsg(carrier.conn, &m) != nil {
				return
			}
			switch m.Type {
			case MsgAssign:
				tasks, err := DecodeTasks(m.Tasks)
				if err != nil {
					return
				}
				digests := make([]uint64, len(tasks))
				for i, task := range tasks {
					digests[i] = synthDigest(m.Seed, task)
				}
				if writeMsg(carrier.conn, &Msg{
					Type: MsgResult, Worker: carrier.id, Job: m.Job, Shard: m.Shard,
					Attempt: m.Attempt, Digests: digests, Ops: uint64(len(tasks)), ElapsedNs: 1000,
				}) != nil {
					return
				}
			case MsgNoWork:
				select {
				case <-ctx.Done():
					return
				case <-time.After(5 * time.Millisecond):
				}
			default:
				return // shutdown
			}
		}
	}()
	// Keep the hog's heartbeat clock fresh without Heartbeat frames so
	// only the lease detector can fire.
	go func() {
		for ctx.Err() == nil {
			time.Sleep(40 * time.Millisecond)
			if err := writeMsg(hog.conn, &Msg{Type: MsgPull, Worker: "hog"}); err != nil {
				return
			}
			var m Msg
			hog.conn.SetReadDeadline(time.Now().Add(2 * time.Second))
			if err := readMsg(hog.conn, &m); err != nil {
				return
			}
			if m.Type == MsgShutdown {
				return
			}
			if m.Type == MsgAssign {
				// Sit on hedges/reassignments too; the job must still
				// finish through the carrier.
				_ = m
			}
		}
	}()

	res, err := <-resCh, <-errCh
	if err != nil {
		t.Fatalf("RunJob: %v", err)
	}
	checkDigests(t, res, seed, n)
	if res.Summary.LeaseExpired == 0 {
		t.Fatalf("expected lease expiries (hogged shard %d): %+v", hogged.Shard, res.Summary)
	}
	if res.Summary.Rescheduled == 0 && res.Summary.Hedged == 0 {
		t.Fatalf("hogged shard neither rescheduled nor hedged: %+v", res.Summary)
	}
	cancel()
	<-done
}

func TestHedgeDuplicateFirstResultWins(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	opts := testOptions()
	opts.Lease = 5 * time.Second // leases never expire; only hedging acts
	opts.HedgeAge = 30 * time.Millisecond
	c := startCoordinator(t, opts)

	slow := dialRaw(t, c.Addr(), "slow")
	fast := dialRaw(t, c.Addr(), "fast")
	helper := dialRaw(t, c.Addr(), "helper")

	// A 3-shard job. slow takes shard A and stalls; fast takes B,
	// finishes it, then hedges A; slow's late result for A must count
	// as a duplicate (helper still holds C, keeping the job alive).
	const n, seed = 90, int64(5)
	resCh, errCh := runJobAsync(ctx, c, JobSpec{
		ID: c.NextJobID(), Kernel: "synth", Size: strconv.Itoa(n), Seed: seed,
		NumTasks: n, NumShards: 3,
	})

	aAssign := slow.pullAssign()
	bAssign := fast.pullAssign()
	cAssign := helper.pullAssign()
	if aAssign.Shard == bAssign.Shard || aAssign.Shard == cAssign.Shard || bAssign.Shard == cAssign.Shard {
		t.Fatalf("expected three distinct shards: %d %d %d", aAssign.Shard, bAssign.Shard, cAssign.Shard)
	}
	fast.finish(bAssign)
	time.Sleep(3 * opts.HedgeAge) // age shard A past the hedge threshold

	hedge := fast.pullAssign()
	if hedge.Shard != aAssign.Shard {
		t.Fatalf("hedge picked shard %d, want straggler %d", hedge.Shard, aAssign.Shard)
	}
	if hedge.Attempt <= aAssign.Attempt {
		t.Fatalf("hedge attempt %d not past original %d", hedge.Attempt, aAssign.Attempt)
	}
	fast.finish(hedge)   // first result wins for shard A
	slow.finish(aAssign) // late duplicate while shard C is still out

	// Give the duplicate a moment to be processed, then finish the job.
	time.Sleep(50 * time.Millisecond)
	helper.finish(cAssign)

	res, err := <-resCh, <-errCh
	if err != nil {
		t.Fatalf("RunJob: %v", err)
	}
	checkDigests(t, res, seed, n)
	s := res.Summary
	if s.Hedged != 1 {
		t.Fatalf("hedged = %d, want 1: %+v", s.Hedged, s)
	}
	if s.Duplicates != 1 {
		t.Fatalf("duplicates = %d, want 1: %+v", s.Duplicates, s)
	}
	if s.Completed != 3 {
		t.Fatalf("completed = %d, want 3: %+v", s.Completed, s)
	}
}

func TestHeartbeatSilenceDeclaresWorkerDead(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	opts := testOptions()
	opts.Lease = 10 * time.Second // leases outlive the test: only heartbeat death can recover
	opts.HeartbeatGrace = 150 * time.Millisecond
	opts.HedgeAge = 10 * time.Second
	c := startCoordinator(t, opts)

	silent := dialRaw(t, c.Addr(), "silent")
	startWorker(t, ctx, c, "live", nil)
	if err := c.WaitForWorkers(ctx, 2); err != nil {
		t.Fatal(err)
	}

	const n, seed = 40, int64(13)
	resCh, errCh := runJobAsync(ctx, c, JobSpec{
		ID: c.NextJobID(), Kernel: "synth", Size: strconv.Itoa(n), Seed: seed,
		NumTasks: n, NumShards: 2,
	})
	silent.pullAssign() // take a shard, then go completely quiet

	res, err := <-resCh, <-errCh
	if err != nil {
		t.Fatalf("RunJob: %v", err)
	}
	checkDigests(t, res, seed, n)
	if res.Summary.Lost == 0 {
		t.Fatalf("expected the silent worker's shard to be declared lost: %+v", res.Summary)
	}
}
