package seq2

import (
	"math/rand"
	"testing"

	"repro/internal/genome"
)

// scalarRevComp is the O(k) loop the packed version replaces.
func scalarRevComp(code uint64, k int) uint64 {
	rc := uint64(0)
	x := code
	for i := 0; i < k; i++ {
		rc = rc<<2 | (3 - (x & 3))
		x >>= 2
	}
	return rc
}

func TestPackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 31, 32, 33, 63, 64, 65, 1000} {
		s := genome.Random(rng, n)
		p := Pack(s)
		if p.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, p.Len())
		}
		if !p.Unpack().Equal(s) {
			t.Fatalf("n=%d: round trip mismatch", n)
		}
		for i := 0; i < n; i++ {
			if p.Get(i) != s[i] {
				t.Fatalf("n=%d: Get(%d)=%d want %d", n, i, p.Get(i), s[i])
			}
		}
	}
}

func TestPackIntoReuses(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	buf := make([]uint64, 8)
	s := genome.Random(rng, 100)
	p := PackInto(buf, s)
	if !p.Unpack().Equal(s) {
		t.Fatal("PackInto mismatch")
	}
	s2 := genome.Random(rng, 200)
	p2 := PackInto(p.WordsSlice(), s2)
	if !p2.Unpack().Equal(s2) {
		t.Fatal("PackInto regrow mismatch")
	}
}

func TestMatchMaskDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(300)
		s := genome.Random(rng, n)
		p := Pack(s)
		mask := make([]uint64, Words(n))
		for b := genome.Base(0); b < 4; b++ {
			MatchMask(mask, p, b)
			for i := 0; i < n; i++ {
				want := s[i] == b
				if got := MatchBit(mask, i); got != want {
					t.Fatalf("n=%d b=%d i=%d: MatchBit=%v want %v", n, b, i, got, want)
				}
			}
		}
	}
}

func TestMatchMaskBitsDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(400)
		s := genome.Random(rng, n)
		p := Pack(s)
		mask := make([]uint64, BitsWords(n))
		for b := genome.Base(0); b < 4; b++ {
			MatchMaskBits(mask, p, b)
			for i := 0; i < n; i++ {
				want := s[i] == b
				if got := mask[i/64]>>(uint(i)%64)&1 != 0; got != want {
					t.Fatalf("n=%d b=%d i=%d: bit=%v want %v", n, b, i, got, want)
				}
			}
			// Padding bits beyond n must be zero even for base A, which
			// the 2-bit packing's padding lanes alias.
			for i := n; i < 64*len(mask); i++ {
				if mask[i/64]>>(uint(i)%64)&1 != 0 {
					t.Fatalf("n=%d b=%d: padding bit %d set", n, b, i)
				}
			}
		}
	}
}

func TestCountRangeDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(400)
		s := genome.Random(rng, n)
		p := Pack(s)
		lo := rng.Intn(n + 1)
		hi := lo + rng.Intn(n+1-lo)
		var want [4]int
		for i := lo; i < hi; i++ {
			want[s[i]]++
		}
		got4 := p.Count4Range(lo, hi)
		for b := genome.Base(0); b < 4; b++ {
			if got := p.CountRange(b, lo, hi); got != want[b] {
				t.Fatalf("CountRange(b=%d, [%d,%d)) = %d, want %d", b, lo, hi, got, want[b])
			}
			if got4[b] != want[b] {
				t.Fatalf("Count4Range(b=%d, [%d,%d)) = %d, want %d", b, lo, hi, got4[b], want[b])
			}
		}
	}
}

func TestRevCompCodeDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for k := 1; k <= 31; k++ {
		for trial := 0; trial < 50; trial++ {
			code := rng.Uint64() & (1<<(2*uint(k)) - 1)
			if got, want := RevCompCode(code, k), scalarRevComp(code, k); got != want {
				t.Fatalf("k=%d code=%#x: RevCompCode=%#x want %#x", k, code, got, want)
			}
		}
	}
}

func TestRevCompMatchesSeqReverseComplement(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for k := 1; k <= 31; k++ {
		s := genome.Random(rng, k)
		code := genome.KmerCode(s, 0, k)
		want := genome.KmerCode(s.ReverseComplement(), 0, k)
		if got := RevCompCode(code, k); got != want {
			t.Fatalf("k=%d: RevCompCode=%#x want %#x", k, got, want)
		}
	}
}

func TestCanonicalMin(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(31)
		code := rng.Uint64() & (1<<(2*uint(k)) - 1)
		rc := scalarRevComp(code, k)
		want := code
		if rc < code {
			want = rc
		}
		if got := Canonical(code, k); got != want {
			t.Fatalf("k=%d: Canonical=%#x want %#x", k, got, want)
		}
	}
}

func BenchmarkRevComp(b *testing.B) {
	const k = 17
	codes := make([]uint64, 1024)
	rng := rand.New(rand.NewSource(8))
	for i := range codes {
		codes[i] = rng.Uint64() & (1<<(2*k) - 1)
	}
	b.Run("scalar", func(b *testing.B) {
		var sink uint64
		for i := 0; i < b.N; i++ {
			sink ^= scalarRevComp(codes[i%len(codes)], k)
		}
		_ = sink
	})
	b.Run("swar", func(b *testing.B) {
		var sink uint64
		for i := 0; i < b.N; i++ {
			sink ^= RevCompCode(codes[i%len(codes)], k)
		}
		_ = sink
	})
}
