// Package seq2 provides 2-bit packed nucleotide sequences and the
// SWAR (SIMD-within-a-register) primitives the suite's optimized hot
// paths are built on: packed-word base comparison (32 bases per
// uint64 compare, used by bsw's row match masks), popcount-based base
// ranking over packed words (fmindex's Occ blocks), and O(1)
// reverse-complement of packed k-mer codes (kmercnt's canonicalizer).
//
// The byte-per-base genome.Seq representation stays the suite's
// interchange type; Packed is the hot-path layout, exactly the
// bit-packing BWA-MEM2 and Flye use so 32 base comparisons collapse
// into a handful of word ops. All packed operations are differential-
// tested against their scalar equivalents: they change cost, never
// answers.
package seq2

import (
	"math/bits"

	"repro/internal/genome"
)

// lane masks for 2-bit SWAR lanes.
const (
	loBits = 0x5555555555555555 // low bit of every 2-bit lane
	hiBits = 0xaaaaaaaaaaaaaaaa // high bit of every 2-bit lane
)

// BasesPerWord is the packing density: 32 bases per uint64.
const BasesPerWord = 32

// Words returns the number of uint64 words needed to pack n bases.
func Words(n int) int { return (n + BasesPerWord - 1) / BasesPerWord }

// Packed is a 2-bit-per-base sequence: base i occupies bits
// [2*(i%32), 2*(i%32)+1] of words[i/32] (LSB-first). Trailing lanes of
// the last word are zero (base A), which every ranged operation masks
// off.
type Packed struct {
	words []uint64
	n     int
}

// Pack encodes s into a freshly allocated Packed.
func Pack(s genome.Seq) Packed {
	return PackInto(make([]uint64, Words(len(s))), s)
}

// PackInto encodes s into buf (reusing its backing array when large
// enough, so arena callers pack with zero allocations) and returns the
// Packed view. buf may be nil.
func PackInto(buf []uint64, s genome.Seq) Packed {
	nw := Words(len(s))
	if cap(buf) < nw {
		buf = make([]uint64, nw)
	}
	buf = buf[:nw]
	for w := 0; w < nw; w++ {
		var v uint64
		base := w * BasesPerWord
		end := base + BasesPerWord
		if end > len(s) {
			end = len(s)
		}
		for i := end - 1; i >= base; i-- {
			v = v<<2 | uint64(s[i]&3)
		}
		buf[w] = v
	}
	return Packed{words: buf, n: len(s)}
}

// FromWords wraps pre-packed words as a Packed of n bases, for callers
// that pack non-Seq byte streams themselves (e.g. fmindex's BWT, whose
// sentinel byte is masked to base A during packing). words must hold
// Words(n) entries; lanes at positions >= n are ignored by ranged
// operations but should be zero so Get beyond n never surprises.
func FromWords(words []uint64, n int) Packed {
	return Packed{words: words[:Words(n)], n: n}
}

// Len returns the number of bases.
func (p Packed) Len() int { return p.n }

// WordsSlice exposes the raw packed words (read-only by convention).
func (p Packed) WordsSlice() []uint64 { return p.words }

// Get returns base i.
func (p Packed) Get(i int) genome.Base {
	return genome.Base(p.words[i/BasesPerWord] >> (2 * (uint(i) % BasesPerWord)) & 3)
}

// Unpack decodes the sequence back into byte-per-base form.
func (p Packed) Unpack() genome.Seq {
	out := make(genome.Seq, p.n)
	for i := range out {
		out[i] = p.Get(i)
	}
	return out
}

// broadcast2 replicates a 2-bit base code into all 32 lanes.
func broadcast2(b genome.Base) uint64 {
	return uint64(b&3) * loBits // b * 0x5555... replicates b into every lane
}

// eqLanes returns a mask with the LOW bit of every 2-bit lane set where
// the lane of w equals the lane of pattern (0x5555-spaced match mask).
func eqLanes(w, pattern uint64) uint64 {
	x := w ^ pattern
	return ^(x | x>>1) & loBits
}

// MatchMask writes, for every base of p, whether it equals b, as a
// 0x5555-spaced bitmask: bit 2*(i%32) of dst[i/32] is set iff base i
// == b. dst must have len >= Words(p.Len()); trailing lanes beyond
// p.Len() are left as whatever the padding compares to and must not be
// read. Returns dst for chaining.
//
// This is the SWAR packed-word comparison bsw uses to turn its per-cell
// "q[i-1] != t[j-1]" byte compare into one precomputed bit test per
// cell: one call compares 32 target bases in ~6 word ops.
func MatchMask(dst []uint64, p Packed, b genome.Base) []uint64 {
	pat := broadcast2(b)
	_ = dst[len(p.words)-1]
	for w, v := range p.words {
		dst[w] = eqLanes(v, pat)
	}
	return dst
}

// MatchBit reports whether bit for base i is set in a 0x5555-spaced
// mask produced by MatchMask.
func MatchBit(mask []uint64, i int) bool {
	return mask[i/BasesPerWord]>>(2*(uint(i)%BasesPerWord))&1 != 0
}

// BitsWords returns the number of uint64 words a dense 1-bit-per-base
// mask of n bases occupies (64 bases per word).
func BitsWords(n int) int { return (n + 63) / 64 }

// compressPairs gathers the 32 even-position bits of a 0x5555-spaced
// mask into the low 32 bits, preserving order — the SWAR pair
// compress (one half of a Morton decode).
func compressPairs(x uint64) uint64 {
	x = (x | x>>1) & 0x3333333333333333
	x = (x | x>>2) & 0x0f0f0f0f0f0f0f0f
	x = (x | x>>4) & 0x00ff00ff00ff00ff
	x = (x | x>>8) & 0x0000ffff0000ffff
	x = (x | x>>16) & 0x00000000ffffffff
	return x
}

// MatchMaskBits writes, for every base of p, whether it equals b, as
// a DENSE bitmask: bit i%64 of dst[i/64] is set iff base i == b, and
// bits at positions >= p.Len() are zero. dst must have len >=
// BitsWords(p.Len()). Returns dst for chaining.
//
// This is the SWAR byte-compare mask the poa lane kernel consumes:
// each packed word pair compresses to one 64-base word, so an 8-column
// DP group reads its match octet with one shift — no per-cell base
// compare, no branch. Built from the same eqLanes compare MatchMask
// uses, plus a pair compress.
func MatchMaskBits(dst []uint64, p Packed, b genome.Base) []uint64 {
	if p.n == 0 {
		return dst
	}
	pat := broadcast2(b)
	nw := BitsWords(p.n)
	_ = dst[nw-1]
	for w := 0; w < nw; w++ {
		lo := compressPairs(eqLanes(p.words[2*w], pat))
		var hi uint64
		if 2*w+1 < len(p.words) {
			hi = compressPairs(eqLanes(p.words[2*w+1], pat))
		}
		dst[w] = lo | hi<<32
	}
	// Zero the padding lanes of the last word (the 2-bit padding packs
	// as base A, which would otherwise leak spurious A-matches).
	if tail := p.n % 64; tail != 0 {
		dst[nw-1] &= 1<<uint(tail) - 1
	}
	return dst
}

// CountRange counts positions i in [lo,hi) with base i == b, using one
// popcount per 32 bases. It is the packed equivalent of a byte scan
// `for i := lo; i < hi; i++ { if s[i] == b { n++ } }`.
func (p Packed) CountRange(b genome.Base, lo, hi int) int {
	if lo < 0 {
		lo = 0
	}
	if hi > p.n {
		hi = p.n
	}
	if lo >= hi {
		return 0
	}
	pat := broadcast2(b)
	wLo, wHi := lo/BasesPerWord, (hi-1)/BasesPerWord
	n := 0
	for w := wLo; w <= wHi; w++ {
		m := eqLanes(p.words[w], pat)
		// Trim lanes outside [lo,hi) in the boundary words.
		if w == wLo && lo%BasesPerWord != 0 {
			m &^= 1<<(2*uint(lo%BasesPerWord)) - 1
		}
		if w == wHi && hi%BasesPerWord != 0 {
			m &= 1<<(2*uint(hi%BasesPerWord)) - 1
		}
		n += bits.OnesCount64(m)
	}
	return n
}

// Count4Range counts all four bases over [lo,hi) in a single sweep:
// the packed form of the Occ-table block scan, four popcounts per 32
// bases instead of a load+compare+increment per base.
func (p Packed) Count4Range(lo, hi int) [4]int {
	var out [4]int
	if lo < 0 {
		lo = 0
	}
	if hi > p.n {
		hi = p.n
	}
	if lo >= hi {
		return out
	}
	wLo, wHi := lo/BasesPerWord, (hi-1)/BasesPerWord
	for w := wLo; w <= wHi; w++ {
		v := p.words[w]
		// valid marks lanes inside [lo,hi) within this word.
		valid := uint64(loBits)
		if w == wLo && lo%BasesPerWord != 0 {
			valid &^= 1<<(2*uint(lo%BasesPerWord)) - 1
		}
		if w == wHi && hi%BasesPerWord != 0 {
			valid &= 1<<(2*uint(hi%BasesPerWord)) - 1
		}
		loHalf := v & loBits        // low bit of each lane
		hiHalf := (v >> 1) & loBits // high bit of each lane
		// Lane (hi,lo): A=00 C=01 G=10 T=11.
		out[0] += bits.OnesCount64(^hiHalf & ^loHalf & valid)
		out[1] += bits.OnesCount64(^hiHalf & loHalf & valid)
		out[2] += bits.OnesCount64(hiHalf & ^loHalf & valid)
		out[3] += bits.OnesCount64(hiHalf & loHalf & valid)
	}
	return out
}

// RevCompCode returns the reverse complement of a 2-bit packed k-mer
// code (first base in the most significant 2-bit group, as produced by
// genome.KmerCode) in O(1) word ops instead of the O(k) shift loop:
// complement all lanes, byte-reverse, swap 2-bit groups within bytes,
// then right-align. k must be in [1,31].
func RevCompCode(code uint64, k int) uint64 {
	x := ^code // complement: 3-b == ^b & 3 per lane
	x = bits.ReverseBytes64(x)
	x = (x&0x0f0f0f0f0f0f0f0f)<<4 | (x>>4)&0x0f0f0f0f0f0f0f0f
	x = (x&0x3333333333333333)<<2 | (x>>2)&0x3333333333333333
	return x >> (64 - 2*uint(k))
}

// Canonical returns the lexicographically smaller of a k-mer code and
// its reverse complement — the packed, O(1) form of the canonical
// counting key.
func Canonical(code uint64, k int) uint64 {
	if rc := RevCompCode(code, k); rc < code {
		return rc
	}
	return code
}
