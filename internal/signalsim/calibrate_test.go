package signalsim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/genome"
)

func TestCalibrateRecoversDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	model := NewPoreModel()
	seq := genome.Random(rng, 2000)
	clean := Simulate(rng, model, seq, Config{OversegmentationRate: 0.3, SkipRate: 0.05, NoiseScale: 0.5, MeanDwell: 5})
	truth := Drift{Scale: 1.07, Shift: -5.5}
	drifted := truth.Apply(append([]Event(nil), clean...))
	est := Calibrate(model, drifted)
	if math.Abs(float64(est.Scale-truth.Scale)) > 0.03 {
		t.Errorf("scale %v, want ~%v", est.Scale, truth.Scale)
	}
	if math.Abs(float64(est.Shift-truth.Shift)) > 3 {
		t.Errorf("shift %v, want ~%v", est.Shift, truth.Shift)
	}
}

func TestCalibrateEventsRestoreAlignment(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	model := NewPoreModel()
	seq := genome.Random(rng, 500)
	clean := Simulate(rng, model, seq, Config{OversegmentationRate: 0.3, SkipRate: 0.05, NoiseScale: 0.6, MeanDwell: 5})
	drift := RandomDrift(rng)
	drifted := drift.Apply(append([]Event(nil), clean...))
	restored := CalibrateEvents(model, drifted)
	// Restored event means should sit close to the clean ones.
	var worst float64
	for i := range clean {
		d := math.Abs(float64(restored[i].Mean - clean[i].Mean))
		if d > worst {
			worst = d
		}
	}
	if worst > 6 {
		t.Errorf("worst restored deviation %.1f pA", worst)
	}
}

func TestDriftInvertRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		d := RandomDrift(rng)
		inv := d.Invert()
		x := float32(60 + rng.Float64()*70)
		y := inv.Scale*(d.Scale*x+d.Shift) + inv.Shift
		if math.Abs(float64(y-x)) > 1e-3 {
			t.Fatalf("invert round trip %v -> %v", x, y)
		}
	}
}

func TestCalibrateDegenerate(t *testing.T) {
	model := NewPoreModel()
	if d := Calibrate(model, nil); d != Identity {
		t.Error("empty events should calibrate to identity")
	}
	flat := []Event{{Mean: 80}, {Mean: 80}}
	if d := Calibrate(model, flat); d != Identity {
		t.Error("zero-variance events should calibrate to identity")
	}
}
