// Package signalsim simulates Oxford-Nanopore raw signal, substituting
// for the FAST5 reads from the Nanopore WGS Consortium dataset that the
// abea kernel consumes in the paper. A deterministic 6-mer pore model
// maps sequence context to an expected current level; event simulation
// adds Gaussian noise, dwell-time variation and the ~2x k-mer
// over-segmentation that motivates ABEA's adaptive band.
package signalsim

import (
	"math"
	"math/rand"

	"repro/internal/genome"
)

// K is the pore-model context length: the current level depends on the
// K bases occupying the pore, matching Nanopolish's 6-mer model.
const K = 6

// PoreModel maps each of the 4^K k-mers to a Gaussian current level.
type PoreModel struct {
	Mean []float32 // expected current (pA) per k-mer code
	Stdv []float32 // per-k-mer noise level
}

// NewPoreModel builds a deterministic synthetic pore model. Levels are
// spread over the realistic 60-130 pA range; a k-mer's level is a fixed
// hash of its code so the model is reproducible without data files and
// distinct k-mers are well-separated on average.
func NewPoreModel() *PoreModel {
	n := 1 << (2 * K)
	m := &PoreModel{
		Mean: make([]float32, n),
		Stdv: make([]float32, n),
	}
	for code := 0; code < n; code++ {
		h := splitmix64(uint64(code))
		frac := float64(h>>11) / float64(1<<53)
		m.Mean[code] = float32(60 + 70*frac)
		h2 := splitmix64(h)
		frac2 := float64(h2>>11) / float64(1<<53)
		m.Stdv[code] = float32(1.0 + 2.0*frac2)
	}
	return m
}

// splitmix64 is the SplitMix64 mixing function.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Level returns the model mean and standard deviation for the k-mer of s
// starting at i.
func (m *PoreModel) Level(s genome.Seq, i int) (mean, stdv float32) {
	code := genome.KmerCode(s, i, K)
	return m.Mean[code], m.Stdv[code]
}

// NumKmers reports the number of modelled k-mers.
func (m *PoreModel) NumKmers() int { return len(m.Mean) }

// Event is one segmented signal event: the mean current observed while a
// k-mer context occupied the pore.
type Event struct {
	Mean   float32 // observed mean current (pA)
	Stdv   float32 // observed within-event noise
	Length int     // number of raw samples in the event
}

// Config parameterizes event simulation.
type Config struct {
	// OversegmentationRate is the probability that a k-mer emits a second
	// (split) event; the paper notes k-mers are over-represented up to 2x.
	OversegmentationRate float64
	// SkipRate is the probability a k-mer emits no event (fast
	// translocation missed by the segmenter).
	SkipRate float64
	// NoiseScale multiplies the model stdv when drawing event means.
	NoiseScale float64
	// MeanDwell is the mean raw-sample count per event.
	MeanDwell float64
}

// DefaultConfig mirrors typical R9.4 behaviour.
func DefaultConfig() Config {
	return Config{
		OversegmentationRate: 0.4,
		SkipRate:             0.05,
		NoiseScale:           1.0,
		MeanDwell:            10,
	}
}

// Simulate generates the event sequence produced by reading seq through
// the pore. The returned events correspond to successive k-mers of seq
// with skips and splits applied.
func Simulate(rng *rand.Rand, model *PoreModel, seq genome.Seq, cfg Config) []Event {
	if len(seq) < K {
		return nil
	}
	nk := len(seq) - K + 1
	events := make([]Event, 0, nk+nk/2)
	for i := 0; i < nk; i++ {
		if rng.Float64() < cfg.SkipRate {
			continue
		}
		mean, stdv := model.Level(seq, i)
		emit := 1
		if rng.Float64() < cfg.OversegmentationRate {
			emit = 2
		}
		for e := 0; e < emit; e++ {
			observed := float64(mean) + rng.NormFloat64()*float64(stdv)*cfg.NoiseScale
			dwell := 1 + int(rng.ExpFloat64()*cfg.MeanDwell)
			events = append(events, Event{
				Mean:   float32(observed),
				Stdv:   float32(math.Abs(rng.NormFloat64()*0.3) + 0.5),
				Length: dwell,
			})
		}
	}
	return events
}

// SignalRead couples a sequence with its simulated events, the unit of
// work for the abea kernel.
type SignalRead struct {
	Name   string
	Seq    genome.Seq // basecalled/reference sequence to align events to
	Events []Event
}

// SimulateReads draws n signal reads from random positions of src. Read
// lengths are uniform in [minLen, maxLen].
func SimulateReads(rng *rand.Rand, model *PoreModel, src genome.Seq, n, minLen, maxLen int, cfg Config) []SignalRead {
	if maxLen > len(src) {
		maxLen = len(src)
	}
	if minLen > maxLen {
		minLen = maxLen
	}
	reads := make([]SignalRead, 0, n)
	for i := 0; i < n; i++ {
		length := minLen
		if maxLen > minLen {
			length += rng.Intn(maxLen - minLen + 1)
		}
		if length < K {
			continue
		}
		pos := rng.Intn(len(src) - length + 1)
		sub := src[pos : pos+length]
		reads = append(reads, SignalRead{
			Name:   "signal-" + itoa(i),
			Seq:    sub,
			Events: Simulate(rng, model, sub, cfg),
		})
	}
	return reads
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}

// RawSignal renders the per-sample current trace for seq: every event
// contributes Length samples drawn around its mean — the input format
// of the nn-base basecalling kernel (Bonito consumes raw samples, not
// segmented events).
func RawSignal(rng *rand.Rand, model *PoreModel, seq genome.Seq, cfg Config) []float32 {
	events := Simulate(rng, model, seq, cfg)
	var out []float32
	for _, ev := range events {
		for s := 0; s < ev.Length; s++ {
			out = append(out, ev.Mean+float32(rng.NormFloat64())*ev.Stdv)
		}
	}
	return out
}

// LogProbMatch returns the log-probability of observing eventMean given
// the model distribution of the k-mer at seq[i..i+K). This is the
// scoring function ABEA evaluates per DP cell (32-bit float
// log-likelihood per the paper).
func (m *PoreModel) LogProbMatch(eventMean float32, seq genome.Seq, i int) float32 {
	code := genome.KmerCode(seq, i, K)
	mu := m.Mean[code]
	sd := m.Stdv[code]
	z := (eventMean - mu) / sd
	// log N(x; mu, sd) = -0.5 z^2 - log(sd) - 0.5 log(2 pi)
	const logSqrt2Pi = 0.9189385332046727
	return -0.5*z*z - float32(math.Log(float64(sd))) - logSqrt2Pi
}
