package signalsim

import (
	"math"
	"math/rand"
)

// Per-read calibration: every pore drifts, so raw currents relate to
// the model by an affine transform (scale, shift) that differs per
// read. Nanopolish estimates these scalings before event alignment;
// without them the log-likelihoods are meaningless. This file adds
// drift to the simulator and the method-of-moments estimator that
// recovers it.

// Drift is one read's affine distortion: observed = scale*ideal + shift.
type Drift struct {
	Scale float32
	Shift float32
}

// Identity is the no-drift transform.
var Identity = Drift{Scale: 1, Shift: 0}

// RandomDrift draws a realistic pore drift: scale within ±10%, shift
// within ±8 pA.
func RandomDrift(rng *rand.Rand) Drift {
	return Drift{
		Scale: float32(0.9 + 0.2*rng.Float64()),
		Shift: float32((rng.Float64() - 0.5) * 16),
	}
}

// Apply distorts events in place and returns them.
func (d Drift) Apply(events []Event) []Event {
	for i := range events {
		events[i].Mean = d.Scale*events[i].Mean + d.Shift
	}
	return events
}

// Invert returns the transform mapping observed currents back to model
// space.
func (d Drift) Invert() Drift {
	return Drift{Scale: 1 / d.Scale, Shift: -d.Shift / d.Scale}
}

// Calibrate estimates the drift of a read against a pore model by the
// method of moments: the observed event mean/stdev must match the
// model's marginal mean/stdev over the k-mers actually visited.
// Nanopolish does the same before its first alignment pass (then
// refines with an EM step; the first pass is what matters here).
func Calibrate(model *PoreModel, events []Event) Drift {
	if len(events) == 0 {
		return Identity
	}
	var obsMean, obsVar float64
	for _, e := range events {
		obsMean += float64(e.Mean)
	}
	obsMean /= float64(len(events))
	for _, e := range events {
		d := float64(e.Mean) - obsMean
		obsVar += d * d
	}
	obsVar /= float64(len(events))

	// Model marginals over all k-mers (the read visits a large random
	// sample of them, so the global marginal is the right reference).
	var mMean, mVar float64
	n := float64(model.NumKmers())
	for _, v := range model.Mean {
		mMean += float64(v)
	}
	mMean /= n
	for _, v := range model.Mean {
		d := float64(v) - mMean
		mVar += d * d
	}
	mVar /= n

	if mVar <= 0 || obsVar <= 0 {
		return Identity
	}
	scale := math.Sqrt(obsVar / mVar)
	shift := obsMean - scale*mMean
	return Drift{Scale: float32(scale), Shift: float32(shift)}
}

// CalibrateEvents normalizes events into model space using the
// estimated drift, returning corrected copies.
func CalibrateEvents(model *PoreModel, events []Event) []Event {
	d := Calibrate(model, events)
	inv := d.Invert()
	out := make([]Event, len(events))
	copy(out, events)
	return inv.Apply(out)
}
