package signalsim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/genome"
)

func TestPoreModelDeterministicAndInRange(t *testing.T) {
	a := NewPoreModel()
	b := NewPoreModel()
	if a.NumKmers() != 1<<(2*K) {
		t.Fatalf("NumKmers = %d", a.NumKmers())
	}
	for code := 0; code < a.NumKmers(); code += 97 {
		if a.Mean[code] != b.Mean[code] {
			t.Fatal("pore model not deterministic")
		}
		if a.Mean[code] < 60 || a.Mean[code] > 130 {
			t.Fatalf("k-mer %d level %f out of range", code, a.Mean[code])
		}
		if a.Stdv[code] < 1 || a.Stdv[code] > 3 {
			t.Fatalf("k-mer %d stdv %f out of range", code, a.Stdv[code])
		}
	}
}

func TestPoreModelLevelsDistinct(t *testing.T) {
	m := NewPoreModel()
	// Adjacent k-mer codes should usually have very different levels
	// (hash-spread), unlike a linear mapping.
	same := 0
	for code := 0; code+1 < 1000; code++ {
		if math.Abs(float64(m.Mean[code]-m.Mean[code+1])) < 1 {
			same++
		}
	}
	if same > 100 {
		t.Errorf("%d/1000 adjacent k-mers nearly identical", same)
	}
}

func TestSimulateEventCount(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	model := NewPoreModel()
	seq := genome.Random(rng, 2000)
	cfg := DefaultConfig()
	events := Simulate(rng, model, seq, cfg)
	nk := len(seq) - K + 1
	// Expected events per k-mer = (1-skip) * (1+overseg).
	expected := float64(nk) * (1 - cfg.SkipRate) * (1 + cfg.OversegmentationRate)
	if float64(len(events)) < expected*0.8 || float64(len(events)) > expected*1.2 {
		t.Errorf("got %d events, expected ~%.0f", len(events), expected)
	}
}

func TestSimulateNoNoiseTracksModel(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	model := NewPoreModel()
	seq := genome.Random(rng, 300)
	cfg := Config{OversegmentationRate: 0, SkipRate: 0, NoiseScale: 0, MeanDwell: 5}
	events := Simulate(rng, model, seq, cfg)
	nk := len(seq) - K + 1
	if len(events) != nk {
		t.Fatalf("got %d events, want %d", len(events), nk)
	}
	for i, ev := range events {
		mean, _ := model.Level(seq, i)
		if math.Abs(float64(ev.Mean-mean)) > 1e-4 {
			t.Fatalf("event %d mean %f, model %f", i, ev.Mean, mean)
		}
	}
}

func TestSimulateShortSeq(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if ev := Simulate(rng, NewPoreModel(), genome.MustFromString("ACGT"), DefaultConfig()); ev != nil {
		t.Error("expected nil events for sequence shorter than K")
	}
}

func TestSimulateReads(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	model := NewPoreModel()
	src := genome.Random(rng, 50000)
	reads := SimulateReads(rng, model, src, 10, 500, 1500, DefaultConfig())
	if len(reads) != 10 {
		t.Fatalf("got %d reads", len(reads))
	}
	for _, r := range reads {
		if len(r.Seq) < 500 || len(r.Seq) > 1500 {
			t.Errorf("read %s length %d outside [500,1500]", r.Name, len(r.Seq))
		}
		if len(r.Events) == 0 {
			t.Errorf("read %s has no events", r.Name)
		}
	}
}

func TestLogProbMatchPeaksAtModelMean(t *testing.T) {
	model := NewPoreModel()
	seq := genome.MustFromString("ACGTACGTAC")
	mean, _ := model.Level(seq, 0)
	atMean := model.LogProbMatch(mean, seq, 0)
	offMean := model.LogProbMatch(mean+20, seq, 0)
	if atMean <= offMean {
		t.Errorf("log-prob at mean %f not greater than off mean %f", atMean, offMean)
	}
	if atMean > 0 {
		t.Errorf("log density unexpectedly positive: %f", atMean)
	}
}

func TestEventDwellPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	events := Simulate(rng, NewPoreModel(), genome.Random(rng, 500), DefaultConfig())
	for _, ev := range events {
		if ev.Length < 1 {
			t.Fatalf("event dwell %d < 1", ev.Length)
		}
		if ev.Stdv <= 0 {
			t.Fatalf("event stdv %f <= 0", ev.Stdv)
		}
	}
}
