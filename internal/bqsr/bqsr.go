// Package bqsr implements base-quality score recalibration, the GATK
// Best Practices step between duplicate marking and variant calling in
// the paper's reference-guided pipeline: reported base qualities are
// systematically biased per instrument cycle and quality bin, and the
// PairHMM (phmm kernel) is only as good as the qualities it weighs.
// Recalibration tabulates empirical mismatch rates against the
// reference at positions believed invariant and rewrites each base's
// quality to the evidence-corrected value.
package bqsr

import (
	"math"

	"repro/internal/genome"
	"repro/internal/simio"
)

// maxQual bounds the recalibrated Phred scale.
const maxQual = 60

// binCount groups reported qualities into bins (GATK uses per-value
// tables; binning keeps small datasets statistically sound).
const binCount = 16

// cycleBins groups read positions (machine cycles).
const cycleBins = 8

// Table is the recalibration model: observed mismatch counts per
// (reported-quality bin, cycle bin).
type Table struct {
	mismatches [binCount][cycleBins]uint64
	bases      [binCount][cycleBins]uint64
	readLen    int
}

// qualBin maps a Phred value to its bin.
func qualBin(q byte) int {
	b := int(q) * binCount / (maxQual + 1)
	if b >= binCount {
		b = binCount - 1
	}
	return b
}

// cycleBin maps a read position to its bin.
func (t *Table) cycleBin(pos, readLen int) int {
	if readLen <= 0 {
		return 0
	}
	b := pos * cycleBins / readLen
	if b >= cycleBins {
		b = cycleBins - 1
	}
	return b
}

// Train tabulates mismatches of aligned reads against the reference.
// Positions in skip (known variant sites) are excluded, exactly as
// GATK excludes dbSNP sites.
func Train(ref genome.Seq, alignments []*simio.Alignment, skip map[int]bool) *Table {
	t := &Table{}
	for _, a := range alignments {
		if len(a.Qual) != len(a.Seq) {
			continue
		}
		refPos := a.Pos
		readPos := 0
		for _, e := range a.Cigar {
			switch e.Op {
			case simio.CigarMatch:
				for i := 0; i < e.Len; i++ {
					if refPos < len(ref) && !skip[refPos] {
						qb := qualBin(a.Qual[readPos])
						cb := t.cycleBin(readPos, len(a.Seq))
						t.bases[qb][cb]++
						if a.Seq[readPos] != ref[refPos] {
							t.mismatches[qb][cb]++
						}
					}
					refPos++
					readPos++
				}
			case simio.CigarIns, simio.CigarSoftClip:
				readPos += e.Len
			case simio.CigarDel:
				refPos += e.Len
			}
		}
	}
	return t
}

// Empirical returns the evidence-based Phred quality for a bin, with
// a +1/+2 pseudocount prior so unobserved bins stay near the reported
// value's scale.
func (t *Table) Empirical(q byte, pos, readLen int) byte {
	qb := qualBin(q)
	cb := t.cycleBin(pos, readLen)
	mism := float64(t.mismatches[qb][cb]) + 1
	total := float64(t.bases[qb][cb]) + 2
	p := mism / total
	phred := -10 * math.Log10(p)
	if phred < 2 {
		phred = 2
	}
	if phred > maxQual {
		phred = maxQual
	}
	return byte(phred)
}

// Recalibrate rewrites the qualities of alignments in place using the
// trained table and returns how many bases changed.
func (t *Table) Recalibrate(alignments []*simio.Alignment) int {
	changed := 0
	for _, a := range alignments {
		for i, q := range a.Qual {
			nq := t.Empirical(q, i, len(a.Seq))
			if nq != q {
				a.Qual[i] = nq
				changed++
			}
		}
	}
	return changed
}

// MeanShift reports the average signed quality adjustment the table
// would apply to a uniform-quality read — a summary of the detected
// bias.
func (t *Table) MeanShift(reported byte, readLen int) float64 {
	var sum float64
	n := 0
	for pos := 0; pos < readLen; pos++ {
		sum += float64(t.Empirical(reported, pos, readLen)) - float64(reported)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
