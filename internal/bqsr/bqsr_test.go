package bqsr

import (
	"math/rand"
	"testing"

	"repro/internal/genome"
	"repro/internal/simio"
)

// biasedAlignments simulates reads whose TRUE error rate corresponds
// to Phred trueQ while every base REPORTS reportedQ.
func biasedAlignments(rng *rand.Rand, ref genome.Seq, n, readLen int, trueErr float64, reportedQ byte) []*simio.Alignment {
	var out []*simio.Alignment
	for i := 0; i < n; i++ {
		pos := rng.Intn(len(ref) - readLen)
		seq := ref[pos : pos+readLen].Clone()
		for j := range seq {
			if rng.Float64() < trueErr {
				seq[j] = genome.Base(rng.Intn(4))
			}
		}
		qual := make([]byte, readLen)
		for j := range qual {
			qual[j] = reportedQ
		}
		cig, _ := simio.ParseCigar("100M")
		out = append(out, &simio.Alignment{
			ReadName: "r", RefName: "chr", Pos: pos,
			Cigar: cig, Seq: seq, Qual: qual,
		})
	}
	return out
}

func TestTrainDetectsOverconfidentQualities(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ref := genome.Random(rng, 20_000)
	// Machine reports Q40 (1e-4) but the true error rate is 1% (Q20).
	alns := biasedAlignments(rng, ref, 300, 100, 0.0133, 40)
	table := Train(ref, alns, nil)
	emp := table.Empirical(40, 50, 100)
	if emp > 25 || emp < 15 {
		t.Errorf("empirical quality %d, want ~20 for a 1%% error stream", emp)
	}
	if shift := table.MeanShift(40, 100); shift > -10 {
		t.Errorf("mean shift %.1f, want strongly negative", shift)
	}
}

func TestTrainAcceptsAccurateQualities(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ref := genome.Random(rng, 20_000)
	// Reported Q20 matches the true 1.33% (1% substitutions observed as
	// mismatches 3/4 of the time).
	alns := biasedAlignments(rng, ref, 300, 100, 0.0133, 20)
	table := Train(ref, alns, nil)
	emp := table.Empirical(20, 50, 100)
	if emp < 16 || emp > 24 {
		t.Errorf("empirical quality %d, want ~20", emp)
	}
}

func TestSkipSitesExcluded(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ref := genome.Random(rng, 5_000)
	// All reads carry a variant at ref position 2500 (not an error).
	alt := ref.Clone()
	alt[2500] = genome.Complement(alt[2500])
	var alns []*simio.Alignment
	cig, _ := simio.ParseCigar("100M")
	for i := 0; i < 100; i++ {
		pos := 2450
		seq := alt[pos : pos+100].Clone()
		qual := make([]byte, 100)
		for j := range qual {
			qual[j] = 40
		}
		alns = append(alns, &simio.Alignment{ReadName: "r", Pos: pos, Cigar: cig, Seq: seq, Qual: qual})
	}
	noSkip := Train(ref, alns, nil)
	withSkip := Train(ref, alns, map[int]bool{2500: true})
	if noSkip.Empirical(40, 50, 100) >= withSkip.Empirical(40, 50, 100) {
		t.Error("excluding the variant site should raise empirical quality")
	}
	if q := withSkip.Empirical(40, 50, 100); q < 30 {
		t.Errorf("error-free stream recalibrated to %d", q)
	}
}

func TestRecalibrateRewritesInPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ref := genome.Random(rng, 20_000)
	alns := biasedAlignments(rng, ref, 200, 100, 0.0133, 40)
	table := Train(ref, alns, nil)
	changed := table.Recalibrate(alns)
	if changed == 0 {
		t.Fatal("no bases recalibrated despite strong bias")
	}
	for _, q := range alns[0].Qual {
		if q > 30 {
			t.Fatalf("quality %d left overconfident", q)
		}
	}
}

func TestCycleBias(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ref := genome.Random(rng, 20_000)
	// Errors concentrated in the read's last quarter (late-cycle decay).
	var alns []*simio.Alignment
	cig, _ := simio.ParseCigar("100M")
	for i := 0; i < 300; i++ {
		pos := rng.Intn(len(ref) - 100)
		seq := ref[pos : pos+100].Clone()
		for j := 75; j < 100; j++ {
			if rng.Float64() < 0.05 {
				seq[j] = genome.Base(rng.Intn(4))
			}
		}
		qual := make([]byte, 100)
		for j := range qual {
			qual[j] = 35
		}
		alns = append(alns, &simio.Alignment{ReadName: "r", Pos: pos, Cigar: cig, Seq: seq, Qual: qual})
	}
	table := Train(ref, alns, nil)
	early := table.Empirical(35, 10, 100)
	late := table.Empirical(35, 90, 100)
	if late >= early {
		t.Errorf("late-cycle quality %d not below early %d", late, early)
	}
}
