package parallel

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestScalingBaselineIsOneThreadRegardlessOfOrder(t *testing.T) {
	// Regression: the baseline must be the Threads==1 measurement even
	// when it is not the first (or slowest) point in the sweep. The old
	// code anchored on threadCounts[0], so a [4,2,1] sweep reported
	// speedup < 1 for every point.
	counts := []int{4, 2, 1}
	elapsed := []time.Duration{25 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond}
	pts := scalingPoints(counts, elapsed)
	for i, want := range []float64{4, 2, 1} {
		if math.Abs(pts[i].Speedup-want) > 1e-9 {
			t.Errorf("point %d (threads=%d): speedup = %v, want %v", i, pts[i].Threads, pts[i].Speedup, want)
		}
	}
	if math.Abs(pts[0].Parallel-1.0) > 1e-9 {
		t.Errorf("4-thread efficiency = %v, want 1.0", pts[0].Parallel)
	}
	// Same sweep in ascending order must give identical speedups.
	asc := scalingPoints([]int{1, 2, 4},
		[]time.Duration{100 * time.Millisecond, 50 * time.Millisecond, 25 * time.Millisecond})
	for i, j := 0, 2; i < 3; i, j = i+1, j-1 {
		if math.Abs(pts[i].Speedup-asc[j].Speedup) > 1e-9 {
			t.Errorf("order-dependent speedup: desc[%d]=%v asc[%d]=%v", i, pts[i].Speedup, j, asc[j].Speedup)
		}
	}
}

func TestScalingBaselineFallbackSmallestCount(t *testing.T) {
	// No 1-thread point: the smallest positive count anchors the curve.
	pts := scalingPoints([]int{8, 2, 4},
		[]time.Duration{10 * time.Millisecond, 40 * time.Millisecond, 20 * time.Millisecond})
	if math.Abs(pts[1].Speedup-1.0) > 1e-9 {
		t.Errorf("2-thread point speedup = %v, want baseline 1.0", pts[1].Speedup)
	}
	if math.Abs(pts[0].Speedup-4.0) > 1e-9 {
		t.Errorf("8-thread speedup = %v, want 4", pts[0].Speedup)
	}
}

func TestScalingZeroThreadCountEfficiency(t *testing.T) {
	// Regression: tc==0 (meaning "use GOMAXPROCS") must not divide by
	// zero; efficiency uses the worker count such a run actually gets.
	pts := scalingPoints([]int{0, 1},
		[]time.Duration{10 * time.Millisecond, 40 * time.Millisecond})
	p := pts[0]
	if math.IsNaN(p.Parallel) || math.IsInf(p.Parallel, 0) {
		t.Fatalf("tc=0 efficiency = %v", p.Parallel)
	}
	wantDen := float64(runtime.GOMAXPROCS(0))
	if math.Abs(p.Parallel-p.Speedup/wantDen) > 1e-9 {
		t.Errorf("tc=0 efficiency = %v, want speedup/%v", p.Parallel, wantDen)
	}
	if pts[1].Speedup != 1.0 {
		t.Errorf("1-thread point speedup = %v; tc=0 must not steal the baseline", pts[1].Speedup)
	}
}

func TestScalingZeroElapsedGuard(t *testing.T) {
	pts := scalingPoints([]int{1, 2}, []time.Duration{time.Millisecond, 0})
	if math.IsInf(pts[1].Speedup, 0) || math.IsNaN(pts[1].Speedup) {
		t.Errorf("zero-elapsed speedup = %v, want finite", pts[1].Speedup)
	}
}

func TestMeasureScalingRepsRunsWorkRepsTimes(t *testing.T) {
	var calls atomic.Int64
	perThread := map[int]int{}
	pts := MeasureScalingReps([]int{2, 1}, 3, func(threads int) {
		calls.Add(1)
		perThread[threads]++
	})
	if calls.Load() != 6 {
		t.Errorf("work called %d times, want 2 counts × 3 reps", calls.Load())
	}
	if perThread[1] != 3 || perThread[2] != 3 {
		t.Errorf("per-thread calls = %v", perThread)
	}
	if len(pts) != 2 || pts[0].Threads != 2 || pts[1].Threads != 1 {
		t.Errorf("points = %+v", pts)
	}
	if math.Abs(pts[1].Speedup-1.0) > 1e-9 {
		t.Errorf("1-thread speedup = %v, want baseline 1.0 despite sweep order", pts[1].Speedup)
	}
}

func TestMedianDuration(t *testing.T) {
	cases := []struct {
		in   []time.Duration
		want time.Duration
	}{
		{nil, 0},
		{[]time.Duration{5}, 5},
		{[]time.Duration{9, 1, 5}, 5},
		{[]time.Duration{4, 1, 3, 2}, (2 + 3) / 2},
		{[]time.Duration{100, 1, 1}, 1}, // one slow outlier does not move the median
	}
	for _, tc := range cases {
		in := append([]time.Duration(nil), tc.in...)
		if got := medianDuration(tc.in); got != tc.want {
			t.Errorf("median(%v) = %v, want %v", tc.in, got, tc.want)
		}
		for i := range in {
			if in[i] != tc.in[i] {
				t.Errorf("medianDuration mutated its input: %v -> %v", in, tc.in)
				break
			}
		}
	}
}

func TestForEachCtxErrReturnsRecordedCanceledTaskError(t *testing.T) {
	// Regression: a task that legitimately returns context.Canceled
	// (e.g. a stale deadline bubbling out of nested work) must come
	// back to the caller as the cause, not be swallowed as "the run was
	// cancelled" with no attribution.
	taskErr := fmt.Errorf("nested stage: %w", context.Canceled)
	err := ForEachCtxErr(context.Background(), 8, 2, func(ctx context.Context, worker, task int) error {
		if task == 3 {
			return taskErr
		}
		return nil
	})
	if !errors.Is(err, taskErr) {
		t.Errorf("err = %v, want the recorded task error", err)
	}

	// Even a bare context.Canceled return is attributed.
	err = ForEachCtxErr(context.Background(), 4, 2, func(ctx context.Context, worker, task int) error {
		if task == 0 {
			return context.Canceled
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("bare canceled: err = %v", err)
	}
}

func TestForEachCtxErrParentCausePrecedence(t *testing.T) {
	// When the parent context is cancelled with a cause, that cause wins
	// over any task error racing with the shutdown.
	parentCause := errors.New("suite deadline")
	ctx, cancel := context.WithCancelCause(context.Background())
	started := make(chan struct{}, 1)
	done := make(chan error, 1)
	go func() {
		done <- ForEachCtxErr(ctx, 1000, 2, func(c context.Context, worker, task int) error {
			select {
			case started <- struct{}{}:
			default:
			}
			<-c.Done()
			return errors.New("task noticed shutdown")
		})
	}()
	<-started
	cancel(parentCause)
	if err := <-done; !errors.Is(err, parentCause) {
		t.Errorf("err = %v, want parent cause", err)
	}
}

func TestForEachCtxRecordsTaskMetrics(t *testing.T) {
	o := obs.NewObserver()
	ctx := obs.WithLabel(obs.With(context.Background(), o), "fmi")
	n := 64
	err := ForEachCtx(ctx, n, 4, func(worker, task int) {
		time.Sleep(100 * time.Microsecond)
	})
	if err != nil {
		t.Fatal(err)
	}
	h := o.Metrics.Histogram("parallel.task_latency_ns", "fmi", "ns")
	if got := h.Count(); got != uint64(n) {
		t.Errorf("task latency observations = %d, want %d", got, n)
	}
	if h.Min() < float64(50*time.Microsecond) {
		t.Errorf("min latency %v ns implausibly small", h.Min())
	}
	util := o.Metrics.Gauge("parallel.worker_utilization", "fmi").Value()
	if util <= 0 || util > 1.01 {
		t.Errorf("worker utilization = %v, want in (0, 1]", util)
	}
	if got := o.Metrics.Counter("parallel.tasks_completed", "fmi").Value(); got != uint64(n) {
		t.Errorf("tasks completed = %d, want %d", got, n)
	}
	if w := o.Metrics.Gauge("parallel.workers", "fmi").Value(); w != 4 {
		t.Errorf("workers gauge = %v", w)
	}
}

func TestForEachCtxNoObserverNoMetrics(t *testing.T) {
	// Without an observer the scheduler must not panic or allocate
	// metric state; plain runs stay plain.
	if err := ForEachCtx(context.Background(), 16, 2, func(worker, task int) {}); err != nil {
		t.Fatal(err)
	}
}
