// Package parallel provides the dynamic task scheduling used by every
// multi-threaded GenomicsBench kernel, mirroring the paper's use of
// OpenMP dynamic scheduling, plus the harness that measures thread
// scaling for Figure 7.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// ForEach runs fn(i) for every i in [0,n) on `threads` workers that pull
// task indices from a shared atomic counter — the moral equivalent of
// `#pragma omp parallel for schedule(dynamic)`. fn receives the worker
// id so kernels can keep per-worker counters without locking.
func ForEach(n, threads int, fn func(worker, task int)) {
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	if threads > n {
		threads = n
	}
	if n <= 0 {
		return
	}
	if threads <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(threads)
	for w := 0; w < threads; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
}

// ForEachChunked is ForEach with a chunk size greater than one, reducing
// scheduling overhead for very short tasks.
func ForEachChunked(n, threads, chunk int, fn func(worker, task int)) {
	if chunk <= 1 {
		ForEach(n, threads, fn)
		return
	}
	chunks := (n + chunk - 1) / chunk
	ForEach(chunks, threads, func(worker, c int) {
		lo := c * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			fn(worker, i)
		}
	})
}

// ScalingPoint is one measurement of a scaling sweep.
type ScalingPoint struct {
	Threads  int
	Elapsed  time.Duration
	Speedup  float64 // relative to the 1-thread point
	Parallel float64 // efficiency = Speedup/Threads
}

// MeasureScaling runs work(threads) for each requested thread count and
// reports the speedup curve. work must perform the same total job
// regardless of the thread count.
func MeasureScaling(threadCounts []int, work func(threads int)) []ScalingPoint {
	points := make([]ScalingPoint, 0, len(threadCounts))
	var base time.Duration
	for _, tc := range threadCounts {
		runtime.GC() // stabilize allocator state between measurements
		start := time.Now()
		work(tc)
		elapsed := time.Since(start)
		if len(points) == 0 {
			base = elapsed
		}
		p := ScalingPoint{Threads: tc, Elapsed: elapsed}
		if elapsed > 0 {
			p.Speedup = float64(base) / float64(elapsed)
		}
		if tc > 0 {
			p.Parallel = p.Speedup / float64(tc)
		}
		points = append(points, p)
	}
	return points
}
