// Package parallel provides the dynamic task scheduling used by every
// multi-threaded GenomicsBench kernel, mirroring the paper's use of
// OpenMP dynamic scheduling, plus the harness that measures thread
// scaling for Figure 7.
package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// PanicError is a worker panic recovered by ForEachCtx: the scheduler
// converts the panic into an error so one bad task cannot take down
// the whole process. The stack is captured at the panic site.
type PanicError struct {
	Task  int    // task index whose fn panicked
	Value any    // the recovered panic value
	Stack []byte // goroutine stack at the panic site
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: task %d panicked: %v", e.Task, e.Value)
}

// PanicValue returns the recovered panic value. Together with
// PanicStack it lets error-wrapping layers (internal/resilience)
// recognize scheduler-recovered panics without importing this package.
func (e *PanicError) PanicValue() any { return e.Value }

// PanicStack returns the stack captured at the panic site.
func (e *PanicError) PanicStack() []byte { return e.Stack }

// ForEach runs fn(i) for every i in [0,n) on `threads` workers that pull
// task indices from a shared atomic counter — the moral equivalent of
// `#pragma omp parallel for schedule(dynamic)`. fn receives the worker
// id so kernels can keep per-worker counters without locking.
//
// A panicking task re-panics here (in the caller's goroutine, wrapped
// in a *PanicError carrying the worker stack) instead of crashing the
// process from a worker goroutine. Cancellable callers should use
// ForEachCtx.
func ForEach(n, threads int, fn func(worker, task int)) {
	if err := ForEachCtx(context.Background(), n, threads, fn); err != nil {
		// With a background context the only possible failure is a
		// recovered worker panic; surface it to preserve the historical
		// panicking contract.
		panic(err)
	}
}

// ForEachCtx is ForEach with cooperative cancellation and panic
// isolation: dispatch stops once ctx is cancelled (tasks already
// running finish), and a panicking task stops dispatch and is returned
// as a *PanicError instead of crashing the process. The first panic
// wins; at most one error is returned. Returns ctx.Err() when the run
// was cancelled, nil when every task completed.
func ForEachCtx(ctx context.Context, n, threads int, fn func(worker, task int)) error {
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	if threads > n {
		threads = n
	}
	if n <= 0 {
		return nil
	}
	var stop atomic.Bool
	var once sync.Once
	var perr *PanicError
	runTask := func(worker, task int) {
		defer func() {
			if r := recover(); r != nil {
				// debug.Stack in a deferred recover still sees the
				// panicking frames, so the error carries the real site.
				stack := debug.Stack()
				once.Do(func() {
					perr = &PanicError{Task: task, Value: r, Stack: stack}
				})
				stop.Store(true)
			}
		}()
		fn(worker, task)
	}
	if threads <= 1 {
		for i := 0; i < n && !stop.Load(); i++ {
			if ctx.Err() != nil {
				break
			}
			runTask(0, i)
		}
	} else {
		var next int64
		var wg sync.WaitGroup
		wg.Add(threads)
		for w := 0; w < threads; w++ {
			go func(worker int) {
				defer wg.Done()
				// ctx.Err is checked before every dispatch so
				// cancellation stops new work deterministically; for the
				// Background context (the ForEach path) it is free.
				for !stop.Load() && ctx.Err() == nil {
					i := int(atomic.AddInt64(&next, 1)) - 1
					if i >= n {
						return
					}
					runTask(worker, i)
				}
			}(w)
		}
		wg.Wait()
	}
	if perr != nil {
		return perr
	}
	return ctx.Err()
}

// ForEachCtxErr is ForEachCtx for error-returning tasks: the first
// non-nil error a task returns cancels dispatch (in-flight tasks
// finish) and is returned. Tasks receive the derived context so nested
// blocking work (fault delays, IO) observes the cancellation too.
// Worker panics still surface as *PanicError, taking precedence over
// task errors; parent-context cancellation surfaces as the parent's
// cause (context.Canceled or context.DeadlineExceeded).
func ForEachCtxErr(ctx context.Context, n, threads int, fn func(ctx context.Context, worker, task int) error) error {
	cctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	err := ForEachCtx(cctx, n, threads, func(worker, task int) {
		if e := fn(cctx, worker, task); e != nil {
			cancel(e)
		}
	})
	if err == nil {
		return nil
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		return err
	}
	// ForEachCtx reports bare cctx.Err(); the cause distinguishes a
	// task error (recorded by cancel above) from parent cancellation.
	if cause := context.Cause(cctx); cause != nil {
		return cause
	}
	return err
}

// ForEachChunked is ForEach with a chunk size greater than one, reducing
// scheduling overhead for very short tasks.
func ForEachChunked(n, threads, chunk int, fn func(worker, task int)) {
	if chunk <= 1 {
		ForEach(n, threads, fn)
		return
	}
	chunks := (n + chunk - 1) / chunk
	ForEach(chunks, threads, func(worker, c int) {
		lo := c * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			fn(worker, i)
		}
	})
}

// ScalingPoint is one measurement of a scaling sweep.
type ScalingPoint struct {
	Threads  int
	Elapsed  time.Duration
	Speedup  float64 // relative to the 1-thread point
	Parallel float64 // efficiency = Speedup/Threads
}

// MeasureScaling runs work(threads) for each requested thread count and
// reports the speedup curve. work must perform the same total job
// regardless of the thread count.
func MeasureScaling(threadCounts []int, work func(threads int)) []ScalingPoint {
	points := make([]ScalingPoint, 0, len(threadCounts))
	var base time.Duration
	for _, tc := range threadCounts {
		runtime.GC() // stabilize allocator state between measurements
		start := time.Now()
		work(tc)
		elapsed := time.Since(start)
		if len(points) == 0 {
			base = elapsed
		}
		p := ScalingPoint{Threads: tc, Elapsed: elapsed}
		if elapsed > 0 {
			p.Speedup = float64(base) / float64(elapsed)
		}
		if tc > 0 {
			p.Parallel = p.Speedup / float64(tc)
		}
		points = append(points, p)
	}
	return points
}
