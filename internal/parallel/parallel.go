// Package parallel provides the dynamic task scheduling used by every
// multi-threaded GenomicsBench kernel, mirroring the paper's use of
// OpenMP dynamic scheduling, plus the harness that measures thread
// scaling for Figure 7.
//
// When an obs.Observer is installed in the context (the suite driver
// does this), the scheduler records a per-task latency histogram and a
// worker-utilization gauge per run, labeled with the kernel name from
// obs.Label. Without an observer the only cost is a context lookup.
package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/perf"
)

// PanicError is a worker panic recovered by ForEachCtx: the scheduler
// converts the panic into an error so one bad task cannot take down
// the whole process. The stack is captured at the panic site.
type PanicError struct {
	Task  int    // task index whose fn panicked
	Value any    // the recovered panic value
	Stack []byte // goroutine stack at the panic site
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: task %d panicked: %v", e.Task, e.Value)
}

// PanicValue returns the recovered panic value. Together with
// PanicStack it lets error-wrapping layers (internal/resilience)
// recognize scheduler-recovered panics without importing this package.
func (e *PanicError) PanicValue() any { return e.Value }

// PanicStack returns the stack captured at the panic site.
func (e *PanicError) PanicStack() []byte { return e.Stack }

// ForEach runs fn(i) for every i in [0,n) on `threads` workers that pull
// task indices from a shared atomic counter — the moral equivalent of
// `#pragma omp parallel for schedule(dynamic)`. fn receives the worker
// id so kernels can keep per-worker counters without locking.
//
// A panicking task re-panics here (in the caller's goroutine, wrapped
// in a *PanicError carrying the worker stack) instead of crashing the
// process from a worker goroutine. Cancellable callers should use
// ForEachCtx.
func ForEach(n, threads int, fn func(worker, task int)) {
	if err := ForEachCtx(context.Background(), n, threads, fn); err != nil {
		// With a background context the only possible failure is a
		// recovered worker panic; surface it to preserve the historical
		// panicking contract.
		panic(err)
	}
}

// workerClock accumulates one worker's busy time and completed-task
// count. The trailing pad keeps adjacent workers' clocks on separate
// cache lines (the accumulators are written from every task).
type workerClock struct {
	busyNs int64
	tasks  int64
	_      perf.CacheLinePad
}

// ForEachCtx is ForEach with cooperative cancellation and panic
// isolation: dispatch stops once ctx is cancelled (tasks already
// running finish), and a panicking task stops dispatch and is returned
// as a *PanicError instead of crashing the process. The first panic
// wins; at most one error is returned. Returns ctx.Err() when the run
// was cancelled, nil when every task completed.
func ForEachCtx(ctx context.Context, n, threads int, fn func(worker, task int)) error {
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	if threads > n {
		threads = n
	}
	if n <= 0 {
		return nil
	}

	// Observability: per-task latency histogram plus per-run worker
	// utilization, labeled by the kernel installed via obs.WithLabel.
	// All handles are nil (no-op) when no observer is installed.
	var (
		taskHist *obs.Histogram
		clocks   []workerClock
		t0       time.Time
	)
	o := obs.From(ctx)
	label := ""
	if o != nil {
		label = obs.Label(ctx)
		taskHist = o.Histogram("parallel.task_latency_ns", label, "ns")
		clocks = make([]workerClock, threads)
		t0 = time.Now()
	}

	var stop atomic.Bool
	var once sync.Once
	var perr *PanicError
	runTask := func(worker, task int) {
		defer func() {
			if r := recover(); r != nil {
				// debug.Stack in a deferred recover still sees the
				// panicking frames, so the error carries the real site.
				stack := debug.Stack()
				once.Do(func() {
					perr = &PanicError{Task: task, Value: r, Stack: stack}
				})
				stop.Store(true)
			}
		}()
		if taskHist == nil {
			fn(worker, task)
			return
		}
		start := time.Now()
		fn(worker, task)
		d := time.Since(start)
		taskHist.Observe(float64(d.Nanoseconds()))
		clocks[worker].busyNs += d.Nanoseconds()
		clocks[worker].tasks++
	}
	if threads <= 1 {
		for i := 0; i < n && !stop.Load(); i++ {
			if ctx.Err() != nil {
				break
			}
			runTask(0, i)
		}
	} else {
		var next int64
		var wg sync.WaitGroup
		wg.Add(threads)
		for w := 0; w < threads; w++ {
			go func(worker int) {
				defer wg.Done()
				// ctx.Err is checked before every dispatch so
				// cancellation stops new work deterministically; for the
				// Background context (the ForEach path) it is free.
				for !stop.Load() && ctx.Err() == nil {
					i := int(atomic.AddInt64(&next, 1)) - 1
					if i >= n {
						return
					}
					runTask(worker, i)
				}
			}(w)
		}
		wg.Wait()
	}

	if o != nil {
		wall := time.Since(t0)
		var busy, done int64
		for i := range clocks {
			busy += clocks[i].busyNs
			done += clocks[i].tasks
		}
		if wall > 0 {
			util := float64(busy) / (float64(wall.Nanoseconds()) * float64(threads))
			o.Gauge("parallel.worker_utilization", label).Set(util)
		}
		o.Gauge("parallel.workers", label).Set(float64(threads))
		o.Counter("parallel.tasks_completed", label).Add(uint64(done))
	}

	if perr != nil {
		return perr
	}
	return ctx.Err()
}

// ForEachCtxErr is ForEachCtx for error-returning tasks: the first
// non-nil error a task returns cancels dispatch (in-flight tasks
// finish) and is returned — even when that error is context.Canceled
// itself, the recorded task error is what comes back, so callers can
// always attribute the failure. Tasks receive the derived context so
// nested blocking work (fault delays, IO) observes the cancellation
// too. Worker panics still surface as *PanicError, taking precedence
// over task errors; parent-context cancellation takes precedence over
// everything except panics and surfaces as the parent's cause
// (context.Canceled or context.DeadlineExceeded).
func ForEachCtxErr(ctx context.Context, n, threads int, fn func(ctx context.Context, worker, task int) error) error {
	return errDispatch(ctx, n, threads, fn, ForEachCtx)
}

// errDispatch adapts any plain scheduler (ForEachCtx-shaped run
// function) to the error-returning task contract; ForEachCtxErr and
// ForEachStealingErr share it so the subtle error/panic/cancellation
// precedence lives in exactly one place.
func errDispatch(ctx context.Context, n, threads int, fn func(ctx context.Context, worker, task int) error,
	run func(ctx context.Context, n, threads int, fn func(worker, task int)) error) error {
	cctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	// The first task error is recorded here, not recovered from
	// context.Cause: a task may legitimately return context.Canceled
	// (e.g. a stale deadline bubbled out of nested work), and the
	// cause slot cannot distinguish that from a plain cancellation.
	var errOnce sync.Once
	var taskErr error
	err := run(cctx, n, threads, func(worker, task int) {
		if e := fn(cctx, worker, task); e != nil {
			errOnce.Do(func() { taskErr = e })
			cancel(e)
		}
	})
	if err == nil {
		return nil
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		return err
	}
	if ctx.Err() != nil {
		// The parent was cancelled: its cause wins even if a task also
		// errored while dispatch was winding down.
		if cause := context.Cause(ctx); cause != nil {
			return cause
		}
		return ctx.Err()
	}
	// taskErr was written before cancel(e) and the workers were joined
	// before ForEachCtx returned, so this read is ordered.
	if taskErr != nil {
		return taskErr
	}
	return err
}

// ForEachChunked is ForEach with a chunk size greater than one, reducing
// scheduling overhead for very short tasks.
func ForEachChunked(n, threads, chunk int, fn func(worker, task int)) {
	if chunk <= 1 {
		ForEach(n, threads, fn)
		return
	}
	chunks := (n + chunk - 1) / chunk
	ForEach(chunks, threads, func(worker, c int) {
		lo := c * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			fn(worker, i)
		}
	})
}

// ForEachChunkedCtx is ForEachCtx with a chunk size greater than one:
// workers pull chunks of `chunk` consecutive task indices, cutting
// scheduling overhead for fine-grained tasks while keeping cooperative
// cancellation and panic isolation. It records into the same per-task
// latency histogram and worker-utilization gauge ForEachCtx does; each
// observation covers one chunk (the scheduling unit), and a
// *PanicError reports the chunk index in Task.
func ForEachChunkedCtx(ctx context.Context, n, threads, chunk int, fn func(worker, task int)) error {
	if chunk <= 1 {
		return ForEachCtx(ctx, n, threads, fn)
	}
	chunks := (n + chunk - 1) / chunk
	return ForEachCtx(ctx, chunks, threads, func(worker, c int) {
		lo := c * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			fn(worker, i)
		}
	})
}

// ForEachChunkedCtxErr is ForEachCtxErr with chunked dispatch: the
// error-returning, context-threading variant of ForEachChunkedCtx. The
// first task error stops the chunk immediately (remaining indices of
// that chunk are skipped) and cancels dispatch of further chunks.
func ForEachChunkedCtxErr(ctx context.Context, n, threads, chunk int, fn func(ctx context.Context, worker, task int) error) error {
	if chunk <= 1 {
		return ForEachCtxErr(ctx, n, threads, fn)
	}
	chunks := (n + chunk - 1) / chunk
	return ForEachCtxErr(ctx, chunks, threads, func(cctx context.Context, worker, c int) error {
		lo := c * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			if err := fn(cctx, worker, i); err != nil {
				return err
			}
		}
		return nil
	})
}

// ChunkFor picks a chunk size for n fine-grained tasks on `threads`
// workers: large enough to amortize the shared-counter fetch, small
// enough to keep ~8 chunks per worker for dynamic load balancing.
func ChunkFor(n, threads int) int {
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	chunk := n / (threads * 8)
	if chunk < 1 {
		return 1
	}
	if chunk > 64 {
		return 64
	}
	return chunk
}

// ScalingPoint is one measurement of a scaling sweep.
type ScalingPoint struct {
	Threads  int
	Elapsed  time.Duration
	Speedup  float64 // relative to the 1-thread point
	Parallel float64 // efficiency = Speedup/Threads
}

// MeasureScaling runs work(threads) once for each requested thread
// count and reports the speedup curve. It is MeasureScalingReps with
// reps=1; measurements feeding real figures should use reps >= 3 so
// single-shot noise does not distort the curve.
func MeasureScaling(threadCounts []int, work func(threads int)) []ScalingPoint {
	return MeasureScalingReps(threadCounts, 1, work)
}

// MeasureScalingReps runs work(threads) reps times for each requested
// thread count, takes the median elapsed time per count, and reports
// the speedup curve. work must perform the same total job regardless
// of the thread count.
//
// Speedup is relative to the Threads==1 point wherever it appears in
// threadCounts; when no 1-thread point was measured, the smallest
// thread count is the baseline (so the curve is still monotone-
// comparable, just not anchored at 1.0). Efficiency divides by the
// thread count, substituting GOMAXPROCS for non-positive counts —
// that is how many workers a tc<=0 run actually uses.
func MeasureScalingReps(threadCounts []int, reps int, work func(threads int)) []ScalingPoint {
	if reps < 1 {
		reps = 1
	}
	elapsed := make([]time.Duration, len(threadCounts))
	runs := make([]time.Duration, reps)
	for i, tc := range threadCounts {
		for r := 0; r < reps; r++ {
			runtime.GC() // stabilize allocator state between measurements
			start := time.Now()
			work(tc)
			runs[r] = time.Since(start)
		}
		elapsed[i] = medianDuration(runs)
	}
	return scalingPoints(threadCounts, elapsed)
}

// scalingPoints derives the speedup curve from measured times. Split
// from the timing loop so baseline selection is testable with
// synthetic durations.
func scalingPoints(threadCounts []int, elapsed []time.Duration) []ScalingPoint {
	// Baseline: the Threads==1 measurement regardless of where it
	// appears in the sweep order; fall back to the smallest positive
	// count (then to the first point) when 1 was not measured.
	baseIdx := -1
	for i, tc := range threadCounts {
		if tc == 1 {
			baseIdx = i
			break
		}
	}
	if baseIdx < 0 {
		for i, tc := range threadCounts {
			if tc <= 0 {
				continue
			}
			if baseIdx < 0 || tc < threadCounts[baseIdx] {
				baseIdx = i
			}
		}
	}
	if baseIdx < 0 && len(threadCounts) > 0 {
		baseIdx = 0
	}
	points := make([]ScalingPoint, 0, len(threadCounts))
	for i, tc := range threadCounts {
		p := ScalingPoint{Threads: tc, Elapsed: elapsed[i]}
		if elapsed[i] > 0 {
			p.Speedup = float64(elapsed[baseIdx]) / float64(elapsed[i])
		}
		den := tc
		if den <= 0 {
			den = runtime.GOMAXPROCS(0)
		}
		if den > 0 {
			p.Parallel = p.Speedup / float64(den)
		}
		points = append(points, p)
	}
	return points
}

// medianDuration returns the median of ds (the mean of the two middle
// values for even lengths). ds is not modified.
func medianDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		return sorted[mid]
	}
	return (sorted[mid-1] + sorted[mid]) / 2
}
