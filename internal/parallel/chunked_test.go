package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

func TestForEachChunkedCtxCoversAllTasks(t *testing.T) {
	for _, chunk := range []int{1, 3, 7, 64} {
		const n = 100
		var hits [n]int32
		err := ForEachChunkedCtx(context.Background(), n, 4, chunk, func(worker, task int) {
			atomic.AddInt32(&hits[task], 1)
		})
		if err != nil {
			t.Fatalf("chunk=%d: err = %v", chunk, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("chunk=%d: task %d ran %d times", chunk, i, h)
			}
		}
	}
}

func TestForEachChunkedCtxErrStopsOnError(t *testing.T) {
	boom := errors.New("boom")
	var ran int64
	err := ForEachChunkedCtxErr(context.Background(), 1000, 2, 10, func(ctx context.Context, worker, task int) error {
		atomic.AddInt64(&ran, 1)
		if task == 55 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if atomic.LoadInt64(&ran) == 1000 {
		t.Fatal("error did not stop dispatch")
	}
}

func TestForEachChunkedCtxErrCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := ForEachChunkedCtxErr(ctx, 100, 2, 8, func(ctx context.Context, worker, task int) error {
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestForEachChunkedCtxPanicIsolation(t *testing.T) {
	err := ForEachChunkedCtx(context.Background(), 100, 2, 10, func(worker, task int) {
		if task == 42 {
			panic("kaboom")
		}
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Value != "kaboom" {
		t.Fatalf("panic value = %v", pe.Value)
	}
}

// The chunked variant must feed the same observability instruments
// ForEachCtx records: one latency observation per chunk, worker
// utilization, and a completed-task count equal to the chunk count.
func TestForEachChunkedCtxRecordsMetrics(t *testing.T) {
	o := obs.NewObserver()
	ctx := obs.With(context.Background(), o)
	ctx = obs.WithLabel(ctx, "chunky")
	const n, chunk = 40, 10
	if err := ForEachChunkedCtx(ctx, n, 2, chunk, func(worker, task int) {}); err != nil {
		t.Fatal(err)
	}
	hist := o.Histogram("parallel.task_latency_ns", "chunky", "ns")
	if got, want := hist.Count(), uint64(n/chunk); got != want {
		t.Fatalf("latency observations = %d, want %d (one per chunk)", got, want)
	}
	if got := o.Counter("parallel.tasks_completed", "chunky").Value(); got != uint64(n/chunk) {
		t.Fatalf("tasks_completed = %d, want %d", got, n/chunk)
	}
}

func TestChunkFor(t *testing.T) {
	if c := ChunkFor(10, 4); c != 1 {
		t.Fatalf("small n: chunk = %d, want 1", c)
	}
	if c := ChunkFor(10_000, 4); c < 2 || c > 64 {
		t.Fatalf("large n: chunk = %d, want in [2,64]", c)
	}
	if c := ChunkFor(1_000_000, 1); c != 64 {
		t.Fatalf("huge n: chunk = %d, want capped at 64", c)
	}
}
