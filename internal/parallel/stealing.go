package parallel

import (
	"context"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/perf"
)

// Work-stealing dispatch. The shared-counter schedulers (ForEachCtx
// and friends) serialize every dispatch on one atomic cache line; fine
// for coarse tasks, but the line ping-pongs across cores and offers no
// locality. ForEachStealing instead seeds each worker with a
// contiguous block of task indices in a private deque: the owner pops
// from its own deque with no cross-core traffic, and only workers that
// run dry touch anyone else's, stealing from the most loaded victim —
// so skewed workloads (poa windows vary ~10x in cell count) rebalance
// while uniform ones never contend at all.
//
// Deque discipline is the classic LIFO-pop/FIFO-steal split: the
// seeded block is conceptually pushed in descending index order, so
// the owner's LIFO pop walks its block in ascending order (cache-
// friendly, same order the sequential path uses) while a thief's FIFO
// steal takes the oldest-pushed — highest — indices from the far end,
// the work the owner would reach last. Thieves take half the victim's
// remaining range per steal, so a large imbalance settles in O(log n)
// steals instead of one task at a time. A mutex per deque is plenty:
// every kernel task here is microseconds to milliseconds of DP, so the
// uncontended lock is noise and the contended case is rare by design.
//
// Panic isolation, cancellation, and observability match ForEachCtx
// exactly (same PanicError type and first-panic-wins contract, same
// ctx.Err() dispatch check, same task-latency histogram and
// utilization/workers/tasks gauges), plus a parallel.steals counter.

// stealDeque holds one worker's remaining seeded range [lo, hi).
// Owners pop lo; thieves split off the top half.
type stealDeque struct {
	mu sync.Mutex
	lo int
	hi int
	_  perf.CacheLinePad // keep neighbours' locks off this line
}

// pop takes the owner's next task (ascending order).
func (d *stealDeque) pop() (int, bool) {
	d.mu.Lock()
	if d.lo >= d.hi {
		d.mu.Unlock()
		return 0, false
	}
	i := d.lo
	d.lo++
	d.mu.Unlock()
	return i, true
}

// remaining reports how many tasks the deque still holds (victim
// selection reads this under the lock so -race stays clean).
func (d *stealDeque) remaining() int {
	d.mu.Lock()
	r := d.hi - d.lo
	d.mu.Unlock()
	return r
}

// steal splits off the top half of the remaining range (at least one
// task) for a thief to take home.
func (d *stealDeque) steal() (lo, hi int, ok bool) {
	d.mu.Lock()
	rem := d.hi - d.lo
	if rem <= 0 {
		d.mu.Unlock()
		return 0, 0, false
	}
	take := (rem + 1) / 2
	hi = d.hi
	lo = hi - take
	d.hi = lo
	d.mu.Unlock()
	return lo, hi, true
}

// refill installs a stolen range as the (empty) owner's new block.
func (d *stealDeque) refill(lo, hi int) {
	d.mu.Lock()
	d.lo, d.hi = lo, hi
	d.mu.Unlock()
}

// ForEachStealing is ForEach with work-stealing dispatch: same
// cover-every-task-once and re-panic contract, different scheduler.
func ForEachStealing(n, threads int, fn func(worker, task int)) {
	if err := ForEachStealingCtx(context.Background(), n, threads, fn); err != nil {
		panic(err)
	}
}

// ForEachStealingCtx runs fn(worker, task) for every task in [0,n) on
// `threads` workers with per-worker deques and skew-aware stealing.
// Cancellation, panic isolation, and observability follow ForEachCtx:
// dispatch stops once ctx is cancelled (running tasks finish), the
// first worker panic wins and returns as a *PanicError, and the same
// histogram/gauges are recorded plus a parallel.steals counter.
func ForEachStealingCtx(ctx context.Context, n, threads int, fn func(worker, task int)) error {
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	if threads > n {
		threads = n
	}
	if n <= 0 {
		return nil
	}

	var (
		taskHist *obs.Histogram
		clocks   []workerClock
		t0       time.Time
	)
	o := obs.From(ctx)
	label := ""
	if o != nil {
		label = obs.Label(ctx)
		taskHist = o.Histogram("parallel.task_latency_ns", label, "ns")
		clocks = make([]workerClock, threads)
		t0 = time.Now()
	}

	var stop atomic.Bool
	var once sync.Once
	var perr *PanicError
	runTask := func(worker, task int) {
		defer func() {
			if r := recover(); r != nil {
				// debug.Stack in a deferred recover still sees the
				// panicking frames, same as ForEachCtx.
				stack := debug.Stack()
				once.Do(func() {
					perr = &PanicError{Task: task, Value: r, Stack: stack}
				})
				stop.Store(true)
			}
		}()
		if taskHist == nil {
			fn(worker, task)
			return
		}
		start := time.Now()
		fn(worker, task)
		d := time.Since(start)
		taskHist.Observe(float64(d.Nanoseconds()))
		clocks[worker].busyNs += d.Nanoseconds()
		clocks[worker].tasks++
	}

	var steals int64
	if threads <= 1 {
		for i := 0; i < n && !stop.Load(); i++ {
			if ctx.Err() != nil {
				break
			}
			runTask(0, i)
		}
	} else {
		// Seed each deque with a balanced contiguous block.
		deques := make([]stealDeque, threads)
		for w := 0; w < threads; w++ {
			deques[w].lo = w * n / threads
			deques[w].hi = (w + 1) * n / threads
		}
		var wg sync.WaitGroup
		wg.Add(threads)
		for w := 0; w < threads; w++ {
			go func(worker int) {
				defer wg.Done()
				own := &deques[worker]
				for !stop.Load() && ctx.Err() == nil {
					i, ok := own.pop()
					if !ok {
						// Skew-aware victim selection: steal from the
						// worker with the most remaining tasks.
						victim, most := -1, 0
						for v := range deques {
							if v == worker {
								continue
							}
							if rem := deques[v].remaining(); rem > most {
								most = rem
								victim = v
							}
						}
						if victim < 0 {
							return // every deque drained
						}
						lo, hi, ok := deques[victim].steal()
						if !ok {
							continue // lost the race; rescan
						}
						own.refill(lo, hi)
						atomic.AddInt64(&steals, 1)
						continue
					}
					runTask(worker, i)
				}
			}(w)
		}
		wg.Wait()
	}

	if o != nil {
		wall := time.Since(t0)
		var busy, done int64
		for i := range clocks {
			busy += clocks[i].busyNs
			done += clocks[i].tasks
		}
		if wall > 0 {
			util := float64(busy) / (float64(wall.Nanoseconds()) * float64(threads))
			o.Gauge("parallel.worker_utilization", label).Set(util)
		}
		o.Gauge("parallel.workers", label).Set(float64(threads))
		o.Counter("parallel.tasks_completed", label).Add(uint64(done))
		o.Counter("parallel.steals", label).Add(uint64(steals))
	}

	if perr != nil {
		return perr
	}
	return ctx.Err()
}

// ForEachStealingErr is ForEachCtxErr over the stealing scheduler:
// error-returning tasks, first error cancels dispatch, identical
// panic/parent-cancellation precedence.
func ForEachStealingErr(ctx context.Context, n, threads int, fn func(ctx context.Context, worker, task int) error) error {
	return errDispatch(ctx, n, threads, fn, ForEachStealingCtx)
}
