package parallel

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestForEachDispatchErrRoutesBothPolicies pins that the router honors
// a forced policy and that both schedulers keep the cover-every-task-
// exactly-once contract.
func TestForEachDispatchErrRoutesBothPolicies(t *testing.T) {
	for _, policy := range []int{DispatchChunked, DispatchStealing} {
		restore := ForceDispatch(policy)
		var hits [257]int32
		err := ForEachDispatchErr(context.Background(), len(hits), 4, func(_ context.Context, _, task int) error {
			atomic.AddInt32(&hits[task], 1)
			return nil
		})
		restore()
		if err != nil {
			t.Fatalf("policy %d: unexpected error %v", policy, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("policy %d: task %d ran %d times", policy, i, h)
			}
		}
	}
}

// TestForEachDispatchErrErrorContract pins first-error-cancels under
// both forced policies: the returned error is a task error, and no
// task runs twice.
func TestForEachDispatchErrErrorContract(t *testing.T) {
	boom := errors.New("boom")
	for _, policy := range []int{DispatchChunked, DispatchStealing} {
		restore := ForceDispatch(policy)
		var ran int64
		err := ForEachDispatchErr(context.Background(), 100, 4, func(_ context.Context, _, task int) error {
			atomic.AddInt64(&ran, 1)
			if task == 13 {
				return boom
			}
			return nil
		})
		restore()
		if !errors.Is(err, boom) {
			t.Fatalf("policy %d: got %v, want boom", policy, err)
		}
		if n := atomic.LoadInt64(&ran); n < 1 || n > 100 {
			t.Fatalf("policy %d: ran %d tasks", policy, n)
		}
	}
}

// TestForEachDispatchPureResults runs a deterministic per-task
// computation under both policies and asserts identical aggregate
// output — dispatch must be pure policy, never semantics.
func TestForEachDispatchPureResults(t *testing.T) {
	compute := func(policy int) []uint64 {
		restore := ForceDispatch(policy)
		defer restore()
		out := make([]uint64, 512)
		var mu sync.Mutex
		err := ForEachDispatchErr(context.Background(), len(out), 4, func(_ context.Context, _, task int) error {
			v := uint64(task)
			for i := 0; i < (task%7+1)*50; i++ {
				v = v*6364136223846793005 + 1442695040888963407
			}
			mu.Lock()
			out[task] = v
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatalf("policy %d: %v", policy, err)
		}
		return out
	}
	chunked := compute(DispatchChunked)
	stealing := compute(DispatchStealing)
	for i := range chunked {
		if chunked[i] != stealing[i] {
			t.Fatalf("task %d differs across policies: %d vs %d", i, chunked[i], stealing[i])
		}
	}
}

// TestDispatchPolicyBounds pins that whatever the probe or environment
// resolves, the policy is one of the two defined schedulers.
func TestDispatchPolicyBounds(t *testing.T) {
	if p := DispatchPolicy(); p != DispatchChunked && p != DispatchStealing {
		t.Fatalf("DispatchPolicy() = %d, want %d or %d", p, DispatchChunked, DispatchStealing)
	}
}
