package parallel

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The stealing scheduler must satisfy the exact contract the shared-
// counter scheduler does; these tests mirror parallel_test.go case for
// case, then add stealing-specific coverage (skew rebalancing, deque
// exhaustion under -race).

func TestStealingCoversAllTasksOnce(t *testing.T) {
	for _, threads := range []int{1, 2, 4, 8} {
		for _, n := range []int{1, 7, 1000} {
			counts := make([]int32, n)
			ForEachStealing(n, threads, func(worker, task int) {
				atomic.AddInt32(&counts[task], 1)
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("threads=%d n=%d task %d ran %d times", threads, n, i, c)
				}
			}
		}
	}
}

func TestStealingZeroTasksAndDefaults(t *testing.T) {
	ran := false
	ForEachStealing(0, 4, func(int, int) { ran = true })
	if ran {
		t.Error("fn ran for n=0")
	}
	var total int64
	ForEachStealing(100, 0, func(worker, task int) { atomic.AddInt64(&total, int64(task)) })
	if total != 4950 {
		t.Errorf("sum = %d, want 4950", total)
	}
}

func TestStealingWorkerIDsInRange(t *testing.T) {
	threads := 3
	ForEachStealing(200, threads, func(worker, task int) {
		if worker < 0 || worker >= threads {
			t.Errorf("worker id %d out of range", worker)
		}
	})
	// threads > n: clamped, worker ids stay under n.
	counts := make([]int32, 3)
	err := ForEachStealingCtx(context.Background(), 3, 64, func(worker, task int) {
		if worker < 0 || worker >= 3 {
			t.Errorf("worker id %d out of clamped range", worker)
		}
		atomic.AddInt32(&counts[task], 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != 1 {
			t.Errorf("task %d ran %d times", i, c)
		}
	}
}

func TestStealingPanicReturnsErrorExactlyOnce(t *testing.T) {
	for _, threads := range []int{1, 4} {
		var ran int32
		err := ForEachStealingCtx(context.Background(), 100, threads, func(worker, task int) {
			atomic.AddInt32(&ran, 1)
			if task == 7 {
				panic("boom in task 7")
			}
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("threads=%d: err = %v, want *PanicError", threads, err)
		}
		if pe.Value != "boom in task 7" {
			t.Errorf("panic value = %v", pe.Value)
		}
		if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "stealing_test") {
			t.Errorf("stack missing panic site:\n%s", pe.Stack)
		}
		// Single-threaded dispatch is sequential: the remaining 92
		// tasks never run after the panic.
		if threads == 1 && ran != 8 {
			t.Errorf("ran %d tasks after panic at task 7, want 8", ran)
		}
	}
}

func TestStealingAllWorkersPanicSingleError(t *testing.T) {
	err := ForEachStealingCtx(context.Background(), 64, 8, func(worker, task int) {
		panic(task)
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
}

func TestStealingCancellationStopsDispatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started int32
	release := make(chan struct{})
	var once sync.Once
	err := ForEachStealingCtx(ctx, 10_000, 4, func(worker, task int) {
		atomic.AddInt32(&started, 1)
		once.Do(func() {
			cancel()
			close(release)
		})
		<-release
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := atomic.LoadInt32(&started); n > 16 {
		t.Errorf("%d tasks started after cancellation", n)
	}
}

func TestStealingPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := ForEachStealingCtx(ctx, 100, 1, func(worker, task int) { ran = true })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Error("task ran under a pre-cancelled context")
	}
}

func TestStealingErrReturnsFirstTaskError(t *testing.T) {
	boom := errors.New("task 7 failed")
	var ran int32
	err := ForEachStealingErr(context.Background(), 100, 1, func(ctx context.Context, worker, task int) error {
		atomic.AddInt32(&ran, 1)
		if task == 7 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the task error", err)
	}
	if ran != 8 {
		t.Errorf("ran %d tasks, want 8", ran)
	}
}

func TestStealingErrSuccessAndPanicPrecedence(t *testing.T) {
	if err := ForEachStealingErr(context.Background(), 50, 4, func(ctx context.Context, worker, task int) error {
		return nil
	}); err != nil {
		t.Fatalf("all-nil tasks returned %v", err)
	}
	err := ForEachStealingErr(context.Background(), 50, 4, func(ctx context.Context, worker, task int) error {
		panic("worker bug")
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "worker bug" {
		t.Fatalf("err = %v, want *PanicError(worker bug)", err)
	}
}

func TestStealingErrParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	err := ForEachStealingErr(ctx, 1000, 2, func(tctx context.Context, worker, task int) error {
		cancel()
		<-tctx.Done()
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestStealingRepanics(t *testing.T) {
	defer func() {
		r := recover()
		pe, ok := r.(*PanicError)
		if !ok {
			t.Fatalf("recovered %v (%T), want *PanicError", r, r)
		}
		if pe.Value != "stealing boom" {
			t.Errorf("panic value = %v", pe.Value)
		}
	}()
	ForEachStealing(10, 2, func(worker, task int) { panic("stealing boom") })
	t.Fatal("ForEachStealing did not re-panic")
}

// TestStealingRebalancesSkew pins the scheduler's reason to exist:
// with all the heavy tasks seeded into one worker's block, idle
// workers must steal them. Every worker sleeps per task, so if no
// stealing happened the skewed block would take ~n*d sequentially; we
// assert wall time well under that and that the heavy block's tasks
// were not all run by its seeded owner.
func TestStealingRebalancesSkew(t *testing.T) {
	const threads = 4
	const n = 64
	d := 2 * time.Millisecond
	owner := make([]int32, n)
	start := time.Now()
	ForEachStealing(n, threads, func(worker, task int) {
		// Tasks in the first block (worker 0's seed) are the slow ones.
		if task < n/threads {
			time.Sleep(4 * d)
		} else {
			time.Sleep(d / 4)
		}
		atomic.StoreInt32(&owner[task], int32(worker)+1)
	})
	elapsed := time.Since(start)
	workers := map[int32]bool{}
	for _, w := range owner[:n/threads] {
		workers[w] = true
	}
	if len(workers) < 2 {
		t.Errorf("heavy block ran entirely on one worker: no stealing occurred")
	}
	// Sequential time for the heavy block alone is (n/threads)*4d =
	// 128ms with d=2ms; rebalanced across 4 workers it must land far
	// below. Generous bound to stay robust on loaded CI machines.
	if seq := time.Duration(n/threads) * 4 * d; elapsed > seq {
		t.Errorf("elapsed %v not better than unstolen sequential heavy block %v", elapsed, seq)
	}
}

// TestStealingManyTasksRace hammers the deque protocol under -race:
// high task count, short tasks, repeated runs.
func TestStealingManyTasksRace(t *testing.T) {
	for rep := 0; rep < 5; rep++ {
		var total int64
		ForEachStealing(5000, 8, func(worker, task int) {
			atomic.AddInt64(&total, 1)
		})
		if total != 5000 {
			t.Fatalf("rep %d: ran %d tasks, want 5000", rep, total)
		}
	}
}
