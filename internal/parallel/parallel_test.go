package parallel

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllTasksOnce(t *testing.T) {
	for _, threads := range []int{1, 2, 4, 8} {
		n := 1000
		counts := make([]int32, n)
		ForEach(n, threads, func(worker, task int) {
			atomic.AddInt32(&counts[task], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("threads=%d task %d ran %d times", threads, i, c)
			}
		}
	}
}

func TestForEachZeroTasks(t *testing.T) {
	ran := false
	ForEach(0, 4, func(int, int) { ran = true })
	if ran {
		t.Error("fn ran for n=0")
	}
}

func TestForEachDefaultThreads(t *testing.T) {
	var total int64
	ForEach(100, 0, func(worker, task int) { atomic.AddInt64(&total, int64(task)) })
	if total != 4950 {
		t.Errorf("sum = %d, want 4950", total)
	}
}

func TestForEachWorkerIDsInRange(t *testing.T) {
	threads := 3
	ForEach(200, threads, func(worker, task int) {
		if worker < 0 || worker >= threads {
			t.Errorf("worker id %d out of range", worker)
		}
	})
}

func TestForEachChunked(t *testing.T) {
	n := 103
	counts := make([]int32, n)
	ForEachChunked(n, 4, 10, func(worker, task int) {
		atomic.AddInt32(&counts[task], 1)
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("task %d ran %d times", i, c)
		}
	}
}

func TestForEachCtxCoversAllTasksOnce(t *testing.T) {
	for _, threads := range []int{1, 2, 8} {
		n := 500
		counts := make([]int32, n)
		err := ForEachCtx(context.Background(), n, threads, func(worker, task int) {
			atomic.AddInt32(&counts[task], 1)
		})
		if err != nil {
			t.Fatalf("threads=%d err=%v", threads, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("threads=%d task %d ran %d times", threads, i, c)
			}
		}
	}
}

func TestForEachCtxPanicReturnsErrorExactlyOnce(t *testing.T) {
	for _, threads := range []int{1, 4} {
		var ran int32
		err := ForEachCtx(context.Background(), 100, threads, func(worker, task int) {
			atomic.AddInt32(&ran, 1)
			if task == 7 {
				panic("boom in task 7")
			}
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("threads=%d: err = %v, want *PanicError", threads, err)
		}
		if pe.Value != "boom in task 7" {
			t.Errorf("panic value = %v", pe.Value)
		}
		if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "parallel_test") {
			t.Errorf("stack missing panic site:\n%s", pe.Stack)
		}
		// Dispatch must stop after the panic: with 1 thread the
		// remaining 92 tasks never run.
		if threads == 1 && ran != 8 {
			t.Errorf("ran %d tasks after panic at task 7, want 8", ran)
		}
	}
}

func TestForEachCtxAllWorkersPanicSingleError(t *testing.T) {
	// Every task panics on every worker; exactly one error must come
	// back, not a crash and not a composite.
	err := ForEachCtx(context.Background(), 64, 8, func(worker, task int) {
		panic(task)
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
}

func TestForEachCtxCancellationStopsDispatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started int32
	release := make(chan struct{})
	var once sync.Once
	err := ForEachCtx(ctx, 10_000, 4, func(worker, task int) {
		atomic.AddInt32(&started, 1)
		once.Do(func() {
			cancel()
			close(release)
		})
		<-release // all running tasks block until the first cancels
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The four in-flight tasks may finish, but dispatch must stop
	// promptly: nowhere near the 10k total.
	if n := atomic.LoadInt32(&started); n > 16 {
		t.Errorf("%d tasks started after cancellation", n)
	}
}

func TestForEachCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := ForEachCtx(ctx, 100, 1, func(worker, task int) { ran = true })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Error("task ran under a pre-cancelled context")
	}
}

func TestForEachCtxEdgeCases(t *testing.T) {
	// n == 0: no work, no error, fn never called.
	ran := false
	if err := ForEachCtx(context.Background(), 0, 4, func(int, int) { ran = true }); err != nil || ran {
		t.Errorf("n=0: err=%v ran=%v", err, ran)
	}
	// threads > n: clamped, every task still runs exactly once.
	counts := make([]int32, 3)
	err := ForEachCtx(context.Background(), 3, 64, func(worker, task int) {
		if worker < 0 || worker >= 3 {
			t.Errorf("worker id %d out of clamped range", worker)
		}
		atomic.AddInt32(&counts[task], 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != 1 {
			t.Errorf("task %d ran %d times", i, c)
		}
	}
}

func TestForEachCtxErrReturnsFirstTaskError(t *testing.T) {
	boom := errors.New("task 7 failed")
	var ran int32
	err := ForEachCtxErr(context.Background(), 100, 1, func(ctx context.Context, worker, task int) error {
		atomic.AddInt32(&ran, 1)
		if task == 7 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the task error", err)
	}
	// Single-threaded: the error cancels dispatch right after task 7.
	if ran != 8 {
		t.Errorf("ran %d tasks, want 8", ran)
	}
}

func TestForEachCtxErrSuccessAndPanicPrecedence(t *testing.T) {
	if err := ForEachCtxErr(context.Background(), 50, 4, func(ctx context.Context, worker, task int) error {
		return nil
	}); err != nil {
		t.Fatalf("all-nil tasks returned %v", err)
	}
	err := ForEachCtxErr(context.Background(), 50, 4, func(ctx context.Context, worker, task int) error {
		panic("worker bug")
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "worker bug" {
		t.Fatalf("err = %v, want *PanicError(worker bug)", err)
	}
}

func TestForEachCtxErrParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	err := ForEachCtxErr(ctx, 1000, 2, func(tctx context.Context, worker, task int) error {
		cancel()
		<-tctx.Done() // tasks must observe parent cancellation via tctx
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestForEachRepanicsWorkerPanic(t *testing.T) {
	defer func() {
		r := recover()
		pe, ok := r.(*PanicError)
		if !ok {
			t.Fatalf("recovered %v (%T), want *PanicError", r, r)
		}
		if pe.Value != "legacy boom" {
			t.Errorf("panic value = %v", pe.Value)
		}
	}()
	ForEach(10, 2, func(worker, task int) { panic("legacy boom") })
	t.Fatal("ForEach did not re-panic")
}

func TestMeasureScalingShape(t *testing.T) {
	points := MeasureScaling([]int{1, 2}, func(threads int) {
		ForEach(1000, threads, func(_, task int) {
			x := 0
			for i := 0; i < 1000; i++ {
				x += i * task
			}
			_ = x
		})
	})
	if len(points) != 2 {
		t.Fatalf("got %d points", len(points))
	}
	if points[0].Speedup < 0.99 || points[0].Speedup > 1.01 {
		t.Errorf("baseline speedup = %v, want 1", points[0].Speedup)
	}
	if points[1].Threads != 2 {
		t.Errorf("second point threads = %d", points[1].Threads)
	}
}
