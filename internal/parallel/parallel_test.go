package parallel

import (
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllTasksOnce(t *testing.T) {
	for _, threads := range []int{1, 2, 4, 8} {
		n := 1000
		counts := make([]int32, n)
		ForEach(n, threads, func(worker, task int) {
			atomic.AddInt32(&counts[task], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("threads=%d task %d ran %d times", threads, i, c)
			}
		}
	}
}

func TestForEachZeroTasks(t *testing.T) {
	ran := false
	ForEach(0, 4, func(int, int) { ran = true })
	if ran {
		t.Error("fn ran for n=0")
	}
}

func TestForEachDefaultThreads(t *testing.T) {
	var total int64
	ForEach(100, 0, func(worker, task int) { atomic.AddInt64(&total, int64(task)) })
	if total != 4950 {
		t.Errorf("sum = %d, want 4950", total)
	}
}

func TestForEachWorkerIDsInRange(t *testing.T) {
	threads := 3
	ForEach(200, threads, func(worker, task int) {
		if worker < 0 || worker >= threads {
			t.Errorf("worker id %d out of range", worker)
		}
	})
}

func TestForEachChunked(t *testing.T) {
	n := 103
	counts := make([]int32, n)
	ForEachChunked(n, 4, 10, func(worker, task int) {
		atomic.AddInt32(&counts[task], 1)
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("task %d ran %d times", i, c)
		}
	}
}

func TestMeasureScalingShape(t *testing.T) {
	points := MeasureScaling([]int{1, 2}, func(threads int) {
		ForEach(1000, threads, func(_, task int) {
			x := 0
			for i := 0; i < 1000; i++ {
				x += i * task
			}
			_ = x
		})
	})
	if len(points) != 2 {
		t.Fatalf("got %d points", len(points))
	}
	if points[0].Speedup < 0.99 || points[0].Speedup > 1.01 {
		t.Errorf("baseline speedup = %v, want 1", points[0].Speedup)
	}
	if points[1].Threads != 2 {
		t.Errorf("second point threads = %d", points[1].Threads)
	}
}
