package parallel

import (
	"context"
	"runtime"

	"repro/internal/tuning"
)

// Dispatch policies for the kernels that route through the tunable
// scheduler choice instead of hardcoding one.
const (
	// DispatchChunked is the shared-atomic-counter scheduler
	// (ForEachCtx): one cache line of dispatch state, no locality.
	DispatchChunked = 0
	// DispatchStealing is the per-worker-deque scheduler
	// (ForEachStealingCtx): private blocks, steal-half from the most
	// loaded victim when a worker runs dry.
	DispatchStealing = 1
)

// dispatchPolicy decides which scheduler skew-prone region loops (dbg
// assembly regions, phmm active regions) use. poa committed to stealing
// unconditionally after profiling its ~10x window skew; dbg/phmm skew
// is real but milder, and on a single-core host the deques are pure
// overhead — so the choice is probed, not assumed. Default is the
// shared counter (the historical behaviour).
var dispatchPolicy = tuning.NewInt("parallel.dispatch", DispatchChunked, DispatchChunked, DispatchStealing, probeDispatch)

// DispatchPolicy returns the resolved scheduler policy (probing on
// first use). Exposed so reports can log which policy measurements ran
// under.
func DispatchPolicy() int { return dispatchPolicy.Get() }

// ForceDispatch pins the policy for tests and returns a restore
// function: defer parallel.ForceDispatch(parallel.DispatchStealing)().
func ForceDispatch(policy int) (restore func()) { return dispatchPolicy.Set(policy) }

// ForEachDispatchErr runs fn over [0,n) on the probed scheduler. The
// two schedulers share the cover-every-task-once, first-error-cancels,
// panic-beats-error contract (see errDispatch), so which one runs is
// pure policy: results must be identical, only dispatch order and
// cross-worker balance differ. Differential tests in dbg and phmm pin
// that property under both forced policies.
func ForEachDispatchErr(ctx context.Context, n, threads int, fn func(ctx context.Context, worker, task int) error) error {
	if dispatchPolicy.Get() == DispatchStealing {
		return ForEachStealingErr(ctx, n, threads, fn)
	}
	return ForEachCtxErr(ctx, n, threads, fn)
}

// ForEachDispatchCtx is the error-free variant of ForEachDispatchErr.
func ForEachDispatchCtx(ctx context.Context, n, threads int, fn func(worker, task int)) error {
	if dispatchPolicy.Get() == DispatchStealing {
		return ForEachStealingCtx(ctx, n, threads, fn)
	}
	return ForEachCtx(ctx, n, threads, fn)
}

// probeDispatch times both schedulers on a synthetic skewed workload
// shaped like the dbg/phmm region loops: many tasks whose cost varies
// ~25x in a repeating pattern, so seeded blocks end up imbalanced and
// stealing has something to win back. Probes must not call
// dispatchPolicy.Get (sync.Once deadlock) — both paths are timed
// directly. The shared counter keeps the tie: stealing must be >5%
// faster to displace the simpler scheduler.
func probeDispatch() int {
	threads := runtime.GOMAXPROCS(0)
	if threads <= 1 {
		// Both schedulers degrade to the same inline loop; keep the
		// cheaper bookkeeping.
		return DispatchChunked
	}
	const tasks = 192
	var sink uint64
	work := func(task int) {
		// Cost pattern 1..25 units, deterministic per task index.
		units := (task%5 + 1) * (task%5 + 1)
		s := uint64(task)*2654435761 + 1
		for i := 0; i < units*400; i++ {
			s = s*6364136223846793005 + 1442695040888963407
		}
		sink += s
	}
	ctx := context.Background()
	chunkedNs := tuning.BestNs(3, 1, func() {
		_ = ForEachCtx(ctx, tasks, threads, func(_, task int) { work(task) })
	})
	stealNs := tuning.BestNs(3, 1, func() {
		_ = ForEachStealingCtx(ctx, tasks, threads, func(_, task int) { work(task) })
	})
	_ = sink
	if stealNs < chunkedNs*0.95 {
		return DispatchStealing
	}
	return DispatchChunked
}
