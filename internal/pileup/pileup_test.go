package pileup

import (
	"math/rand"
	"testing"

	"repro/internal/genome"
	"repro/internal/simio"
)

func mustCigar(t *testing.T, s string) simio.Cigar {
	t.Helper()
	c, err := simio.ParseCigar(s)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCountRegionPerfectAlignment(t *testing.T) {
	seq := genome.MustFromString("ACGTACGT")
	a := &simio.Alignment{Pos: 10, Cigar: mustCigar(t, "8M"), Seq: seq}
	rg := &Region{Start: 0, End: 30, Alignments: []*simio.Alignment{a}}
	counts, reads := CountRegion(rg)
	if reads != 1 {
		t.Errorf("reads = %d", reads)
	}
	for i, b := range seq {
		if counts[10+i].Base[0][b] != 1 {
			t.Errorf("position %d base %c not counted", 10+i, genome.Letter(b))
		}
		if counts[10+i].Depth() != 1 {
			t.Errorf("position %d depth %d", 10+i, counts[10+i].Depth())
		}
	}
	if counts[9].Depth() != 0 || counts[18].Depth() != 0 {
		t.Error("counts leaked outside the alignment span")
	}
}

func TestCountRegionIndelsAndClips(t *testing.T) {
	// 2S3M1I2M2D1M: read = SSMMMIMMM, ref spans 3+2+2+1 = 8 bases.
	seq := genome.MustFromString("TTACGTAAC")
	a := &simio.Alignment{Pos: 5, Cigar: mustCigar(t, "2S3M1I2M2D1M"), Seq: seq, Reverse: true}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	rg := &Region{Start: 0, End: 20, Alignments: []*simio.Alignment{a}}
	counts, _ := CountRegion(rg)
	// Matched ref positions: 5,6,7 (ACG), 8,9 (TA), 12 (C); 10,11 deleted.
	for _, pos := range []int{5, 6, 7, 8, 9, 12} {
		if counts[pos].Depth() != 1 {
			t.Errorf("position %d depth %d, want 1", pos, counts[pos].Depth())
		}
		if counts[pos].Base[1][seqBaseAt(t, a, pos)] != 1 {
			t.Errorf("position %d reverse-strand base not counted", pos)
		}
	}
	if counts[8].Ins[1] != 1 {
		t.Errorf("insertion not recorded at position 8: %+v", counts[8])
	}
	if counts[10].Del[1] != 1 || counts[11].Del[1] != 1 {
		t.Error("deletion positions not recorded")
	}
	if counts[4].Depth() != 0 {
		t.Error("soft clip leaked into counts")
	}
}

// seqBaseAt recovers which read base was aligned to ref position pos.
func seqBaseAt(t *testing.T, a *simio.Alignment, pos int) genome.Base {
	t.Helper()
	refPos, readPos := a.Pos, 0
	for _, e := range a.Cigar {
		switch e.Op {
		case simio.CigarMatch:
			for i := 0; i < e.Len; i++ {
				if refPos == pos {
					return a.Seq[readPos]
				}
				refPos++
				readPos++
			}
		case simio.CigarIns, simio.CigarSoftClip:
			readPos += e.Len
		case simio.CigarDel:
			refPos += e.Len
		}
	}
	t.Fatalf("position %d not aligned", pos)
	return 0
}

func TestRegionClipping(t *testing.T) {
	seq := genome.MustFromString("AAAAAAAAAA")
	a := &simio.Alignment{Pos: 95, Cigar: mustCigar(t, "10M"), Seq: seq}
	rg := &Region{Start: 100, End: 110, Alignments: []*simio.Alignment{a}}
	counts, _ := CountRegion(rg)
	// Only positions 100-104 fall inside the window.
	var depth uint32
	for i := range counts {
		depth += counts[i].Depth()
	}
	if depth != 5 {
		t.Errorf("clipped depth %d, want 5", depth)
	}
}

func TestSplitRegionsAssignsOverlaps(t *testing.T) {
	a1 := &simio.Alignment{Pos: 50, Cigar: mustCigar(t, "100M"), Seq: make(genome.Seq, 100)}
	a2 := &simio.Alignment{Pos: 950, Cigar: mustCigar(t, "100M"), Seq: make(genome.Seq, 100)} // spans two windows
	regions := SplitRegions(2000, []*simio.Alignment{a1, a2}, 1000)
	if len(regions) != 2 {
		t.Fatalf("got %d regions", len(regions))
	}
	if len(regions[0].Alignments) != 2 {
		t.Errorf("region 0 has %d alignments, want 2", len(regions[0].Alignments))
	}
	if len(regions[1].Alignments) != 1 {
		t.Errorf("region 1 has %d alignments, want 1 (boundary-spanning)", len(regions[1].Alignments))
	}
}

func TestSimulatedPileupRecoversReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ref := genome.Random(rng, 3000)
	cfg := simio.DefaultAlignSim()
	cfg.MeanReadLen = 800
	alns := simio.SimulateAlignments(rng, ref, 200, cfg)
	for _, a := range alns {
		if err := a.Validate(); err != nil {
			t.Fatalf("simulated alignment invalid: %v", err)
		}
	}
	regions := SplitRegions(len(ref), alns, 1000)
	correct, covered := 0, 0
	for _, rg := range regions {
		counts, _ := CountRegion(rg)
		for p := range counts {
			if counts[p].Depth() < 5 {
				continue
			}
			covered++
			if b, _, ok := counts[p].MajorityBase(); ok && b == ref[rg.Start+p] {
				correct++
			}
		}
	}
	if covered < 2000 {
		t.Fatalf("only %d positions covered", covered)
	}
	acc := float64(correct) / float64(covered)
	if acc < 0.95 {
		t.Errorf("majority-base accuracy %.3f below 0.95", acc)
	}
}

func TestRunKernelDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ref := genome.Random(rng, 5000)
	alns := simio.SimulateAlignments(rng, ref, 100, simio.DefaultAlignSim())
	regions := SplitRegions(len(ref), alns, 1000)
	r1 := RunKernel(regions, 1)
	r4 := RunKernel(regions, 4)
	if r1.TotalDepth != r4.TotalDepth || r1.ReadLookups != r4.ReadLookups {
		t.Errorf("threading changed results: %+v vs %+v", r1, r4)
	}
	if r1.Regions != len(regions) || r1.TaskStats.Count() != len(regions) {
		t.Error("region bookkeeping wrong")
	}
	if r1.Positions != 5000 {
		t.Errorf("positions %d, want 5000", r1.Positions)
	}
}

func TestMajorityBaseEmpty(t *testing.T) {
	var c Counts
	if _, _, ok := c.MajorityBase(); ok {
		t.Error("empty counts reported a majority base")
	}
}
