package pileup

import (
	"math/rand"
	"testing"

	"repro/internal/genome"
	"repro/internal/simio"
)

func benchRegion(b *testing.B, pack, hifi bool) *Region {
	b.Helper()
	rng := rand.New(rand.NewSource(99))
	ref := genome.Random(rng, 20_000)
	cfg := simio.DefaultAlignSim()
	cfg.MeanReadLen = 800
	if hifi {
		cfg.SubRate, cfg.InsRate, cfg.DelRate = 0.001, 0.0005, 0.0005
	}
	alns := simio.SimulateAlignments(rng, ref, 200, cfg)
	if !pack {
		for i, a := range alns {
			c := *a
			c = simio.Alignment{ReadName: c.ReadName, RefName: c.RefName, Pos: c.Pos,
				MapQ: c.MapQ, Cigar: c.Cigar, Seq: c.Seq, Qual: c.Qual, Reverse: c.Reverse}
			alns[i] = &c
		}
	}
	return SplitRegions(len(ref), alns, 20_000)[0]
}

func BenchmarkCountRegion(b *testing.B) {
	for _, hifi := range []bool{false, true} {
		name := "ont"
		if hifi {
			name = "hifi"
		}
		b.Run(name+"/scalar", func(b *testing.B) {
			rg := benchRegion(b, false, hifi)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				CountRegionScalar(rg)
			}
		})
		b.Run(name+"/clamped-bytes", func(b *testing.B) {
			rg := benchRegion(b, false, hifi) // unpacked records: clamped byte fallback
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				CountRegion(rg)
			}
		})
		b.Run(name+"/packed", func(b *testing.B) {
			rg := benchRegion(b, true, hifi)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				CountRegion(rg)
			}
		})
	}
}
