// Package pileup implements the pileup counting kernel from Medaka:
// walking the CIGAR of every read aligned to a reference region and
// accumulating per-position, per-strand counts of bases, insertions
// and deletions — the tensor-precursor a long-read neural variant
// caller consumes. Tasks are 100-kilobase reference regions processed
// on independent threads, the paper's inter-task parallel version.
package pileup

import (
	"context"

	"repro/internal/faultinject"
	"repro/internal/genome"
	"repro/internal/parallel"
	"repro/internal/perf"
	"repro/internal/simio"
)

// RegionSize is the paper's per-task region width in bases.
const RegionSize = 100_000

// Counts holds the pileup for one reference position: base counts per
// strand (0 = forward, 1 = reverse) plus insertion/deletion support.
type Counts struct {
	Base [2][4]uint32
	Ins  [2]uint32
	Del  [2]uint32
}

// Depth returns the total base coverage at the position.
func (c *Counts) Depth() uint32 {
	var d uint32
	for s := 0; s < 2; s++ {
		for b := 0; b < 4; b++ {
			d += c.Base[s][b]
		}
	}
	return d
}

// Region is one counting task: a reference window plus the alignments
// overlapping it.
type Region struct {
	Start, End int
	Alignments []*simio.Alignment
}

// CountRegion walks every alignment's CIGAR and fills the window's
// pileup. It returns the counts (End-Start positions) and the number
// of alignment records processed.
func CountRegion(rg *Region) ([]Counts, int) {
	counts := make([]Counts, rg.End-rg.Start)
	for _, a := range rg.Alignments {
		strand := 0
		if a.Reverse {
			strand = 1
		}
		refPos := a.Pos
		readPos := 0
		for _, e := range a.Cigar {
			switch e.Op {
			case simio.CigarMatch:
				for i := 0; i < e.Len; i++ {
					if refPos >= rg.Start && refPos < rg.End {
						b := a.Seq[readPos] & 3
						counts[refPos-rg.Start].Base[strand][b]++
					}
					refPos++
					readPos++
				}
			case simio.CigarIns:
				if refPos >= rg.Start && refPos < rg.End {
					counts[refPos-rg.Start].Ins[strand]++
				}
				readPos += e.Len
			case simio.CigarDel:
				for i := 0; i < e.Len; i++ {
					if refPos >= rg.Start && refPos < rg.End {
						counts[refPos-rg.Start].Del[strand]++
					}
					refPos++
				}
			case simio.CigarSoftClip:
				readPos += e.Len
			}
		}
	}
	return counts, len(rg.Alignments)
}

// SplitRegions partitions [0, refLen) into RegionSize windows and
// assigns each alignment to every window it overlaps.
func SplitRegions(refLen int, alignments []*simio.Alignment, regionSize int) []*Region {
	if regionSize <= 0 {
		regionSize = RegionSize
	}
	n := (refLen + regionSize - 1) / regionSize
	regions := make([]*Region, n)
	for i := range regions {
		start := i * regionSize
		end := start + regionSize
		if end > refLen {
			end = refLen
		}
		regions[i] = &Region{Start: start, End: end}
	}
	for _, a := range alignments {
		first := a.Pos / regionSize
		last := (a.End() - 1) / regionSize
		if last >= n {
			last = n - 1
		}
		for r := first; r <= last && r >= 0; r++ {
			regions[r].Alignments = append(regions[r].Alignments, a)
		}
	}
	return regions
}

// MajorityBase returns the most supported base at a position and its
// count, combining strands; ok is false at zero depth.
func (c *Counts) MajorityBase() (base genome.Base, count uint32, ok bool) {
	for b := 0; b < 4; b++ {
		n := c.Base[0][b] + c.Base[1][b]
		if n > count {
			count = n
			base = genome.Base(b)
			ok = true
		}
	}
	return
}

// KernelResult aggregates a pileup benchmark execution.
type KernelResult struct {
	Regions     int
	ReadLookups uint64 // alignment records parsed (Table III unit)
	Positions   uint64
	TotalDepth  uint64
	TaskStats   *perf.TaskStats
	Counters    perf.Counters
}

// RunKernel counts every region with dynamic scheduling.
// It panics on failure; cancellable callers use RunKernelCtx.
func RunKernel(regions []*Region, threads int) KernelResult {
	res, err := RunKernelCtx(context.Background(), regions, threads)
	if err != nil {
		panic(err)
	}
	return res
}

// RunKernelCtx is RunKernel with cooperative cancellation and a fault
// trip-point per region.
func RunKernelCtx(ctx context.Context, regions []*Region, threads int) (KernelResult, error) {
	if threads <= 0 {
		threads = 1
	}
	type ws struct {
		lookups   uint64
		positions uint64
		depth     uint64
		stats     *perf.TaskStats
		_         perf.CacheLinePad // workers update these per task; keep shards on private cache lines
	}
	workers := make([]ws, threads)
	for i := range workers {
		workers[i].stats = perf.NewTaskStats("read lookups")
	}
	err := parallel.ForEachCtxErr(ctx, len(regions), threads, func(tctx context.Context, w, i int) error {
		if err := faultinject.Point(tctx); err != nil {
			return err
		}
		counts, reads := CountRegion(regions[i])
		workers[w].lookups += uint64(reads)
		workers[w].positions += uint64(len(counts))
		for p := range counts {
			workers[w].depth += uint64(counts[p].Depth())
		}
		workers[w].stats.Observe(float64(reads))
		return nil
	})
	if err != nil {
		return KernelResult{}, err
	}
	res := KernelResult{Regions: len(regions), TaskStats: perf.NewTaskStats("read lookups")}
	for i := range workers {
		res.ReadLookups += workers[i].lookups
		res.Positions += workers[i].positions
		res.TotalDepth += workers[i].depth
		res.TaskStats.Merge(workers[i].stats)
	}
	// Random access into alignment records dominates; per counted base
	// the original parses CIGAR state, decodes packed bases and
	// updates counters (~25 instructions in htslib-based code).
	res.Counters.Add(perf.Load, res.TotalDepth*7)
	res.Counters.Add(perf.Store, res.TotalDepth*2)
	res.Counters.Add(perf.IntALU, res.TotalDepth*11)
	res.Counters.Add(perf.Branch, res.TotalDepth*5)
	res.Counters.Add(perf.Other, res.ReadLookups)
	return res, nil
}
