// Package pileup implements the pileup counting kernel from Medaka:
// walking the CIGAR of every read aligned to a reference region and
// accumulating per-position, per-strand counts of bases, insertions
// and deletions — the tensor-precursor a long-read neural variant
// caller consumes. Tasks are 100-kilobase reference regions processed
// on independent threads, the paper's inter-task parallel version.
package pileup

import (
	"context"
	"unsafe"

	"repro/internal/faultinject"
	"repro/internal/genome"
	"repro/internal/parallel"
	"repro/internal/perf"
	"repro/internal/seq2"
	"repro/internal/simio"
)

// RegionSize is the paper's per-task region width in bases.
const RegionSize = 100_000

// Counts holds the pileup for one reference position: base counts per
// strand (0 = forward, 1 = reverse) plus insertion/deletion support.
type Counts struct {
	Base [2][4]uint32
	Ins  [2]uint32
	Del  [2]uint32
}

// Depth returns the total base coverage at the position.
func (c *Counts) Depth() uint32 {
	var d uint32
	for s := 0; s < 2; s++ {
		for b := 0; b < 4; b++ {
			d += c.Base[s][b]
		}
	}
	return d
}

// Region is one counting task: a reference window plus the alignments
// overlapping it.
type Region struct {
	Start, End int
	Alignments []*simio.Alignment
}

// CountRegion walks every alignment's CIGAR and fills the window's
// pileup. It returns the counts (End-Start positions) and the number
// of alignment records processed.
//
// Match runs — the overwhelming bulk of real CIGARs — take a packed
// fast path: the run is clamped to the window once (no per-base
// window branch), and when the record carries its 2-bit packed form
// (simio.Alignment.Pack; real BAM records are packed natively) the
// counters are bumped four bases per word chunk — one word load per
// 32 bases, two shifts, a mask and an increment per base, no per-base
// bounds checks. Runs below the word-walk cutover take the SWAR
// gather (countMatchRunShort): the whole run is spliced out of its one
// or two packed words into a single register first. Very short runs —
// and every run of an unpacked record — use the byte walk on the
// clamped run. The two thresholds are per-host tunables measured by a
// startup microprobe (see tuning.go); the dispatch is pure routing, so
// results are exactly CountRegionScalar's for any threshold setting
// (integer counters, no rounding to tolerate), which the differential
// tests assert across forced policies.
func CountRegion(rg *Region) ([]Counts, int) {
	wordMin, shortMin := wordRunMin.Get(), shortRunMin.Get()
	counts := make([]Counts, rg.End-rg.Start)
	for _, a := range rg.Alignments {
		strand := 0
		if a.Reverse {
			strand = 1
		}
		packed := a.PackedSeq()
		refPos := a.Pos
		readPos := 0
		for _, e := range a.Cigar {
			switch e.Op {
			case simio.CigarMatch:
				// Clamp the run to [Start, End) once.
				lo, hi := refPos, refPos+e.Len
				if lo < rg.Start {
					lo = rg.Start
				}
				if hi > rg.End {
					hi = rg.End
				}
				if lo < hi {
					dst := counts[lo-rg.Start : lo-rg.Start+(hi-lo)]
					q0 := readPos + (lo - refPos)
					switch {
					case packed != nil && hi-lo >= wordMin:
						countMatchRunPacked(dst, packed, q0, strand)
					case packed != nil && hi-lo >= shortMin:
						countMatchRunShort(dst, packed, q0, strand)
					default:
						run := a.Seq[q0 : q0+(hi-lo)]
						for i := range dst {
							dst[i].Base[strand][run[i]&3]++
						}
					}
				}
				refPos += e.Len
				readPos += e.Len
			case simio.CigarIns:
				if refPos >= rg.Start && refPos < rg.End {
					counts[refPos-rg.Start].Ins[strand]++
				}
				readPos += e.Len
			case simio.CigarDel:
				for i := 0; i < e.Len; i++ {
					if refPos >= rg.Start && refPos < rg.End {
						counts[refPos-rg.Start].Del[strand]++
					}
					refPos++
				}
			case simio.CigarSoftClip:
				readPos += e.Len
			}
		}
	}
	return counts, len(rg.Alignments)
}

// packedRunCutover is the hard capacity bound of the short-run SWAR
// gather: a run it handles must fit one 64-bit register after the
// phase shift, so at most 31 bases. It caps the measured wordRunMin
// tunable; the actual per-host dispatch thresholds live in tuning.go.
// Short runs dominate noisy long-read CIGARs; long runs dominate
// accurate (HiFi-like) ones — which of the three walkers wins at a
// given length is a property of the host, so it is measured, not
// assumed (the assumed constant is what let the pileup/count speedup
// drift silently across BENCH_PR4 -> PR5).
const packedRunCutover = 32

// countsStride is the byte distance between consecutive positions'
// counters, used by the packed walk's pointer stride.
const countsStride = unsafe.Sizeof(Counts{})

// countMatchRunPacked accumulates one clamped match run into dst from
// the read's pre-packed 2-bit words, starting at read base q0. The
// first (possibly partial) word is shifted into position, then each
// word chunk bumps four counters at a time. The counter address is a
// strided pointer walk (the lanes.Load4U idiom): dst's strand-selected
// column is indexed by base code directly, so the per-base work is a
// shift, a mask and a memory increment — no per-base bounds checks,
// slice-header math or byte loads. dst is derived from the counts
// slice the caller just allocated, and i stays below len(dst), so the
// pointer never leaves the allocation.
func countMatchRunPacked(dst []Counts, words []uint64, q0, strand int) {
	n := len(dst)
	c := unsafe.Pointer(&dst[0].Base[strand][0])
	wi := q0 / seq2.BasesPerWord
	w := words[wi] >> (2 * uint(q0%seq2.BasesPerWord))
	rem := seq2.BasesPerWord - q0%seq2.BasesPerWord // bases left in w
	i := 0
	for i < n {
		nb := rem
		if nb > n-i {
			nb = n - i
		}
		i += nb
		for ; nb >= 4; nb -= 4 {
			*(*uint32)(unsafe.Add(c, uintptr(w&3)*4))++
			*(*uint32)(unsafe.Add(c, countsStride+uintptr(w>>2&3)*4))++
			*(*uint32)(unsafe.Add(c, 2*countsStride+uintptr(w>>4&3)*4))++
			*(*uint32)(unsafe.Add(c, 3*countsStride+uintptr(w>>6&3)*4))++
			c = unsafe.Add(c, 4*countsStride)
			w >>= 8
		}
		for ; nb > 0; nb-- {
			*(*uint32)(unsafe.Add(c, uintptr(w&3)*4))++
			c = unsafe.Add(c, countsStride)
			w >>= 2
		}
		if i < n {
			wi++
			w = words[wi]
			rem = seq2.BasesPerWord
		}
	}
}

// countMatchRunShort handles clamped match runs below the cutover when
// the packed form is available. A run of fewer than 32 bases is at
// most 62 bits of 2-bit codes, so a SWAR gather splices it out of its
// one or two packed words into a single register up front; the counter
// loop then peels two bits per base off that register with the same
// strided pointer walk as the long-run path — no per-base byte loads,
// no word/phase bookkeeping inside the loop. This is the short-run
// regime noisy long-read CIGARs live in (mean match run well under the
// cutover), which previously fell back to the byte walk.
func countMatchRunShort(dst []Counts, words []uint64, q0, strand int) {
	n := len(dst) // < packedRunCutover <= 32
	c := unsafe.Pointer(&dst[0].Base[strand][0])
	phase := q0 % seq2.BasesPerWord
	sh := 2 * uint(phase)
	w := words[q0/seq2.BasesPerWord] >> sh
	if seq2.BasesPerWord-phase < n {
		// The run straddles a word boundary; sh > 0 here (a phase-0 run
		// of < 32 bases fits its word), so 64-sh is a valid shift.
		w |= words[q0/seq2.BasesPerWord+1] << (64 - sh)
	}
	i := 0
	for ; i+4 <= n; i += 4 {
		*(*uint32)(unsafe.Add(c, uintptr(w&3)*4))++
		*(*uint32)(unsafe.Add(c, countsStride+uintptr(w>>2&3)*4))++
		*(*uint32)(unsafe.Add(c, 2*countsStride+uintptr(w>>4&3)*4))++
		*(*uint32)(unsafe.Add(c, 3*countsStride+uintptr(w>>6&3)*4))++
		c = unsafe.Add(c, 4*countsStride)
		w >>= 8
	}
	for ; i < n; i++ {
		*(*uint32)(unsafe.Add(c, uintptr(w&3)*4))++
		c = unsafe.Add(c, countsStride)
		w >>= 2
	}
}

// CountRegionScalar is the original per-base CIGAR walker, kept as
// the differential reference for CountRegion's packed fast path and
// as the baseline side of the gbench-bench pileup pair.
func CountRegionScalar(rg *Region) ([]Counts, int) {
	counts := make([]Counts, rg.End-rg.Start)
	for _, a := range rg.Alignments {
		strand := 0
		if a.Reverse {
			strand = 1
		}
		refPos := a.Pos
		readPos := 0
		for _, e := range a.Cigar {
			switch e.Op {
			case simio.CigarMatch:
				for i := 0; i < e.Len; i++ {
					if refPos >= rg.Start && refPos < rg.End {
						b := a.Seq[readPos] & 3
						counts[refPos-rg.Start].Base[strand][b]++
					}
					refPos++
					readPos++
				}
			case simio.CigarIns:
				if refPos >= rg.Start && refPos < rg.End {
					counts[refPos-rg.Start].Ins[strand]++
				}
				readPos += e.Len
			case simio.CigarDel:
				for i := 0; i < e.Len; i++ {
					if refPos >= rg.Start && refPos < rg.End {
						counts[refPos-rg.Start].Del[strand]++
					}
					refPos++
				}
			case simio.CigarSoftClip:
				readPos += e.Len
			}
		}
	}
	return counts, len(rg.Alignments)
}

// SplitRegions partitions [0, refLen) into RegionSize windows and
// assigns each alignment to every window it overlaps.
func SplitRegions(refLen int, alignments []*simio.Alignment, regionSize int) []*Region {
	if regionSize <= 0 {
		regionSize = RegionSize
	}
	n := (refLen + regionSize - 1) / regionSize
	regions := make([]*Region, n)
	for i := range regions {
		start := i * regionSize
		end := start + regionSize
		if end > refLen {
			end = refLen
		}
		regions[i] = &Region{Start: start, End: end}
	}
	for _, a := range alignments {
		first := a.Pos / regionSize
		last := (a.End() - 1) / regionSize
		if last >= n {
			last = n - 1
		}
		for r := first; r <= last && r >= 0; r++ {
			regions[r].Alignments = append(regions[r].Alignments, a)
		}
	}
	return regions
}

// MajorityBase returns the most supported base at a position and its
// count, combining strands; ok is false at zero depth.
func (c *Counts) MajorityBase() (base genome.Base, count uint32, ok bool) {
	for b := 0; b < 4; b++ {
		n := c.Base[0][b] + c.Base[1][b]
		if n > count {
			count = n
			base = genome.Base(b)
			ok = true
		}
	}
	return
}

// KernelResult aggregates a pileup benchmark execution.
type KernelResult struct {
	Regions     int
	ReadLookups uint64 // alignment records parsed (Table III unit)
	Positions   uint64
	TotalDepth  uint64
	TaskStats   *perf.TaskStats
	Counters    perf.Counters
}

// RunKernel counts every region with dynamic scheduling.
// It panics on failure; cancellable callers use RunKernelCtx.
func RunKernel(regions []*Region, threads int) KernelResult {
	res, err := RunKernelCtx(context.Background(), regions, threads)
	if err != nil {
		panic(err)
	}
	return res
}

// RunKernelCtx is RunKernel with cooperative cancellation and a fault
// trip-point per region.
func RunKernelCtx(ctx context.Context, regions []*Region, threads int) (KernelResult, error) {
	if threads <= 0 {
		threads = 1
	}
	type ws struct {
		lookups   uint64
		positions uint64
		depth     uint64
		stats     *perf.TaskStats
		_         perf.CacheLinePad // workers update these per task; keep shards on private cache lines
	}
	workers := make([]ws, threads)
	for i := range workers {
		workers[i].stats = perf.NewTaskStats("read lookups")
	}
	err := parallel.ForEachCtxErr(ctx, len(regions), threads, func(tctx context.Context, w, i int) error {
		if err := faultinject.Point(tctx); err != nil {
			return err
		}
		counts, reads := CountRegion(regions[i])
		workers[w].lookups += uint64(reads)
		workers[w].positions += uint64(len(counts))
		for p := range counts {
			workers[w].depth += uint64(counts[p].Depth())
		}
		workers[w].stats.Observe(float64(reads))
		return nil
	})
	if err != nil {
		return KernelResult{}, err
	}
	res := KernelResult{Regions: len(regions), TaskStats: perf.NewTaskStats("read lookups")}
	for i := range workers {
		res.ReadLookups += workers[i].lookups
		res.Positions += workers[i].positions
		res.TotalDepth += workers[i].depth
		res.TaskStats.Merge(workers[i].stats)
	}
	// Random access into alignment records dominates; per counted base
	// the original parses CIGAR state, decodes packed bases and
	// updates counters (~25 instructions in htslib-based code).
	res.Counters.Add(perf.Load, res.TotalDepth*7)
	res.Counters.Add(perf.Store, res.TotalDepth*2)
	res.Counters.Add(perf.IntALU, res.TotalDepth*11)
	res.Counters.Add(perf.Branch, res.TotalDepth*5)
	res.Counters.Add(perf.Other, res.ReadLookups)
	return res, nil
}
