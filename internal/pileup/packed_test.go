package pileup

import (
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/genome"
	"repro/internal/simio"
)

// TestCountRegionPackedDifferential pins the packed match-run fast
// path to the per-base reference walker. Counts are integers — there
// is no tolerance here, every counter must agree exactly — across
// simulated alignments whose reads straddle region boundaries in both
// directions and mix indels and clips into the CIGARs.
func TestCountRegionPackedDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		ref := genome.Random(rng, 2000+rng.Intn(3000))
		cfg := simio.DefaultAlignSim()
		cfg.MeanReadLen = 60 + rng.Intn(900)
		alns := simio.SimulateAlignments(rng, ref, 40+rng.Intn(120), cfg)
		regionSize := 300 + rng.Intn(1500)
		for _, rg := range SplitRegions(len(ref), alns, regionSize) {
			got, gotReads := CountRegion(rg)
			want, wantReads := CountRegionScalar(rg)
			if gotReads != wantReads {
				t.Fatalf("trial %d: reads = %d, want %d", trial, gotReads, wantReads)
			}
			for p := range want {
				if got[p] != want[p] {
					t.Fatalf("trial %d region [%d,%d) position %d: %+v, want %+v",
						trial, rg.Start, rg.End, rg.Start+p, got[p], want[p])
				}
			}
		}
	}
}

// TestCountRegionPackedRunLengths sweeps match-run lengths across
// 32-base word boundaries, with the runs placed to straddle the
// window's left edge, right edge, both, or neither, and soft clips
// shifting the run to every in-word start phase. Both the packed walk
// and the unpacked byte fallback are pinned to the reference.
func TestCountRegionPackedRunLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, runLen := range []int{1, 4, 15, 16, 17, 31, 32, 33, 64, 65, 127} {
		for _, clip := range []int{0, 1, 7, 31, 32, 45} {
			seq := genome.Random(rng, clip+runLen)
			cig := mustCigar(t, clipCigar(clip, runLen))
			for _, pos := range []int{95, 100, 150 - runLen/2, 200 - runLen, 197} {
				for _, packed := range []bool{false, true} {
					a := &simio.Alignment{Pos: pos, Cigar: cig, Seq: seq, Reverse: runLen%2 == 0}
					if packed {
						a.Pack()
					}
					rg := &Region{Start: 100, End: 200, Alignments: []*simio.Alignment{a}}
					got, _ := CountRegion(rg)
					want, _ := CountRegionScalar(rg)
					for p := range want {
						if got[p] != want[p] {
							t.Fatalf("runLen %d clip %d pos %d packed %v position %d: %+v, want %+v",
								runLen, clip, pos, packed, rg.Start+p, got[p], want[p])
						}
					}
				}
			}
		}
	}
}

// TestCountRegionShortRunExhaustive drives the short-run SWAR gather
// through every (length, start-phase) pair it can see: all run lengths
// below the cutover crossed with every in-word phase, including every
// phase that straddles a packed word boundary. Each case is pinned
// exactly to the per-base reference.
func TestCountRegionShortRunExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	seq := genome.Random(rng, 96)
	for runLen := 1; runLen < packedRunCutover; runLen++ {
		for phase := 0; phase < 32; phase++ {
			cig := mustCigar(t, clipCigar(phase, runLen))
			a := &simio.Alignment{Pos: 100, Cigar: cig, Seq: seq[:phase+runLen], Reverse: phase%2 == 1}
			a.Pack()
			rg := &Region{Start: 100, End: 200, Alignments: []*simio.Alignment{a}}
			got, _ := CountRegion(rg)
			want, _ := CountRegionScalar(rg)
			for p := range want {
				if got[p] != want[p] {
					t.Fatalf("runLen %d phase %d position %d: %+v, want %+v",
						runLen, phase, rg.Start+p, got[p], want[p])
				}
			}
		}
	}
}

// TestCountRegionForcedPolicies re-runs the run-length sweep with the
// dispatch thresholds pinned to each extreme, so the byte walk, the
// short gather, and the word walk each cover the whole short regime
// regardless of what the microprobe measures on the test host. The
// thresholds are pure dispatch policy: results must be identical.
func TestCountRegionForcedPolicies(t *testing.T) {
	policies := []struct {
		name        string
		short, word int
	}{
		{"byte-only-below-cutover", packedRunCutover, packedRunCutover},
		{"gather-below-cutover", 0, packedRunCutover},
		{"word-everywhere", 0, 1},
	}
	rng := rand.New(rand.NewSource(11))
	seq := genome.Random(rng, 96)
	for _, pol := range policies {
		t.Run(pol.name, func(t *testing.T) {
			defer shortRunMin.Set(pol.short)()
			defer wordRunMin.Set(pol.word)()
			for runLen := 1; runLen < packedRunCutover; runLen += 3 {
				for phase := 0; phase < 32; phase += 5 {
					cig := mustCigar(t, clipCigar(phase, runLen))
					a := &simio.Alignment{Pos: 100, Cigar: cig, Seq: seq[:phase+runLen], Reverse: phase%2 == 1}
					a.Pack()
					rg := &Region{Start: 100, End: 200, Alignments: []*simio.Alignment{a}}
					got, _ := CountRegion(rg)
					want, _ := CountRegionScalar(rg)
					for p := range want {
						if got[p] != want[p] {
							t.Fatalf("runLen %d phase %d position %d: %+v, want %+v",
								runLen, phase, rg.Start+p, got[p], want[p])
						}
					}
				}
			}
		})
	}
}

// TestProbeRunThresholds checks the microprobe yields in-range,
// memoized thresholds. It makes no claim about WHICH walker wins —
// that is the point of measuring — only that the answer is usable.
func TestProbeRunThresholds(t *testing.T) {
	got := probeRunThresholds()
	if got.short < 0 || got.short > packedRunCutover {
		t.Fatalf("short threshold %d out of range", got.short)
	}
	if got.word < 1 || got.word > packedRunCutover {
		t.Fatalf("word threshold %d out of range", got.word)
	}
	if again := probeRunThresholds(); again != got {
		t.Fatalf("probe not memoized: %+v then %+v", got, again)
	}
}

func clipCigar(clip, runLen int) string {
	if clip == 0 {
		return strconv.Itoa(runLen) + "M"
	}
	return strconv.Itoa(clip) + "S" + strconv.Itoa(runLen) + "M"
}
