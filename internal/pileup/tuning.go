// Measured dispatch thresholds for CountRegion's match-run walkers.
//
// The three walkers — per-byte loop, short-run SWAR gather, packed
// word walk — trade setup cost against per-base cost differently, and
// which one wins at a given run length depends on the host (shift
// latency, store-port width, cache behavior). PR4 hardcoded the word
// walk's cutover at 32 and PR5 assumed the gather always beat the byte
// loop below it; the committed bench history shows the pileup/count
// speedup drifting 1.43x -> 1.13x across those PRs partly under those
// assumptions. Both thresholds are now measured by a one-shot
// microprobe (~1ms) on first use, per process:
//
//	run length >= wordRunMin  -> packed word walk
//	run length >= shortRunMin -> SWAR gather
//	otherwise                 -> byte walk
//
// The probe times the real walker functions on deterministic synthetic
// data; pin the result with GBENCH_TUNE_PILEUP_WORD_RUN_MIN /
// GBENCH_TUNE_PILEUP_SHORT_RUN_MIN or disable probing entirely with
// GBENCH_TUNE=off (defaults reproduce PR5's static policy).
package pileup

import (
	"sync"

	"repro/internal/tuning"
)

var (
	probeOnce sync.Once
	probed    runThresholds
)

var (
	wordRunMin = tuning.NewInt("pileup.word_run_min", packedRunCutover, 1, packedRunCutover,
		func() int { return probeRunThresholds().word })
	shortRunMin = tuning.NewInt("pileup.short_run_min", 0, 0, packedRunCutover,
		func() int { return probeRunThresholds().short })
)

// probeLengths are the run lengths the microprobe samples: the short
// regime a noisy long-read CIGAR lives in, plus the word-walk boundary.
var probeLengths = [...]int{4, 6, 8, 12, 16, 24, 31}

type runThresholds struct{ short, word int }

// probeRunThresholds times the three walkers at each probe length and
// derives the two dispatch thresholds: shortRunMin is the first length
// from which the gather stays ahead of the byte loop, wordRunMin the
// first length from which the word walk beats the gather (and the
// byte loop) through the rest of the short regime. "Stays ahead" is a
// suffix property, not a single crossing — microprobe timings wobble,
// and a threshold only makes sense if the winner keeps winning above
// it. Results are memoized so the two tunables share one measurement.
func probeRunThresholds() runThresholds {
	probeOnce.Do(func() { probed = measureRunThresholds() })
	return probed
}

// measureRunThresholds is the actual probe body; split out for tests.
func measureRunThresholds() runThresholds {
	// Deterministic 2-bit pattern; the walkers never branch on base
	// values, so any pattern exercises the full cost.
	words := make([]uint64, 4)
	seq := make([]byte, len(words)*32)
	for i := range seq {
		b := byte(i*7+3) & 3
		seq[i] = b
		words[i/32] |= uint64(b) << (2 * uint(i%32))
	}
	dst := make([]Counts, packedRunCutover)

	const reps, iters = 5, 200
	nLen := len(probeLengths)
	byteNs := make([]float64, nLen)
	shortNs := make([]float64, nLen)
	wordNs := make([]float64, nLen)
	for li, n := range probeLengths {
		d := dst[:n]
		// Phase 3 keeps the gather honest: a nonzero in-word phase is
		// the common case and costs the straddle branch.
		byteNs[li] = tuning.BestNs(reps, iters, func() {
			run := seq[3 : 3+n]
			for i := range d {
				d[i].Base[0][run[i]&3]++
			}
		})
		shortNs[li] = tuning.BestNs(reps, iters, func() { countMatchRunShort(d, words, 3, 0) })
		wordNs[li] = tuning.BestNs(reps, iters, func() { countMatchRunPacked(d, words, 3, 0) })
	}

	t := runThresholds{short: 0, word: packedRunCutover}
	// shortRunMin: smallest probed length from which the gather beats
	// the byte loop at every probed length above it too.
	for li := range probeLengths {
		if suffixWins(shortNs[li:], byteNs[li:]) {
			t.short = probeLengths[li]
			break
		}
		t.short = packedRunCutover // gather never sustains a win: byte walk everywhere below word
	}
	// wordRunMin: smallest probed length from which the word walk beats
	// whichever of the other two is dispatched there.
	for li := range probeLengths {
		other := shortNs
		if probeLengths[li] < t.short {
			other = byteNs
		}
		if suffixWins(wordNs[li:], other[li:]) {
			t.word = probeLengths[li]
			break
		}
	}
	return t
}

// suffixWins reports whether a is at least as fast as b at every
// sampled point.
func suffixWins(a, b []float64) bool {
	for i := range a {
		if a[i] > b[i] {
			return false
		}
	}
	return true
}
