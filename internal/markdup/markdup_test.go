package markdup

import (
	"math/rand"
	"testing"

	"repro/internal/genome"
	"repro/internal/simio"
)

func mkAln(t *testing.T, name string, pos int, reverse bool, qual byte) *simio.Alignment {
	t.Helper()
	cig, err := simio.ParseCigar("10M")
	if err != nil {
		t.Fatal(err)
	}
	q := make([]byte, 10)
	for i := range q {
		q[i] = qual
	}
	return &simio.Alignment{
		ReadName: name, RefName: "chr", Pos: pos, Reverse: reverse,
		Cigar: cig, Seq: make(genome.Seq, 10), Qual: q,
	}
}

func TestMarkIdentifiesDuplicates(t *testing.T) {
	alns := []*simio.Alignment{
		mkAln(t, "a", 100, false, 30),
		mkAln(t, "b", 100, false, 35), // duplicate of a, higher quality
		mkAln(t, "c", 100, true, 30),  // same span, other strand: not a dup
		mkAln(t, "d", 200, false, 30), // different position
		mkAln(t, "e", 100, false, 20), // another duplicate
	}
	res := Mark(alns)
	if res.Duplicates != 2 {
		t.Fatalf("marked %d duplicates, want 2", res.Duplicates)
	}
	// b has the highest quality: a and e point at b.
	if res.DuplicateOf[0] != 1 || res.DuplicateOf[4] != 1 {
		t.Errorf("representatives wrong: %v", res.DuplicateOf)
	}
	if res.DuplicateOf[1] != -1 || res.DuplicateOf[2] != -1 || res.DuplicateOf[3] != -1 {
		t.Errorf("non-duplicates flagged: %v", res.DuplicateOf)
	}
	if r := res.Rate(); r != 0.4 {
		t.Errorf("rate %v, want 0.4", r)
	}
}

func TestFilterKeepsRepresentatives(t *testing.T) {
	alns := []*simio.Alignment{
		mkAln(t, "a", 100, false, 30),
		mkAln(t, "b", 100, false, 35),
		mkAln(t, "c", 300, false, 30),
	}
	kept := Filter(alns)
	if len(kept) != 2 {
		t.Fatalf("kept %d, want 2", len(kept))
	}
	if kept[0].ReadName != "b" || kept[1].ReadName != "c" {
		t.Errorf("kept %s, %s", kept[0].ReadName, kept[1].ReadName)
	}
}

func TestGroupSizes(t *testing.T) {
	alns := []*simio.Alignment{
		mkAln(t, "a", 100, false, 30),
		mkAln(t, "b", 100, false, 30),
		mkAln(t, "c", 100, false, 30),
		mkAln(t, "d", 200, false, 30),
		mkAln(t, "e", 200, false, 30),
		mkAln(t, "f", 900, false, 30),
	}
	sizes := GroupSizes(alns)
	if len(sizes) != 2 || sizes[0] != 2 || sizes[1] != 3 {
		t.Errorf("group sizes %v, want [2 3]", sizes)
	}
}

func TestMarkSimulatedLibrary(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ref := genome.Random(rng, 10_000)
	cfg := simio.DefaultAlignSim()
	cfg.MeanReadLen = 300
	base := simio.SimulateAlignments(rng, ref, 100, cfg)
	// Duplicate 20 alignments (same coordinates, fresh quality).
	alns := append([]*simio.Alignment{}, base...)
	for i := 0; i < 20; i++ {
		orig := base[rng.Intn(len(base))]
		dup := *orig
		alns = append(alns, &dup)
	}
	res := Mark(alns)
	if res.Duplicates < 20 {
		t.Errorf("marked %d duplicates, planted 20", res.Duplicates)
	}
	kept := Filter(alns)
	if len(kept) != len(alns)-res.Duplicates {
		t.Errorf("filter kept %d, want %d", len(kept), len(alns)-res.Duplicates)
	}
}

func TestMarkEmpty(t *testing.T) {
	res := Mark(nil)
	if res.Total != 0 || res.Duplicates != 0 || res.Rate() != 0 {
		t.Error("empty input mismarked")
	}
}
