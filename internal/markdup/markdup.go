// Package markdup implements PCR/optical duplicate marking, the GATK
// Best Practices step between alignment and variant calling in the
// paper's reference-guided pipeline (Figure 1a). Reads whose fragments
// start and end at identical reference coordinates on the same strand
// are duplicates of one library molecule; all but the highest-quality
// copy are flagged so the variant callers do not double-count their
// evidence.
package markdup

import (
	"sort"

	"repro/internal/simio"
)

// fragmentKey identifies a library molecule by its alignment signature.
type fragmentKey struct {
	refName string
	start   int
	end     int
	reverse bool
}

// Result reports a marking pass.
type Result struct {
	Total      int
	Duplicates int
	// DuplicateOf[i] is the index of the retained representative for
	// alignment i, or -1 when i is itself retained.
	DuplicateOf []int
}

// sumQual scores a read for representative selection (samtools'
// criterion: highest base-quality sum wins).
func sumQual(a *simio.Alignment) int {
	s := 0
	for _, q := range a.Qual {
		s += int(q)
	}
	return s
}

// Mark identifies duplicates among alignments. The input order is
// preserved; the result maps each alignment to its representative.
func Mark(alignments []*simio.Alignment) Result {
	res := Result{
		Total:       len(alignments),
		DuplicateOf: make([]int, len(alignments)),
	}
	groups := make(map[fragmentKey][]int, len(alignments))
	for i, a := range alignments {
		res.DuplicateOf[i] = -1
		key := fragmentKey{
			refName: a.RefName,
			start:   a.Pos,
			end:     a.End(),
			reverse: a.Reverse,
		}
		groups[key] = append(groups[key], i)
	}
	for _, members := range groups {
		if len(members) < 2 {
			continue
		}
		// Retain the highest-quality copy; ties break by input order
		// for determinism.
		best := members[0]
		bestScore := sumQual(alignments[best])
		for _, idx := range members[1:] {
			if s := sumQual(alignments[idx]); s > bestScore {
				best, bestScore = idx, s
			}
		}
		for _, idx := range members {
			if idx != best {
				res.DuplicateOf[idx] = best
				res.Duplicates++
			}
		}
	}
	return res
}

// Filter returns the non-duplicate alignments in input order.
func Filter(alignments []*simio.Alignment) []*simio.Alignment {
	res := Mark(alignments)
	out := make([]*simio.Alignment, 0, len(alignments)-res.Duplicates)
	for i, a := range alignments {
		if res.DuplicateOf[i] < 0 {
			out = append(out, a)
		}
	}
	return out
}

// Rate estimates the library duplication rate from a marking result.
func (r Result) Rate() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Duplicates) / float64(r.Total)
}

// GroupSizes returns the sorted multiset of duplicate-group sizes
// (groups of size 1 excluded) — the histogram library-complexity
// estimators consume.
func GroupSizes(alignments []*simio.Alignment) []int {
	groups := make(map[fragmentKey]int, len(alignments))
	for _, a := range alignments {
		key := fragmentKey{a.RefName, a.Pos, a.End(), a.Reverse}
		groups[key]++
	}
	var sizes []int
	for _, n := range groups {
		if n > 1 {
			sizes = append(sizes, n)
		}
	}
	sort.Ints(sizes)
	return sizes
}
