package nnvariant

import (
	"math/rand"
	"testing"

	"repro/internal/genome"
	"repro/internal/simio"
)

func callWithBest(class int) Call {
	var c Call
	for i := range c.Genotype {
		c.Genotype[i] = 0.02
	}
	c.Genotype[class] = 0.8
	return c
}

func TestGenotypeClassOfRoundTrip(t *testing.T) {
	seen := map[int]bool{}
	for a := genome.Base(0); a < 4; a++ {
		for b := a; b < 4; b++ {
			cls := GenotypeClassOf(a, b)
			if seen[cls] {
				t.Fatalf("class %d assigned twice", cls)
			}
			seen[cls] = true
			pair := genotypePairs[cls]
			if pair[0] != a || pair[1] != b {
				t.Fatalf("class %d maps to %v, want {%d,%d}", cls, pair, a, b)
			}
			// Order independence.
			if GenotypeClassOf(b, a) != cls {
				t.Fatalf("GenotypeClassOf not symmetric for %d,%d", a, b)
			}
		}
	}
	if len(seen) != GenotypeClasses {
		t.Fatalf("covered %d classes, want %d", len(seen), GenotypeClasses)
	}
}

func TestDecodeHomRef(t *testing.T) {
	c := callWithBest(GenotypeClassOf(genome.A, genome.A))
	d := Decode(&c, genome.A)
	if d.IsVariant || d.Genotype != simio.HomRef {
		t.Errorf("AA on ref A decoded as %+v", d)
	}
}

func TestDecodeHet(t *testing.T) {
	c := callWithBest(GenotypeClassOf(genome.A, genome.T))
	d := Decode(&c, genome.A)
	if !d.IsVariant || d.Genotype != simio.Het || d.Alt != genome.T {
		t.Errorf("AT on ref A decoded as %+v", d)
	}
	// Same pair on ref T: alt should be A.
	d2 := Decode(&c, genome.T)
	if d2.Alt != genome.A || d2.Genotype != simio.Het {
		t.Errorf("AT on ref T decoded as %+v", d2)
	}
}

func TestDecodeHomAlt(t *testing.T) {
	c := callWithBest(GenotypeClassOf(genome.G, genome.G))
	d := Decode(&c, genome.A)
	if !d.IsVariant || d.Genotype != simio.HomAlt || d.Alt != genome.G {
		t.Errorf("GG on ref A decoded as %+v", d)
	}
	if d.Confidence != 0.8 {
		t.Errorf("confidence %v", d.Confidence)
	}
}

func TestEmitVCF(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ref := genome.Random(rng, 100)
	ref[10] = genome.A
	ref[20] = genome.C
	calls := []Call{
		callWithBest(GenotypeClassOf(genome.A, genome.A)), // hom ref: dropped
		callWithBest(GenotypeClassOf(genome.C, genome.T)), // het C/T on ref C
	}
	recs := EmitVCF("chr1", ref, []int{10, 20}, calls)
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	r := recs[0]
	if r.Pos != 20 || r.Genotype != simio.Het {
		t.Errorf("record %+v", r)
	}
	if r.Ref.String() != "C" || r.Alt.String() != "T" {
		t.Errorf("alleles %s>%s", r.Ref, r.Alt)
	}
	if r.Qual <= 0 {
		t.Error("no quality assigned")
	}
}

func TestEmitVCFOutOfRangePositions(t *testing.T) {
	ref := genome.MustFromString("ACGT")
	calls := []Call{callWithBest(GenotypeClassOf(genome.T, genome.T))}
	if recs := EmitVCF("c", ref, []int{99}, calls); len(recs) != 0 {
		t.Error("out-of-range position emitted")
	}
}
