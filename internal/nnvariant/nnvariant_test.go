package nnvariant

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/genome"
	"repro/internal/pileup"
	"repro/internal/simio"
)

// syntheticCounts builds a counts window with uniform coverage of the
// given reference and an optional het SNV at hetPos.
func syntheticCounts(ref genome.Seq, depth uint32, hetPos int, altBase genome.Base) []pileup.Counts {
	counts := make([]pileup.Counts, len(ref))
	for p := range counts {
		for d := uint32(0); d < depth; d++ {
			strand := int(d % 2)
			b := ref[p]
			if p == hetPos && d < depth/2 {
				b = altBase
			}
			counts[p].Base[strand][b]++
		}
	}
	return counts
}

func TestBuildTensorShapeAndNormalization(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ref := genome.Random(rng, 100)
	counts := syntheticCounts(ref, 20, -1, 0)
	x := BuildTensor(counts, 50)
	if x.Rows != Positions || x.Cols != Features {
		t.Fatalf("tensor shape (%d,%d)", x.Rows, x.Cols)
	}
	// At every position, the raw encoding (first 8 channels) sums to 1.
	for p := 0; p < Positions; p++ {
		var sum float64
		for ch := 0; ch < Channels; ch++ {
			sum += float64(x.At(p, ch))
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("position %d raw channels sum %v", p, sum)
		}
	}
}

func TestBuildTensorAltEncoding(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ref := genome.Random(rng, 100)
	ref[50] = genome.A
	counts := syntheticCounts(ref, 20, 50, genome.T)
	x := BuildTensor(counts, 50)
	centre := Positions / 2
	// The alternative-allele encoding (block d) should show support for
	// T (the minority allele) but none for the majority base.
	maj, _, _ := counts[50].MajorityBase()
	var altSupport float64
	for strand := 0; strand < 2; strand++ {
		altSupport += float64(x.At(centre, 3*Channels+strand*4+int(genome.T)))
	}
	if maj == genome.T {
		t.Skip("tie broke toward T; majority ambiguous")
	}
	if altSupport <= 0 {
		t.Error("alt encoding shows no support for the SNV allele")
	}
	var majSupport float64
	for strand := 0; strand < 2; strand++ {
		majSupport += float64(x.At(centre, 3*Channels+strand*4+int(maj)))
	}
	if majSupport != 0 {
		t.Error("alt encoding contains the majority base")
	}
}

func TestBuildTensorWindowClipping(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ref := genome.Random(rng, 40)
	counts := syntheticCounts(ref, 10, -1, 0)
	x := BuildTensor(counts, 2) // window extends before the region
	for p := 0; p < Flank-2; p++ {
		for c := 0; c < Features; c++ {
			if x.At(p, c) != 0 {
				t.Fatalf("out-of-region position %d nonzero", p)
			}
		}
	}
}

func TestPredictHeadsAreDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ref := genome.Random(rng, 100)
	counts := syntheticCounts(ref, 30, 50, genome.C)
	m := NewModel(7, DefaultConfig())
	call := m.Predict(BuildTensor(counts, 50))
	checkDist := func(name string, xs []float32) {
		var sum float64
		for _, v := range xs {
			if v < 0 || v > 1 {
				t.Fatalf("%s prob %v out of range", name, v)
			}
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-4 {
			t.Errorf("%s sums to %v", name, sum)
		}
	}
	checkDist("genotype", call.Genotype[:])
	checkDist("zygosity", call.Zygosity[:])
	checkDist("indel1", call.Indel1[:])
	checkDist("indel2", call.Indel2[:])
}

func TestPredictDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ref := genome.Random(rng, 100)
	counts := syntheticCounts(ref, 25, 50, genome.G)
	m := NewModel(9, DefaultConfig())
	a := m.Predict(BuildTensor(counts, 50))
	b := m.Predict(BuildTensor(counts, 50))
	if a != b {
		t.Error("prediction not deterministic")
	}
}

func TestSelectCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ref := genome.Random(rng, 200)
	ref[100] = genome.A
	counts := syntheticCounts(ref, 30, 100, genome.T)
	cands := SelectCandidates(counts, ref, 0, 10, 0.2)
	found := false
	for _, p := range cands {
		if p == 100 {
			found = true
		}
	}
	if !found {
		t.Error("het SNV position not selected")
	}
	// Clean positions should mostly be filtered out.
	if len(cands) > 5 {
		t.Errorf("%d candidates from one variant", len(cands))
	}
	// High depth threshold removes everything.
	if got := SelectCandidates(counts, ref, 0, 100, 0.2); len(got) != 0 {
		t.Error("depth filter failed")
	}
}

func TestEndToEndWithSimulatedAlignments(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ref := genome.Random(rng, 2000)
	alns := simio.SimulateAlignments(rng, ref, 150, simio.AlignSimConfig{
		MeanReadLen: 500, SubRate: 0.01, InsRate: 0.005, DelRate: 0.005,
		MeanQual: 30, RefName: "ref",
	})
	regions := pileup.SplitRegions(len(ref), alns, 1000)
	m := NewModel(11, DefaultConfig())
	var tasks []*Task
	for _, rg := range regions {
		counts, _ := pileup.CountRegion(rg)
		cands := SelectCandidates(counts, ref, rg.Start, 8, 0.25)
		tasks = append(tasks, &Task{Counts: counts, Candidates: cands})
	}
	r1 := RunKernel(m, tasks, 1)
	r4 := RunKernel(m, tasks, 4)
	if r1.Calls != r4.Calls || r1.MACs != r4.MACs {
		t.Errorf("threading changed results: %+v vs %+v", r1, r4)
	}
	if r1.Tasks != len(tasks) {
		t.Error("task bookkeeping wrong")
	}
	if r1.MACs != uint64(r1.Calls)*m.MACsPerCall() {
		t.Error("MAC accounting inconsistent")
	}
}

func TestMACsPerCallScales(t *testing.T) {
	small := NewModel(1, Config{Hidden: 8, Dense: 16})
	big := NewModel(1, Config{Hidden: 64, Dense: 96})
	if small.MACsPerCall() >= big.MACsPerCall() {
		t.Error("bigger model should cost more")
	}
}
