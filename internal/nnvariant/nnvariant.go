// Package nnvariant implements the neural-network variant calling
// kernel modelled on Clair: for each candidate reference position, a
// 33 x 8 x 4 tensor is built from the read pileup (16 flanking
// positions each side; 4 bases x 2 strands; 4 encodings — raw counts,
// insertion support, deletion support and alternative-allele support),
// then a stack of bidirectional LSTM layers with fully connected heads
// predicts genotype, zygosity and per-haplotype indel length. Weights
// are seeded-random: the suite benchmarks the computation, not calling
// accuracy.
package nnvariant

import (
	"context"
	"math/rand"

	"repro/internal/faultinject"
	"repro/internal/genome"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/perf"
	"repro/internal/pileup"
)

// Tensor geometry constants from the paper.
const (
	Flank     = 16
	Positions = 2*Flank + 1 // 33
	Channels  = 8           // 4 bases x 2 strands
	Encodings = 4
	Features  = Channels * Encodings // 32 per position
)

// Head output sizes.
const (
	GenotypeClasses = 10 // unordered base pairs AA..TT
	ZygosityClasses = 3  // hom-ref, het, hom-alt
	IndelClasses    = 6  // lengths 0-4, 5+
)

// BuildTensor encodes the pileup window centred at position center
// (indexing into counts, which covers one contiguous region) into a
// (33, 32) input tensor. Counts outside the region are zero.
func BuildTensor(counts []pileup.Counts, center int) *nn.Tensor {
	t := nn.NewTensor(Positions, Features)
	for p := 0; p < Positions; p++ {
		pos := center - Flank + p
		if pos < 0 || pos >= len(counts) {
			continue
		}
		c := &counts[pos]
		row := t.Row(p)
		depth := float32(c.Depth())
		if depth == 0 {
			continue
		}
		// Majority base defines "alternative" support at this position.
		maj, _, _ := c.MajorityBase()
		for strand := 0; strand < 2; strand++ {
			for b := 0; b < 4; b++ {
				ch := strand*4 + b
				raw := float32(c.Base[strand][b])
				row[ch] = raw / depth // (a) normalized raw counts
				// (b) insertion support shared across the strand's bases.
				row[Channels+ch] = float32(c.Ins[strand]) / depth
				// (c) deletion support.
				row[2*Channels+ch] = float32(c.Del[strand]) / depth
				// (d) alternative-allele support: counts excluding the
				// majority base.
				if genome.Base(b) != maj {
					row[3*Channels+ch] = raw / depth
				}
			}
		}
	}
	return t
}

// Model is the Clair-style network.
type Model struct {
	L1, L2   *nn.BiLSTM
	Shared   *nn.Dense
	Genotype *nn.Dense
	Zygosity *nn.Dense
	Indel1   *nn.Dense
	Indel2   *nn.Dense
	Hidden   int
}

// Config sets model geometry.
type Config struct {
	Hidden int // LSTM hidden units per direction
	Dense  int // shared dense width
}

// DefaultConfig is a scaled-down Clair geometry.
func DefaultConfig() Config { return Config{Hidden: 32, Dense: 48} }

// NewModel builds a model with seeded random weights.
func NewModel(seed int64, cfg Config) *Model {
	rng := rand.New(rand.NewSource(seed))
	return &Model{
		L1:       nn.NewBiLSTM(rng, Features, cfg.Hidden, "l1"),
		L2:       nn.NewBiLSTM(rng, 2*cfg.Hidden, cfg.Hidden, "l2"),
		Shared:   nn.NewDense(rng, 2*cfg.Hidden, cfg.Dense, nn.ReLU, "shared"),
		Genotype: nn.NewDense(rng, cfg.Dense, GenotypeClasses, nil, "gt"),
		Zygosity: nn.NewDense(rng, cfg.Dense, ZygosityClasses, nil, "zy"),
		Indel1:   nn.NewDense(rng, cfg.Dense, IndelClasses, nil, "i1"),
		Indel2:   nn.NewDense(rng, cfg.Dense, IndelClasses, nil, "i2"),
		Hidden:   cfg.Hidden,
	}
}

// Call holds the network's four probability heads for one position.
type Call struct {
	Genotype [GenotypeClasses]float32
	Zygosity [ZygosityClasses]float32
	Indel1   [IndelClasses]float32
	Indel2   [IndelClasses]float32
}

// Predict runs the network on one input tensor.
func (m *Model) Predict(x *nn.Tensor) Call {
	h := m.L1.Forward(x)
	h = m.L2.Forward(h)
	// Collapse the sequence dimension at the centre position, as Clair
	// summarizes around the candidate site.
	centre := nn.NewTensor(1, h.Cols)
	copy(centre.Data, h.Row(Positions/2))
	s := m.Shared.Forward(centre)
	var out Call
	copy(out.Genotype[:], m.Genotype.Forward(s).Softmax().Row(0))
	copy(out.Zygosity[:], m.Zygosity.Forward(s).Softmax().Row(0))
	copy(out.Indel1[:], m.Indel1.Forward(s).Softmax().Row(0))
	copy(out.Indel2[:], m.Indel2.Forward(s).Softmax().Row(0))
	return out
}

// MACsPerCall estimates the multiply-accumulate work of one prediction.
func (m *Model) MACsPerCall() uint64 {
	h := uint64(m.Hidden)
	perStep := 2 * (uint64(Features)*4*h + h*4*h) // two directions, layer 1
	perStep += 2 * (2*h*4*h + h*4*h)              // layer 2
	total := uint64(Positions) * perStep
	total += 2 * h * uint64(len(m.Shared.B))
	total += uint64(len(m.Shared.B)) * (GenotypeClasses + ZygosityClasses + 2*IndelClasses)
	return total
}

// Candidate is one position selected for calling.
type Candidate struct {
	Region int // region index
	Pos    int // offset within the region's counts
}

// SelectCandidates returns positions whose pileup shows enough depth
// and non-reference support to be worth calling, mirroring Clair's
// candidate filter.
func SelectCandidates(counts []pileup.Counts, ref genome.Seq, start int, minDepth uint32, minAltFrac float64) []int {
	var out []int
	for p := range counts {
		c := &counts[p]
		depth := c.Depth()
		if depth < minDepth {
			continue
		}
		refBase := ref[start+p]
		alt := uint32(0)
		for strand := 0; strand < 2; strand++ {
			for b := 0; b < 4; b++ {
				if genome.Base(b) != refBase {
					alt += c.Base[strand][b]
				}
			}
			alt += c.Ins[strand] + c.Del[strand]
		}
		if float64(alt) >= minAltFrac*float64(depth) {
			out = append(out, p)
		}
	}
	return out
}

// Task is one region's calling workload.
type Task struct {
	Counts     []pileup.Counts
	Candidates []int
}

// KernelResult aggregates an nn-variant benchmark execution.
type KernelResult struct {
	Tasks     int
	Calls     int
	MACs      uint64
	TaskStats *perf.TaskStats
	Counters  perf.Counters
}

// RunKernel predicts every candidate of every task with dynamic
// scheduling across regions. It panics on failure; cancellable
// callers use RunKernelCtx.
func RunKernel(m *Model, tasks []*Task, threads int) KernelResult {
	res, err := RunKernelCtx(context.Background(), m, tasks, threads)
	if err != nil {
		panic(err)
	}
	return res
}

// RunKernelCtx is RunKernel with cooperative cancellation and a fault
// trip-point per region task.
func RunKernelCtx(ctx context.Context, m *Model, tasks []*Task, threads int) (KernelResult, error) {
	if threads <= 0 {
		threads = 1
	}
	type ws struct {
		calls int
		macs  uint64
		stats *perf.TaskStats
		_     perf.CacheLinePad // workers update these per task; keep shards on private cache lines
	}
	workers := make([]ws, threads)
	for i := range workers {
		workers[i].stats = perf.NewTaskStats("MACs")
	}
	perCall := m.MACsPerCall()
	err := parallel.ForEachCtxErr(ctx, len(tasks), threads, func(tctx context.Context, w, i int) error {
		if err := faultinject.Point(tctx); err != nil {
			return err
		}
		var macs uint64
		for _, pos := range tasks[i].Candidates {
			x := BuildTensor(tasks[i].Counts, pos)
			m.Predict(x)
			macs += perCall
			workers[w].calls++
		}
		workers[w].macs += macs
		workers[w].stats.Observe(float64(macs))
		return nil
	})
	if err != nil {
		return KernelResult{}, err
	}
	res := KernelResult{Tasks: len(tasks), TaskStats: perf.NewTaskStats("MACs")}
	for i := range workers {
		res.Calls += workers[i].calls
		res.MACs += workers[i].macs
		res.TaskStats.Merge(workers[i].stats)
	}
	res.Counters.Add(perf.VecOp, res.MACs)
	res.Counters.Add(perf.FloatOp, res.MACs/3)
	res.Counters.Add(perf.Load, res.MACs/8)
	res.Counters.Add(perf.Store, res.MACs/32)
	res.Counters.Add(perf.Branch, res.MACs/128)
	return res, nil
}
