package nnvariant

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/genome"
	"repro/internal/pileup"
	"repro/internal/simio"
)

func TestCallRegionEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ref := genome.NewReference(rng, "chr", 3000, 0).Seq
	alt := ref.Clone()
	alt[1500] = genome.Complement(alt[1500])
	cfg := simio.AlignSimConfig{MeanReadLen: 500, SubRate: 0.003, InsRate: 0.001, DelRate: 0.001, MeanQual: 30, RefName: "chr"}
	alns := simio.SimulateAlignments(rng, ref, 40, cfg)
	alns = append(alns, simio.SimulateAlignments(rng, alt, 40, cfg)...)
	regions := pileup.SplitRegions(len(ref), alns, 3000)
	counts, _ := pileup.CountRegion(regions[0])

	m := NewModel(7, DefaultConfig())
	recs, evals := CallRegion(m, "chr", ref, 0, counts, 8, 0.25)
	if evals == 0 {
		t.Fatal("no candidates evaluated despite a planted het SNV")
	}
	// With random weights the genotype head is arbitrary, but every
	// emitted record must be structurally valid and land on a
	// candidate position.
	for _, r := range recs {
		if r.Chrom != "chr" || r.Pos < 0 || r.Pos >= len(ref) {
			t.Fatalf("bad record %+v", r)
		}
		if len(r.Ref) != 1 || len(r.Alt) != 1 {
			t.Fatalf("non-SNV alleles in %+v", r)
		}
		if r.Ref[0] == r.Alt[0] {
			t.Fatal("ref == alt")
		}
	}
	// Records serialize cleanly.
	var buf bytes.Buffer
	if err := simio.WriteVCF(&buf, "s", recs); err != nil {
		t.Fatal(err)
	}
}

func TestCallAllCoversRegions(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ref := genome.NewReference(rng, "chr", 6000, 0).Seq
	alt := ref.Clone()
	for _, p := range []int{1000, 3000, 5000} {
		alt[p] = genome.Complement(alt[p])
	}
	cfg := simio.AlignSimConfig{MeanReadLen: 600, SubRate: 0.003, InsRate: 0.001, DelRate: 0.001, MeanQual: 30, RefName: "chr"}
	alns := simio.SimulateAlignments(rng, ref, 50, cfg)
	alns = append(alns, simio.SimulateAlignments(rng, alt, 50, cfg)...)
	regions := pileup.SplitRegions(len(ref), alns, 2000)
	m := NewModel(9, DefaultConfig())
	_, evals := CallAll(m, "chr", ref, regions, 8, 0.25)
	if evals < 3 {
		t.Errorf("only %d evaluations across 3 planted variants", evals)
	}
}

func TestCallRegionNoCoverage(t *testing.T) {
	m := NewModel(3, DefaultConfig())
	ref := genome.MustFromString("ACGTACGTACGT")
	counts := make([]pileup.Counts, len(ref))
	recs, evals := CallRegion(m, "chr", ref, 0, counts, 8, 0.25)
	if recs != nil || evals != 0 {
		t.Error("empty pileup produced calls")
	}
}
