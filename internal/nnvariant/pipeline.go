package nnvariant

import (
	"repro/internal/genome"
	"repro/internal/pileup"
	"repro/internal/simio"
)

// CallRegion is the complete Clair-style calling path for one region:
// candidate selection from the pileup, tensor generation, network
// prediction and VCF emission. It returns the records and the number
// of network evaluations performed.
func CallRegion(m *Model, chrom string, ref genome.Seq, regionStart int, counts []pileup.Counts, minDepth uint32, minAltFrac float64) ([]simio.VCFRecord, int) {
	cands := SelectCandidates(counts, ref, regionStart, minDepth, minAltFrac)
	if len(cands) == 0 {
		return nil, 0
	}
	calls := make([]Call, len(cands))
	positions := make([]int, len(cands))
	for i, pos := range cands {
		calls[i] = m.Predict(BuildTensor(counts, pos))
		positions[i] = regionStart + pos
	}
	return EmitVCF(chrom, ref, positions, calls), len(cands)
}

// CallAll runs CallRegion over pre-split pileup regions and merges the
// records.
func CallAll(m *Model, chrom string, ref genome.Seq, regions []*pileup.Region, minDepth uint32, minAltFrac float64) ([]simio.VCFRecord, int) {
	var out []simio.VCFRecord
	evaluations := 0
	for _, rg := range regions {
		counts, _ := pileup.CountRegion(rg)
		recs, n := CallRegion(m, chrom, ref, rg.Start, counts, minDepth, minAltFrac)
		out = append(out, recs...)
		evaluations += n
	}
	return out, evaluations
}
