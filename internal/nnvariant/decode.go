package nnvariant

import (
	"repro/internal/genome"
	"repro/internal/simio"
)

// Genotype decoding: Clair's genotype head predicts the unordered base
// pair at the site; combining it with zygosity and the reference base
// yields a VCF record.

// genotypePairs maps head class index to the unordered base pair, in
// the canonical AA, AC, AG, AT, CC, CG, CT, GG, GT, TT order.
var genotypePairs = [GenotypeClasses][2]genome.Base{
	{genome.A, genome.A}, {genome.A, genome.C}, {genome.A, genome.G}, {genome.A, genome.T},
	{genome.C, genome.C}, {genome.C, genome.G}, {genome.C, genome.T},
	{genome.G, genome.G}, {genome.G, genome.T},
	{genome.T, genome.T},
}

// GenotypeClassOf returns the head class for an unordered base pair.
func GenotypeClassOf(a, b genome.Base) int {
	if a > b {
		a, b = b, a
	}
	for i, p := range genotypePairs {
		if p[0] == a && p[1] == b {
			return i
		}
	}
	return 0
}

// Decoded is a variant interpretation of one network call.
type Decoded struct {
	IsVariant  bool
	Alleles    [2]genome.Base
	Alt        genome.Base // the non-reference allele (first if both differ)
	Genotype   simio.Genotype
	Confidence float32 // probability mass of the chosen genotype class
}

// Decode interprets a Call at a site with the given reference base.
func Decode(c *Call, refBase genome.Base) Decoded {
	best := 0
	for i := 1; i < GenotypeClasses; i++ {
		if c.Genotype[i] > c.Genotype[best] {
			best = i
		}
	}
	pair := genotypePairs[best]
	d := Decoded{Alleles: pair, Confidence: c.Genotype[best]}
	aRef := pair[0] == refBase
	bRef := pair[1] == refBase
	switch {
	case aRef && bRef:
		d.Genotype = simio.HomRef
	case aRef || bRef:
		d.Genotype = simio.Het
		d.IsVariant = true
		if aRef {
			d.Alt = pair[1]
		} else {
			d.Alt = pair[0]
		}
	default:
		d.Genotype = simio.HomAlt
		d.IsVariant = true
		d.Alt = pair[0]
	}
	return d
}

// EmitVCF converts decoded calls at given reference offsets into VCF
// records, dropping non-variant sites.
func EmitVCF(chrom string, ref genome.Seq, positions []int, calls []Call) []simio.VCFRecord {
	var out []simio.VCFRecord
	for i := range calls {
		pos := positions[i]
		if pos < 0 || pos >= len(ref) {
			continue
		}
		d := Decode(&calls[i], ref[pos])
		if !d.IsVariant {
			continue
		}
		out = append(out, simio.VCFRecord{
			Chrom:    chrom,
			Pos:      pos,
			Ref:      genome.Seq{ref[pos]},
			Alt:      genome.Seq{d.Alt},
			Qual:     float64(60 * d.Confidence),
			Genotype: d.Genotype,
		})
	}
	return out
}
