package simt

import (
	"math"
	"testing"
)

func TestOccupancyFullBlocks(t *testing.T) {
	d := TitanXp()
	// 256-thread blocks, no shared mem, light registers: thread-limited,
	// 2048/256 = 8 blocks = 64 warps = full occupancy.
	occ := d.Occupancy(Launch{ThreadsPerBlock: 256, RegistersPerThread: 32})
	if occ != 1 {
		t.Errorf("occupancy = %v, want 1", occ)
	}
}

func TestOccupancySharedMemLimited(t *testing.T) {
	d := TitanXp()
	// 48KB shared mem per block: only 2 blocks fit in 96KB.
	occ := d.Occupancy(Launch{ThreadsPerBlock: 256, SharedMemPerBlock: 48 << 10})
	want := float64(2*8) / 64 // 2 blocks * 8 warps / 64 max warps
	if math.Abs(occ-want) > 1e-9 {
		t.Errorf("occupancy = %v, want %v", occ, want)
	}
}

func TestOccupancyRegisterLimited(t *testing.T) {
	d := TitanXp()
	// 128 regs/thread * 1024 threads = 128K regs per block > 64K: zero blocks fit.
	occ := d.Occupancy(Launch{ThreadsPerBlock: 1024, RegistersPerThread: 128})
	if occ != 0 {
		t.Errorf("occupancy = %v, want 0", occ)
	}
}

func TestWarpEfficiencyFullMask(t *testing.T) {
	var m Metrics
	w := NewWarp(&m, TitanXp())
	w.Exec(10)
	if e := m.WarpEfficiency(); e != 1 {
		t.Errorf("full-mask warp efficiency %v", e)
	}
	if e := m.BranchEfficiency(); e != 1 {
		t.Errorf("no-branch branch efficiency %v", e)
	}
}

func TestPartialWarp(t *testing.T) {
	var m Metrics
	w := NewPartialWarp(&m, TitanXp(), 16)
	w.Exec(4)
	if e := m.WarpEfficiency(); e != 0.5 {
		t.Errorf("16-lane warp efficiency %v, want 0.5", e)
	}
}

func TestBranchUniform(t *testing.T) {
	var m Metrics
	w := NewWarp(&m, TitanXp())
	w.Branch(func(lane int) bool { return true },
		func() { w.Exec(1) }, func() { t.Error("else ran") })
	if m.BranchEfficiency() != 1 {
		t.Errorf("uniform branch efficiency %v", m.BranchEfficiency())
	}
}

func TestBranchDivergent(t *testing.T) {
	var m Metrics
	w := NewWarp(&m, TitanXp())
	thenRan, elseRan := false, false
	w.Branch(func(lane int) bool { return lane < 8 },
		func() {
			thenRan = true
			if w.Active().Count() != 8 {
				t.Errorf("then mask %d lanes", w.Active().Count())
			}
			w.Exec(2)
		},
		func() {
			elseRan = true
			if w.Active().Count() != 24 {
				t.Errorf("else mask %d lanes", w.Active().Count())
			}
			w.Exec(2)
		})
	if !thenRan || !elseRan {
		t.Fatal("divergent paths did not both run")
	}
	if m.BranchEfficiency() != 0 {
		t.Errorf("divergent branch efficiency %v, want 0", m.BranchEfficiency())
	}
	if w.Active() != FullMask {
		t.Error("warp did not reconverge")
	}
	if e := m.WarpEfficiency(); e >= 1 {
		t.Errorf("divergence should lower warp efficiency, got %v", e)
	}
}

func TestExecPredicated(t *testing.T) {
	var m Metrics
	w := NewWarp(&m, TitanXp())
	w.ExecPredicated(1, func(lane int) bool { return lane%2 == 0 })
	if m.WarpEfficiency() != 1 {
		t.Errorf("predicated warp efficiency %v, want 1", m.WarpEfficiency())
	}
	if m.NonPredicatedWarpEfficiency() != 0.5 {
		t.Errorf("non-predicated efficiency %v, want 0.5", m.NonPredicatedWarpEfficiency())
	}
}

func TestWhileIrregularTripCounts(t *testing.T) {
	var m Metrics
	w := NewWarp(&m, TitanXp())
	counters := make([]int, WarpSize)
	// Lane i iterates i+1 times: classic irregular loop.
	w.While(func(lane int) bool { return counters[lane] <= lane },
		func() {
			w.Exec(1)
			for lane := 0; lane < WarpSize; lane++ {
				if w.Active()&(1<<uint(lane)) != 0 {
					counters[lane]++
				}
			}
		})
	for lane, c := range counters {
		if c != lane+1 {
			t.Fatalf("lane %d ran %d times, want %d", lane, c, lane+1)
		}
	}
	if e := m.WarpEfficiency(); e >= 0.9 {
		t.Errorf("irregular while should hurt efficiency, got %v", e)
	}
	if w.Active() != FullMask {
		t.Error("warp did not reconverge after While")
	}
}

func TestGlobalLoadCoalesced(t *testing.T) {
	var m Metrics
	w := NewWarp(&m, TitanXp())
	// Contiguous 4-byte accesses: 32 lanes * 4B = 128B = 4 sectors.
	w.GlobalLoad(func(lane int) uint64 { return uint64(lane) * 4 }, 4)
	if e := m.GlobalLoadEfficiency(); e != 1 {
		t.Errorf("coalesced load efficiency %v, want 1", e)
	}
	if m.MemTransactions != 4 {
		t.Errorf("transactions = %d, want 4", m.MemTransactions)
	}
}

func TestGlobalLoadStrided(t *testing.T) {
	var m Metrics
	w := NewWarp(&m, TitanXp())
	// 128-byte strides: every lane touches its own sector.
	w.GlobalLoad(func(lane int) uint64 { return uint64(lane) * 128 }, 4)
	want := float64(32*4) / float64(32*32)
	if e := m.GlobalLoadEfficiency(); math.Abs(e-want) > 1e-9 {
		t.Errorf("strided load efficiency %v, want %v", e, want)
	}
}

func TestGlobalStoreEfficiency(t *testing.T) {
	var m Metrics
	w := NewWarp(&m, TitanXp())
	w.GlobalStore(func(lane int) uint64 { return uint64(lane) * 4 }, 4)
	if e := m.GlobalStoreEfficiency(); e != 1 {
		t.Errorf("store efficiency %v", e)
	}
}

func TestSMUtilizationLowersWithSyncAndLowOccupancy(t *testing.T) {
	d := TitanXp()
	var busy Metrics
	w := NewWarp(&busy, d)
	for i := 0; i < 1000; i++ {
		w.Exec(10)
	}
	var stalled Metrics
	w2 := NewWarp(&stalled, d)
	for i := 0; i < 1000; i++ {
		w2.Exec(10)
		w2.Sync(50)
		w2.GlobalLoad(func(lane int) uint64 { return uint64(lane) * 512 }, 4)
	}
	uBusy := busy.SMUtilization(d, 0.9)
	uStalled := stalled.SMUtilization(d, 0.3)
	if uBusy <= uStalled {
		t.Errorf("busy util %v should exceed stalled util %v", uBusy, uStalled)
	}
	if uBusy <= 0.95 {
		t.Errorf("pure-compute utilization %v too low", uBusy)
	}
}

func TestMaskCount(t *testing.T) {
	if FullMask.Count() != 32 {
		t.Error("FullMask count")
	}
	if Mask(0xF).Count() != 4 {
		t.Error("mask count")
	}
}

func TestOccupancyMonotonicity(t *testing.T) {
	d := TitanXp()
	// More shared memory per block can never raise occupancy.
	prev := 2.0
	for smem := 4 << 10; smem <= 96<<10; smem *= 2 {
		occ := d.Occupancy(Launch{ThreadsPerBlock: 256, SharedMemPerBlock: smem})
		if occ > prev {
			t.Fatalf("occupancy rose from %v to %v as shared memory grew", prev, occ)
		}
		prev = occ
	}
	// More registers per thread can never raise occupancy.
	prev = 2.0
	for regs := 16; regs <= 256; regs *= 2 {
		occ := d.Occupancy(Launch{ThreadsPerBlock: 256, RegistersPerThread: regs})
		if occ > prev {
			t.Fatalf("occupancy rose from %v to %v as registers grew", prev, occ)
		}
		prev = occ
	}
}

func TestOccupancyBounds(t *testing.T) {
	d := TitanXp()
	for threads := 32; threads <= 1024; threads *= 2 {
		for _, smem := range []int{0, 8 << 10, 48 << 10} {
			occ := d.Occupancy(Launch{ThreadsPerBlock: threads, SharedMemPerBlock: smem, RegistersPerThread: 32})
			if occ < 0 || occ > 1 {
				t.Fatalf("occupancy %v out of [0,1]", occ)
			}
		}
	}
}
