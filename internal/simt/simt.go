// Package simt models SIMT (GPU warp-level) execution, standing in for
// the Nvidia Titan Xp + nvprof measurements behind GenomicsBench's
// Tables IV and V. GPU kernels (abea, nn-base) are written as lane
// programs against WarpCtx; the model tracks, per warp-instruction, the
// active-lane mask, branch uniformity, predication, and global-memory
// coalescing, and derives the same metrics nvprof reports:
//
//   - branch efficiency: fraction of branches whose lanes all agree;
//   - warp execution efficiency: average active lanes per issued
//     warp-instruction;
//   - non-predicated warp efficiency: active lanes not predicated off;
//   - occupancy: resident warps per SM versus the hardware maximum,
//     limited by threads, shared memory and registers;
//   - SM utilization: issue slots not lost to synchronization or
//     unhidden memory latency;
//   - global load/store efficiency: requested bytes over transferred
//     bytes with 32-byte sector coalescing.
package simt

import "math/bits"

// WarpSize is the number of lanes per warp.
const WarpSize = 32

// Device describes GPU per-SM limits, defaulting to a Pascal-class chip
// like the paper's Titan Xp.
type Device struct {
	NumSMs          int
	MaxThreadsPerSM int
	MaxWarpsPerSM   int
	MaxBlocksPerSM  int
	SharedMemPerSM  int // bytes
	RegistersPerSM  int
	MemLatency      float64 // cycles an unhidden global access stalls
	MemMLP          float64 // overlapping outstanding transactions per warp
	SectorSize      int     // coalescing granularity in bytes
}

// TitanXp mirrors the paper's GPU at the granularity the model needs.
func TitanXp() Device {
	return Device{
		NumSMs:          30,
		MaxThreadsPerSM: 2048,
		MaxWarpsPerSM:   64,
		MaxBlocksPerSM:  32,
		SharedMemPerSM:  96 << 10,
		RegistersPerSM:  64 << 10,
		MemLatency:      400,
		MemMLP:          48,
		SectorSize:      32,
	}
}

// Launch describes a kernel launch's per-block resource usage, from
// which occupancy is derived exactly as the CUDA occupancy calculator
// does (minimum over the limiting resources).
type Launch struct {
	ThreadsPerBlock    int
	SharedMemPerBlock  int // bytes
	RegistersPerThread int
}

// Occupancy returns achieved resident-warp occupancy in [0,1].
func (d Device) Occupancy(l Launch) float64 {
	if l.ThreadsPerBlock <= 0 {
		return 0
	}
	warpsPerBlock := (l.ThreadsPerBlock + WarpSize - 1) / WarpSize
	blocksByThreads := d.MaxThreadsPerSM / l.ThreadsPerBlock
	blocks := blocksByThreads
	if d.MaxBlocksPerSM < blocks {
		blocks = d.MaxBlocksPerSM
	}
	if l.SharedMemPerBlock > 0 {
		bySmem := d.SharedMemPerSM / l.SharedMemPerBlock
		if bySmem < blocks {
			blocks = bySmem
		}
	}
	if l.RegistersPerThread > 0 {
		byRegs := d.RegistersPerSM / (l.RegistersPerThread * l.ThreadsPerBlock)
		if byRegs < blocks {
			blocks = byRegs
		}
	}
	if blocks <= 0 {
		return 0
	}
	warps := blocks * warpsPerBlock
	if warps > d.MaxWarpsPerSM {
		warps = d.MaxWarpsPerSM
	}
	return float64(warps) / float64(d.MaxWarpsPerSM)
}

// Mask is a 32-lane active mask.
type Mask uint32

// FullMask has every lane active.
const FullMask Mask = 0xFFFFFFFF

// Count returns the number of active lanes.
func (m Mask) Count() int { return bits.OnesCount32(uint32(m)) }

// Metrics accumulates the nvprof-style counters for a kernel execution.
type Metrics struct {
	WarpInstructions   uint64 // issued warp-instructions
	ActiveLaneSlots    uint64 // sum of active lanes over issued instructions
	UsefulLaneSlots    uint64 // active AND not predicated off
	Branches           uint64 // branch decisions evaluated
	UniformBranches    uint64 // branches where all active lanes agreed
	LoadRequestedBytes uint64 // bytes lanes asked to read
	LoadSectorBytes    uint64 // bytes moved in 32B sectors for reads
	StoreRequested     uint64
	StoreSectorBytes   uint64
	SyncStallCycles    float64 // issue cycles lost at barriers
	MemTransactions    uint64
}

// BranchEfficiency is uniform branches over all branches (1 when no
// branches executed, matching nvprof's treatment).
func (m *Metrics) BranchEfficiency() float64 {
	if m.Branches == 0 {
		return 1
	}
	return float64(m.UniformBranches) / float64(m.Branches)
}

// WarpEfficiency is average active lanes per instruction over WarpSize.
func (m *Metrics) WarpEfficiency() float64 {
	if m.WarpInstructions == 0 {
		return 1
	}
	return float64(m.ActiveLaneSlots) / float64(m.WarpInstructions*WarpSize)
}

// NonPredicatedWarpEfficiency additionally excludes predicated-off lanes.
func (m *Metrics) NonPredicatedWarpEfficiency() float64 {
	if m.WarpInstructions == 0 {
		return 1
	}
	return float64(m.UsefulLaneSlots) / float64(m.WarpInstructions*WarpSize)
}

// GlobalLoadEfficiency is requested over transferred bytes for loads.
func (m *Metrics) GlobalLoadEfficiency() float64 {
	if m.LoadSectorBytes == 0 {
		return 1
	}
	e := float64(m.LoadRequestedBytes) / float64(m.LoadSectorBytes)
	if e > 1 {
		e = 1
	}
	return e
}

// GlobalStoreEfficiency is requested over transferred bytes for stores.
func (m *Metrics) GlobalStoreEfficiency() float64 {
	if m.StoreSectorBytes == 0 {
		return 1
	}
	e := float64(m.StoreRequested) / float64(m.StoreSectorBytes)
	if e > 1 {
		e = 1
	}
	return e
}

// SMUtilization estimates the fraction of issue slots the SM had work,
// given achieved occupancy: unhidden memory latency and barrier stalls
// eat slots; resident warps hide latency proportionally.
func (m *Metrics) SMUtilization(d Device, occupancy float64) float64 {
	issue := float64(m.WarpInstructions)
	if issue == 0 {
		return 0
	}
	residentWarps := occupancy * float64(d.MaxWarpsPerSM)
	if residentWarps < 1 {
		residentWarps = 1
	}
	mlp := d.MemMLP
	if mlp < 1 {
		mlp = 1
	}
	memStall := float64(m.MemTransactions) * d.MemLatency / (residentWarps * mlp)
	// More resident warps also hide barrier latency across blocks.
	syncStall := m.SyncStallCycles / (1 + residentWarps/8)
	total := issue + memStall + syncStall
	return issue / total
}

// WarpCtx is the execution context a lane program runs under. Lane
// programs call its methods to issue instructions; the context tracks
// masks and counters. A WarpCtx is not safe for concurrent use.
type WarpCtx struct {
	M      *Metrics
	active Mask
	device Device
}

// NewWarp creates a context with all lanes active.
func NewWarp(m *Metrics, d Device) *WarpCtx {
	return &WarpCtx{M: m, active: FullMask, device: d}
}

// NewPartialWarp creates a context with only the first n lanes active —
// a tail warp of an under-full block.
func NewPartialWarp(m *Metrics, d Device, n int) *WarpCtx {
	if n >= WarpSize {
		return NewWarp(m, d)
	}
	return &WarpCtx{M: m, active: Mask(uint32(1)<<uint(n) - 1), device: d}
}

// Active returns the current active mask.
func (w *WarpCtx) Active() Mask { return w.active }

// AnyActive reports whether any lane is active.
func (w *WarpCtx) AnyActive() bool { return w.active != 0 }

// Exec issues n warp-instructions under the current mask.
func (w *WarpCtx) Exec(n int) {
	c := uint64(w.active.Count())
	w.M.WarpInstructions += uint64(n)
	w.M.ActiveLaneSlots += uint64(n) * c
	w.M.UsefulLaneSlots += uint64(n) * c
}

// ExecPredicated issues n warp-instructions where only lanes with
// pred(lane)==true do useful work; all active lanes still occupy issue
// slots (short-branch if-conversion).
func (w *WarpCtx) ExecPredicated(n int, pred func(lane int) bool) {
	var useful uint64
	for lane := 0; lane < WarpSize; lane++ {
		if w.active&(1<<uint(lane)) != 0 && pred(lane) {
			useful++
		}
	}
	c := uint64(w.active.Count())
	w.M.WarpInstructions += uint64(n)
	w.M.ActiveLaneSlots += uint64(n) * c
	w.M.UsefulLaneSlots += uint64(n) * useful
}

// Branch evaluates a per-lane predicate as a real branch: if lanes
// disagree, the warp diverges and then/else bodies run serially under
// reduced masks. Returns after reconverging.
func (w *WarpCtx) Branch(pred func(lane int) bool, then, els func()) {
	w.M.Branches++
	w.M.WarpInstructions++
	c := uint64(w.active.Count())
	w.M.ActiveLaneSlots += c
	w.M.UsefulLaneSlots += c

	var taken Mask
	for lane := 0; lane < WarpSize; lane++ {
		bit := Mask(1) << uint(lane)
		if w.active&bit != 0 && pred(lane) {
			taken |= bit
		}
	}
	notTaken := w.active &^ taken
	if taken == w.active || notTaken == w.active {
		w.M.UniformBranches++
	}
	saved := w.active
	if taken != 0 && then != nil {
		w.active = taken
		then()
	}
	if notTaken != 0 && els != nil {
		w.active = notTaken
		els()
	}
	w.active = saved
}

// While loops body while any lane's condition holds; lanes whose
// condition fails are masked off until reconvergence at loop exit. The
// classic source of warp inefficiency for irregular trip counts.
func (w *WarpCtx) While(cond func(lane int) bool, body func()) {
	saved := w.active
	for {
		var still Mask
		for lane := 0; lane < WarpSize; lane++ {
			bit := Mask(1) << uint(lane)
			if w.active&bit != 0 && cond(lane) {
				still |= bit
			}
		}
		w.M.Branches++
		w.M.WarpInstructions++
		c := uint64(w.active.Count())
		w.M.ActiveLaneSlots += c
		w.M.UsefulLaneSlots += c
		if still == w.active || still == 0 {
			w.M.UniformBranches++
		}
		if still == 0 {
			break
		}
		w.active = still
		body()
	}
	w.active = saved
}

// GlobalLoad issues one warp-wide global read; addr/size give each
// active lane's request. Coalescing groups requests into SectorSize
// sectors.
func (w *WarpCtx) GlobalLoad(addr func(lane int) uint64, size int) {
	w.globalAccess(addr, size, false)
}

// GlobalStore issues one warp-wide global write.
func (w *WarpCtx) GlobalStore(addr func(lane int) uint64, size int) {
	w.globalAccess(addr, size, true)
}

func (w *WarpCtx) globalAccess(addr func(lane int) uint64, size int, write bool) {
	c := uint64(w.active.Count())
	w.M.WarpInstructions++
	w.M.ActiveLaneSlots += c
	w.M.UsefulLaneSlots += c
	if c == 0 {
		return
	}
	sector := uint64(w.device.SectorSize)
	sectors := make(map[uint64]struct{}, WarpSize)
	var requested uint64
	for lane := 0; lane < WarpSize; lane++ {
		if w.active&(1<<uint(lane)) == 0 {
			continue
		}
		a := addr(lane)
		requested += uint64(size)
		for s := a / sector; s <= (a+uint64(size)-1)/sector; s++ {
			sectors[s] = struct{}{}
		}
	}
	moved := uint64(len(sectors)) * sector
	w.M.MemTransactions += uint64(len(sectors))
	if write {
		w.M.StoreRequested += requested
		w.M.StoreSectorBytes += moved
	} else {
		w.M.LoadRequestedBytes += requested
		w.M.LoadSectorBytes += moved
	}
}

// SharedLoad models a shared-memory access: an issue slot but no global
// transaction.
func (w *WarpCtx) SharedLoad() { w.Exec(1) }

// Sync models __syncthreads(): warps wait at a barrier for the given
// number of cycles of skew.
func (w *WarpCtx) Sync(skewCycles float64) {
	w.M.WarpInstructions++
	c := uint64(w.active.Count())
	w.M.ActiveLaneSlots += c
	w.M.UsefulLaneSlots += c
	w.M.SyncStallCycles += skewCycles
}
