// Package resilience wraps kernel executions with panic isolation,
// per-attempt timeouts, and bounded retries with exponential backoff
// and deterministic seeded jitter. It is the layer that lets the suite
// driver run all twelve kernels unattended: one misbehaving kernel is
// captured as a typed KernelError (carrying the panic stack when there
// is one) instead of taking down the process, and transient failures
// get a bounded, deterministic number of retries.
//
// Cancellation is cooperative: the function under Run receives a
// context that expires at the per-attempt deadline, and the kernels'
// task loops (parallel.ForEachCtx plus faultinject trip-points) poll
// it. Run never abandons a still-running attempt, so a retry can never
// race its predecessor over shared benchmark state.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime/debug"
	"strings"
	"time"

	"repro/internal/obs"
)

// Policy bounds one kernel execution.
type Policy struct {
	Attempts    int           // total attempts, >= 1 (0 means 1)
	Timeout     time.Duration // per-attempt deadline; 0 disables
	BackoffBase time.Duration // first retry delay before jitter
	BackoffCap  time.Duration // upper bound for the backoff curve
	JitterSeed  int64         // seeds the deterministic jitter stream

	// Sleep, when non-nil, replaces the context-aware backoff sleep.
	// Tests inject a recorder here so retry schedules are asserted
	// without wall-clock waits.
	Sleep func(ctx context.Context, d time.Duration) error
}

// Default returns the policy used when a caller does not care about
// dataset scale: two attempts, no per-attempt deadline, 100ms backoff
// growing to at most 2s.
func Default() Policy {
	return Policy{
		Attempts:    2,
		Timeout:     0,
		BackoffBase: 100 * time.Millisecond,
		BackoffCap:  2 * time.Second,
	}
}

// KernelError is the typed failure Run reports: which kernel failed,
// after how many attempts, whether the last attempt panicked or timed
// out, and the stack captured at the panic site when there is one.
type KernelError struct {
	Kernel   string
	Attempts int  // attempts actually made
	Panicked bool // last failure was a recovered panic
	TimedOut bool // last attempt exceeded its per-attempt deadline
	Value    any  // recovered panic value, when Panicked
	Stack    []byte
	Err      error // underlying error (fn error or context error)
}

func (e *KernelError) Error() string {
	cause := ""
	switch {
	case e.Panicked:
		cause = fmt.Sprintf("panic: %v", e.Value)
	case e.TimedOut:
		cause = fmt.Sprintf("timed out: %v", e.Err)
	default:
		cause = fmt.Sprintf("%v", e.Err)
	}
	return fmt.Sprintf("kernel %s failed after %d attempt(s): %s", e.Kernel, e.Attempts, cause)
}

func (e *KernelError) Unwrap() error { return e.Err }

// StackExcerpt returns up to n lines of the captured stack, for
// reports that want the failure site without pages of runtime frames.
func (e *KernelError) StackExcerpt(n int) string {
	if len(e.Stack) == 0 {
		return ""
	}
	lines := strings.Split(strings.TrimRight(string(e.Stack), "\n"), "\n")
	if len(lines) > n {
		lines = append(lines[:n], fmt.Sprintf("... (%d more lines)", len(lines)-n))
	}
	return strings.Join(lines, "\n")
}

// panicker is how scheduler layers (parallel.ForEachCtx) hand their
// recovered panics upward without this package importing them.
type panicker interface {
	PanicValue() any
	PanicStack() []byte
}

// Run executes fn under p: each attempt gets a context that expires
// after p.Timeout, a panicking attempt is recovered into the returned
// KernelError, and failed attempts are retried (after exponential
// backoff with seeded jitter) up to p.Attempts times. Cancellation of
// the parent ctx stops everything immediately — a cancelled run is
// not retried. The returned error is nil or a *KernelError.
//
// Each attempt's timeout context is cancelled (releasing its timer and
// watcher goroutine) before the backoff sleep and the next attempt
// begin — never deferred to function exit, where a long retry schedule
// would accumulate one leaked cancel per attempt. attempt() below
// makes that structural via its deferred cancel.
//
// When an obs.Observer is installed in ctx, Run counts attempts,
// retries, timeouts and recovered panics per kernel (metric names
// resilience.attempts / .retries / .timeouts / .panics).
func Run(ctx context.Context, kernel string, p Policy, fn func(ctx context.Context) error) error {
	attempts := p.Attempts
	if attempts < 1 {
		attempts = 1
	}
	o := obs.From(ctx)
	rng := rand.New(rand.NewSource(p.JitterSeed ^ int64(hashString(kernel))))

	// attempt runs fn once under a fresh per-attempt deadline; the
	// deferred cancel fires when the attempt returns, before any
	// backoff or subsequent attempt.
	attempt := func() (ke *KernelError, timedOut bool) {
		actx := ctx
		cancel := func() {}
		if p.Timeout > 0 {
			actx, cancel = context.WithTimeout(ctx, p.Timeout)
		}
		defer cancel()
		ke = runAttempt(actx, fn)
		return ke, actx.Err() == context.DeadlineExceeded && ctx.Err() == nil
	}

	var last *KernelError
	for n := 1; n <= attempts; n++ {
		if err := ctx.Err(); err != nil {
			// Parent cancelled before this attempt started.
			if last == nil {
				return &KernelError{Kernel: kernel, Attempts: n - 1, Err: err}
			}
			return last
		}
		o.Counter("resilience.attempts", kernel).Inc()
		if n > 1 {
			o.Counter("resilience.retries", kernel).Inc()
		}
		ke, timedOut := attempt()
		if ke == nil {
			return nil
		}
		ke.Kernel = kernel
		ke.Attempts = n
		ke.TimedOut = timedOut
		if timedOut {
			o.Counter("resilience.timeouts", kernel).Inc()
		}
		if ke.Panicked {
			o.Counter("resilience.panics", kernel).Inc()
		}
		last = ke
		if ctx.Err() != nil {
			// Parent cancelled during the attempt: report, don't retry.
			return last
		}
		if n < attempts {
			if err := sleep(ctx, p, backoff(p, n, rng)); err != nil {
				return last
			}
		}
	}
	return last
}

// runAttempt runs fn once, converting panics — both direct ones and
// scheduler-recovered ones surfaced as errors — into *KernelError.
func runAttempt(ctx context.Context, fn func(ctx context.Context) error) (ke *KernelError) {
	defer func() {
		if r := recover(); r != nil {
			ke = &KernelError{
				Panicked: true,
				Value:    r,
				Stack:    debug.Stack(),
				Err:      fmt.Errorf("panic: %v", r),
			}
		}
	}()
	err := fn(ctx)
	if err == nil {
		return nil
	}
	var pv panicker
	if errors.As(err, &pv) {
		return &KernelError{Panicked: true, Value: pv.PanicValue(), Stack: pv.PanicStack(), Err: err}
	}
	return &KernelError{Err: err}
}

// backoff computes the delay before retrying after `attempt` failures:
// base·2^(attempt-1) capped at BackoffCap, jittered uniformly over
// [d/2, d) from the policy's seeded stream.
func backoff(p Policy, attempt int, rng *rand.Rand) time.Duration {
	d := p.BackoffBase
	if d <= 0 {
		return 0
	}
	for i := 1; i < attempt && d < p.BackoffCap; i++ {
		d *= 2
	}
	if p.BackoffCap > 0 && d > p.BackoffCap {
		d = p.BackoffCap
	}
	half := d / 2
	return half + time.Duration(rng.Int63n(int64(half)+1))
}

func sleep(ctx context.Context, p Policy, d time.Duration) error {
	if p.Sleep != nil {
		return p.Sleep(ctx, d)
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// hashString is FNV-1a, inlined to keep the package stdlib-math only.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
