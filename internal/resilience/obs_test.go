package resilience

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestRunCancelsAttemptContextBeforeNextAttempt(t *testing.T) {
	// Regression: each attempt's timeout context must be cancelled when
	// the attempt returns — before the backoff sleep and the next
	// attempt — not deferred to Run's exit. Attempt N+1 observing a
	// still-live Done channel from attempt N means the cancel leaked.
	var dones []<-chan struct{}
	p, _ := fastPolicy(3)
	p.Timeout = time.Hour // far in the future: Done only closes via cancel
	err := Run(context.Background(), "leaky", p, func(ctx context.Context) error {
		for i, d := range dones {
			select {
			case <-d:
			default:
				t.Errorf("attempt %d context still live when attempt %d started", i+1, len(dones)+1)
			}
		}
		dones = append(dones, ctx.Done())
		return errors.New("fail every attempt")
	})
	if err == nil {
		t.Fatal("expected failure after exhausted attempts")
	}
	if len(dones) != 3 {
		t.Fatalf("ran %d attempts, want 3", len(dones))
	}
	// The final attempt's context is also released once Run returns.
	select {
	case <-dones[2]:
	default:
		t.Error("last attempt context never cancelled")
	}
}

func TestRunAttemptContextsAreIndependent(t *testing.T) {
	// Each attempt gets a fresh deadline: a timeout consumed by attempt
	// 1 must not pre-expire attempt 2's context.
	p, _ := fastPolicy(2)
	p.Timeout = 30 * time.Millisecond
	calls := 0
	err := Run(context.Background(), "fresh", p, func(ctx context.Context) error {
		calls++
		if calls == 1 {
			<-ctx.Done() // burn the whole first deadline
			return ctx.Err()
		}
		if err := ctx.Err(); err != nil {
			t.Errorf("attempt 2 context already dead on entry: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("err = %v, want recovery on fresh deadline", err)
	}
	if calls != 2 {
		t.Errorf("calls = %d", calls)
	}
}

func TestRunCountsRetriesTimeoutsPanics(t *testing.T) {
	o := obs.NewObserver()
	ctx := obs.With(context.Background(), o)

	// Kernel 1: fails once, then succeeds — one retry, no timeout.
	p, _ := fastPolicy(3)
	calls := 0
	if err := Run(ctx, "flaky", p, func(context.Context) error {
		calls++
		if calls == 1 {
			return errors.New("transient")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// Kernel 2: times out on every attempt.
	pt, _ := fastPolicy(2)
	pt.Timeout = 5 * time.Millisecond
	_ = Run(ctx, "stuck", pt, func(c context.Context) error {
		<-c.Done()
		return c.Err()
	})

	// Kernel 3: panics on every attempt.
	pp, _ := fastPolicy(2)
	_ = Run(ctx, "crashy", pp, func(context.Context) error { panic("boom") })

	counter := func(name, kernel string) uint64 {
		return o.Metrics.Counter(name, kernel).Value()
	}
	if got := counter("resilience.attempts", "flaky"); got != 2 {
		t.Errorf("flaky attempts = %d, want 2", got)
	}
	if got := counter("resilience.retries", "flaky"); got != 1 {
		t.Errorf("flaky retries = %d, want 1", got)
	}
	if got := counter("resilience.timeouts", "flaky"); got != 0 {
		t.Errorf("flaky timeouts = %d, want 0", got)
	}
	if got := counter("resilience.timeouts", "stuck"); got != 2 {
		t.Errorf("stuck timeouts = %d, want 2", got)
	}
	if got := counter("resilience.panics", "crashy"); got != 2 {
		t.Errorf("crashy panics = %d, want 2", got)
	}
	if got := counter("resilience.retries", "crashy"); got != 1 {
		t.Errorf("crashy retries = %d, want 1", got)
	}
}

func TestRunWithoutObserverStillWorks(t *testing.T) {
	p, _ := fastPolicy(2)
	calls := 0
	err := Run(context.Background(), "plain", p, func(context.Context) error {
		calls++
		if calls == 1 {
			return errors.New("once")
		}
		return nil
	})
	if err != nil || calls != 2 {
		t.Errorf("err=%v calls=%d", err, calls)
	}
}
