package resilience

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// fastPolicy returns a policy whose backoff sleeps are recorded instead
// of slept, so retry tests run in microseconds and assert the schedule.
func fastPolicy(attempts int) (Policy, *[]time.Duration) {
	var slept []time.Duration
	p := Policy{
		Attempts:    attempts,
		BackoffBase: 100 * time.Millisecond,
		BackoffCap:  2 * time.Second,
		JitterSeed:  42,
		Sleep: func(ctx context.Context, d time.Duration) error {
			slept = append(slept, d)
			return ctx.Err()
		},
	}
	return p, &slept
}

func TestRunSuccessPassesThrough(t *testing.T) {
	p, slept := fastPolicy(3)
	calls := 0
	err := Run(context.Background(), "fmi", p, func(ctx context.Context) error {
		calls++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 || len(*slept) != 0 {
		t.Errorf("calls=%d sleeps=%d, want 1 and 0", calls, len(*slept))
	}
}

func TestRunRetriesUpToAttempts(t *testing.T) {
	p, slept := fastPolicy(3)
	calls := 0
	boom := errors.New("boom")
	err := Run(context.Background(), "fmi", p, func(ctx context.Context) error {
		calls++
		return boom
	})
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
	if len(*slept) != 2 {
		t.Errorf("sleeps = %d, want 2 (between 3 attempts)", len(*slept))
	}
	var ke *KernelError
	if !errors.As(err, &ke) {
		t.Fatalf("err = %T %v, want *KernelError", err, err)
	}
	if ke.Kernel != "fmi" || ke.Attempts != 3 || ke.Panicked || ke.TimedOut {
		t.Errorf("KernelError = %+v", ke)
	}
	if !errors.Is(err, boom) {
		t.Error("KernelError should unwrap to the fn error")
	}
}

func TestRunSucceedsAfterRetry(t *testing.T) {
	p, _ := fastPolicy(3)
	calls := 0
	err := Run(context.Background(), "fmi", p, func(ctx context.Context) error {
		calls++
		if calls < 2 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 2 {
		t.Errorf("err=%v calls=%d, want nil and 2", err, calls)
	}
}

func TestBackoffScheduleDeterministic(t *testing.T) {
	run := func() []time.Duration {
		p, slept := fastPolicy(4)
		Run(context.Background(), "chain", p, func(ctx context.Context) error {
			return errors.New("always")
		})
		return *slept
	}
	a, b := run(), run()
	if len(a) != 3 {
		t.Fatalf("sleeps = %d, want 3", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("sleep %d differs between identical runs: %v vs %v", i, a[i], b[i])
		}
	}
	// Jitter keeps each delay in [d/2, d] for d = base<<i capped.
	for i, want := range []time.Duration{100, 200, 400} {
		d := want * time.Millisecond
		if a[i] < d/2 || a[i] > d {
			t.Errorf("sleep %d = %v, want within [%v, %v]", i, a[i], d/2, d)
		}
	}
}

func TestRunRecoversDirectPanic(t *testing.T) {
	p, _ := fastPolicy(2)
	err := Run(context.Background(), "poa", p, func(ctx context.Context) error {
		panic("graph has a cycle")
	})
	var ke *KernelError
	if !errors.As(err, &ke) {
		t.Fatalf("err = %T, want *KernelError", err)
	}
	if !ke.Panicked || ke.Value != "graph has a cycle" || ke.Attempts != 2 {
		t.Errorf("KernelError = %+v", ke)
	}
	if !strings.Contains(string(ke.Stack), "resilience_test") {
		t.Error("stack should include the panic site")
	}
	if ex := ke.StackExcerpt(4); strings.Count(ex, "\n") > 4 {
		t.Errorf("StackExcerpt(4) too long:\n%s", ex)
	}
}

// schedPanic mimics parallel.PanicError without importing it, proving
// the structural interface is what resilience keys on.
type schedPanic struct {
	val   any
	stack []byte
}

func (e *schedPanic) Error() string      { return fmt.Sprintf("task panicked: %v", e.val) }
func (e *schedPanic) PanicValue() any    { return e.val }
func (e *schedPanic) PanicStack() []byte { return e.stack }

func TestRunRecognizesSchedulerPanicErrors(t *testing.T) {
	p, _ := fastPolicy(1)
	sp := &schedPanic{val: "kernel bug", stack: []byte("goroutine 7 [running]:\nkernel.go:99")}
	err := Run(context.Background(), "bsw", p, func(ctx context.Context) error {
		return sp
	})
	var ke *KernelError
	if !errors.As(err, &ke) {
		t.Fatalf("err = %T, want *KernelError", err)
	}
	if !ke.Panicked || ke.Value != "kernel bug" || string(ke.Stack) != string(sp.stack) {
		t.Errorf("KernelError = %+v", ke)
	}
}

func TestRunTimeoutClassification(t *testing.T) {
	p, slept := fastPolicy(2)
	p.Timeout = 10 * time.Millisecond
	calls := 0
	// fn blocks on ctx.Done, so the outcome depends only on the
	// per-attempt deadline firing — no wall-clock race.
	err := Run(context.Background(), "phmm", p, func(ctx context.Context) error {
		calls++
		<-ctx.Done()
		return ctx.Err()
	})
	var ke *KernelError
	if !errors.As(err, &ke) {
		t.Fatalf("err = %T %v, want *KernelError", err, err)
	}
	if !ke.TimedOut || ke.Panicked {
		t.Errorf("KernelError = %+v, want TimedOut", ke)
	}
	if calls != 2 || len(*slept) != 1 {
		t.Errorf("calls=%d sleeps=%d, want timed-out attempt retried once", calls, len(*slept))
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Error("timed-out KernelError should unwrap to DeadlineExceeded")
	}
}

func TestRunParentCancellationAbortsWithoutRetry(t *testing.T) {
	p, slept := fastPolicy(5)
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := Run(ctx, "dbg", p, func(c context.Context) error {
		calls++
		cancel() // parent dies mid-attempt
		return c.Err()
	})
	var ke *KernelError
	if !errors.As(err, &ke) {
		t.Fatalf("err = %T, want *KernelError", err)
	}
	if calls != 1 || len(*slept) != 0 {
		t.Errorf("calls=%d sleeps=%d, want no retry after parent cancellation", calls, len(*slept))
	}
	if ke.TimedOut {
		t.Error("parent cancellation must not be classified as a timeout")
	}
	if !errors.Is(err, context.Canceled) {
		t.Error("should unwrap to context.Canceled")
	}
}

func TestRunPreCancelledParent(t *testing.T) {
	p, _ := fastPolicy(3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := Run(ctx, "grm", p, func(context.Context) error { calls++; return nil })
	var ke *KernelError
	if !errors.As(err, &ke) {
		t.Fatalf("err = %T, want *KernelError", err)
	}
	if calls != 0 || ke.Attempts != 0 {
		t.Errorf("calls=%d attempts=%d, want 0 work on pre-cancelled ctx", calls, ke.Attempts)
	}
}

func TestRunZeroAttemptsMeansOne(t *testing.T) {
	p, _ := fastPolicy(0)
	calls := 0
	Run(context.Background(), "x", p, func(context.Context) error { calls++; return errors.New("e") })
	if calls != 1 {
		t.Errorf("calls = %d, want 1", calls)
	}
}

func TestKernelErrorMessages(t *testing.T) {
	cases := []struct {
		ke   KernelError
		want string
	}{
		{KernelError{Kernel: "poa", Attempts: 2, Panicked: true, Value: "cycle"}, "panic: cycle"},
		{KernelError{Kernel: "fmi", Attempts: 1, TimedOut: true, Err: context.DeadlineExceeded}, "timed out"},
		{KernelError{Kernel: "bsw", Attempts: 3, Err: errors.New("io fail")}, "io fail"},
	}
	for _, c := range cases {
		if msg := c.ke.Error(); !strings.Contains(msg, c.want) || !strings.Contains(msg, c.ke.Kernel) {
			t.Errorf("Error() = %q, want kernel name and %q", msg, c.want)
		}
	}
	var empty KernelError
	if empty.StackExcerpt(5) != "" {
		t.Error("empty stack excerpt should be empty")
	}
}

func TestDefaultPolicy(t *testing.T) {
	p := Default()
	if p.Attempts != 2 || p.Timeout != 0 || p.BackoffBase <= 0 || p.BackoffCap < p.BackoffBase {
		t.Errorf("Default() = %+v", p)
	}
}
