package genome

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestFromStringRoundTrip(t *testing.T) {
	cases := []string{"", "A", "ACGT", "acgt", "TTTTGGGGCCCCAAAA"}
	for _, s := range cases {
		seq, err := FromString(s)
		if err != nil {
			t.Fatalf("FromString(%q): %v", s, err)
		}
		if got := seq.String(); got != strings.ToUpper(s) {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
}

func TestFromStringRejectsInvalid(t *testing.T) {
	for _, s := range []string{"N", "ACGTX", "AC GT", "acgu"} {
		if _, err := FromString(s); err == nil {
			t.Errorf("FromString(%q): expected error", s)
		}
	}
}

func TestComplement(t *testing.T) {
	pairs := [][2]Base{{A, T}, {C, G}, {G, C}, {T, A}}
	for _, p := range pairs {
		if got := Complement(p[0]); got != p[1] {
			t.Errorf("Complement(%c) = %c, want %c", Letter(p[0]), Letter(got), Letter(p[1]))
		}
	}
}

func TestReverseComplementInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(n uint8) bool {
		s := Random(rng, int(n))
		return s.ReverseComplement().ReverseComplement().Equal(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReverseComplementKnown(t *testing.T) {
	s := MustFromString("AACGT")
	if got := s.ReverseComplement().String(); got != "ACGTT" {
		t.Errorf("ReverseComplement(AACGT) = %s, want ACGTT", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	s := MustFromString("ACGT")
	c := s.Clone()
	c[0] = T
	if s[0] != A {
		t.Error("Clone shares storage with original")
	}
}

func TestNewReferenceLengthAndContent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 100, 5000} {
		ref := NewReference(rng, "chr", n, 0.3)
		if len(ref.Seq) != n {
			t.Errorf("NewReference(%d): got length %d", n, len(ref.Seq))
		}
		for i, b := range ref.Seq {
			if b > 3 {
				t.Fatalf("invalid base %d at %d", b, i)
			}
		}
	}
}

func TestNewReferenceDeterministic(t *testing.T) {
	a := NewReference(rand.New(rand.NewSource(42)), "x", 2000, 0.25)
	b := NewReference(rand.New(rand.NewSource(42)), "x", 2000, 0.25)
	if !a.Seq.Equal(b.Seq) {
		t.Error("same seed produced different references")
	}
}

func TestPlantVariantsProducesVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ref := NewReference(rng, "chr", 20000, 0)
	donor := PlantVariants(rng, ref, 0.001, 0.0002)
	if len(donor.Variants) == 0 {
		t.Fatal("no variants planted")
	}
	var snv, ins, del int
	for _, v := range donor.Variants {
		switch v.Kind {
		case SNV:
			snv++
			if len(v.Ref) != 1 || len(v.Alt) != 1 {
				t.Errorf("SNV with ref %d alt %d bases", len(v.Ref), len(v.Alt))
			}
			if v.Ref[0] == v.Alt[0] {
				t.Error("SNV alt equals ref")
			}
		case Insertion:
			ins++
			if len(v.Ref) != 0 || len(v.Alt) == 0 {
				t.Error("malformed insertion")
			}
		case Deletion:
			del++
			if len(v.Alt) != 0 || len(v.Ref) == 0 {
				t.Error("malformed deletion")
			}
		}
	}
	if snv == 0 {
		t.Error("expected at least one SNV")
	}
	if ins+del == 0 {
		t.Error("expected at least one indel")
	}
}

func TestPlantVariantsHaplotypesDiffer(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ref := NewReference(rng, "chr", 50000, 0)
	donor := PlantVariants(rng, ref, 0.002, 0.0005)
	if donor.Haps[0].Equal(donor.Haps[1]) {
		t.Error("haplotypes identical despite het variants")
	}
	if donor.Haps[0].Equal(ref.Seq) {
		t.Error("haplotype 0 identical to reference")
	}
}

func TestPlantVariantsZeroRateIsReference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ref := NewReference(rng, "chr", 3000, 0)
	donor := PlantVariants(rng, ref, 0, 0)
	if !donor.Haps[0].Equal(ref.Seq) || !donor.Haps[1].Equal(ref.Seq) {
		t.Error("zero variant rates should reproduce the reference")
	}
}

func TestKmerCodeMatchesString(t *testing.T) {
	s := MustFromString("ACGTACGT")
	code := KmerCode(s, 0, 4)
	if got := KmerString(code, 4); got != "ACGT" {
		t.Errorf("KmerString(KmerCode) = %s, want ACGT", got)
	}
	code = KmerCode(s, 1, 3)
	if got := KmerString(code, 3); got != "CGT" {
		t.Errorf("KmerString = %s, want CGT", got)
	}
}

func TestEachKmerRollingMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := Random(rng, 300)
	for _, k := range []int{1, 2, 15, 31} {
		var count int
		EachKmer(s, k, func(pos int, code uint64) {
			want := KmerCode(s, pos, k)
			if code != want {
				t.Fatalf("k=%d pos=%d: rolling code %x != direct %x", k, pos, code, want)
			}
			count++
		})
		if count != len(s)-k+1 {
			t.Errorf("k=%d: %d k-mers, want %d", k, count, len(s)-k+1)
		}
	}
}

func TestEachKmerDegenerate(t *testing.T) {
	s := MustFromString("ACG")
	calls := 0
	EachKmer(s, 5, func(int, uint64) { calls++ })
	EachKmer(s, 0, func(int, uint64) { calls++ })
	EachKmer(s, 32, func(int, uint64) { calls++ })
	if calls != 0 {
		t.Errorf("degenerate EachKmer made %d calls", calls)
	}
}

func TestVariantKindString(t *testing.T) {
	if SNV.String() != "SNV" || Insertion.String() != "INS" || Deletion.String() != "DEL" {
		t.Error("VariantKind.String mismatch")
	}
}
