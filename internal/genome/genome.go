// Package genome provides the basic sequence types and seeded generators
// shared by every GenomicsBench kernel: 2-bit base coding, reference
// genome synthesis, variant planting and k-mer utilities.
//
// All randomness is driven by explicit *rand.Rand sources so that every
// dataset in the suite is reproducible from a seed.
package genome

import (
	"fmt"
	"math/rand"
	"strings"
)

// Base is a 2-bit encoded nucleotide: A=0, C=1, G=2, T=3.
type Base = byte

// Canonical base codes.
const (
	A Base = 0
	C Base = 1
	G Base = 2
	T Base = 3
)

// baseLetters maps 2-bit codes to ASCII letters.
var baseLetters = [4]byte{'A', 'C', 'G', 'T'}

// letterCodes maps ASCII letters (upper or lower case) to 2-bit codes;
// entries of 0xFF mark non-nucleotide characters.
var letterCodes [256]byte

func init() {
	for i := range letterCodes {
		letterCodes[i] = 0xFF
	}
	for code, letter := range baseLetters {
		letterCodes[letter] = byte(code)
		letterCodes[letter+'a'-'A'] = byte(code)
	}
}

// Seq is a nucleotide sequence in 2-bit-per-base code, one base per byte.
type Seq []Base

// FromString parses an ASCII sequence of A/C/G/T (case-insensitive).
// It returns an error on the first non-nucleotide character.
func FromString(s string) (Seq, error) {
	out := make(Seq, len(s))
	for i := 0; i < len(s); i++ {
		code := letterCodes[s[i]]
		if code == 0xFF {
			return nil, fmt.Errorf("genome: invalid base %q at position %d", s[i], i)
		}
		out[i] = code
	}
	return out, nil
}

// MustFromString is FromString for constant inputs in tests and examples.
func MustFromString(s string) Seq {
	seq, err := FromString(s)
	if err != nil {
		panic(err)
	}
	return seq
}

// String renders the sequence as ASCII letters.
func (s Seq) String() string {
	var b strings.Builder
	b.Grow(len(s))
	for _, base := range s {
		b.WriteByte(baseLetters[base&3])
	}
	return b.String()
}

// Letter returns the ASCII letter for a base code.
func Letter(b Base) byte { return baseLetters[b&3] }

// Code returns the 2-bit code for an ASCII letter, or 0xFF if the byte is
// not a nucleotide letter.
func Code(letter byte) byte { return letterCodes[letter] }

// Complement returns the Watson-Crick complement of a single base.
func Complement(b Base) Base { return 3 - (b & 3) }

// ReverseComplement returns a newly allocated reverse complement of s.
func (s Seq) ReverseComplement() Seq {
	out := make(Seq, len(s))
	for i, b := range s {
		out[len(s)-1-i] = Complement(b)
	}
	return out
}

// Clone returns a copy of s.
func (s Seq) Clone() Seq {
	out := make(Seq, len(s))
	copy(out, s)
	return out
}

// Equal reports whether two sequences are base-for-base identical.
func (s Seq) Equal(t Seq) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Random returns a uniform random sequence of n bases.
func Random(rng *rand.Rand, n int) Seq {
	out := make(Seq, n)
	for i := range out {
		out[i] = Base(rng.Intn(4))
	}
	return out
}

// Reference is a synthetic reference genome: a named sequence plus the
// set of variants planted into donor copies derived from it.
type Reference struct {
	Name string
	Seq  Seq
}

// NewReference synthesizes a reference of n bases. To mimic the repeat
// structure of real genomes (which matters for seeding kernels such as
// fmi and chain), a fraction of the sequence is built by copying earlier
// segments back in, controlled by repeatFraction in [0,1).
func NewReference(rng *rand.Rand, name string, n int, repeatFraction float64) *Reference {
	seq := make(Seq, 0, n)
	for len(seq) < n {
		if len(seq) > 500 && rng.Float64() < repeatFraction {
			// Copy a 200-500 base segment from earlier in the sequence.
			segLen := 200 + rng.Intn(301)
			start := rng.Intn(len(seq) - segLen + 1)
			if start < 0 {
				start = 0
			}
			end := start + segLen
			if end > len(seq) {
				end = len(seq)
			}
			seq = append(seq, seq[start:end]...)
		} else {
			run := 100 + rng.Intn(400)
			for i := 0; i < run && len(seq) < n; i++ {
				seq = append(seq, Base(rng.Intn(4)))
			}
		}
	}
	return &Reference{Name: name, Seq: seq[:n]}
}

// VariantKind distinguishes the classes of small variants the suite
// plants in donor genomes.
type VariantKind uint8

// Variant kinds.
const (
	SNV VariantKind = iota
	Insertion
	Deletion
)

func (k VariantKind) String() string {
	switch k {
	case SNV:
		return "SNV"
	case Insertion:
		return "INS"
	case Deletion:
		return "DEL"
	default:
		return fmt.Sprintf("VariantKind(%d)", uint8(k))
	}
}

// Variant is a planted difference between a donor genome and the
// reference, positioned on the reference coordinate system.
type Variant struct {
	Kind VariantKind
	Pos  int  // reference offset
	Ref  Seq  // reference bases consumed (empty for insertions)
	Alt  Seq  // donor bases emitted (empty for deletions)
	Het  bool // heterozygous: present on only one haplotype
}

// Donor is a sample genome derived from a reference by applying variants.
type Donor struct {
	Ref      *Reference
	Variants []Variant
	Haps     [2]Seq // two haplotype sequences
}

// PlantVariants derives a donor genome carrying approximately
// snvRate/indelRate variants per base. Indel lengths are 1-10 bases.
// Roughly half of the variants are heterozygous.
func PlantVariants(rng *rand.Rand, ref *Reference, snvRate, indelRate float64) *Donor {
	d := &Donor{Ref: ref}
	pos := 0
	for pos < len(ref.Seq) {
		r := rng.Float64()
		switch {
		case r < snvRate:
			old := ref.Seq[pos]
			alt := Base(rng.Intn(3))
			if alt >= old {
				alt++
			}
			d.Variants = append(d.Variants, Variant{
				Kind: SNV, Pos: pos,
				Ref: Seq{old}, Alt: Seq{alt},
				Het: rng.Intn(2) == 0,
			})
			pos++
		case r < snvRate+indelRate:
			n := 1 + rng.Intn(10)
			if rng.Intn(2) == 0 {
				d.Variants = append(d.Variants, Variant{
					Kind: Insertion, Pos: pos,
					Alt: Random(rng, n),
					Het: rng.Intn(2) == 0,
				})
				pos++
			} else {
				if pos+n > len(ref.Seq) {
					n = len(ref.Seq) - pos
				}
				d.Variants = append(d.Variants, Variant{
					Kind: Deletion, Pos: pos,
					Ref: ref.Seq[pos : pos+n].Clone(),
					Het: rng.Intn(2) == 0,
				})
				pos += n
			}
		default:
			pos++
		}
	}
	for hap := 0; hap < 2; hap++ {
		d.Haps[hap] = applyVariants(ref.Seq, d.Variants, hap, rng)
	}
	return d
}

// applyVariants builds one haplotype. Heterozygous variants land on
// haplotype 0 or 1 (chosen deterministically from position parity so the
// two haplotypes differ), homozygous variants land on both.
func applyVariants(ref Seq, variants []Variant, hap int, rng *rand.Rand) Seq {
	out := make(Seq, 0, len(ref)+len(ref)/100)
	pos := 0
	for _, v := range variants {
		if v.Het && v.Pos%2 != hap {
			continue
		}
		if v.Pos < pos {
			continue // overlapping variant already consumed
		}
		out = append(out, ref[pos:v.Pos]...)
		out = append(out, v.Alt...)
		pos = v.Pos + len(v.Ref)
	}
	out = append(out, ref[pos:]...)
	return out
}

// KmerCode packs the k bases starting at s[i] into a 2-bit-per-base
// integer (first base in the most significant position). k must be ≤ 31.
func KmerCode(s Seq, i, k int) uint64 {
	var code uint64
	for j := 0; j < k; j++ {
		code = code<<2 | uint64(s[i+j]&3)
	}
	return code
}

// EachKmer calls fn for every k-mer of s with its packed code, using a
// rolling update (O(1) per k-mer).
func EachKmer(s Seq, k int, fn func(pos int, code uint64)) {
	if len(s) < k || k <= 0 || k > 31 {
		return
	}
	mask := uint64(1)<<(2*uint(k)) - 1
	code := KmerCode(s, 0, k)
	fn(0, code)
	for i := 1; i+k <= len(s); i++ {
		code = (code<<2 | uint64(s[i+k-1]&3)) & mask
		fn(i, code)
	}
}

// KmerString decodes a packed k-mer code back into letters.
func KmerString(code uint64, k int) string {
	buf := make([]byte, k)
	for i := k - 1; i >= 0; i-- {
		buf[i] = baseLetters[code&3]
		code >>= 2
	}
	return string(buf)
}
