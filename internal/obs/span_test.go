package obs

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"
)

func findSpan(spans []SpanRecord, name string) (SpanRecord, bool) {
	for _, s := range spans {
		if s.Name == name {
			return s, true
		}
	}
	return SpanRecord{}, false
}

func TestSpanParentChildNesting(t *testing.T) {
	tr := NewTracer()
	ctx := context.Background()
	sctx, suite := tr.Start(ctx, "suite")
	kctx, kernel := tr.Start(sctx, "kernel:fmi")
	_, attempt := tr.Start(kctx, "attempt-1")
	// A sibling off the suite span must parent under suite, not attempt.
	_, kernel2 := tr.Start(sctx, "kernel:bsw")
	attempt.End(nil)
	kernel.End(nil)
	kernel2.End(errors.New("boom\nsecond line ignored"))
	suite.End(nil)

	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	s, _ := findSpan(spans, "suite")
	k, _ := findSpan(spans, "kernel:fmi")
	a, _ := findSpan(spans, "attempt-1")
	k2, _ := findSpan(spans, "kernel:bsw")
	if s.Parent != 0 {
		t.Errorf("suite parent = %d, want 0 (root)", s.Parent)
	}
	if k.Parent != s.ID {
		t.Errorf("kernel parent = %d, want suite id %d", k.Parent, s.ID)
	}
	if a.Parent != k.ID {
		t.Errorf("attempt parent = %d, want kernel id %d", a.Parent, k.ID)
	}
	if k2.Parent != s.ID {
		t.Errorf("sibling kernel parent = %d, want suite id %d", k2.Parent, s.ID)
	}
	if k2.Status != "boom" {
		t.Errorf("error status = %q, want first line %q", k2.Status, "boom")
	}
	if s.Status != "ok" || k.Status != "ok" {
		t.Errorf("ok statuses = %q, %q", s.Status, k.Status)
	}
	if a.DurNs < 0 || a.StartNs < s.StartNs {
		t.Errorf("attempt timing start=%d dur=%d (suite start %d)", a.StartNs, a.DurNs, s.StartNs)
	}
}

func TestSpanEndOnlyOnce(t *testing.T) {
	tr := NewTracer()
	_, s := tr.Start(context.Background(), "x")
	s.End(nil)
	s.End(errors.New("late"))
	s.EndStatus("even later")
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("span recorded %d times, want 1", len(spans))
	}
	if spans[0].Status != "ok" {
		t.Errorf("status = %q, want the first End's %q", spans[0].Status, "ok")
	}
}

func TestSpanAnnotations(t *testing.T) {
	tr := NewTracer()
	_, s := tr.Start(context.Background(), "x")
	s.Annotate("attempts", "2")
	s.Annotate("status", "ok")
	s.EndStatus("timeout")
	rec := tr.Spans()[0]
	if rec.Status != "timeout" {
		t.Errorf("status = %q", rec.Status)
	}
	if rec.Annots["attempts"] != "2" || rec.Annots["status"] != "ok" {
		t.Errorf("annots = %v", rec.Annots)
	}
	// Records marshal to the documented NDJSON shape.
	b, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"type", "id", "name", "start_ns", "dur_ns", "status", "annots"} {
		if _, ok := m[key]; !ok {
			t.Errorf("marshalled span missing %q: %s", key, b)
		}
	}
	if m["type"] != "span" {
		t.Errorf("type = %v", m["type"])
	}
}

func TestTracerConcurrentSpans(t *testing.T) {
	tr := NewTracer()
	ctx, root := tr.Start(context.Background(), "root")
	var wg sync.WaitGroup
	const n = 32
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			_, s := tr.Start(ctx, "child")
			s.Annotate("k", "v")
			s.End(nil)
		}()
	}
	wg.Wait()
	root.End(nil)
	spans := tr.Spans()
	if len(spans) != n+1 {
		t.Fatalf("got %d spans, want %d", len(spans), n+1)
	}
	ids := make(map[uint64]bool)
	for _, s := range spans {
		if ids[s.ID] {
			t.Fatalf("duplicate span id %d", s.ID)
		}
		ids[s.ID] = true
		if s.Name == "child" && s.Parent == 0 {
			t.Error("child span lost its parent")
		}
	}
}

func TestSamplerCollectsAndStops(t *testing.T) {
	s := StartSampler(10 * time.Millisecond)
	s.SetLabel("fmi")
	time.Sleep(25 * time.Millisecond)
	s.Stop()
	samples := s.Samples()
	if len(samples) == 0 {
		t.Fatal("no samples collected")
	}
	last := samples[len(samples)-1]
	if last.Type != "sample" {
		t.Errorf("type = %q", last.Type)
	}
	if last.HeapInuse == 0 || last.Goroutines == 0 {
		t.Errorf("empty runtime stats: %+v", last)
	}
	if last.Label != "fmi" {
		t.Errorf("label = %q, want fmi", last.Label)
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].OffsetNs < samples[i-1].OffsetNs {
			t.Errorf("offsets not monotone: %d then %d", samples[i-1].OffsetNs, samples[i].OffsetNs)
		}
	}
}

func TestSamplerFinalSampleOnStop(t *testing.T) {
	// Even a run far shorter than the interval records one sample,
	// because Stop flushes a final one.
	s := StartSampler(time.Hour)
	s.Stop()
	if got := len(s.Samples()); got != 1 {
		t.Errorf("got %d samples, want exactly the final flush", got)
	}
}
