package obs

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer collects spans. Spans form a tree through the context: Start
// parents the new span under the span already in ctx (0 = root). A
// nil *Tracer hands out nil spans and accepts all calls.
type Tracer struct {
	epoch  time.Time
	nextID atomic.Uint64
	mu     sync.Mutex
	done   []SpanRecord
}

// NewTracer returns an empty tracer. Span start offsets are relative
// to this call, so a trace is self-contained.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now()}
}

// Span is one in-flight operation. End it exactly once; a nil *Span
// accepts all calls.
type Span struct {
	tracer   *Tracer
	id       uint64
	parent   uint64
	name     string
	start    time.Time
	annotMu  sync.Mutex
	annots   map[string]string
	finished atomic.Bool
}

// SpanRecord is a finished span, shaped for NDJSON export.
type SpanRecord struct {
	Type    string            `json:"type"` // always "span"
	ID      uint64            `json:"id"`
	Parent  uint64            `json:"parent,omitempty"`
	Name    string            `json:"name"`
	StartNs int64             `json:"start_ns"` // offset from the tracer epoch
	DurNs   int64             `json:"dur_ns"`
	Status  string            `json:"status"` // "ok" or an error summary
	Annots  map[string]string `json:"annots,omitempty"`
}

// Start opens a span named name, parented under the span in ctx if
// any, and returns a derived context carrying the new span. Nil-safe:
// a nil tracer returns ctx unchanged and a nil span.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	var parent uint64
	if ps, _ := ctx.Value(spanKey).(*Span); ps != nil {
		parent = ps.id
	}
	s := &Span{
		tracer: t,
		id:     t.nextID.Add(1),
		parent: parent,
		name:   name,
		start:  time.Now(),
	}
	return context.WithValue(ctx, spanKey, s), s
}

// Annotate attaches a key/value pair to the span. Nil-safe.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.annotMu.Lock()
	if s.annots == nil {
		s.annots = make(map[string]string)
	}
	s.annots[key] = value
	s.annotMu.Unlock()
}

// End finishes the span with status "ok" when err is nil, else the
// first line of err. Only the first End is recorded. Nil-safe.
func (s *Span) End(err error) {
	if s == nil {
		return
	}
	status := "ok"
	if err != nil {
		status = err.Error()
		if i := strings.IndexByte(status, '\n'); i >= 0 {
			status = status[:i]
		}
	}
	s.EndStatus(status)
}

// EndStatus finishes the span with an explicit status string (used for
// outcomes that are not plain errors: "timeout", "skipped"). Nil-safe;
// like End, only the first finish is recorded.
func (s *Span) EndStatus(status string) {
	if s == nil || !s.finished.CompareAndSwap(false, true) {
		return
	}
	t := s.tracer
	rec := SpanRecord{
		Type:    "span",
		ID:      s.id,
		Parent:  s.parent,
		Name:    s.name,
		StartNs: s.start.Sub(t.epoch).Nanoseconds(),
		DurNs:   time.Since(s.start).Nanoseconds(),
		Status:  status,
	}
	s.annotMu.Lock()
	if len(s.annots) > 0 {
		rec.Annots = make(map[string]string, len(s.annots))
		for k, v := range s.annots {
			rec.Annots[k] = v
		}
	}
	s.annotMu.Unlock()
	t.mu.Lock()
	t.done = append(t.done, rec)
	t.mu.Unlock()
}

// Spans returns the finished spans in completion order. Nil-safe.
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, len(t.done))
	copy(out, t.done)
	return out
}
