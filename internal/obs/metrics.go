package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry holds named metrics. Metric handles are created on first
// use and cached by (name, label); recording through a handle is
// lock-free (atomics only), so hot loops can record without contention
// beyond the cache-coherence cost of the shared words themselves.
// A nil *Registry hands out nil handles, which accept all calls.
type Registry struct {
	mu         sync.Mutex
	counters   map[metricKey]*Counter
	gauges     map[metricKey]*Gauge
	histograms map[metricKey]*Histogram
}

type metricKey struct{ name, label string }

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[metricKey]*Counter),
		gauges:     make(map[metricKey]*Gauge),
		histograms: make(map[metricKey]*Histogram),
	}
}

// Counter returns the counter for (name, label), creating it on first
// use. Safe for concurrent use; nil-safe.
func (r *Registry) Counter(name, label string) *Counter {
	if r == nil {
		return nil
	}
	k := metricKey{name, label}
	r.mu.Lock()
	c := r.counters[k]
	if c == nil {
		c = &Counter{}
		r.counters[k] = c
	}
	r.mu.Unlock()
	return c
}

// Gauge returns the gauge for (name, label), creating it on first use.
func (r *Registry) Gauge(name, label string) *Gauge {
	if r == nil {
		return nil
	}
	k := metricKey{name, label}
	r.mu.Lock()
	g := r.gauges[k]
	if g == nil {
		g = &Gauge{}
		r.gauges[k] = g
	}
	r.mu.Unlock()
	return g
}

// Histogram returns the histogram for (name, label), creating it on
// first use with the given unit (the unit is fixed at creation).
func (r *Registry) Histogram(name, label, unit string) *Histogram {
	if r == nil {
		return nil
	}
	k := metricKey{name, label}
	r.mu.Lock()
	h := r.histograms[k]
	if h == nil {
		h = newHistogram(unit)
		r.histograms[k] = h
	}
	r.mu.Unlock()
	return h
}

// Counter is a monotonically increasing uint64.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n. Nil-safe.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. Nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the counter. Nil-safe (returns 0).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins float64.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v. Nil-safe.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value reads the gauge. Nil-safe (returns 0).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram bucket geometry: bucket 0 catches v < 1 (including zero
// and negatives); above that, each power-of-two octave is split into
// histSubBuckets linear sub-buckets, covering 1 up to 2^histOctaves.
// With 4 sub-buckets per octave the relative quantile error is bounded
// by the sub-bucket width, ~12.5%. The whole histogram is a fixed
// ~2 KB of atomics — no allocation per observation.
const (
	histSubBuckets = 4
	histOctaves    = 56 // 2^56 ns ≈ 2.3 years; also covers byte sizes
	histBuckets    = 1 + histOctaves*histSubBuckets
)

// Histogram is a log-scale distribution with lock-free recording.
// Suited to latencies (nanoseconds) and sizes (bytes) whose values
// span many orders of magnitude.
type Histogram struct {
	unit    string
	count   atomic.Uint64
	sum     atomic.Uint64 // float64 bits, CAS-accumulated
	min     atomic.Uint64 // float64 bits
	max     atomic.Uint64 // float64 bits
	buckets [histBuckets]atomic.Uint64
}

func newHistogram(unit string) *Histogram {
	h := &Histogram{unit: unit}
	h.min.Store(math.Float64bits(math.Inf(1)))
	h.max.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// bucketIndex maps a value to its bucket.
func bucketIndex(v float64) int {
	if !(v >= 1) { // catches v<1, zero, negatives, NaN
		return 0
	}
	if v >= math.Ldexp(1, histOctaves) { // also catches +Inf, whose Log2 would overflow int
		return histBuckets - 1
	}
	e := int(math.Floor(math.Log2(v)))
	if e >= histOctaves {
		return histBuckets - 1
	}
	lo := math.Ldexp(1, e) // 2^e
	sub := int((v - lo) / lo * histSubBuckets)
	if sub >= histSubBuckets {
		sub = histSubBuckets - 1
	}
	return 1 + e*histSubBuckets + sub
}

// bucketBounds returns the [lo, hi) value range of bucket i.
func bucketBounds(i int) (lo, hi float64) {
	if i <= 0 {
		return 0, 1
	}
	i--
	e := i / histSubBuckets
	sub := i % histSubBuckets
	base := math.Ldexp(1, e)
	step := base / histSubBuckets
	return base + float64(sub)*step, base + float64(sub+1)*step
}

// Observe records one value. Nil-safe; lock-free.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	for {
		old := h.min.Load()
		if v >= math.Float64frombits(old) || h.min.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= math.Float64frombits(old) || h.max.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Count reports the number of observations. Nil-safe.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the total of all observed values. Nil-safe.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Min reports the smallest observation (0 when empty). Nil-safe.
func (h *Histogram) Min() float64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.min.Load())
}

// Max reports the largest observation (0 when empty). Nil-safe.
func (h *Histogram) Max() float64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.max.Load())
}

// Quantile estimates the q-quantile (q in [0,1]) by walking the
// buckets and interpolating linearly inside the target bucket. The
// estimate is exact at the extremes (tracked min/max) and within one
// sub-bucket width (~12.5% relative) elsewhere. Nil-safe.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.Max()
	}
	rank := q * float64(total)
	var cum float64
	for i := 0; i < histBuckets; i++ {
		n := float64(h.buckets[i].Load())
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			lo, hi := bucketBounds(i)
			if mn := h.Min(); lo < mn {
				lo = mn
			}
			if mx := h.Max(); hi > mx {
				hi = mx
			}
			if hi < lo {
				hi = lo
			}
			frac := (rank - cum) / n
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return h.Max()
}

// Mean reports the arithmetic mean of the observations. Nil-safe.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// MetricSnapshot is one metric's exported state, shaped for NDJSON.
// Exactly one of Value (counter), Gauge (gauge) or the histogram
// fields is meaningful, selected by Kind.
type MetricSnapshot struct {
	Type  string  `json:"type"` // always "metric"
	Kind  string  `json:"kind"` // counter | gauge | histogram
	Name  string  `json:"name"`
	Label string  `json:"label,omitempty"`
	Value float64 `json:"value,omitempty"` // counter total or gauge value
	// Histogram-only fields.
	Unit  string  `json:"unit,omitempty"`
	Count uint64  `json:"count,omitempty"`
	Sum   float64 `json:"sum,omitempty"`
	Min   float64 `json:"min,omitempty"`
	Max   float64 `json:"max,omitempty"`
	P50   float64 `json:"p50,omitempty"`
	P95   float64 `json:"p95,omitempty"`
	P99   float64 `json:"p99,omitempty"`
}

// Snapshot exports every metric, sorted by (kind, name, label) so the
// output is deterministic. Nil-safe (returns nil).
func (r *Registry) Snapshot() []MetricSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]MetricSnapshot, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for k, c := range r.counters {
		out = append(out, MetricSnapshot{
			Type: "metric", Kind: "counter", Name: k.name, Label: k.label,
			Value: float64(c.Value()),
		})
	}
	for k, g := range r.gauges {
		out = append(out, MetricSnapshot{
			Type: "metric", Kind: "gauge", Name: k.name, Label: k.label,
			Value: g.Value(),
		})
	}
	for k, h := range r.histograms {
		out = append(out, MetricSnapshot{
			Type: "metric", Kind: "histogram", Name: k.name, Label: k.label,
			Unit: h.unit, Count: h.Count(), Sum: h.Sum(), Min: h.Min(), Max: h.Max(),
			P50: h.Quantile(0.50), P95: h.Quantile(0.95), P99: h.Quantile(0.99),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Label < out[j].Label
	})
	return out
}
