package obs

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits", "fmi")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if again := r.Counter("hits", "fmi"); again != c {
		t.Error("Counter did not return the cached handle")
	}
	if other := r.Counter("hits", "bsw"); other == c {
		t.Error("different labels share a handle")
	}
	g := r.Gauge("util", "")
	g.Set(0.75)
	if got := g.Value(); got != 0.75 {
		t.Errorf("gauge = %v, want 0.75", got)
	}
}

func TestNilSafety(t *testing.T) {
	// Every call on nil registries/handles/observers must be a no-op:
	// instrumentation sites do not branch on "is observability on".
	var r *Registry
	r.Counter("x", "").Inc()
	r.Gauge("x", "").Set(1)
	r.Histogram("x", "", "ns").Observe(1)
	if r.Snapshot() != nil {
		t.Error("nil registry snapshot not nil")
	}
	var o *Observer
	o.Counter("x", "").Add(2)
	o.Gauge("x", "").Set(3)
	o.Histogram("x", "", "ns").Observe(4)
	o.SetLabel("k")
	ctx, span := o.StartSpan(context.Background(), "s")
	span.End(nil)
	span.EndStatus("ok")
	span.Annotate("k", "v")
	if ctx != context.Background() {
		t.Error("nil observer StartSpan changed the context")
	}
	var tr *Tracer
	_, s2 := tr.Start(context.Background(), "s")
	s2.End(nil)
	if tr.Spans() != nil {
		t.Error("nil tracer spans not nil")
	}
	var sm *Sampler
	sm.SetLabel("x")
	sm.Stop()
	if sm.Samples() != nil {
		t.Error("nil sampler samples not nil")
	}
}

func TestHistogramQuantilesKnownDistribution(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", "ns")
	// Uniform 1..10000, shuffled: quantiles are known exactly.
	n := 10000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, v := range perm {
		h.Observe(float64(v + 1))
	}
	if h.Count() != uint64(n) {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != 1 || h.Max() != float64(n) {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	wantSum := float64(n) * float64(n+1) / 2
	if math.Abs(h.Sum()-wantSum) > 1e-6*wantSum {
		t.Errorf("sum = %v, want %v", h.Sum(), wantSum)
	}
	// The log-linear buckets guarantee ~12.5% relative error; assert 15%.
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 5000}, {0.95, 9500}, {0.99, 9900}, {0.25, 2500},
	} {
		got := h.Quantile(tc.q)
		if rel := math.Abs(got-tc.want) / tc.want; rel > 0.15 {
			t.Errorf("p%v = %v, want %v ±15%%", tc.q*100, got, tc.want)
		}
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("p0 = %v, want exact min 1", got)
	}
	if got := h.Quantile(1); got != float64(n) {
		t.Errorf("p100 = %v, want exact max %d", got, n)
	}
	if mean := h.Mean(); math.Abs(mean-wantSum/float64(n)) > 1 {
		t.Errorf("mean = %v", mean)
	}
}

func TestHistogramLogNormalQuantiles(t *testing.T) {
	// A heavy-tailed distribution spanning several orders of magnitude
	// (the latency shape the histogram exists for). Compare against
	// exact sample quantiles.
	rng := rand.New(rand.NewSource(7))
	r := NewRegistry()
	h := r.Histogram("lat", "", "ns")
	n := 20000
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = math.Exp(rng.NormFloat64()*2 + 10) // median e^10 ≈ 22026
		h.Observe(vals[i])
	}
	exact := func(q float64) float64 {
		s := append([]float64(nil), vals...)
		idx := int(q * float64(len(s)))
		if idx >= len(s) {
			idx = len(s) - 1
		}
		// nth-element via full sort is fine at this size
		sortFloats(s)
		return s[idx]
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		got, want := h.Quantile(q), exact(q)
		if rel := math.Abs(got-want) / want; rel > 0.2 {
			t.Errorf("q=%v: got %v, want %v (rel err %.2f)", q, got, want, rel)
		}
	}
}

func sortFloats(s []float64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func TestHistogramEdgeValues(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x", "", "")
	h.Observe(0)
	h.Observe(-5)
	h.Observe(0.25)
	h.Observe(math.Inf(1))
	if h.Count() != 4 {
		t.Errorf("count = %d", h.Count())
	}
	// Sub-unity and non-finite values land in the catch-all buckets
	// without panicking; quantiles stay ordered.
	if h.Quantile(0.1) > h.Quantile(0.9) {
		t.Error("quantiles not monotone")
	}
}

func TestConcurrentRecording(t *testing.T) {
	// Hammer one counter, one gauge and one histogram from many
	// goroutines; run under -race this is the data-race regression
	// test, and the counter/histogram totals must be exact.
	r := NewRegistry()
	const workers = 8
	const per = 5000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			c := r.Counter("ops", "k")
			h := r.Histogram("lat", "k", "ns")
			g := r.Gauge("util", "k")
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(float64(i%100 + 1))
				g.Set(float64(w))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("ops", "k").Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	h := r.Histogram("lat", "k", "ns")
	if got := h.Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
	wantSum := float64(workers) * 50.5 * per
	if math.Abs(h.Sum()-wantSum) > 1e-6*wantSum {
		t.Errorf("histogram sum = %v, want %v (atomic accumulation lost updates)", h.Sum(), wantSum)
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("b", "z").Inc()
	r.Counter("b", "a").Inc()
	r.Counter("a", "m").Inc()
	r.Gauge("g", "").Set(1)
	r.Histogram("h", "x", "ns").Observe(2)
	snap := r.Snapshot()
	if len(snap) != 5 {
		t.Fatalf("snapshot has %d entries", len(snap))
	}
	wantOrder := []string{"a|m", "b|a", "b|z", "g|", "h|x"}
	for i, w := range wantOrder {
		got := snap[i].Name + "|" + snap[i].Label
		if got != w {
			t.Errorf("snapshot[%d] = %s, want %s", i, got, w)
		}
	}
	if snap[0].Kind != "counter" || snap[3].Kind != "gauge" || snap[4].Kind != "histogram" {
		t.Errorf("kinds = %v %v %v", snap[0].Kind, snap[3].Kind, snap[4].Kind)
	}
	hs := snap[4]
	if hs.Count != 1 || hs.Min != 2 || hs.Max != 2 || hs.Unit != "ns" {
		t.Errorf("histogram snapshot = %+v", hs)
	}
}

func TestContextPlumbing(t *testing.T) {
	o := NewObserver()
	ctx := With(context.Background(), o)
	if From(ctx) != o {
		t.Error("From did not return the installed observer")
	}
	if From(context.Background()) != nil {
		t.Error("From on a bare context should be nil")
	}
	ctx = WithLabel(ctx, "fmi")
	if Label(ctx) != "fmi" {
		t.Errorf("label = %q", Label(ctx))
	}
	if Label(context.Background()) != "" {
		t.Error("label on a bare context should be empty")
	}
	if With(context.Background(), nil) != context.Background() {
		t.Error("With(nil) should return ctx unchanged")
	}
}
