// Package obs is the suite's observability layer: a lightweight,
// allocation-conscious metrics registry (counters, gauges, log-scale
// histograms with quantiles), span tracing around kernel phases, and a
// runtime sampler (heap, allocations, GC pauses, goroutines) — all
// exported as NDJSON so every suite run leaves a machine-readable,
// provenance-stamped record of what ran, how fast, how parallel, and
// at what memory cost.
//
// The layer is wired through context: the driver installs an *Observer
// with With, and instrumented layers (parallel, resilience, core) pull
// it back out with From. Every type in this package is nil-safe — a
// nil *Observer, *Registry, *Tracer, *Counter, ... accepts all calls
// as no-ops — so instrumentation sites never branch on "is observability
// on", and uninstrumented runs pay only a context lookup.
package obs

import "context"

// Observer bundles the three observability components. Any field may
// be nil; the accessors below degrade to no-ops.
type Observer struct {
	Metrics *Registry
	Tracer  *Tracer
	Sampler *Sampler
}

// NewObserver returns an Observer with a fresh registry and tracer
// (no sampler; callers that want runtime sampling attach one).
func NewObserver() *Observer {
	return &Observer{Metrics: NewRegistry(), Tracer: NewTracer()}
}

// Counter returns the named counter from the observer's registry, or
// nil (a no-op handle) when the observer or registry is nil.
func (o *Observer) Counter(name, label string) *Counter {
	if o == nil {
		return nil
	}
	return o.Metrics.Counter(name, label)
}

// Gauge returns the named gauge, or a no-op handle.
func (o *Observer) Gauge(name, label string) *Gauge {
	if o == nil {
		return nil
	}
	return o.Metrics.Gauge(name, label)
}

// Histogram returns the named histogram, or a no-op handle.
func (o *Observer) Histogram(name, label, unit string) *Histogram {
	if o == nil {
		return nil
	}
	return o.Metrics.Histogram(name, label, unit)
}

// StartSpan opens a span under the observer's tracer; with a nil
// observer or tracer it returns ctx unchanged and a nil (no-op) span.
func (o *Observer) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if o == nil {
		return ctx, nil
	}
	return o.Tracer.Start(ctx, name)
}

// SetLabel points the runtime sampler's label at the currently running
// kernel. No-op without a sampler.
func (o *Observer) SetLabel(label string) {
	if o == nil {
		return
	}
	o.Sampler.SetLabel(label)
}

type ctxKey int

const (
	observerKey ctxKey = iota
	labelKey
	spanKey
)

// With installs o into the context. A nil o returns ctx unchanged.
func With(ctx context.Context, o *Observer) context.Context {
	if o == nil {
		return ctx
	}
	return context.WithValue(ctx, observerKey, o)
}

// From extracts the Observer installed by With, or nil.
func From(ctx context.Context) *Observer {
	o, _ := ctx.Value(observerKey).(*Observer)
	return o
}

// WithLabel records the metric label (by convention the kernel name)
// instrumented layers below the driver should tag their metrics with.
func WithLabel(ctx context.Context, label string) context.Context {
	return context.WithValue(ctx, labelKey, label)
}

// Label returns the label installed by WithLabel, or "".
func Label(ctx context.Context) string {
	l, _ := ctx.Value(labelKey).(string)
	return l
}
