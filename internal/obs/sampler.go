package obs

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Sample is one runtime snapshot taken while the suite was executing.
type Sample struct {
	Type        string `json:"type"`            // always "sample"
	OffsetNs    int64  `json:"offset_ns"`       // since the sampler started
	Label       string `json:"label,omitempty"` // kernel running at sample time
	HeapInuse   uint64 `json:"heap_inuse"`
	HeapObjects uint64 `json:"heap_objects"`
	TotalAlloc  uint64 `json:"total_alloc"`
	NumGC       uint32 `json:"num_gc"`
	GCPauseNs   uint64 `json:"gc_pause_total_ns"`
	Goroutines  int    `json:"goroutines"`
}

// Sampler polls the Go runtime on a ticker while kernels execute:
// heap in use, cumulative allocation, GC pause totals and goroutine
// count, each sample tagged with the kernel label current at sample
// time. Start it once per run; Stop flushes a final sample so short
// runs still record at least one. A nil *Sampler accepts all calls.
type Sampler struct {
	interval time.Duration
	start    time.Time
	label    atomic.Pointer[string]
	stop     chan struct{}
	done     chan struct{}
	mu       sync.Mutex
	samples  []Sample
}

// StartSampler begins sampling every interval (values below 10ms are
// clamped to 10ms: runtime.ReadMemStats stops the world briefly, so
// sampling faster would perturb the measurements it reports).
func StartSampler(interval time.Duration) *Sampler {
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	s := &Sampler{
		interval: interval,
		start:    time.Now(),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go s.loop()
	return s
}

// SetLabel tags subsequent samples with the given label. Nil-safe.
func (s *Sampler) SetLabel(label string) {
	if s == nil {
		return
	}
	s.label.Store(&label)
}

func (s *Sampler) loop() {
	defer close(s.done)
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			s.take() // final sample so short runs record at least one
			return
		case <-t.C:
			s.take()
		}
	}
}

func (s *Sampler) take() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	label := ""
	if l := s.label.Load(); l != nil {
		label = *l
	}
	sample := Sample{
		Type:        "sample",
		OffsetNs:    time.Since(s.start).Nanoseconds(),
		Label:       label,
		HeapInuse:   ms.HeapInuse,
		HeapObjects: ms.HeapObjects,
		TotalAlloc:  ms.TotalAlloc,
		NumGC:       ms.NumGC,
		GCPauseNs:   ms.PauseTotalNs,
		Goroutines:  runtime.NumGoroutine(),
	}
	s.mu.Lock()
	s.samples = append(s.samples, sample)
	s.mu.Unlock()
}

// Stop halts the sampling goroutine (taking one final sample) and
// waits for it to exit. Safe to call once; nil-safe.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	close(s.stop)
	<-s.done
}

// Samples returns the collected samples in time order. Nil-safe.
func (s *Sampler) Samples() []Sample {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Sample, len(s.samples))
	copy(out, s.samples)
	return out
}
