// Package cachesim is a trace-driven cache-hierarchy simulator standing
// in for the hardware performance counters used in GenomicsBench's
// memory characterization (paper Figures 6, 8 and 9 and Table I).
//
// Kernels replay the address streams of their dominant data structures
// (Occ-table lookups, hash-table probes, DP-matrix rows, ...) into a
// Hierarchy; the simulator reports per-level miss ratios, DRAM traffic
// in bytes per kilo-instruction (BPKI), an estimated fraction of cycles
// stalled on data, and a simple top-down pipeline-slot breakdown.
package cachesim

import (
	"fmt"
	"math/bits"
)

// Cache is one set-associative, write-allocate, write-back cache level
// with LRU replacement.
type Cache struct {
	name     string
	lineSize int
	sets     int
	ways     int

	offsetBits uint
	indexMask  uint64

	// tags[set*ways+way]; age implements LRU via a monotonically
	// increasing access clock.
	tags  []uint64
	valid []bool
	dirty []bool
	age   []uint64
	clock uint64

	Accesses   uint64
	Misses     uint64
	Writebacks uint64
}

// NewCache builds a cache of the given total size in bytes. size must be
// ways*lineSize*powerOfTwo.
func NewCache(name string, size, ways, lineSize int) *Cache {
	if size <= 0 || ways <= 0 || lineSize <= 0 {
		panic("cachesim: non-positive cache geometry")
	}
	sets := size / (ways * lineSize)
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cachesim: %s: set count %d not a power of two", name, sets))
	}
	if lineSize&(lineSize-1) != 0 {
		panic("cachesim: line size not a power of two")
	}
	c := &Cache{
		name:       name,
		lineSize:   lineSize,
		sets:       sets,
		ways:       ways,
		offsetBits: uint(bits.TrailingZeros(uint(lineSize))),
		indexMask:  uint64(sets - 1),
		tags:       make([]uint64, sets*ways),
		valid:      make([]bool, sets*ways),
		dirty:      make([]bool, sets*ways),
		age:        make([]uint64, sets*ways),
	}
	return c
}

// Name returns the level name ("L1D", "L2", "LLC").
func (c *Cache) Name() string { return c.name }

// LineSize returns the cache-line size in bytes.
func (c *Cache) LineSize() int { return c.lineSize }

// MissRatio reports misses/accesses, or 0 with no accesses.
func (c *Cache) MissRatio() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// accessLine looks up one line address. It returns whether the access
// missed and whether a dirty line was evicted.
func (c *Cache) accessLine(lineAddr uint64, write bool) (miss, writeback bool) {
	c.clock++
	c.Accesses++
	set := int(lineAddr & c.indexMask)
	base := set * c.ways
	// Hit path.
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == lineAddr {
			c.age[i] = c.clock
			if write {
				c.dirty[i] = true
			}
			return false, false
		}
	}
	// Miss: find victim (invalid first, else LRU).
	c.Misses++
	victim := base
	for w := 0; w < c.ways; w++ {
		i := base + w
		if !c.valid[i] {
			victim = i
			break
		}
		if c.age[i] < c.age[victim] {
			victim = i
		}
	}
	writeback = c.valid[victim] && c.dirty[victim]
	if writeback {
		c.Writebacks++
	}
	c.valid[victim] = true
	c.tags[victim] = lineAddr
	c.dirty[victim] = write
	c.age[victim] = c.clock
	return true, writeback
}

// Config describes a three-level hierarchy geometry plus the latency and
// cost parameters of the stall model.
type Config struct {
	L1Size, L1Ways   int
	L2Size, L2Ways   int
	LLCSize, LLCWays int
	LineSize         int

	// Latency model (cycles).
	L1Latency   float64 // charged on every access (hidden; not stalled)
	L2Latency   float64 // extra cycles on L1 miss
	LLCLatency  float64 // extra cycles on L2 miss
	DRAMLatency float64 // extra cycles on LLC miss

	// MLP is the average number of overlapping outstanding misses; stall
	// cycles are divided by it.
	MLP float64

	// BaseCPI is the no-stall cycles-per-instruction of the core.
	BaseCPI float64

	// PrefetchDiscount scales the stall penalty charged to software
	// prefetches (Hierarchy.Prefetch). A prefetch issued a batch
	// rotation ahead of use overlaps its miss with other lanes'
	// compute and with sibling prefetches, so only a fraction of the
	// raw latency surfaces as stall; 0 means DefaultPrefetchDiscount.
	PrefetchDiscount float64
}

// DefaultPrefetchDiscount is the stall fraction charged to a software
// prefetch when Config.PrefetchDiscount is unset: one quarter of the
// demand-miss penalty, i.e. a batch window deep enough to overlap four
// misses — the conservative end of what lock-step batching achieves.
const DefaultPrefetchDiscount = 0.25

// XeonE31240v5 mirrors the paper's Table I machine: 32 KB 8-way L1D,
// 256 KB 8-way L2, 8 MB 16-way LLC, 64 B lines.
func XeonE31240v5() Config {
	return Config{
		L1Size: 32 << 10, L1Ways: 8,
		L2Size: 256 << 10, L2Ways: 8,
		LLCSize: 8 << 20, LLCWays: 16,
		LineSize:    64,
		L1Latency:   4,
		L2Latency:   8,
		LLCLatency:  30,
		DRAMLatency: 200,
		MLP:         4,
		BaseCPI:     0.4,
	}
}

// Hierarchy simulates an inclusive-enough three-level data-cache path.
type Hierarchy struct {
	cfg Config
	L1  *Cache
	L2  *Cache
	LLC *Cache

	Reads, Writes  uint64
	Prefetches     uint64 // software prefetches (Prefetch calls)
	DRAMBytes      uint64 // line fills + writebacks reaching DRAM
	penaltyCyclesX float64
	lastMissLine   uint64
}

// NewHierarchy builds a hierarchy from a Config.
func NewHierarchy(cfg Config) *Hierarchy {
	return &Hierarchy{
		cfg: cfg,
		L1:  NewCache("L1D", cfg.L1Size, cfg.L1Ways, cfg.LineSize),
		L2:  NewCache("L2", cfg.L2Size, cfg.L2Ways, cfg.LineSize),
		LLC: NewCache("LLC", cfg.LLCSize, cfg.LLCWays, cfg.LineSize),
	}
}

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// ResetStats zeroes all counters while keeping cache contents, so a
// warm-up pass over resident data structures is excluded from the
// measured steady state.
func (h *Hierarchy) ResetStats() {
	for _, c := range []*Cache{h.L1, h.L2, h.LLC} {
		c.Accesses, c.Misses, c.Writebacks = 0, 0, 0
	}
	h.Reads, h.Writes, h.Prefetches, h.DRAMBytes = 0, 0, 0, 0
	h.penaltyCyclesX = 0
}

// Access simulates one data access of size bytes at addr, splitting it
// into line accesses when it straddles line boundaries.
func (h *Hierarchy) Access(addr uint64, size int, write bool) {
	if size <= 0 {
		size = 1
	}
	line := uint64(h.cfg.LineSize)
	first := addr / line
	last := (addr + uint64(size) - 1) / line
	for la := first; la <= last; la++ {
		h.accessOneLine(la, write, 1)
	}
	if write {
		h.Writes++
	} else {
		h.Reads++
	}
}

// Prefetch simulates a software prefetch of size bytes at addr: the
// touched lines are installed through the full hierarchy exactly like
// a read (so a later demand access hits), but any miss latency is
// charged at the PrefetchDiscount — the model of a prefetch issued
// early enough that most of its miss overlaps useful work. This is how
// the batched SMEM/kmer engines prove their reordered streams stall
// less: same demand addresses, misses moved onto discounted prefetches.
func (h *Hierarchy) Prefetch(addr uint64, size int) {
	if size <= 0 {
		size = 1
	}
	scale := h.cfg.PrefetchDiscount
	if scale <= 0 {
		scale = DefaultPrefetchDiscount
	}
	line := uint64(h.cfg.LineSize)
	first := addr / line
	last := (addr + uint64(size) - 1) / line
	for la := first; la <= last; la++ {
		h.accessOneLine(la, false, scale)
	}
	h.Prefetches++
}

func (h *Hierarchy) accessOneLine(lineAddr uint64, write bool, penaltyScale float64) {
	miss1, wb1 := h.L1.accessLine(lineAddr, write)
	if wb1 {
		// Dirty L1 victim is absorbed by L2 (write-back path); modelled
		// as an L2 write access.
		h.L2.accessLine(lineAddr^0x5bd1e995, true)
	}
	if !miss1 {
		return
	}
	// A hardware stream prefetcher hides most of the latency of
	// next-line misses; sequential streams still move DRAM bytes but
	// stall far less than random misses. penaltyScale layers the
	// software-prefetch discount on top (1 for demand accesses).
	penalty := penaltyScale
	if lineAddr == h.lastMissLine+1 {
		penalty *= 0.15
	}
	h.lastMissLine = lineAddr
	h.penaltyCyclesX += penalty * h.cfg.L2Latency
	miss2, wb2 := h.L2.accessLine(lineAddr, false)
	if wb2 {
		h.LLC.accessLine(lineAddr^0x9e3779b9, true)
	}
	if !miss2 {
		return
	}
	h.penaltyCyclesX += penalty * h.cfg.LLCLatency
	miss3, wb3 := h.LLC.accessLine(lineAddr, false)
	if wb3 {
		h.DRAMBytes += uint64(h.cfg.LineSize)
	}
	if miss3 {
		h.penaltyCyclesX += penalty * h.cfg.DRAMLatency
		h.DRAMBytes += uint64(h.cfg.LineSize)
	}
}

// Report summarizes a simulated kernel execution against an instruction
// count (taken from the kernel's perf counters).
type Report struct {
	Instructions   uint64
	L1MissRatio    float64
	L2MissRatio    float64
	LLCMissRatio   float64
	BPKI           float64 // DRAM bytes per kilo-instruction
	StallFraction  float64 // fraction of cycles stalled on data
	CyclesEstimate float64
}

// Report computes miss ratios, BPKI and the stall estimate for a run
// that executed the given number of instructions.
func (h *Hierarchy) Report(instructions uint64) Report {
	r := Report{
		Instructions: instructions,
		L1MissRatio:  h.L1.MissRatio(),
		L2MissRatio:  h.L2.MissRatio(),
		LLCMissRatio: h.LLC.MissRatio(),
	}
	if instructions > 0 {
		r.BPKI = float64(h.DRAMBytes) / (float64(instructions) / 1000)
	}
	mlp := h.cfg.MLP
	if mlp < 1 {
		mlp = 1
	}
	stall := h.penaltyCyclesX / mlp
	busy := h.cfg.BaseCPI * float64(instructions)
	r.CyclesEstimate = busy + stall
	if r.CyclesEstimate > 0 {
		r.StallFraction = stall / r.CyclesEstimate
	}
	return r
}

// TopDown is a coarse top-down pipeline-slot breakdown in the style of
// the paper's Figure 9. Fractions sum to 1.
type TopDown struct {
	Retiring       float64
	BadSpeculation float64
	FrontendBound  float64
	BackendMemory  float64
	BackendCore    float64
}

// TopDownEstimate derives a slot breakdown from the stall model plus the
// kernel's branch and vector/float op shares: memory stalls come from
// the cache simulation, backend-core pressure from vector/FP port
// contention, bad speculation from branch density.
func (h *Hierarchy) TopDownEstimate(instructions uint64, branchFrac, vecFloatFrac float64) TopDown {
	rep := h.Report(instructions)
	td := TopDown{}
	td.BackendMemory = rep.StallFraction
	remaining := 1 - td.BackendMemory
	// Mispredict-driven slot waste: assume a few percent of branches
	// mispredict; data-dependent branches dominate these kernels.
	td.BadSpeculation = remaining * branchFrac * 0.25
	td.FrontendBound = remaining * 0.05
	// Vector and FP ops contend for limited issue ports.
	td.BackendCore = remaining * vecFloatFrac * 0.45
	td.Retiring = 1 - td.BackendMemory - td.BadSpeculation - td.FrontendBound - td.BackendCore
	if td.Retiring < 0 {
		td.Retiring = 0
	}
	return td
}
