package cachesim

import (
	"math/rand"
	"testing"
)

// refLRUSet is a straightforward reference model of one set: a slice
// ordered most-recently-used first.
type refLRUSet struct {
	lines []uint64
	ways  int
}

func (s *refLRUSet) access(line uint64) (miss bool) {
	for i, l := range s.lines {
		if l == line {
			copy(s.lines[1:i+1], s.lines[:i])
			s.lines[0] = line
			return false
		}
	}
	s.lines = append([]uint64{line}, s.lines...)
	if len(s.lines) > s.ways {
		s.lines = s.lines[:s.ways]
	}
	return true
}

// TestCacheMatchesReferenceLRU drives one cache and the reference model
// with the same random line stream and demands identical hit/miss
// behaviour on every access.
func TestCacheMatchesReferenceLRU(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const ways = 4
	const sets = 8
	c := NewCache("t", sets*ways*64, ways, 64)
	ref := make([]refLRUSet, sets)
	for i := range ref {
		ref[i].ways = ways
	}
	for step := 0; step < 20000; step++ {
		line := uint64(rng.Intn(64)) // 64 distinct lines over 8 sets
		set := int(line % sets)
		wantMiss := ref[set].access(line)
		gotMiss, _ := c.accessLine(line, rng.Intn(2) == 0)
		if gotMiss != wantMiss {
			t.Fatalf("step %d line %d: cache miss=%v, reference miss=%v", step, line, gotMiss, wantMiss)
		}
	}
	if c.Misses == 0 || c.Misses == c.Accesses {
		t.Fatalf("degenerate stream: %d misses of %d", c.Misses, c.Accesses)
	}
}

// TestWritebackOnlyAfterDirtying: clean lines must never write back.
func TestWritebackOnlyAfterDirtying(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := NewCache("t", 2*64, 2, 64) // 1 set, 2 ways
	for step := 0; step < 5000; step++ {
		_, wb := c.accessLine(uint64(rng.Intn(8)), false) // reads only
		if wb {
			t.Fatal("read-only stream produced a writeback")
		}
	}
}

// TestHierarchyInclusionTraffic: L2 accesses can only originate from L1
// misses or writebacks, and LLC from L2 misses or writebacks.
func TestHierarchyInclusionTraffic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := NewHierarchy(XeonE31240v5())
	for i := 0; i < 50000; i++ {
		h.Access(rng.Uint64()%(64<<20), 8, rng.Intn(3) == 0)
	}
	if h.L2.Accesses > h.L1.Misses+h.L1.Writebacks {
		t.Errorf("L2 accesses %d exceed L1 misses %d + writebacks %d",
			h.L2.Accesses, h.L1.Misses, h.L1.Writebacks)
	}
	if h.LLC.Accesses > h.L2.Misses+h.L2.Writebacks {
		t.Errorf("LLC accesses %d exceed L2 misses %d + writebacks %d",
			h.LLC.Accesses, h.L2.Misses, h.L2.Writebacks)
	}
	if h.DRAMBytes%uint64(h.Config().LineSize) != 0 {
		t.Error("DRAM traffic not line-aligned")
	}
}
