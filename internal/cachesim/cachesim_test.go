package cachesim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCacheHitAfterFill(t *testing.T) {
	c := NewCache("L1", 1024, 2, 64)
	if miss, _ := c.accessLine(7, false); !miss {
		t.Error("first access should miss")
	}
	if miss, _ := c.accessLine(7, false); miss {
		t.Error("second access should hit")
	}
	if c.Accesses != 2 || c.Misses != 1 {
		t.Errorf("accesses=%d misses=%d", c.Accesses, c.Misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way, 1 set: size = 2 ways * 64 line = 128.
	c := NewCache("tiny", 128, 2, 64)
	c.accessLine(0, false)
	c.accessLine(1, false)
	c.accessLine(0, false) // touch 0 so 1 is LRU
	c.accessLine(2, false) // evicts 1
	if miss, _ := c.accessLine(0, false); miss {
		t.Error("line 0 should still be resident")
	}
	if miss, _ := c.accessLine(1, false); !miss {
		t.Error("line 1 should have been evicted")
	}
}

func TestCacheDirtyWriteback(t *testing.T) {
	c := NewCache("tiny", 128, 2, 64)
	c.accessLine(0, true) // dirty
	c.accessLine(1, false)
	_, wb := c.accessLine(2, false) // evicts 0 (LRU, dirty)
	if !wb {
		t.Error("expected writeback of dirty line")
	}
	if c.Writebacks != 1 {
		t.Errorf("Writebacks = %d", c.Writebacks)
	}
}

func TestCacheBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-power-of-two sets")
		}
	}()
	NewCache("bad", 192, 1, 64)
}

func TestHierarchySequentialVsRandom(t *testing.T) {
	// A sequential scan should have far fewer misses per byte than
	// uniform random accesses over a large region.
	cfg := XeonE31240v5()
	seq := NewHierarchy(cfg)
	for i := 0; i < 100000; i++ {
		seq.Access(uint64(i)*4, 4, false)
	}
	rngH := NewHierarchy(cfg)
	rng := rand.New(rand.NewSource(1))
	span := uint64(1 << 30)
	for i := 0; i < 100000; i++ {
		rngH.Access(rng.Uint64()%span, 4, false)
	}
	if seq.L1.MissRatio() >= rngH.L1.MissRatio() {
		t.Errorf("sequential miss ratio %.3f !< random %.3f",
			seq.L1.MissRatio(), rngH.L1.MissRatio())
	}
	if seq.DRAMBytes >= rngH.DRAMBytes {
		t.Errorf("sequential DRAM bytes %d !< random %d", seq.DRAMBytes, rngH.DRAMBytes)
	}
}

func TestHierarchySmallWorkingSetFitsInL1(t *testing.T) {
	h := NewHierarchy(XeonE31240v5())
	// 16 KB working set scanned repeatedly fits in a 32 KB L1.
	for pass := 0; pass < 10; pass++ {
		for off := uint64(0); off < 16<<10; off += 64 {
			h.Access(off, 8, false)
		}
	}
	if mr := h.L1.MissRatio(); mr > 0.15 {
		t.Errorf("L1 miss ratio %.3f too high for resident working set", mr)
	}
}

func TestHierarchyStraddlingAccess(t *testing.T) {
	h := NewHierarchy(XeonE31240v5())
	h.Access(60, 8, false) // crosses the 64-byte boundary
	if h.L1.Accesses != 2 {
		t.Errorf("straddling access touched %d lines, want 2", h.L1.Accesses)
	}
}

func TestReportBPKIAndStall(t *testing.T) {
	h := NewHierarchy(XeonE31240v5())
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50000; i++ {
		h.Access(rng.Uint64()%(1<<32), 4, false)
	}
	rep := h.Report(1_000_000)
	if rep.BPKI <= 0 {
		t.Error("BPKI should be positive for a random stream")
	}
	if rep.StallFraction <= 0 || rep.StallFraction >= 1 {
		t.Errorf("StallFraction = %v, want in (0,1)", rep.StallFraction)
	}
}

func TestReportZeroInstructions(t *testing.T) {
	h := NewHierarchy(XeonE31240v5())
	rep := h.Report(0)
	if rep.BPKI != 0 {
		t.Error("BPKI should be 0 with no instructions")
	}
}

func TestTopDownSumsToOne(t *testing.T) {
	f := func(nAcc uint16, branchPct, vecPct uint8) bool {
		h := NewHierarchy(XeonE31240v5())
		rng := rand.New(rand.NewSource(int64(nAcc)))
		for i := 0; i < int(nAcc); i++ {
			h.Access(rng.Uint64()%(1<<28), 4, false)
		}
		td := h.TopDownEstimate(uint64(nAcc)*10+1000,
			float64(branchPct%101)/100, float64(vecPct%101)/100)
		sum := td.Retiring + td.BadSpeculation + td.FrontendBound + td.BackendMemory + td.BackendCore
		return sum > 0.999 && sum < 1.001 &&
			td.Retiring >= 0 && td.BackendMemory >= 0 && td.BackendCore >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestMissesNeverExceedAccesses(t *testing.T) {
	f := func(addrs []uint32) bool {
		h := NewHierarchy(XeonE31240v5())
		for _, a := range addrs {
			h.Access(uint64(a), 4, a%3 == 0)
		}
		return h.L1.Misses <= h.L1.Accesses &&
			h.L2.Misses <= h.L2.Accesses &&
			h.LLC.Misses <= h.LLC.Accesses &&
			h.L2.Accesses <= h.L1.Misses+h.L1.Writebacks
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// A software prefetch must install the line (the following demand
// access hits) while charging only the discounted stall penalty.
func TestPrefetchInstallsLineAtDiscount(t *testing.T) {
	demand := NewHierarchy(XeonE31240v5())
	prefetched := NewHierarchy(XeonE31240v5())
	rng := rand.New(rand.NewSource(99))
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = (rng.Uint64() % (1 << 27)) &^ 63 // distinct-ish random lines
	}
	for _, a := range addrs {
		demand.Access(a, 8, false)
	}
	for _, a := range addrs {
		prefetched.Prefetch(a, 8)
		prefetched.Access(a, 8, false)
	}
	if prefetched.Prefetches != uint64(len(addrs)) {
		t.Fatalf("Prefetches = %d, want %d", prefetched.Prefetches, len(addrs))
	}
	sd := demand.Report(1_000_000)
	sp := prefetched.Report(1_000_000)
	if sp.CyclesEstimate >= sd.CyclesEstimate {
		t.Fatalf("prefetched run should stall less: %f vs %f cycles",
			sp.CyclesEstimate, sd.CyclesEstimate)
	}
	// The discount is 0.25 by default, so the prefetched stall should be
	// roughly a quarter of the demand stall (same miss set).
	stallD := sd.CyclesEstimate * sd.StallFraction
	stallP := sp.CyclesEstimate * sp.StallFraction
	if stallP > 0.5*stallD {
		t.Fatalf("prefetched stall %f not below half of demand stall %f", stallP, stallD)
	}
}

// An explicit PrefetchDiscount must scale the charged penalty.
func TestPrefetchDiscountConfigurable(t *testing.T) {
	cheap := XeonE31240v5()
	cheap.PrefetchDiscount = 0.05
	dear := XeonE31240v5()
	dear.PrefetchDiscount = 0.95
	hc, hd := NewHierarchy(cheap), NewHierarchy(dear)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2048; i++ {
		a := (rng.Uint64() % (1 << 27)) &^ 63
		hc.Prefetch(a, 8)
		hd.Prefetch(a, 8)
	}
	rc, rd := hc.Report(100_000), hd.Report(100_000)
	if rc.CyclesEstimate >= rd.CyclesEstimate {
		t.Fatalf("discount 0.05 should stall less than 0.95: %f vs %f",
			rc.CyclesEstimate, rd.CyclesEstimate)
	}
}

// ResetStats must zero the prefetch counter with the rest.
func TestResetStatsClearsPrefetches(t *testing.T) {
	h := NewHierarchy(XeonE31240v5())
	h.Prefetch(0, 8)
	h.ResetStats()
	if h.Prefetches != 0 {
		t.Fatalf("Prefetches = %d after ResetStats", h.Prefetches)
	}
}
