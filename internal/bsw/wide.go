package bsw

import (
	"repro/internal/genome"
	"repro/internal/lanes"
	"repro/internal/scratch"
	"repro/internal/seq2"
)

// The 16-wide int16 band kernel — the form the original BWA-MEM2
// kernel actually ships: one SIMD vector of saturating int16 cells per
// 16-column group, with the horizontal (F) gap chain resolved by a
// prefix-max scan instead of the scalar serial carry.
//
// alignWide replays AlignInto's recurrence exactly and is
// differential-tested to return identical Results. The int16 rows
// halve the memory traffic of the int32 SWAR rows again, and the asm
// kernels (row_amd64.s / row_arm64.s via row_asm.go) retire 16 cells
// per step. Dispatch is three-way gated in AlignInto: the architecture
// must have an asm kernel (bswHaveWideAsm), the host must report a
// wide tier (cpufeat.Wide16, which folds in the GBENCH_SIMD override),
// the scoring must pass wideEligible's range proof, and the DP area
// must clear the measured lanes.WideMinWork floor.
//
// Correctness structure, mirroring poa's row_wide.go:
//
//  1. wideEligible bounds every reachable |score| by wideScoreBound,
//     so real values never saturate and int16 arithmetic equals the
//     scalar int32 reference bit for bit.
//  2. Unreachable cells carry the -32768 sentinel. Saturating
//     subtraction of nonnegative penalties is sticky at -32768, and
//     sentinel-derived values can gain at most m*match <= wideScoreBound
//     over the whole DP, so they stay below -32768+wideScoreBound —
//     strictly under every reachable value (>= -wideScoreBound) and
//     under best-ZDrop (ZDrop <= wideScoreBound). Every comparison
//     against a sentinel therefore resolves exactly as the scalar
//     reference's -(1<<29) does.
//  3. The F chain is linearized before vectorizing: with oe >= ge the
//     self-referential f[j] = max(H[j-1]-oe, f[j-1]-ge) equals the
//     chain f[j] = max(c[j-1], f[j-1]-ge) over c[j] = max(htmp[j],
//     clamp) - oe, where htmp is the cell value before the F merge
//     (the f-through-H term is dominated by the direct f chain). That
//     chain is the same shift-and-max recurrence as poa's gap scan,
//     so the asm kernels run it as a log-step prefix-max scan; scan
//     and serial chain are value-identical for ge in [0, 4095] (each
//     scan constant ge, 2ge, 4ge, 8ge is an exact int16 product, and
//     saturating subtractions of same-sign constants compose exactly).
//
// Rows carry lanes.WideWidth padding cells past column n so the last
// group can load and store full vectors; padding lanes sit right of
// the band, are masked out of the row maximum, and the only padding
// cell later rows can read (hi+1, since the band edge advances by at
// most one column per row) is re-sentineled after every row exactly
// like the scalar path.

// negInf16 is the int16 band sentinel. It is a fixed point of
// saturating nonnegative-penalty subtraction, which is what keeps
// unreachable cells unreachable without int32 headroom.
const negInf16 = int16(-32768)

// wideScoreBound caps |score| for the int16 path. 8000 leaves the
// sentinel separation argument a >4x margin (it only needs
// 2*bound < 32768) and keeps every intermediate sum exact.
const wideScoreBound = 8000

// wideEligible reports whether the int16 kernel provably computes the
// same alignment as the int32 reference for query length m and target
// length n: nonnegative scoring (the kernel's saturation and sentinel
// arguments need penalties to be penalties), ZDrop within the
// sentinel separation margin, and every reachable |score| bounded by
// wideScoreBound. A path through the DP takes at most m+n steps, each
// changing the score by at most max(match, mismatch, gapO+gapE); the
// +16 absorbs the padding lanes of the last group.
func wideEligible(p Params, m, n int) bool {
	if p.Match < 0 || p.Mismatch < 0 || p.GapOpen < 0 || p.GapExtend < 0 {
		return false
	}
	if p.ZDrop > wideScoreBound {
		return false
	}
	step := int64(p.Match)
	if int64(p.Mismatch) > step {
		step = int64(p.Mismatch)
	}
	if oe := int64(p.GapOpen) + int64(p.GapExtend); oe > step {
		step = oe
	}
	return int64(p.GapOpen)+int64(m+n+16)*step <= wideScoreBound
}

// wideArea is the DP-area estimate the dispatch floor compares
// against lanes.WideMinWork: rows times banded columns.
func wideArea(p Params, m, n int) int {
	w := p.Band
	if w <= 0 {
		w = 1
	}
	cols := 2*w + 1
	if cols > n {
		cols = n
	}
	return m * cols
}

// alignWide is AlignInto over int16 rows and 16-column groups. Same
// contract: claims the arena, bit-identical Results. useAsm selects
// the assembly row kernel; tests pin it false to exercise the
// portable twin on any host.
func alignWide(q, t genome.Seq, p Params, a *scratch.Arena, useAsm bool) Result {
	m, n := len(q), len(t)
	res := Result{}
	if m == 0 || n == 0 {
		return res
	}
	if a == nil {
		a = scratch.New()
	}
	a.Reset()
	w := p.Band
	if w <= 0 {
		w = 1
	}
	const pad = lanes.WideWidth
	H := a.Int16s(n + 1 + pad)
	E := a.Int16s(n + 1 + pad)
	prevH := a.Int16s(n + 1 + pad)
	pt := seq2.PackInto(a.Uint64s(seq2.Words(n)), t)
	// One spare zero word past the dense match bits lets the per-group
	// 16-bit window extraction below read a straddling high word
	// unconditionally.
	mwords := seq2.BitsWords(n)
	mbits := a.Uint64s(mwords + 1)
	mbits[mwords] = 0
	gmask := a.Uint16s((n+pad-1)/pad + 1)

	gapO := int16(p.GapOpen)
	ge := int16(p.GapExtend)
	oe := gapO + ge
	match := int16(p.Match)
	mism := int16(-p.Mismatch)
	local := p.Mode == Local
	clamp := negInf16
	if local {
		clamp = 0
	}

	// Row 0 initialization (same recurrence as AlignInto); padding
	// cells start as sentinels so row 1's out-of-band lanes compute
	// from defined values.
	for j := 0; j <= n; j++ {
		E[j] = negInf16
		if local || j == 0 {
			prevH[j] = 0
		} else if j <= w {
			prevH[j] = int16(-(p.GapOpen + j*p.GapExtend))
		} else {
			prevH[j] = negInf16
		}
	}
	for j := n + 1; j < n+1+pad; j++ {
		H[j] = negInf16
		E[j] = negInf16
		prevH[j] = negInf16
	}
	best := int16(0)
	bestI, bestJ := 0, 0
	if !local {
		best = negInf16
	}
	var cells uint64

	for i := 1; i <= m; i++ {
		lo := i - w
		if lo < 1 {
			lo = 1
		}
		hi := i + w
		if hi > n {
			hi = n
		}
		if lo > hi {
			break
		}
		// Left boundary of the row.
		if local {
			H[lo-1] = 0
		} else if lo == 1 {
			H[0] = int16(-(p.GapOpen + i*p.GapExtend))
		} else {
			H[lo-1] = negInf16
		}
		seq2.MatchMaskBits(mbits[:mwords], pt, q[i-1])
		// The band does not start 16-aligned, so each group's 16 match
		// bits straddle word boundaries: extract them here, where the
		// shift amounts are cheap, instead of in the kernels.
		ngroups := (hi - lo + 1 + pad - 1) / pad
		for gi := 0; gi < ngroups; gi++ {
			b := lo - 1 + pad*gi
			v := mbits[b>>6] >> uint(b&63)
			if b&63 > 48 {
				v |= mbits[b>>6+1] << uint(64-b&63)
			}
			gmask[gi] = uint16(v)
		}
		tail := uint16(0xFFFF) >> uint(pad*ngroups-(hi-lo+1))
		cells += uint64(hi - lo + 1)
		var rowMax int16
		if useAsm {
			rowMax = bswRowWide(prevH, H, E, gmask, lo, ngroups, tail, match, mism, oe, ge, clamp, H[lo-1])
		} else {
			rowMax = bswRowPortable(prevH, H, E, gmask, lo, ngroups, tail, match, mism, oe, ge, clamp, H[lo-1])
		}
		// Out-of-band cells on the right are unreachable. This also
		// repairs the one padding-lane store (hi+1) the next row reads.
		if hi < n {
			H[hi+1] = negInf16
			E[hi+1] = negInf16
		}
		if rowMax > best {
			best = rowMax
			bestI = i
			// The scalar reference records the leftmost cell achieving
			// the row maximum (strict-greater updates); recover it by
			// rescan, only on the rows that improve on best.
			bestJ = lo
			for j := lo; j <= hi; j++ {
				if H[j] == rowMax {
					bestJ = j
					break
				}
			}
		}
		if !local && p.ZDrop > 0 && int(rowMax) < int(best)-p.ZDrop {
			res.ZDropped = true
			break
		}
		prevH, H = H, prevH
	}
	res.Score = int(best)
	res.QEnd = bestI
	res.TEnd = bestJ
	res.CellUpdates = cells
	return res
}

// bswRowPortable advances one banded DP row, 16 columns per group.
// It is the bit-level reference for the asm kernels: same candidate
// order, same saturation, serial F chain where the asm runs the scan.
//   - prevH/curH/ev: previous H row, output H row, E row (updated in
//     place); all padded so index lo-1+16*ngroups stays in bounds.
//   - gmask: per-group match bits (bit l = column lo+16*gi+l matches).
//   - tail: valid-lane bits of the last group; lanes past the band
//     are excluded from the returned row maximum.
//   - hleft: the finished boundary cell curH[lo-1].
//
// Returns the row maximum over in-band lanes.
func bswRowPortable(prevH, curH, ev []int16, gmask []uint16, lo, ngroups int, tail uint16, match, mism, oe, ge, clamp, hleft int16) int16 {
	clampv := lanes.SplatI16x16(clamp)
	// carry is the incoming F-chain value for each group's lane 0:
	// for the first group f[lo] = H[lo-1]-oe (the row enters with
	// F = -inf, so only the open-from-boundary term survives).
	carry := satSub16(hleft, oe)
	rowMax := negInf16
	for gi := 0; gi < ngroups; gi++ {
		j := lo + gi*lanes.WideWidth
		s := lanes.Pick16(gmask[gi], match, mism)
		h1 := lanes.Load16I16(prevH, j-1).Adds(s)
		e2 := lanes.Load16I16(prevH, j).SubsS(oe).Max(lanes.Load16I16(ev, j).SubsS(ge))
		lanes.Store16I16(ev, j, e2)
		htmp := h1.Max(e2).Max(clampv)
		c := htmp.SubsS(oe).Array()
		var f [lanes.WideWidth]int16
		f[0] = carry
		for l := 1; l < lanes.WideWidth; l++ {
			f[l] = maxI16s(c[l-1], satSub16(f[l-1], ge))
		}
		hrow := htmp.Max(lanes.FromArrayI16x16(f))
		lanes.Store16I16(curH, j, hrow)
		vm := uint16(0xFFFF)
		if gi == ngroups-1 {
			vm = tail
		}
		ha := hrow.Array()
		for l := 0; l < lanes.WideWidth; l++ {
			if vm&(1<<uint(l)) != 0 && ha[l] > rowMax {
				rowMax = ha[l]
			}
		}
		carry = maxI16s(c[lanes.WideWidth-1], satSub16(f[lanes.WideWidth-1], ge))
	}
	return rowMax
}

// satSub16 is the scalar twin of VPSUBSW / SQSUB: exact difference
// clamped to the int16 range.
func satSub16(a, b int16) int16 {
	d := int32(a) - int32(b)
	if d > 32767 {
		return 32767
	}
	if d < -32768 {
		return -32768
	}
	return int16(d)
}

func maxI16s(a, b int16) int16 {
	if a > b {
		return a
	}
	return b
}
