package bsw

import (
	"math/rand"
	"testing"

	"repro/internal/genome"
	"repro/internal/simio"
)

func TestTracePerfectMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	q := genome.Random(rng, 60)
	p := DefaultParams()
	r := AlignTrace(q, q, p)
	if r.Score != 60*p.Match {
		t.Errorf("score %d", r.Score)
	}
	if r.Cigar.String() != "60M" {
		t.Errorf("CIGAR %s, want 60M", r.Cigar)
	}
	if r.QBeg != 0 || r.TBeg != 0 {
		t.Errorf("start (%d,%d), want (0,0)", r.QBeg, r.TBeg)
	}
}

func TestTraceScoreMatchesAlign(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		q := genome.Random(rng, 20+rng.Intn(80))
		tg := genome.Random(rng, 20+rng.Intn(80))
		for _, mode := range []Mode{Local, Extension} {
			p := DefaultParams()
			p.Mode = mode
			p.ZDrop = 0
			a := Align(q, tg, p)
			tr := AlignTrace(q, tg, p)
			if a.Score != tr.Score {
				t.Fatalf("trial %d mode %d: Align %d, AlignTrace %d", trial, mode, a.Score, tr.Score)
			}
		}
	}
}

func TestTraceCigarConsumesCorrectLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		q := genome.Random(rng, 80)
		tg := q.Clone()
		// A few edits.
		for m := 0; m < 4; m++ {
			tg[rng.Intn(len(tg))] = genome.Base(rng.Intn(4))
		}
		p := DefaultParams()
		r := AlignTrace(q, tg, p)
		if got := r.Cigar.ReadLen(); got != r.QEnd-r.QBeg {
			t.Fatalf("CIGAR consumes %d query bases, span is %d (%s)", got, r.QEnd-r.QBeg, r.Cigar)
		}
		if got := r.Cigar.RefLen(); got != r.TEnd-r.TBeg {
			t.Fatalf("CIGAR consumes %d target bases, span is %d (%s)", got, r.TEnd-r.TBeg, r.Cigar)
		}
	}
}

func TestTraceDeletionRecovered(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	base := genome.Random(rng, 70)
	q := append(base[:35].Clone(), base[38:]...) // query missing 3 bases
	p := DefaultParams()
	r := AlignTrace(q, base, p)
	var dels int
	for _, e := range r.Cigar {
		if e.Op == simio.CigarDel {
			dels += e.Len
		}
	}
	if dels != 3 {
		t.Errorf("CIGAR %s recovered %d deleted bases, want 3", r.Cigar, dels)
	}
}

func TestTraceInsertionRecovered(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	base := genome.Random(rng, 70)
	q := append(base[:35].Clone(), genome.MustFromString("GG")...)
	q = append(q, base[35:]...)
	p := DefaultParams()
	r := AlignTrace(q, base, p)
	var ins int
	for _, e := range r.Cigar {
		if e.Op == simio.CigarIns {
			ins += e.Len
		}
	}
	if ins != 2 {
		t.Errorf("CIGAR %s recovered %d inserted bases, want 2", r.Cigar, ins)
	}
}

func TestTraceLocalModeStartsAnywhere(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	core := genome.Random(rng, 40)
	q := append(genome.Random(rng, 20), core...)
	tg := append(genome.Random(rng, 30), core...)
	tg = append(tg, genome.Random(rng, 10)...)
	p := DefaultParams()
	p.Mode = Local
	p.ZDrop = 0
	p.Band = 200
	r := AlignTrace(q, tg, p)
	if r.QBeg == 0 && r.TBeg == 0 {
		t.Error("local alignment should not be anchored at the origin here")
	}
	if r.QEnd-r.QBeg < 35 {
		t.Errorf("local alignment span %d too short for a 40-base core", r.QEnd-r.QBeg)
	}
}

func TestTraceEmpty(t *testing.T) {
	p := DefaultParams()
	r := AlignTrace(nil, genome.MustFromString("ACGT"), p)
	if r.Score != 0 || len(r.Cigar) != 0 {
		t.Error("empty query should yield empty trace")
	}
}
