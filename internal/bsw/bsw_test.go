package bsw

import (
	"math/rand"
	"testing"

	"repro/internal/genome"
)

// naiveLocalSW is an O(mn) reference Smith-Waterman with affine gaps.
func naiveLocalSW(q, t genome.Seq, p Params) int {
	m, n := len(q), len(t)
	H := make([][]int, m+1)
	E := make([][]int, m+1)
	F := make([][]int, m+1)
	for i := range H {
		H[i] = make([]int, n+1)
		E[i] = make([]int, n+1)
		F[i] = make([]int, n+1)
		for j := range E[i] {
			E[i][j] = negInf
			F[i][j] = negInf
		}
	}
	best := 0
	for i := 1; i <= m; i++ {
		for j := 1; j <= n; j++ {
			s := p.Match
			if q[i-1] != t[j-1] {
				s = -p.Mismatch
			}
			e := H[i-1][j] - p.GapOpen - p.GapExtend
			if E[i-1][j]-p.GapExtend > e {
				e = E[i-1][j] - p.GapExtend
			}
			f := H[i][j-1] - p.GapOpen - p.GapExtend
			if F[i][j-1]-p.GapExtend > f {
				f = F[i][j-1] - p.GapExtend
			}
			h := H[i-1][j-1] + s
			if e > h {
				h = e
			}
			if f > h {
				h = f
			}
			if h < 0 {
				h = 0
			}
			H[i][j] = h
			E[i][j] = e
			F[i][j] = f
			if h > best {
				best = h
			}
		}
	}
	return best
}

func TestAlignFullMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := DefaultParams()
	for trial := 0; trial < 40; trial++ {
		q := genome.Random(rng, 1+rng.Intn(40))
		tg := genome.Random(rng, 1+rng.Intn(40))
		got := AlignFull(q, tg, p).Score
		want := naiveLocalSW(q, tg, p)
		if got != want {
			t.Fatalf("trial %d: AlignFull = %d, naive = %d (q=%s t=%s)", trial, got, want, q, tg)
		}
	}
}

func TestBandedWideEqualsFull(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := DefaultParams()
	p.Mode = Local
	p.ZDrop = 0
	for trial := 0; trial < 20; trial++ {
		q := genome.Random(rng, 30)
		tg := genome.Random(rng, 35)
		p.Band = 100
		wide := Align(q, tg, p).Score
		full := AlignFull(q, tg, p).Score
		if wide != full {
			t.Fatalf("wide band %d != full %d", wide, full)
		}
	}
}

func TestBandedNarrowLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := DefaultParams()
	p.Mode = Local
	p.ZDrop = 0
	for trial := 0; trial < 20; trial++ {
		q := genome.Random(rng, 50)
		tg := genome.Random(rng, 50)
		p.Band = 3
		narrow := Align(q, tg, p).Score
		full := AlignFull(q, tg, p).Score
		if narrow > full {
			t.Fatalf("narrow band score %d exceeds full %d", narrow, full)
		}
	}
}

func TestExtensionPerfectMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	q := genome.Random(rng, 80)
	p := DefaultParams()
	r := Align(q, q, p)
	if r.Score != 80*p.Match {
		t.Errorf("perfect extension score %d, want %d", r.Score, 80*p.Match)
	}
	if r.QEnd != 80 || r.TEnd != 80 {
		t.Errorf("end (%d,%d), want (80,80)", r.QEnd, r.TEnd)
	}
	if r.ZDropped {
		t.Error("perfect match z-dropped")
	}
}

func TestExtensionSingleMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	q := genome.Random(rng, 60)
	tg := q.Clone()
	tg[30] = genome.Complement(tg[30])
	p := DefaultParams()
	r := Align(q, tg, p)
	want := 60*p.Match - p.Match - p.Mismatch // one match lost, one mismatch penalty
	if r.Score != want {
		t.Errorf("score %d, want %d", r.Score, want)
	}
}

func TestExtensionGap(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	base := genome.Random(rng, 60)
	// Target has a 3-base deletion relative to query.
	tg := append(base[:30].Clone(), base[33:]...)
	p := DefaultParams()
	r := Align(base, tg, p)
	want := 57*p.Match - p.GapOpen - 3*p.GapExtend
	if r.Score != want {
		t.Errorf("gap score %d, want %d", r.Score, want)
	}
}

func TestZDropAbortsDissimilar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	q := genome.Random(rng, 400)
	tg := genome.Random(rng, 400)
	p := DefaultParams()
	p.ZDrop = 50
	r := Align(q, tg, p)
	if !r.ZDropped {
		t.Error("random 400-base pair did not z-drop")
	}
	full := p
	full.ZDrop = 0
	rFull := Align(q, tg, full)
	if r.CellUpdates >= rFull.CellUpdates {
		t.Errorf("z-drop computed %d cells, full %d", r.CellUpdates, rFull.CellUpdates)
	}
}

func TestAlignEmptyInputs(t *testing.T) {
	p := DefaultParams()
	if r := Align(nil, genome.MustFromString("ACGT"), p); r.Score != 0 || r.CellUpdates != 0 {
		t.Error("empty query should produce zero result")
	}
	if r := Align(genome.MustFromString("ACGT"), nil, p); r.Score != 0 {
		t.Error("empty target should produce zero result")
	}
}

func TestBatchMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	p := DefaultParams()
	var pairs []Pair
	for i := 0; i < 33; i++ { // not a multiple of lane count
		n := 30 + rng.Intn(100)
		q := genome.Random(rng, n)
		tg := q.Clone()
		for m := 0; m < n/20; m++ {
			tg[rng.Intn(n)] = genome.Base(rng.Intn(4))
		}
		pairs = append(pairs, Pair{q, tg})
	}
	results, stats := AlignBatch(pairs, p, 16)
	for i, pr := range pairs {
		want := Align(pr.Query, pr.Target, p)
		if results[i].Score != want.Score {
			t.Fatalf("pair %d: batch score %d != scalar %d", i, results[i].Score, want.Score)
		}
	}
	if stats.Overhead() <= 1 {
		t.Errorf("batch overhead %.2f, want > 1 for mixed lengths", stats.Overhead())
	}
	if stats.UsefulCells == 0 || stats.IssuedCells < stats.UsefulCells {
		t.Errorf("stats inconsistent: %+v", stats)
	}
}

func TestBatchOverheadGrowsWithDissimilarity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := DefaultParams()
	p.Band = 20
	p.ZDrop = 40
	similar := make([]Pair, 32)
	mixed := make([]Pair, 32)
	for i := range similar {
		q := genome.Random(rng, 200)
		similar[i] = Pair{q, q.Clone()}
		if i%2 == 0 {
			mixed[i] = Pair{q, q.Clone()}
		} else {
			// Dissimilar: z-drops early, wasting lane slots.
			mixed[i] = Pair{q, genome.Random(rng, 200)}
		}
	}
	_, sSim := AlignBatch(similar, p, 16)
	_, sMix := AlignBatch(mixed, p, 16)
	if sMix.Overhead() <= sSim.Overhead() {
		t.Errorf("mixed overhead %.2f not greater than similar %.2f",
			sMix.Overhead(), sSim.Overhead())
	}
}

func TestRunKernelThreadsConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	p := DefaultParams()
	pairs := make([]Pair, 30)
	for i := range pairs {
		q := genome.Random(rng, 100)
		tg := q.Clone()
		tg[50] = genome.Complement(tg[50])
		pairs[i] = Pair{q, tg}
	}
	r1 := RunKernel(pairs, p, 1)
	r4 := RunKernel(pairs, p, 4)
	if r1.TotalScore != r4.TotalScore || r1.CellUpdates != r4.CellUpdates {
		t.Errorf("threading changed results: %+v vs %+v", r1, r4)
	}
	if r1.TaskStats.Count() != 30 {
		t.Errorf("task stats count %d", r1.TaskStats.Count())
	}
	if r1.Counters.Ops[0] == 0 && r1.Counters.Total() == 0 {
		t.Error("no counters recorded")
	}
}

func TestCellUpdatesRespectBand(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	q := genome.Random(rng, 100)
	tg := genome.Random(rng, 100)
	p := DefaultParams()
	p.Mode = Local
	p.ZDrop = 0
	p.Band = 5
	r := Align(q, tg, p)
	maxCells := uint64(100 * 11) // rows x full band width
	if r.CellUpdates > maxCells {
		t.Errorf("banded alignment computed %d cells, cap %d", r.CellUpdates, maxCells)
	}
	p.Band = 1000
	rFull := Align(q, tg, p)
	if rFull.CellUpdates != 100*100 {
		t.Errorf("full-band cells %d, want 10000", rFull.CellUpdates)
	}
}

// Local Smith-Waterman is invariant under reversing both sequences and
// under complementing both (score function is base-agnostic).
func TestLocalScoreSymmetries(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	p := DefaultParams()
	p.Mode = Local
	p.ZDrop = 0
	p.Band = 1000
	rev := func(s genome.Seq) genome.Seq {
		out := make(genome.Seq, len(s))
		for i, b := range s {
			out[len(s)-1-i] = b
		}
		return out
	}
	for trial := 0; trial < 20; trial++ {
		q := genome.Random(rng, 10+rng.Intn(40))
		tg := genome.Random(rng, 10+rng.Intn(40))
		base := Align(q, tg, p).Score
		if got := Align(rev(q), rev(tg), p).Score; got != base {
			t.Fatalf("reversal changed local score: %d vs %d", got, base)
		}
		if got := Align(q.ReverseComplement(), tg.ReverseComplement(), p).Score; got != base {
			t.Fatalf("reverse-complement changed local score: %d vs %d", got, base)
		}
	}
}

// Swapping query and target transposes the DP matrix; with symmetric
// scoring the local score is unchanged.
func TestLocalScoreTransposeSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	p := DefaultParams()
	p.Mode = Local
	p.ZDrop = 0
	p.Band = 1000
	for trial := 0; trial < 20; trial++ {
		q := genome.Random(rng, 10+rng.Intn(40))
		tg := genome.Random(rng, 10+rng.Intn(40))
		if a, b := Align(q, tg, p).Score, Align(tg, q, p).Score; a != b {
			t.Fatalf("transpose changed local score: %d vs %d", a, b)
		}
	}
}
