package bsw

import (
	"math/rand"
	"testing"

	"repro/internal/genome"
	"repro/internal/scratch"
)

// randomPair builds a query and a target that is a mutated copy of it,
// the shape seed extension sees.
func randomPair(rng *rand.Rand) (genome.Seq, genome.Seq) {
	n := 20 + rng.Intn(400)
	q := genome.Random(rng, n)
	t := q.Clone()
	// Plant mismatches and occasional indel-like truncations.
	for k := 0; k < n/10+1; k++ {
		t[rng.Intn(len(t))] = genome.Base(rng.Intn(4))
	}
	if rng.Intn(2) == 0 && len(t) > 10 {
		t = t[:len(t)-rng.Intn(10)]
	}
	return q, t
}

// AlignInto must be bit-identical to the scalar Align on seeded random
// inputs, across both modes and a spread of band widths.
func TestAlignIntoDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	arena := scratch.New()
	for trial := 0; trial < 300; trial++ {
		q, tgt := randomPair(rng)
		p := DefaultParams()
		p.Band = []int{5, 20, 100, 1000}[rng.Intn(4)]
		if rng.Intn(2) == 0 {
			p.Mode = Local
			p.ZDrop = 0
		}
		want := Align(q, tgt, p)
		got := AlignInto(q, tgt, p, arena)
		if got != want {
			t.Fatalf("trial %d (mode=%v band=%d |q|=%d |t|=%d):\n got %+v\nwant %+v",
				trial, p.Mode, p.Band, len(q), len(tgt), got, want)
		}
	}
}

func TestAlignIntoNilArena(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	q, tgt := randomPair(rng)
	p := DefaultParams()
	if got, want := AlignInto(q, tgt, p, nil), Align(q, tgt, p); got != want {
		t.Fatalf("nil arena: got %+v want %+v", got, want)
	}
}

func TestAlignIntoEmptyInputs(t *testing.T) {
	p := DefaultParams()
	if r := AlignInto(nil, genome.MustFromString("ACGT"), p, nil); r != (Result{}) {
		t.Fatalf("empty query: %+v", r)
	}
	if r := AlignInto(genome.MustFromString("ACGT"), nil, p, nil); r != (Result{}) {
		t.Fatalf("empty target: %+v", r)
	}
}

// The steady-state task loop must be allocation-free: this is the
// zero-allocation invariant the PR's bench harness gates on.
func TestAlignIntoZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	q, tgt := randomPair(rng)
	p := DefaultParams()
	arena := scratch.New()
	AlignInto(q, tgt, p, arena) // warm the arena
	n := testing.AllocsPerRun(50, func() {
		AlignInto(q, tgt, p, arena)
	})
	if n != 0 {
		t.Fatalf("AllocsPerRun = %v, want 0", n)
	}
}

func benchPairs(count int) []Pair {
	rng := rand.New(rand.NewSource(1234))
	pairs := make([]Pair, count)
	for i := range pairs {
		n := 80 + rng.Intn(120)
		q := genome.Random(rng, n)
		t := q.Clone()
		for k := 0; k < 8; k++ {
			t[rng.Intn(len(t))] = genome.Base(rng.Intn(4))
		}
		pairs[i] = Pair{Query: q, Target: t}
	}
	return pairs
}

// Scalar versus bit-parallel pooled alignment: the bench harness's
// bsw before/after pair.
func BenchmarkAlign(b *testing.B) {
	pairs := benchPairs(64)
	p := DefaultParams()
	b.Run("scalar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pr := pairs[i%len(pairs)]
			Align(pr.Query, pr.Target, p)
		}
	})
	b.Run("packed", func(b *testing.B) {
		b.ReportAllocs()
		arena := scratch.New()
		for i := 0; i < b.N; i++ {
			pr := pairs[i%len(pairs)]
			AlignInto(pr.Query, pr.Target, p, arena)
		}
	})
}
