package bsw

import (
	"repro/internal/genome"
	"repro/internal/simio"
)

// Traceback support: BWA-MEM2's kernel reports scores only (the paper
// benchmarks the scoring pass), but downstream consumers need the
// alignment path; AlignTrace keeps the banded move matrix and walks it
// back into a CIGAR.

// moves are packed two bits per cell.
const (
	tbStop = 0 // alignment start (local) / origin (extension)
	tbDiag = 1
	tbUp   = 2 // consumes a query base (insertion to target)
	tbLeft = 3 // consumes a target base (deletion from query)
)

// TraceResult extends Result with the alignment path.
type TraceResult struct {
	Result
	QBeg, TBeg int // start coordinates (inclusive)
	Cigar      simio.Cigar
}

// AlignTrace is Align with full traceback. It stores the banded move
// matrix (2 bits per cell, ~m*(2w+1)/4 bytes) and reconstructs the
// best-scoring path. Z-drop is ignored so the path is complete.
func AlignTrace(q, t genome.Seq, p Params) TraceResult {
	m, n := len(q), len(t)
	var res TraceResult
	if m == 0 || n == 0 {
		return res
	}
	w := p.Band
	if w <= 0 {
		w = 1
	}
	bandWidth := 2*w + 1

	H := make([]int, n+1)
	E := make([]int, n+1)
	prevH := make([]int, n+1)
	moves := make([]uint8, m*bandWidth) // move per (row, band offset)

	for j := 0; j <= n; j++ {
		E[j] = negInf
		if p.Mode == Local {
			prevH[j] = 0
		} else {
			switch {
			case j == 0:
				prevH[j] = 0
			case j <= w:
				prevH[j] = -(p.GapOpen + j*p.GapExtend)
			default:
				prevH[j] = negInf
			}
		}
	}
	best, bestI, bestJ := 0, 0, 0
	if p.Mode == Extension {
		best = negInf
	}
	var cells uint64
	for i := 1; i <= m; i++ {
		lo := i - w
		if lo < 1 {
			lo = 1
		}
		hi := i + w
		if hi > n {
			hi = n
		}
		if lo > hi {
			break
		}
		if p.Mode == Local {
			H[lo-1] = 0
		} else if lo == 1 {
			H[0] = -(p.GapOpen + i*p.GapExtend)
		} else {
			H[lo-1] = negInf
		}
		F := negInf
		rowBase := (i - 1) * bandWidth
		for j := lo; j <= hi; j++ {
			cells++
			s := p.Match
			if q[i-1] != t[j-1] {
				s = -p.Mismatch
			}
			h := prevH[j-1] + s
			move := uint8(tbDiag)
			e := prevH[j] - p.GapOpen - p.GapExtend
			if E[j]-p.GapExtend > e {
				e = E[j] - p.GapExtend
			}
			f := H[j-1] - p.GapOpen - p.GapExtend
			if F-p.GapExtend > f {
				f = F - p.GapExtend
			}
			if e > h {
				h = e
				move = tbUp
			}
			if f > h {
				h = f
				move = tbLeft
			}
			if p.Mode == Local && h <= 0 {
				h = 0
				move = tbStop
			}
			H[j] = h
			E[j] = e
			F = f
			moves[rowBase+(j-i+w)] = move
			if h > best {
				best = h
				bestI = i
				bestJ = j
			}
		}
		if hi < n {
			H[hi+1] = negInf
			E[hi+1] = negInf
		}
		prevH, H = H, prevH
	}
	res.Score = best
	res.QEnd = bestI
	res.TEnd = bestJ
	res.CellUpdates = cells
	if bestI == 0 {
		return res
	}

	// Walk back from the best cell.
	var rev []simio.CigarElem
	addOp := func(op simio.CigarOp) {
		if len(rev) > 0 && rev[len(rev)-1].Op == op {
			rev[len(rev)-1].Len++
			return
		}
		rev = append(rev, simio.CigarElem{Len: 1, Op: op})
	}
	i, j := bestI, bestJ
	for i > 0 && j > 0 {
		off := j - i + w
		if off < 0 || off >= bandWidth {
			break // fell out of band: stop the trace
		}
		move := moves[(i-1)*bandWidth+off]
		if p.Mode == Local && move == tbStop {
			break
		}
		switch move {
		case tbDiag:
			addOp(simio.CigarMatch)
			i--
			j--
		case tbUp:
			addOp(simio.CigarIns)
			i--
		case tbLeft:
			addOp(simio.CigarDel)
			j--
		default:
			i, j = 0, 0
		}
	}
	if p.Mode == Extension {
		// Anchored at (0,0): emit any leading gap.
		for ; i > 0; i-- {
			addOp(simio.CigarIns)
		}
		for ; j > 0; j-- {
			addOp(simio.CigarDel)
		}
	}
	res.QBeg, res.TBeg = i, j
	res.Cigar = make(simio.Cigar, len(rev))
	for k := range rev {
		res.Cigar[k] = rev[len(rev)-1-k]
	}
	// Leading/trailing deletions consume only target: real aligners
	// shift the start coordinate instead of emitting them.
	for len(res.Cigar) > 0 && res.Cigar[0].Op == simio.CigarDel {
		res.TBeg += res.Cigar[0].Len
		res.Cigar = res.Cigar[1:]
	}
	for len(res.Cigar) > 0 && res.Cigar[len(res.Cigar)-1].Op == simio.CigarDel {
		res.TEnd -= res.Cigar[len(res.Cigar)-1].Len
		res.Cigar = res.Cigar[:len(res.Cigar)-1]
	}
	return res
}
