// NEON 16-wide band-row kernel for banded Smith-Waterman. A
// q-register pair (lanes 0-7, 8-15) holds one 16-column group of
// saturating int16 DP cells; see wide.go for the kernel contract and
// why the log-step prefix-max F scan is bit-identical to the portable
// serial chain for ge in [0, 4095].
//
// The Go arm64 assembler has no mnemonics for the signed saturating /
// max vector ops this kernel is built from (SQADD, SQSUB, SMAX), so
// those are emitted as raw instruction words through the macros
// below. Encodings are the AdvSIMD "three same" class at arrangement
// .8H (Q=1, size=01): base | Rm<<16 | Rn<<5 | Rd, verified against
// llvm-mc. Every use carries the decoded form as a comment.

#include "textflag.h"

// SQADDH: sqadd v(d).8h, v(n).8h, v(m).8h
#define SQADDH(m, n, d) WORD $(0x4E600C00 | ((m)<<16) | ((n)<<5) | (d))
// SQSUBH: sqsub v(d).8h, v(n).8h, v(m).8h
#define SQSUBH(m, n, d) WORD $(0x4E602C00 | ((m)<<16) | ((n)<<5) | (d))
// SMAXH: smax v(d).8h, v(n).8h, v(m).8h
#define SMAXH(m, n, d) WORD $(0x4E606400 | ((m)<<16) | ((n)<<5) | (d))

// bswBitsTab: words [1, 2, ..., 0x8000]; see row_amd64.s.
DATA bswBitsTab<>+0x00(SB)/8, $0x0008000400020001
DATA bswBitsTab<>+0x08(SB)/8, $0x0080004000200010
DATA bswBitsTab<>+0x10(SB)/8, $0x0800040002000100
DATA bswBitsTab<>+0x18(SB)/8, $0x8000400020001000
GLOBL bswBitsTab<>(SB), RODATA|NOPTR, $32

// Register plan:
//   V0 match   V1 mism     V2 ge       V3 2*ge   V4 4*ge   V5 8*ge
//   V6 -32768  V7 bits lo  V8 bits hi  V9 oe     V10 clamp
//   V11/V12 row max lo/hi  V13 F carry (lane 7 live)
//   V14/V15 s  V16/V17 htmp2/H  V18/V19 c  V20/V21 u/f  V22-V25 temps

// func bswRowAsm(a *bswRowArgs)
TEXT ·bswRowAsm(SB), NOSPLIT, $0-8
	MOVD a+0(FP), R0
	MOVD 0(R0), R1              // prevH base
	MOVD 8(R0), R2              // curH base
	MOVD 16(R0), R3             // E base
	MOVD 24(R0), R4             // gmask
	MOVD 40(R0), R5             // ngroups
	MOVD 32(R0), R6
	LSL  $1, R6                 // byte offset of column lo
	MOVH 56(R0), R9
	VDUP R9, V0.H8              // match
	MOVH 58(R0), R9
	VDUP R9, V1.H8              // mism
	MOVH 62(R0), R9
	VDUP R9, V2.H8              // ge
	SQADDH(2, 2, 3)             // sqadd v3.8h, v2.8h, v2.8h: 2*ge
	SQADDH(3, 3, 4)             // sqadd v4.8h, v3.8h, v3.8h: 4*ge
	SQADDH(4, 4, 5)             // sqadd v5.8h, v4.8h, v4.8h: 8*ge
	VMOVQ $0x8000800080008000, $0x8000800080008000, V6
	MOVD $bswBitsTab<>(SB), R9
	VLD1 (R9), [V7.H8, V8.H8]
	MOVH 60(R0), R9
	VDUP R9, V9.H8              // oe
	MOVH 64(R0), R9
	VDUP R9, V10.H8             // clamp
	// F carry: lane 7 of V13 (global lane 15) seeds each group's
	// incoming chain value; the first group takes the boundary cell's
	// c, sat(hleft - oe).
	MOVH 66(R0), R9
	VDUP R9, V13.H8
	SQSUBH(9, 13, 13)           // sqsub v13.8h, v13.8h, v9.8h
	VMOV V6.B16, V11.B16        // row max accumulator
	VMOV V6.B16, V12.B16
	MOVD $0, R7                 // gi

groups:
	// s: broadcast the group's 16 match bits, test against the bit
	// table, select match/mism. V14 = lanes 0-7, V15 = lanes 8-15.
	ADD  R7<<1, R4, R9
	MOVHU (R9), R9
	VDUP R9, V22.H8
	VAND V7.B16, V22.B16, V14.B16
	VCMEQ V7.H8, V14.H8, V14.H8
	VAND V8.B16, V22.B16, V15.B16
	VCMEQ V8.H8, V15.H8, V15.H8
	VBSL V1.B16, V0.B16, V14.B16 // mask ? match : mism
	VBSL V1.B16, V0.B16, V15.B16

	// htmp = max(diag + s, e) with e = max(prevH-oe, E-ge); E is
	// stored back before the F merge, exactly like the scalar path.
	ADD  R6, R1, R9
	SUB  $2, R9, R10            // &prevH[lo-1 + 16*gi]
	VLD1 (R10), [V16.H8, V17.H8]
	SQADDH(14, 16, 16)          // sqadd v16.8h, v16.8h, v14.8h: diag + s
	SQADDH(15, 17, 17)
	VLD1 (R9), [V22.H8, V23.H8]
	SQSUBH(9, 22, 22)           // sqsub v22.8h, v22.8h, v9.8h: prevH - oe
	SQSUBH(9, 23, 23)
	ADD  R6, R3, R11
	VLD1 (R11), [V24.H8, V25.H8]
	SQSUBH(2, 24, 24)           // sqsub v24.8h, v24.8h, v2.8h: E - ge
	SQSUBH(2, 25, 25)
	SMAXH(24, 22, 22)           // smax v22.8h, v22.8h, v24.8h: e
	SMAXH(25, 23, 23)
	VST1 [V22.H8, V23.H8], (R11)
	SMAXH(22, 16, 16)           // smax v16.8h, v16.8h, v22.8h
	SMAXH(23, 17, 17)
	SMAXH(10, 16, 16)           // htmp2 = max(htmp, clamp)
	SMAXH(10, 17, 17)

	// c = sat(htmp2 - oe); u = c shifted up one lane with the carry
	// register's lane shifted in.
	SQSUBH(9, 16, 18)           // sqsub v18.8h, v16.8h, v9.8h
	SQSUBH(9, 17, 19)
	VEXT $14, V18.B16, V13.B16, V20.B16 // u lo = [carry15, c0..c6]
	VEXT $14, V19.B16, V18.B16, V21.B16 // u hi = [c7, c8..c14]

	// Log-step prefix-max scan (shift up 1, 2, 4, 8 lanes with
	// sentinel fill; see row_amd64.s).
	VEXT $14, V20.B16, V6.B16, V22.B16
	VEXT $14, V21.B16, V20.B16, V23.B16
	SQSUBH(2, 22, 22)           // sqsub v22.8h, v22.8h, v2.8h
	SQSUBH(2, 23, 23)
	SMAXH(22, 20, 20)
	SMAXH(23, 21, 21)
	VEXT $12, V20.B16, V6.B16, V22.B16
	VEXT $12, V21.B16, V20.B16, V23.B16
	SQSUBH(3, 22, 22)           // sqsub v22.8h, v22.8h, v3.8h
	SQSUBH(3, 23, 23)
	SMAXH(22, 20, 20)
	SMAXH(23, 21, 21)
	VEXT $8, V20.B16, V6.B16, V22.B16
	VEXT $8, V21.B16, V20.B16, V23.B16
	SQSUBH(4, 22, 22)           // sqsub v22.8h, v22.8h, v4.8h
	SQSUBH(4, 23, 23)
	SMAXH(22, 20, 20)
	SMAXH(23, 21, 21)
	// Shift up 8 words: shifted lo is all sentinel (max no-op), hi is
	// the current lo.
	SQSUBH(5, 20, 22)           // sqsub v22.8h, v20.8h, v5.8h
	SMAXH(22, 21, 21)           // f

	// Next group's carry: lane 15 of max(c, sat(f - ge)).
	SQSUBH(2, 21, 13)           // sqsub v13.8h, v21.8h, v2.8h
	SMAXH(19, 13, 13)           // smax v13.8h, v13.8h, v19.8h

	// H = max(htmp2, f); store, fold into the row max (last group
	// blends out-of-band lanes to the sentinel first).
	SMAXH(20, 16, 16)
	SMAXH(21, 17, 17)
	ADD  R6, R2, R9
	VST1 [V16.H8, V17.H8], (R9)
	ADD  $1, R7, R10
	CMP  R5, R10
	BEQ  lastgroup
	SMAXH(16, 11, 11)
	SMAXH(17, 12, 12)
	B    next

lastgroup:
	MOVHU 48(R0), R9
	VDUP R9, V22.H8
	VAND V7.B16, V22.B16, V23.B16
	VCMEQ V7.H8, V23.H8, V23.H8
	VAND V8.B16, V22.B16, V24.B16
	VCMEQ V8.H8, V24.H8, V24.H8
	VBSL V6.B16, V16.B16, V23.B16 // in-band ? h : sentinel
	SMAXH(23, 11, 11)
	VBSL V6.B16, V17.B16, V24.B16
	SMAXH(24, 12, 12)

next:
	ADD  $32, R6
	ADD  $1, R7
	CMP  R5, R7
	BLT  groups

	// Horizontal max of the accumulator -> args.rowMax.
	SMAXH(12, 11, 11)
	VEXT $8, V11.B16, V11.B16, V22.B16
	SMAXH(22, 11, 11)
	VEXT $4, V11.B16, V11.B16, V22.B16
	SMAXH(22, 11, 11)
	VEXT $2, V11.B16, V11.B16, V22.B16
	SMAXH(22, 11, 11)
	VMOV V11.H[0], R9
	MOVH R9, 68(R0)
	RET
