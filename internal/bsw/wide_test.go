package bsw

import (
	"math/rand"
	"testing"

	"repro/internal/cpufeat"
	"repro/internal/genome"
	"repro/internal/lanes"
	"repro/internal/scratch"
)

func randSeqWide(rng *rand.Rand, n int) genome.Seq {
	s := make(genome.Seq, n)
	for i := range s {
		s[i] = genome.Base(rng.Intn(4))
	}
	return s
}

// mutateFrom returns a noisy copy of src so alignments have real
// diagonal structure (pure random pairs z-drop almost immediately).
func mutateFrom(rng *rand.Rand, src genome.Seq, rate float64) genome.Seq {
	out := make(genome.Seq, 0, len(src)+8)
	for _, b := range src {
		switch {
		case rng.Float64() < rate/3: // deletion
		case rng.Float64() < rate/3: // insertion
			out = append(out, b, genome.Base(rng.Intn(4)))
		case rng.Float64() < rate: // substitution
			out = append(out, genome.Base(rng.Intn(4)))
		default:
			out = append(out, b)
		}
	}
	if len(out) == 0 {
		out = append(out, src[0])
	}
	return out
}

// TestAlignWideDifferential runs the 16-wide int16 path (portable
// body, and the asm body where the host has one) against the scalar
// Align reference over a grid of modes, bands, z-drops, and scoring
// params, on related and unrelated sequence pairs. Results must be
// bit-identical: same score, same end cell, same cell count, same
// z-drop flag.
func TestAlignWideDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	params := []Params{
		DefaultParams(),
		{Match: 2, Mismatch: 3, GapOpen: 5, GapExtend: 2, Band: 10, ZDrop: 40, Mode: Extension},
		{Match: 1, Mismatch: 4, GapOpen: 6, GapExtend: 1, Band: 25, ZDrop: 0, Mode: Extension},
		{Match: 2, Mismatch: 5, GapOpen: 4, GapExtend: 1, Band: 17, ZDrop: 100, Mode: Local},
		{Match: 1, Mismatch: 1, GapOpen: 0, GapExtend: 1, Band: 7, ZDrop: 25, Mode: Local},
	}
	a := scratch.New()
	for trial := 0; trial < 60; trial++ {
		p := params[trial%len(params)]
		m := 1 + rng.Intn(120)
		q := randSeqWide(rng, m)
		var tg genome.Seq
		if trial%3 == 0 {
			tg = randSeqWide(rng, 1+rng.Intn(120))
		} else {
			tg = mutateFrom(rng, q, 0.1)
		}
		if !wideEligible(p, len(q), len(tg)) {
			t.Fatalf("trial %d: grid params unexpectedly ineligible for m=%d n=%d", trial, len(q), len(tg))
		}
		want := Align(q, tg, p)
		got := alignWide(q, tg, p, a, false)
		if got != want {
			t.Fatalf("trial %d: portable wide %+v != scalar %+v (params %+v, m=%d n=%d)", trial, got, want, p, len(q), len(tg))
		}
		if bswHaveWideAsm && cpufeat.Wide16() {
			gotAsm := alignWide(q, tg, p, a, true)
			if gotAsm != want {
				t.Fatalf("trial %d: asm wide %+v != scalar %+v (params %+v, m=%d n=%d)", trial, gotAsm, want, p, len(q), len(tg))
			}
		}
	}
}

// TestBswRowAsmHammer cross-checks the assembly band-row kernel
// against bswRowPortable on randomized rows — full-range int16 cell
// values, arbitrary band offsets (groups are deliberately unaligned),
// random match masks and tail masks. The kernel contract (wide.go)
// promises bit-identity whenever ge stays in [0, 4095], so the
// hammer asserts every stored H and E cell plus the row max.
func TestBswRowAsmHammer(t *testing.T) {
	if !bswHaveWideAsm {
		t.Skip("no assembly band-row kernel on this architecture")
	}
	if !cpufeat.Wide16() {
		t.Skip("no wide SIMD tier on this host (or GBENCH_SIMD lowered the ceiling)")
	}
	rng := rand.New(rand.NewSource(92))
	for it := 0; it < 2000; it++ {
		ngroups := 1 + rng.Intn(5)
		lo := 1 + rng.Intn(40)
		size := lo + 16*ngroups + 1
		prevH := make([]int16, size)
		curH := make([]int16, size)
		ev := make([]int16, size)
		for i := 0; i < size; i++ {
			prevH[i] = int16(rng.Int())
			curH[i] = int16(rng.Int())
			ev[i] = int16(rng.Int())
		}
		curHP := append([]int16(nil), curH...)
		evP := append([]int16(nil), ev...)
		gmask := make([]uint16, ngroups)
		for i := range gmask {
			gmask[i] = uint16(rng.Int())
		}
		tail := uint16(0xFFFF) >> uint(rng.Intn(16))
		match := int16(rng.Int())
		mism := int16(rng.Int())
		oe := int16(rng.Intn(20000))
		ge := int16(rng.Intn(4096))
		clamp := negInf16
		if rng.Intn(2) == 0 {
			clamp = 0
		}
		hleft := int16(rng.Int())
		curH[lo-1] = hleft
		curHP[lo-1] = hleft

		rmA := bswRowWide(prevH, curH, ev, gmask, lo, ngroups, tail, match, mism, oe, ge, clamp, hleft)
		rmP := bswRowPortable(prevH, curHP, evP, gmask, lo, ngroups, tail, match, mism, oe, ge, clamp, hleft)
		if rmA != rmP {
			t.Fatalf("iter %d: rowMax %d (asm) vs %d (portable); lo=%d ngroups=%d tail=%#x oe=%d ge=%d clamp=%d", it, rmA, rmP, lo, ngroups, tail, oe, ge, clamp)
		}
		for i := 0; i < size; i++ {
			if curH[i] != curHP[i] {
				t.Fatalf("iter %d: H[%d] = %d (asm) vs %d (portable); lo=%d ngroups=%d oe=%d ge=%d", it, i, curH[i], curHP[i], lo, ngroups, oe, ge)
			}
			if ev[i] != evP[i] {
				t.Fatalf("iter %d: E[%d] = %d (asm) vs %d (portable); lo=%d ngroups=%d oe=%d ge=%d", it, i, ev[i], evP[i], lo, ngroups, oe, ge)
			}
		}
	}
}

// TestWideSimdOffMatchesDispatch pins GBENCH_SIMD=off and re-runs
// alignments through AlignInto: the dispatch seam must be invisible —
// SWAR-path results bit-identical to whatever the default dispatch
// (wide asm on capable hosts) produced.
func TestWideSimdOffMatchesDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	p := DefaultParams()
	a := scratch.New()
	type pair struct{ q, t genome.Seq }
	var pairs []pair
	var def []Result
	for trial := 0; trial < 20; trial++ {
		q := randSeqWide(rng, 40+rng.Intn(160))
		tg := mutateFrom(rng, q, 0.08)
		pairs = append(pairs, pair{q, tg})
		def = append(def, AlignInto(q, tg, p, a))
	}
	restore := cpufeat.ForceForTest("off")
	defer restore()
	for i, pr := range pairs {
		off := AlignInto(pr.q, pr.t, p, a)
		if off != def[i] {
			t.Fatalf("pair %d: GBENCH_SIMD=off result %+v != default dispatch %+v", i, off, def[i])
		}
	}
}

// TestWideEligibleBounds checks the range-proof gate: the bench
// regime is eligible, over-long or hostile-scoring problems are not,
// and the DP-area floor consults the shared lanes tunable.
func TestWideEligibleBounds(t *testing.T) {
	p := DefaultParams()
	if !wideEligible(p, 200, 220) {
		t.Fatal("default params at bench lengths should be wide-eligible")
	}
	if wideEligible(p, 600, 600) {
		t.Fatal("default params at length 600+600 exceed the int16 bound; must be ineligible")
	}
	if wideEligible(Params{Match: 1, Mismatch: -1, GapOpen: 6, GapExtend: 1}, 10, 10) {
		t.Fatal("negative mismatch penalty (bonus) must be ineligible")
	}
	if wideEligible(Params{Match: 1, Mismatch: 4, GapOpen: 6, GapExtend: 1, ZDrop: wideScoreBound + 1}, 10, 10) {
		t.Fatal("ZDrop beyond the sentinel separation margin must be ineligible")
	}
	if got := wideArea(Params{Band: 10}, 7, 100); got != 7*21 {
		t.Fatalf("wideArea = %d, want %d", got, 7*21)
	}
	if got := wideArea(Params{Band: 200}, 7, 100); got != 700 {
		t.Fatalf("wideArea clamps at n: got %d, want 700", got)
	}
	_ = lanes.WideMinWork.Get() // the floor must resolve without panicking
}

// TestAlignWideZDropAndLocal locks the two mode-specific behaviors to
// the scalar reference on adversarial inputs: Extension's z-drop
// abort row (via CellUpdates) and Local's zero clamp.
func TestAlignWideZDropAndLocal(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	a := scratch.New()
	p := DefaultParams()
	p.ZDrop = 15
	for trial := 0; trial < 30; trial++ {
		// A matching prefix followed by unrelated tails forces a
		// z-drop partway through.
		pre := randSeqWide(rng, 30)
		q := append(append(genome.Seq{}, pre...), randSeqWide(rng, 60)...)
		tg := append(append(genome.Seq{}, pre...), randSeqWide(rng, 60)...)
		want := Align(q, tg, p)
		if got := alignWide(q, tg, p, a, false); got != want {
			t.Fatalf("zdrop trial %d: portable wide %+v != scalar %+v", trial, got, want)
		}
		if bswHaveWideAsm && cpufeat.Wide16() {
			if got := alignWide(q, tg, p, a, true); got != want {
				t.Fatalf("zdrop trial %d: asm wide %+v != scalar %+v", trial, got, want)
			}
		}
	}
	lp := Params{Match: 1, Mismatch: 4, GapOpen: 6, GapExtend: 1, Band: 30, Mode: Local}
	for trial := 0; trial < 30; trial++ {
		q := randSeqWide(rng, 1+rng.Intn(100))
		tg := randSeqWide(rng, 1+rng.Intn(100))
		want := Align(q, tg, lp)
		if got := alignWide(q, tg, lp, a, false); got != want {
			t.Fatalf("local trial %d: portable wide %+v != scalar %+v", trial, got, want)
		}
		if bswHaveWideAsm && cpufeat.Wide16() {
			if got := alignWide(q, tg, lp, a, true); got != want {
				t.Fatalf("local trial %d: asm wide %+v != scalar %+v", trial, got, want)
			}
		}
	}
}
