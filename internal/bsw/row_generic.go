//go:build !amd64 && !arm64

package bsw

// No assembly band-row kernel on this architecture; alignWide (only
// reachable from tests here — AlignInto's dispatch requires
// bswHaveWideAsm) runs the portable body.
const bswHaveWideAsm = false

func bswRowWide(prevH, curH, ev []int16, gmask []uint16, lo, ngroups int, tail uint16, match, mism, oe, ge, clamp, hleft int16) int16 {
	return bswRowPortable(prevH, curH, ev, gmask, lo, ngroups, tail, match, mism, oe, ge, clamp, hleft)
}
