//go:build amd64 || arm64

package bsw

// Assembly fast paths for the 16-wide band row: AVX2 on amd64
// (row_amd64.s), NEON on arm64 (row_arm64.s). Both replay
// bswRowPortable's arithmetic with one 16-lane saturating-int16
// vector per column group, resolving the F chain with the log-step
// prefix-max scan wide.go proves equal to the serial chain for ge in
// [0, 4095]. TestBswRowAsmHammer asserts bit-identity on arbitrary
// inputs in that contract.
//
// As with poa's kernels, AVX2 is not in the amd64 baseline: callers
// gate on cpufeat.Wide16(), which folds in the CPUID/XCR0 probe and
// the GBENCH_SIMD override.

// bswHaveWideAsm reports whether this architecture has an assembly
// band-row kernel compiled in (it still needs cpufeat.Wide16() at
// run time to be dispatchable).
const bswHaveWideAsm = true

// bswRowArgs is the flattened argument block for bswRowAsm. Field
// offsets are fixed by the assembly — keep layout in sync with
// row_amd64.s and row_arm64.s.
type bswRowArgs struct {
	prevH   *int16  // +0:  previous H row
	curH    *int16  // +8:  output H row
	ev      *int16  // +16: E row, updated in place
	gmask   *uint16 // +24: per-group match bits, ngroups entries
	lo      int64   // +32: element offset of the first band column
	ngroups int64   // +40: 16-column group count, >= 1
	tail    int64   // +48: valid-lane bits of the last group
	match   int16   // +56
	mism    int16   // +58
	oe      int16   // +60: gap open + extend
	ge      int16   // +62: gap extend
	clamp   int16   // +64: 0 (Local) or -32768 (Extension)
	hleft   int16   // +66: finished boundary cell curH[lo-1]
	rowMax  int16   // +68: out: row max over in-band lanes
	_       [2]byte // pad to 8-byte multiple
}

//go:noescape
func bswRowAsm(a *bswRowArgs)

// bswRowWide advances one banded DP row through the assembly kernel.
// Same contract as bswRowPortable.
func bswRowWide(prevH, curH, ev []int16, gmask []uint16, lo, ngroups int, tail uint16, match, mism, oe, ge, clamp, hleft int16) int16 {
	a := bswRowArgs{
		prevH: &prevH[0], curH: &curH[0], ev: &ev[0], gmask: &gmask[0],
		lo: int64(lo), ngroups: int64(ngroups), tail: int64(tail),
		match: match, mism: mism, oe: oe, ge: ge, clamp: clamp, hleft: hleft,
	}
	bswRowAsm(&a)
	return a.rowMax
}
