// AVX2 16-wide band-row kernel for banded Smith-Waterman. One ymm
// register holds one 16-column group of saturating int16 DP cells;
// see wide.go for the kernel contract, the F-chain linearization, and
// the proof sketch that the log-step prefix-max scan below equals the
// serial chain for ge in [0, 4095].

#include "textflag.h"

// bswBitsTab: words [1, 2, 4, ..., 0x8000]. Broadcasting a group's
// 16 match bits and comparing (word AND tab) == tab turns bit l into
// an all-ones word in lane l. Also expands the tail validity mask.
DATA bswBitsTab<>+0x00(SB)/8, $0x0008000400020001
DATA bswBitsTab<>+0x08(SB)/8, $0x0080004000200010
DATA bswBitsTab<>+0x10(SB)/8, $0x0800040002000100
DATA bswBitsTab<>+0x18(SB)/8, $0x8000400020001000
GLOBL bswBitsTab<>(SB), RODATA|NOPTR, $32

// Register plan:
//   Y1 match splat   Y2 mism splat   Y3 ge       Y4 2*ge
//   Y5 4*ge          Y6 8*ge         Y7 -32768   Y10 oe
//   Y11 clamp        Y12 row max     Y13 F carry (lane 15 live)
//   Y14 htmp2        Y15 c           Y0, Y8, Y9 temps
// The ge multiples are built with VPADDSW; 8*ge is exact for the
// contract's ge <= 4095, and far inside int16 under wideEligible.

// func bswRowAsm(a *bswRowArgs)
TEXT ·bswRowAsm(SB), NOSPLIT, $0-8
	MOVQ a+0(FP), AX
	MOVQ 0(AX), SI              // prevH base
	MOVQ 8(AX), DI              // curH base
	MOVQ 16(AX), R8             // E base
	MOVQ 24(AX), R9             // gmask
	MOVQ 32(AX), BX
	SHLQ $1, BX                 // byte offset of column lo
	MOVQ 40(AX), R11            // ngroups
	VPBROADCASTW 56(AX), Y1     // match
	VPBROADCASTW 58(AX), Y2     // mism
	VPBROADCASTW 62(AX), Y3     // ge
	VPADDSW Y3, Y3, Y4          // 2*ge
	VPADDSW Y4, Y4, Y5          // 4*ge
	VPADDSW Y5, Y5, Y6          // 8*ge
	VPCMPEQD Y7, Y7, Y7
	VPSLLW $15, Y7, Y7          // -32768 sentinel
	VPBROADCASTW 60(AX), Y10    // oe
	VPBROADCASTW 64(AX), Y11    // clamp
	// F carry: lane 15 seeds each group's incoming chain value; for
	// the first group that is c of the boundary cell, sat(hleft-oe).
	VPBROADCASTW 66(AX), Y13
	VPSUBSW Y10, Y13, Y13
	VMOVDQA Y7, Y12             // row max accumulator
	XORQ R12, R12               // gi

groups:
	// s: broadcast the group's 16 match bits, test against the bit
	// table, select match/mism.
	VPBROADCASTW (R9)(R12*2), Y0
	VMOVDQU bswBitsTab<>(SB), Y8
	VPAND Y8, Y0, Y0
	VPCMPEQW Y8, Y0, Y0
	VPBLENDVB Y0, Y1, Y2, Y0    // bit set -> match, else mism

	// htmp = max(diag + s, e) with e = max(prevH-oe, E-ge); E is
	// stored back before the F merge, exactly like the scalar path.
	VMOVDQU -2(SI)(BX*1), Y14   // diag: prevH[j-1..]
	VPADDSW Y0, Y14, Y14
	VMOVDQU (SI)(BX*1), Y8      // prevH[j..]
	VPSUBSW Y10, Y8, Y8
	VMOVDQU (R8)(BX*1), Y9      // E[j..]
	VPSUBSW Y3, Y9, Y9
	VPMAXSW Y9, Y8, Y8          // e
	VMOVDQU Y8, (R8)(BX*1)
	VPMAXSW Y8, Y14, Y14
	VPMAXSW Y11, Y14, Y14       // htmp2 = max(htmp, clamp)

	// c = sat(htmp2 - oe); u = c shifted up one lane with the carry
	// register's lane 15 shifted in.
	VPSUBSW Y10, Y14, Y15
	VPERM2I128 $0x03, Y13, Y15, Y8 // [carry.hi, c.lo]
	VPALIGNR $14, Y8, Y15, Y0      // u = [carry15, c0..c14]

	// Log-step prefix-max scan: after shifts by 1, 2, 4, 8 lanes
	// (sentinel-filled) lane l holds f[j0+l] = max over k<=l of
	// u[k] - (l-k)*ge — the serial F chain.
	VPERM2I128 $0x02, Y7, Y0, Y8   // [sentinel, u.lo]
	VPALIGNR $14, Y8, Y0, Y9       // shift up 1 word
	VPSUBSW Y3, Y9, Y9
	VPMAXSW Y9, Y0, Y0
	VPERM2I128 $0x02, Y7, Y0, Y8
	VPALIGNR $12, Y8, Y0, Y9       // shift up 2 words
	VPSUBSW Y4, Y9, Y9
	VPMAXSW Y9, Y0, Y0
	VPERM2I128 $0x02, Y7, Y0, Y8
	VPALIGNR $8, Y8, Y0, Y9        // shift up 4 words
	VPSUBSW Y5, Y9, Y9
	VPMAXSW Y9, Y0, Y0
	VPERM2I128 $0x02, Y7, Y0, Y8   // shift up 8 words is the permute itself
	VPSUBSW Y6, Y8, Y8
	VPMAXSW Y8, Y0, Y0             // f

	// Next group's carry: lane 15 of max(c, sat(f - ge)).
	VPSUBSW Y3, Y0, Y13
	VPMAXSW Y15, Y13, Y13

	// H = max(htmp2, f); store, fold into the row max (last group
	// blends out-of-band lanes to the sentinel first).
	VPMAXSW Y0, Y14, Y14
	VMOVDQU Y14, (DI)(BX*1)
	LEAQ 1(R12), CX
	CMPQ CX, R11
	JEQ lastgroup
	VPMAXSW Y14, Y12, Y12
	JMP next

lastgroup:
	VPBROADCASTW 48(AX), Y8
	VMOVDQU bswBitsTab<>(SB), Y9
	VPAND Y9, Y8, Y8
	VPCMPEQW Y9, Y8, Y8
	VPBLENDVB Y8, Y14, Y7, Y9   // in-band ? h : sentinel
	VPMAXSW Y9, Y12, Y12

next:
	ADDQ $32, BX
	INCQ R12
	CMPQ R12, R11
	JLT groups

	// Horizontal max of the accumulator -> args.rowMax.
	VEXTRACTI128 $1, Y12, X8
	VZEROUPPER
	VPMAXSW X8, X12, X12
	VPSHUFD $0x4E, X12, X8
	VPMAXSW X8, X12, X12
	VPSHUFD $0xB1, X12, X8
	VPMAXSW X8, X12, X12
	VPSHUFLW $0xB1, X12, X8
	VPMAXSW X8, X12, X12
	MOVQ X12, CX
	MOVW CX, 68(AX)
	RET
