// Package bsw implements the banded Smith-Waterman kernel from
// BWA-MEM2: affine-gap dynamic programming over a diagonal band with
// z-drop early termination, in both a scalar form and an
// inter-sequence lock-step batch form that models the AVX2 16-lane
// vectorization. The batch form counts useful versus issued cell
// updates, reproducing the paper's observation that the vectorized
// kernel performs ~2.2x more cell updates than the scalar one because
// lanes pad to the slowest sequence pair.
package bsw

import (
	"context"

	"repro/internal/cpufeat"
	"repro/internal/faultinject"
	"repro/internal/genome"
	"repro/internal/lanes"
	"repro/internal/parallel"
	"repro/internal/perf"
	"repro/internal/scratch"
	"repro/internal/seq2"
)

// Mode selects the alignment objective.
type Mode int

// Alignment modes.
const (
	// Local is classic Smith-Waterman: best-scoring local alignment.
	Local Mode = iota
	// Extension anchors the alignment at (0,0) and extends, aborting
	// via z-drop — the seed-extension mode BWA-MEM uses.
	Extension
)

// Params are the scoring and banding parameters.
type Params struct {
	Match     int // score for a base match (positive)
	Mismatch  int // penalty for a mismatch (positive)
	GapOpen   int // affine gap open penalty q (positive)
	GapExtend int // affine gap extend penalty e (positive)
	Band      int // half band width w: cells with |i-j| <= w
	ZDrop     int // extension abort threshold (Extension mode)
	Mode      Mode
}

// DefaultParams mirrors BWA-MEM2 defaults.
func DefaultParams() Params {
	return Params{Match: 1, Mismatch: 4, GapOpen: 6, GapExtend: 1, Band: 100, ZDrop: 100, Mode: Extension}
}

// Result reports one pairwise alignment.
type Result struct {
	Score       int
	QEnd, TEnd  int    // end coordinates of the best cell (exclusive)
	CellUpdates uint64 // DP cells actually computed
	ZDropped    bool   // extension aborted early
}

const negInf = -(1 << 29)

// Align computes the banded affine-gap alignment of query q against
// target t. In Local mode scores clamp at zero and the best cell
// anywhere wins; in Extension mode the alignment is anchored at (0,0)
// and rows abort once the row maximum falls ZDrop below the best.
//
// Align is the scalar reference implementation: it allocates its DP
// rows per call and compares bases byte by byte. Hot loops use
// AlignInto, the bit-parallel zero-allocation variant, which is
// differential-tested to return identical results.
func Align(q, t genome.Seq, p Params) Result {
	m, n := len(q), len(t)
	res := Result{}
	if m == 0 || n == 0 {
		return res
	}
	w := p.Band
	if w <= 0 {
		w = 1
	}
	// Row-wise DP: H[j], E[j] carry the previous row; F tracks the
	// current row's horizontal gap state.
	H := make([]int, n+1)
	E := make([]int, n+1)
	prevH := make([]int, n+1)

	// Row 0 initialization.
	for j := 0; j <= n; j++ {
		E[j] = negInf
		if p.Mode == Local {
			prevH[j] = 0
		} else {
			if j == 0 {
				prevH[j] = 0
			} else if j <= w {
				prevH[j] = -(p.GapOpen + j*p.GapExtend)
			} else {
				prevH[j] = negInf
			}
		}
	}
	best, bestI, bestJ := 0, 0, 0
	if p.Mode == Extension {
		best = negInf
	}
	var cells uint64

	for i := 1; i <= m; i++ {
		lo := i - w
		if lo < 1 {
			lo = 1
		}
		hi := i + w
		if hi > n {
			hi = n
		}
		if lo > hi {
			break
		}
		// Left boundary of the row.
		if p.Mode == Local {
			H[lo-1] = 0
		} else if lo == 1 {
			H[0] = -(p.GapOpen + i*p.GapExtend)
		} else {
			H[lo-1] = negInf
		}
		F := negInf
		rowMax := negInf
		rowMaxJ := lo
		for j := lo; j <= hi; j++ {
			cells++
			s := p.Match
			if q[i-1] != t[j-1] {
				s = -p.Mismatch
			}
			diag := prevH[j-1]
			h := diag + s
			// E: gap in query (vertical move), carried from prev row.
			e := prevH[j] - p.GapOpen - p.GapExtend
			if E[j]-p.GapExtend > e {
				e = E[j] - p.GapExtend
			}
			// F: gap in target (horizontal move) within this row.
			f := H[j-1] - p.GapOpen - p.GapExtend
			if F-p.GapExtend > f {
				f = F - p.GapExtend
			}
			if e > h {
				h = e
			}
			if f > h {
				h = f
			}
			if p.Mode == Local && h < 0 {
				h = 0
			}
			H[j] = h
			E[j] = e
			F = f
			if h > rowMax {
				rowMax = h
				rowMaxJ = j
			}
		}
		// Out-of-band cells on the right are unreachable.
		if hi < n {
			H[hi+1] = negInf
			E[hi+1] = negInf
		}
		if rowMax > best {
			best = rowMax
			bestI = i
			bestJ = rowMaxJ
		}
		if p.Mode == Extension && p.ZDrop > 0 && rowMax < best-p.ZDrop {
			res.ZDropped = true
			break
		}
		prevH, H = H, prevH
	}
	res.Score = best
	res.QEnd = bestI
	res.TEnd = bestJ
	res.CellUpdates = cells
	return res
}

// negInf32 is the int32 sentinel of the optimized core. Scores fit
// comfortably in 32 bits (the original kernel runs in 8/16-bit SIMD
// lanes); halving the row width halves the DP memory traffic.
const negInf32 = int32(-(1 << 29))

// AlignInto is Align drawing every buffer from a reusable scratch
// arena: zero heap allocations per call in steady state, int32 DP rows
// (half the memory traffic of the int rows Align uses), and a SWAR
// match mask — the target is 2-bit packed once per call and each row
// compares 32 target bases against the row's query base in a handful
// of word ops (seq2.MatchMask), so the inner loop replaces its byte
// load + compare with one bit test.
//
// AlignInto claims the arena: it calls a.Reset, so buffers handed out
// before the call are invalidated. A nil arena allocates a temporary
// one (useful for one-off calls; task loops must pass a per-worker
// arena to get the zero-allocation path). Results are bit-identical to
// Align on every input.
//
// On hosts with a 16-wide SIMD tier (cpufeat.Wide16), alignments
// whose scoring passes wideEligible's int16 range proof and whose DP
// area clears the measured lanes.WideMinWork floor route to
// alignWide, the 16-cells-per-step assembly band kernel (wide.go);
// results stay bit-identical either way.
func AlignInto(q, t genome.Seq, p Params, a *scratch.Arena) Result {
	m, n := len(q), len(t)
	res := Result{}
	if m == 0 || n == 0 {
		return res
	}
	if bswHaveWideAsm && cpufeat.Wide16() && wideEligible(p, m, n) &&
		wideArea(p, m, n) >= lanes.WideMinWork.Get() {
		return alignWide(q, t, p, a, true)
	}
	if a == nil {
		a = scratch.New()
	}
	a.Reset()
	w := p.Band
	if w <= 0 {
		w = 1
	}
	H := a.Int32s(n + 1)
	E := a.Int32s(n + 1)
	prevH := a.Int32s(n + 1)
	pt := seq2.PackInto(a.Uint64s(seq2.Words(n)), t)
	mask := a.Uint64s(seq2.Words(n))

	gapO := int32(p.GapOpen)
	ge := int32(p.GapExtend)
	oe := gapO + ge
	match := int32(p.Match)
	mism := int32(-p.Mismatch)
	local := p.Mode == Local

	// Row 0 initialization (same recurrence as Align).
	for j := 0; j <= n; j++ {
		E[j] = negInf32
		if local {
			prevH[j] = 0
		} else {
			if j == 0 {
				prevH[j] = 0
			} else if j <= w {
				prevH[j] = -(gapO + int32(j)*ge)
			} else {
				prevH[j] = negInf32
			}
		}
	}
	best := int32(0)
	bestI, bestJ := 0, 0
	if !local {
		best = negInf32
	}
	zdrop := int32(p.ZDrop)
	var cells uint64

	for i := 1; i <= m; i++ {
		lo := i - w
		if lo < 1 {
			lo = 1
		}
		hi := i + w
		if hi > n {
			hi = n
		}
		if lo > hi {
			break
		}
		// Left boundary of the row.
		if local {
			H[lo-1] = 0
		} else if lo == 1 {
			H[0] = -(gapO + int32(i)*ge)
		} else {
			H[lo-1] = negInf32
		}
		// One packed comparison sweep replaces the per-cell byte
		// compare: bit 2*((j-1)%32) of mask[(j-1)/32] is set iff
		// t[j-1] == q[i-1].
		seq2.MatchMask(mask, pt, q[i-1])
		F := negInf32
		rowMax := negInf32
		rowMaxJ := lo
		// hLeft and diag carry H[j-1] and prevH[j-1] in registers so
		// the inner loop performs two loads (prevH[j], E[j]) instead of
		// four.
		hLeft := H[lo-1]
		diag := prevH[lo-1]
		cells += uint64(hi - lo + 1)
		// Bounds-check elimination hints for the three row arrays.
		_, _, _ = H[hi], E[hi], prevH[hi]
		// Process the row in word-aligned blocks of up to 32 columns:
		// the 32 match bits for a block stay in one register (mw) and
		// cost an AND plus a shift per cell, instead of a load and a
		// computed shift.
		for j := lo; j <= hi; {
			off := uint(j-1) % 32
			mw := mask[uint(j-1)/32] >> (2 * off)
			blockEnd := j + int(32-off) - 1
			if blockEnd > hi {
				blockEnd = hi
			}
			for ; j <= blockEnd; j++ {
				ph := prevH[j]
				s := mism
				if mw&1 != 0 {
					s = match
				}
				mw >>= 2
				h := diag + s
				e := ph - oe
				if x := E[j] - ge; x > e {
					e = x
				}
				f := hLeft - oe
				if x := F - ge; x > f {
					f = x
				}
				if e > h {
					h = e
				}
				if f > h {
					h = f
				}
				if local && h < 0 {
					h = 0
				}
				H[j] = h
				E[j] = e
				F = f
				hLeft = h
				diag = ph
				if h > rowMax {
					rowMax = h
					rowMaxJ = j
				}
			}
		}
		// Out-of-band cells on the right are unreachable.
		if hi < n {
			H[hi+1] = negInf32
			E[hi+1] = negInf32
		}
		if rowMax > best {
			best = rowMax
			bestI = i
			bestJ = rowMaxJ
		}
		if !local && zdrop > 0 && rowMax < best-zdrop {
			res.ZDropped = true
			break
		}
		prevH, H = H, prevH
	}
	res.Score = int(best)
	res.QEnd = bestI
	res.TEnd = bestJ
	res.CellUpdates = cells
	return res
}

// AlignFull computes the unbanded local Smith-Waterman alignment — the
// exhaustive baseline the banded kernel approximates.
func AlignFull(q, t genome.Seq, p Params) Result {
	full := p
	full.Band = len(q) + len(t)
	full.Mode = Local
	full.ZDrop = 0
	return Align(q, t, full)
}

// Pair is one alignment task.
type Pair struct {
	Query, Target genome.Seq
}

// BatchStats reports the efficiency of a lock-step batch execution.
type BatchStats struct {
	UsefulCells uint64 // cells a scalar implementation would compute
	IssuedCells uint64 // lane-slots issued by the lock-step batch
}

// Overhead is issued/useful — the paper's 2.2x metric.
func (s BatchStats) Overhead() float64 {
	if s.UsefulCells == 0 {
		return 1
	}
	return float64(s.IssuedCells) / float64(s.UsefulCells)
}

// AlignBatch aligns pairs in lock-step groups of `lanes` (modelling
// inter-sequence SIMD): within a group, every row issues a full vector
// of cell updates sized by the band, and the group runs until its
// slowest live lane finishes. Pairs should be pre-sorted by length, as
// BWA-MEM2 does; even then, z-drop and length spread leave idle lanes.
func AlignBatch(pairs []Pair, p Params, lanes int) ([]Result, BatchStats) {
	if lanes <= 0 {
		lanes = 16
	}
	results := make([]Result, len(pairs))
	var stats BatchStats
	arena := scratch.New() // lanes share one arena: pairs run sequentially
	for start := 0; start < len(pairs); start += lanes {
		end := start + lanes
		if end > len(pairs) {
			end = len(pairs)
		}
		group := pairs[start:end]
		maxRows := 0
		alive := make([]bool, len(group))
		for gi, pr := range group {
			results[start+gi] = AlignInto(pr.Query, pr.Target, p, arena)
			stats.UsefulCells += results[start+gi].CellUpdates
			alive[gi] = true
			if len(pr.Query) > maxRows {
				maxRows = len(pr.Query)
			}
		}
		// Lock-step issue model: each row of the group issues
		// lanes x bandwidth cell slots until every lane has finished its
		// own (possibly z-dropped) row count.
		rowsLeft := make([]int, len(group))
		for gi, pr := range group {
			rows := len(pr.Query)
			if results[start+gi].ZDropped {
				// The lane stopped at its abort row; recover the row it
				// reached from its useful cell count and band geometry.
				rows = rowsForCells(results[start+gi].CellUpdates, len(pr.Query), len(pr.Target), p.Band)
			}
			rowsLeft[gi] = rows
		}
		groupRows := 0
		for _, r := range rowsLeft {
			if r > groupRows {
				groupRows = r
			}
		}
		bandWidth := 2*p.Band + 1
		stats.IssuedCells += uint64(groupRows) * uint64(lanes) * uint64(bandWidth)
	}
	return results, stats
}

// rowsForCells inverts the banded cell count to the number of rows the
// scalar alignment processed before aborting.
func rowsForCells(cells uint64, m, n, w int) int {
	var acc uint64
	for i := 1; i <= m; i++ {
		lo := i - w
		if lo < 1 {
			lo = 1
		}
		hi := i + w
		if hi > n {
			hi = n
		}
		if lo > hi {
			return i - 1
		}
		acc += uint64(hi - lo + 1)
		if acc >= cells {
			return i
		}
	}
	return m
}

// KernelResult aggregates a bsw benchmark execution.
type KernelResult struct {
	Pairs       int
	TotalScore  int64
	CellUpdates uint64
	TaskStats   *perf.TaskStats
	Counters    perf.Counters
}

// RunKernel aligns all pairs with dynamic scheduling across threads.
// It panics on failure; cancellable callers use RunKernelCtx.
func RunKernel(pairs []Pair, p Params, threads int) KernelResult {
	res, err := RunKernelCtx(context.Background(), pairs, p, threads)
	if err != nil {
		panic(err)
	}
	return res
}

// RunKernelCtx is RunKernel with cooperative cancellation and a fault
// trip-point per pair.
func RunKernelCtx(ctx context.Context, pairs []Pair, p Params, threads int) (KernelResult, error) {
	if threads <= 0 {
		threads = 1
	}
	type ws struct {
		score int64
		cells uint64
		stats *perf.TaskStats
		arena *scratch.Arena
		_     perf.CacheLinePad // workers update these per task; keep shards on private cache lines
	}
	workers := make([]ws, threads)
	pool := scratch.PoolFrom(ctx) // nil pool hands out fresh arenas
	for i := range workers {
		workers[i].stats = perf.NewTaskStats("cell updates")
		workers[i].arena = pool.Worker(i)
	}
	// Alignments are fine-grained (sub-millisecond); chunked dispatch
	// amortizes the shared-counter fetch across a few pairs per pull.
	chunk := parallel.ChunkFor(len(pairs), threads)
	err := parallel.ForEachChunkedCtxErr(ctx, len(pairs), threads, chunk, func(tctx context.Context, w, i int) error {
		if err := faultinject.Point(tctx); err != nil {
			return err
		}
		r := AlignInto(pairs[i].Query, pairs[i].Target, p, workers[w].arena)
		workers[w].score += int64(r.Score)
		workers[w].cells += r.CellUpdates
		workers[w].stats.Observe(float64(r.CellUpdates))
		return nil
	})
	if err != nil {
		return KernelResult{}, err
	}
	res := KernelResult{Pairs: len(pairs), TaskStats: perf.NewTaskStats("cell updates")}
	for i := range workers {
		res.TotalScore += workers[i].score
		res.CellUpdates += workers[i].cells
		res.TaskStats.Merge(workers[i].stats)
	}
	// bsw is compute-bound with heavy vector usage in the original:
	// each cell is a handful of max/blend ops plus two row-array
	// touches.
	res.Counters.Add(perf.VecOp, res.CellUpdates*6)
	res.Counters.Add(perf.IntALU, res.CellUpdates*2)
	res.Counters.Add(perf.Load, res.CellUpdates*2)
	res.Counters.Add(perf.Store, res.CellUpdates)
	res.Counters.Add(perf.Branch, res.CellUpdates/4)
	return res, nil
}
