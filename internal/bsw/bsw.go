// Package bsw implements the banded Smith-Waterman kernel from
// BWA-MEM2: affine-gap dynamic programming over a diagonal band with
// z-drop early termination, in both a scalar form and an
// inter-sequence lock-step batch form that models the AVX2 16-lane
// vectorization. The batch form counts useful versus issued cell
// updates, reproducing the paper's observation that the vectorized
// kernel performs ~2.2x more cell updates than the scalar one because
// lanes pad to the slowest sequence pair.
package bsw

import (
	"context"

	"repro/internal/faultinject"
	"repro/internal/genome"
	"repro/internal/parallel"
	"repro/internal/perf"
)

// Mode selects the alignment objective.
type Mode int

// Alignment modes.
const (
	// Local is classic Smith-Waterman: best-scoring local alignment.
	Local Mode = iota
	// Extension anchors the alignment at (0,0) and extends, aborting
	// via z-drop — the seed-extension mode BWA-MEM uses.
	Extension
)

// Params are the scoring and banding parameters.
type Params struct {
	Match     int // score for a base match (positive)
	Mismatch  int // penalty for a mismatch (positive)
	GapOpen   int // affine gap open penalty q (positive)
	GapExtend int // affine gap extend penalty e (positive)
	Band      int // half band width w: cells with |i-j| <= w
	ZDrop     int // extension abort threshold (Extension mode)
	Mode      Mode
}

// DefaultParams mirrors BWA-MEM2 defaults.
func DefaultParams() Params {
	return Params{Match: 1, Mismatch: 4, GapOpen: 6, GapExtend: 1, Band: 100, ZDrop: 100, Mode: Extension}
}

// Result reports one pairwise alignment.
type Result struct {
	Score       int
	QEnd, TEnd  int    // end coordinates of the best cell (exclusive)
	CellUpdates uint64 // DP cells actually computed
	ZDropped    bool   // extension aborted early
}

const negInf = -(1 << 29)

// Align computes the banded affine-gap alignment of query q against
// target t. In Local mode scores clamp at zero and the best cell
// anywhere wins; in Extension mode the alignment is anchored at (0,0)
// and rows abort once the row maximum falls ZDrop below the best.
func Align(q, t genome.Seq, p Params) Result {
	m, n := len(q), len(t)
	res := Result{}
	if m == 0 || n == 0 {
		return res
	}
	w := p.Band
	if w <= 0 {
		w = 1
	}
	// Row-wise DP: H[j], E[j] carry the previous row; F tracks the
	// current row's horizontal gap state.
	H := make([]int, n+1)
	E := make([]int, n+1)
	prevH := make([]int, n+1)

	// Row 0 initialization.
	for j := 0; j <= n; j++ {
		E[j] = negInf
		if p.Mode == Local {
			prevH[j] = 0
		} else {
			if j == 0 {
				prevH[j] = 0
			} else if j <= w {
				prevH[j] = -(p.GapOpen + j*p.GapExtend)
			} else {
				prevH[j] = negInf
			}
		}
	}
	best, bestI, bestJ := 0, 0, 0
	if p.Mode == Extension {
		best = negInf
	}
	var cells uint64

	for i := 1; i <= m; i++ {
		lo := i - w
		if lo < 1 {
			lo = 1
		}
		hi := i + w
		if hi > n {
			hi = n
		}
		if lo > hi {
			break
		}
		// Left boundary of the row.
		if p.Mode == Local {
			H[lo-1] = 0
		} else if lo == 1 {
			H[0] = -(p.GapOpen + i*p.GapExtend)
		} else {
			H[lo-1] = negInf
		}
		F := negInf
		rowMax := negInf
		rowMaxJ := lo
		for j := lo; j <= hi; j++ {
			cells++
			s := p.Match
			if q[i-1] != t[j-1] {
				s = -p.Mismatch
			}
			diag := prevH[j-1]
			h := diag + s
			// E: gap in query (vertical move), carried from prev row.
			e := prevH[j] - p.GapOpen - p.GapExtend
			if E[j]-p.GapExtend > e {
				e = E[j] - p.GapExtend
			}
			// F: gap in target (horizontal move) within this row.
			f := H[j-1] - p.GapOpen - p.GapExtend
			if F-p.GapExtend > f {
				f = F - p.GapExtend
			}
			if e > h {
				h = e
			}
			if f > h {
				h = f
			}
			if p.Mode == Local && h < 0 {
				h = 0
			}
			H[j] = h
			E[j] = e
			F = f
			if h > rowMax {
				rowMax = h
				rowMaxJ = j
			}
		}
		// Out-of-band cells on the right are unreachable.
		if hi < n {
			H[hi+1] = negInf
			E[hi+1] = negInf
		}
		if rowMax > best {
			best = rowMax
			bestI = i
			bestJ = rowMaxJ
		}
		if p.Mode == Extension && p.ZDrop > 0 && rowMax < best-p.ZDrop {
			res.ZDropped = true
			break
		}
		prevH, H = H, prevH
	}
	res.Score = best
	res.QEnd = bestI
	res.TEnd = bestJ
	res.CellUpdates = cells
	return res
}

// AlignFull computes the unbanded local Smith-Waterman alignment — the
// exhaustive baseline the banded kernel approximates.
func AlignFull(q, t genome.Seq, p Params) Result {
	full := p
	full.Band = len(q) + len(t)
	full.Mode = Local
	full.ZDrop = 0
	return Align(q, t, full)
}

// Pair is one alignment task.
type Pair struct {
	Query, Target genome.Seq
}

// BatchStats reports the efficiency of a lock-step batch execution.
type BatchStats struct {
	UsefulCells uint64 // cells a scalar implementation would compute
	IssuedCells uint64 // lane-slots issued by the lock-step batch
}

// Overhead is issued/useful — the paper's 2.2x metric.
func (s BatchStats) Overhead() float64 {
	if s.UsefulCells == 0 {
		return 1
	}
	return float64(s.IssuedCells) / float64(s.UsefulCells)
}

// AlignBatch aligns pairs in lock-step groups of `lanes` (modelling
// inter-sequence SIMD): within a group, every row issues a full vector
// of cell updates sized by the band, and the group runs until its
// slowest live lane finishes. Pairs should be pre-sorted by length, as
// BWA-MEM2 does; even then, z-drop and length spread leave idle lanes.
func AlignBatch(pairs []Pair, p Params, lanes int) ([]Result, BatchStats) {
	if lanes <= 0 {
		lanes = 16
	}
	results := make([]Result, len(pairs))
	var stats BatchStats
	for start := 0; start < len(pairs); start += lanes {
		end := start + lanes
		if end > len(pairs) {
			end = len(pairs)
		}
		group := pairs[start:end]
		maxRows := 0
		alive := make([]bool, len(group))
		for gi, pr := range group {
			results[start+gi] = Align(pr.Query, pr.Target, p)
			stats.UsefulCells += results[start+gi].CellUpdates
			alive[gi] = true
			if len(pr.Query) > maxRows {
				maxRows = len(pr.Query)
			}
		}
		// Lock-step issue model: each row of the group issues
		// lanes x bandwidth cell slots until every lane has finished its
		// own (possibly z-dropped) row count.
		rowsLeft := make([]int, len(group))
		for gi, pr := range group {
			rows := len(pr.Query)
			if results[start+gi].ZDropped {
				// The lane stopped at its abort row; recover the row it
				// reached from its useful cell count and band geometry.
				rows = rowsForCells(results[start+gi].CellUpdates, len(pr.Query), len(pr.Target), p.Band)
			}
			rowsLeft[gi] = rows
		}
		groupRows := 0
		for _, r := range rowsLeft {
			if r > groupRows {
				groupRows = r
			}
		}
		bandWidth := 2*p.Band + 1
		stats.IssuedCells += uint64(groupRows) * uint64(lanes) * uint64(bandWidth)
	}
	return results, stats
}

// rowsForCells inverts the banded cell count to the number of rows the
// scalar alignment processed before aborting.
func rowsForCells(cells uint64, m, n, w int) int {
	var acc uint64
	for i := 1; i <= m; i++ {
		lo := i - w
		if lo < 1 {
			lo = 1
		}
		hi := i + w
		if hi > n {
			hi = n
		}
		if lo > hi {
			return i - 1
		}
		acc += uint64(hi - lo + 1)
		if acc >= cells {
			return i
		}
	}
	return m
}

// KernelResult aggregates a bsw benchmark execution.
type KernelResult struct {
	Pairs       int
	TotalScore  int64
	CellUpdates uint64
	TaskStats   *perf.TaskStats
	Counters    perf.Counters
}

// RunKernel aligns all pairs with dynamic scheduling across threads.
// It panics on failure; cancellable callers use RunKernelCtx.
func RunKernel(pairs []Pair, p Params, threads int) KernelResult {
	res, err := RunKernelCtx(context.Background(), pairs, p, threads)
	if err != nil {
		panic(err)
	}
	return res
}

// RunKernelCtx is RunKernel with cooperative cancellation and a fault
// trip-point per pair.
func RunKernelCtx(ctx context.Context, pairs []Pair, p Params, threads int) (KernelResult, error) {
	if threads <= 0 {
		threads = 1
	}
	type ws struct {
		score int64
		cells uint64
		stats *perf.TaskStats
	}
	workers := make([]ws, threads)
	for i := range workers {
		workers[i].stats = perf.NewTaskStats("cell updates")
	}
	err := parallel.ForEachCtxErr(ctx, len(pairs), threads, func(tctx context.Context, w, i int) error {
		if err := faultinject.Point(tctx); err != nil {
			return err
		}
		r := Align(pairs[i].Query, pairs[i].Target, p)
		workers[w].score += int64(r.Score)
		workers[w].cells += r.CellUpdates
		workers[w].stats.Observe(float64(r.CellUpdates))
		return nil
	})
	if err != nil {
		return KernelResult{}, err
	}
	res := KernelResult{Pairs: len(pairs), TaskStats: perf.NewTaskStats("cell updates")}
	for i := range workers {
		res.TotalScore += workers[i].score
		res.CellUpdates += workers[i].cells
		res.TaskStats.Merge(workers[i].stats)
	}
	// bsw is compute-bound with heavy vector usage in the original:
	// each cell is a handful of max/blend ops plus two row-array
	// touches.
	res.Counters.Add(perf.VecOp, res.CellUpdates*6)
	res.Counters.Add(perf.IntALU, res.CellUpdates*2)
	res.Counters.Add(perf.Load, res.CellUpdates*2)
	res.Counters.Add(perf.Store, res.CellUpdates)
	res.Counters.Add(perf.Branch, res.CellUpdates/4)
	return res, nil
}
