package scenario

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/abea"
	"repro/internal/genome"
	"repro/internal/signalsim"
)

// Nanopolish-style methylation detection as a registered scenario: a
// CpG-island region is "sequenced" molecule by molecule through the
// pore model (alternating methylated and unmethylated molecules), each
// molecule's raw signal is event-aligned and its CpG sites called by
// the abea kernel. Promoted from examples/methylation.

// Molecule is one simulated read-to-be: which molecule, whether its
// cytosines are methylated, and the per-molecule signal seed.
type Molecule struct {
	Index      int
	Methylated bool
	Seed       int64
}

// MoleculeEvents is the signal stage's output: the molecule plus its
// simulated event stream.
type MoleculeEvents struct {
	Mol    Molecule
	Events []signalsim.Event
}

// MethylSummary is one molecule's call summary: how many of its CpG
// sites were called methylated and the summed log-likelihood ratio.
type MethylSummary struct {
	Index      int
	Methylated bool // planted truth
	Sites      int
	Called     int
	SumLLR     float64
}

func init() {
	Register(&Def{
		Name:  "methylation",
		Title: "Nanopore CpG methylation calling",
		Stages: []string{
			"molecules", "signal", "methylcall",
		},
		Params: Params{
			"seq_len":      1_200,
			"cpg_every":    60,
			"molecules":    8,
			"noise":        0.6,
			"threshold":    2.0,
			"seed":         41,
			"sig_workers":  2,
			"call_workers": 2,
			"min_tp":       0.60,
			"max_fp":       0.25,
		},
		Build: buildMethylation,
	})
}

func buildMethylation(p Params) (*Pipeline, error) {
	var (
		seqLen    = p.Int("seq_len", 1_200)
		cpgEvery  = p.Int("cpg_every", 60)
		molecules = p.Int("molecules", 8)
		noise     = p.Get("noise", 0.6)
		threshold = float32(p.Get("threshold", 2.0))
		seed      = int64(p.Int("seed", 41))
		minTP     = p.Get("min_tp", 0.60)
		maxFP     = p.Get("max_fp", 0.25)
	)
	rng := rand.New(rand.NewSource(seed))
	base := signalsim.NewPoreModel()
	meth := abea.MethylatedModel(base)

	// A CpG-island-like region: random backbone with CpG sites planted
	// every ~cpgEvery bases.
	seq := genome.Random(rng, seqLen)
	for i := 30; i+1 < len(seq)-30; i += cpgEvery {
		seq[i], seq[i+1] = genome.C, genome.G
	}

	simCfg := signalsim.DefaultConfig()
	simCfg.NoiseScale = noise
	callCfg := abea.DefaultConfig()

	pipe := &Pipeline{
		Source: func(ctx context.Context, emit func(any) error) error {
			for i := 0; i < molecules; i++ {
				m := Molecule{Index: i, Methylated: i%2 == 0, Seed: seed + 1000 + int64(i)}
				if err := emit(m); err != nil {
					return err
				}
			}
			return nil
		},
		Stages: []Stage{
			{
				Name:    "signal",
				Workers: p.Int("sig_workers", 2),
				Fn: func(ctx context.Context, w *Worker, v any, emit func(any) error) error {
					m := v.(Molecule)
					model := base
					if m.Methylated {
						model = meth
					}
					// Per-molecule rng: deterministic regardless of
					// which worker or executor simulates it.
					mrng := rand.New(rand.NewSource(m.Seed))
					ev := signalsim.Simulate(mrng, model, seq, simCfg)
					return emit(&MoleculeEvents{Mol: m, Events: ev})
				},
			},
			{
				Name:    "methylcall",
				Workers: p.Int("call_workers", 2),
				Fn: func(ctx context.Context, w *Worker, v any, emit func(any) error) error {
					me := v.(*MoleculeEvents)
					calls := abea.CallMethylation(base, meth, seq, me.Events, callCfg, threshold)
					s := MethylSummary{Index: me.Mol.Index, Methylated: me.Mol.Methylated, Sites: len(calls)}
					for _, c := range calls {
						s.SumLLR += float64(c.LogLikRatio)
						if c.Methylated {
							s.Called++
						}
					}
					return emit(s)
				},
			},
		},
		Fold: func(d *Digest, v any) {
			s := v.(MethylSummary)
			d.Int(s.Index)
			d.Bool(s.Methylated)
			d.Int(s.Sites)
			d.Int(s.Called)
			d.F64(s.SumLLR)
		},
		Accept: func(final []any) error {
			var tp, methSites, fp, unmethSites int
			for _, v := range final {
				s := v.(MethylSummary)
				if s.Methylated {
					tp += s.Called
					methSites += s.Sites
				} else {
					fp += s.Called
					unmethSites += s.Sites
				}
			}
			if methSites == 0 || unmethSites == 0 {
				return fmt.Errorf("methylation: no sites called (meth %d, unmeth %d)", methSites, unmethSites)
			}
			tpRate := float64(tp) / float64(methSites)
			fpRate := float64(fp) / float64(unmethSites)
			if tpRate < minTP {
				return fmt.Errorf("methylation: true-positive rate %.2f below floor %.2f", tpRate, minTP)
			}
			if fpRate > maxFP {
				return fmt.Errorf("methylation: false-positive rate %.2f above ceiling %.2f", fpRate, maxFP)
			}
			return nil
		},
		Summary: func(final []any) string {
			var tp, methSites, fp, unmethSites int
			for _, v := range final {
				s := v.(MethylSummary)
				if s.Methylated {
					tp += s.Called
					methSites += s.Sites
				} else {
					fp += s.Called
					unmethSites += s.Sites
				}
			}
			return fmt.Sprintf("%d molecules: methylated sites %d/%d called, unmethylated %d/%d falsely called",
				len(final), tp, methSites, fp, unmethSites)
		},
	}
	return pipe, nil
}
