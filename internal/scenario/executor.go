package scenario

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/resilience"
	"repro/internal/scratch"
)

// Options configure one executor run.
type Options struct {
	// QueueCap bounds each inter-stage channel in the fused executor —
	// the backpressure knob. 0 means 8.
	QueueCap int
	// Workers caps every stage's worker count when > 0 (tests force 1
	// for strict sequencing; benches force the measured width).
	Workers int
	// Pool supplies warm per-worker arenas keyed by stable slot
	// (stage-major, worker-minor — identical across both executors).
	// nil hands out fresh arenas.
	Pool *scratch.Pool
	// StageTimeout bounds each stage's supervised execution; 0 means
	// no deadline. Streaming stages cannot be retried (their input is
	// consumed), so resilience runs every stage with Attempts=1 and
	// this timeout.
	StageTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.QueueCap <= 0 {
		o.QueueCap = 8
	}
	return o
}

// StageStats is one stage's progress and occupancy accounting. On a
// failed or cancelled run the counters still report partial progress —
// the shutdown tests assert on them.
type StageStats struct {
	Name    string
	Workers int
	In      int64 // items received
	Out     int64 // items emitted (In-Out were filtered)
	BusyNs  int64 // summed Fn/Flush execution time across workers
	WallNs  int64 // first item received -> last item finished
	// QueuePeak is the input channel's high-water depth (fused only);
	// a stage that never backs up its producer reads 0..1, a saturated
	// one reads the full QueueCap.
	QueuePeak int
	// Occupancy is BusyNs / (WallNs * Workers): how busy the stage's
	// pool was over its active window.
	Occupancy float64
}

// Result is one executor run's outcome.
type Result struct {
	Scenario string
	Mode     string // "fused" or "staged"
	Final    []any  // outputs in deterministic source order
	Digest   uint64
	Elapsed  time.Duration
	Source   int64 // items the source emitted
	Stages   []StageStats
	// Overlap is the stage-overlap ratio: (sum of stage active windows
	// - pipeline makespan) / makespan. ~0 when stages ran back to back
	// (staged), approaching len(Stages)-1 when every stage streamed
	// concurrently (fused).
	Overlap float64
}

// item is one value in flight, keyed for deterministic final ordering:
// the key is the item's emission path (source index, then per-stage
// emission sub-index), compared lexicographically at the sink.
type item struct {
	key []int32
	v   any
}

func childKey(parent []int32, sub int) []int32 {
	k := make([]int32, len(parent)+1)
	copy(k, parent)
	k[len(parent)] = int32(sub)
	return k
}

// flushParentKey fabricates a parent key that sorts after every real
// item at the given depth, for outputs a Flush hook emits after its
// stage's input is exhausted.
func flushParentKey(depth int) []int32 {
	k := make([]int32, depth)
	for i := range k {
		k[i] = 1 << 30
	}
	return k
}

func keyLess(a, b []int32) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// stageStats is the executors' mutable accounting; atomics because
// fused stage workers update concurrently.
type stageStats struct {
	in, out   atomic.Int64
	busyNs    atomic.Int64
	firstNs   atomic.Int64 // offset from run start; 0 = never active
	lastNs    atomic.Int64
	queuePeak atomic.Int64
}

func (s *stageStats) markActive(sinceStart time.Duration) {
	ns := sinceStart.Nanoseconds()
	if ns < 1 {
		ns = 1
	}
	s.firstNs.CompareAndSwap(0, ns)
	atomicMax(&s.lastNs, ns)
}

func atomicMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

func (s *stageStats) wallNs() int64 {
	first, last := s.firstNs.Load(), s.lastNs.Load()
	if first == 0 || last < first {
		return 0
	}
	return last - first
}

// stageWorkers resolves a stage's effective pool width under opt.
func stageWorkers(st *Stage, opt Options) int {
	w := st.Workers
	if w <= 0 {
		w = 1
	}
	if opt.Workers > 0 && w > opt.Workers {
		w = opt.Workers
	}
	if st.Flush != nil {
		w = 1
	}
	return w
}

// FusedWorkers returns the fused executor's total worker concurrency
// under opt — the thread count stamped on scenario bench pair entries
// so hosts that cannot exercise the overlap skip the gate instead of
// mis-reading a 1-core run as a regression.
func (p *Pipeline) FusedWorkers(opt Options) int {
	n := 0
	for i := range p.Stages {
		n += stageWorkers(&p.Stages[i], opt)
	}
	return n
}

// prefetchWorkers draws every stage's Worker structs from the pool in
// one sequential pass (scratch.Pool is not concurrency-safe), with
// slot numbering stage-major so fused and staged runs warm the same
// arenas and state.
func prefetchWorkers(p *Pipeline, opt Options) [][]*Worker {
	out := make([][]*Worker, len(p.Stages))
	slot := 0
	for si := range p.Stages {
		st := &p.Stages[si]
		n := stageWorkers(st, opt)
		ws := make([]*Worker, n)
		for w := 0; w < n; w++ {
			wk := &Worker{Arena: opt.Pool.Worker(slot)}
			if st.NewState != nil {
				wk.State = opt.Pool.WorkerState(slot, st.NewState)
			}
			if st.NewLocal != nil {
				wk.Local = st.NewLocal()
			}
			ws[w] = wk
			slot++
		}
		out[si] = ws
	}
	return out
}

func stagePolicy(opt Options) resilience.Policy {
	// Streaming stages consume their input as they run, so a retry
	// would replay nothing: one attempt, panic capture, optional
	// deadline.
	return resilience.Policy{Attempts: 1, Timeout: opt.StageTimeout}
}

func pointLabel(scenario, stage string) string {
	return "scenario/" + scenario + "/" + stage
}

// finish sorts, digests and accepts the collected outputs, filling the
// result's derived fields. Called only on clean runs.
func (r *Result) finish(p *Pipeline, final []item) error {
	sort.Slice(final, func(i, j int) bool { return keyLess(final[i].key, final[j].key) })
	d := newDigest()
	r.Final = make([]any, len(final))
	for i := range final {
		r.Final[i] = final[i].v
		p.Fold(d, final[i].v)
	}
	r.Digest = d.Sum()
	if p.Accept != nil {
		return p.Accept(r.Final)
	}
	return nil
}

// fillStats converts the mutable accounting into the public stats and
// computes occupancy and the overlap ratio, publishing gauges when an
// observer is attached.
func (r *Result) fillStats(o *obs.Observer, p *Pipeline, stats []*stageStats, workers [][]*Worker) {
	var sumWall, minFirst, maxLast int64
	for si := range p.Stages {
		ss := stats[si]
		wall := ss.wallNs()
		occ := 0.0
		nw := len(workers[si])
		if wall > 0 && nw > 0 {
			occ = float64(ss.busyNs.Load()) / (float64(wall) * float64(nw))
		}
		r.Stages[si] = StageStats{
			Name:      p.Stages[si].Name,
			Workers:   nw,
			In:        ss.in.Load(),
			Out:       ss.out.Load(),
			BusyNs:    ss.busyNs.Load(),
			WallNs:    wall,
			QueuePeak: int(ss.queuePeak.Load()),
			Occupancy: occ,
		}
		sumWall += wall
		if f := ss.firstNs.Load(); f > 0 && (minFirst == 0 || f < minFirst) {
			minFirst = f
		}
		if l := ss.lastNs.Load(); l > maxLast {
			maxLast = l
		}
		lbl := r.Scenario + "/" + p.Stages[si].Name
		o.Gauge("scenario.stage_occupancy", lbl).Set(occ)
		o.Gauge("scenario.queue_peak", lbl).Set(float64(ss.queuePeak.Load()))
		o.Counter("scenario.items_in", lbl).Add(uint64(ss.in.Load()))
		o.Counter("scenario.items_out", lbl).Add(uint64(ss.out.Load()))
	}
	if span := maxLast - minFirst; span > 0 && sumWall > span {
		r.Overlap = float64(sumWall-span) / float64(span)
	}
	o.Gauge("scenario.overlap_ratio", r.Scenario+"/"+r.Mode).Set(r.Overlap)
}

// annotateStageSpan writes a stage's stats onto its span so the NDJSON
// trace export carries per-stage summaries for gbench-report.
func annotateStageSpan(sp *obs.Span, ss *StageStats) {
	sp.Annotate("items_in", fmt.Sprintf("%d", ss.In))
	sp.Annotate("items_out", fmt.Sprintf("%d", ss.Out))
	sp.Annotate("busy_ms", fmt.Sprintf("%.2f", float64(ss.BusyNs)/1e6))
	sp.Annotate("wall_ms", fmt.Sprintf("%.2f", float64(ss.WallNs)/1e6))
	sp.Annotate("occupancy", fmt.Sprintf("%.3f", ss.Occupancy))
	sp.Annotate("queue_peak", fmt.Sprintf("%d", ss.QueuePeak))
	sp.Annotate("workers", fmt.Sprintf("%d", ss.Workers))
}

// RunFused executes the pipeline as a fused stream: every stage's
// worker pool runs concurrently, connected by bounded channels, so
// downstream stages start the moment the first item flows and a slow
// consumer backpressures its producer instead of letting intermediates
// pile up. Cancellation and stage faults drain the whole graph: every
// send and receive also waits on the run context, each stage closes
// its output channel when its pool exits, and the first failure's
// cause cancels everything else.
//
// On error the returned Result still carries partial-progress counters
// (source emissions, per-stage in/out); Final and Digest stay zero.
func RunFused(ctx context.Context, name string, p *Pipeline, opt Options) (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	opt = opt.withDefaults()
	res := &Result{Scenario: name, Mode: "fused", Stages: make([]StageStats, len(p.Stages))}
	o := obs.From(ctx)
	ctx, root := o.StartSpan(ctx, "scenario/"+name+"/fused")
	cctx, cancel := context.WithCancelCause(ctx)
	defer cancel(context.Canceled)

	var (
		failOnce sync.Once
		firstErr error
	)
	fail := func(err error) {
		if err == nil {
			return
		}
		failOnce.Do(func() { firstErr = err })
		cancel(err)
	}

	nst := len(p.Stages)
	chans := make([]chan item, nst+1)
	for i := range chans {
		chans[i] = make(chan item, opt.QueueCap)
	}
	workers := prefetchWorkers(p, opt)
	stats := make([]*stageStats, nst)
	for i := range stats {
		stats[i] = &stageStats{}
	}
	plan := faultinject.Armed()
	start := time.Now()

	send := func(ctx context.Context, ch chan<- item, it item, ss *stageStats) error {
		select {
		case ch <- it:
		case <-ctx.Done():
			return context.Cause(ctx)
		}
		if ss != nil {
			atomicMax(&ss.queuePeak, int64(len(ch)))
		}
		return nil
	}

	var wg sync.WaitGroup

	// Source: one goroutine replaying the scenario's input stream.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(chans[0])
		idx := 0
		emit := func(v any) error {
			it := item{key: []int32{int32(idx)}, v: v}
			idx++
			if err := send(cctx, chans[0], it, stats[0]); err != nil {
				return err
			}
			atomic.AddInt64(&res.Source, 1)
			return nil
		}
		if err := p.Source(cctx, emit); err != nil {
			fail(err)
		}
	}()

	// Stages: a supervised worker pool each, draining its input
	// channel and closing its output once the pool exits (success or
	// not), so downstream always observes end-of-stream.
	for si := 0; si < nst; si++ {
		st := &p.Stages[si]
		in, out := chans[si], chans[si+1]
		ws := workers[si]
		ss := stats[si]
		var downstream *stageStats
		if si+1 < nst {
			downstream = stats[si+1]
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(out)
			kname := pointLabel(name, st.Name)
			sctx, span := o.StartSpan(cctx, kname)
			err := resilience.Run(sctx, kname, stagePolicy(opt), func(actx context.Context) error {
				perr := parallel.ForEachCtxErr(actx, len(ws), len(ws), func(tctx context.Context, w, _ int) error {
					wk := ws[w]
					for {
						var it item
						var ok bool
						select {
						case it, ok = <-in:
							if !ok {
								return nil
							}
						case <-tctx.Done():
							return context.Cause(tctx)
						}
						ss.markActive(time.Since(start))
						ss.in.Add(1)
						if plan != nil {
							if err := plan.PointAt(tctx, kname); err != nil {
								return err
							}
						}
						sub := 0
						emit := func(v any) error {
							ot := item{key: childKey(it.key, sub), v: v}
							sub++
							if err := send(tctx, out, ot, downstream); err != nil {
								return err
							}
							ss.out.Add(1)
							return nil
						}
						t0 := time.Now()
						err := st.Fn(tctx, wk, it.v, emit)
						ss.busyNs.Add(time.Since(t0).Nanoseconds())
						ss.markActive(time.Since(start))
						if err != nil {
							return err
						}
					}
				})
				if perr != nil || st.Flush == nil || actx.Err() != nil {
					return perr
				}
				sub := 0
				parent := flushParentKey(si + 1)
				emit := func(v any) error {
					ot := item{key: childKey(parent, sub), v: v}
					sub++
					if err := send(actx, out, ot, downstream); err != nil {
						return err
					}
					ss.out.Add(1)
					return nil
				}
				t0 := time.Now()
				ferr := st.Flush(actx, ws[0], emit)
				ss.busyNs.Add(time.Since(t0).Nanoseconds())
				ss.markActive(time.Since(start))
				return ferr
			})
			if err != nil {
				fail(err)
			}
			// Span stats are filled post-hoc in fillStats; annotate
			// with the live counters so traces of failed runs still
			// carry partial progress.
			snap := StageStats{
				Name: st.Name, Workers: len(ws),
				In: ss.in.Load(), Out: ss.out.Load(),
				BusyNs: ss.busyNs.Load(), WallNs: ss.wallNs(),
				QueuePeak: int(ss.queuePeak.Load()),
			}
			if snap.WallNs > 0 && len(ws) > 0 {
				snap.Occupancy = float64(snap.BusyNs) / (float64(snap.WallNs) * float64(len(ws)))
			}
			annotateStageSpan(span, &snap)
			span.End(err)
		}()
	}

	// Sink: collect the last channel until end-of-stream or abort.
	var final []item
	wg.Add(1)
	go func() {
		defer wg.Done()
		last := chans[nst]
		for {
			select {
			case it, ok := <-last:
				if !ok {
					return
				}
				final = append(final, it)
			case <-cctx.Done():
				return
			}
		}
	}()

	wg.Wait()
	res.Elapsed = time.Since(start)
	res.fillStats(o, p, stats, workers)

	err := firstErr
	if err == nil {
		err = ctx.Err() // parent cancelled without a recorded cause
	}
	if err == nil {
		err = res.finish(p, final)
	}
	root.Annotate("items", fmt.Sprintf("%d", len(res.Final)))
	root.Annotate("overlap_ratio", fmt.Sprintf("%.2f", res.Overlap))
	root.End(err)
	if err != nil {
		return res, err
	}
	return res, nil
}

// RunStaged executes the pipeline the way the examples/ demos did:
// each stage runs to completion over fully materialized inputs before
// the next stage starts. It is the differential twin — same stage
// functions, same worker slots, same digest fold — so RunFused's
// output must match it bit for bit, and the fused-vs-staged time
// difference is exactly the value of stage overlap and
// non-materialization.
func RunStaged(ctx context.Context, name string, p *Pipeline, opt Options) (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	opt = opt.withDefaults()
	res := &Result{Scenario: name, Mode: "staged", Stages: make([]StageStats, len(p.Stages))}
	o := obs.From(ctx)
	ctx, root := o.StartSpan(ctx, "scenario/"+name+"/staged")
	workers := prefetchWorkers(p, opt)
	stats := make([]*stageStats, len(p.Stages))
	for i := range stats {
		stats[i] = &stageStats{}
	}
	plan := faultinject.Armed()
	start := time.Now()

	runStage := func(si int, items []item) ([]item, error) {
		st := &p.Stages[si]
		ws := workers[si]
		ss := stats[si]
		kname := pointLabel(name, st.Name)
		sctx, span := o.StartSpan(ctx, kname)
		outs := make([][]item, len(items))
		var flushed []item
		err := resilience.Run(sctx, kname, stagePolicy(opt), func(actx context.Context) error {
			perr := parallel.ForEachCtxErr(actx, len(items), len(ws), func(tctx context.Context, w, i int) error {
				ss.markActive(time.Since(start))
				ss.in.Add(1)
				if plan != nil {
					if err := plan.PointAt(tctx, kname); err != nil {
						return err
					}
				}
				sub := 0
				emit := func(v any) error {
					outs[i] = append(outs[i], item{key: childKey(items[i].key, sub), v: v})
					sub++
					ss.out.Add(1)
					return nil
				}
				t0 := time.Now()
				err := st.Fn(tctx, ws[w], items[i].v, emit)
				ss.busyNs.Add(time.Since(t0).Nanoseconds())
				ss.markActive(time.Since(start))
				return err
			})
			if perr != nil || st.Flush == nil || actx.Err() != nil {
				return perr
			}
			sub := 0
			parent := flushParentKey(si + 1)
			emit := func(v any) error {
				flushed = append(flushed, item{key: childKey(parent, sub), v: v})
				sub++
				ss.out.Add(1)
				return nil
			}
			t0 := time.Now()
			ferr := st.Flush(actx, ws[0], emit)
			ss.busyNs.Add(time.Since(t0).Nanoseconds())
			ss.markActive(time.Since(start))
			return ferr
		})
		// Full materialization between stages is the point of the
		// reference executor.
		var next []item
		if err == nil {
			n := len(flushed)
			for i := range outs {
				n += len(outs[i])
			}
			next = make([]item, 0, n)
			for i := range outs {
				next = append(next, outs[i]...)
			}
			next = append(next, flushed...)
		}
		snap := StageStats{
			Name: st.Name, Workers: len(ws),
			In: ss.in.Load(), Out: ss.out.Load(),
			BusyNs: ss.busyNs.Load(), WallNs: ss.wallNs(),
		}
		if snap.WallNs > 0 && len(ws) > 0 {
			snap.Occupancy = float64(snap.BusyNs) / (float64(snap.WallNs) * float64(len(ws)))
		}
		annotateStageSpan(span, &snap)
		span.End(err)
		return next, err
	}

	var items []item
	srcErr := p.Source(ctx, func(v any) error {
		if err := ctx.Err(); err != nil {
			return context.Cause(ctx)
		}
		items = append(items, item{key: []int32{int32(len(items))}, v: v})
		atomic.AddInt64(&res.Source, 1)
		return nil
	})

	err := srcErr
	if err == nil {
		for si := range p.Stages {
			items, err = runStage(si, items)
			if err != nil {
				break
			}
		}
	}
	res.Elapsed = time.Since(start)
	res.fillStats(o, p, stats, workers)
	if err == nil {
		err = res.finish(p, items)
	}
	root.Annotate("items", fmt.Sprintf("%d", len(res.Final)))
	root.End(err)
	if err != nil {
		return res, err
	}
	return res, nil
}
