package scenario

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/resilience"
)

// synthPipeline is a three-stage pass-through pipeline with a tunable
// per-item cost in the middle stage — small enough to hammer, slow
// enough that cancellation and faults land mid-stream.
func synthPipeline(items int, midCost time.Duration) *Pipeline {
	passthrough := func(ctx context.Context, w *Worker, v any, emit func(any) error) error {
		return emit(v.(int) + 1)
	}
	return &Pipeline{
		Source: func(ctx context.Context, emit func(any) error) error {
			for i := 0; i < items; i++ {
				if err := emit(i); err != nil {
					return err
				}
			}
			return nil
		},
		Stages: []Stage{
			{Name: "front", Workers: 2, Fn: passthrough},
			{Name: "mid", Workers: 2, Fn: func(ctx context.Context, w *Worker, v any, emit func(any) error) error {
				if midCost > 0 {
					time.Sleep(midCost)
				}
				return emit(v.(int) * 3)
			}},
			{Name: "back", Workers: 2, Fn: passthrough},
		},
		Fold: func(d *Digest, v any) { d.Int(v.(int)) },
	}
}

// waitNoLeak polls until the goroutine count returns to (near) the
// recorded baseline — the check that a drained pipeline left nothing
// parked on a channel.
func waitNoLeak(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d running, baseline %d\n%s", n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFusedCancellationDrains cancels a fused run mid-stream and
// asserts the pipeline drains: the run returns promptly with the
// cancellation as its error, partial-progress counters are sane, and
// no stage goroutine stays parked on a bounded channel.
func TestFusedCancellationDrains(t *testing.T) {
	base := runtime.NumGoroutine()
	pipe := synthPipeline(500, 500*time.Microsecond)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	done := make(chan struct{})
	var res *Result
	var err error
	go func() {
		defer close(done)
		res, err = RunFused(ctx, "synth", pipe, Options{QueueCap: 2})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled pipeline did not drain (deadlock)")
	}
	if err == nil {
		t.Fatal("cancelled run reported success")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled in chain, got %v", err)
	}
	if res == nil {
		t.Fatal("cancelled run returned no partial result")
	}
	if res.Final != nil || res.Digest != 0 {
		t.Fatalf("cancelled run leaked outputs: %d items, digest %#x", len(res.Final), res.Digest)
	}
	// Partial progress: something flowed, nothing overflowed.
	if res.Source <= 0 || res.Source >= 500 {
		t.Fatalf("source emitted %d of 500 before cancel; wanted a mid-stream cut", res.Source)
	}
	for i, ss := range res.Stages {
		if ss.In < 0 || ss.In > 500 || ss.Out > ss.In {
			t.Fatalf("stage %d counters out of range: %+v", i, ss)
		}
	}
	waitNoLeak(t, base)
}

// TestFusedInjectedFaultDrains trips a deterministic fault inside the
// middle stage with tiny queues, so upstream workers are blocked on
// sends when the stage dies — the drain path under test.
func TestFusedInjectedFaultDrains(t *testing.T) {
	base := runtime.NumGoroutine()
	plan, perr := faultinject.Parse("error:synth/mid:1.0", 7)
	if perr != nil {
		t.Fatal(perr)
	}
	faultinject.Arm(plan)
	defer faultinject.Disarm()

	pipe := synthPipeline(256, 0)
	res, err := RunFused(context.Background(), "synth", pipe, Options{QueueCap: 1})
	if err == nil {
		t.Fatal("injected stage fault reported success")
	}
	var inj *faultinject.InjectedError
	if !errors.As(err, &inj) {
		t.Fatalf("want InjectedError in chain, got %v", err)
	}
	if inj.Site != "synth/mid" {
		t.Fatalf("fault fired at %q", inj.Site)
	}
	if res.Stages[1].In == 0 {
		t.Fatal("mid stage recorded no arrivals before the fault")
	}
	waitNoLeak(t, base)

	stats := plan.Stats()
	if len(stats) != 1 || stats[0].Tripped == 0 {
		t.Fatalf("fault accounting missing: %+v", stats)
	}
}

// TestFusedInjectedPanicDrains injects a panic instead of an error:
// the scheduler's panic capture plus resilience's KernelError wrapping
// must surface it as a typed, stack-carrying error while the pipeline
// still drains cleanly.
func TestFusedInjectedPanicDrains(t *testing.T) {
	base := runtime.NumGoroutine()
	plan, perr := faultinject.Parse("panic:synth/mid:1.0", 9)
	if perr != nil {
		t.Fatal(perr)
	}
	faultinject.Arm(plan)
	defer faultinject.Disarm()

	pipe := synthPipeline(128, 0)
	_, err := RunFused(context.Background(), "synth", pipe, Options{QueueCap: 2})
	if err == nil {
		t.Fatal("injected stage panic reported success")
	}
	var ke *resilience.KernelError
	if !errors.As(err, &ke) {
		t.Fatalf("want KernelError in chain, got %T: %v", err, err)
	}
	if !ke.Panicked {
		t.Fatalf("KernelError not marked panicked: %+v", ke)
	}
	waitNoLeak(t, base)
}

// TestStagedFaultPartialProgress pins the staged executor's shutdown
// accounting: a fault in the middle stage leaves the completed front
// stage's counters intact and never starts the back stage.
func TestStagedFaultPartialProgress(t *testing.T) {
	plan, perr := faultinject.Parse("error:synth/mid:1.0", 11)
	if perr != nil {
		t.Fatal(perr)
	}
	faultinject.Arm(plan)
	defer faultinject.Disarm()

	pipe := synthPipeline(64, 0)
	res, err := RunStaged(context.Background(), "synth", pipe, Options{})
	if err == nil {
		t.Fatal("injected stage fault reported success")
	}
	var inj *faultinject.InjectedError
	if !errors.As(err, &inj) {
		t.Fatalf("want InjectedError in chain, got %v", err)
	}
	if res.Stages[0].In != 64 || res.Stages[0].Out != 64 {
		t.Fatalf("front stage should have completed: %+v", res.Stages[0])
	}
	if res.Stages[1].In == 0 {
		t.Fatal("mid stage recorded no arrivals")
	}
	if res.Stages[2].In != 0 || res.Stages[2].Out != 0 {
		t.Fatalf("back stage ran after the fault: %+v", res.Stages[2])
	}
}

// TestShutdownHammer interleaves cancellations and probabilistic
// faults across many fused runs — under -race this is the scheduler
// soak for the drain paths. Every run must terminate, and the process
// must end at its goroutine baseline.
func TestShutdownHammer(t *testing.T) {
	if testing.Short() {
		t.Skip("hammer skipped in -short")
	}
	base := runtime.NumGoroutine()
	for i := 0; i < 40; i++ {
		if i%2 == 0 {
			plan, err := faultinject.Parse("error:synth/mid:0.02,panic:synth/back:0.01", int64(i))
			if err != nil {
				t.Fatal(err)
			}
			faultinject.Arm(plan)
		} else {
			faultinject.Disarm()
		}
		pipe := synthPipeline(200, 50*time.Microsecond)
		ctx, cancel := context.WithCancel(context.Background())
		if i%3 == 0 {
			delay := time.Duration(i%7) * time.Millisecond
			go func() {
				time.Sleep(delay)
				cancel()
			}()
		}
		res, err := RunFused(ctx, "synth", pipe, Options{QueueCap: 1 + i%4})
		if err == nil && int64(len(res.Final)) != 200 {
			t.Fatalf("iter %d: clean run lost items: %d/200", i, len(res.Final))
		}
		cancel()
	}
	faultinject.Disarm()
	waitNoLeak(t, base)
}
