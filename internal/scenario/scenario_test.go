package scenario

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/obs"
	"repro/internal/scratch"
)

// testParams returns a small-scale override of a registered scenario's
// parameters so the differential suite stays fast.
func testParams(t *testing.T, name string) Params {
	t.Helper()
	def := Get(name)
	if def == nil {
		t.Fatalf("scenario %q not registered", name)
	}
	p := def.Params.Clone()
	switch name {
	case "variantcalling":
		p["ref_len"] = 4_000
		p["coverage"] = 12
		p["min_recall"] = 0.2 // tiny genome: recall is noisy, identity is the contract
	case "methylation":
		p["seq_len"] = 500
		p["molecules"] = 4
	case "metagenomics":
		p["total_reads"] = 60
	}
	return p
}

// Pipelines are pure given their params, so tests share one build per
// scenario (the metagenomics FM-index build is the expensive part).
var builtPipes = map[string]*Pipeline{}

func buildCached(t *testing.T, name string) *Pipeline {
	t.Helper()
	if p, ok := builtPipes[name]; ok {
		return p
	}
	p := buildFor(t, name, testParams(t, name))
	builtPipes[name] = p
	return p
}

func buildFor(t *testing.T, name string, p Params) *Pipeline {
	t.Helper()
	pipe, err := Get(name).Build(p)
	if err != nil {
		t.Fatalf("build %s: %v", name, err)
	}
	return pipe
}

// TestRegistryDeclarationsMatchConstruction pins that each definition's
// declarative stage list agrees with what Build actually constructs:
// the first entry names the source, the rest must equal the pipeline's
// stage names in order.
func TestRegistryDeclarationsMatchConstruction(t *testing.T) {
	names := Names()
	if len(names) < 3 {
		t.Fatalf("want >=3 registered scenarios, have %v", names)
	}
	for _, name := range names {
		def := Get(name)
		pipe := buildCached(t, name)
		got := pipe.StageNames()
		want := def.Stages[1:]
		if len(got) != len(want) {
			t.Fatalf("%s: declared stages %v, built %v", name, def.Stages, got)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: declared stages %v, built %v", name, def.Stages, got)
			}
		}
	}
}

// TestFusedDigestMatchesStaged is the differential-twin contract: for
// every registered scenario the fused streaming executor must produce
// a digest bit-identical to the staged reference, across repeated runs
// and a shared warm pool.
func TestFusedDigestMatchesStaged(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			pipe := buildCached(t, name)
			pool := scratch.NewPool()
			opt := Options{Pool: pool}
			ctx := context.Background()

			staged, err := RunStaged(ctx, name, pipe, opt)
			if err != nil {
				t.Fatalf("staged: %v", err)
			}
			if staged.Digest == 0 || len(staged.Final) == 0 {
				t.Fatalf("staged produced no output: digest %#x, %d items", staged.Digest, len(staged.Final))
			}
			for rep := 0; rep < 2; rep++ {
				fused, err := RunFused(ctx, name, pipe, opt)
				if err != nil {
					t.Fatalf("fused rep %d: %v", rep, err)
				}
				if fused.Digest != staged.Digest {
					t.Fatalf("rep %d: fused digest %#x != staged %#x (%d vs %d items)",
						rep, fused.Digest, staged.Digest, len(fused.Final), len(staged.Final))
				}
			}
			if staged.Source == 0 {
				t.Fatal("staged recorded no source emissions")
			}
		})
	}
}

// TestDigestStableAcrossWorkerWidths pins that worker count is pure
// throughput: 1-worker and wide runs of both executors agree.
func TestDigestStableAcrossWorkerWidths(t *testing.T) {
	for _, name := range Names() {
		pipe := buildCached(t, name)
		ctx := context.Background()
		narrow, err := RunFused(ctx, name, pipe, Options{Workers: 1, QueueCap: 1})
		if err != nil {
			t.Fatalf("%s narrow: %v", name, err)
		}
		wide, err := RunFused(ctx, name, pipe, Options{Workers: 4, QueueCap: 32})
		if err != nil {
			t.Fatalf("%s wide: %v", name, err)
		}
		if narrow.Digest != wide.Digest {
			t.Fatalf("%s: digest depends on worker width: %#x vs %#x", name, narrow.Digest, wide.Digest)
		}
	}
}

// TestStageStatsAccounting pins the progress accounting on a clean
// run: stage in/out counts are conserved through the chain and the
// occupancy/overlap numbers stay in range.
func TestStageStatsAccounting(t *testing.T) {
	name := "variantcalling"
	pipe := buildCached(t, name)
	o := obs.NewObserver()
	ctx := obs.With(context.Background(), o)
	res, err := RunFused(ctx, name, pipe, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Source == 0 {
		t.Fatal("no source emissions recorded")
	}
	if res.Stages[0].In != res.Source {
		t.Fatalf("stage 0 received %d of %d source items", res.Stages[0].In, res.Source)
	}
	for i := 1; i < len(res.Stages); i++ {
		if res.Stages[i].In != res.Stages[i-1].Out {
			t.Fatalf("stage %q received %d items but %q emitted %d",
				res.Stages[i].Name, res.Stages[i].In, res.Stages[i-1].Name, res.Stages[i-1].Out)
		}
	}
	if int64(len(res.Final)) != res.Stages[len(res.Stages)-1].Out {
		t.Fatalf("final %d items, last stage emitted %d", len(res.Final), res.Stages[len(res.Stages)-1].Out)
	}
	for _, ss := range res.Stages {
		if ss.Occupancy < 0 || ss.Occupancy > 1.001 {
			t.Fatalf("stage %q occupancy %.3f out of range", ss.Name, ss.Occupancy)
		}
	}
	if res.Overlap < 0 || res.Overlap > float64(len(res.Stages)) {
		t.Fatalf("overlap ratio %.2f out of range", res.Overlap)
	}
	// Spans were exported for every stage plus the run root.
	recs := o.Tracer.Spans()
	want := map[string]bool{}
	for _, st := range pipe.StageNames() {
		want["scenario/"+name+"/"+st] = false
	}
	want["scenario/"+name+"/fused"] = false
	for _, r := range recs {
		if _, ok := want[r.Name]; ok {
			want[r.Name] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Fatalf("no span recorded for %s (got %d spans)", n, len(recs))
		}
	}
}

// TestAcceptFailureSurfaces pins that a failing acceptance check turns
// into an executor error.
func TestAcceptFailureSurfaces(t *testing.T) {
	p := testParams(t, "variantcalling")
	p["min_recall"] = 1.1 // impossible floor
	pipe := buildFor(t, "variantcalling", p)
	if _, err := RunFused(context.Background(), "variantcalling", pipe, Options{}); err == nil {
		t.Fatal("impossible acceptance floor did not fail the run")
	}
}

// TestRegionBinnerMatchesTwoPassBinning pins the streaming binner
// against the examples' original two-pass loop.
func TestRegionBinnerMatchesTwoPassBinning(t *testing.T) {
	p := testParams(t, "variantcalling")
	pipe := buildFor(t, "variantcalling", p)
	// Count reads per region through the pipeline's own bin stage by
	// running just the source + binner via RunStaged over a trimmed
	// pipeline.
	trimmed := &Pipeline{
		Source: pipe.Source,
		Stages: pipe.Stages[:1],
		Fold: func(d *Digest, v any) {
			rr := v.(*RegionReads)
			d.Int(rr.Index)
			d.Int(len(rr.Reads))
		},
	}
	res, err := RunStaged(context.Background(), "binner", trimmed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	perRegion := map[int]int{}
	total := 0
	lastIdx := -1
	for _, v := range res.Final {
		rr := v.(*RegionReads)
		if rr.Index <= lastIdx {
			t.Fatalf("regions out of order: %d after %d", rr.Index, lastIdx)
		}
		lastIdx = rr.Index
		perRegion[rr.Index] += len(rr.Reads)
		total += len(rr.Reads)
	}
	if int64(total) != res.Source {
		t.Fatalf("binner dropped reads: %d in, %d out", res.Source, total)
	}
	for idx, n := range perRegion {
		if n <= 0 {
			t.Fatalf("region %d emitted empty", idx)
		}
	}
}

// TestParamsHelpers covers the Params accessors.
func TestParamsHelpers(t *testing.T) {
	p := Params{"a": 2.6, "b": -1}
	if p.Int("a", 0) != 3 || p.Int("missing", 7) != 7 {
		t.Fatal("Params.Int")
	}
	if p.Get("b", 0) != -1 || p.Get("missing", 1.5) != 1.5 {
		t.Fatal("Params.Get")
	}
	c := p.Clone()
	c["a"] = 9
	if p["a"] != 2.6 {
		t.Fatal("Clone aliases the original")
	}
}

// TestValidateRejectsMalformedPipelines covers pipeline validation.
func TestValidateRejectsMalformedPipelines(t *testing.T) {
	src := func(ctx context.Context, emit func(any) error) error { return nil }
	fn := func(ctx context.Context, w *Worker, v any, emit func(any) error) error { return nil }
	fold := func(d *Digest, v any) {}
	cases := []*Pipeline{
		nil,
		{Stages: []Stage{{Name: "a", Fn: fn}}, Fold: fold},             // no source
		{Source: src, Fold: fold},                                      // no stages
		{Source: src, Stages: []Stage{{Name: "a", Fn: fn}}},            // no fold
		{Source: src, Stages: []Stage{{Fn: fn}}, Fold: fold},           // unnamed stage
		{Source: src, Stages: []Stage{{Name: "a"}}, Fold: fold},        // no Fn
		{Source: src, Fold: fold, Stages: []Stage{{Name: "a", Fn: fn}, {Name: "a", Fn: fn}}}, // dup name
		{Source: src, Fold: fold, Stages: []Stage{
			{Name: "wide", Fn: fn, Workers: 4},
			{Name: "stateful", Fn: fn, Flush: func(ctx context.Context, w *Worker, emit func(any) error) error { return nil }},
		}}, // stateful stage below a wide one
	}
	for i, p := range cases {
		if _, err := RunFused(context.Background(), fmt.Sprintf("bad%d", i), p, Options{}); err == nil {
			t.Fatalf("case %d: malformed pipeline accepted", i)
		}
	}
}
