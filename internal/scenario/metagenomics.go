package scenario

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/fmindex"
	"repro/internal/genome"
	"repro/internal/readsim"
)

// Centrifuge-style metagenomic classification as a registered
// scenario: long reads from a known species mixture stream through
// SMEM seeding against a pan-genome FM-index and a locate-and-vote
// classifier; acceptance checks classification accuracy and abundance
// error against the planted mixture. Promoted from
// examples/metagenomics.

// ClassifyRead is one read heading into the classifier, with its
// planted truth label riding along for the acceptance check.
type ClassifyRead struct {
	Index int
	Seq   genome.Seq
	Truth int
}

// SeededRead is the smem stage's output: the read plus its top seed
// matches, longest first.
type SeededRead struct {
	Read  ClassifyRead
	Seeds []fmindex.SMEM
}

// Classification is one read's final species assignment (-1 when
// unclassified).
type Classification struct {
	Index   int
	Truth   int
	Species int
	Votes   int
}

func init() {
	Register(&Def{
		Name:  "metagenomics",
		Title: "Metagenomic read classification",
		Stages: []string{
			"readsim", "smem", "classify",
		},
		Params: Params{
			"total_reads":      600,
			"mean_len":         1_200,
			"error_rate":       0.08,
			"seed":             31,
			"read_seed":        32,
			"smem_workers":     2,
			"classify_workers": 2,
			"min_accuracy":     0.80,
			"max_l1":           0.30,
		},
		Build: buildMetagenomics,
	})
}

func buildMetagenomics(p Params) (*Pipeline, error) {
	var (
		totalReads = p.Int("total_reads", 600)
		meanLen    = p.Int("mean_len", 1_200)
		errRate    = p.Get("error_rate", 0.08)
		seed       = int64(p.Int("seed", 31))
		readSeed   = int64(p.Int("read_seed", 32))
		minAcc     = p.Get("min_accuracy", 0.80)
		maxL1      = p.Get("max_l1", 0.30)
	)
	names := []string{"e.coli-like", "s.aureus-like", "virus-like", "fungus-like"}
	sizes := []int{60_000, 45_000, 8_000, 90_000}
	trueMix := []float64{0.45, 0.30, 0.15, 0.10}

	// Pan-genome and FM-index are built once per pipeline; both
	// executors classify against the same snapshot.
	type span struct{ start, end int }
	rng := rand.New(rand.NewSource(seed))
	var pan genome.Seq
	catalog := make([]span, len(names))
	refs := make([]genome.Seq, len(names))
	for i, n := range names {
		ref := genome.NewReference(rng, n, sizes[i], 0.05)
		refs[i] = ref.Seq
		catalog[i] = span{start: len(pan), end: len(pan) + sizes[i]}
		pan = append(pan, ref.Seq...)
	}
	index := fmindex.Build(pan)

	pipe := &Pipeline{
		Source: func(ctx context.Context, emit func(any) error) error {
			sim := readsim.New(readSeed)
			cfg := readsim.DefaultLong()
			cfg.MeanLength = meanLen
			cfg.ErrorRate = errRate
			var reads []ClassifyRead
			for i, frac := range trueMix {
				n := int(frac * float64(totalReads))
				for _, r := range sim.LongReads(refs[i], -1, n, cfg, names[i]+"-") {
					reads = append(reads, ClassifyRead{Seq: r.Seq, Truth: i})
				}
			}
			shuf := rand.New(rand.NewSource(seed + 7))
			shuf.Shuffle(len(reads), func(i, j int) { reads[i], reads[j] = reads[j], reads[i] })
			for i := range reads {
				reads[i].Index = i
				if err := emit(reads[i]); err != nil {
					return err
				}
			}
			return nil
		},
		Stages: []Stage{
			{
				Name:    "smem",
				Workers: p.Int("smem_workers", 2),
				Fn: func(ctx context.Context, w *Worker, v any, emit func(any) error) error {
					r := v.(ClassifyRead)
					smems := index.FindSMEMs(r.Seq, 25, 1, nil)
					// Longest seeds first; stable with a position
					// tiebreak so seed selection is deterministic.
					sort.SliceStable(smems, func(i, j int) bool {
						if smems[i].Len() != smems[j].Len() {
							return smems[i].Len() > smems[j].Len()
						}
						return smems[i].QBeg < smems[j].QBeg
					})
					if len(smems) > 3 {
						smems = smems[:3]
					}
					return emit(&SeededRead{Read: r, Seeds: smems})
				},
			},
			{
				Name:    "classify",
				Workers: p.Int("classify_workers", 2),
				Fn: func(ctx context.Context, w *Worker, v any, emit func(any) error) error {
					sr := v.(*SeededRead)
					votes := make([]int, len(names))
					for _, m := range sr.Seeds {
						for _, pos := range index.LocateAll(sr.Read.Seq[m.QBeg:m.QEnd], 8) {
							if pos >= len(pan) {
								pos = 2*len(pan) - pos - m.Len() // reverse-strand hit
							}
							for si, sp := range catalog {
								if pos >= sp.start && pos < sp.end {
									votes[si] += m.Len()
								}
							}
						}
					}
					c := Classification{Index: sr.Read.Index, Truth: sr.Read.Truth, Species: -1}
					for si, v := range votes {
						if v > c.Votes {
							c.Species, c.Votes = si, v
						}
					}
					return emit(c)
				},
			},
		},
		Fold: func(d *Digest, v any) {
			c := v.(Classification)
			d.Int(c.Index)
			d.Int(c.Truth)
			d.Int(c.Species)
			d.Int(c.Votes)
		},
		Accept: func(final []any) error {
			correct, classified := 0, 0
			counts := make([]int, len(names))
			for _, v := range final {
				c := v.(Classification)
				if c.Species < 0 {
					continue
				}
				classified++
				counts[c.Species]++
				if c.Species == c.Truth {
					correct++
				}
			}
			if classified == 0 {
				return fmt.Errorf("metagenomics: no reads classified")
			}
			acc := float64(correct) / float64(classified)
			if acc < minAcc {
				return fmt.Errorf("metagenomics: accuracy %.2f below floor %.2f", acc, minAcc)
			}
			var l1 float64
			for i := range names {
				l1 += abs(float64(counts[i])/float64(classified) - trueMix[i])
			}
			if l1 > maxL1 {
				return fmt.Errorf("metagenomics: abundance L1 error %.2f above ceiling %.2f", l1, maxL1)
			}
			return nil
		},
		Summary: func(final []any) string {
			correct, classified := 0, 0
			for _, v := range final {
				c := v.(Classification)
				if c.Species < 0 {
					continue
				}
				classified++
				if c.Species == c.Truth {
					correct++
				}
			}
			return fmt.Sprintf("%d reads: %d classified, %d correct (%d unclassified)",
				len(final), classified, correct, len(final)-classified)
		},
	}
	return pipe, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
