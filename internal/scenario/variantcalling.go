package scenario

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/dbg"
	"repro/internal/genome"
	"repro/internal/phmm"
	"repro/internal/readsim"
)

// The GATK-style short-read pipeline as a registered scenario:
// simulated reads stream through region binning, De-Bruijn assembly,
// PairHMM scoring and genotype calling. Promoted from
// examples/variantcalling, which is now a thin wrapper over this
// definition.

// AssembledRegion is the dbg stage's output: a region whose reads
// assembled into at least two candidate haplotypes.
type AssembledRegion struct {
	Region *RegionReads
	Haps   []genome.Seq
}

// ScoredRegion is the phmm stage's output: per-read best-haplotype
// assignments for an assembled region.
type ScoredRegion struct {
	Region  *RegionReads
	Haps    []genome.Seq
	BestHap []int
}

func init() {
	Register(&Def{
		Name:  "variantcalling",
		Title: "Short-read variant calling",
		Stages: []string{
			"readsim", "bin", "dbg", "phmm", "genotype",
		},
		Params: Params{
			"ref_len":     60_000,
			"region_size": 400,
			"coverage":    30,
			"read_len":    100,
			"snv_rate":    0.0015,
			"indel_rate":  0.0003,
			"seed":        11,
			"read_seed":   12,
			"dbg_workers": 2,
			"hmm_workers": 2,
			"min_recall":  0.40,
		},
		Build: buildVariantCalling,
	})
}

func buildVariantCalling(p Params) (*Pipeline, error) {
	var (
		refLen     = p.Int("ref_len", 60_000)
		regionSize = p.Int("region_size", 400)
		coverage   = p.Get("coverage", 30)
		readLen    = p.Int("read_len", 100)
		snvRate    = p.Get("snv_rate", 0.0015)
		indelRate  = p.Get("indel_rate", 0.0003)
		seed       = int64(p.Int("seed", 11))
		readSeed   = int64(p.Int("read_seed", 12))
		minRecall  = p.Get("min_recall", 0.40)
	)
	rng := rand.New(rand.NewSource(seed))
	ref := genome.NewReference(rng, "chr22", refLen, 0)
	donor := genome.PlantVariants(rng, ref, snvRate, indelRate)
	asmCfg := dbg.DefaultConfig()

	pipe := &Pipeline{
		// readsim: replayable read stream, position-sorted so the
		// binner can emit regions as soon as the stream passes them.
		Source: func(ctx context.Context, emit func(any) error) error {
			sim := readsim.New(readSeed)
			cfg := readsim.DefaultShort()
			cfg.Length = readLen
			reads := sim.CoverageReads(donor, coverage, cfg, "rd")
			SortReadsByPos(reads)
			for _, r := range reads {
				if err := emit(r); err != nil {
					return err
				}
			}
			return nil
		},
		Stages: []Stage{
			{
				Name:     "bin",
				Workers:  1, // stateful: holds the open region window
				NewLocal: func() any { return NewRegionBinner(ref.Seq, regionSize) },
				Fn: func(ctx context.Context, w *Worker, v any, emit func(any) error) error {
					for _, rr := range w.Local.(*RegionBinner).Add(v.(readsim.Read)) {
						if err := emit(rr); err != nil {
							return err
						}
					}
					return nil
				},
				Flush: func(ctx context.Context, w *Worker, emit func(any) error) error {
					for _, rr := range w.Local.(*RegionBinner).Flush() {
						if err := emit(rr); err != nil {
							return err
						}
					}
					return nil
				},
			},
			{
				Name:     "dbg",
				Workers:  p.Int("dbg_workers", 2),
				NewState: func() any { return dbg.NewAssembler() },
				Fn: func(ctx context.Context, w *Worker, v any, emit func(any) error) error {
					rr := v.(*RegionReads)
					asm := w.State.(*dbg.Assembler).AssembleRegion(
						&dbg.Region{Ref: rr.Ref, Reads: rr.Reads}, asmCfg)
					if len(asm.Haplotypes) < 2 {
						return nil // no variant evidence assembled
					}
					return emit(&AssembledRegion{Region: rr, Haps: asm.Haplotypes})
				},
			},
			{
				Name:     "phmm",
				Workers:  p.Int("hmm_workers", 2),
				NewState: func() any { return phmm.NewScratch() },
				Fn: func(ctx context.Context, w *Worker, v any, emit func(any) error) error {
					ar := v.(*AssembledRegion)
					res := phmm.EvaluateRegionInto(&phmm.Region{
						Reads: ar.Region.Reads,
						Quals: ar.Region.Quals,
						Haps:  ar.Haps,
					}, w.State.(*phmm.Scratch))
					// res.BestHap aliases the worker's scratch; the next
					// region on this worker overwrites it, so copy what
					// flows downstream.
					best := append([]int(nil), res.BestHap...)
					return emit(&ScoredRegion{Region: ar.Region, Haps: ar.Haps, BestHap: best})
				},
			},
			{
				Name:    "genotype",
				Workers: 1,
				Fn: func(ctx context.Context, w *Worker, v any, emit func(any) error) error {
					sr := v.(*ScoredRegion)
					return emit(CallGenotype(sr.Region.Index, sr.Region.Start, sr.Region.Ref, sr.Haps, sr.BestHap))
				},
			},
		},
		Fold: func(d *Digest, v any) {
			g := v.(Genotype)
			d.Int(g.Region)
			d.Int(g.Best)
			d.Int(g.Second)
			d.Int(g.RefHap)
			d.Bool(g.AltCalled)
			d.Bool(g.Het)
			d.Int(len(g.Support))
			for _, s := range g.Support {
				d.Int(s)
			}
		},
		Accept: func(final []any) error {
			called := map[int]bool{}
			for _, v := range final {
				if g := v.(Genotype); g.AltCalled {
					called[g.Region] = true
				}
			}
			recovered := 0
			for _, vr := range donor.Variants {
				if called[AssignRegion(vr.Pos, refLen, regionSize)] {
					recovered++
				}
			}
			recall := float64(recovered) / float64(len(donor.Variants))
			if recall < minRecall {
				return fmt.Errorf("variantcalling: recall %.2f below floor %.2f (%d/%d variants in called regions)",
					recall, minRecall, recovered, len(donor.Variants))
			}
			return nil
		},
		Summary: func(final []any) string {
			var alt, het int
			called := map[int]bool{}
			for _, v := range final {
				g := v.(Genotype)
				if g.AltCalled {
					alt++
					called[g.Region] = true
					if g.Het {
						het++
					}
				}
			}
			recovered := 0
			for _, vr := range donor.Variants {
				if called[AssignRegion(vr.Pos, refLen, regionSize)] {
					recovered++
				}
			}
			return fmt.Sprintf("%d scored regions, %d alt calls (%d het-like); recall %d/%d planted variants (%.0f%%)",
				len(final), alt, het, recovered, len(donor.Variants),
				100*float64(recovered)/float64(len(donor.Variants)))
		},
	}
	return pipe, nil
}
