package scenario

import (
	"sort"

	"repro/internal/genome"
	"repro/internal/readsim"
)

// Shared stage helpers. The region-assignment / read-binning /
// genotype-support logic used to be copy-pasted across the examples;
// it lives here once, used by the registered scenarios and re-exported
// to anything else that bins reads.

// RegionReads is one active region's evidence: the reference slice and
// the forward-oriented reads (with quals) whose sampling position
// falls inside it. Regions with no reads are never emitted.
type RegionReads struct {
	Index      int // region ordinal along the reference
	Start, End int // half-open span on the reference
	Ref        genome.Seq
	Reads      []genome.Seq
	Quals      [][]byte
}

// AssignRegion maps a read's start position to its region index,
// clamping the reference tail into the last region — the binning rule
// every variant-calling example used.
func AssignRegion(pos, refLen, regionSize int) int {
	n := refLen / regionSize
	if n < 1 {
		n = 1
	}
	rg := pos / regionSize
	if rg >= n {
		rg = n - 1
	}
	if rg < 0 {
		rg = 0
	}
	return rg
}

// OrientRead returns the read sequence on the forward strand.
func OrientRead(r readsim.Read) genome.Seq {
	if r.Reverse {
		return r.Seq.ReverseComplement()
	}
	return r.Seq
}

// SortReadsByPos orders reads by sampling position (stable, so
// same-position reads keep simulation order) — the precondition for
// streaming region binning.
func SortReadsByPos(reads []readsim.Read) {
	sort.SliceStable(reads, func(i, j int) bool { return reads[i].RefPos < reads[j].RefPos })
}

// RegionBinner turns a position-sorted read stream into completed
// RegionReads: because input positions never decrease, every region
// before the current read's region is finished and can be emitted
// immediately — the streaming form of the examples' two-pass binning
// loop. Single-threaded by construction (it is a Flush stage).
type RegionBinner struct {
	Ref        genome.Seq
	RegionSize int

	cur  int // region index the open window belongs to
	open *RegionReads
}

// NewRegionBinner returns a binner over ref with the given region
// width.
func NewRegionBinner(ref genome.Seq, regionSize int) *RegionBinner {
	return &RegionBinner{Ref: ref, RegionSize: regionSize, cur: -1}
}

func (b *RegionBinner) region(idx int) *RegionReads {
	start := idx * b.RegionSize
	end := start + b.RegionSize
	if idx == len(b.Ref)/b.RegionSize-1 || end > len(b.Ref) {
		end = len(b.Ref) // last region absorbs the tail
	}
	return &RegionReads{Index: idx, Start: start, End: end, Ref: b.Ref[start:end]}
}

// Add accepts the next read (positions must be non-decreasing) and
// returns any regions completed by its arrival, in order.
func (b *RegionBinner) Add(r readsim.Read) []*RegionReads {
	rg := AssignRegion(r.RefPos, len(b.Ref), b.RegionSize)
	var done []*RegionReads
	if b.open != nil && rg != b.cur {
		done = append(done, b.open)
		b.open = nil
	}
	if b.open == nil {
		b.cur = rg
		b.open = b.region(rg)
	}
	b.open.Reads = append(b.open.Reads, OrientRead(r))
	b.open.Quals = append(b.open.Quals, r.Qual)
	return done
}

// Flush emits the final open region once the read stream ends.
func (b *RegionBinner) Flush() []*RegionReads {
	if b.open == nil {
		return nil
	}
	done := []*RegionReads{b.open}
	b.open = nil
	return done
}

// Genotype is one region's call: which haplotypes the reads support
// and whether that implies a variant — the support-counting logic the
// variantcalling example inlined.
type Genotype struct {
	Region    int
	Start     int
	Best      int // most-supported haplotype
	Second    int // runner-up, -1 when absent
	RefHap    int // haplotype equal to the reference slice, -1 when absent
	Support   []int
	Reads     int
	AltCalled bool
	Het       bool
}

// CallGenotype tallies per-read best-haplotype support and calls the
// region's genotype: an alt call when the best-supported haplotype is
// not the reference, or when a well-supported runner-up differs from
// it (the heterozygous case).
func CallGenotype(region, start int, ref genome.Seq, haps []genome.Seq, bestHap []int) Genotype {
	g := Genotype{Region: region, Start: start, Best: -1, Second: -1, RefHap: -1,
		Support: make([]int, len(haps)), Reads: len(bestHap)}
	for _, h := range bestHap {
		g.Support[h]++
	}
	for h, s := range g.Support {
		if g.Best < 0 || s > g.Support[g.Best] {
			g.Second = g.Best
			g.Best = h
		} else if g.Second < 0 || s > g.Support[g.Second] {
			g.Second = h
		}
	}
	for h, hap := range haps {
		if hap.Equal(ref) {
			g.RefHap = h
		}
	}
	g.AltCalled = g.Best != g.RefHap ||
		(g.Second >= 0 && g.Second != g.RefHap && g.Support[g.Second] >= g.Reads/4)
	if g.AltCalled {
		g.Het = g.Best != g.RefHap && (g.Second == g.RefHap || g.Second < 0)
	}
	return g
}
