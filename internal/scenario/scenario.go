// Package scenario promotes the examples/ pipelines into a declarative
// registry of end-to-end benchmark scenarios. A scenario is a small
// data definition — its kernel DAG as an ordered stage list, its
// simulator parameters, its acceptance check — plus a Build function
// that instantiates the stage closures over those parameters. New
// workloads are added as definitions, not as new driver code.
//
// Two executors run every pipeline (executor.go):
//
//   - RunStaged, the reference twin: run-to-completion per stage, every
//     intermediate fully materialized — the shape the examples/ demos
//     had, and the baseline end-to-end measurement.
//   - RunFused, the streaming executor: bounded channels between
//     stages, per-stage worker pools on warm scratch.Pool arenas,
//     backpressure instead of materialization, so stage N+1 starts
//     consuming while stage N is still producing.
//
// Both fold the final outputs (sorted into deterministic source order)
// through the same FNV-1a digest, so fused-vs-staged bit-identity is a
// differential test and a CI smoke check, and the fused speedup is a
// benchmark pair (`scenario/<name>` in gbench-bench), not a claim.
package scenario

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/scratch"
)

// Params holds a scenario's named simulator parameters. Definitions
// are data: everything a Build closure varies comes through here, so a
// new workload variant is a new Params map, not new code.
type Params map[string]float64

// Get returns the named parameter or def when absent.
func (p Params) Get(name string, def float64) float64 {
	if v, ok := p[name]; ok {
		return v
	}
	return def
}

// Int returns the named parameter rounded to int, or def when absent.
func (p Params) Int(name string, def int) int {
	if v, ok := p[name]; ok {
		return int(math.Round(v))
	}
	return def
}

// Clone returns a copy of p that can be overridden without mutating
// the registered definition.
func (p Params) Clone() Params {
	out := make(Params, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// Worker is one stage worker's execution state: a warm arena drawn
// from the run's scratch.Pool slot plus optional typed per-worker
// state built by Stage.NewState (a phmm.Scratch, a dbg.Assembler).
// Both executors assign the same pool slots to the same stage/worker
// pair, so warm state carries across fused and staged runs alike.
type Worker struct {
	Arena *scratch.Arena
	// State is the pooled warm state (Stage.NewState), carried across
	// runs that share a scratch.Pool.
	State any
	// Local is fresh per run (Stage.NewLocal) — for stages whose state
	// accumulates within one stream and must not leak into the next
	// run (the region binner's open window).
	Local any
}

// Stage is one kernel stage of a scenario DAG. Fn receives one input
// value and emits zero or more outputs: emitting nothing filters the
// item (a region with too few haplotypes), emitting several expands it
// (a read batch into regions). Fn must be deterministic in its input
// and worker state — the executors prove this by digest.
type Stage struct {
	Name string
	// Workers is the stage's worker-pool width in the fused executor
	// and its dispatch width in the staged one. 0 means 1. Stages with
	// a Flush hook are forced to 1 (they carry order-dependent state).
	Workers int
	// NewState builds optional per-worker state, cached in the run's
	// scratch.Pool slot so repeated runs reuse warm buffers.
	NewState func() any
	// NewLocal builds optional per-worker state created fresh for
	// every run (never pooled).
	NewLocal func() any
	Fn       func(ctx context.Context, w *Worker, v any, emit func(any) error) error
	// Flush runs once after the stage's input is exhausted, for
	// streaming stages that hold a window open (the region binner).
	// Requires Workers <= 1 on this and every upstream stage, so the
	// arrival order its state depends on is deterministic.
	Flush func(ctx context.Context, w *Worker, emit func(any) error) error
}

// Pipeline is an instantiated scenario: a source plus the stage chain,
// with the digest fold and acceptance check over the final outputs.
type Pipeline struct {
	// Source emits the scenario's input items in deterministic order.
	// It must be re-invocable: each executor run replays it.
	Source func(ctx context.Context, emit func(any) error) error
	Stages []Stage
	// Fold writes one final output's stable encoding into the digest.
	Fold func(d *Digest, v any)
	// Accept validates the ordered final outputs (recall floors,
	// accuracy floors); nil accepts everything.
	Accept func(final []any) error
	// Summary renders a short human-facing line for example binaries.
	Summary func(final []any) string
}

func (p *Pipeline) validate() error {
	if p == nil {
		return fmt.Errorf("scenario: nil pipeline")
	}
	if p.Source == nil {
		return fmt.Errorf("scenario: pipeline has no source")
	}
	if len(p.Stages) == 0 {
		return fmt.Errorf("scenario: pipeline has no stages")
	}
	if p.Fold == nil {
		return fmt.Errorf("scenario: pipeline has no digest fold")
	}
	seen := map[string]bool{}
	for i := range p.Stages {
		st := &p.Stages[i]
		if st.Name == "" {
			return fmt.Errorf("scenario: stage %d has no name", i)
		}
		if seen[st.Name] {
			return fmt.Errorf("scenario: duplicate stage name %q", st.Name)
		}
		seen[st.Name] = true
		if st.Fn == nil {
			return fmt.Errorf("scenario: stage %q has no Fn", st.Name)
		}
		if st.Flush != nil {
			for j := 0; j <= i; j++ {
				if p.Stages[j].Workers > 1 {
					return fmt.Errorf("scenario: stage %q has a Flush hook but stage %q runs %d workers; stateful stages need single-worker upstream order",
						st.Name, p.Stages[j].Name, p.Stages[j].Workers)
				}
			}
		}
	}
	return nil
}

// StageNames returns the pipeline's stage names in DAG order.
func (p *Pipeline) StageNames() []string {
	out := make([]string, len(p.Stages))
	for i := range p.Stages {
		out[i] = p.Stages[i].Name
	}
	return out
}

// Def is one registered scenario: the declarative part (name, kernel
// DAG, simulator parameters) plus the Build function that closes the
// stage bodies over a parameter set.
type Def struct {
	Name  string
	Title string
	// Stages names the kernel DAG in order, source first. Build's
	// pipeline must match ("source" + stage names); the registry test
	// pins that the declaration and the construction agree.
	Stages []string
	// Params is the benchmark-scale parameter set. Callers clone and
	// override for demo or test scale.
	Params Params
	Build  func(p Params) (*Pipeline, error)
}

var (
	regMu sync.Mutex
	reg   = map[string]*Def{}
)

// Register adds a scenario definition; duplicate or malformed
// definitions panic at init time.
func Register(d *Def) {
	if d == nil || d.Name == "" || d.Build == nil || len(d.Stages) < 2 {
		panic("scenario: malformed definition")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := reg[d.Name]; dup {
		panic("scenario: duplicate registration of " + d.Name)
	}
	reg[d.Name] = d
}

// Get returns the named definition or nil.
func Get(name string) *Def {
	regMu.Lock()
	defer regMu.Unlock()
	return reg[name]
}

// Names lists registered scenarios in sorted order.
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]string, 0, len(reg))
	for n := range reg {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Digest folds final outputs through FNV-1a 64; scenario folds write
// every semantically meaningful field through the typed helpers so the
// encoding is unambiguous and platform-stable.
type Digest struct{ h uint64 }

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func newDigest() *Digest { return &Digest{h: fnvOffset} }

// Bytes folds raw bytes.
func (d *Digest) Bytes(p []byte) {
	h := d.h
	for _, b := range p {
		h = (h ^ uint64(b)) * fnvPrime
	}
	d.h = h
}

// U64 folds a fixed-width integer (little-endian byte order).
func (d *Digest) U64(v uint64) {
	h := d.h
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * fnvPrime
		v >>= 8
	}
	d.h = h
}

// I64 folds a signed integer.
func (d *Digest) I64(v int64) { d.U64(uint64(v)) }

// Int folds an int.
func (d *Digest) Int(v int) { d.U64(uint64(int64(v))) }

// F64 folds a float64 bit pattern — bit-identity, not approximate
// equality, is the contract.
func (d *Digest) F64(v float64) { d.U64(math.Float64bits(v)) }

// F32 folds a float32 bit pattern.
func (d *Digest) F32(v float32) { d.U64(uint64(math.Float32bits(v))) }

// Bool folds a bool.
func (d *Digest) Bool(v bool) {
	if v {
		d.U64(1)
	} else {
		d.U64(0)
	}
}

// Str folds a length-prefixed string.
func (d *Digest) Str(s string) {
	d.Int(len(s))
	d.Bytes([]byte(s))
}

// Sum returns the folded digest.
func (d *Digest) Sum() uint64 { return d.h }
