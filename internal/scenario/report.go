package scenario

import (
	"fmt"
	"strings"
)

// Table renders the run's per-stage accounting as a fixed-width text
// table — the shared rendering the example binaries and CLIs print.
func (r *Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %7s %8s %8s %9s %9s %5s %5s\n",
		"stage", "workers", "in", "out", "busy(ms)", "wall(ms)", "occ", "qpeak")
	for _, ss := range r.Stages {
		fmt.Fprintf(&b, "%-10s %7d %8d %8d %9.1f %9.1f %5.2f %5d\n",
			ss.Name, ss.Workers, ss.In, ss.Out,
			float64(ss.BusyNs)/1e6, float64(ss.WallNs)/1e6, ss.Occupancy, ss.QueuePeak)
	}
	fmt.Fprintf(&b, "%s: %d outputs in %.1f ms, stage-overlap ratio %.2f, digest %016x\n",
		r.Mode, len(r.Final), float64(r.Elapsed.Nanoseconds())/1e6, r.Overlap, r.Digest)
	return b.String()
}
