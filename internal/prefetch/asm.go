//go:build amd64 || arm64

package prefetch

import "unsafe"

// HaveAsm reports whether Ptr dispatches to a real prefetch
// instruction on this architecture (informational, used by tests and
// docs — the phmm haveRowAsm idiom).
const HaveAsm = true

// prefetchT0 is implemented in prefetch_amd64.s (PREFETCHT0) and
// prefetch_arm64.s (PRFM PLDL1KEEP).
//
//go:noescape
func prefetchT0(addr unsafe.Pointer)

// Ptr hints the cache hierarchy to pull the line containing p toward
// the core. It is safe on any address the caller could legally read.
func Ptr(p unsafe.Pointer) { prefetchT0(p) }
