// Package prefetch exposes the CPU's software data-prefetch
// instruction behind a portable no-op-able API. The memory-bound
// kernels (fmindex SMEM search, kmercnt hash probing) know their next
// irregular addresses well before they consume the data; issuing a
// prefetch one batch rotation ahead lets the memory system overlap
// misses that a serial dependent walk would pay one at a time — the
// software-prefetch batching BWA-MEM2 applies to the same FM-index
// kernel (Vasimuddin et al., IPDPS 2019).
//
// Ptr compiles to PREFETCHT0 on amd64 and PRFM PLDL1KEEP on arm64
// (see prefetch_amd64.s / prefetch_arm64.s, following the phmm
// row_asm.go dispatch pattern); elsewhere it is a no-op, so callers
// can prefetch unconditionally. A prefetch is a hint: it never
// faults, never changes architectural state, and costs one call.
package prefetch

import (
	"math/rand"
	"sync"
	"unsafe"

	"repro/internal/tuning"
)

// BestWidth measures the host's profitable software-prefetch window:
// it times a W-way interleaved dependent pointer chase — each lane
// walking its own stretch of a random cycle through a table larger
// than the L2, the next hop prefetched one rotation before it is
// loaded — for every candidate width and returns the fastest. This is
// the structural question every lock-step batching loop asks ("how
// many in-flight states before the next rotation's prefetches have
// covered the miss latency?"), so the fmindex batch scheduler and the
// kmercnt probe waves both resolve their widths through it. The probe
// table is built once per process (a few milliseconds); resolved
// tunables are cached on disk by internal/tuning, so steady-state
// gbench processes skip the probe entirely.
func BestWidth(candidates []int) int {
	if len(candidates) == 0 {
		return 1
	}
	table := probeTable()
	best, bestNs := candidates[0], 0.0
	for _, w := range candidates {
		if w < 1 {
			w = 1
		}
		ns := chaseNs(table, w)
		if bestNs == 0 || ns < bestNs {
			best, bestNs = w, ns
		}
	}
	return best
}

// probeTableSize is the chase-table length: 1<<20 uint32 hops = 4 MiB,
// larger than any common L2, small enough to build in milliseconds.
const probeTableSize = 1 << 20

var (
	probeOnce  sync.Once
	probeCycle []uint32
)

// probeTable builds one shared random single cycle: table[i] is the
// hop after i and following it visits every slot (a Sattolo shuffle),
// so a chase never short-circuits into a small cache-resident loop.
func probeTable() []uint32 {
	probeOnce.Do(func() {
		rng := rand.New(rand.NewSource(0x9e3779b9))
		perm := make([]uint32, probeTableSize)
		for i := range perm {
			perm[i] = uint32(i)
		}
		for i := len(perm) - 1; i > 0; i-- {
			j := rng.Intn(i) // Sattolo: j < i keeps the permutation one cycle
			perm[i], perm[j] = perm[j], perm[i]
		}
		next := make([]uint32, probeTableSize)
		for i := 0; i < len(perm); i++ {
			next[perm[i]] = perm[(i+1)%len(perm)]
		}
		probeCycle = next
	})
	return probeCycle
}

// chaseSteps is the per-measurement hop count per lane; sized so one
// timed batch lands in the tens of microseconds.
const chaseSteps = 2048

// maxChaseWidth bounds the lane array so the chase state itself stays
// in registers/L1 and never becomes the thing being measured.
const maxChaseWidth = 64

// chaseNs returns the fastest observed per-hop cost of a width-way
// lock-step chase with one-rotation-ahead prefetch. Lanes start evenly
// spaced on the shared cycle so they never converge within a probe.
func chaseNs(table []uint32, width int) float64 {
	if width > maxChaseWidth {
		width = maxChaseWidth
	}
	var start [maxChaseWidth]uint32
	stride := uint32(len(table) / (width + 1))
	lanes := start[:width]
	reset := func() {
		for l := range lanes {
			lanes[l] = uint32(l) * stride
		}
	}
	reset()
	ns := tuning.BestNs(3, 1, func() {
		for step := 0; step < chaseSteps; step++ {
			for l := range lanes {
				nxt := table[lanes[l]]
				Ptr(unsafe.Pointer(&table[nxt]))
				lanes[l] = nxt
			}
		}
	})
	return ns / float64(chaseSteps*width)
}
