package prefetch

import (
	"testing"
	"unsafe"
)

// Ptr must be callable on any readable address — slice interiors,
// struct fields, the first and last byte of an allocation — without
// observable effect.
func TestPtrIsHarmless(t *testing.T) {
	buf := make([]byte, 4096)
	for i := range buf {
		buf[i] = byte(i)
	}
	Ptr(unsafe.Pointer(&buf[0]))
	Ptr(unsafe.Pointer(&buf[len(buf)-1]))
	var s struct{ a, b uint64 }
	Ptr(unsafe.Pointer(&s.b))
	for i, b := range buf {
		if b != byte(i) {
			t.Fatalf("buf[%d] changed to %d after prefetch", i, b)
		}
	}
}

// On amd64/arm64 the stub must be wired; the pure-Go fallback only
// exists for other architectures.
func TestHaveAsmMatchesArch(t *testing.T) {
	t.Logf("HaveAsm=%v", HaveAsm)
}

// BestWidth must return one of its candidates (clamped sane), resolve
// deterministically from an empty candidate list, and not blow the
// probe budget.
func TestBestWidthPicksACandidate(t *testing.T) {
	if got := BestWidth(nil); got != 1 {
		t.Fatalf("BestWidth(nil) = %d, want 1", got)
	}
	cands := []int{4, 8, 16}
	got := BestWidth(cands)
	found := false
	for _, c := range cands {
		if got == c {
			found = true
		}
	}
	if !found {
		t.Fatalf("BestWidth(%v) = %d, not a candidate", cands, got)
	}
}

// The probe table must be a single cycle: following next-hops from
// slot 0 has to visit every slot exactly once before returning.
func TestProbeTableIsSingleCycle(t *testing.T) {
	table := probeTable()
	seen := make([]bool, len(table))
	cur := uint32(0)
	for i := 0; i < len(table); i++ {
		if seen[cur] {
			t.Fatalf("revisited slot %d after %d hops", cur, i)
		}
		seen[cur] = true
		cur = table[cur]
	}
	if cur != 0 {
		t.Fatalf("cycle did not close: ended at %d", cur)
	}
}
