//go:build !amd64 && !arm64

package prefetch

import "unsafe"

// HaveAsm reports whether Ptr dispatches to a real prefetch
// instruction on this architecture.
const HaveAsm = false

// Ptr is a no-op on architectures without a prefetch stub: batching
// still reorders the access stream (useful under the cache simulator),
// the hardware just gets no early hint.
func Ptr(p unsafe.Pointer) { _ = p }
