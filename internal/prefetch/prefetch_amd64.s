// PREFETCHT0 stub: hint the line containing addr into all cache
// levels. See asm.go for the contract — a pure hint, no architectural
// effect, never faults (the instruction squashes translation faults).

#include "textflag.h"

TEXT ·prefetchT0(SB), NOSPLIT, $0-8
	MOVQ addr+0(FP), AX
	PREFETCHT0 (AX)
	RET
