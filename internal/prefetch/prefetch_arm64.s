// PRFM PLDL1KEEP stub: hint the line containing addr into L1 with
// normal (keep) replacement. See asm.go for the contract — a pure
// hint, no architectural effect, never faults.

#include "textflag.h"

TEXT ·prefetchT0(SB), NOSPLIT, $0-8
	MOVD addr+0(FP), R0
	PRFM (R0), PLDL1KEEP
	RET
