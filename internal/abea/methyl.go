package abea

import (
	"math/rand"

	"repro/internal/genome"
	"repro/internal/signalsim"
)

// Methylation calling: the task ABEA exists for in Nanopolish. A
// methylated cytosine (5mC) in a CpG context shifts the pore current
// of every k-mer containing it; calling compares the event-alignment
// likelihood of a read region under the unmethylated versus the
// methylated pore model and reports the log-likelihood ratio.

// MethylatedModel derives a 5mC pore model from base: every k-mer
// containing a CG dinucleotide has its level shifted by a
// deterministic, context-dependent amount in the 1.5-3.5 pA range
// (the magnitude real 5mC shifts show on R9 pores).
func MethylatedModel(base *signalsim.PoreModel) *signalsim.PoreModel {
	m := &signalsim.PoreModel{
		Mean: append([]float32(nil), base.Mean...),
		Stdv: append([]float32(nil), base.Stdv...),
	}
	for code := range m.Mean {
		if !kmerHasCpG(uint64(code)) {
			continue
		}
		// Context-dependent but deterministic shift.
		h := uint64(code) * 0x9e3779b97f4a7c15
		shift := 1.5 + 2.0*float32(h>>40)/float32(1<<24)
		if h&1 == 0 {
			shift = -shift
		}
		m.Mean[code] += shift
	}
	return m
}

// kmerHasCpG reports whether the K-mer code contains a CG dinucleotide.
func kmerHasCpG(code uint64) bool {
	prev := genome.Base(code & 3) // last base
	for i := 1; i < signalsim.K; i++ {
		code >>= 2
		cur := genome.Base(code & 3)
		// cur precedes prev in sequence order.
		if cur == genome.C && prev == genome.G {
			return true
		}
		prev = cur
	}
	return false
}

// MethylCall is one site call.
type MethylCall struct {
	Site        int     // CpG position in the sequence
	LogLikRatio float32 // log P(events|methylated) - log P(events|unmethylated)
	Methylated  bool    // LogLikRatio above threshold
	CellUpdates uint64
}

// CallMethylation scores every CpG site of seq: the read is registered
// to the sequence once with a traced event alignment (as Nanopolish
// does), the events covering a window around each site are extracted
// from the trace, and the window is re-scored under both pore models;
// the log-likelihood ratio decides the call. threshold is the LLR
// above which a site is called methylated (Nanopolish uses ~2.0).
func CallMethylation(unmeth, meth *signalsim.PoreModel, seq genome.Seq, events []signalsim.Event, cfg Config, threshold float32) []MethylCall {
	var calls []MethylCall
	if len(seq) < signalsim.K+1 {
		return nil
	}
	nk := len(seq) - signalsim.K + 1
	trace := AlignTrace(unmeth, seq, events, cfg)
	const window = 40
	for pos := 0; pos+1 < len(seq); pos++ {
		if seq[pos] != genome.C || seq[pos+1] != genome.G {
			continue
		}
		lo := pos - window/2
		if lo < 0 {
			lo = 0
		}
		hi := pos + window/2
		if hi > len(seq) {
			hi = len(seq)
		}
		if hi-lo < signalsim.K+4 {
			continue
		}
		kLo := lo
		kHi := hi - signalsim.K + 1
		if kHi > nk {
			kHi = nk
		}
		var evs []signalsim.Event
		if !trace.OutOfBand && len(trace.Path) > 0 {
			reg := trace.EventsForKmer(kLo, kHi)
			if len(reg) >= 4 {
				evs = events[reg[0].Event : reg[len(reg)-1].Event+1]
			}
		}
		if evs == nil {
			// Trace unavailable: fall back to uniform event density.
			density := float64(len(events)) / float64(nk)
			evLo := int(float64(kLo) * density)
			evHi := int(float64(kHi) * density)
			if evLo < 0 {
				evLo = 0
			}
			if evHi > len(events) {
				evHi = len(events)
			}
			if evHi-evLo < 4 {
				continue
			}
			evs = events[evLo:evHi]
		}
		sub := seq[lo:hi]
		u := Align(unmeth, sub, evs, cfg)
		mm := Align(meth, sub, evs, cfg)
		llr := mm.Score - u.Score
		calls = append(calls, MethylCall{
			Site:        pos,
			LogLikRatio: llr,
			Methylated:  llr > threshold,
			CellUpdates: u.CellUpdates + mm.CellUpdates + trace.CellUpdates/uint64(max(1, nk/window)),
		})
	}
	return calls
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// SimulateMethylatedRead simulates events for seq where CpG sites are
// methylated (drawn from the methylated model), for testing and the
// polishing example.
func SimulateMethylatedRead(rng *rand.Rand, meth *signalsim.PoreModel, seq genome.Seq, cfg signalsim.Config) []signalsim.Event {
	return signalsim.Simulate(rng, meth, seq, cfg)
}
