package abea

import (
	"repro/internal/signalsim"
	"repro/internal/simt"
)

// GPU execution model for abea, reproducing the paper's Table IV/V
// measurements: one thread block per read, the band parallelized across
// lanes, three band rows kept in shared memory (which exhausts shared
// memory and caps occupancy at ~31%), a __syncthreads() barrier between
// bands, and scattered global loads of the pore-model levels (hash-
// spread k-mer codes destroy coalescing, hence the ~25% global load
// efficiency).

// GPULaunch is the kernel's per-block resource footprint: 128 threads
// (4 warps over a 100-wide band), three float band rows plus event and
// sequence staging in shared memory, register-heavy DP state.
func GPULaunch(cfg Config) simt.Launch {
	W := cfg.BandWidth
	if W < 4 {
		W = 4
	}
	// Three band rows + trace flags + event/k-mer staging, in bytes.
	// ~18 KB per 128-thread block caps an SM at 5 blocks (20 of 64
	// warps), reproducing the paper's ~31% occupancy.
	shared := 3*W*4 + W + 17*1024
	return simt.Launch{
		ThreadsPerBlock:    128,
		SharedMemPerBlock:  shared,
		RegistersPerThread: 64,
	}
}

// RunGPU executes the banded alignment of each read as a SIMT lane
// program, accumulating warp-level metrics. The DP scores themselves
// come from the CPU implementation; the lane program replays the
// kernel's control flow and memory access pattern, which is what the
// GPU counters measure.
func RunGPU(model *signalsim.PoreModel, reads []signalsim.SignalRead, cfg Config, dev simt.Device) (*simt.Metrics, simt.Launch) {
	W := cfg.BandWidth
	if W < 4 {
		W = 4
	}
	launch := GPULaunch(cfg)
	m := &simt.Metrics{}
	warpsPerBand := (W + simt.WarpSize - 1) / simt.WarpSize
	for _, read := range reads {
		nk := len(read.Seq) - signalsim.K + 1
		ne := len(read.Events)
		if nk <= 0 || ne == 0 {
			continue
		}
		nBands := ne + nk + 1
		// Precompute band positions tracking the main alignment
		// diagonal (the GPU metrics depend on geometry, not scores):
		// move down while the band's event progress lags the diagonal.
		eAt := -1 + W/2
		kAt := -1 - W/2
		for band := 1; band < nBands; band++ {
			ideal := -1 + W/2 + band*ne/(ne+nk)
			if eAt < ideal {
				eAt++
			} else {
				kAt++
			}
			for wrp := 0; wrp < warpsPerBand; wrp++ {
				lanes := simt.WarpSize
				if (wrp+1)*simt.WarpSize > W {
					lanes = W - wrp*simt.WarpSize
				}
				w := simt.NewPartialWarp(m, dev, lanes)
				base := wrp * simt.WarpSize
				valid := func(lane int) bool {
					o := base + lane
					e := eAt - o
					k := kAt + o
					return e >= 0 && k >= 0 && e < ne && k < nk
				}
				// Pore-model level load: index = hash-spread k-mer code,
				// i.e. effectively random addresses in the 4^K-entry
				// table — uncoalesced.
				w.GlobalLoad(func(lane int) uint64 {
					o := base + lane
					k := kAt + o
					if k < 0 || k >= nk {
						k = 0
					}
					code := kmerCodeAt(read.Seq, k)
					return code * 8
				}, 8)
				// Event mean load: events are 16-byte structs walked in
				// reverse along the band, so each lane's 4-byte read
				// sits in its own half-sector — strided.
				w.GlobalLoad(func(lane int) uint64 {
					o := base + lane
					e := eAt - o
					if e < 0 || e >= ne {
						e = 0
					}
					return 1<<33 + uint64(e)*16
				}, 4)
				// Band rows come from shared memory.
				w.SharedLoad()
				w.SharedLoad()
				w.SharedLoad()
				// The DP arithmetic: ~30 FP/address instructions per
				// cell (f5c's inner loop computes the Gaussian
				// log-density inline), predicated on cell validity — no
				// divergent branch, matching 100% branch efficiency.
				w.ExecPredicated(30, valid)
				// Score+trace store: a 4-byte score and 2-byte trace
				// flag interleave to a 6-byte stride, wasting part of
				// each store sector (paper: 68.5% store efficiency).
				w.GlobalStore(func(lane int) uint64 {
					o := base + lane
					return 1<<34 + uint64(band)*uint64(W)*6 + uint64(o)*6
				}, 4)
			}
			// Barrier between bands: adjacent bands are dependent.
			wSync := simt.NewWarp(m, dev)
			wSync.Sync(20)
		}
	}
	return m, launch
}

// kmerCodeAt packs the K-mer starting at position k (helper mirroring
// genome.KmerCode without the import cycle concerns).
func kmerCodeAt(seq []byte, k int) uint64 {
	var code uint64
	for j := 0; j < signalsim.K; j++ {
		code = code<<2 | uint64(seq[k+j]&3)
	}
	// Hash-spread as the model table is accessed by code directly; the
	// codes of adjacent k-mers differ completely after packing.
	code ^= code >> 13
	code *= 0x9e3779b97f4a7c15
	return code & (1<<(2*signalsim.K) - 1)
}
