package abea

import (
	"math/rand"
	"testing"

	"repro/internal/genome"
	"repro/internal/signalsim"
	"repro/internal/simt"
)

func cleanConfig() signalsim.Config {
	return signalsim.Config{OversegmentationRate: 0, SkipRate: 0, NoiseScale: 0, MeanDwell: 5}
}

func TestBandedMatchesFullOnCleanSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	model := signalsim.NewPoreModel()
	for trial := 0; trial < 10; trial++ {
		seq := genome.Random(rng, 25+rng.Intn(15))
		events := signalsim.Simulate(rng, model, seq, cleanConfig())
		full := FullAlign(model, seq, events)
		banded := Align(model, seq, events, DefaultConfig())
		if banded.OutOfBand {
			t.Fatalf("trial %d: clean alignment fell out of band", trial)
		}
		diff := float64(full - banded.Score)
		if diff < -1e-3 || diff > 1e-3 {
			t.Fatalf("trial %d: banded %v != full %v", trial, banded.Score, full)
		}
	}
}

func TestBandedCloseToFullWithNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	model := signalsim.NewPoreModel()
	seq := genome.Random(rng, 40)
	events := signalsim.Simulate(rng, model, seq, signalsim.DefaultConfig())
	full := FullAlign(model, seq, events)
	banded := Align(model, seq, events, DefaultConfig())
	if banded.OutOfBand {
		t.Fatal("noisy alignment fell out of band")
	}
	// The band restricts paths, so banded <= full (plus float slack).
	if banded.Score > full+1e-3 {
		t.Errorf("banded score %v exceeds full %v", banded.Score, full)
	}
	if full-banded.Score > 10 {
		t.Errorf("banded score %v far below full %v", banded.Score, full)
	}
}

func TestTrueSequenceScoresAboveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	model := signalsim.NewPoreModel()
	seq := genome.Random(rng, 100)
	events := signalsim.Simulate(rng, model, seq, signalsim.DefaultConfig())
	right := Align(model, seq, events, DefaultConfig())
	wrong := Align(model, genome.Random(rng, 100), events, DefaultConfig())
	if right.Score <= wrong.Score {
		t.Errorf("true sequence score %v not above random %v", right.Score, wrong.Score)
	}
}

func TestCellUpdatesBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	model := signalsim.NewPoreModel()
	seq := genome.Random(rng, 300)
	events := signalsim.Simulate(rng, model, seq, signalsim.DefaultConfig())
	cfg := DefaultConfig()
	r := Align(model, seq, events, cfg)
	nBands := len(events) + (len(seq) - signalsim.K + 1) + 1
	capCells := uint64(nBands) * uint64(cfg.BandWidth)
	if r.CellUpdates == 0 || r.CellUpdates > capCells {
		t.Errorf("cell updates %d outside (0, %d]", r.CellUpdates, capCells)
	}
	// Banded complexity must be far below full-matrix complexity for
	// long inputs.
	fullCells := uint64(len(events)) * uint64(len(seq)-signalsim.K+1)
	if r.CellUpdates >= fullCells {
		t.Errorf("banded computed %d cells, full matrix is %d", r.CellUpdates, fullCells)
	}
}

func TestDegenerateInputs(t *testing.T) {
	model := signalsim.NewPoreModel()
	if r := Align(model, genome.MustFromString("ACG"), nil, DefaultConfig()); r.Score != negInf {
		t.Error("short sequence should yield -inf")
	}
	if s := FullAlign(model, genome.MustFromString("ACG"), nil); s != negInf {
		t.Error("FullAlign short sequence should yield -inf")
	}
}

func TestRunKernelDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	model := signalsim.NewPoreModel()
	src := genome.Random(rng, 20000)
	reads := signalsim.SimulateReads(rng, model, src, 8, 200, 600, signalsim.DefaultConfig())
	r1 := RunKernel(model, reads, DefaultConfig(), 1)
	r4 := RunKernel(model, reads, DefaultConfig(), 4)
	if r1.CellUpdates != r4.CellUpdates || r1.OutOfBand != r4.OutOfBand {
		t.Errorf("threading changed results: %+v vs %+v", r1, r4)
	}
	if r1.TaskStats.Count() != 8 {
		t.Errorf("task count %d", r1.TaskStats.Count())
	}
	if r1.Counters.Ops[1] == 0 { // FloatOp
		t.Error("abea should count FP ops")
	}
}

func TestGPUMetricsShape(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	model := signalsim.NewPoreModel()
	src := genome.Random(rng, 5000)
	reads := signalsim.SimulateReads(rng, model, src, 3, 150, 300, signalsim.DefaultConfig())
	dev := simt.TitanXp()
	m, launch := RunGPU(model, reads, DefaultConfig(), dev)

	if be := m.BranchEfficiency(); be < 0.999 {
		t.Errorf("branch efficiency %.3f, want ~1 (branch-free kernel)", be)
	}
	we := m.WarpEfficiency()
	if we < 0.5 || we > 0.95 {
		t.Errorf("warp efficiency %.3f outside the paper's ~0.75 region", we)
	}
	npe := m.NonPredicatedWarpEfficiency()
	if npe >= we {
		t.Errorf("non-predicated efficiency %.3f should be below warp efficiency %.3f", npe, we)
	}
	occ := dev.Occupancy(launch)
	if occ > 0.5 || occ <= 0 {
		t.Errorf("occupancy %.3f, want low (shared-memory limited, paper ~0.31)", occ)
	}
	gle := m.GlobalLoadEfficiency()
	if gle > 0.6 {
		t.Errorf("global load efficiency %.3f, want low (scattered model loads, paper ~0.26)", gle)
	}
	gse := m.GlobalStoreEfficiency()
	if gse <= gle {
		t.Errorf("store efficiency %.3f should exceed load efficiency %.3f", gse, gle)
	}
	util := m.SMUtilization(dev, occ)
	if util <= 0.3 || util >= 0.99 {
		t.Errorf("SM utilization %.3f outside plausible abea band", util)
	}
}

func TestCalibrationRestoresAlignmentQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	model := signalsim.NewPoreModel()
	seq := genome.Random(rng, 300)
	cfg := signalsim.Config{OversegmentationRate: 0.3, SkipRate: 0.05, NoiseScale: 0.5, MeanDwell: 5}
	clean := signalsim.Simulate(rng, model, seq, cfg)
	cleanScore := Align(model, seq, clean, DefaultConfig()).Score

	// Pore drift wrecks the raw alignment score.
	drift := signalsim.Drift{Scale: 1.08, Shift: -6}
	drifted := drift.Apply(append([]signalsim.Event(nil), clean...))
	driftedScore := Align(model, seq, drifted, DefaultConfig()).Score
	if driftedScore >= cleanScore-10 {
		t.Fatalf("drift did not hurt: clean %.0f drifted %.0f", cleanScore, driftedScore)
	}

	// Method-of-moments calibration restores most of it.
	restored := signalsim.CalibrateEvents(model, drifted)
	restoredScore := Align(model, seq, restored, DefaultConfig()).Score
	if restoredScore <= driftedScore {
		t.Fatalf("calibration did not help: drifted %.0f restored %.0f", driftedScore, restoredScore)
	}
	if gap := cleanScore - restoredScore; gap > float32(0.3*float64(cleanScore-driftedScore)) {
		t.Errorf("calibration recovered too little: clean %.0f drifted %.0f restored %.0f",
			cleanScore, driftedScore, restoredScore)
	}
}
