package abea

import (
	"math/rand"
	"testing"

	"repro/internal/genome"
	"repro/internal/signalsim"
)

func TestKmerHasCpG(t *testing.T) {
	cases := []struct {
		s    string
		want bool
	}{
		{"ACGTAT", true},
		{"AAAAAA", false},
		{"CGCGCG", true},
		{"GCTAGC", false}, // GC is not CG
		{"TTTTCG", true},  // CG at the end
		{"CGTTTT", true},  // CG at the start
	}
	for _, c := range cases {
		code := genome.KmerCode(genome.MustFromString(c.s), 0, signalsim.K)
		if got := kmerHasCpG(code); got != c.want {
			t.Errorf("kmerHasCpG(%s) = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestMethylatedModelShiftsOnlyCpGKmers(t *testing.T) {
	base := signalsim.NewPoreModel()
	meth := MethylatedModel(base)
	shifted, same := 0, 0
	for code := 0; code < base.NumKmers(); code += 13 {
		diff := meth.Mean[code] - base.Mean[code]
		if kmerHasCpG(uint64(code)) {
			if diff == 0 {
				t.Fatalf("CpG k-mer %d not shifted", code)
			}
			if d := float64(diff); d < -3.6 || d > 3.6 || (d > -1.4 && d < 1.4) {
				t.Fatalf("shift %v outside ±[1.5,3.5]", diff)
			}
			shifted++
		} else {
			if diff != 0 {
				t.Fatalf("non-CpG k-mer %d shifted by %v", code, diff)
			}
			same++
		}
	}
	if shifted == 0 || same == 0 {
		t.Fatal("degenerate sampling")
	}
}

// cpgRichSeq builds a sequence with several CpG sites at known spots.
func cpgRichSeq(rng *rand.Rand, n int) genome.Seq {
	s := genome.Random(rng, n)
	for i := 20; i+1 < n-20; i += 50 {
		s[i] = genome.C
		s[i+1] = genome.G
	}
	return s
}

func TestCallMethylationDiscriminates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base := signalsim.NewPoreModel()
	meth := MethylatedModel(base)
	seq := cpgRichSeq(rng, 400)
	simCfg := signalsim.DefaultConfig()
	simCfg.NoiseScale = 0.5

	evMeth := SimulateMethylatedRead(rng, meth, seq, simCfg)
	evUnmeth := signalsim.Simulate(rng, base, seq, simCfg)

	cfg := DefaultConfig()
	callsM := CallMethylation(base, meth, seq, evMeth, cfg, 2)
	callsU := CallMethylation(base, meth, seq, evUnmeth, cfg, 2)
	if len(callsM) == 0 || len(callsU) == 0 {
		t.Fatalf("no CpG calls made (%d, %d)", len(callsM), len(callsU))
	}
	var meanM, meanU float64
	for _, c := range callsM {
		meanM += float64(c.LogLikRatio)
	}
	for _, c := range callsU {
		meanU += float64(c.LogLikRatio)
	}
	meanM /= float64(len(callsM))
	meanU /= float64(len(callsU))
	if meanM <= meanU {
		t.Errorf("methylated LLR %.2f not above unmethylated %.2f", meanM, meanU)
	}
	if meanM <= 0 {
		t.Errorf("methylated reads should have positive mean LLR, got %.2f", meanM)
	}
	if meanU >= 0 {
		t.Errorf("unmethylated reads should have negative mean LLR, got %.2f", meanU)
	}
	// Site-level accuracy: most methylated-read sites called methylated.
	correct := 0
	for _, c := range callsM {
		if c.Methylated {
			correct++
		}
	}
	if frac := float64(correct) / float64(len(callsM)); frac < 0.6 {
		t.Errorf("only %.0f%% of methylated sites called", 100*frac)
	}
}

func TestCallMethylationShortSeq(t *testing.T) {
	base := signalsim.NewPoreModel()
	meth := MethylatedModel(base)
	if calls := CallMethylation(base, meth, genome.MustFromString("ACG"), nil, DefaultConfig(), 2); calls != nil {
		t.Error("short sequence should yield no calls")
	}
}
