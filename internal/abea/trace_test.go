package abea

import (
	"math/rand"
	"testing"

	"repro/internal/genome"
	"repro/internal/signalsim"
)

func TestAlignTraceScoreMatchesAlign(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	model := signalsim.NewPoreModel()
	for trial := 0; trial < 10; trial++ {
		seq := genome.Random(rng, 60+rng.Intn(60))
		events := signalsim.Simulate(rng, model, seq, signalsim.DefaultConfig())
		plain := Align(model, seq, events, DefaultConfig())
		traced := AlignTrace(model, seq, events, DefaultConfig())
		if plain.Score != traced.Score || plain.OutOfBand != traced.OutOfBand {
			t.Fatalf("trial %d: score %v/%v oob %v/%v", trial,
				plain.Score, traced.Score, plain.OutOfBand, traced.OutOfBand)
		}
	}
}

func TestAlignTracePathValid(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	model := signalsim.NewPoreModel()
	seq := genome.Random(rng, 100)
	events := signalsim.Simulate(rng, model, seq, signalsim.DefaultConfig())
	r := AlignTrace(model, seq, events, DefaultConfig())
	if r.OutOfBand {
		t.Fatal("out of band")
	}
	if len(r.Path) == 0 {
		t.Fatal("empty path")
	}
	nk := len(seq) - signalsim.K + 1
	for i, p := range r.Path {
		if p.Event < 0 || p.Event >= len(events) || p.Kmer < 0 || p.Kmer >= nk {
			t.Fatalf("path entry %d out of range: %+v", i, p)
		}
		if i > 0 {
			prev := r.Path[i-1]
			// Events strictly increase; k-mers never decrease.
			if p.Event != prev.Event+1 {
				t.Fatalf("entry %d: event %d after %d", i, p.Event, prev.Event)
			}
			if p.Kmer < prev.Kmer {
				t.Fatalf("entry %d: k-mer went backwards %d -> %d", i, prev.Kmer, p.Kmer)
			}
		}
	}
	last := r.Path[len(r.Path)-1]
	if last.Event != len(events)-1 || last.Kmer != nk-1 {
		t.Errorf("path ends at (%d,%d), want (%d,%d)", last.Event, last.Kmer, len(events)-1, nk-1)
	}
}

func TestAlignTracePathTracksCleanSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	model := signalsim.NewPoreModel()
	seq := genome.Random(rng, 80)
	// Clean one-event-per-k-mer signal: the path should be the main
	// diagonal exactly.
	events := signalsim.Simulate(rng, model, seq, cleanConfig())
	r := AlignTrace(model, seq, events, DefaultConfig())
	if r.OutOfBand {
		t.Fatal("out of band")
	}
	if len(r.Path) != len(events) {
		t.Fatalf("path covers %d events, want %d", len(r.Path), len(events))
	}
	offDiag := 0
	for _, p := range r.Path {
		if p.Event != p.Kmer {
			offDiag++
		}
	}
	if offDiag > len(r.Path)/20 {
		t.Errorf("%d/%d path entries off the diagonal on clean signal", offDiag, len(r.Path))
	}
}

func TestEventsForKmer(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	model := signalsim.NewPoreModel()
	seq := genome.Random(rng, 120)
	events := signalsim.Simulate(rng, model, seq, signalsim.DefaultConfig())
	r := AlignTrace(model, seq, events, DefaultConfig())
	if r.OutOfBand {
		t.Fatal("out of band")
	}
	sub := r.EventsForKmer(40, 60)
	if len(sub) == 0 {
		t.Fatal("no events over k-mers [40,60)")
	}
	for _, p := range sub {
		if p.Kmer < 40 || p.Kmer >= 60 {
			t.Fatalf("entry %+v outside window", p)
		}
	}
	// With ~1.35 events per k-mer the 20-k-mer window should yield
	// roughly 20-40 events.
	if len(sub) < 10 || len(sub) > 60 {
		t.Errorf("window produced %d events", len(sub))
	}
}

func TestAlignTraceDegenerate(t *testing.T) {
	model := signalsim.NewPoreModel()
	r := AlignTrace(model, genome.MustFromString("ACG"), nil, DefaultConfig())
	if r.Score != negInf || r.Path != nil {
		t.Error("degenerate input should yield empty trace")
	}
}
