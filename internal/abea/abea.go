// Package abea implements the Adaptive Banded Event Alignment kernel
// from Nanopolish/f5c: aligning a nanopore event sequence to the
// k-mers of a reference sequence with a fixed-width band that moves
// down (consuming events) or right (consuming k-mers) after every
// anti-diagonal, following the Suzuki-Kasahara adaptive banding rule.
// Scoring uses 32-bit floating-point log-likelihoods from the pore
// model. A full-matrix reference implementation backs the tests, and a
// SIMT lane program reproduces the kernel's GPU behaviour for the
// paper's Tables IV and V.
package abea

import (
	"context"
	"math"

	"repro/internal/faultinject"
	"repro/internal/genome"
	"repro/internal/parallel"
	"repro/internal/perf"
	"repro/internal/scratch"
	"repro/internal/signalsim"
)

// Transition log-probabilities: events per k-mer average ~1.4 (the
// paper's 2x over-segmentation bound), with rare skips.
var (
	lpStay = float32(math.Log(0.4))  // event advances, k-mer repeats
	lpStep = float32(math.Log(0.55)) // event and k-mer advance together
	lpSkip = float32(math.Log(0.05)) // k-mer advances without an event
)

const negInf = float32(-1e30)

// Config parameterizes the banded alignment.
type Config struct {
	BandWidth int // cells per band (nanopolish uses 100)
}

// DefaultConfig mirrors the f5c default band width.
func DefaultConfig() Config { return Config{BandWidth: 100} }

// Result reports one event-to-sequence alignment.
type Result struct {
	Score       float32
	Aligned     int    // events aligned on the traced path
	CellUpdates uint64 // band cells computed
	OutOfBand   bool   // the terminal cell fell outside every band
}

// FullAlign is the exhaustive O(events x kmers) reference: the score of
// the best alignment of all events to all k-mers.
func FullAlign(model *signalsim.PoreModel, seq genome.Seq, events []signalsim.Event) float32 {
	nk := len(seq) - signalsim.K + 1
	ne := len(events)
	if nk <= 0 || ne == 0 {
		return negInf
	}
	prev := make([]float32, nk) // M[e-1][*]
	cur := make([]float32, nk)
	// Row e = 0: predecessors live on the virtual e = -1 row, whose
	// value at k-mer j is the skip-only prefix (j+1)*lpSkip (and 0 at
	// the origin j = -1).
	for k := 0; k < nk; k++ {
		emit := model.LogProbMatch(events[0].Mean, seq, k)
		diag := lpSkip*float32(k) + lpStep // origin + k skips + step
		stay := lpSkip*float32(k+1) + lpStay
		best := diag
		if stay > best {
			best = stay
		}
		v := emit + best
		if k > 0 {
			// Skips consume a k-mer without emitting an event.
			if s := cur[k-1] + lpSkip; s > v {
				v = s
			}
		}
		cur[k] = v
	}
	prev, cur = cur, prev
	for e := 1; e < ne; e++ {
		for k := 0; k < nk; k++ {
			emit := model.LogProbMatch(events[e].Mean, seq, k)
			best := prev[k] + lpStay
			if k > 0 {
				if s := prev[k-1] + lpStep; s > best {
					best = s
				}
			}
			v := emit + best
			if k > 0 {
				if s := cur[k-1] + lpSkip; s > v {
					v = s
				}
			}
			cur[k] = v
		}
		prev, cur = cur, prev
	}
	return prev[nk-1]
}

// bandPos is the (event, kmer) coordinate of a band's offset-0 cell.
type bandPos struct{ e, k int }

// Align runs the adaptive banded event alignment. The band spans W
// cells along each anti-diagonal; after computing a band, the band
// moves right when the running maximum sits in the lower (k-poor) half
// and down otherwise, so it tracks the alignment path.
func Align(model *signalsim.PoreModel, seq genome.Seq, events []signalsim.Event, cfg Config) Result {
	return AlignInto(model, seq, events, cfg, nil)
}

// AlignInto is Align computing into a's reusable band buffers, so a
// worker looping over reads with one arena aligns with zero
// steady-state heap allocations. A nil a allocates a temporary arena.
// Each call Resets a: the arena must not hold live buffers from other
// kernels. Results are bit-identical to Align.
func AlignInto(model *signalsim.PoreModel, seq genome.Seq, events []signalsim.Event, cfg Config, a *scratch.Arena) Result {
	if a == nil {
		a = scratch.New()
	}
	a.Reset()
	W := cfg.BandWidth
	if W < 4 {
		W = 4
	}
	nk := len(seq) - signalsim.K + 1
	ne := len(events)
	var res Result
	if nk <= 0 || ne == 0 {
		res.Score = negInf
		return res
	}
	nBands := ne + nk + 1
	prev := a.Float32s(W)  // band i-1
	prev2 := a.Float32s(W) // band i-2
	cur := a.Float32s(W)
	for o := 0; o < W; o++ {
		prev[o], prev2[o] = negInf, negInf
	}
	// Band geometry: cell o of a band at lower-left (e0,k0) is
	// (e0-o, k0+o). Band 0 holds the origin (-1,-1) at offset W/2.
	// The lower-left positions are split into parallel e/k arrays so
	// they come out of the arena's int pool.
	lle := a.Ints(nBands)
	llk := a.Ints(nBands)
	lle[0], llk[0] = -1+W/2, -1-W/2
	prev2[W/2] = 0 // origin in band 0 (treated as band i-2 for band 2)

	// Band 1: moved down from band 0 by convention (origin at W/2 sees
	// its successors).
	lle[1], llk[1] = lle[0]+1, llk[0]

	// Scores for band 1 computed in the main loop; seed prev with band
	// 0 (only origin valid) and compute from band 1 on.
	copy(cur, prev2)
	prev, prev2 = cur, prev
	// After the swap: prev = band 0 scores, prev2 = all -inf (band -1).
	// Every cell of the new cur band is written before it is read, so
	// the arena buffer needs no clearing.
	cur = a.Float32s(W)

	bestFinal := negInf
	foundFinal := false
	maxOffsetPrev := W / 2

	for i := 1; i < nBands; i++ {
		// Adaptive movement (bands ≥ 2 move based on band i-1's max):
		// a maximum at high offsets (few events, many k-mers consumed)
		// means the path sits above the band centre, so advance the
		// k-mer axis (move right); a maximum at low offsets means the
		// path is event-rich, so advance the event axis (move down).
		if i >= 2 {
			if maxOffsetPrev >= W/2 {
				lle[i], llk[i] = lle[i-1], llk[i-1]+1
			} else {
				lle[i], llk[i] = lle[i-1]+1, llk[i-1]
			}
		}
		rowMax := negInf
		rowArg := 0
		for o := 0; o < W; o++ {
			e := lle[i] - o
			k := llk[i] + o
			if e < -1 || k < -1 || e >= ne || k >= nk || (e == -1 && k == -1) {
				cur[o] = negInf
				continue
			}
			if e == -1 {
				// Skip-only prefix row.
				cur[o] = lpSkip * float32(k+1)
				if cur[o] > rowMax {
					rowMax = cur[o]
					rowArg = o
				}
				continue
			}
			if k == -1 {
				cur[o] = negInf
				continue
			}
			res.CellUpdates++
			// Every band holds one anti-diagonal e+k = i-2, so the up
			// (e-1,k) and left (e,k-1) dependencies are in band i-1 and
			// the diagonal (e-1,k-1) is in band i-2; only the offsets
			// differ by band placement.
			var up, left, diag float32 = negInf, negInf, negInf
			if o2 := lle[i-1] - (e - 1); o2 >= 0 && o2 < W {
				up = prev[o2]
			}
			if o2 := lle[i-1] - e; o2 >= 0 && o2 < W {
				left = prev[o2]
			}
			if i >= 2 {
				if o3 := lle[i-2] - (e - 1); o3 >= 0 && o3 < W {
					diag = prev2[o3]
				}
			}
			emit := model.LogProbMatch(events[e].Mean, seq, k)
			stay := up + lpStay + emit
			step := diag + lpStep + emit
			skip := left + lpSkip // skips do not emit
			v := stay
			if step > v {
				v = step
			}
			if skip > v {
				v = skip
			}
			cur[o] = v
			if v > rowMax {
				rowMax = v
				rowArg = o
			}
			if e == ne-1 && k == nk-1 {
				foundFinal = true
				if v > bestFinal {
					bestFinal = v
				}
			}
		}
		maxOffsetPrev = rowArg
		prev2, prev, cur = prev, cur, prev2
	}
	res.Score = bestFinal
	res.OutOfBand = !foundFinal
	res.Aligned = ne
	return res
}

// KernelResult aggregates an abea benchmark execution.
type KernelResult struct {
	Reads       int
	CellUpdates uint64
	OutOfBand   int
	TaskStats   *perf.TaskStats
	Counters    perf.Counters
}

// RunKernel aligns all signal reads with dynamic scheduling.
// It panics on failure; cancellable callers use RunKernelCtx.
func RunKernel(model *signalsim.PoreModel, reads []signalsim.SignalRead, cfg Config, threads int) KernelResult {
	res, err := RunKernelCtx(context.Background(), model, reads, cfg, threads)
	if err != nil {
		panic(err)
	}
	return res
}

// RunKernelCtx is RunKernel with cooperative cancellation and a fault
// trip-point per read.
func RunKernelCtx(ctx context.Context, model *signalsim.PoreModel, reads []signalsim.SignalRead, cfg Config, threads int) (KernelResult, error) {
	if threads <= 0 {
		threads = 1
	}
	type ws struct {
		cells uint64
		oob   int
		stats *perf.TaskStats
		arena *scratch.Arena
		_     perf.CacheLinePad // workers update these per task; keep shards on private cache lines
	}
	workers := make([]ws, threads)
	pool := scratch.PoolFrom(ctx) // nil pool hands out fresh arenas
	for i := range workers {
		workers[i].stats = perf.NewTaskStats("cell updates")
		workers[i].arena = pool.Worker(i)
	}
	err := parallel.ForEachCtxErr(ctx, len(reads), threads, func(tctx context.Context, w, i int) error {
		if err := faultinject.Point(tctx); err != nil {
			return err
		}
		r := AlignLanesInto(model, reads[i].Seq, reads[i].Events, cfg, workers[w].arena)
		workers[w].cells += r.CellUpdates
		if r.OutOfBand {
			workers[w].oob++
		}
		workers[w].stats.Observe(float64(r.CellUpdates))
		return nil
	})
	if err != nil {
		return KernelResult{}, err
	}
	res := KernelResult{Reads: len(reads), TaskStats: perf.NewTaskStats("cell updates")}
	for i := range workers {
		res.CellUpdates += workers[i].cells
		res.OutOfBand += workers[i].oob
		res.TaskStats.Merge(workers[i].stats)
	}
	// 32-bit float log-likelihood DP: FP-heavy with model-table loads.
	res.Counters.Add(perf.FloatOp, res.CellUpdates*5)
	res.Counters.Add(perf.Load, res.CellUpdates*3)
	res.Counters.Add(perf.Store, res.CellUpdates)
	res.Counters.Add(perf.IntALU, res.CellUpdates*2)
	res.Counters.Add(perf.Branch, res.CellUpdates/2)
	return res, nil
}
