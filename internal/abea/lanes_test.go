package abea

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/genome"
	"repro/internal/scratch"
	"repro/internal/signalsim"
)

// TestAlignLanesBitIdentical pins the lane-blocked band sweep to the
// scalar reference bit-for-bit: the restructuring only hoists and
// reorders loads (emission tables, padded predecessor reads), never a
// float operation, so there is no tolerance here — score, band path,
// work counters and out-of-band behaviour must all agree exactly.
func TestAlignLanesBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	model := signalsim.NewPoreModel()
	a := scratch.New()
	cfgs := []Config{DefaultConfig(), {BandWidth: 16}, {BandWidth: 7}, {BandWidth: 2}}
	for trial := 0; trial < 30; trial++ {
		n := 20 + rng.Intn(400)
		seq := genome.Random(rng, n)
		simCfg := signalsim.DefaultConfig()
		if trial%3 == 0 {
			simCfg.NoiseScale = 3 // noisy reads wander the band
		}
		events := signalsim.Simulate(rng, model, seq, simCfg)
		if trial%5 == 4 {
			// Unrelated sequence: drives out-of-band terminations.
			seq = genome.Random(rng, n)
		}
		cfg := cfgs[trial%len(cfgs)]
		want := AlignInto(model, seq, events, cfg, nil)
		got := AlignLanesInto(model, seq, events, cfg, a)
		if math.Float32bits(got.Score) != math.Float32bits(want.Score) {
			t.Fatalf("trial %d (W=%d): Score = %v, want %v (bit-exact)", trial, cfg.BandWidth, got.Score, want.Score)
		}
		if got.CellUpdates != want.CellUpdates {
			t.Fatalf("trial %d (W=%d): CellUpdates = %d, want %d", trial, cfg.BandWidth, got.CellUpdates, want.CellUpdates)
		}
		if got.OutOfBand != want.OutOfBand || got.Aligned != want.Aligned {
			t.Fatalf("trial %d: (OutOfBand, Aligned) = (%v, %d), want (%v, %d)",
				trial, got.OutOfBand, got.Aligned, want.OutOfBand, want.Aligned)
		}
	}
}

// TestAlignLanesDegenerate mirrors the scalar degenerate cases.
func TestAlignLanesDegenerate(t *testing.T) {
	model := signalsim.NewPoreModel()
	if r := AlignLanes(model, genome.MustFromString("ACG"), nil, DefaultConfig()); r.Score != negInf {
		t.Error("short sequence should yield -inf")
	}
	rng := rand.New(rand.NewSource(32))
	seq := genome.Random(rng, 50)
	if r := AlignLanes(model, seq, nil, DefaultConfig()); r.Score != negInf {
		t.Error("no events should yield -inf")
	}
}

// TestAlignLanesZeroAlloc: steady-state alignment into a warm arena
// must not touch the heap.
func TestAlignLanesZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	model := signalsim.NewPoreModel()
	seq := genome.Random(rng, 200)
	events := signalsim.Simulate(rng, model, seq, signalsim.DefaultConfig())
	a := scratch.New()
	AlignLanesInto(model, seq, events, DefaultConfig(), a) // warm the arena
	allocs := testing.AllocsPerRun(20, func() {
		AlignLanesInto(model, seq, events, DefaultConfig(), a)
	})
	if allocs != 0 {
		t.Fatalf("AlignLanesInto allocates %v/op on a warm arena, want 0", allocs)
	}
}

func BenchmarkAlignLanes(b *testing.B) {
	rng := rand.New(rand.NewSource(34))
	model := signalsim.NewPoreModel()
	seq := genome.Random(rng, 2000)
	events := signalsim.Simulate(rng, model, seq, signalsim.DefaultConfig())
	cfg := DefaultConfig()
	b.Run("scalar", func(b *testing.B) {
		b.ReportAllocs()
		a := scratch.New()
		for i := 0; i < b.N; i++ {
			AlignInto(model, seq, events, cfg, a)
		}
	})
	b.Run("lanes", func(b *testing.B) {
		b.ReportAllocs()
		a := scratch.New()
		for i := 0; i < b.N; i++ {
			AlignLanesInto(model, seq, events, cfg, a)
		}
	})
}
