package abea

import (
	"math/rand"
	"testing"

	"repro/internal/genome"
	"repro/internal/scratch"
	"repro/internal/signalsim"
)

// A reused arena must give bit-identical results to a fresh one: band
// buffers carry stale scores between reads, and every cell must be
// rewritten before it is read.
func TestAlignIntoArenaReuseDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	model := signalsim.NewPoreModel()
	arena := scratch.New()
	for trial := 0; trial < 40; trial++ {
		seq := genome.Random(rng, 20+rng.Intn(120))
		events := signalsim.Simulate(rng, model, seq, signalsim.DefaultConfig())
		want := AlignInto(model, seq, events, DefaultConfig(), nil)
		got := AlignInto(model, seq, events, DefaultConfig(), arena)
		if got != want {
			t.Fatalf("trial %d (|seq|=%d |events|=%d): got %+v want %+v",
				trial, len(seq), len(events), got, want)
		}
	}
}

// The steady-state read loop must be allocation-free with a warm
// arena.
func TestAlignIntoZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	model := signalsim.NewPoreModel()
	seq := genome.Random(rng, 80)
	events := signalsim.Simulate(rng, model, seq, signalsim.DefaultConfig())
	arena := scratch.New()
	AlignInto(model, seq, events, DefaultConfig(), arena) // warm
	n := testing.AllocsPerRun(20, func() {
		AlignInto(model, seq, events, DefaultConfig(), arena)
	})
	if n != 0 {
		t.Fatalf("AllocsPerRun = %v, want 0", n)
	}
}

// Fresh-arena versus pooled alignment: the bench harness's abea
// before/after pair.
func BenchmarkAlignBanded(b *testing.B) {
	rng := rand.New(rand.NewSource(53))
	model := signalsim.NewPoreModel()
	seq := genome.Random(rng, 150)
	events := signalsim.Simulate(rng, model, seq, signalsim.DefaultConfig())
	cfg := DefaultConfig()
	b.Run("alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			AlignInto(model, seq, events, cfg, nil)
		}
	})
	b.Run("pooled", func(b *testing.B) {
		b.ReportAllocs()
		arena := scratch.New()
		for i := 0; i < b.N; i++ {
			AlignInto(model, seq, events, cfg, arena)
		}
	})
}
