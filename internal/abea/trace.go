package abea

import (
	"repro/internal/genome"
	"repro/internal/signalsim"
)

// Alignment traceback: Nanopolish needs the event-to-k-mer
// registration, not just the score — methylation calling extracts the
// events covering each CpG site from it. AlignTrace stores a move code
// per band cell and walks the path back.

// EventAlignment pairs an event index with the k-mer it was emitted at.
type EventAlignment struct {
	Event int
	Kmer  int
}

// TraceResult extends Result with the aligned path.
type TraceResult struct {
	Result
	Path []EventAlignment // ascending event order; skips omit entries
}

// Move codes (2 bits would do; bytes keep it simple).
const (
	mvNone = 0
	mvStay = 1 // from (e-1, k)
	mvStep = 2 // from (e-1, k-1)
	mvSkip = 3 // from (e, k-1)
)

// AlignTrace runs the adaptive banded event alignment keeping the full
// banded move matrix, and reconstructs the best path. Memory cost is
// nBands x bandwidth bytes.
func AlignTrace(model *signalsim.PoreModel, seq genome.Seq, events []signalsim.Event, cfg Config) TraceResult {
	W := cfg.BandWidth
	if W < 4 {
		W = 4
	}
	nk := len(seq) - signalsim.K + 1
	ne := len(events)
	var res TraceResult
	if nk <= 0 || ne == 0 {
		res.Score = negInf
		return res
	}
	nBands := ne + nk + 1
	prev := make([]float32, W)
	prev2 := make([]float32, W)
	cur := make([]float32, W)
	for o := 0; o < W; o++ {
		prev[o], prev2[o] = negInf, negInf
	}
	ll := make([]bandPos, nBands)
	moves := make([]uint8, nBands*W)
	ll[0] = bandPos{e: -1 + W/2, k: -1 - W/2}
	prev2[W/2] = 0
	ll[1] = bandPos{e: ll[0].e + 1, k: ll[0].k}
	copy(cur, prev2)
	prev, prev2 = cur, prev
	cur = make([]float32, W)

	bestFinal := negInf
	foundFinal := false
	finalBand, finalOffset := -1, -1
	maxOffsetPrev := W / 2

	for i := 1; i < nBands; i++ {
		if i >= 2 {
			if maxOffsetPrev >= W/2 {
				ll[i] = bandPos{e: ll[i-1].e, k: ll[i-1].k + 1}
			} else {
				ll[i] = bandPos{e: ll[i-1].e + 1, k: ll[i-1].k}
			}
		}
		rowMax := negInf
		rowArg := 0
		base := i * W
		for o := 0; o < W; o++ {
			e := ll[i].e - o
			k := ll[i].k + o
			if e < -1 || k < -1 || e >= ne || k >= nk || (e == -1 && k == -1) {
				cur[o] = negInf
				continue
			}
			if e == -1 {
				cur[o] = lpSkip * float32(k+1)
				if cur[o] > rowMax {
					rowMax = cur[o]
					rowArg = o
				}
				continue
			}
			if k == -1 {
				cur[o] = negInf
				continue
			}
			res.CellUpdates++
			var up, left, diag float32 = negInf, negInf, negInf
			if o2 := ll[i-1].e - (e - 1); o2 >= 0 && o2 < W {
				up = prev[o2]
			}
			if o2 := ll[i-1].e - e; o2 >= 0 && o2 < W {
				left = prev[o2]
			}
			if i >= 2 {
				if o3 := ll[i-2].e - (e - 1); o3 >= 0 && o3 < W {
					diag = prev2[o3]
				}
			}
			emit := model.LogProbMatch(events[e].Mean, seq, k)
			stay := up + lpStay + emit
			step := diag + lpStep + emit
			skip := left + lpSkip
			v := stay
			mv := uint8(mvStay)
			if step > v {
				v = step
				mv = mvStep
			}
			if skip > v {
				v = skip
				mv = mvSkip
			}
			cur[o] = v
			moves[base+o] = mv
			if v > rowMax {
				rowMax = v
				rowArg = o
			}
			if e == ne-1 && k == nk-1 && v > bestFinal {
				bestFinal = v
				foundFinal = true
				finalBand, finalOffset = i, o
			}
		}
		maxOffsetPrev = rowArg
		prev2, prev, cur = prev, cur, prev2
	}
	res.Score = bestFinal
	res.OutOfBand = !foundFinal
	res.Aligned = ne
	if !foundFinal {
		return res
	}

	// Backtrack: each move determines the predecessor cell; its band
	// index follows from the anti-diagonal (band = e + k + 2).
	var rev []EventAlignment
	i, o := finalBand, finalOffset
	for {
		e := ll[i].e - o
		k := ll[i].k + o
		if e < 0 || k < 0 {
			break
		}
		mv := moves[i*W+o]
		if mv == mvNone {
			break
		}
		var pe, pk int
		switch mv {
		case mvStay:
			rev = append(rev, EventAlignment{Event: e, Kmer: k})
			pe, pk = e-1, k
		case mvStep:
			rev = append(rev, EventAlignment{Event: e, Kmer: k})
			pe, pk = e-1, k-1
		case mvSkip:
			pe, pk = e, k-1
		}
		if pe < 0 || pk < 0 {
			break
		}
		pi := pe + pk + 2
		po := ll[pi].e - pe
		if po < 0 || po >= W {
			break // path left the band
		}
		i, o = pi, po
	}
	res.Path = make([]EventAlignment, len(rev))
	for idx := range rev {
		res.Path[idx] = rev[len(rev)-1-idx]
	}
	return res
}

// EventsForKmer returns the contiguous range of path entries whose
// k-mer index falls in [kLo, kHi), for extracting the events over a
// site of interest.
func (r *TraceResult) EventsForKmer(kLo, kHi int) []EventAlignment {
	var out []EventAlignment
	for _, p := range r.Path {
		if p.Kmer >= kLo && p.Kmer < kHi {
			out = append(out, p)
		}
	}
	return out
}
