package abea

// Lane-blocked adaptive banded event alignment. AlignLanesInto
// restructures AlignInto's per-cell loop the way the lane-batched
// PairHMM pass restructures phmm (see internal/lanes): per read it
// hoists the pore-model emission terms into per-k-mer-rank tables
// (k-mer code, model mean/stdv, the log-stdv normalizer — all of
// which the scalar path recomputes per cell, including a math.Log),
// reverses the event means so every band-relative access is a
// contiguous ascending gather, and then sweeps the in-band interior
// in lane-width quad blocks with no per-cell bounds checks: within a
// band every predecessor offset is the cell offset plus a constant
// band shift, so the three dependencies become three shifted quad
// loads against negInf-padded band buffers (the pads replay the
// scalar path's out-of-band checks bit-for-bit).
//
// Unlike the PairHMM forward pass, the banded recurrence has no
// within-band serial chain — stay/step/skip all read earlier bands —
// so the quad sweep carries nothing across columns and the portable
// Go form stays in registers without an assembly kernel.
//
// Numerics: every float expression replays the scalar path's
// operations in the scalar order (the emission tables round exactly
// once, in the same places), so scores, band movement, work counters
// and trace behaviour are BIT-IDENTICAL to AlignInto — asserted, not
// just bounded, by the differential tests. Bands the interval logic
// cannot lane (the first two seed bands, band edges, ragged quad
// tails) run the scalar per-cell body unchanged.

import (
	"math"

	"repro/internal/genome"
	"repro/internal/lanes"
	"repro/internal/scratch"
	"repro/internal/signalsim"
)

// logSqrt2Pi32 is signalsim's gaussian normalization constant at the
// float32 precision the scalar emission uses.
const logSqrt2Pi32 = float32(0.9189385332046727)

var (
	lpStayQ = lanes.Quad{A: lpStay, B: lpStay, C: lpStay, D: lpStay}
	lpStepQ = lanes.Quad{A: lpStep, B: lpStep, C: lpStep, D: lpStep}
	lpSkipQ = lanes.Quad{A: lpSkip, B: lpSkip, C: lpSkip, D: lpSkip}
	halfNeg = lanes.Quad{A: -0.5, B: -0.5, C: -0.5, D: -0.5}
	ls2piQ  = lanes.Quad{A: logSqrt2Pi32, B: logSqrt2Pi32, C: logSqrt2Pi32, D: logSqrt2Pi32}
)

// AlignLanes is AlignInto's lane-blocked twin with a temporary arena.
func AlignLanes(model *signalsim.PoreModel, seq genome.Seq, events []signalsim.Event, cfg Config) Result {
	return AlignLanesInto(model, seq, events, cfg, nil)
}

// AlignLanesInto runs the lane-blocked adaptive banded alignment into
// a's reusable buffers. Results are bit-identical to AlignInto.
func AlignLanesInto(model *signalsim.PoreModel, seq genome.Seq, events []signalsim.Event, cfg Config, a *scratch.Arena) Result {
	if a == nil {
		a = scratch.New()
	}
	a.Reset()
	W := cfg.BandWidth
	if W < 4 {
		W = 4
	}
	nk := len(seq) - signalsim.K + 1
	ne := len(events)
	var res Result
	if nk <= 0 || ne == 0 {
		res.Score = negInf
		return res
	}

	// Per-read emission tables: one gather per k-mer rank instead of a
	// KmerCode walk plus math.Log per band cell. Each entry rounds
	// exactly where the scalar path rounds, so emissions stay
	// bit-identical.
	muK := a.Float32s(nk)
	sdK := a.Float32s(nk)
	lsK := a.Float32s(nk)
	genome.EachKmer(seq, signalsim.K, func(pos int, code uint64) {
		muK[pos] = model.Mean[code]
		sdK[pos] = model.Stdv[code]
		lsK[pos] = float32(math.Log(float64(model.Stdv[code])))
	})
	// Reversed event means: cell o of a band at lower-left (e0,k0)
	// reads event e0-o, so in reversed coordinates the band's event
	// gather is contiguous and ascending, quad-loadable.
	evRev := a.Float32s(ne)
	for e := 0; e < ne; e++ {
		evRev[ne-1-e] = events[e].Mean
	}

	nBands := ne + nk + 1
	// Band buffers padded by one negInf sentinel on each side: shifted
	// predecessor loads at the band rim land on the pads, which encode
	// exactly the scalar path's "offset out of [0,W)" checks. Band
	// cell o lives at buf[o+1].
	prev := a.Float32s(W + 2)
	prev2 := a.Float32s(W + 2)
	cur := a.Float32s(W + 2)
	for o := range prev {
		prev[o], prev2[o], cur[o] = negInf, negInf, negInf
	}
	lle := a.Ints(nBands)
	llk := a.Ints(nBands)
	lle[0], llk[0] = -1+W/2, -1-W/2
	prev2[W/2+1] = 0 // origin in band 0
	lle[1], llk[1] = lle[0]+1, llk[0]
	copy(cur, prev2)
	prev, prev2 = cur, prev
	cur = a.Float32s(W + 2)
	cur[0], cur[W+1] = negInf, negInf

	bestFinal := negInf
	foundFinal := false
	maxOffsetPrev := W / 2

	for i := 1; i < nBands; i++ {
		if i >= 2 {
			if maxOffsetPrev >= W/2 {
				lle[i], llk[i] = lle[i-1], llk[i-1]+1
			} else {
				lle[i], llk[i] = lle[i-1]+1, llk[i-1]
			}
		}
		e0, k0 := lle[i], llk[i]

		// Interior interval [oA, oB]: offsets whose (e, k) are both in
		// range. Everything below oA has e >= ne or k < 0; everything
		// above oB has k >= nk or e < 0 — all negInf except the single
		// skip-only prefix cell at e == -1.
		oA := 0
		if v := e0 - ne + 1; v > oA {
			oA = v
		}
		if v := -k0; v > oA {
			oA = v
		}
		oB := W - 1
		if e0 < oB {
			oB = e0
		}
		if v := nk - 1 - k0; v < oB {
			oB = v
		}

		if i < 2 || oB < oA {
			// Seed bands and fully-out-of-band bands: scalar body.
			maxOffsetPrev = scalarBand(i, W, ne, nk, lle, llk, prev, prev2, cur, evRev, muK, sdK, lsK, &res, &bestFinal, &foundFinal)
			prev2, prev, cur = prev, cur, prev2
			continue
		}

		// Edges: negInf except the e == -1 prefix cell.
		for o := 0; o < oA; o++ {
			cur[o+1] = negInf
		}
		for o := oB + 1; o < W; o++ {
			cur[o+1] = negInf
		}
		if o := e0 + 1; o >= 0 && o < W {
			if k := k0 + o; k >= -1 && k < nk {
				// e == -1: skip-only prefix row (k == -1 stays negInf).
				if k >= 0 {
					cur[o+1] = lpSkip * float32(k+1)
				}
			}
		}

		// Constant band shifts: within band i, cell o's up/left
		// predecessors sit at o+s1/o+s1-1 in band i-1 and its diagonal
		// at o+s2 in band i-2.
		s1 := lle[i-1] - e0 + 1
		s2 := lle[i-2] - e0 + 1
		eb := ne - 1 - e0 // evRev index of cell o = eb + o
		kb := k0

		res.CellUpdates += uint64(oB - oA + 1)
		o := oA
		for ; o+3 <= oB; o += 4 {
			mu := lanes.Load4U(&muK[0], kb+o)
			sd := lanes.Load4U(&sdK[0], kb+o)
			ls := lanes.Load4U(&lsK[0], kb+o)
			x := lanes.Load4U(&evRev[0], eb+o)
			z := x.Sub(mu).Div(sd)
			emit := halfNeg.Mul(z).Mul(z).Sub(ls).Sub(ls2piQ)
			up := lanes.Load4U(&prev[0], o+s1+1)
			left := lanes.Load4U(&prev[0], o+s1)
			diag := lanes.Load4U(&prev2[0], o+s2+1)
			stay := up.Add(lpStayQ).Add(emit)
			step := diag.Add(lpStepQ).Add(emit)
			skip := left.Add(lpSkipQ)
			v := stay.Max(step).Max(skip)
			lanes.Store4U(&cur[0], o+1, v)
		}
		// Ragged quad tail: the same expressions one cell at a time.
		for ; o <= oB; o++ {
			z := (evRev[eb+o] - muK[kb+o]) / sdK[kb+o]
			emit := -0.5*z*z - lsK[kb+o] - logSqrt2Pi32
			stay := prev[o+s1+1] + lpStay + emit
			step := prev2[o+s2+1] + lpStep + emit
			skip := prev[o+s1] + lpSkip
			v := stay
			if step > v {
				v = step
			}
			if skip > v {
				v = skip
			}
			cur[o+1] = v
		}

		// Band max: a post-pass with the scalar loop's strict-greater
		// first-winner semantics (negInf cells can never win unless the
		// whole band is negInf, in which case rowArg stays 0 — exactly
		// the scalar outcome).
		rowMax, rowArg := negInf, 0
		for o := 0; o < W; o++ {
			if cur[o+1] > rowMax {
				rowMax = cur[o+1]
				rowArg = o
			}
		}
		maxOffsetPrev = rowArg

		// Terminal cell: at most one offset per band can be (ne-1,nk-1).
		if oF := e0 - (ne - 1); oF >= oA && oF <= oB && k0+oF == nk-1 {
			foundFinal = true
			if v := cur[oF+1]; v > bestFinal {
				bestFinal = v
			}
		}
		prev2, prev, cur = prev, cur, prev2
	}
	res.Score = bestFinal
	res.OutOfBand = !foundFinal
	res.Aligned = ne
	return res
}

// scalarBand runs AlignInto's per-cell body for one band on the
// padded buffers: the exact reference loop, used for the two seed
// bands and bands with an empty lane interior. Returns the band's
// argmax offset.
func scalarBand(i, W, ne, nk int, lle, llk []int, prev, prev2, cur []float32,
	evRev, muK, sdK, lsK []float32, res *Result, bestFinal *float32, foundFinal *bool) int {
	rowMax := negInf
	rowArg := 0
	for o := 0; o < W; o++ {
		e := lle[i] - o
		k := llk[i] + o
		if e < -1 || k < -1 || e >= ne || k >= nk || (e == -1 && k == -1) {
			cur[o+1] = negInf
			continue
		}
		if e == -1 {
			cur[o+1] = lpSkip * float32(k+1)
			if cur[o+1] > rowMax {
				rowMax = cur[o+1]
				rowArg = o
			}
			continue
		}
		if k == -1 {
			cur[o+1] = negInf
			continue
		}
		res.CellUpdates++
		var up, left, diag float32 = negInf, negInf, negInf
		if o2 := lle[i-1] - (e - 1); o2 >= 0 && o2 < W {
			up = prev[o2+1]
		}
		if o2 := lle[i-1] - e; o2 >= 0 && o2 < W {
			left = prev[o2+1]
		}
		if i >= 2 {
			if o3 := lle[i-2] - (e - 1); o3 >= 0 && o3 < W {
				diag = prev2[o3+1]
			}
		}
		z := (evRev[ne-1-e] - muK[k]) / sdK[k]
		emit := -0.5*z*z - lsK[k] - logSqrt2Pi32
		stay := up + lpStay + emit
		step := diag + lpStep + emit
		skip := left + lpSkip
		v := stay
		if step > v {
			v = step
		}
		if skip > v {
			v = skip
		}
		cur[o+1] = v
		if v > rowMax {
			rowMax = v
			rowArg = o
		}
		if e == ne-1 && k == nk-1 {
			*foundFinal = true
			if v > *bestFinal {
				*bestFinal = v
			}
		}
	}
	return rowArg
}
