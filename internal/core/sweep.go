package core

import (
	"fmt"

	"repro/internal/cachesim"
)

// Cache-geometry sweep: an ablation beyond the paper's tables. The
// paper attributes fmi's and kmer-cnt's behaviour to working sets
// (~10 GB index, ~8 GB table) that no cache can hold; sweeping the LLC
// size makes that argument quantitative — the memory-bound kernels'
// BPKI barely moves while cache-friendly kernels collapse to zero.

// SweepPoint is one (kernel, LLC size) measurement.
type SweepPoint struct {
	Name    string
	LLCSize int
	Report  cachesim.Report
}

// CacheSweep replays each kernel's trace against hierarchies with the
// given LLC sizes (bytes). Other levels keep the Table I geometry.
func CacheSweep(seed int64, kernels []string, llcSizes []int) []SweepPoint {
	if len(llcSizes) == 0 {
		llcSizes = []int{2 << 20, 4 << 20, 8 << 20, 16 << 20, 32 << 20}
	}
	var out []SweepPoint
	for _, name := range kernels {
		b, err := ByName(name)
		if err != nil {
			continue
		}
		b.Prepare(Small, seed)
		stats := b.Run(1)
		b.Release()
		for _, size := range llcSizes {
			cfg := cachesim.XeonE31240v5()
			cfg.LLCSize = size
			h := cachesim.NewHierarchy(cfg)
			fraction := replayTrace(name, stats, h, seed)
			instr := uint64(float64(stats.Counters.Total()) * fraction)
			out = append(out, SweepPoint{Name: name, LLCSize: size, Report: h.Report(instr)})
		}
	}
	return out
}

// CacheSweepTable renders the sweep for the paper's two memory-bound
// kernels plus a cache-friendly control.
func CacheSweepTable(seed int64) *Table {
	kernels := []string{"fmi", "kmer-cnt", "spoa"}
	sizes := []int{2 << 20, 8 << 20, 32 << 20}
	points := CacheSweep(seed, kernels, sizes)
	t := &Table{
		Title:   "Ablation: BPKI versus LLC size (paper-scale working sets)",
		Columns: []string{"benchmark", "LLC 2MB", "LLC 8MB", "LLC 32MB"},
	}
	byKernel := map[string][]SweepPoint{}
	for _, p := range points {
		byKernel[p.Name] = append(byKernel[p.Name], p)
	}
	for _, k := range kernels {
		row := []interface{}{k}
		for _, p := range byKernel[k] {
			row = append(row, fmt.Sprintf("%.1f", p.Report.BPKI))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"memory-bound kernels keep missing at any feasible LLC; cache-friendly kernels collapse")
	return t
}
