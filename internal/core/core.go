// Package core is the GenomicsBench suite driver: it registers the
// twelve kernels with their paper metadata (Tables II and III), builds
// the small/large synthetic datasets, runs kernels under timing and
// instrumentation, and regenerates every table and figure of the
// paper's evaluation section.
package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/perf"
)

// Size selects a dataset preset.
type Size int

// Dataset sizes. The paper ships small inputs that finish in minutes
// and large inputs that take 5-20 minutes single-threaded; this
// reproduction scales both down proportionally so the full suite runs
// on a laptop, preserving the small:large ratio.
const (
	Small Size = iota
	Large
)

func (s Size) String() string {
	if s == Large {
		return "large"
	}
	return "small"
}

// ParseSize converts a flag string.
func ParseSize(s string) (Size, error) {
	switch s {
	case "small":
		return Small, nil
	case "large":
		return Large, nil
	}
	return Small, fmt.Errorf("core: unknown size %q (want small or large)", s)
}

// Info is a kernel's static metadata, mirroring the paper's Tables II
// and III.
type Info struct {
	Name        string // suite name (fmi, bsw, ...)
	Tool        string // software tool the kernel was extracted from
	Pipeline    string // reference-guided / de novo / metagenomics / population
	Motif       string // parallelism motif (Table II)
	Granularity string // data-parallelism granularity (Table III)
	WorkUnit    string // data-parallel computation unit (Table III)
	Irregular   bool   // irregular compute pattern
	GPU         bool   // has a GPU (SIMT-modelled) implementation
}

// RunStats is the outcome of one kernel execution.
type RunStats struct {
	Elapsed   time.Duration
	Counters  perf.Counters
	TaskStats *perf.TaskStats
	// Extra carries kernel-specific scalars (SMEM counts, chain counts,
	// haplotypes, ...), keyed by short names.
	Extra map[string]float64
}

// Benchmark is one suite kernel: Prepare builds its dataset (seeded,
// deterministic), RunCtx executes it with the given thread count under
// cooperative cancellation, and Release drops the dataset so a driver
// iterating many kernels does not accumulate every dataset on the heap
// (which inflates GC cost on later kernels). Run is the legacy
// non-cancellable path; it panics if the kernel fails (which only
// happens under fault injection or cancellation).
type Benchmark interface {
	Info() Info
	Prepare(size Size, seed int64)
	Run(threads int) RunStats
	RunCtx(ctx context.Context, threads int) (RunStats, error)
	Release()
}

// registry holds the kernels in suite order.
var registry []Benchmark

// Register adds a benchmark; called from init functions below.
func Register(b Benchmark) { registry = append(registry, b) }

// Benchmarks returns all registered kernels in suite order.
func Benchmarks() []Benchmark {
	out := make([]Benchmark, len(registry))
	copy(out, registry)
	return out
}

// ByName returns the kernel with the given name.
func ByName(name string) (Benchmark, error) {
	for _, b := range registry {
		if b.Info().Name == name {
			return b, nil
		}
	}
	names := make([]string, 0, len(registry))
	for _, b := range registry {
		names = append(names, b.Info().Name)
	}
	sort.Strings(names)
	return nil, fmt.Errorf("core: unknown benchmark %q (have %v)", name, names)
}

// Names lists all kernel names in suite order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for _, b := range registry {
		out = append(out, b.Info().Name)
	}
	return out
}
