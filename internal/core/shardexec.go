package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/bsw"
	"repro/internal/chain"
	"repro/internal/dbg"
	"repro/internal/phmm"
	"repro/internal/pileup"
	"repro/internal/poa"
	"repro/internal/shard"
)

// Shard executors: the fabric-facing view of the kernels. Each
// executor prepares the same deterministic dataset as the matching
// Benchmark (same generators, same seed discipline) and exposes it as
// a dense task range whose per-task outputs are folded into 64-bit
// digests. The digest must cover the kernel's complete semantic output
// — scores, coordinates, consensus bases, counts, likelihood bits —
// because the distributed differential tests assert digest-vector
// equality against a single-process run; a digest that skipped a field
// would let a divergence hide.
//
// Only the task-granular kernels are shardable: bsw, chain, spoa,
// pileup, phmm, and dbg all decompose into independent tasks with no
// cross-task state. The remaining kernels (fmi's shared index, grm's
// matrix tiles, the NN kernels' batched models) stay on the in-process
// path; RunSuite falls back transparently for them.

// fnvOffset/fnvPrime are the FNV-1a constants; digests and the job
// fingerprint use the same fold.
const (
	fnvOffset = uint64(14695981039346656037)
	fnvPrime  = uint64(1099511628211)
)

// foldWord folds one 64-bit word into an FNV-1a digest byte by byte.
func foldWord(h, w uint64) uint64 {
	for s := 0; s < 64; s += 8 {
		h ^= (w >> s) & 0xff
		h *= fnvPrime
	}
	return h
}

func foldInt(h uint64, v int) uint64       { return foldWord(h, uint64(int64(v))) }
func foldFloat(h uint64, f float64) uint64 { return foldWord(h, math.Float64bits(f)) }

func foldBases(h uint64, seq []byte) uint64 {
	for _, b := range seq {
		h ^= uint64(b)
		h *= fnvPrime
	}
	return h
}

// parseExecSize converts the wire's size string back to a Size.
func parseExecSize(s string) (Size, error) {
	size, err := ParseSize(s)
	if err != nil {
		return Small, fmt.Errorf("shard executor: %w", err)
	}
	return size, nil
}

// ---- bsw ----

type bswExecutor struct {
	bench  bswBench
	params bsw.Params
}

func (e *bswExecutor) Prepare(size string, seed int64) (int, error) {
	sz, err := parseExecSize(size)
	if err != nil {
		return 0, err
	}
	e.bench.Prepare(sz, seed)
	e.params = bsw.DefaultParams()
	return len(e.bench.pairs), nil
}

func (e *bswExecutor) RunTask(_ context.Context, task int) (uint64, uint64, error) {
	p := e.bench.pairs[task]
	r := bsw.Align(p.Query, p.Target, e.params)
	h := fnvOffset
	h = foldInt(h, r.Score)
	h = foldInt(h, r.QEnd)
	h = foldInt(h, r.TEnd)
	if r.ZDropped {
		h = foldWord(h, 1)
	}
	return h, r.CellUpdates, nil
}

// ---- chain ----

type chainExecutor struct {
	bench chainBench
	cfg   chain.Config
}

func (e *chainExecutor) Prepare(size string, seed int64) (int, error) {
	sz, err := parseExecSize(size)
	if err != nil {
		return 0, err
	}
	e.bench.Prepare(sz, seed)
	e.cfg = chain.DefaultConfig()
	return len(e.bench.tasks), nil
}

func (e *chainExecutor) RunTask(_ context.Context, task int) (uint64, uint64, error) {
	chains, comparisons := chain.ChainAnchors(e.bench.tasks[task].Anchors, e.cfg)
	h := fnvOffset
	h = foldInt(h, len(chains))
	for _, c := range chains {
		h = foldFloat(h, c.Score)
		h = foldInt(h, len(c.Anchors))
		for _, a := range c.Anchors {
			h = foldInt(h, a)
		}
	}
	return h, comparisons, nil
}

// ---- spoa ----

type poaExecutor struct {
	bench  poaBench
	params poa.Params
}

func (e *poaExecutor) Prepare(size string, seed int64) (int, error) {
	sz, err := parseExecSize(size)
	if err != nil {
		return 0, err
	}
	e.bench.Prepare(sz, seed)
	e.params = poa.DefaultParams()
	return len(e.bench.windows), nil
}

func (e *poaExecutor) RunTask(_ context.Context, task int) (uint64, uint64, error) {
	consensus, cells := poa.ConsensusOf(e.bench.windows[task], e.params)
	h := fnvOffset
	h = foldInt(h, len(consensus))
	h = foldBases(h, []byte(consensus))
	return h, cells, nil
}

// ---- pileup ----

type pileupExecutor struct {
	bench pileupBench
}

func (e *pileupExecutor) Prepare(size string, seed int64) (int, error) {
	sz, err := parseExecSize(size)
	if err != nil {
		return 0, err
	}
	e.bench.Prepare(sz, seed)
	return len(e.bench.regions), nil
}

func (e *pileupExecutor) RunTask(_ context.Context, task int) (uint64, uint64, error) {
	counts, lookups := pileup.CountRegion(e.bench.regions[task])
	h := fnvOffset
	h = foldInt(h, len(counts))
	for i := range counts {
		c := &counts[i]
		for s := 0; s < 2; s++ {
			for b := 0; b < 4; b++ {
				h = foldWord(h, uint64(c.Base[s][b]))
			}
			h = foldWord(h, uint64(c.Ins[s]))
			h = foldWord(h, uint64(c.Del[s]))
		}
	}
	return h, uint64(lookups), nil
}

// ---- phmm ----

type phmmExecutor struct {
	bench phmmBench
}

func (e *phmmExecutor) Prepare(size string, seed int64) (int, error) {
	sz, err := parseExecSize(size)
	if err != nil {
		return 0, err
	}
	e.bench.Prepare(sz, seed)
	return len(e.bench.regions), nil
}

func (e *phmmExecutor) RunTask(_ context.Context, task int) (uint64, uint64, error) {
	rr := phmm.EvaluateRegion(e.bench.regions[task])
	h := fnvOffset
	for _, b := range rr.BestHap {
		h = foldInt(h, b)
	}
	for _, l := range rr.Likelihoods {
		h = foldFloat(h, l)
	}
	return h, rr.CellUpdates, nil
}

// ---- dbg ----

type dbgExecutor struct {
	bench dbgBench
	cfg   dbg.Config
}

func (e *dbgExecutor) Prepare(size string, seed int64) (int, error) {
	sz, err := parseExecSize(size)
	if err != nil {
		return 0, err
	}
	e.bench.Prepare(sz, seed)
	e.cfg = dbg.DefaultConfig()
	return len(e.bench.regions), nil
}

func (e *dbgExecutor) RunTask(_ context.Context, task int) (uint64, uint64, error) {
	r := dbg.AssembleRegion(e.bench.regions[task], e.cfg)
	h := fnvOffset
	h = foldInt(h, r.K)
	h = foldInt(h, r.Nodes)
	h = foldInt(h, r.Edges)
	h = foldInt(h, r.CycleRetries)
	h = foldInt(h, len(r.Haplotypes))
	for _, hap := range r.Haplotypes {
		h = foldInt(h, len(hap))
		h = foldBases(h, []byte(hap))
	}
	return h, r.HashLookups, nil
}

func init() {
	shard.RegisterExecutor("bsw", func() shard.Executor { return &bswExecutor{} })
	shard.RegisterExecutor("chain", func() shard.Executor { return &chainExecutor{} })
	shard.RegisterExecutor("spoa", func() shard.Executor { return &poaExecutor{} })
	shard.RegisterExecutor("pileup", func() shard.Executor { return &pileupExecutor{} })
	shard.RegisterExecutor("phmm", func() shard.Executor { return &phmmExecutor{} })
	shard.RegisterExecutor("dbg", func() shard.Executor { return &dbgExecutor{} })
}

// LocalDigests runs every task of a kernel in the current process —
// the reference execution the distributed differential tests and the
// -dist-verify flag compare a fabric run against.
func LocalDigests(ctx context.Context, kernel, size string, seed int64) ([]uint64, uint64, error) {
	ex, err := shard.NewExecutor(kernel)
	if err != nil {
		return nil, 0, err
	}
	n, err := ex.Prepare(size, seed)
	if err != nil {
		return nil, 0, err
	}
	digests := make([]uint64, n)
	var ops uint64
	for t := 0; t < n; t++ {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		d, o, err := ex.RunTask(ctx, t)
		if err != nil {
			return nil, 0, fmt.Errorf("local %s task %d: %w", kernel, t, err)
		}
		digests[t] = d
		ops += o
	}
	return digests, ops, nil
}
