package core

import (
	"strings"
	"testing"

	"repro/internal/cachesim"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"fmi", "bsw", "dbg", "phmm", "chain", "spoa", "abea",
		"grm", "nn-base", "pileup", "nn-variant", "kmer-cnt"}
	names := Names()
	if len(names) != 12 {
		t.Fatalf("registry has %d kernels, want 12: %v", len(names), names)
	}
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("kernel %q missing from registry", w)
		}
	}
}

func TestByName(t *testing.T) {
	b, err := ByName("fmi")
	if err != nil || b.Info().Name != "fmi" {
		t.Fatalf("ByName(fmi) = %v, %v", b, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName(nope) should fail")
	}
}

func TestParseSize(t *testing.T) {
	if s, err := ParseSize("small"); err != nil || s != Small {
		t.Error("ParseSize(small) failed")
	}
	if s, err := ParseSize("large"); err != nil || s != Large {
		t.Error("ParseSize(large) failed")
	}
	if _, err := ParseSize("huge"); err == nil {
		t.Error("ParseSize(huge) should fail")
	}
	if Small.String() != "small" || Large.String() != "large" {
		t.Error("Size.String wrong")
	}
}

func TestEveryBenchmarkRunsTiny(t *testing.T) {
	for _, b := range Benchmarks() {
		info := b.Info()
		b.Prepare(Small, 7)
		stats := b.Run(2)
		if stats.Counters.Total() == 0 {
			t.Errorf("%s: no operations counted", info.Name)
		}
		if stats.TaskStats == nil || stats.TaskStats.Count() == 0 {
			t.Errorf("%s: no task stats", info.Name)
		}
		if stats.Elapsed <= 0 {
			t.Errorf("%s: no elapsed time", info.Name)
		}
		if len(stats.Extra) == 0 {
			t.Errorf("%s: no extra metrics", info.Name)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "T", Columns: []string{"a", "bb"}}
	tab.AddRow("x", 1.5)
	tab.AddRow("longer", 1e9)
	tab.Notes = append(tab.Notes, "a note")
	s := tab.String()
	if !strings.Contains(s, "T\n") || !strings.Contains(s, "longer") ||
		!strings.Contains(s, "note: a note") {
		t.Errorf("rendered table missing pieces:\n%s", s)
	}
}

func TestStaticTables(t *testing.T) {
	t1 := TableI()
	if len(t1.Rows) < 5 {
		t.Error("Table I too short")
	}
	t2 := TableII()
	if len(t2.Rows) != 12 {
		t.Errorf("Table II has %d rows, want 12", len(t2.Rows))
	}
}

func TestGPUTablesMatchPaperShape(t *testing.T) {
	gs := RunGPUKernels(7)
	if len(gs) != 2 {
		t.Fatal("want two GPU kernels")
	}
	a, n := gs[0], gs[1]
	if a.Name != "abea" || n.Name != "nn-base" {
		t.Fatal("unexpected kernel order")
	}
	// Paper Table IV orderings.
	if a.Metrics.WarpEfficiency() >= n.Metrics.WarpEfficiency() {
		t.Error("abea warp efficiency should be below nn-base")
	}
	if a.Occupancy >= n.Occupancy {
		t.Error("abea occupancy should be below nn-base")
	}
	if a.SMUtil >= n.SMUtil {
		t.Error("abea SM utilization should be below nn-base")
	}
	// Paper Table V orderings.
	if a.Metrics.GlobalLoadEfficiency() >= n.Metrics.GlobalLoadEfficiency() {
		t.Error("abea load efficiency should be below nn-base")
	}
	if n.Metrics.GlobalStoreEfficiency() != 1 {
		t.Error("nn-base store efficiency should be 1")
	}
}

func TestMemoryProfilesShape(t *testing.T) {
	profiles := MemoryProfiles(7)
	if len(profiles) != 12 {
		t.Fatalf("got %d profiles", len(profiles))
	}
	byName := map[string]MemProfile{}
	for _, p := range profiles {
		byName[p.Name] = p
	}
	// The paper's headline memory results: kmer-cnt and fmi dominate
	// BPKI and stall fraction; phmm is essentially traffic-free.
	if byName["kmer-cnt"].Report.BPKI <= byName["fmi"].Report.BPKI {
		t.Error("kmer-cnt BPKI should exceed fmi")
	}
	for _, other := range []string{"bsw", "phmm", "chain", "spoa", "abea", "grm"} {
		if byName[other].Report.BPKI >= byName["fmi"].Report.BPKI {
			t.Errorf("%s BPKI %.1f should be below fmi %.1f",
				other, byName[other].Report.BPKI, byName["fmi"].Report.BPKI)
		}
	}
	if byName["phmm"].Report.BPKI > 1 {
		t.Errorf("phmm BPKI %.2f should be ~0", byName["phmm"].Report.BPKI)
	}
	if s := byName["kmer-cnt"].Report.StallFraction; s < 0.5 || s > 0.9 {
		t.Errorf("kmer-cnt stall %.2f outside the paper's ~0.69 region", s)
	}
	if s := byName["fmi"].Report.StallFraction; s < 0.3 || s > 0.6 {
		t.Errorf("fmi stall %.2f outside the paper's ~0.42 region", s)
	}
	// Top-down: compute kernels retire most slots.
	for _, k := range []string{"bsw", "chain", "phmm", "grm"} {
		if r := byName[k].TopDown.Retiring; r < 0.5 {
			t.Errorf("%s retiring %.2f, want > 0.5", k, r)
		}
	}
	if r := byName["kmer-cnt"].TopDown.BackendMemory; r < 0.5 {
		t.Errorf("kmer-cnt backend-memory %.2f, want > 0.5", r)
	}
	// Memoization: second call returns identical data.
	again := MemoryProfiles(7)
	if again[0].Report != profiles[0].Report {
		t.Error("MemoryProfiles not memoized deterministically")
	}
}

func TestVectorWasteShowsOverhead(t *testing.T) {
	tab := VectorWaste(7)
	if len(tab.Rows) != 3 {
		t.Fatalf("vector waste table has %d rows", len(tab.Rows))
	}
	overhead := tab.Rows[2][1]
	if !strings.HasSuffix(overhead, "x") {
		t.Fatalf("overhead cell %q", overhead)
	}
	if overhead < "1.1" { // string compare adequate for #.##x format
		t.Errorf("overhead %s should exceed 1.1x", overhead)
	}
}

func TestFig4IrregularOnly(t *testing.T) {
	tab := Fig4(Small, 7)
	if len(tab.Rows) != 8 {
		t.Errorf("Fig4 has %d rows, want 8 irregular kernels", len(tab.Rows))
	}
}

func TestFig7ProfilesComplete(t *testing.T) {
	tab, profiles := Fig7(Small, 7, []int{1, 8})
	if len(profiles) != 12 {
		t.Fatalf("got %d scaling profiles", len(profiles))
	}
	if len(tab.Rows) != 12 {
		t.Fatalf("Fig7 table has %d rows", len(tab.Rows))
	}
	byName := map[string]ScalingProfile{}
	for _, p := range profiles {
		byName[p.Name] = p
	}
	// The model must cap kmer-cnt below the near-perfect kernels.
	k := byName["kmer-cnt"].Modeled[1]
	b := byName["bsw"].Modeled[1]
	if k >= b {
		t.Errorf("modeled kmer-cnt speedup %.2f should be below bsw %.2f", k, b)
	}
}

func TestCacheSweepShape(t *testing.T) {
	points := CacheSweep(7, []string{"fmi", "spoa"}, []int{2 << 20, 32 << 20})
	if len(points) != 4 {
		t.Fatalf("got %d sweep points", len(points))
	}
	get := func(name string, size int) cachesim.Report {
		for _, p := range points {
			if p.Name == name && p.LLCSize == size {
				return p.Report
			}
		}
		t.Fatalf("missing point %s/%d", name, size)
		return cachesim.Report{}
	}
	// fmi's 10 GB working set: BPKI nearly flat across LLC sizes.
	fmiSmall := get("fmi", 2<<20).BPKI
	fmiBig := get("fmi", 32<<20).BPKI
	if fmiBig <= 0 {
		t.Fatal("fmi BPKI zero")
	}
	if ratio := fmiSmall / fmiBig; ratio > 4 {
		t.Errorf("fmi BPKI collapsed with LLC growth (ratio %.1f)", ratio)
	}
	// spoa's per-window buffers fit a big LLC: BPKI must fall.
	spoaSmall := get("spoa", 2<<20).BPKI
	spoaBig := get("spoa", 32<<20).BPKI
	if spoaBig >= spoaSmall {
		t.Errorf("spoa BPKI did not fall with LLC growth: %.2f -> %.2f", spoaSmall, spoaBig)
	}
}

func TestCacheSweepTableRenders(t *testing.T) {
	tab := CacheSweepTable(7)
	if len(tab.Rows) != 3 {
		t.Fatalf("sweep table has %d rows", len(tab.Rows))
	}
}

func TestDatasetDeterminism(t *testing.T) {
	// Same (size, seed) must produce byte-identical work: the suite's
	// reproducibility guarantee.
	for _, b := range Benchmarks() {
		info := b.Info()
		b.Prepare(Small, 99)
		first := b.Run(1)
		b.Prepare(Small, 99)
		second := b.Run(1)
		b.Release()
		if first.Counters != second.Counters {
			t.Errorf("%s: counters differ across identical Prepare/Run", info.Name)
		}
		for k, v := range first.Extra {
			if second.Extra[k] != v {
				t.Errorf("%s: extra[%s] %v != %v", info.Name, k, v, second.Extra[k])
			}
		}
	}
}
