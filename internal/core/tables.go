package core

import (
	"fmt"
	"strings"
)

// Table is a rendered text table: a title, column headers and rows.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends one row, stringifying cells with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case float32:
			row[i] = formatFloat(float64(v))
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case v == 0:
		return "0"
	case av >= 1e6 || av < 1e-3:
		return fmt.Sprintf("%.3g", v)
	case av >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// String renders the table with aligned columns. Widths count runes,
// not bytes, so sparkline cells align.
func (t *Table) String() string {
	runeLen := func(s string) int { return len([]rune(s)) }
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = runeLen(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && runeLen(cell) > widths[i] {
				widths[i] = runeLen(cell)
			}
		}
	}
	var b strings.Builder
	b.WriteString(t.Title)
	b.WriteByte('\n')
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			for p := runeLen(cell); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		b.WriteString("note: ")
		b.WriteString(n)
		b.WriteByte('\n')
	}
	return b.String()
}
