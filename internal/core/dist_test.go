package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/shard"
)

// testFabric starts a coordinator with test-scale failure detectors
// and n in-process workers named w1..wn, each armed with its own fault
// plan (specs[i] may be empty).
func testFabric(t *testing.T, ctx context.Context, n int, specs map[string]string) *shard.Coordinator {
	t.Helper()
	coord := shard.NewCoordinator(shard.Options{
		Lease:          400 * time.Millisecond,
		HeartbeatGrace: 400 * time.Millisecond,
		Sweep:          10 * time.Millisecond,
		MaxAttempts:    10,
		HedgeAge:       30 * time.Millisecond,
		HedgeQuantile:  0.9,
		HedgeFactor:    3,
		NoWorkerGrace:  10 * time.Second,
	})
	if err := coord.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	t.Cleanup(coord.Close)
	for i := 1; i <= n; i++ {
		id := fmt.Sprintf("w%d", i)
		var plan *faultinject.Plan
		if spec := specs[id]; spec != "" {
			var err error
			plan, err = faultinject.Parse(spec, int64(i))
			if err != nil {
				t.Fatalf("plan %q: %v", spec, err)
			}
		}
		go func() {
			// Killed workers are respawned under the same ID, like a
			// process supervisor would — but only a few times, so a
			// kill-probability-1 worker cannot single-handedly burn a
			// shard's whole dispatch-attempt budget while the healthy
			// workers are busy. Clean shutdown ends the loop.
			for respawns := 0; ctx.Err() == nil && respawns < 4; respawns++ {
				err := shard.RunWorker(ctx, shard.WorkerOptions{
					ID: id, Addr: coord.Addr(), Plan: plan,
					Heartbeat: 80 * time.Millisecond, PullDelay: 2 * time.Millisecond,
				})
				if err == nil || !errors.Is(err, shard.ErrKilled) {
					return
				}
				select {
				case <-ctx.Done():
					return
				case <-time.After(20 * time.Millisecond):
				}
			}
		}()
	}
	if err := coord.WaitForWorkers(ctx, n); err != nil {
		t.Fatalf("workers: %v", err)
	}
	return coord
}

// TestDistributedChainMatchesLocal is the fabric's core differential
// guarantee on a real kernel, without faults: a multi-worker run's
// digest vector is bit-identical to the single-process execution.
func TestDistributedChainMatchesLocal(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	coord := testFabric(t, ctx, 3, nil)

	local, localOps, err := LocalDigests(ctx, "chain", "small", 42)
	if err != nil {
		t.Fatalf("local: %v", err)
	}
	res, err := coord.RunJob(ctx, shard.JobSpec{
		ID: coord.NextJobID(), Kernel: "chain", Size: "small", Seed: 42,
		NumTasks: len(local), NumShards: 12,
	})
	if err != nil {
		t.Fatalf("RunJob: %v", err)
	}
	for i := range local {
		if res.Digests[i] != local[i] {
			t.Fatalf("task %d digest diverged: dist=%x local=%x", i, res.Digests[i], local[i])
		}
	}
	if res.Ops != localOps {
		t.Fatalf("ops diverged: dist=%d local=%d", res.Ops, localOps)
	}
}

// TestDistributedSuiteUnderChaosBitIdentical is the end-to-end chaos
// differential: a RunSuite over the fabric with one worker being
// killed (and respawned), one stalling every shard, and one dropping
// its connection after computing, must (a) recover — nonzero
// rescheduled counters — and (b) produce results bit-identical to the
// in-process run, which Verify asserts per kernel and the fingerprint
// comparison asserts across runs.
func TestDistributedSuiteUnderChaosBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos differential skipped in -short mode")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	run := func(specs map[string]string) ([]KernelOutcome, *obs.Observer) {
		coord := testFabric(t, ctx, 3, specs)
		observer := obs.NewObserver()
		benches := mustBenches(t, "chain", "spoa")
		outcomes := RunSuite(ctx, benches, SuiteConfig{
			Size: Small, Seed: 42, Threads: 1,
			Policy: PolicyFor(Small),
			Obs:    observer,
			Dist:   &DistConfig{Fabric: coord, Shards: 12, Verify: true},
		})
		coord.Close()
		return outcomes, observer
	}

	clean, _ := run(nil)
	chaotic, observer := run(map[string]string{
		"w1": "killworker:w1:1",       // dies on its first shard, forever (respawned each time)
		"w2": "slowshard:w2:250ms",    // straggles into the hedging path
		"w3": "dropconn:w3:0.4",       // loses computed results to partitions
	})

	for i := range chaotic {
		name := chaotic[i].Info.Name
		if chaotic[i].Status != StatusOK {
			t.Fatalf("%s under chaos: %s: %v", name, chaotic[i].Status, chaotic[i].Err)
		}
		if !chaotic[i].Distributed() {
			t.Fatalf("%s did not run on the fabric", name)
		}
		// Verify=true already proved each run bit-identical to local;
		// the fingerprints must therefore agree across runs too.
		if chaotic[i].Fingerprint != clean[i].Fingerprint {
			t.Fatalf("%s fingerprint diverged: chaos=%016x clean=%016x",
				name, chaotic[i].Fingerprint, clean[i].Fingerprint)
		}
	}

	var resched, lost uint64
	for i := range chaotic {
		s := chaotic[i].Shard
		resched += s.Rescheduled
		lost += s.Lost
	}
	if resched == 0 {
		t.Fatalf("chaos run rescheduled nothing; w1 deaths should force reschedules")
	}
	if lost == 0 {
		t.Fatalf("chaos run lost nothing; killed workers should lose shards")
	}

	// The same counters must surface through the obs registry (they are
	// what the NDJSON export and the CI chaos smoke assert on).
	var counterResched float64
	for _, m := range observer.Metrics.Snapshot() {
		if m.Name == "shard.rescheduled" {
			counterResched += m.Value
		}
	}
	if counterResched == 0 {
		t.Fatalf("obs counter shard.rescheduled is zero despite %d reschedules", resched)
	}
}

// TestDistributedSuiteFallsBackForUnshardedKernels checks graceful
// degradation in the other direction: kernels without executors run
// in-process even when a fabric is attached, and still succeed.
func TestDistributedSuiteFallsBackForUnshardedKernels(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	coord := testFabric(t, ctx, 1, nil)
	benches := mustBenches(t, "kmer-cnt", "chain") // kmer-cnt has no executor
	outcomes := RunSuite(ctx, benches, SuiteConfig{
		Size: Small, Seed: 42, Threads: 1,
		Policy: PolicyFor(Small),
		Dist:   &DistConfig{Fabric: coord, Shards: 6},
	})
	if len(outcomes) != 2 {
		t.Fatalf("got %d outcomes", len(outcomes))
	}
	for i := range outcomes {
		if outcomes[i].Status != StatusOK {
			t.Fatalf("%s: %s: %v", outcomes[i].Info.Name, outcomes[i].Status, outcomes[i].Err)
		}
	}
	if outcomes[0].Distributed() {
		t.Fatal("kmer-cnt claims to have run distributed without an executor")
	}
	if !outcomes[1].Distributed() {
		t.Fatal("chain did not run on the fabric")
	}
}

// TestDistributedJobFailureDegradesGracefully: when the fabric cannot
// finish a kernel (worker pool gone, attempts exhausted), the kernel
// is reported failed and the remaining kernels still run in order.
func TestDistributedJobFailureDegradesGracefully(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	coord := shard.NewCoordinator(shard.Options{
		Sweep:         10 * time.Millisecond,
		NoWorkerGrace: 200 * time.Millisecond, // no workers will ever join
	})
	if err := coord.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)

	benches := mustBenches(t, "chain", "kmer-cnt")
	outcomes := RunSuite(ctx, benches, SuiteConfig{
		Size: Small, Seed: 42, Threads: 1,
		Policy: PolicyFor(Small),
		Dist:   &DistConfig{Fabric: coord, Shards: 4},
	})
	if outcomes[0].Status != StatusFailed {
		t.Fatalf("chain = %s, want failed (starved fabric)", outcomes[0].Status)
	}
	if !errors.Is(outcomes[0].Err, shard.ErrNoWorkers) {
		t.Fatalf("chain err = %v, want ErrNoWorkers", outcomes[0].Err)
	}
	if outcomes[1].Status != StatusOK {
		t.Fatalf("kmer-cnt = %s, want ok after earlier dist failure", outcomes[1].Status)
	}
}

func mustBenches(t *testing.T, names ...string) []Benchmark {
	t.Helper()
	benches := make([]Benchmark, 0, len(names))
	for _, n := range names {
		b, err := ByName(n)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		benches = append(benches, b)
	}
	return benches
}
