package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/faultinject"
	"repro/internal/resilience"
)

// Status classifies a kernel's suite outcome.
type Status int

// Kernel outcome states.
const (
	StatusOK       Status = iota
	StatusFailed          // panicked or returned an error on every attempt
	StatusTimedOut        // last attempt exceeded the per-attempt deadline
	StatusSkipped         // suite was cancelled before the kernel ran
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusFailed:
		return "failed"
	case StatusTimedOut:
		return "timeout"
	case StatusSkipped:
		return "skipped"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// KernelOutcome is one kernel's result in a resilient suite run:
// either Stats (StatusOK) or Err explaining the failure.
type KernelOutcome struct {
	Info     Info
	Status   Status
	Stats    RunStats
	Err      error // *resilience.KernelError unless skipped
	Attempts int
}

// Failed reports whether the kernel did not complete successfully.
func (o *KernelOutcome) Failed() bool { return o.Status != StatusOK }

// SuiteConfig parameterizes RunSuite.
type SuiteConfig struct {
	Size    Size
	Seed    int64
	Threads int
	Policy  resilience.Policy
	// Progress, when non-nil, receives one line per kernel transition
	// (started, retried, failed); the driver points it at stderr so
	// the stdout report table stays clean.
	Progress func(format string, args ...any)
}

// PolicyFor returns the per-attempt retry/timeout policy matched to a
// dataset size: small inputs finish in seconds, so a stuck kernel is
// cut off quickly; large inputs get proportionally more headroom.
func PolicyFor(size Size) resilience.Policy {
	p := resilience.Default()
	if size == Large {
		p.Timeout = 20 * time.Minute
	} else {
		p.Timeout = 4 * time.Minute
	}
	return p
}

// RunSuite executes the kernels in order under the resilience policy,
// degrading gracefully: a kernel that panics, errors, or times out is
// recorded as a failed outcome (with the typed error, including the
// panic stack) and the remaining kernels still run. Cancelling ctx
// stops the suite; kernels not yet started are marked skipped. The
// fault-injection label tracks the running kernel so an armed plan
// targets sites by kernel name.
func RunSuite(ctx context.Context, benches []Benchmark, cfg SuiteConfig) []KernelOutcome {
	progress := cfg.Progress
	if progress == nil {
		progress = func(string, ...any) {}
	}
	outcomes := make([]KernelOutcome, 0, len(benches))
	for _, b := range benches {
		info := b.Info()
		out := KernelOutcome{Info: info, Status: StatusOK}
		if ctx.Err() != nil {
			out.Status = StatusSkipped
			out.Err = ctx.Err()
			outcomes = append(outcomes, out)
			continue
		}
		progress("%s: running", info.Name)
		faultinject.SetLabel(info.Name)
		// Prepare runs inside the resilience envelope so a panic while
		// building the dataset is isolated like a kernel panic; the
		// prepared flag keeps retries from rebuilding it needlessly.
		prepared := false
		var stats RunStats
		attempt := 0
		err := resilience.Run(ctx, info.Name, cfg.Policy, func(actx context.Context) error {
			attempt++
			if attempt > 1 {
				progress("%s: retrying (attempt %d)", info.Name, attempt)
			}
			if !prepared {
				b.Prepare(cfg.Size, cfg.Seed)
				prepared = true
			}
			s, err := b.RunCtx(actx, cfg.Threads)
			if err == nil {
				stats = s
			}
			return err
		})
		faultinject.ClearLabel()
		b.Release()
		if err != nil {
			var ke *resilience.KernelError
			if errors.As(err, &ke) {
				out.Attempts = ke.Attempts
				if ke.TimedOut {
					out.Status = StatusTimedOut
				} else {
					out.Status = StatusFailed
				}
			} else {
				out.Status = StatusFailed
			}
			out.Err = err
			progress("%s: %s after %d attempt(s): %v", info.Name, out.Status, out.Attempts, err)
		} else {
			out.Stats = stats
			out.Attempts = attempt
			progress("%s: ok in %s", info.Name, stats.Elapsed.Round(time.Millisecond))
		}
		outcomes = append(outcomes, out)
	}
	return outcomes
}

// FailedOutcomes filters the failures (anything not StatusOK) from a
// suite run, for exit-code decisions and failure summaries.
func FailedOutcomes(outcomes []KernelOutcome) []KernelOutcome {
	var failed []KernelOutcome
	for _, o := range outcomes {
		if o.Failed() {
			failed = append(failed, o)
		}
	}
	return failed
}
