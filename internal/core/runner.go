package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/scratch"
	"repro/internal/shard"
)

// Status classifies a kernel's suite outcome.
type Status int

// Kernel outcome states.
const (
	StatusOK       Status = iota
	StatusFailed          // panicked or returned an error on every attempt
	StatusTimedOut        // last attempt exceeded the per-attempt deadline
	StatusSkipped         // suite was cancelled before the kernel ran
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusFailed:
		return "failed"
	case StatusTimedOut:
		return "timeout"
	case StatusSkipped:
		return "skipped"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// KernelOutcome is one kernel's result in a resilient suite run:
// either Stats (StatusOK) or Err explaining the failure. Kernels that
// ran on the shard fabric additionally carry the shard lifecycle
// summary and the digest-vector fingerprint.
type KernelOutcome struct {
	Info     Info
	Status   Status
	Stats    RunStats
	Err      error // *resilience.KernelError unless skipped
	Attempts int
	// Shard is non-nil when the kernel ran distributed; it is the
	// coordinator's lifecycle accounting for the job.
	Shard *shard.Summary
	// Fingerprint folds the distributed run's per-task digest vector;
	// two runs of the same (kernel, size, seed) must match.
	Fingerprint uint64
}

// Distributed reports whether the kernel ran on the shard fabric.
func (o *KernelOutcome) Distributed() bool { return o.Shard != nil }

// Failed reports whether the kernel did not complete successfully.
func (o *KernelOutcome) Failed() bool { return o.Status != StatusOK }

// SuiteConfig parameterizes RunSuite.
type SuiteConfig struct {
	Size    Size
	Seed    int64
	Threads int
	Policy  resilience.Policy
	// Progress, when non-nil, receives one line per kernel transition
	// (started, retried, failed); the driver points it at stderr so
	// the stdout report table stays clean.
	Progress func(format string, args ...any)
	// Obs, when non-nil, receives the run's metrics, spans, and
	// runtime-sampler labels. RunSuite installs it into the context it
	// hands kernels, so the scheduler (parallel) and supervisor
	// (resilience) layers record into it too.
	Obs *obs.Observer
	// Dist, when non-nil, routes shardable kernels over the
	// fault-tolerant fabric; the rest fall back to the in-process path.
	Dist *DistConfig
}

// PolicyFor returns the per-attempt retry/timeout policy matched to a
// dataset size: small inputs finish in seconds, so a stuck kernel is
// cut off quickly; large inputs get proportionally more headroom.
func PolicyFor(size Size) resilience.Policy {
	p := resilience.Default()
	if size == Large {
		p.Timeout = 20 * time.Minute
	} else {
		p.Timeout = 4 * time.Minute
	}
	return p
}

// RunSuite executes the kernels in order under the resilience policy,
// degrading gracefully: a kernel that panics, errors, or times out is
// recorded as a failed outcome (with the typed error, including the
// panic stack) and the remaining kernels still run. Cancelling ctx
// stops the suite; kernels not yet started are marked skipped. The
// fault-injection label tracks the running kernel so an armed plan
// targets sites by kernel name.
func RunSuite(ctx context.Context, benches []Benchmark, cfg SuiteConfig) []KernelOutcome {
	progress := cfg.Progress
	if progress == nil {
		progress = func(string, ...any) {}
	}
	o := cfg.Obs // may be nil; every obs call below degrades to a no-op
	ctx = obs.With(ctx, o)
	sctx, suiteSpan := o.StartSpan(ctx, "suite")
	outcomes := make([]KernelOutcome, 0, len(benches))
	for _, b := range benches {
		info := b.Info()
		out := KernelOutcome{Info: info, Status: StatusOK}
		if ctx.Err() != nil {
			out.Status = StatusSkipped
			out.Err = ctx.Err()
			_, span := o.StartSpan(sctx, "kernel:"+info.Name)
			span.EndStatus(StatusSkipped.String())
			o.Counter("suite.kernels", info.Name).Inc()
			o.Counter("suite.kernels_"+StatusSkipped.String(), info.Name).Inc()
			outcomes = append(outcomes, out)
			continue
		}
		progress("%s: running", info.Name)
		faultinject.SetLabel(info.Name)
		o.SetLabel(info.Name)
		kctx, kernelSpan := o.StartSpan(obs.WithLabel(sctx, info.Name), "kernel:"+info.Name)
		// Shardable kernels route over the fabric when one is attached;
		// a failed job (attempts exhausted, worker pool starved) degrades
		// to a failed outcome exactly like an in-process kernel failure,
		// and the remaining kernels still run.
		if cfg.Dist.Distributed(info.Name) {
			out = runDistKernel(kctx, info, cfg, progress)
			faultinject.ClearLabel()
			o.SetLabel("")
			o.Counter("suite.kernels", info.Name).Inc()
			if out.Failed() {
				kernelSpan.EndStatus(out.Status.String())
				progress("%s: %s (distributed): %v", info.Name, out.Status, out.Err)
			} else {
				kernelSpan.End(nil)
				recordKernelMetrics(o, info.Name, &out.Stats)
				progress("%s: ok in %s (distributed: %d shards, %d rescheduled, %d hedged)",
					info.Name, out.Stats.Elapsed.Round(time.Millisecond),
					out.Shard.Shards, out.Shard.Rescheduled, out.Shard.Hedged)
			}
			o.Counter("suite.kernels_"+out.Status.String(), info.Name).Inc()
			outcomes = append(outcomes, out)
			continue
		}
		// One scratch pool per kernel, installed OUTSIDE the resilience
		// envelope: a retried attempt draws the same per-worker arenas
		// its predecessor grew, so retries skip the cold-heap band and
		// table allocations. Scoped per kernel (not per suite) so one
		// kernel's peak scratch is released before the next runs.
		kctx = scratch.WithPool(kctx, scratch.NewPool())
		// Prepare runs inside the resilience envelope so a panic while
		// building the dataset is isolated like a kernel panic; the
		// prepared flag keeps retries from rebuilding it needlessly.
		prepared := false
		var stats RunStats
		attempt := 0
		err := resilience.Run(kctx, info.Name, cfg.Policy, func(actx context.Context) error {
			attempt++
			if attempt > 1 {
				progress("%s: retrying (attempt %d)", info.Name, attempt)
			}
			actx, attemptSpan := o.StartSpan(actx, fmt.Sprintf("attempt-%d", attempt))
			defer func() { attemptSpan.End(nil) }()
			if !prepared {
				_, prepSpan := o.StartSpan(actx, "prepare")
				b.Prepare(cfg.Size, cfg.Seed)
				prepSpan.End(nil)
				prepared = true
			}
			rctx, runSpan := o.StartSpan(actx, "run")
			s, err := b.RunCtx(rctx, cfg.Threads)
			runSpan.End(err)
			if err == nil {
				stats = s
			}
			return err
		})
		faultinject.ClearLabel()
		o.SetLabel("")
		b.Release()
		o.Counter("suite.kernels", info.Name).Inc()
		if err != nil {
			var ke *resilience.KernelError
			if errors.As(err, &ke) {
				out.Attempts = ke.Attempts
				if ke.TimedOut {
					out.Status = StatusTimedOut
				} else {
					out.Status = StatusFailed
				}
			} else {
				out.Status = StatusFailed
			}
			out.Err = err
			kernelSpan.EndStatus(out.Status.String())
			progress("%s: %s after %d attempt(s): %v", info.Name, out.Status, out.Attempts, err)
		} else {
			out.Stats = stats
			out.Attempts = attempt
			kernelSpan.End(nil)
			recordKernelMetrics(o, info.Name, &stats)
			progress("%s: ok in %s", info.Name, stats.Elapsed.Round(time.Millisecond))
		}
		o.Counter("suite.kernels_"+out.Status.String(), info.Name).Inc()
		outcomes = append(outcomes, out)
	}
	suiteSpan.End(ctx.Err())
	return outcomes
}

// recordKernelMetrics publishes one successful kernel execution's
// headline numbers into the registry: elapsed time (histogram, so
// repeated runs aggregate), op and task totals, and the task-work
// imbalance ratio that backs the paper's Figure 4.
func recordKernelMetrics(o *obs.Observer, kernel string, stats *RunStats) {
	if o == nil {
		return
	}
	o.Histogram("kernel.elapsed_ns", kernel, "ns").Observe(float64(stats.Elapsed.Nanoseconds()))
	o.Counter("kernel.ops", kernel).Add(stats.Counters.Total())
	if stats.TaskStats != nil {
		s := stats.TaskStats.Summarize()
		o.Counter("kernel.tasks", kernel).Add(uint64(s.Count))
		o.Gauge("kernel.task_work_max_to_mean", kernel).Set(s.MaxToMean)
	}
	for k, v := range stats.Extra {
		o.Gauge("kernel.extra."+k, kernel).Set(v)
	}
}

// FailedOutcomes filters the failures (anything not StatusOK) from a
// suite run, for exit-code decisions and failure summaries.
func FailedOutcomes(outcomes []KernelOutcome) []KernelOutcome {
	var failed []KernelOutcome
	for _, o := range outcomes {
		if o.Failed() {
			failed = append(failed, o)
		}
	}
	return failed
}
