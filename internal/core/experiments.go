package core

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/abea"
	"repro/internal/bsw"
	"repro/internal/cachesim"
	"repro/internal/genome"
	"repro/internal/nnbase"
	"repro/internal/parallel"
	"repro/internal/perf"
	"repro/internal/signalsim"
	"repro/internal/simt"
)

// This file regenerates the paper's evaluation tables and figures.
// Each generator returns a Table whose rows correspond to the paper's
// rows/series; EXPERIMENTS.md records paper-vs-measured values.

// TableI renders the baseline machine configuration the cache
// simulator models (the paper's Xeon E3-1240 v5).
func TableI() *Table {
	cfg := cachesim.XeonE31240v5()
	t := &Table{
		Title:   "Table I: Baseline system configuration (simulated)",
		Columns: []string{"component", "value"},
	}
	t.AddRow("CPU", "Intel Xeon E3-1240 v5, 3.5 GHz, AVX2, 1 socket, 8 threads (modelled)")
	t.AddRow("L1D cache", fmt.Sprintf("%d KB, %d-way, %d B lines", cfg.L1Size>>10, cfg.L1Ways, cfg.LineSize))
	t.AddRow("L2 cache", fmt.Sprintf("%d KB, %d-way", cfg.L2Size>>10, cfg.L2Ways))
	t.AddRow("LLC", fmt.Sprintf("%d MB, %d-way", cfg.LLCSize>>20, cfg.LLCWays))
	t.AddRow("Memory bandwidth", "31.79 GB/s (scaling model)")
	t.AddRow("GPU (Tables IV/V)", "Nvidia Titan Xp, 30 SMs, 12 GB (SIMT model)")
	return t
}

// TableII renders the benchmark overview with parallelism motifs.
func TableII() *Table {
	t := &Table{
		Title:   "Table II: Benchmark overview and parallelism motifs",
		Columns: []string{"benchmark", "tool", "pipeline", "motif", "compute"},
	}
	for _, b := range Benchmarks() {
		info := b.Info()
		compute := "regular"
		if info.Irregular {
			compute = "irregular"
		}
		t.AddRow(info.Name, info.Tool, info.Pipeline, info.Motif, compute)
	}
	return t
}

// TableIII renders the parallelism granularity of the irregular
// kernels together with measured per-task work.
func TableIII(size Size, seed int64) *Table {
	t := &Table{
		Title:   "Table III: Parallelism granularity and data-parallel computation (irregular kernels)",
		Columns: []string{"benchmark", "granularity", "work unit", "tasks", "mean work/task"},
	}
	for _, b := range Benchmarks() {
		info := b.Info()
		if !info.Irregular {
			continue
		}
		b.Prepare(size, seed)
		stats := b.Run(1)
		b.Release()
		s := stats.TaskStats.Summarize()
		t.AddRow(info.Name, info.Granularity, info.WorkUnit, s.Count, s.Mean)
	}
	return t
}

// GPUStats bundles one GPU kernel's SIMT metrics.
type GPUStats struct {
	Name      string
	Metrics   *simt.Metrics
	Occupancy float64
	SMUtil    float64
}

// RunGPUKernels executes the SIMT models of abea and nn-base.
func RunGPUKernels(seed int64) []GPUStats {
	dev := simt.TitanXp()
	rng := rand.New(rand.NewSource(seed))

	pore := signalsim.NewPoreModel()
	src := genome.NewReference(rng, "chr", 30_000, 0.1)
	reads := signalsim.SimulateReads(rng, pore, src.Seq, 3, 200, 500, signalsim.DefaultConfig())
	am, alaunch := abea.RunGPU(pore, reads, abea.DefaultConfig(), dev)
	aOcc := dev.Occupancy(alaunch)

	ncfg := nnbase.DefaultConfig()
	nmodel := nnbase.NewModel(seed, ncfg)
	nm, nlaunch := nnbase.RunGPU(nmodel, ncfg, 4, dev)
	nOcc := dev.Occupancy(nlaunch)

	return []GPUStats{
		{Name: "abea", Metrics: am, Occupancy: aOcc, SMUtil: am.SMUtilization(dev, aOcc)},
		{Name: "nn-base", Metrics: nm, Occupancy: nOcc, SMUtil: nm.SMUtilization(dev, nOcc)},
	}
}

// TableIV renders GPU control-flow and compute regularity.
func TableIV(seed int64) *Table {
	t := &Table{
		Title:   "Table IV: GPU kernel control flow and compute regularity",
		Columns: []string{"metric", "abea", "nn-base"},
	}
	gs := RunGPUKernels(seed)
	a, n := gs[0], gs[1]
	pct := func(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }
	t.AddRow("Branch efficiency", pct(a.Metrics.BranchEfficiency()), pct(n.Metrics.BranchEfficiency()))
	t.AddRow("Warp efficiency", pct(a.Metrics.WarpEfficiency()), pct(n.Metrics.WarpEfficiency()))
	t.AddRow("Non-predicated warp efficiency", pct(a.Metrics.NonPredicatedWarpEfficiency()), pct(n.Metrics.NonPredicatedWarpEfficiency()))
	t.AddRow("SM utilization", pct(a.SMUtil), pct(n.SMUtil))
	t.AddRow("Occupancy", pct(a.Occupancy), pct(n.Occupancy))
	t.Notes = append(t.Notes, "paper: branch 100/100, warp 75.09/100, non-pred 70.18/94.43, SM 70.53/99.83, occ 31.41/88.47")
	return t
}

// TableV renders GPU global memory efficiency.
func TableV(seed int64) *Table {
	t := &Table{
		Title:   "Table V: Useful proportion of GPU global memory bandwidth",
		Columns: []string{"metric", "abea", "nn-base"},
	}
	gs := RunGPUKernels(seed)
	a, n := gs[0], gs[1]
	pct := func(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
	t.AddRow("Global load efficiency", pct(a.Metrics.GlobalLoadEfficiency()), pct(n.Metrics.GlobalLoadEfficiency()))
	t.AddRow("Global store efficiency", pct(a.Metrics.GlobalStoreEfficiency()), pct(n.Metrics.GlobalStoreEfficiency()))
	t.Notes = append(t.Notes, "paper: load 25.5/70.3, store 68.5/100")
	return t
}

// VectorWaste reproduces the Section IV-B observation that the
// inter-sequence vectorized bsw performs ~2.2x more cell updates than
// the scalar version.
func VectorWaste(seed int64) *Table {
	rng := rand.New(rand.NewSource(seed))
	ref := genome.NewReference(rng, "chr", 100_000, 0.1)
	// Seed-extension workload: seeds matched exactly, but most
	// extensions run into divergent sequence (repeat edges, chimeric
	// candidates) at some breakpoint and z-drop there. Sorting by
	// length (as BWA-MEM2 does) cannot equalize *content*, which is
	// exactly the paper's point.
	var pairs []bsw.Pair
	for i := 0; i < 512; i++ {
		qLen := 150 + rng.Intn(60)
		start := rng.Intn(len(ref.Seq) - qLen - 60)
		q := ref.Seq[start : start+qLen].Clone()
		tg := ref.Seq[start : start+qLen+40].Clone()
		if rng.Float64() < 0.9 {
			// Divergence from a breakpoint onward; homology usually
			// ends close to the seed, so breakpoints skew early.
			u := rng.Float64()
			bp := int(u * u * float64(qLen))
			copy(tg[bp:], genome.Random(rng, len(tg)-bp))
		} else {
			for m := 0; m < qLen/30; m++ {
				tg[rng.Intn(len(tg))] = genome.Base(rng.Intn(4))
			}
		}
		pairs = append(pairs, bsw.Pair{Query: q, Target: tg})
	}
	// Sort by query length, as BWA-MEM2 does before lane assignment.
	sortPairsByLen(pairs)
	p := bsw.DefaultParams()
	p.Band = 40
	p.ZDrop = 30
	_, stats := bsw.AlignBatch(pairs, p, 16)
	t := &Table{
		Title:   "Section IV-B: inter-sequence vectorization overhead (bsw)",
		Columns: []string{"metric", "value"},
	}
	t.AddRow("scalar cell updates", stats.UsefulCells)
	t.AddRow("16-lane issued cell slots", stats.IssuedCells)
	t.AddRow("overhead (issued/useful)", fmt.Sprintf("%.2fx", stats.Overhead()))
	t.Notes = append(t.Notes, "paper: AVX2 16-bit inter-sequence bsw performs 2.2x more cell updates than scalar")
	return t
}

func sortPairsByLen(pairs []bsw.Pair) {
	for i := 1; i < len(pairs); i++ {
		for j := i; j > 0 && len(pairs[j].Query) < len(pairs[j-1].Query); j-- {
			pairs[j], pairs[j-1] = pairs[j-1], pairs[j]
		}
	}
}

// Fig4 renders per-task work imbalance for the irregular kernels.
func Fig4(size Size, seed int64) *Table {
	t := &Table{
		Title:   "Figure 4: per-task data-parallel work distribution (irregular kernels)",
		Columns: []string{"benchmark", "unit", "tasks", "mean", "max", "max/mean", "p99/mean", "cv", "distribution"},
	}
	for _, b := range Benchmarks() {
		info := b.Info()
		if !info.Irregular {
			continue
		}
		b.Prepare(size, seed)
		stats := b.Run(1)
		b.Release()
		s := stats.TaskStats.Summarize()
		p99Rel := 0.0
		if s.Mean > 0 {
			p99Rel = s.P99 / s.Mean
		}
		t.AddRow(info.Name, stats.TaskStats.Unit, s.Count, s.Mean, s.Max,
			fmt.Sprintf("%.1fx", s.MaxToMean), fmt.Sprintf("%.1fx", p99Rel),
			fmt.Sprintf("%.2f", s.CoeffOfVariation),
			stats.TaskStats.Sparkline(16))
	}
	t.Notes = append(t.Notes, "paper: max/mean ratios range 4.1x-8.3x across kernels; phmm regions reach ~1000x")
	return t
}

// Fig5 renders the dynamic instruction mix per kernel.
func Fig5(size Size, seed int64) *Table {
	t := &Table{
		Title:   "Figure 5: dynamic operation breakdown (%)",
		Columns: []string{"benchmark", "int-alu", "float", "vector", "load", "store", "branch", "other"},
	}
	for _, b := range Benchmarks() {
		info := b.Info()
		if info.Name == "grm" {
			// The paper excludes grm from the MICA instruction mix.
			continue
		}
		b.Prepare(size, seed)
		stats := b.Run(1)
		b.Release()
		fr := stats.Counters.Fractions()
		row := make([]interface{}, 0, 8)
		row = append(row, info.Name)
		for i := 0; i < perf.NumOpClasses(); i++ {
			row = append(row, fmt.Sprintf("%.1f", 100*fr[i]))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper: phmm is the only FP-heavy CPU kernel; bsw/phmm/spoa have large vector shares; fmi is load-dominated")
	return t
}

// MemProfile is one kernel's simulated memory behaviour.
type MemProfile struct {
	Name    string
	Report  cachesim.Report
	TopDown cachesim.TopDown
}

// memProfileCache memoizes MemoryProfiles per seed: four figures share
// the same simulation.
var memProfileCache = map[int64][]MemProfile{}

// MemoryProfiles runs every kernel small, then replays its
// characteristic address stream (scaled to the paper's working-set
// sizes: 10 GB FM-index, 8 GB k-mer table, ...) through the cache
// simulator. Returns profiles in suite order.
func MemoryProfiles(seed int64) []MemProfile {
	if cached, ok := memProfileCache[seed]; ok {
		return cached
	}
	var out []MemProfile
	for _, b := range Benchmarks() {
		info := b.Info()
		b.Prepare(Small, seed)
		stats := b.Run(1)
		b.Release()
		h := cachesim.NewHierarchy(cachesim.XeonE31240v5())
		fraction := replayTrace(info.Name, stats, h, seed)
		// The replay may be truncated for speed; scale the instruction
		// denominator by the replayed fraction of the kernel's work so
		// BPKI and stall estimates stay consistent.
		instr := uint64(float64(stats.Counters.Total()) * fraction)
		fr := stats.Counters.Fractions()
		rep := h.Report(instr)
		// Regular dense kernels (grm, nn-*) keep their vector ports
		// saturated and retire continuously; only irregular kernels'
		// vector/FP work stalls on dependences and contends for ports.
		vecFloat := fr[perf.VecOp] + fr[perf.FloatOp]
		if !info.Irregular {
			vecFloat *= 0.25
		}
		td := h.TopDownEstimate(instr, fr[perf.Branch], vecFloat)
		out = append(out, MemProfile{Name: info.Name, Report: rep, TopDown: td})
	}
	memProfileCache[seed] = out
	return out
}

// replayTrace feeds kernel-characteristic address streams into the
// cache hierarchy and returns the fraction of the kernel's work units
// replayed. Counts come from the instrumented run; table sizes come
// from the paper's datasets (the substitution DESIGN.md records: our
// synthetic genomes are small, so replaying at paper-scale sizes
// preserves the locality the paper measured).
func replayTrace(name string, stats RunStats, h *cachesim.Hierarchy, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	x := stats.Extra
	// Cap replay length to keep table generation fast; miss ratios
	// converge long before this.
	const maxUnits = 600_000
	scale := func(n float64) (int, float64) {
		if n <= 0 {
			return 0, 1
		}
		if n > maxUnits {
			return maxUnits, maxUnits / n
		}
		return int(n), 1
	}
	// warm touches a resident region once and clears the compulsory
	// misses from the statistics, so truncated replays report the
	// steady state rather than cold-start traffic.
	warm := func(base, bytes uint64) {
		for off := uint64(0); off < bytes; off += 64 {
			h.Access(base+off, 64, false)
		}
		h.ResetStats()
	}
	switch name {
	case "fmi":
		// Occ lookups over a 10 GB index. Backward-search intervals
		// drift slowly and popular seeds repeat across reads, giving
		// strong reuse; the cold lookups land anywhere in the index
		// (the paper: >80% of Occ misses open a new DRAM page).
		const table = 10 << 30
		const hot = 256 << 10
		n, f := scale(x["occ_lookups"])
		warm(0, hot)
		for i := 0; i < n; i++ {
			var addr uint64
			if rng.Float64() < 0.992 {
				addr = rng.Uint64() % hot
			} else {
				addr = rng.Uint64() % table
			}
			h.Access(addr&^63, 64, false) // full cache block consumed
		}
		return f
	case "kmer-cnt":
		// Hash inserts over an 8 GB table; the skewed k-mer spectrum
		// gives reuse on hot entries, but a cold fraction touches a
		// random line and dirties 1-2 bytes of it.
		const table = 8 << 30
		const hot = 3 << 20
		n, f := scale(x["kmers"])
		warm(0, hot)
		for i := 0; i < n; i++ {
			var addr uint64
			if rng.Float64() < 0.94 {
				addr = rng.Uint64() % hot
			} else {
				addr = rng.Uint64() % table
			}
			h.Access(addr, 8, false)
			h.Access(addr, 2, true) // tiny counter update per line
		}
		return f
	case "bsw":
		// Banded DP rows: small resident buffers plus streamed
		// sequence pairs.
		cells, f := scale(x["cells"])
		row := uint64(256 * 4)
		warm(0, 4<<20)
		for i := 0; i < cells; i++ {
			j := uint64(i) % row
			h.Access(j*4, 4, false)
			h.Access(1<<20+j*4, 4, false)
			h.Access(2<<20+j*4, 4, true)
			if i%16 == 0 {
				h.Access(8<<20+uint64(i/16), 1, false) // sequence bytes
			}
		}
		return f
	case "phmm":
		// Everything is resident: short reads, haplotypes and three
		// float rows per pair all fit in L1/L2 and are reused across
		// the |R| x |H| pair matrix — the paper's 0.02 BPKI.
		cells, f := scale(x["cells"])
		row := uint64(256 * 4)
		warm(0, 64<<10)
		for i := 0; i < cells; i++ {
			j := uint64(i) % row
			h.Access(j*4, 4, false)
			h.Access(8<<10+j*4, 4, false)
			h.Access(16<<10+j*4, 4, true)
		}
		return f
	case "chain":
		// Anchor array streamed once with a 25-back sliding window that
		// stays cache-resident.
		comps, f := scale(x["comparisons"])
		for i := 0; i < comps; i++ {
			pos := uint64(i / 25)
			back := uint64(rng.Intn(25))
			h.Access(pos*16, 16, false)
			h.Access((pos-back)*16, 16, false)
		}
		return f
	case "spoa":
		// Graph nodes revisited per row and a per-window score buffer
		// that is reused across alignments (LLC-resident) with modest
		// fresh-sequence streaming.
		cells, f := scale(x["cells"])
		const graph = 32 << 10
		const matrix = 1536 << 10
		warm(0, graph)
		warm(1<<30, matrix)
		for i := 0; i < cells; i++ {
			h.Access(rng.Uint64()%graph, 16, false)
			h.Access(1<<30+uint64(i*4)%matrix, 4, true)
			h.Access(1<<30+uint64(i*4+2048)%matrix, 4, false)
			if i%24 == 0 {
				h.Access(1<<33+uint64(i/24), 1, false) // window sequences
			}
		}
		return f
	case "dbg":
		// Per-region hash tables of tens of KB; the allocator reuses
		// the arena across regions so the table stays cache-warm, with
		// the aligned reads streamed in once.
		lookups, f := scale(x["hash_lookups"])
		const regionTable = 96 << 10
		warm(0, regionTable)
		for i := 0; i < lookups; i++ {
			h.Access(rng.Uint64()%regionTable, 16, rng.Intn(2) == 0)
			if i%64 == 0 {
				h.Access(1<<33+uint64(i/64)*64, 64, false) // read bases stream
			}
		}
		return f
	case "abea":
		// Bands are L1-resident; the pore-model table (32 KB) is hit
		// randomly; raw events stream slowly (one event row feeds a
		// whole band of cells).
		cells, f := scale(x["cells"])
		const model = 32 << 10
		warm(0, model)
		warm(1<<20, 8<<10)
		for i := 0; i < cells; i++ {
			h.Access(rng.Uint64()%model, 8, false)
			h.Access(1<<20+uint64(i%1600)*4, 4, true)
			if i%12 == 0 {
				h.Access(1<<34+uint64(i/12), 1, false) // event stream
			}
		}
		return f
	case "pileup":
		// Random hops between alignment records (hundreds of MB of
		// aligned data) plus counter updates over the region array.
		depth, f := scale(x["depth"])
		const records = 512 << 20
		const counters = 5 << 20
		warm(1<<35, counters)
		recBase := rng.Uint64() % records
		for i := 0; i < depth; i++ {
			if i%256 == 0 {
				recBase = rng.Uint64() % records // next alignment record
			}
			h.Access(recBase+uint64(i%256), 1, false)
			h.Access(1<<35+uint64(i*48)%counters, 8, true)
		}
		return f
	case "grm":
		// Blocked matrix multiply: tile-resident rows with a slow
		// stream of fresh panel data (one line per ~2K FMAs with
		// two-level blocking).
		flops, f := scale(x["flops"])
		const matrix = 200 << 20
		warm(0, 192<<10)
		for i := 0; i < flops; i++ {
			h.Access(uint64(i*8)%(192<<10), 8, false) // L2-resident tile
			if i%2048 == 0 {
				// Fresh panel lines arrive as a sequential stream the
				// prefetcher covers.
				h.Access(1<<31+uint64(i/2048)*64%matrix, 64, false)
			}
		}
		return f
	case "nn-base", "nn-variant":
		// Weights re-streamed per chunk/call: a few MB, LLC-resident.
		macs, f := scale(x["macs"])
		const weights = 6 << 20
		const activations = 1 << 20 // layer outputs reused by the next layer
		warm(0, weights)
		warm(1<<30, activations)
		for i := 0; i < macs; i++ {
			h.Access(uint64(i*4)%weights, 4, false)
			if i%32 == 0 {
				h.Access(1<<30+uint64(i/32)*4%activations, 4, true)
			}
		}
		return f
	}
	return 1
}

// Fig6 renders off-chip data requirements in BPKI.
func Fig6(seed int64) *Table {
	t := &Table{
		Title:   "Figure 6: off-chip data requirements (DRAM bytes per kilo-instruction)",
		Columns: []string{"benchmark", "BPKI"},
	}
	for _, p := range MemoryProfiles(seed) {
		t.AddRow(p.Name, fmt.Sprintf("%.2f", p.Report.BPKI))
	}
	t.Notes = append(t.Notes, "paper: kmer-cnt 484.1, fmi 66.8, spoa 6.62, phmm 0.02")
	return t
}

// Fig8 renders cache miss ratios and data-stall fractions.
func Fig8(seed int64) *Table {
	t := &Table{
		Title:   "Figure 8: cache miss ratios and cycles stalled on data",
		Columns: []string{"benchmark", "L1 miss", "L2 miss", "LLC miss", "stall cycles"},
	}
	for _, p := range MemoryProfiles(seed) {
		t.AddRow(p.Name,
			fmt.Sprintf("%.1f%%", 100*p.Report.L1MissRatio),
			fmt.Sprintf("%.1f%%", 100*p.Report.L2MissRatio),
			fmt.Sprintf("%.1f%%", 100*p.Report.LLCMissRatio),
			fmt.Sprintf("%.1f%%", 100*p.Report.StallFraction))
	}
	t.Notes = append(t.Notes, "paper: fmi 41.5% and kmer-cnt 69.2% of cycles stalled; others < 20%")
	return t
}

// Fig9 renders the top-down pipeline-slot breakdown.
func Fig9(seed int64) *Table {
	t := &Table{
		Title:   "Figure 9: top-down bottleneck analysis (% pipeline slots)",
		Columns: []string{"benchmark", "retiring", "bad-spec", "frontend", "backend-mem", "backend-core"},
	}
	for _, p := range MemoryProfiles(seed) {
		td := p.TopDown
		t.AddRow(p.Name,
			fmt.Sprintf("%.1f", 100*td.Retiring),
			fmt.Sprintf("%.1f", 100*td.BadSpeculation),
			fmt.Sprintf("%.1f", 100*td.FrontendBound),
			fmt.Sprintf("%.1f", 100*td.BackendMemory),
			fmt.Sprintf("%.1f", 100*td.BackendCore))
	}
	t.Notes = append(t.Notes,
		"paper: fmi 44.4% and kmer-cnt 86.6% backend-memory; bsw/chain/phmm >50% retiring; grm 87.7% retiring")
	return t
}

// ScalingProfile is one kernel's thread-scaling curve.
type ScalingProfile struct {
	Name     string
	Measured []parallel.ScalingPoint
	Modeled  []float64 // speedups from the Amdahl + bandwidth model
}

// Fig7 measures thread scaling for every kernel (real goroutines; the
// shape depends on host core count) and adds a model curve calibrated
// to the paper's 8-thread Xeon: Amdahl's law with per-kernel
// memory-bandwidth caps derived from the cache simulation.
func Fig7(size Size, seed int64, threadCounts []int) (*Table, []ScalingProfile) {
	if len(threadCounts) == 0 {
		threadCounts = []int{1, 2, 4, 8}
	}
	profiles := make([]ScalingProfile, 0, len(registry))
	mem := MemoryProfiles(seed)
	memByName := map[string]MemProfile{}
	for _, m := range mem {
		memByName[m.Name] = m
	}
	for _, b := range Benchmarks() {
		info := b.Info()
		b.Prepare(size, seed)
		b.Run(1) // warm caches and allocator before timing
		measured := parallel.MeasureScaling(threadCounts, func(threads int) {
			b.Run(threads)
		})
		b.Release()
		// Model: Amdahl's law capped by a bandwidth roofline. The cap
		// is driven by DRAM traffic volume (BPKI): latency-bound
		// kernels (fmi) keep scaling because extra threads add memory-
		// level parallelism, while bandwidth-bound ones (kmer-cnt)
		// saturate the random-access bandwidth budget.
		p := memByName[info.Name]
		bpki := p.Report.BPKI
		modeled := make([]float64, len(threadCounts))
		for i, tc := range threadCounts {
			s := amdahl(float64(tc), 0.995)
			if bpki > 60 {
				cap_ := 8 * math.Sqrt(60/bpki)
				if cap_ < 1 {
					cap_ = 1
				}
				if s > cap_ {
					s = cap_
				}
			}
			modeled[i] = s
		}
		profiles = append(profiles, ScalingProfile{Name: info.Name, Measured: measured, Modeled: modeled})
	}
	t := &Table{
		Title:   "Figure 7: thread scaling (speedup over 1 thread)",
		Columns: []string{"benchmark"},
	}
	for _, tc := range threadCounts {
		t.Columns = append(t.Columns, fmt.Sprintf("t=%d meas", tc))
	}
	for _, tc := range threadCounts {
		t.Columns = append(t.Columns, fmt.Sprintf("t=%d model", tc))
	}
	for _, p := range profiles {
		row := []interface{}{p.Name}
		for _, m := range p.Measured {
			row = append(row, fmt.Sprintf("%.2f", m.Speedup))
		}
		for _, m := range p.Modeled {
			row = append(row, fmt.Sprintf("%.2f", m))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"measured on this host (GOMAXPROCS-limited); model calibrated to the paper's 8-thread Xeon",
		"paper: bsw/dbg/phmm/spoa scale perfectly; fmi/chain near-perfect; kmer-cnt saturates bandwidth")
	return t, profiles
}

func amdahl(t, p float64) float64 {
	return 1 / ((1 - p) + p/t)
}

// AllTables regenerates every table and figure in order.
func AllTables(size Size, seed int64) []*Table {
	fig7, _ := Fig7(size, seed, []int{1, 2, 4, 8})
	return []*Table{
		TableI(),
		TableII(),
		TableIII(size, seed),
		TableIV(seed),
		TableV(seed),
		VectorWaste(seed),
		Fig4(size, seed),
		Fig5(size, seed),
		Fig6(seed),
		fig7,
		Fig8(seed),
		Fig9(seed),
	}
}
