package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/abea"
	"repro/internal/genome"
	"repro/internal/resilience"
	"repro/internal/scratch"
	"repro/internal/signalsim"
)

func abeaRetryDataset(t *testing.T) (*signalsim.PoreModel, []signalsim.SignalRead) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	model := signalsim.NewPoreModel()
	src := genome.Random(rng, 4000)
	reads := signalsim.SimulateReads(rng, model, src, 6, 300, 800, signalsim.DefaultConfig())
	if len(reads) == 0 {
		t.Fatal("no simulated reads")
	}
	return model, reads
}

// TestScratchPoolWarmRunAllocs: a kernel execution against a warm
// context pool — what the second resilience attempt sees — must not
// re-pay the per-worker band and table allocations a cold run makes.
// The warm count is fixed bookkeeping (worker shards, task stats),
// so it must come in far below the cold count, which grows with the
// dataset.
func TestScratchPoolWarmRunAllocs(t *testing.T) {
	model, reads := abeaRetryDataset(t)
	cfg := abea.DefaultConfig()
	ctx := scratch.WithPool(context.Background(), scratch.NewPool())
	if _, err := abea.RunKernelCtx(ctx, model, reads, cfg, 2); err != nil {
		t.Fatal(err)
	}
	warm := testing.AllocsPerRun(5, func() {
		if _, err := abea.RunKernelCtx(ctx, model, reads, cfg, 2); err != nil {
			t.Fatal(err)
		}
	})
	cold := testing.AllocsPerRun(5, func() {
		if _, err := abea.RunKernelCtx(context.Background(), model, reads, cfg, 2); err != nil {
			t.Fatal(err)
		}
	})
	if warm >= cold/2 {
		t.Fatalf("warm-pool run allocates %v/op vs cold %v/op: pool not reused", warm, cold)
	}
}

// TestResilienceRetryReusesPool proves the plumbing end to end: a
// pool installed outside resilience.Run hands the retry attempt the
// exact arenas the failed attempt grew.
func TestResilienceRetryReusesPool(t *testing.T) {
	model, reads := abeaRetryDataset(t)
	cfg := abea.DefaultConfig()
	pool := scratch.NewPool()
	ctx := scratch.WithPool(context.Background(), pool)
	p := resilience.Default()
	p.Sleep = func(context.Context, time.Duration) error { return nil }
	attempt := 0
	var firstArena *scratch.Arena
	err := resilience.Run(ctx, "abea", p, func(actx context.Context) error {
		attempt++
		if _, err := abea.RunKernelCtx(actx, model, reads, cfg, 2); err != nil {
			return err
		}
		if attempt == 1 {
			firstArena = scratch.PoolFrom(actx).Worker(0)
			return errors.New("transient failure after a full warm-up run")
		}
		if scratch.PoolFrom(actx).Worker(0) != firstArena {
			t.Error("retry attempt drew a different worker-0 arena")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("retry should have succeeded: %v", err)
	}
	if attempt != 2 {
		t.Fatalf("attempts = %d, want 2", attempt)
	}
}
