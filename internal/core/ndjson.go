package core

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/obs"
	"repro/internal/perf"
	"repro/internal/shard"
)

// This file is the suite's machine-readable output: every run can be
// exported as NDJSON (one JSON object per line) carrying provenance
// (meta record), one kernel record per kernel — including failed and
// skipped ones — plus the metric registry, runtime samples and spans.
// docs/OBSERVABILITY.md documents the schema and example jq queries.

// MetricsSchemaVersion is bumped whenever a record shape changes
// incompatibly; readers check it before trusting field meanings.
const MetricsSchemaVersion = 1

// RunMeta is the provenance stamp leading a metrics or trace file.
type RunMeta struct {
	Type       string `json:"type"` // always "meta"
	Schema     int    `json:"schema"`
	Suite      string `json:"suite"`
	Size       string `json:"size"`
	Seed       int64  `json:"seed"`
	Threads    int    `json:"threads"`
	GoVersion  string `json:"go"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
	Faults     string `json:"faults,omitempty"`
	Start      string `json:"start"` // RFC3339
}

// NewRunMeta stamps a meta record for the given suite configuration.
func NewRunMeta(cfg SuiteConfig, faults string) RunMeta {
	return RunMeta{
		Type:       "meta",
		Schema:     MetricsSchemaVersion,
		Suite:      "genomicsbench-go",
		Size:       cfg.Size.String(),
		Seed:       cfg.Seed,
		Threads:    cfg.Threads,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
		Faults:     faults,
		Start:      time.Now().UTC().Format(time.RFC3339),
	}
}

// TaskWorkRecord summarizes a kernel's per-task work distribution
// (the paper's Figure 4 axis).
type TaskWorkRecord struct {
	Unit      string  `json:"unit"`
	Count     int     `json:"count"`
	Mean      float64 `json:"mean"`
	Max       float64 `json:"max"`
	P50       float64 `json:"p50"`
	P99       float64 `json:"p99"`
	MaxToMean float64 `json:"max_to_mean"`
}

// KernelRecord is one kernel's outcome in a metrics file. Failed and
// skipped kernels still get a record (status + error, zeroed stats) so
// a file always holds exactly one record per kernel that was asked to
// run.
type KernelRecord struct {
	Type      string             `json:"type"` // always "kernel"
	Kernel    string             `json:"kernel"`
	Tool      string             `json:"tool,omitempty"`
	Status    string             `json:"status"`
	Attempts  int                `json:"attempts"`
	ElapsedNs int64              `json:"elapsed_ns,omitempty"`
	Ops       uint64             `json:"ops,omitempty"`
	OpMix     map[string]float64 `json:"op_mix,omitempty"`
	TaskWork  *TaskWorkRecord    `json:"task_work,omitempty"`
	Extra     map[string]float64 `json:"extra,omitempty"`
	Error     string             `json:"error,omitempty"`
	// Shard is the fabric's lifecycle accounting when the kernel ran
	// distributed; Fingerprint is the hex digest-vector fold two runs
	// of the same job must agree on.
	Shard       *shard.Summary `json:"shard,omitempty"`
	Fingerprint string         `json:"fingerprint,omitempty"`
}

// KernelRecords converts suite outcomes into their NDJSON records.
func KernelRecords(outcomes []KernelOutcome) []KernelRecord {
	recs := make([]KernelRecord, 0, len(outcomes))
	for i := range outcomes {
		o := &outcomes[i]
		rec := KernelRecord{
			Type:     "kernel",
			Kernel:   o.Info.Name,
			Tool:     o.Info.Tool,
			Status:   o.Status.String(),
			Attempts: o.Attempts,
		}
		if o.Shard != nil {
			s := *o.Shard
			rec.Shard = &s
			if !o.Failed() {
				rec.Fingerprint = fmt.Sprintf("%016x", o.Fingerprint)
			}
		}
		if o.Failed() {
			if o.Err != nil {
				rec.Error = o.Err.Error()
			}
			recs = append(recs, rec)
			continue
		}
		stats := &o.Stats
		rec.ElapsedNs = stats.Elapsed.Nanoseconds()
		rec.Ops = stats.Counters.Total()
		if rec.Ops > 0 {
			fractions := stats.Counters.Fractions()
			rec.OpMix = make(map[string]float64, len(fractions))
			for c, f := range fractions {
				if f > 0 {
					rec.OpMix[perf.OpClass(c).String()] = f
				}
			}
		}
		if stats.TaskStats != nil && stats.TaskStats.Count() > 0 {
			s := stats.TaskStats.Summarize()
			rec.TaskWork = &TaskWorkRecord{
				Unit: stats.TaskStats.Unit, Count: s.Count, Mean: s.Mean,
				Max: s.Max, P50: s.P50, P99: s.P99, MaxToMean: s.MaxToMean,
			}
		}
		if len(stats.Extra) > 0 {
			rec.Extra = stats.Extra
		}
		recs = append(recs, rec)
	}
	return recs
}

// FaultRecord is one fault clause's armed-vs-tripped accounting.
type FaultRecord struct {
	Type    string `json:"type"` // always "fault"
	Clause  string `json:"clause"`
	Site    string `json:"site"`
	Kind    string `json:"kind"`
	Evals   uint64 `json:"evals"`
	Tripped uint64 `json:"tripped"`
}

// WriteMetricsNDJSON writes the full metrics file for a suite run:
// the meta record, one kernel record per outcome, fault clause
// accounting, every registry metric, and the runtime samples.
func WriteMetricsNDJSON(w io.Writer, meta RunMeta, outcomes []KernelOutcome, faults []FaultRecord, o *obs.Observer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(meta); err != nil {
		return err
	}
	for _, rec := range KernelRecords(outcomes) {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	for _, f := range faults {
		if err := enc.Encode(f); err != nil {
			return err
		}
	}
	if o != nil {
		for _, m := range o.Metrics.Snapshot() {
			if err := enc.Encode(m); err != nil {
				return err
			}
		}
		for _, s := range o.Sampler.Samples() {
			if err := enc.Encode(s); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WriteTraceNDJSON writes the span trace: the meta record followed by
// one record per finished span.
func WriteTraceNDJSON(w io.Writer, meta RunMeta, o *obs.Observer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(meta); err != nil {
		return err
	}
	if o != nil {
		for _, s := range o.Tracer.Spans() {
			if err := enc.Encode(s); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// MetricsFile is a parsed metrics NDJSON file.
type MetricsFile struct {
	Meta    *RunMeta
	Kernels []KernelRecord
	Faults  []FaultRecord
	Metrics []obs.MetricSnapshot
	Samples []obs.Sample
	Spans   []obs.SpanRecord
}

// ReadMetricsNDJSON parses a metrics (or trace) NDJSON stream
// strictly: every non-empty line must be a JSON object with a known
// "type"; anything else is an error naming the offending line. It
// accepts files from a newer schema only for the record types it
// knows.
func ReadMetricsNDJSON(r io.Reader) (*MetricsFile, error) {
	f := &MetricsFile{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var head struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &head); err != nil {
			return nil, fmt.Errorf("ndjson line %d: %w", lineNo, err)
		}
		switch head.Type {
		case "meta":
			var m RunMeta
			if err := json.Unmarshal(line, &m); err != nil {
				return nil, fmt.Errorf("ndjson line %d (meta): %w", lineNo, err)
			}
			f.Meta = &m
		case "kernel":
			var k KernelRecord
			if err := json.Unmarshal(line, &k); err != nil {
				return nil, fmt.Errorf("ndjson line %d (kernel): %w", lineNo, err)
			}
			if k.Kernel == "" {
				return nil, fmt.Errorf("ndjson line %d: kernel record without a kernel name", lineNo)
			}
			f.Kernels = append(f.Kernels, k)
		case "fault":
			var fr FaultRecord
			if err := json.Unmarshal(line, &fr); err != nil {
				return nil, fmt.Errorf("ndjson line %d (fault): %w", lineNo, err)
			}
			f.Faults = append(f.Faults, fr)
		case "metric":
			var m obs.MetricSnapshot
			if err := json.Unmarshal(line, &m); err != nil {
				return nil, fmt.Errorf("ndjson line %d (metric): %w", lineNo, err)
			}
			f.Metrics = append(f.Metrics, m)
		case "sample":
			var s obs.Sample
			if err := json.Unmarshal(line, &s); err != nil {
				return nil, fmt.Errorf("ndjson line %d (sample): %w", lineNo, err)
			}
			f.Samples = append(f.Samples, s)
		case "span":
			var s obs.SpanRecord
			if err := json.Unmarshal(line, &s); err != nil {
				return nil, fmt.Errorf("ndjson line %d (span): %w", lineNo, err)
			}
			f.Spans = append(f.Spans, s)
		case "":
			return nil, fmt.Errorf("ndjson line %d: record without a type", lineNo)
		default:
			// Unknown record types from newer writers are skipped, not
			// fatal: the file is still well-formed NDJSON.
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return f, nil
}

// MetricsTables renders a parsed metrics file as report tables: the
// per-kernel outcome table, the scheduler/resilience metrics that back
// Figures 4 and 7, and — when present — fault-injection accounting
// and a runtime (heap/GC) summary.
func MetricsTables(f *MetricsFile) []*Table {
	var tables []*Table

	title := "Suite metrics"
	if f.Meta != nil {
		title = fmt.Sprintf("Suite metrics (%s inputs, %d threads, seed %d, %s)",
			f.Meta.Size, f.Meta.Threads, f.Meta.Seed, f.Meta.GoVersion)
	}
	kt := &Table{
		Title:   title,
		Columns: []string{"benchmark", "status", "attempts", "elapsed", "tasks", "ops", "task p99", "max/mean", "shard", "error"},
	}
	for _, k := range f.Kernels {
		if k.Status != StatusOK.String() {
			kt.AddRow(k.Kernel, k.Status, k.Attempts, "-", "-", "-", "-", "-",
				shardCell(k.Shard), firstLineOf(k.Error))
			continue
		}
		tasks, p99, ratio := "-", "-", "-"
		if k.TaskWork != nil {
			tasks = fmt.Sprintf("%d", k.TaskWork.Count)
			p99 = fmt.Sprintf("%.3g", k.TaskWork.P99)
			ratio = fmt.Sprintf("%.2fx", k.TaskWork.MaxToMean)
		}
		kt.AddRow(k.Kernel, k.Status, k.Attempts,
			time.Duration(k.ElapsedNs).Round(100*time.Microsecond),
			tasks, k.Ops, p99, ratio, shardCell(k.Shard), "-")
	}
	tables = append(tables, kt)

	// Scheduler + supervisor metrics, grouped per kernel label.
	st := &Table{
		Title:   "Scheduler and resilience metrics",
		Columns: []string{"metric", "kernel", "kind", "value"},
	}
	for _, m := range f.Metrics {
		switch m.Kind {
		case "histogram":
			st.AddRow(m.Name, m.Label, m.Kind,
				fmt.Sprintf("n=%d p50=%.3g p95=%.3g p99=%.3g %s", m.Count, m.P50, m.P95, m.P99, m.Unit))
		default:
			st.AddRow(m.Name, m.Label, m.Kind, fmt.Sprintf("%g", m.Value))
		}
	}
	if len(st.Rows) > 0 {
		tables = append(tables, st)
	}

	if len(f.Faults) > 0 {
		ft := &Table{
			Title:   "Fault injection: armed vs tripped",
			Columns: []string{"clause", "kind", "site", "evals", "tripped"},
		}
		for _, fr := range f.Faults {
			ft.AddRow(fr.Clause, fr.Kind, fr.Site, fr.Evals, fr.Tripped)
		}
		tables = append(tables, ft)
	}

	if len(f.Samples) > 0 {
		var maxHeap, lastAlloc uint64
		var maxGoroutines int
		first, last := f.Samples[0], f.Samples[len(f.Samples)-1]
		for _, s := range f.Samples {
			if s.HeapInuse > maxHeap {
				maxHeap = s.HeapInuse
			}
			if s.Goroutines > maxGoroutines {
				maxGoroutines = s.Goroutines
			}
			lastAlloc = s.TotalAlloc
		}
		rt := &Table{
			Title:   "Runtime samples",
			Columns: []string{"samples", "peak heap", "total alloc", "GCs", "GC pause", "max goroutines"},
		}
		rt.AddRow(len(f.Samples),
			fmt.Sprintf("%.1f MB", float64(maxHeap)/(1<<20)),
			fmt.Sprintf("%.1f MB", float64(lastAlloc)/(1<<20)),
			last.NumGC-first.NumGC,
			time.Duration(last.GCPauseNs-first.GCPauseNs),
			maxGoroutines)
		tables = append(tables, rt)
	}
	return tables
}

// shardCell compacts a shard lifecycle summary for a table cell:
// worker count, shard count, and the recovery counters that matter
// when triaging a chaotic run.
func shardCell(s *shard.Summary) string {
	if s == nil {
		return "-"
	}
	return fmt.Sprintf("%dw/%ds r=%d h=%d x=%d", s.Workers, s.Shards, s.Rescheduled, s.Hedged, s.LeaseExpired)
}

// firstLineOf compacts a possibly multi-line error string for a cell.
func firstLineOf(s string) string {
	if s == "" {
		return "-"
	}
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			s = s[:i]
			break
		}
	}
	const max = 60
	if len(s) > max {
		s = s[:max-3] + "..."
	}
	return s
}
