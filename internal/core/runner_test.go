package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/resilience"
)

// stubBench is a scriptable Benchmark for runner tests.
type stubBench struct {
	name     string
	fn       func(ctx context.Context) error
	prepares int
	runs     int
	releases int
}

func (b *stubBench) Info() Info                 { return Info{Name: b.name, Tool: "stub"} }
func (b *stubBench) Prepare(size Size, s int64) { b.prepares++ }
func (b *stubBench) Release()                   { b.releases++ }
func (b *stubBench) Run(threads int) RunStats   { return mustRun(b, threads) }
func (b *stubBench) RunCtx(ctx context.Context, threads int) (RunStats, error) {
	b.runs++
	if b.fn != nil {
		if err := b.fn(ctx); err != nil {
			return RunStats{}, err
		}
	}
	return RunStats{Elapsed: time.Millisecond}, nil
}

func quietPolicy() resilience.Policy {
	return resilience.Policy{
		Attempts:   2,
		Sleep:      func(ctx context.Context, d time.Duration) error { return ctx.Err() },
		JitterSeed: 1,
	}
}

func TestRunSuiteAllHealthy(t *testing.T) {
	benches := []Benchmark{&stubBench{name: "a"}, &stubBench{name: "b"}}
	outcomes := RunSuite(context.Background(), benches, SuiteConfig{Policy: quietPolicy()})
	if len(outcomes) != 2 {
		t.Fatalf("got %d outcomes", len(outcomes))
	}
	for _, o := range outcomes {
		if o.Status != StatusOK || o.Err != nil || o.Attempts != 1 {
			t.Errorf("%s: %+v", o.Info.Name, o)
		}
	}
	if len(FailedOutcomes(outcomes)) != 0 {
		t.Error("healthy suite reported failures")
	}
}

func TestRunSuiteIsolatesPanickingKernel(t *testing.T) {
	bad := &stubBench{name: "bad", fn: func(context.Context) error { panic("kernel bug") }}
	after := &stubBench{name: "after"}
	outcomes := RunSuite(context.Background(), []Benchmark{&stubBench{name: "before"}, bad, after}, SuiteConfig{Policy: quietPolicy()})
	if outcomes[0].Status != StatusOK || outcomes[2].Status != StatusOK {
		t.Errorf("healthy kernels affected: %v / %v", outcomes[0].Status, outcomes[2].Status)
	}
	o := outcomes[1]
	if o.Status != StatusFailed || o.Attempts != 2 {
		t.Fatalf("bad outcome = %+v", o)
	}
	var ke *resilience.KernelError
	if !errors.As(o.Err, &ke) || !ke.Panicked || ke.Value != "kernel bug" {
		t.Errorf("err = %v", o.Err)
	}
	if len(ke.Stack) == 0 {
		t.Error("panic stack not captured")
	}
	if after.runs != 1 || bad.releases != 1 {
		t.Errorf("after.runs=%d bad.releases=%d", after.runs, bad.releases)
	}
	failed := FailedOutcomes(outcomes)
	if len(failed) != 1 || failed[0].Info.Name != "bad" {
		t.Errorf("FailedOutcomes = %+v", failed)
	}
}

func TestRunSuiteRetriesWithoutRepreparing(t *testing.T) {
	calls := 0
	flaky := &stubBench{name: "flaky", fn: func(context.Context) error {
		calls++
		if calls == 1 {
			return errors.New("transient")
		}
		return nil
	}}
	outcomes := RunSuite(context.Background(), []Benchmark{flaky}, SuiteConfig{Policy: quietPolicy()})
	if outcomes[0].Status != StatusOK || outcomes[0].Attempts != 2 {
		t.Errorf("outcome = %+v", outcomes[0])
	}
	if flaky.prepares != 1 {
		t.Errorf("dataset prepared %d times across retries, want 1", flaky.prepares)
	}
}

func TestRunSuiteTimeoutClassifiedAndRetried(t *testing.T) {
	p := quietPolicy()
	p.Timeout = 5 * time.Millisecond
	stuck := &stubBench{name: "stuck", fn: func(ctx context.Context) error {
		<-ctx.Done() // deterministic: blocks until the attempt deadline
		return ctx.Err()
	}}
	outcomes := RunSuite(context.Background(), []Benchmark{stuck}, SuiteConfig{Policy: p})
	o := outcomes[0]
	if o.Status != StatusTimedOut || o.Attempts != 2 {
		t.Fatalf("outcome = %+v err=%v", o, o.Err)
	}
	if stuck.runs != 2 {
		t.Errorf("stuck ran %d times, want retried once", stuck.runs)
	}
}

func TestRunSuiteCancellationSkipsRemaining(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	first := &stubBench{name: "first", fn: func(context.Context) error {
		cancel()
		return nil // completes despite cancel; already-running work finishes
	}}
	second := &stubBench{name: "second"}
	outcomes := RunSuite(ctx, []Benchmark{first, second}, SuiteConfig{Policy: quietPolicy()})
	if outcomes[0].Status != StatusOK {
		t.Errorf("first = %+v", outcomes[0])
	}
	if outcomes[1].Status != StatusSkipped || second.runs != 0 {
		t.Errorf("second = %+v runs=%d, want skipped", outcomes[1], second.runs)
	}
}

func TestRunSuiteFaultLabelFollowsKernel(t *testing.T) {
	plan, err := faultinject.Parse("error:victim:1.0", 3)
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Arm(plan)
	defer faultinject.Disarm()
	point := func(ctx context.Context) error { return faultinject.Point(ctx) }
	victim := &stubBench{name: "victim", fn: point}
	bystander := &stubBench{name: "bystander", fn: point}
	outcomes := RunSuite(context.Background(), []Benchmark{bystander, victim}, SuiteConfig{Policy: quietPolicy()})
	if outcomes[0].Status != StatusOK {
		t.Errorf("bystander hit by fault targeted at victim: %+v", outcomes[0])
	}
	if outcomes[1].Status != StatusFailed {
		t.Errorf("victim = %+v", outcomes[1])
	}
	var ie *faultinject.InjectedError
	if !errors.As(outcomes[1].Err, &ie) {
		t.Errorf("victim error %v should unwrap to *InjectedError", outcomes[1].Err)
	}
}

func TestRunSuiteProgressLines(t *testing.T) {
	var lines []string
	cfg := SuiteConfig{
		Policy:   quietPolicy(),
		Progress: func(format string, args ...any) { lines = append(lines, format) },
	}
	bad := &stubBench{name: "bad", fn: func(context.Context) error { return errors.New("x") }}
	RunSuite(context.Background(), []Benchmark{bad}, cfg)
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"running", "retrying", "attempt"} {
		if !strings.Contains(joined, want) {
			t.Errorf("progress missing %q in %q", want, joined)
		}
	}
}

func TestStatusStrings(t *testing.T) {
	for s, want := range map[Status]string{
		StatusOK: "ok", StatusFailed: "failed", StatusTimedOut: "timeout", StatusSkipped: "skipped",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}
