package core

import (
	"context"
	"math"
	"math/rand"
	"time"

	"repro/internal/abea"
	"repro/internal/bsw"
	"repro/internal/chain"
	"repro/internal/dbg"
	"repro/internal/fmindex"
	"repro/internal/genome"
	"repro/internal/grm"
	"repro/internal/kmercnt"
	"repro/internal/nnbase"
	"repro/internal/nnvariant"
	"repro/internal/perf"
	"repro/internal/phmm"
	"repro/internal/pileup"
	"repro/internal/poa"
	"repro/internal/readsim"
	"repro/internal/signalsim"
	"repro/internal/simio"
)

// The paper's datasets are human-genome scale; this reproduction keeps
// the small:large ratio (~5-10x) at laptop scale. Every Prepare is
// deterministic in (size, seed).

func pick[T any](size Size, small, large T) T {
	if size == Large {
		return large
	}
	return small
}

// ---- fmi ----

type fmiBench struct {
	index *fmindex.Index
	reads []genome.Seq
}

func (b *fmiBench) Info() Info {
	return Info{
		Name: "fmi", Tool: "BWA-MEM2", Pipeline: "reference-guided",
		Motif: "graph traversal (backward search)", Granularity: "Read",
		WorkUnit: "Occ table lookups", Irregular: true,
	}
}

func (b *fmiBench) Prepare(size Size, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	ref := genome.NewReference(rng, "chr", pick(size, 200_000, 1_000_000), 0.15)
	b.index = fmindex.Build(ref.Seq)
	sim := readsim.New(seed + 1)
	cfg := readsim.DefaultShort()
	n := pick(size, 2000, 10000)
	rs := sim.ShortReads(ref.Seq, -1, n, cfg, "r")
	b.reads = make([]genome.Seq, len(rs))
	for i := range rs {
		b.reads[i] = rs[i].Seq
	}
}

func (b *fmiBench) RunCtx(ctx context.Context, threads int) (RunStats, error) {
	start := time.Now()
	res, err := fmindex.RunKernelCtx(ctx, b.index, b.reads, fmindex.KernelConfig{MinSeedLen: 19, MinHits: 1, Threads: threads})
	if err != nil {
		return RunStats{}, err
	}
	return RunStats{
		Elapsed:   time.Since(start),
		Counters:  res.Counters,
		TaskStats: res.TaskStats,
		Extra: map[string]float64{
			"smems":       float64(res.SMEMs),
			"occ_lookups": float64(res.OccLookups),
		},
	}, nil
}

// ---- bsw ----

type bswBench struct {
	pairs []bsw.Pair
}

func (b *bswBench) Info() Info {
	return Info{
		Name: "bsw", Tool: "BWA-MEM2", Pipeline: "reference-guided",
		Motif: "dynamic programming (banded, 2D)", Granularity: "Seed",
		WorkUnit: "cell updates", Irregular: true,
	}
}

func (b *bswBench) Prepare(size Size, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	ref := genome.NewReference(rng, "chr", 300_000, 0.1)
	n := pick(size, 4000, 20000)
	b.pairs = make([]bsw.Pair, 0, n)
	for i := 0; i < n; i++ {
		// Heavy-tailed seed-extension lengths: most extensions are
		// short, a few span long gaps (drives Figure 4's imbalance).
		qLen := 60 + int(40*math.Exp(rng.NormFloat64()*0.7))
		if qLen > 600 {
			qLen = 600
		}
		start := rng.Intn(len(ref.Seq) - qLen - 60)
		q := ref.Seq[start : start+qLen].Clone()
		// Mutate the query a little; a fraction of pairs are unrelated
		// (z-drop candidates).
		var t genome.Seq
		if rng.Float64() < 0.15 {
			t = genome.Random(rng, qLen+40)
		} else {
			t = ref.Seq[start : start+qLen+40].Clone()
			for m := 0; m < qLen/30; m++ {
				t[rng.Intn(len(t))] = genome.Base(rng.Intn(4))
			}
		}
		b.pairs = append(b.pairs, bsw.Pair{Query: q, Target: t})
	}
}

func (b *bswBench) RunCtx(ctx context.Context, threads int) (RunStats, error) {
	start := time.Now()
	res, err := bsw.RunKernelCtx(ctx, b.pairs, bsw.DefaultParams(), threads)
	if err != nil {
		return RunStats{}, err
	}
	return RunStats{
		Elapsed:   time.Since(start),
		Counters:  res.Counters,
		TaskStats: res.TaskStats,
		Extra: map[string]float64{
			"cells": float64(res.CellUpdates),
			"score": float64(res.TotalScore),
		},
	}, nil
}

// ---- dbg ----

type dbgBench struct {
	regions []*dbg.Region
}

func (b *dbgBench) Info() Info {
	return Info{
		Name: "dbg", Tool: "Platypus", Pipeline: "reference-guided",
		Motif: "graph construction + hashing", Granularity: "Genome Region",
		WorkUnit: "hash table lookups", Irregular: true,
	}
}

func (b *dbgBench) Prepare(size Size, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	nRegions := pick(size, 60, 300)
	sim := readsim.New(seed + 1)
	cfg := readsim.DefaultShort()
	cfg.Length = 100
	b.regions = make([]*dbg.Region, 0, nRegions)
	for i := 0; i < nRegions; i++ {
		refLen := 200 + rng.Intn(600)
		ref := genome.NewReference(rng, "rg", refLen, 0.05)
		donor := genome.PlantVariants(rng, ref, 0.004, 0.001)
		coverage := 15 + rng.Float64()*35
		reads := sim.CoverageReads(donor, coverage, cfg, "r")
		rg := &dbg.Region{Ref: ref.Seq}
		for _, r := range reads {
			rg.Reads = append(rg.Reads, r.Seq)
		}
		b.regions = append(b.regions, rg)
	}
}

func (b *dbgBench) RunCtx(ctx context.Context, threads int) (RunStats, error) {
	start := time.Now()
	res, err := dbg.RunKernelCtx(ctx, b.regions, dbg.DefaultConfig(), threads)
	if err != nil {
		return RunStats{}, err
	}
	return RunStats{
		Elapsed:   time.Since(start),
		Counters:  res.Counters,
		TaskStats: res.TaskStats,
		Extra: map[string]float64{
			"haplotypes":    float64(res.Haplotypes),
			"hash_lookups":  float64(res.HashLookups),
			"cycle_retries": float64(res.CycleRetries),
		},
	}, nil
}

// ---- phmm ----

type phmmBench struct {
	regions []*phmm.Region
}

func (b *phmmBench) Info() Info {
	return Info{
		Name: "phmm", Tool: "GATK HaplotypeCaller", Pipeline: "reference-guided",
		Motif: "dynamic programming (FP, wavefront)", Granularity: "Genome Region",
		WorkUnit: "cell updates", Irregular: true,
	}
}

func (b *phmmBench) Prepare(size Size, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	nRegions := pick(size, 30, 150)
	b.regions = make([]*phmm.Region, 0, nRegions)
	for i := 0; i < nRegions; i++ {
		// Heavy-tailed region sizes reproduce the paper's Figure 4
		// imbalance (phmm max/mean up to 1000x in the original).
		hapLen := 120 + rng.Intn(180)
		nReads := 4 + rng.Intn(12)
		// GATK's assembler emits up to maxNumHaplotypesInPopulation=128
		// candidate haplotypes per active region; a typical indel-bearing
		// region carries a few dozen. Spanning 4..32 keeps both the
		// lane-batched path (>= 8 haplotypes) and the scalar small-region
		// path (< 8) on the measured profile.
		nHaps := 4 + rng.Intn(29)
		// A few pathological regions (deep pileups over long haplotype
		// sets) dominate, as in the paper's Figure 4 where phmm's max
		// region needs ~1000x the mean computation.
		switch r := rng.Float64(); {
		case r < 0.02:
			hapLen *= 8
			nReads *= 25
			nHaps = 48
		case r < 0.07:
			hapLen *= 3
			nReads *= 6
		}
		base := genome.Random(rng, hapLen)
		rg := &phmm.Region{}
		for h := 0; h < nHaps; h++ {
			hap := base.Clone()
			for m := 0; m < h; m++ {
				hap[rng.Intn(len(hap))] = genome.Base(rng.Intn(4))
			}
			rg.Haps = append(rg.Haps, hap)
		}
		for r := 0; r < nReads; r++ {
			rl := 40 + rng.Intn(40)
			if rl >= hapLen {
				rl = hapLen - 1
			}
			start := rng.Intn(hapLen - rl)
			read := base[start : start+rl].Clone()
			qual := make([]byte, rl)
			for q := range qual {
				qual[q] = byte(20 + rng.Intn(20))
			}
			rg.Reads = append(rg.Reads, read)
			rg.Quals = append(rg.Quals, qual)
		}
		b.regions = append(b.regions, rg)
	}
}

func (b *phmmBench) RunCtx(ctx context.Context, threads int) (RunStats, error) {
	start := time.Now()
	res, err := phmm.RunKernelCtx(ctx, b.regions, threads)
	if err != nil {
		return RunStats{}, err
	}
	return RunStats{
		Elapsed:   time.Since(start),
		Counters:  res.Counters,
		TaskStats: res.TaskStats,
		Extra: map[string]float64{
			"pairs":     float64(res.Pairs),
			"cells":     float64(res.CellUpdates),
			"fallbacks": float64(res.Fallbacks),
		},
	}, nil
}

// ---- chain ----

type chainBench struct {
	tasks []chain.Task
}

func (b *chainBench) Info() Info {
	return Info{
		Name: "chain", Tool: "Minimap2", Pipeline: "de novo",
		Motif: "dynamic programming (1D)", Granularity: "Read",
		WorkUnit: "input anchors", Irregular: true,
	}
}

func (b *chainBench) Prepare(size Size, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	src := genome.NewReference(rng, "asm", 150_000, 0.2)
	nTasks := pick(size, 150, 750)
	b.tasks = make([]chain.Task, 0, nTasks)
	for i := 0; i < nTasks; i++ {
		aLen := 2000 + rng.Intn(4000)
		bLen := 2000 + rng.Intn(4000)
		aStart := rng.Intn(len(src.Seq) - aLen)
		// Overlapping pair with probability 0.7; unrelated otherwise.
		var bStart int
		if rng.Float64() < 0.7 {
			off := rng.Intn(aLen)
			bStart = aStart + off
			if bStart+bLen > len(src.Seq) {
				bStart = len(src.Seq) - bLen
			}
		} else {
			bStart = rng.Intn(len(src.Seq) - bLen)
		}
		readA := src.Seq[aStart : aStart+aLen]
		readB := src.Seq[bStart : bStart+bLen]
		b.tasks = append(b.tasks, chain.Task{Anchors: chain.SharedAnchors(readB, readA, 15, 10, 100)})
	}
}

func (b *chainBench) RunCtx(ctx context.Context, threads int) (RunStats, error) {
	start := time.Now()
	res, err := chain.RunKernelCtx(ctx, b.tasks, chain.DefaultConfig(), threads)
	if err != nil {
		return RunStats{}, err
	}
	return RunStats{
		Elapsed:   time.Since(start),
		Counters:  res.Counters,
		TaskStats: res.TaskStats,
		Extra: map[string]float64{
			"chains":      float64(res.Chains),
			"comparisons": float64(res.Comparisons),
		},
	}, nil
}

// ---- spoa ----

type poaBench struct {
	windows []*poa.Window
}

func (b *poaBench) Info() Info {
	return Info{
		Name: "spoa", Tool: "Racon", Pipeline: "de novo",
		Motif: "dynamic programming (graph)", Granularity: "Read Chunk Window",
		WorkUnit: "cell updates", Irregular: true,
	}
}

func (b *poaBench) Prepare(size Size, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	nWindows := pick(size, 40, 240) // paper: 1000/6000 consensus tasks
	b.windows = make([]*poa.Window, 0, nWindows)
	for i := 0; i < nWindows; i++ {
		truth := genome.Random(rng, 150+rng.Intn(200))
		w := &poa.Window{}
		depth := 6 + rng.Intn(10)
		for r := 0; r < depth; r++ {
			read := truth.Clone()
			// ~5% errors per read.
			for m := 0; m < len(read)/20; m++ {
				switch rng.Intn(3) {
				case 0:
					read[rng.Intn(len(read))] = genome.Base(rng.Intn(4))
				case 1:
					p := rng.Intn(len(read))
					read = append(read[:p], read[p+1:]...)
				default:
					p := rng.Intn(len(read))
					read = append(read[:p], append(genome.Seq{genome.Base(rng.Intn(4))}, read[p:]...)...)
				}
			}
			w.Sequences = append(w.Sequences, read)
		}
		b.windows = append(b.windows, w)
	}
}

func (b *poaBench) RunCtx(ctx context.Context, threads int) (RunStats, error) {
	start := time.Now()
	res, err := poa.RunKernelCtx(ctx, b.windows, poa.DefaultParams(), threads)
	if err != nil {
		return RunStats{}, err
	}
	return RunStats{
		Elapsed:   time.Since(start),
		Counters:  res.Counters,
		TaskStats: res.TaskStats,
		Extra:     map[string]float64{"cells": float64(res.CellUpdates)},
	}, nil
}

// ---- abea ----

type abeaBench struct {
	model *signalsim.PoreModel
	reads []signalsim.SignalRead
}

func (b *abeaBench) Info() Info {
	return Info{
		Name: "abea", Tool: "Nanopolish/f5c", Pipeline: "de novo",
		Motif: "dynamic programming (adaptive band, FP)", Granularity: "Read",
		WorkUnit: "cell updates", Irregular: true, GPU: true,
	}
}

func (b *abeaBench) Prepare(size Size, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	b.model = signalsim.NewPoreModel()
	src := genome.NewReference(rng, "chr", 120_000, 0.1)
	n := pick(size, 60, 300) // paper: 1000/10000 FAST5 reads
	// Nanopore read lengths are heavy-tailed; sample per-read bounds.
	b.reads = b.reads[:0]
	for i := 0; i < n; i++ {
		length := 300 + int(500*math.Exp(rng.NormFloat64()*0.8))
		if length > 8000 {
			length = 8000
		}
		b.reads = append(b.reads,
			signalsim.SimulateReads(rng, b.model, src.Seq, 1, length, length, signalsim.DefaultConfig())...)
	}
}

func (b *abeaBench) RunCtx(ctx context.Context, threads int) (RunStats, error) {
	start := time.Now()
	res, err := abea.RunKernelCtx(ctx, b.model, b.reads, abea.DefaultConfig(), threads)
	if err != nil {
		return RunStats{}, err
	}
	return RunStats{
		Elapsed:   time.Since(start),
		Counters:  res.Counters,
		TaskStats: res.TaskStats,
		Extra: map[string]float64{
			"cells":       float64(res.CellUpdates),
			"out_of_band": float64(res.OutOfBand),
		},
	}, nil
}

// ---- kmer-cnt ----

type kmercntBench struct {
	reads []genome.Seq
}

func (b *kmercntBench) Info() Info {
	return Info{
		Name: "kmer-cnt", Tool: "Flye", Pipeline: "de novo",
		Motif: "hashing (regular input, random access)", Granularity: "Read",
		WorkUnit: "hash table inserts", Irregular: false,
	}
}

func (b *kmercntBench) Prepare(size Size, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	src := genome.NewReference(rng, "chr", 400_000, 0.1)
	sim := readsim.New(seed + 1)
	cfg := readsim.DefaultLong()
	cfg.MeanLength = 3000
	n := pick(size, 150, 750)
	rs := sim.LongReads(src.Seq, -1, n, cfg, "l")
	b.reads = make([]genome.Seq, len(rs))
	for i := range rs {
		b.reads[i] = rs[i].Seq
	}
}

func (b *kmercntBench) RunCtx(ctx context.Context, threads int) (RunStats, error) {
	start := time.Now()
	res, err := kmercnt.RunKernelCtx(ctx, b.reads, 17, threads, kmercnt.Linear)
	if err != nil {
		return RunStats{}, err
	}
	return RunStats{
		Elapsed:   time.Since(start),
		Counters:  res.Counters,
		TaskStats: res.TaskStats,
		Extra: map[string]float64{
			"kmers":    float64(res.Kmers),
			"distinct": float64(res.Distinct),
			"probes":   float64(res.Probes),
		},
	}, nil
}

// ---- grm ----

type grmBench struct {
	genotypes *grm.Genotypes
}

func (b *grmBench) Info() Info {
	return Info{
		Name: "grm", Tool: "PLINK2", Pipeline: "population",
		Motif: "dense matrix multiplication", Granularity: "Output element",
		WorkUnit: "multiply-accumulates", Irregular: false,
	}
}

func (b *grmBench) Prepare(size Size, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	// Paper: 2504 individuals x 194K/1.07M variants; scaled.
	n := pick(size, 160, 320)
	s := pick(size, 3000, 12000)
	b.genotypes = grm.Simulate(rng, n, s, 0.1)
}

func (b *grmBench) RunCtx(ctx context.Context, threads int) (RunStats, error) {
	start := time.Now()
	res, err := grm.RunKernelCtx(ctx, b.genotypes, 64, threads)
	if err != nil {
		return RunStats{}, err
	}
	ts := perf.NewTaskStats("multiply-accumulates")
	ts.Observe(float64(res.FLOPs))
	return RunStats{
		Elapsed:   time.Since(start),
		Counters:  res.Counters,
		TaskStats: ts,
		Extra:     map[string]float64{"flops": float64(res.FLOPs)},
	}, nil
}

// ---- nn-base ----

type nnbaseBench struct {
	model *nnbase.Model
	cfg   nnbase.Config
	reads []nnbase.Read
}

func (b *nnbaseBench) Info() Info {
	return Info{
		Name: "nn-base", Tool: "Bonito", Pipeline: "de novo",
		Motif: "dense neural network (CNN + CTC)", Granularity: "Signal chunk",
		WorkUnit: "multiply-accumulates", Irregular: false, GPU: true,
	}
}

func (b *nnbaseBench) Prepare(size Size, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	b.reads = nil
	b.cfg = nnbase.DefaultConfig()
	b.cfg.Channels = 32
	b.cfg.Blocks = 3
	b.model = nnbase.NewModel(seed, b.cfg)
	pore := signalsim.NewPoreModel()
	src := genome.NewReference(rng, "chr", 60_000, 0.1)
	n := pick(size, 6, 30)
	for i := 0; i < n; i++ {
		length := 400 + rng.Intn(800)
		start := rng.Intn(len(src.Seq) - length)
		sig := signalsim.RawSignal(rng, pore, src.Seq[start:start+length], signalsim.DefaultConfig())
		b.reads = append(b.reads, nnbase.Read{Name: "sig", Signal: sig})
	}
}

func (b *nnbaseBench) RunCtx(ctx context.Context, threads int) (RunStats, error) {
	start := time.Now()
	res, err := nnbase.RunKernelCtx(ctx, b.model, b.reads, b.cfg, threads)
	if err != nil {
		return RunStats{}, err
	}
	return RunStats{
		Elapsed:   time.Since(start),
		Counters:  res.Counters,
		TaskStats: res.TaskStats,
		Extra: map[string]float64{
			"macs":  float64(res.MACs),
			"bases": float64(res.BasesOut),
		},
	}, nil
}

// ---- pileup ----

type pileupBench struct {
	regions []*pileup.Region
}

func (b *pileupBench) Info() Info {
	return Info{
		Name: "pileup", Tool: "Medaka", Pipeline: "reference-guided",
		Motif: "record parsing + counting", Granularity: "Read",
		WorkUnit: "read lookups", Irregular: true,
	}
}

func (b *pileupBench) Prepare(size Size, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	refLen := pick(size, 600_000, 3_000_000)
	ref := genome.NewReference(rng, "chr", refLen, 0.1)
	n := pick(size, 1500, 7500)
	alns := simio.SimulateAlignments(rng, ref.Seq, n, simio.DefaultAlignSim())
	// Coverage is uneven across the genome (mappability, GC bias):
	// skew alignment starts toward the front half so regions differ.
	for _, a := range alns {
		f := rng.Float64()
		maxPos := refLen - a.Cigar.RefLen() - 1
		if maxPos > 0 {
			a.Pos = int(f * f * float64(maxPos))
		}
	}
	b.regions = pileup.SplitRegions(refLen, alns, pileup.RegionSize)
}

func (b *pileupBench) RunCtx(ctx context.Context, threads int) (RunStats, error) {
	start := time.Now()
	res, err := pileup.RunKernelCtx(ctx, b.regions, threads)
	if err != nil {
		return RunStats{}, err
	}
	return RunStats{
		Elapsed:   time.Since(start),
		Counters:  res.Counters,
		TaskStats: res.TaskStats,
		Extra: map[string]float64{
			"read_lookups": float64(res.ReadLookups),
			"depth":        float64(res.TotalDepth),
		},
	}, nil
}

// ---- nn-variant ----

type nnvariantBench struct {
	model *nnvariant.Model
	tasks []*nnvariant.Task
}

func (b *nnvariantBench) Info() Info {
	return Info{
		Name: "nn-variant", Tool: "Clair", Pipeline: "reference-guided",
		Motif: "dense neural network (BiLSTM)", Granularity: "Candidate position",
		WorkUnit: "multiply-accumulates", Irregular: false, GPU: true,
	}
}

func (b *nnvariantBench) Prepare(size Size, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	b.tasks = nil
	b.model = nnvariant.NewModel(seed, nnvariant.DefaultConfig())
	refLen := pick(size, 40_000, 200_000)
	ref := genome.NewReference(rng, "chr", refLen, 0.05)
	alns := simio.SimulateAlignments(rng, ref.Seq, pick(size, 250, 1250), simio.AlignSimConfig{
		MeanReadLen: 2000, SubRate: 0.02, InsRate: 0.01, DelRate: 0.01,
		MeanQual: 20, RefName: "chr",
	})
	regions := pileup.SplitRegions(refLen, alns, 10_000)
	for _, rg := range regions {
		counts, _ := pileup.CountRegion(rg)
		cands := nnvariant.SelectCandidates(counts, ref.Seq, rg.Start, 8, 0.25)
		// Cap candidates per region to bound runtime like Clair's
		// batching does.
		if len(cands) > 40 {
			cands = cands[:40]
		}
		b.tasks = append(b.tasks, &nnvariant.Task{Counts: counts, Candidates: cands})
	}
}

func (b *nnvariantBench) RunCtx(ctx context.Context, threads int) (RunStats, error) {
	start := time.Now()
	res, err := nnvariant.RunKernelCtx(ctx, b.model, b.tasks, threads)
	if err != nil {
		return RunStats{}, err
	}
	return RunStats{
		Elapsed:   time.Since(start),
		Counters:  res.Counters,
		TaskStats: res.TaskStats,
		Extra: map[string]float64{
			"calls": float64(res.Calls),
			"macs":  float64(res.MACs),
		},
	}, nil
}

func init() {
	Register(&fmiBench{})
	Register(&bswBench{})
	Register(&dbgBench{})
	Register(&phmmBench{})
	Register(&chainBench{})
	Register(&poaBench{})
	Register(&abeaBench{})
	Register(&grmBench{})
	Register(&nnbaseBench{})
	Register(&pileupBench{})
	Register(&nnvariantBench{})
	Register(&kmercntBench{})
}

// Run implementations preserve the legacy non-cancellable API: they
// execute RunCtx under a background context and panic on failure,
// which cannot happen unless a fault plan is armed.

func mustRun(b Benchmark, threads int) RunStats {
	stats, err := b.RunCtx(context.Background(), threads)
	if err != nil {
		panic(err)
	}
	return stats
}

func (b *fmiBench) Run(threads int) RunStats       { return mustRun(b, threads) }
func (b *bswBench) Run(threads int) RunStats       { return mustRun(b, threads) }
func (b *dbgBench) Run(threads int) RunStats       { return mustRun(b, threads) }
func (b *phmmBench) Run(threads int) RunStats      { return mustRun(b, threads) }
func (b *chainBench) Run(threads int) RunStats     { return mustRun(b, threads) }
func (b *poaBench) Run(threads int) RunStats       { return mustRun(b, threads) }
func (b *abeaBench) Run(threads int) RunStats      { return mustRun(b, threads) }
func (b *kmercntBench) Run(threads int) RunStats   { return mustRun(b, threads) }
func (b *grmBench) Run(threads int) RunStats       { return mustRun(b, threads) }
func (b *nnbaseBench) Run(threads int) RunStats    { return mustRun(b, threads) }
func (b *pileupBench) Run(threads int) RunStats    { return mustRun(b, threads) }
func (b *nnvariantBench) Run(threads int) RunStats { return mustRun(b, threads) }

// Release implementations drop each benchmark's prepared dataset.

func (b *fmiBench) Release()       { *b = fmiBench{} }
func (b *bswBench) Release()       { *b = bswBench{} }
func (b *dbgBench) Release()       { *b = dbgBench{} }
func (b *phmmBench) Release()      { *b = phmmBench{} }
func (b *chainBench) Release()     { *b = chainBench{} }
func (b *poaBench) Release()       { *b = poaBench{} }
func (b *abeaBench) Release()      { *b = abeaBench{} }
func (b *kmercntBench) Release()   { *b = kmercntBench{} }
func (b *grmBench) Release()       { *b = grmBench{} }
func (b *nnbaseBench) Release()    { *b = nnbaseBench{} }
func (b *pileupBench) Release()    { *b = pileupBench{} }
func (b *nnvariantBench) Release() { *b = nnvariantBench{} }
