package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/perf"
	"repro/internal/resilience"
	"repro/internal/shard"
)

// DistConfig switches RunSuite onto the fault-tolerant shard fabric
// for the kernels that have registered executors. Kernels without an
// executor (shared-index and batched-model kernels) transparently fall
// back to the in-process path, so a distributed suite run still covers
// all twelve kernels.
type DistConfig struct {
	// Fabric is a started coordinator with workers attached (or about
	// to attach; RunJob tolerates workers joining late).
	Fabric *shard.Coordinator
	// Shards is the shard count per kernel job; 0 means 16. More shards
	// than workers is deliberate: small shards bound the work a lease
	// expiry re-executes and give the hedging path stragglers to chase.
	Shards int
	// Verify re-executes every distributed kernel in-process and
	// fails the kernel if the digest vectors differ. It is the
	// differential check the chaos tests run; expensive, but the
	// strongest possible statement that fault recovery preserved
	// results.
	Verify bool
}

func (d *DistConfig) shards() int {
	if d.Shards > 0 {
		return d.Shards
	}
	return 16
}

// Distributed reports whether this kernel would run on the fabric.
func (d *DistConfig) Distributed(kernel string) bool {
	return d != nil && d.Fabric != nil && shard.HasExecutor(kernel)
}

// runDistKernel executes one kernel over the shard fabric and shapes
// the job result into a KernelOutcome. The coordinator-side work runs
// under a single-attempt resilience envelope for panic isolation only
// — retries live below it (worker-side resilience.Run per shard) and
// inside the coordinator (lease-based reschedules and hedges), so a
// job error surfacing here means the fabric already exhausted its
// recovery budget and the kernel should degrade to a failed outcome.
func runDistKernel(ctx context.Context, info Info, cfg SuiteConfig, progress func(string, ...any)) KernelOutcome {
	d := cfg.Dist
	out := KernelOutcome{Info: info, Status: StatusOK}
	start := time.Now()
	var res *shard.JobResult
	policy := resilience.Policy{Attempts: 1, Timeout: cfg.Policy.Timeout}
	err := resilience.Run(ctx, info.Name, policy, func(actx context.Context) error {
		// Prepare locally to learn the task count; executors are
		// deterministic in (size, seed), so the workers' view of task
		// [0, n) matches this one's exactly.
		ex, err := shard.NewExecutor(info.Name)
		if err != nil {
			return err
		}
		n, err := ex.Prepare(cfg.Size.String(), cfg.Seed)
		if err != nil {
			return err
		}
		spec := shard.JobSpec{
			ID:        d.Fabric.NextJobID(),
			Kernel:    info.Name,
			Size:      cfg.Size.String(),
			Seed:      cfg.Seed,
			NumTasks:  n,
			NumShards: d.shards(),
		}
		progress("%s: distributing %d tasks over %d shards (%d worker(s))",
			info.Name, n, spec.NumShards, d.Fabric.Workers())
		res, err = d.Fabric.RunJob(actx, spec)
		if err != nil {
			return err
		}
		if d.Verify {
			local, _, err := LocalDigests(actx, info.Name, cfg.Size.String(), cfg.Seed)
			if err != nil {
				return fmt.Errorf("verify: %w", err)
			}
			if lfp := shard.Fingerprint(local); lfp != res.Fingerprint {
				return fmt.Errorf("verify: distributed fingerprint %016x != local %016x over %d tasks",
					res.Fingerprint, lfp, n)
			}
			progress("%s: verified bit-identical against in-process run", info.Name)
		}
		return nil
	})
	out.Attempts = 1
	if err != nil {
		out.Status = StatusFailed
		out.Err = err
		if res != nil {
			s := res.Summary
			out.Shard = &s
		}
		return out
	}
	s := res.Summary
	out.Shard = &s
	out.Fingerprint = res.Fingerprint
	// Shape the job result into RunStats so reporting downstream (table
	// rows, NDJSON, obs metrics) treats distributed kernels uniformly:
	// ops counted as kernel work units, per-shard wall times as the
	// task-work distribution.
	var counters perf.Counters
	counters.Add(perf.Other, res.Ops)
	ts := perf.NewTaskStats("shard wall ns")
	for _, ns := range res.ShardNs {
		ts.Observe(float64(ns))
	}
	out.Stats = RunStats{
		Elapsed:   time.Since(start),
		Counters:  counters,
		TaskStats: ts,
		Extra: map[string]float64{
			"shards":      float64(s.Shards),
			"dispatched":  float64(s.Dispatched),
			"rescheduled": float64(s.Rescheduled),
			"hedged":      float64(s.Hedged),
		},
	}
	return out
}
