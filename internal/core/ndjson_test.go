package core

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
)

// runObservedSuite executes a stub suite covering every outcome class —
// healthy, failing, fault-injected, and skipped via mid-suite
// cancellation — with a full observer attached, and returns the
// outcomes, the observer and the fault plan for export tests.
func runObservedSuite(t *testing.T) ([]KernelOutcome, *obs.Observer, *faultinject.Plan) {
	t.Helper()
	plan, err := faultinject.Parse("error:victim:1.0", 3)
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Arm(plan)
	t.Cleanup(faultinject.Disarm)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	benches := []Benchmark{
		&stubBench{name: "healthy"},
		&stubBench{name: "broken", fn: func(context.Context) error { return errors.New("deliberate failure") }},
		&stubBench{name: "victim", fn: func(c context.Context) error { return faultinject.Point(c) }},
		&stubBench{name: "canceller", fn: func(context.Context) error { cancel(); return nil }},
		&stubBench{name: "skipped"},
	}
	o := obs.NewObserver()
	outcomes := RunSuite(ctx, benches, SuiteConfig{Policy: quietPolicy(), Obs: o})
	if len(outcomes) != len(benches) {
		t.Fatalf("got %d outcomes for %d benches", len(outcomes), len(benches))
	}
	return outcomes, o, plan
}

func TestMetricsNDJSONRoundTrip(t *testing.T) {
	outcomes, o, plan := runObservedSuite(t)

	var faults []FaultRecord
	for _, s := range plan.Stats() {
		faults = append(faults, FaultRecord{
			Type: "fault", Clause: s.Clause, Site: s.Site, Kind: s.Kind.String(),
			Evals: s.Evals, Tripped: s.Tripped,
		})
	}
	meta := NewRunMeta(SuiteConfig{Size: Small, Seed: 42, Threads: 2}, "error:victim:1.0")
	var buf bytes.Buffer
	if err := WriteMetricsNDJSON(&buf, meta, outcomes, faults, o); err != nil {
		t.Fatal(err)
	}

	mf, err := ReadMetricsNDJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("round-trip parse failed: %v", err)
	}
	if mf.Meta == nil || mf.Meta.Schema != MetricsSchemaVersion || mf.Meta.Size != "small" || mf.Meta.Seed != 42 {
		t.Errorf("meta = %+v", mf.Meta)
	}
	if mf.Meta.Faults != "error:victim:1.0" {
		t.Errorf("meta faults = %q", mf.Meta.Faults)
	}

	// The acceptance bar: exactly one well-formed kernel record per
	// kernel, including the failed and skipped ones.
	want := map[string]string{
		"healthy":   "ok",
		"broken":    "failed",
		"victim":    "failed",
		"canceller": "ok",
		"skipped":   "skipped",
	}
	if len(mf.Kernels) != len(want) {
		t.Fatalf("got %d kernel records, want %d: %+v", len(mf.Kernels), len(want), mf.Kernels)
	}
	seen := map[string]bool{}
	for _, k := range mf.Kernels {
		if seen[k.Kernel] {
			t.Errorf("duplicate kernel record for %q", k.Kernel)
		}
		seen[k.Kernel] = true
		if k.Status != want[k.Kernel] {
			t.Errorf("%s status = %q, want %q", k.Kernel, k.Status, want[k.Kernel])
		}
	}
	for _, k := range mf.Kernels {
		switch k.Kernel {
		case "healthy":
			if k.ElapsedNs <= 0 || k.Attempts != 1 {
				t.Errorf("healthy record = %+v", k)
			}
		case "broken":
			if !strings.Contains(k.Error, "deliberate failure") || k.Attempts != 2 {
				t.Errorf("broken record = %+v", k)
			}
		case "victim":
			if !strings.Contains(k.Error, "injected") {
				t.Errorf("victim record error = %q, want injected-fault mention", k.Error)
			}
		case "skipped":
			if k.ElapsedNs != 0 || k.Ops != 0 || k.TaskWork != nil {
				t.Errorf("skipped record should carry no stats: %+v", k)
			}
		}
	}

	// Fault clause accounting survives the round trip: the clause was
	// evaluated (once per attempt) and tripped every time at prob 1.0.
	if len(mf.Faults) != 1 {
		t.Fatalf("fault records = %+v", mf.Faults)
	}
	fr := mf.Faults[0]
	if fr.Site != "victim" || fr.Kind != "error" || fr.Evals < 2 || fr.Tripped != fr.Evals {
		t.Errorf("fault record = %+v", fr)
	}

	// Supervisor metrics for the retried kernels made it into the file.
	metric := func(name, label string) *obs.MetricSnapshot {
		for i := range mf.Metrics {
			if mf.Metrics[i].Name == name && mf.Metrics[i].Label == label {
				return &mf.Metrics[i]
			}
		}
		return nil
	}
	if m := metric("resilience.retries", "broken"); m == nil || m.Value < 1 {
		t.Errorf("resilience.retries[broken] = %+v", m)
	}
	if m := metric("suite.kernels", "healthy"); m == nil || m.Value != 1 {
		t.Errorf("suite.kernels[healthy] = %+v", m)
	}
	if m := metric("suite.kernels_skipped", "skipped"); m == nil || m.Value != 1 {
		t.Errorf("suite.kernels_skipped[skipped] = %+v", m)
	}
	if m := metric("kernel.elapsed_ns", "healthy"); m == nil || m.Kind != "histogram" || m.Count != 1 {
		t.Errorf("kernel.elapsed_ns[healthy] = %+v", m)
	}
}

func TestTraceNDJSONSpans(t *testing.T) {
	outcomes, o, _ := runObservedSuite(t)
	_ = outcomes
	meta := NewRunMeta(SuiteConfig{Size: Small}, "")
	var buf bytes.Buffer
	if err := WriteTraceNDJSON(&buf, meta, o); err != nil {
		t.Fatal(err)
	}
	mf, err := ReadMetricsNDJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("trace parse failed: %v", err)
	}
	byName := map[string]obs.SpanRecord{}
	for _, s := range mf.Spans {
		byName[s.Name] = s
	}
	suite, ok := byName["suite"]
	if !ok {
		t.Fatalf("no suite span in %d spans", len(mf.Spans))
	}
	if suite.Parent != 0 {
		t.Errorf("suite span has parent %d", suite.Parent)
	}
	for _, name := range []string{"kernel:healthy", "kernel:broken", "kernel:victim", "kernel:skipped"} {
		s, ok := byName[name]
		if !ok {
			t.Errorf("missing span %q", name)
			continue
		}
		if s.Parent != suite.ID {
			t.Errorf("%s parent = %d, want suite id %d", name, s.Parent, suite.ID)
		}
	}
	if s := byName["kernel:skipped"]; s.Status != "skipped" {
		t.Errorf("skipped kernel span status = %q", s.Status)
	}
	if s := byName["kernel:healthy"]; s.Status != "ok" {
		t.Errorf("healthy kernel span status = %q", s.Status)
	}
	// Retried kernels record one attempt span per attempt, nested
	// under their kernel span.
	attempts := 0
	for _, s := range mf.Spans {
		if strings.HasPrefix(s.Name, "attempt-") && s.Parent == byName["kernel:broken"].ID {
			attempts++
		}
	}
	if attempts != 2 {
		t.Errorf("broken kernel has %d attempt spans, want 2", attempts)
	}
	// prepare and run spans nest under an attempt span.
	run, ok := byName["run"]
	if !ok {
		t.Error("no run span recorded")
	} else {
		parentIsAttempt := false
		for _, s := range mf.Spans {
			if s.ID == run.Parent && strings.HasPrefix(s.Name, "attempt-") {
				parentIsAttempt = true
			}
		}
		if !parentIsAttempt {
			t.Errorf("run span parent %d is not an attempt span", run.Parent)
		}
	}
}

func TestReadMetricsNDJSONRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, input, wantErr string
	}{
		{"bad json", "{\"type\":\"meta\"}\n{not json}\n", "line 2"},
		{"missing type", "{\"kernel\":\"fmi\"}\n", "without a type"},
		{"kernel without name", "{\"type\":\"kernel\",\"status\":\"ok\"}\n", "without a kernel name"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadMetricsNDJSON(strings.NewReader(tc.input))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("err = %v, want mention of %q", err, tc.wantErr)
			}
		})
	}
}

func TestReadMetricsNDJSONSkipsUnknownTypes(t *testing.T) {
	input := "{\"type\":\"meta\",\"schema\":1}\n" +
		"{\"type\":\"future-record\",\"x\":1}\n" +
		"{\"type\":\"kernel\",\"kernel\":\"fmi\",\"status\":\"ok\"}\n" +
		"\n"
	mf, err := ReadMetricsNDJSON(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if mf.Meta == nil || len(mf.Kernels) != 1 {
		t.Errorf("parsed file = %+v", mf)
	}
}

func TestMetricsTablesRender(t *testing.T) {
	outcomes, o, plan := runObservedSuite(t)
	var faults []FaultRecord
	for _, s := range plan.Stats() {
		faults = append(faults, FaultRecord{
			Type: "fault", Clause: s.Clause, Site: s.Site, Kind: s.Kind.String(),
			Evals: s.Evals, Tripped: s.Tripped,
		})
	}
	meta := NewRunMeta(SuiteConfig{Size: Small, Seed: 1, Threads: 2}, "error:victim:1.0")
	var buf bytes.Buffer
	if err := WriteMetricsNDJSON(&buf, meta, outcomes, faults, o); err != nil {
		t.Fatal(err)
	}
	mf, err := ReadMetricsNDJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	tables := MetricsTables(mf)
	if len(tables) < 3 {
		t.Fatalf("got %d tables, want kernel + metrics + faults", len(tables))
	}
	rendered := ""
	for _, tb := range tables {
		rendered += tb.String() + "\n"
	}
	for _, want := range []string{
		"healthy", "broken", "skipped", "deliberate failure",
		"resilience.retries", "error:victim", "tripped",
	} {
		if !strings.Contains(rendered, want) {
			t.Errorf("rendered tables missing %q", want)
		}
	}
}

func TestKernelRecordsZeroElapsedStillOK(t *testing.T) {
	// A kernel whose RunStats carry no TaskStats or Extra still yields
	// a minimal, valid record.
	outcomes := []KernelOutcome{{
		Info:   Info{Name: "bare"},
		Status: StatusOK,
		Stats:  RunStats{Elapsed: time.Microsecond},
	}}
	recs := KernelRecords(outcomes)
	if len(recs) != 1 || recs[0].Kernel != "bare" || recs[0].TaskWork != nil {
		t.Errorf("records = %+v", recs)
	}
}
