// Package fmindex implements the fmi kernel: FM-index construction and
// the super-maximal exact match (SMEM) search from BWA-MEM2. The index
// is built over the concatenation of the genome and its reverse
// complement (an FMD index), enabling the bidirectional interval
// extension that SMEM enumeration requires. Suffix arrays are built
// with the linear-time SA-IS algorithm.
package fmindex

// saisBytes builds the suffix array of text (values < k) with SA-IS.
// text must not contain the value 0 except as an implicit terminator —
// the function appends its own unique sentinel internally and returns
// the suffix array of text WITHOUT the sentinel row.
func saisBytes(text []byte, k int) []int32 {
	n := len(text)
	s := make([]int32, n+1)
	for i, b := range text {
		s[i] = int32(b) + 1 // shift so 0 is free for the sentinel
	}
	s[n] = 0
	sa := saisInt(s, k+1)
	// Drop the sentinel suffix (always first).
	return sa[1:]
}

// saisInt is the recursive SA-IS core over an int32 string whose last
// element is a unique smallest sentinel 0.
func saisInt(s []int32, k int) []int32 {
	n := len(s)
	sa := make([]int32, n)
	if n == 1 {
		sa[0] = 0
		return sa
	}
	// Suffix type classification: true = S-type.
	types := make([]bool, n)
	types[n-1] = true
	for i := n - 2; i >= 0; i-- {
		types[i] = s[i] < s[i+1] || (s[i] == s[i+1] && types[i+1])
	}
	isLMS := func(i int) bool { return i > 0 && types[i] && !types[i-1] }

	bkt := make([]int32, k)
	bucketSizes := func() {
		for i := range bkt {
			bkt[i] = 0
		}
		for _, c := range s {
			bkt[c]++
		}
	}
	bucketEnds := func() {
		bucketSizes()
		var sum int32
		for i := range bkt {
			sum += bkt[i]
			bkt[i] = sum
		}
	}
	bucketStarts := func() {
		bucketSizes()
		var sum int32
		for i := range bkt {
			sum, bkt[i] = sum+bkt[i], sum
		}
	}

	// Step 1: place LMS suffixes at their bucket ends and induce.
	for i := range sa {
		sa[i] = -1
	}
	bucketEnds()
	for i := n - 1; i >= 0; i-- {
		if isLMS(i) {
			bkt[s[i]]--
			sa[bkt[s[i]]] = int32(i)
		}
	}
	// The sentinel suffix sorts first.
	sa[0] = int32(n - 1)
	// Clear stale negative slots for induction correctness: induction
	// only reads sa[i] > 0, so -1 entries are ignored naturally, but we
	// must not treat them as suffix 0; use 0 only when placed.
	induceFromLMS(s, sa, types, bkt, bucketStarts, bucketEnds)

	// Step 2: name LMS substrings in their sorted order.
	nLMS := 0
	for i := 0; i < n; i++ {
		if isLMS(int(sa[i])) {
			sa[nLMS] = sa[i]
			nLMS++
		}
	}
	names := sa[nLMS:]
	for i := range names {
		names[i] = -1
	}
	name := int32(0)
	var prev int32 = -1
	for i := 0; i < nLMS; i++ {
		pos := sa[i]
		if prev >= 0 && !lmsEqual(s, types, int(prev), int(pos)) {
			name++
		} else if prev < 0 {
			name = 0
		}
		names[pos/2] = name
		prev = pos
	}
	// Compact names into the reduced string (in text order).
	reduced := make([]int32, 0, nLMS)
	lmsPos := make([]int32, 0, nLMS)
	for i := 0; i < n; i++ {
		if isLMS(i) {
			reduced = append(reduced, names[i/2])
			lmsPos = append(lmsPos, int32(i))
		}
	}

	// Step 3: sort LMS suffixes, recursing when names collide.
	var lmsSA []int32
	if int(name)+1 < len(reduced) {
		lmsSA = saisInt(reduced, int(name)+1)
	} else {
		lmsSA = make([]int32, len(reduced))
		for i, nm := range reduced {
			lmsSA[nm] = int32(i)
		}
	}

	// Step 4: final induced sort from correctly ordered LMS suffixes.
	for i := range sa {
		sa[i] = -1
	}
	bucketEnds()
	for i := len(lmsSA) - 1; i >= 0; i-- {
		j := lmsPos[lmsSA[i]]
		bkt[s[j]]--
		sa[bkt[s[j]]] = j
	}
	induceFromLMS(s, sa, types, bkt, bucketStarts, bucketEnds)
	return sa
}

// induceFromLMS performs the two induction sweeps given LMS positions
// already placed in sa (other slots -1).
func induceFromLMS(s, sa []int32, types []bool, bkt []int32, bucketStarts, bucketEnds func()) {
	n := len(s)
	bucketStarts()
	for i := 0; i < n; i++ {
		j := sa[i] - 1
		if sa[i] > 0 && !types[j] {
			sa[bkt[s[j]]] = j
			bkt[s[j]]++
		}
	}
	bucketEnds()
	for i := n - 1; i >= 0; i-- {
		j := sa[i] - 1
		if sa[i] > 0 && types[j] {
			bkt[s[j]]--
			sa[bkt[s[j]]] = j
		}
	}
}

// lmsEqual reports whether the LMS substrings starting at a and b are
// identical (same characters and types up to and including the next LMS
// position).
func lmsEqual(s []int32, types []bool, a, b int) bool {
	n := len(s)
	if a == n-1 || b == n-1 {
		return a == b
	}
	for i := 0; ; i++ {
		aLMS := a+i > 0 && types[a+i] && !types[a+i-1]
		bLMS := b+i > 0 && types[b+i] && !types[b+i-1]
		if i > 0 && aLMS && bLMS {
			return true
		}
		if aLMS != bLMS || s[a+i] != s[b+i] {
			return false
		}
	}
}
