package fmindex

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/cachesim"
	"repro/internal/genome"
)

// serialSMEMs is the reference: per-read serial enumeration with
// per-read lookup counts.
func serialSMEMs(x *Index, reads []genome.Seq, minLen, minHits int) ([][]SMEM, []uint64) {
	out := make([][]SMEM, len(reads))
	lks := make([]uint64, len(reads))
	for i, r := range reads {
		out[i] = x.FindSMEMsTraced(r, minLen, minHits, &lks[i], nil)
	}
	return out, lks
}

// batchSMEMs runs the engine at the given width, capturing per-read
// copies and per-read lookup counts.
func batchSMEMs(x *Index, reads []genome.Seq, minLen, minHits, width int) ([][]SMEM, []uint64, error) {
	out := make([][]SMEM, len(reads))
	lks := make([]uint64, len(reads))
	e := NewBatchEngine(x, width, nil)
	err := e.Run(reads, minLen, minHits, nil, func(i int, smems []SMEM, lk uint64) {
		out[i] = append([]SMEM(nil), smems...)
		lks[i] = lk
	})
	return out, lks, err
}

func compareSMEMs(t *testing.T, tag string, reads []genome.Seq, want, got [][]SMEM, wantLk, gotLk []uint64) {
	t.Helper()
	for i := range reads {
		if !reflect.DeepEqual(want[i], got[i]) {
			t.Fatalf("%s: read %d (len %d): batched SMEMs diverge\nserial:  %+v\nbatched: %+v",
				tag, i, len(reads[i]), want[i], got[i])
		}
		if wantLk[i] != gotLk[i] {
			t.Fatalf("%s: read %d: lookup count %d, serial %d", tag, i, gotLk[i], wantLk[i])
		}
	}
}

// The batched engine must reproduce the serial enumeration exactly —
// same SMEMs in the same order, same per-read Occ lookup counts —
// across random reads, read lengths (including empty and shorter than
// the batch width), and minLen/minHits settings.
func TestSmemBatchDifferentialExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g := genome.Random(rng, 4096)
	x := Build(g)
	for _, tc := range []struct{ minLen, minHits int }{
		{1, 1}, {8, 1}, {19, 1}, {12, 2}, {6, 4}, {19, 0},
	} {
		var reads []genome.Seq
		// Genome-derived reads with mutations: long SMEM walks.
		for n := 0; n < 24; n++ {
			l := 1 + rng.Intn(160)
			start := rng.Intn(len(g) - l + 1)
			r := g[start : start+l].Clone()
			for m := 0; m < rng.Intn(4); m++ {
				r[rng.Intn(l)] = genome.Base(rng.Intn(4))
			}
			reads = append(reads, r)
		}
		// Pure random reads, empties, and single-base reads.
		for n := 0; n < 12; n++ {
			reads = append(reads, genome.Random(rng, rng.Intn(40)))
		}
		reads = append(reads, genome.Seq{}, genome.Seq{0}, genome.Seq{3})
		want, wantLk := serialSMEMs(x, reads, tc.minLen, tc.minHits)
		got, gotLk, err := batchSMEMs(x, reads, tc.minLen, tc.minHits, 8)
		if err != nil {
			t.Fatal(err)
		}
		compareSMEMs(t, "batch8", reads, want, got, wantLk, gotLk)
	}
}

// Width is pure dispatch policy: every width must produce identical
// output, including widths far larger than the read count.
func TestSmemBatchForcedWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := genome.Random(rng, 2048)
	x := Build(g)
	reads := make([]genome.Seq, 9) // fewer reads than the widest engine
	for i := range reads {
		l := 20 + rng.Intn(100)
		start := rng.Intn(len(g) - l)
		reads[i] = g[start : start+l].Clone()
		reads[i][rng.Intn(l)] = genome.Base(rng.Intn(4))
	}
	want, wantLk := serialSMEMs(x, reads, 15, 1)
	for _, w := range []int{1, 2, 3, 5, 8, 17, 64} {
		got, gotLk, err := batchSMEMs(x, reads, 15, 1, w)
		if err != nil {
			t.Fatal(err)
		}
		compareSMEMs(t, "width", reads, want, got, wantLk, gotLk)
	}
	// Width 0 resolves the tunable; pin it so the test is hermetic.
	defer BatchWidth.Set(16)()
	e := NewBatchEngine(x, 0, nil)
	if e.Width() != 16 {
		t.Fatalf("width 0 resolved to %d, want pinned 16", e.Width())
	}
}

// The empty-interval early-out: a base absent from the forward strand
// of an all-A genome still occurs via the reverse complement, so use
// reads over a two-letter genome where some extensions die instantly,
// plus literal first-base dead ends on a crafted index.
func TestSmemBatchEmptyIntervalEarlyOut(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	// Genome of only A and C: G/T appear only as revcomp; random G/T
	// runs in reads collapse intervals fast, exercising the iv.S == 0
	// early-out and single-position anchors.
	g := make(genome.Seq, 600)
	for i := range g {
		g[i] = genome.Base(rng.Intn(2)) // A or C
	}
	x := Build(g)
	reads := make([]genome.Seq, 20)
	for i := range reads {
		reads[i] = genome.Random(rng, 1+rng.Intn(60)) // all four letters
	}
	want, wantLk := serialSMEMs(x, reads, 4, 1)
	got, gotLk, err := batchSMEMs(x, reads, 4, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	compareSMEMs(t, "earlyout", reads, want, got, wantLk, gotLk)
}

// The kernel's aggregate results (SMEM count, Occ lookups) must be
// unchanged by the batched routing, at every thread count and width.
func TestSmemBatchKernelDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	g := genome.Random(rng, 8192)
	x := Build(g)
	reads := make([]genome.Seq, 64)
	for i := range reads {
		l := 30 + rng.Intn(90)
		start := rng.Intn(len(g) - l)
		reads[i] = g[start : start+l].Clone()
	}
	var wantSmems int
	var wantLookups uint64
	for _, r := range reads {
		var lk uint64
		wantSmems += len(x.FindSMEMsTraced(r, 19, 1, &lk, nil))
		wantLookups += lk
	}
	for _, threads := range []int{1, 2, 4} {
		for _, width := range []int{0, 1, 8, 32} {
			res, err := RunKernelCtx(context.Background(), x, reads,
				KernelConfig{MinSeedLen: 19, MinHits: 1, Threads: threads, BatchWidth: width})
			if err != nil {
				t.Fatal(err)
			}
			if res.SMEMs != wantSmems || res.OccLookups != wantLookups {
				t.Fatalf("threads=%d width=%d: got %d SMEMs / %d lookups, want %d / %d",
					threads, width, res.SMEMs, res.OccLookups, wantSmems, wantLookups)
			}
			if res.Reads != len(reads) {
				t.Fatalf("Reads = %d, want %d", res.Reads, len(reads))
			}
		}
	}
}

// Concurrent per-worker engines must be race-free (run under -race in
// CI) and still bit-exact in aggregate.
func TestSmemBatchRaceHammer(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	g := genome.Random(rng, 4096)
	x := Build(g)
	reads := make([]genome.Seq, 300)
	for i := range reads {
		l := 10 + rng.Intn(80)
		start := rng.Intn(len(g) - l)
		reads[i] = g[start : start+l].Clone()
	}
	base, err := RunKernelCtx(context.Background(), x, reads,
		KernelConfig{MinSeedLen: 15, MinHits: 1, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 3; rep++ {
		res, err := RunKernelCtx(context.Background(), x, reads,
			KernelConfig{MinSeedLen: 15, MinHits: 1, Threads: 8, BatchWidth: 4 + rep*6})
		if err != nil {
			t.Fatal(err)
		}
		if res.SMEMs != base.SMEMs || res.OccLookups != base.OccLookups {
			t.Fatalf("rep %d: %d SMEMs / %d lookups, want %d / %d",
				rep, res.SMEMs, res.OccLookups, base.SMEMs, base.OccLookups)
		}
	}
}

// An admit error (the kernel's fault/cancel point) must abort the run
// with that error.
func TestSmemBatchAdmitError(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	g := genome.Random(rng, 1024)
	x := Build(g)
	reads := make([]genome.Seq, 20)
	for i := range reads {
		reads[i] = genome.Random(rng, 30)
	}
	boom := errors.New("boom")
	e := NewBatchEngine(x, 4, nil)
	emitted := 0
	err := e.Run(reads, 10, 1, func(i int) error {
		if i == 7 {
			return boom
		}
		return nil
	}, func(int, []SMEM, uint64) { emitted++ })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if emitted > 7 {
		t.Fatalf("emitted %d reads after the fault point", emitted)
	}
}

// Steady-state engine reuse must not allocate: the lanes' candidate
// lists and output buffers are grow-only scratch.
func TestBatchEngineZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	g := genome.Random(rng, 4096)
	x := Build(g)
	reads := make([]genome.Seq, 40)
	for i := range reads {
		l := 30 + rng.Intn(60)
		start := rng.Intn(len(g) - l)
		reads[i] = g[start : start+l].Clone()
	}
	e := NewBatchEngine(x, 8, nil)
	var sink int
	emit := func(_ int, smems []SMEM, _ uint64) { sink += len(smems) }
	run := func() {
		if err := e.Run(reads, 19, 1, nil, emit); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the grow-only scratch
	if allocs := testing.AllocsPerRun(10, run); allocs != 0 {
		t.Fatalf("steady-state allocs/run = %v, want 0", allocs)
	}
	_ = sink
}

// The lock-step engine's reordered address stream must simulate
// strictly less stall than the serial walk on the same reads: demand
// accesses land on lines the discounted prefetches already installed.
// This is the claim the whole tentpole rests on, scored by cachesim.
func TestBatchedStallBelowSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	g := genome.Random(rng, 1<<18) // Occ regions far exceed the simulated L1/L2
	x := Build(g)
	reads := make([]genome.Seq, 96)
	for i := range reads {
		l := 80 + rng.Intn(60)
		start := rng.Intn(len(g) - l)
		reads[i] = g[start : start+l].Clone()
		for m := 0; m < 2; m++ {
			reads[i][rng.Intn(l)] = genome.Base(rng.Intn(4))
		}
	}

	serial := cachesim.NewHierarchy(cachesim.XeonE31240v5())
	var serialLk uint64
	for _, r := range reads {
		x.FindSMEMsTraced(r, 19, 1, &serialLk, serial)
	}

	batched := cachesim.NewHierarchy(cachesim.XeonE31240v5())
	var batchedLk uint64
	x.FindSMEMsBatch(reads, 19, 1, 16, &batchedLk, batched)

	if serialLk != batchedLk {
		t.Fatalf("lookup counts diverge: serial %d, batched %d", serialLk, batchedLk)
	}
	// Identical demand stream size; the prefetch stream rides alongside.
	if serial.Reads != batched.Reads {
		t.Fatalf("demand access counts diverge: serial %d, batched %d", serial.Reads, batched.Reads)
	}
	if batched.Prefetches == 0 {
		t.Fatal("batched trace issued no prefetches")
	}
	instr := serialLk * 7 // rough op mix; identical on both sides
	rs := serial.Report(instr)
	rb := batched.Report(instr)
	if rb.CyclesEstimate >= rs.CyclesEstimate {
		t.Fatalf("batched cycle estimate %.0f not below serial %.0f",
			rb.CyclesEstimate, rs.CyclesEstimate)
	}
	stallS := rs.CyclesEstimate * rs.StallFraction
	stallB := rb.CyclesEstimate * rb.StallFraction
	if stallB >= stallS {
		t.Fatalf("batched stall %.0f not below serial stall %.0f", stallB, stallS)
	}
	t.Logf("stall cycles: serial %.0f -> batched %.0f (%.2fx), L1 miss %.3f -> %.3f",
		stallS, stallB, stallS/stallB, rs.L1MissRatio, rb.L1MissRatio)
}
