package fmindex

import (
	"math/rand"
	"testing"

	"repro/internal/genome"
)

// naiveCountInexact counts text positions within maxMM substitutions.
func naiveCountInexact(text string, pat string, maxMM int) int {
	n := 0
	for i := 0; i+len(pat) <= len(text); i++ {
		mm := 0
		for j := 0; j < len(pat); j++ {
			if text[i+j] != pat[j] {
				mm++
				if mm > maxMM {
					break
				}
			}
		}
		if mm <= maxMM {
			n++
		}
	}
	return n
}

func TestInexactMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := genome.Random(rng, 400)
	x := Build(g)
	text := testText(g)
	for trial := 0; trial < 30; trial++ {
		plen := 6 + rng.Intn(6)
		var pat genome.Seq
		if rng.Intn(2) == 0 {
			start := rng.Intn(len(g) - plen)
			pat = g[start : start+plen].Clone()
			// Mutate one base so the exact form may be absent.
			p := rng.Intn(plen)
			pat[p] = genome.Base(rng.Intn(4))
		} else {
			pat = genome.Random(rng, plen)
		}
		for _, mm := range []int{0, 1, 2} {
			got := x.CountInexact(pat, mm)
			want := naiveCountInexact(text, pat.String(), mm)
			if got != want {
				t.Fatalf("trial %d mm=%d pat=%s: got %d, want %d", trial, mm, pat, got, want)
			}
		}
	}
}

func TestInexactZeroEqualsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := genome.Random(rng, 300)
	x := Build(g)
	for trial := 0; trial < 20; trial++ {
		pat := genome.Random(rng, 8)
		if got, want := x.CountInexact(pat, 0), x.Count(pat); got != want {
			t.Fatalf("CountInexact(0) = %d, Count = %d", got, want)
		}
	}
}

func TestInexactMonotoneInBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := genome.Random(rng, 500)
	x := Build(g)
	pat := g[100:112]
	prev := -1
	for mm := 0; mm <= 3; mm++ {
		c := x.CountInexact(pat, mm)
		if c < prev {
			t.Fatalf("count decreased with larger budget: %d -> %d", prev, c)
		}
		prev = c
	}
}

func TestInexactHitOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := genome.Random(rng, 500)
	x := Build(g)
	pat := g[50:62].Clone()
	pat[6] = genome.Complement(pat[6])
	hits := x.InexactSearch(pat, 2, nil)
	for i := 1; i < len(hits); i++ {
		if hits[i].Mismatches < hits[i-1].Mismatches {
			t.Fatal("hits not sorted by mismatch count")
		}
	}
	// The mutated pattern should have a 1-mismatch hit (the original
	// locus) even if the exact form is absent.
	found := false
	for _, h := range hits {
		if h.Mismatches <= 1 && h.S > 0 {
			found = true
		}
	}
	if !found {
		t.Error("no ≤1-mismatch hit for a single-SNV pattern")
	}
}

func TestInexactLookupCounting(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := genome.Random(rng, 300)
	x := Build(g)
	pat := genome.Random(rng, 10)
	var l0, l2 uint64
	x.InexactSearch(pat, 0, &l0)
	x.InexactSearch(pat, 2, &l2)
	if l2 <= l0 {
		t.Errorf("larger budget should cost more lookups: %d vs %d", l2, l0)
	}
}

func TestInexactEmptyPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := Build(genome.Random(rng, 100))
	if hits := x.InexactSearch(nil, 2, nil); hits != nil {
		t.Error("empty pattern should yield no hits")
	}
}
