package fmindex

import (
	"repro/internal/prefetch"
	"repro/internal/tuning"
)

// BatchWidth is the number of in-flight SMEM query states the batch
// engine rotates through (the W of the lock-step schedule). Deeper
// windows give each lane's prefetches more sibling compute to hide
// behind but grow the live state the rotation itself must keep warm;
// the sweet spot is the host's memory-level-parallelism capacity, so
// the probe asks internal/prefetch's interleaved pointer-chase rather
// than timing SMEM search itself (a probe-sized index would be
// cache-resident and would measure only dispatch overhead). Width is
// pure dispatch policy — any value yields bit-identical SMEMs (see
// TestSmemBatchForcedWidths) — so a mistuned cache entry can cost
// speed, never correctness.
var BatchWidth = tuning.NewInt("fmindex.batch_width", 8, 1, 64, func() int {
	return prefetch.BestWidth([]int{4, 8, 16, 32})
})
