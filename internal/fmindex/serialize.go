package fmindex

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/genome"
)

// Index serialization: building the FMD index costs O(n) time but
// seconds of wall clock at genome scale, so real aligners persist it
// (BWA-MEM2 writes .bwt/.sa/.pac files). WriteTo/ReadIndex provide a
// single-file equivalent with a version header and CRC trailer.

const (
	indexMagic   = 0x464d4931 // "FMI1"
	indexVersion = 2
)

// WriteTo serializes the index. It returns the byte count written.
func (x *Index) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriter(w)}
	crc := crc32.NewIEEE()
	mw := io.MultiWriter(cw, crc)

	writeU64 := func(v uint64) error {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		_, err := mw.Write(buf[:])
		return err
	}
	header := []uint64{
		indexMagic, indexVersion,
		uint64(x.textLen), uint64(x.primary),
		uint64(len(x.genome)), uint64(len(x.bwt)),
		uint64(len(x.occ)), uint64(len(x.saMarked)),
		uint64(len(x.saRank)), uint64(len(x.saVals)),
		uint64(x.occRate), uint64(x.saRate),
	}
	for _, v := range header {
		if err := writeU64(v); err != nil {
			return cw.n, err
		}
	}
	if _, err := mw.Write(x.genome); err != nil {
		return cw.n, err
	}
	if _, err := mw.Write(x.bwt); err != nil {
		return cw.n, err
	}
	for i := range x.occ {
		for b := 0; b < 4; b++ {
			if err := writeU64(uint64(uint32(x.occ[i][b]))); err != nil {
				return cw.n, err
			}
		}
	}
	for _, v := range x.saMarked {
		if err := writeU64(v); err != nil {
			return cw.n, err
		}
	}
	for _, v := range x.saRank {
		if err := writeU64(uint64(uint32(v))); err != nil {
			return cw.n, err
		}
	}
	for _, v := range x.saVals {
		if err := writeU64(uint64(uint32(v))); err != nil {
			return cw.n, err
		}
	}
	// c table.
	for _, v := range x.c {
		if err := writeU64(uint64(v)); err != nil {
			return cw.n, err
		}
	}
	// CRC trailer (not itself checksummed).
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], crc.Sum32())
	if _, err := cw.Write(buf[:]); err != nil {
		return cw.n, err
	}
	return cw.n, cw.w.(*bufio.Writer).Flush()
}

// ReadIndex deserializes an index written by WriteTo, verifying the
// magic, version and checksum.
func ReadIndex(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	crc := crc32.NewIEEE()
	tr := io.TeeReader(br, crc)

	readU64 := func() (uint64, error) {
		var buf [8]byte
		if _, err := io.ReadFull(tr, buf[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(buf[:]), nil
	}
	var header [12]uint64
	for i := range header {
		v, err := readU64()
		if err != nil {
			return nil, fmt.Errorf("fmindex: truncated header: %w", err)
		}
		header[i] = v
	}
	if header[0] != indexMagic {
		return nil, fmt.Errorf("fmindex: bad magic %#x", header[0])
	}
	if header[1] != indexVersion {
		return nil, fmt.Errorf("fmindex: unsupported version %d", header[1])
	}
	const maxLen = 1 << 34
	for _, v := range header[2:] {
		if v > maxLen {
			return nil, fmt.Errorf("fmindex: implausible section size %d", v)
		}
	}
	x := &Index{
		textLen: int(header[2]),
		primary: int(header[3]),
		genome:  make(genome.Seq, header[4]),
		bwt:     make([]byte, header[5]),
		occRate: int(header[10]),
		saRate:  int(header[11]),
	}
	if x.occRate < 4 || x.saRate < 2 {
		return nil, fmt.Errorf("fmindex: corrupt sampling rates %d/%d", x.occRate, x.saRate)
	}
	if _, err := io.ReadFull(tr, x.genome); err != nil {
		return nil, err
	}
	if _, err := io.ReadFull(tr, x.bwt); err != nil {
		return nil, err
	}
	x.occ = make([][4]int32, header[6])
	for i := range x.occ {
		for b := 0; b < 4; b++ {
			v, err := readU64()
			if err != nil {
				return nil, err
			}
			x.occ[i][b] = int32(uint32(v))
		}
	}
	x.saMarked = make([]uint64, header[7])
	for i := range x.saMarked {
		v, err := readU64()
		if err != nil {
			return nil, err
		}
		x.saMarked[i] = v
	}
	x.saRank = make([]int32, header[8])
	for i := range x.saRank {
		v, err := readU64()
		if err != nil {
			return nil, err
		}
		x.saRank[i] = int32(uint32(v))
	}
	x.saVals = make([]int32, header[9])
	for i := range x.saVals {
		v, err := readU64()
		if err != nil {
			return nil, err
		}
		x.saVals[i] = int32(uint32(v))
	}
	for i := range x.c {
		v, err := readU64()
		if err != nil {
			return nil, err
		}
		x.c[i] = int(v)
	}
	want := crc.Sum32()
	var buf [4]byte
	if _, err := io.ReadFull(br, buf[:]); err != nil {
		return nil, fmt.Errorf("fmindex: missing checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint32(buf[:]); got != want {
		return nil, fmt.Errorf("fmindex: checksum mismatch %#x != %#x", got, want)
	}
	// The packed Occ blocks are derived state, rebuilt rather than
	// serialized.
	x.packOccBits()
	return x, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
