package fmindex

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/genome"
	"repro/internal/seq2"
)

// defaultOccRate is the Occ-table checkpoint interval in BWT
// positions. 64 positions per checkpoint mirrors the cache-block
// granularity the paper discusses: one Occ lookup touches one
// checkpoint and up to one 64-entry BWT block.
const defaultOccRate = 64

// defaultSARate is the suffix-array sampling interval (text positions).
const defaultSARate = 32

// Options tune the index's space/time trade-offs, the knobs BWA-MEM2
// exposes: denser Occ checkpoints cost memory but shorten the
// per-lookup block scan; denser SA samples shorten Locate's LF walk.
type Options struct {
	OccRate int // checkpoint interval, power of two >= 4
	SARate  int // SA sampling interval, power of two >= 2
}

// DefaultOptions mirror the fixed rates used throughout the suite.
func DefaultOptions() Options {
	return Options{OccRate: defaultOccRate, SARate: defaultSARate}
}

// sentinelCode is the in-BWT code for the terminator character.
const sentinelCode = 4

// MemTracer receives the address stream of index lookups for cache
// simulation. cachesim.Hierarchy satisfies it.
type MemTracer interface {
	Access(addr uint64, size int, write bool)
}

// Index is an FMD index: the FM-index of genome+reverseComplement(genome),
// supporting bidirectional interval extension for SMEM search.
type Index struct {
	textLen int // length of the indexed text (2x genome)
	occRate int
	saRate  int
	genome  genome.Seq

	bwt []byte // BWT characters, one byte each; sentinelCode marks '$'

	// occPacked is the BWT 2-bit packed (sentinel stored as base A), so
	// the Occ block scan ranks 32 positions per popcount instead of one
	// per byte load. The sentinel's contribution to the A count is
	// corrected from the single primary position.
	occPacked seq2.Packed

	// occ[p/occRate] holds cumulative counts of the four bases in
	// bwt[0:p] at checkpoint positions; sentinel occurrences are derived
	// from the single primary position.
	occ     [][4]int32
	primary int // BWT row whose character is the sentinel

	c [6]int // c[b] = count of characters < b in text+sentinel

	// Sampled suffix array: rows whose SA value is a multiple of saRate
	// are marked, with values stored in rank order.
	saMarked []uint64
	saRank   []int32 // rank checkpoints per 64-bit word
	saVals   []int32

	// Tracer, when non-nil, receives Occ/BWT lookup addresses from the
	// single-threaded entry points (ExtendBackward, BackwardSearch,
	// FindSMEMs, ...). It is not synchronized: concurrent searchers
	// must use FindSMEMsTraced with per-worker tracers, which is what
	// RunKernelCtx does via KernelConfig.NewWorkerTracer — it never
	// touches this field. Occ-lookup counts (the kernel's
	// data-parallel unit in the paper's Table III) are tallied by the
	// SMEM driver, which knows each operation's lookup cost, so shared
	// state stays read-only on the hot path.
	Tracer MemTracer
}

// Build constructs the FMD index of g. The indexed text is
// g + reverseComplement(g), so patterns and their reverse complements
// can both be located with a single index. It panics on invalid input;
// callers that prefer errors use BuildChecked.
func Build(g genome.Seq) *Index {
	x, err := BuildChecked(g)
	if err != nil {
		panic(err.Error())
	}
	return x
}

// BuildChecked is Build returning an error instead of panicking.
func BuildChecked(g genome.Seq) (*Index, error) {
	return BuildWithOptionsChecked(g, DefaultOptions())
}

// BuildWithOptions is Build with explicit sampling rates. It panics on
// invalid input; callers that prefer errors use BuildWithOptionsChecked.
func BuildWithOptions(g genome.Seq, opts Options) *Index {
	x, err := BuildWithOptionsChecked(g, opts)
	if err != nil {
		panic(err.Error())
	}
	return x
}

// BuildWithOptionsChecked is BuildWithOptions returning an error on
// invalid input instead of panicking.
func BuildWithOptionsChecked(g genome.Seq, opts Options) (*Index, error) {
	if len(g) == 0 {
		return nil, errors.New("fmindex: empty genome")
	}
	if opts.OccRate < 4 || opts.OccRate&(opts.OccRate-1) != 0 {
		return nil, errors.New("fmindex: OccRate must be a power of two >= 4")
	}
	if opts.SARate < 2 || opts.SARate&(opts.SARate-1) != 0 {
		return nil, errors.New("fmindex: SARate must be a power of two >= 2")
	}
	rc := g.ReverseComplement()
	text := make([]byte, 0, 2*len(g))
	text = append(text, g...)
	text = append(text, rc...)
	sa := saisBytes(text, 4)
	return buildFromSA(g, text, sa, opts), nil
}

func buildFromSA(g genome.Seq, text []byte, sa []int32, opts Options) *Index {
	n := len(text)
	idx := &Index{textLen: n, genome: g, occRate: opts.OccRate, saRate: opts.SARate}

	// BWT over text+'$': row for suffix starting at p has BWT char
	// text[p-1]; the row of suffix 0 has the sentinel. The suffix array
	// of text+'$' is [n] followed by sa (sentinel suffix first).
	idx.bwt = make([]byte, n+1)
	idx.bwt[0] = text[n-1] // row of the sentinel suffix "$"
	for i, p := range sa {
		if p == 0 {
			idx.bwt[i+1] = sentinelCode
			idx.primary = i + 1
		} else {
			idx.bwt[i+1] = text[p-1]
		}
	}

	// Character counts.
	var counts [5]int
	counts[4] = 1 // sentinel
	for _, b := range text {
		counts[b]++
	}
	idx.c[0] = 1 // sentinel is the smallest character
	for b := 0; b < 4; b++ {
		idx.c[b+1] = idx.c[b] + counts[b]
	}
	idx.c[5] = idx.c[4] // convenience bound

	// Occ checkpoints.
	occRate := opts.OccRate
	nCk := (n+1)/occRate + 1
	idx.occ = make([][4]int32, nCk+1)
	var running [4]int32
	for p := 0; p <= n; p++ {
		if p%occRate == 0 {
			idx.occ[p/occRate] = running
		}
		if b := idx.bwt[p]; b < 4 {
			running[b]++
		}
	}
	idx.occ[(n+1+occRate-1)/occRate] = running
	idx.packOccBits()

	// Sampled SA with rank dictionary.
	words := (n + 1 + 63) / 64
	idx.saMarked = make([]uint64, words)
	idx.saRank = make([]int32, words+1)
	type sampled struct{ row, val int32 }
	var samples []sampled
	for i, p := range sa {
		if p%int32(opts.SARate) == 0 {
			row := int32(i + 1)
			idx.saMarked[row/64] |= 1 << uint(row%64)
			samples = append(samples, sampled{row, p})
		}
	}
	// The sentinel row 0 maps to SA value n (the sentinel position).
	idx.saMarked[0] |= 1
	samples = append(samples, sampled{0, int32(n)})
	sort.Slice(samples, func(i, j int) bool { return samples[i].row < samples[j].row })
	idx.saVals = make([]int32, len(samples))
	for i, s := range samples {
		idx.saVals[i] = s.val
	}
	var rank int32
	for w := 0; w < words; w++ {
		idx.saRank[w] = rank
		rank += int32(bits.OnesCount64(idx.saMarked[w]))
	}
	idx.saRank[words] = rank
	return idx
}

// TextLen returns the indexed text length (twice the genome length).
func (x *Index) TextLen() int { return x.textLen }

// GenomeLen returns the original genome length.
func (x *Index) GenomeLen() int { return len(x.genome) }

// Rows returns the number of BWT rows (textLen+1).
func (x *Index) Rows() int { return x.textLen + 1 }

// packOccBits (re)builds the 2-bit packed BWT used by occ4's popcount
// ranking. The sentinel byte (code 4) packs as base A; occ4 corrects
// the A count using the primary row position.
func (x *Index) packOccBits() {
	n := len(x.bwt)
	words := make([]uint64, seq2.Words(n))
	for i, b := range x.bwt {
		words[i/seq2.BasesPerWord] |= uint64(b&3) << (2 * (uint(i) % seq2.BasesPerWord))
	}
	x.occPacked = seq2.FromWords(words, n)
}

// occ4 returns cumulative counts of the four bases in bwt[0:p].
// It performs the paper's characteristic irregular lookup: one
// checkpoint read plus a partial-block rank, computed with four
// popcounts per 32 BWT positions over the 2-bit packed block.
func (x *Index) occ4(p int) [4]int32 {
	return x.occ4t(p, x.Tracer)
}

// occ4t is occ4 with the trace sink passed explicitly, so concurrent
// searches can route their address streams to per-worker tracers
// instead of racing on x.Tracer.
func (x *Index) occ4t(p int, tr MemTracer) [4]int32 {
	ck := p / x.occRate
	counts := x.occ[ck]
	if tr != nil {
		// Checkpoint table and BWT block live in distinct regions.
		tr.Access(uint64(ck)*16, 16, false)
		tr.Access(1<<32+uint64(ck)*uint64(x.occRate), x.occRate, false)
	}
	lo := ck * x.occRate
	if p > lo {
		c := x.occPacked.Count4Range(lo, p)
		counts[0] += int32(c[0])
		counts[1] += int32(c[1])
		counts[2] += int32(c[2])
		counts[3] += int32(c[3])
		// The sentinel packed as A: undo its contribution when the
		// primary row falls inside the scanned block prefix.
		if x.primary >= lo && x.primary < p {
			counts[0]--
		}
	}
	return counts
}

// Occ4 exposes the popcount-ranked Occ lookup for external harnesses
// (gbench-bench) and diagnostics.
func (x *Index) Occ4(p int) [4]int32 { return x.occ4(p) }

// Occ4Reference exposes the byte-scan reference ranking so harnesses
// can benchmark and cross-check it against the packed path.
func (x *Index) Occ4Reference(p int) [4]int32 { return x.occ4Scalar(p) }

// occ4Scalar is the byte-scan reference implementation of occ4, kept
// for differential tests against the popcount path.
func (x *Index) occ4Scalar(p int) [4]int32 {
	ck := p / x.occRate
	counts := x.occ[ck]
	for q := ck * x.occRate; q < p; q++ {
		if b := x.bwt[q]; b < 4 {
			counts[b]++
		}
	}
	return counts
}

// occSentinel returns the count of sentinel characters in bwt[0:p]
// (0 or 1, derived from the primary row).
func (x *Index) occSentinel(p int) int32 {
	if p > x.primary {
		return 1
	}
	return 0
}

// BiInterval is a bidirectional SA interval: K is the interval start
// for the pattern, L the start for its reverse complement, S the size.
type BiInterval struct {
	K, L, S int
}

// Root returns the interval of the empty pattern (all rows).
func (x *Index) Root() BiInterval {
	return BiInterval{K: 0, L: 0, S: x.textLen + 1}
}

// ExtendBackward extends pattern P to bP for all four bases at once,
// returning intervals in base order. This is BWA's bwt_extend with
// is_back=1.
func (x *Index) ExtendBackward(iv BiInterval) [4]BiInterval {
	return x.extendBackwardT(iv, x.Tracer)
}

func (x *Index) extendBackwardT(iv BiInterval, tr MemTracer) [4]BiInterval {
	lo := x.occ4t(iv.K, tr)
	hi := x.occ4t(iv.K+iv.S, tr)
	sentLo := x.occSentinel(iv.K)
	sentHi := x.occSentinel(iv.K + iv.S)

	var out [4]BiInterval
	for b := 0; b < 4; b++ {
		out[b].K = x.c[b] + int(lo[b])
		out[b].S = int(hi[b] - lo[b])
	}
	// The reverse-complement coordinates partition [L, L+S) in
	// complement order: sentinel, then T, G, C, A.
	out[3].L = iv.L + int(sentHi-sentLo)
	out[2].L = out[3].L + out[3].S
	out[1].L = out[2].L + out[2].S
	out[0].L = out[1].L + out[1].S
	return out
}

// ExtendForward extends pattern P to Pb for all four bases. By FMD
// symmetry this is a backward extension on the reverse-complement
// coordinates with complemented bases.
func (x *Index) ExtendForward(iv BiInterval) [4]BiInterval {
	return x.extendForwardT(iv, x.Tracer)
}

func (x *Index) extendForwardT(iv BiInterval, tr MemTracer) [4]BiInterval {
	swapped := BiInterval{K: iv.L, L: iv.K, S: iv.S}
	ext := x.extendBackwardT(swapped, tr)
	var out [4]BiInterval
	for b := 0; b < 4; b++ {
		e := ext[3-b] // complement
		out[b] = BiInterval{K: e.L, L: e.K, S: e.S}
	}
	return out
}

// BackwardSearch finds the SA interval of pattern via classic backward
// search, returning the interval start and size (size 0 when absent).
func (x *Index) BackwardSearch(pattern genome.Seq) (k, s int) {
	iv := x.Root()
	for i := len(pattern) - 1; i >= 0; i-- {
		iv = x.ExtendBackward(iv)[pattern[i]&3]
		if iv.S <= 0 {
			return 0, 0
		}
	}
	return iv.K, iv.S
}

// Locate resolves SA row r to its text position using the sampled
// suffix array and LF walking.
func (x *Index) Locate(r int) int {
	steps := 0
	for {
		if x.saMarked[r/64]&(1<<uint(r%64)) != 0 {
			rank := x.saRank[r/64] + int32(bits.OnesCount64(x.saMarked[r/64]&(1<<uint(r%64)-1)))
			v := int(x.saVals[rank]) + steps
			if v >= x.textLen+1 {
				v -= x.textLen + 1
			}
			return v
		}
		r = x.lf(r)
		steps++
	}
}

// lf is the last-to-first mapping.
func (x *Index) lf(r int) int {
	b := x.bwt[r]
	if b == sentinelCode {
		return 0
	}
	lo := x.occ4(r)
	return x.c[b] + int(lo[b])
}

// Count returns the number of occurrences of pattern in the indexed
// text (both strands of the genome).
func (x *Index) Count(pattern genome.Seq) int {
	_, s := x.BackwardSearch(pattern)
	return s
}

// LocateAll returns every text position where pattern occurs, capped at
// limit (<=0 for no cap).
func (x *Index) LocateAll(pattern genome.Seq, limit int) []int {
	k, s := x.BackwardSearch(pattern)
	if s == 0 {
		return nil
	}
	if limit > 0 && s > limit {
		s = limit
	}
	out := make([]int, 0, s)
	for i := 0; i < s; i++ {
		out = append(out, x.Locate(k+i))
	}
	sort.Ints(out)
	return out
}

// String describes the index.
func (x *Index) String() string {
	return fmt.Sprintf("fmindex(text=%d rows=%d checkpoints=%d samples=%d)",
		x.textLen, x.Rows(), len(x.occ), len(x.saVals))
}
