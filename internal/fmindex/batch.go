package fmindex

import (
	"unsafe"

	"repro/internal/genome"
	"repro/internal/prefetch"
	"repro/internal/seq2"
)

// Batched lock-step SMEM search. The serial walk (FindSMEMs) is the
// paper's textbook memory-bound loop: every backward extension is one
// dependent Occ lookup — checkpoint load plus packed-block rank at an
// unpredictable address — so the whole search serializes on cache
// misses. But the NEXT lookup's addresses are known the moment the
// current interval is, one full step before the rank is computed. The
// BatchEngine exploits that: it keeps W reads' query states in flight,
// advances them round-robin one extension at a time, and issues each
// state's next checkpoint+block prefetch when the state is parked —
// a full rotation (W-1 other lanes' compute) before the lane consumes
// the data. That converts W serial miss latencies into overlapped
// ones, the software-prefetch batching BWA-MEM2 applies to this exact
// kernel (Vasimuddin et al., IPDPS 2019).
//
// The schedule reorders work only BETWEEN reads, never within one:
// each lane replays smem1's forward/backward sweeps operation for
// operation, so per-read output — SMEMs, their order, and the Occ
// lookup count — is bit-identical to FindSMEMsTraced, and width is
// pure dispatch policy (see batch_test.go's differentials).

// Prefetcher is the optional MemTracer extension for software-prefetch
// visibility: tracers that implement it (cachesim.Hierarchy does)
// receive the engine's prefetch stream at the same synthetic addresses
// occ4t traces, so the simulator can score the reordered stream's miss
// overlap. Plain MemTracers see only the demand stream — exactly the
// addresses the serial search would issue, per read.
type Prefetcher interface {
	Prefetch(addr uint64, size int)
}

// lanePhase is the pending operation of one in-flight query state.
type lanePhase uint8

const (
	phIdle     lanePhase = iota // no read loaded
	phInit                      // root backward extension at the anchor
	phForward                   // forward extension of iv at index i
	phBackward                  // backward extension of curr[entryIdx] at row i
)

// batchLane is one in-flight read's resumable smem1 state. The slices
// are grow-only scratch: steady-state operation allocates nothing.
type batchLane struct {
	readIdx int
	read    genome.Seq
	phase   lanePhase

	pos    int        // current anchor position
	i      int        // forward index / backward row
	iv     BiInterval // forward sweep interval
	retPos int        // next anchor (longest candidate's qend)

	entryIdx int         // cursor into curr during the backward sweep
	lastBeg  int         // left bound of the last emitted SMEM; -2 none
	curr     []smemEntry // candidates being consumed this round
	next     []smemEntry // survivors being built for the next round

	out     []SMEM
	lookups uint64
}

// BatchEngine schedules W in-flight SMEM searches in lock step over
// one index. It is single-goroutine state (one engine per worker, the
// KernelConfig.NewWorkerTracer discipline); concurrent searches use
// separate engines.
type BatchEngine struct {
	x      *Index
	width  int
	tr     MemTracer
	pt     Prefetcher
	lanes  []batchLane
	minLen int
	minHit int
}

// NewBatchEngine builds an engine of the given width over x. width<=0
// resolves the fmindex.batch_width tunable (probed once per host,
// cached on disk). tr (nil for none) receives the demand address
// stream; if it also implements Prefetcher it receives the prefetch
// stream.
func NewBatchEngine(x *Index, width int, tr MemTracer) *BatchEngine {
	if width <= 0 {
		width = BatchWidth.Get()
	}
	e := &BatchEngine{x: x, width: width, tr: tr, lanes: make([]batchLane, width)}
	if tr != nil {
		e.pt, _ = tr.(Prefetcher)
	}
	return e
}

// Width reports the engine's resolved lane count.
func (e *BatchEngine) Width() int { return e.width }

// Run enumerates SMEMs for every read, W reads in flight at a time.
// admit (nil for none) is called once per read as it is loaded into a
// lane — the kernel's per-read fault/cancellation point; a non-nil
// error aborts the whole run. emit is called once per read, in lane
// completion order, with that read's SMEMs (same matches, same order,
// same lookup count as FindSMEMsTraced); the slice is engine scratch,
// valid only until the lane is reused — callers keep counts or copy.
func (e *BatchEngine) Run(reads []genome.Seq, minLen, minHits int, admit func(read int) error, emit func(read int, smems []SMEM, lookups uint64)) error {
	if minHits < 1 {
		minHits = 1
	}
	e.minLen, e.minHit = minLen, minHits
	nextRead := 0
	active := 0

	// refill loads the next unprocessed read into ln, emitting empty
	// reads inline (they perform no lookups, exactly like the serial
	// walk, whose position loop never runs). It reports whether the
	// lane is live again.
	refill := func(ln *batchLane) (bool, error) {
		for nextRead < len(reads) {
			idx := nextRead
			nextRead++
			if admit != nil {
				if err := admit(idx); err != nil {
					return false, err
				}
			}
			ln.readIdx = idx
			ln.read = reads[idx]
			ln.out = ln.out[:0]
			ln.lookups = 0
			ln.pos = 0
			if len(ln.read) == 0 {
				emit(idx, ln.out, 0)
				continue
			}
			ln.phase = phInit
			e.prefetchBackward(e.x.Root())
			return true, nil
		}
		ln.phase = phIdle
		return false, nil
	}

	for l := range e.lanes {
		ok, err := refill(&e.lanes[l])
		if err != nil {
			return err
		}
		if ok {
			active++
		}
	}
	for active > 0 {
		for l := range e.lanes {
			ln := &e.lanes[l]
			if ln.phase == phIdle {
				continue
			}
			if done := e.advance(ln); done {
				emit(ln.readIdx, ln.out, ln.lookups)
				ok, err := refill(ln)
				if err != nil {
					return err
				}
				if !ok {
					active--
				}
			}
		}
	}
	return nil
}

// advance performs ln's one pending extension (whose addresses were
// prefetched when the lane was parked) plus any pure-compute
// transitions after it, leaving the lane either parked on its next
// prefetched extension or done with its read.
func (e *BatchEngine) advance(ln *batchLane) (readDone bool) {
	switch ln.phase {
	case phInit:
		iv := e.x.extendBackwardT(e.x.Root(), e.tr)[ln.read[ln.pos]&3]
		ln.lookups += 2
		if iv.S == 0 {
			return e.nextAnchor(ln, ln.pos+1)
		}
		ln.iv = iv
		ln.curr = ln.curr[:0]
		ln.i = ln.pos + 1
		return e.parkForward(ln)

	case phForward:
		next := e.x.extendForwardT(ln.iv, e.tr)[ln.read[ln.i]&3]
		ln.lookups += 2
		if next.S != ln.iv.S {
			ln.curr = append(ln.curr, smemEntry{ln.iv, ln.i})
		}
		if next.S == 0 {
			return e.startBackward(ln)
		}
		ln.iv = next
		ln.i++
		return e.parkForward(ln)

	case phBackward:
		return e.backwardStep(ln)
	}
	return false
}

// parkForward parks ln on its next forward extension, or — when the
// sweep has run off the read end — records the final candidate and
// pivots into the backward sweep (pure compute, no extra rotation).
func (e *BatchEngine) parkForward(ln *batchLane) (readDone bool) {
	if ln.i == len(ln.read) {
		ln.curr = append(ln.curr, smemEntry{ln.iv, ln.i})
		return e.startBackward(ln)
	}
	ln.phase = phForward
	e.prefetchForward(ln.iv)
	return false
}

// startBackward mirrors smem1's pivot: reverse the candidates so the
// longest comes first, remember the next anchor, and park the lane on
// the first backward extension. curr is never empty here — the forward
// sweep always records at least one candidate before stopping.
func (e *BatchEngine) startBackward(ln *batchLane) (readDone bool) {
	for l, r := 0, len(ln.curr)-1; l < r; l, r = l+1, r-1 {
		ln.curr[l], ln.curr[r] = ln.curr[r], ln.curr[l]
	}
	ln.retPos = ln.curr[0].qend
	ln.lastBeg = -2
	ln.i = ln.pos - 1
	ln.entryIdx = 0
	ln.next = ln.next[:0]
	if ln.i < 0 {
		e.finalRound(ln)
		return e.nextAnchor(ln, ln.retPos)
	}
	ln.phase = phBackward
	e.prefetchBackward(ln.curr[0].iv)
	return false
}

// backwardStep consumes one candidate of the current backward round —
// smem1's inner loop body, one entry per rotation.
func (e *BatchEngine) backwardStep(ln *batchLane) (readDone bool) {
	ent := ln.curr[ln.entryIdx]
	ext := e.x.extendBackwardT(ent.iv, e.tr)[ln.read[ln.i]&3]
	ln.lookups += 2
	if ext.S < e.minHit {
		// Candidate died. Only the first dead candidate of a round can
		// be super-maximal, and only when not contained in the previous
		// emission (same guard, same order as smem1).
		if len(ln.next) == 0 && (ln.lastBeg == -2 || ln.i+1 < ln.lastBeg) {
			if ent.qend-(ln.i+1) >= e.minLen {
				ln.out = append(ln.out, SMEM{QBeg: ln.i + 1, QEnd: ent.qend, Interval: ent.iv})
			}
			ln.lastBeg = ln.i + 1
		}
	} else if len(ln.next) == 0 || ext.S != ln.next[len(ln.next)-1].iv.S {
		ln.next = append(ln.next, smemEntry{ext, ent.qend})
	}
	ln.entryIdx++
	if ln.entryIdx < len(ln.curr) {
		e.prefetchBackward(ln.curr[ln.entryIdx].iv)
		return false
	}
	// Round complete.
	if len(ln.next) == 0 {
		return e.nextAnchor(ln, ln.retPos)
	}
	ln.curr, ln.next = ln.next, ln.curr[:0]
	ln.i--
	ln.entryIdx = 0
	if ln.i < 0 {
		e.finalRound(ln)
		return e.nextAnchor(ln, ln.retPos)
	}
	ln.phase = phBackward
	e.prefetchBackward(ln.curr[0].iv)
	return false
}

// finalRound is smem1's i == -1 round: every surviving candidate hits
// the read start, no Occ lookups happen, and only the first (longest)
// candidate can emit — after it sets lastBeg to 0, the containment
// guard i+1 < lastBeg fails for the rest.
func (e *BatchEngine) finalRound(ln *batchLane) {
	ent := ln.curr[0]
	if ln.lastBeg == -2 || ln.lastBeg > 0 {
		if ent.qend >= e.minLen {
			ln.out = append(ln.out, SMEM{QBeg: 0, QEnd: ent.qend, Interval: ent.iv})
		}
	}
}

// nextAnchor moves the lane to its next anchor position, or reports
// the read done.
func (e *BatchEngine) nextAnchor(ln *batchLane, pos int) (readDone bool) {
	ln.pos = pos
	if pos >= len(ln.read) {
		ln.phase = phIdle
		return true
	}
	ln.phase = phInit
	e.prefetchBackward(e.x.Root())
	return false
}

// prefetchBackward issues the prefetches for a pending backward
// extension of iv: occ4t at K and K+S.
func (e *BatchEngine) prefetchBackward(iv BiInterval) {
	e.prefetchOcc(iv.K)
	e.prefetchOcc(iv.K + iv.S)
}

// prefetchForward issues the prefetches for a pending forward
// extension of iv — a backward extension on the reverse-complement
// coordinates: occ4t at L and L+S.
func (e *BatchEngine) prefetchForward(iv BiInterval) {
	e.prefetchOcc(iv.L)
	e.prefetchOcc(iv.L + iv.S)
}

// prefetchOcc pulls the lines occ4t(p) will touch — the checkpoint
// entry and the packed BWT block — toward the core, and mirrors them
// into the trace's prefetch stream at occ4t's synthetic addresses.
func (e *BatchEngine) prefetchOcc(p int) {
	x := e.x
	ck := p / x.occRate
	prefetch.Ptr(unsafe.Pointer(&x.occ[ck]))
	if words := x.occPacked.WordsSlice(); len(words) > 0 {
		if wi := (ck * x.occRate) / seq2.BasesPerWord; wi < len(words) {
			prefetch.Ptr(unsafe.Pointer(&words[wi]))
		}
	}
	if e.pt != nil {
		e.pt.Prefetch(uint64(ck)*16, 16)
		e.pt.Prefetch(1<<32+uint64(ck)*uint64(x.occRate), x.occRate)
	}
}

// FindSMEMsBatch enumerates SMEMs for all reads through a fresh batch
// engine of the given width (<=0 for the tunable), returning per-read
// results in read order. lookups, when non-nil, accumulates total Occ
// lookups. Results are freshly allocated copies; the hot kernel path
// (RunKernelCtx) drives a per-worker engine directly instead.
func (x *Index) FindSMEMsBatch(reads []genome.Seq, minLen, minHits, width int, lookups *uint64, tr MemTracer) [][]SMEM {
	out := make([][]SMEM, len(reads))
	e := NewBatchEngine(x, width, tr)
	_ = e.Run(reads, minLen, minHits, nil, func(i int, smems []SMEM, lk uint64) {
		out[i] = append([]SMEM(nil), smems...)
		if lookups != nil {
			*lookups += lk
		}
	})
	return out
}
