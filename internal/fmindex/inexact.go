package fmindex

import (
	"sort"

	"repro/internal/genome"
)

// Inexact search: the paper notes the FM index supports "identifying
// seeds with a small number of edits with respect to the reference".
// This implements bounded-mismatch backward search (substitutions
// only, as in BWA's original inexact seeding): a depth-first walk of
// the backward-search tree that branches to all four bases wherever
// the mismatch budget allows.

// InexactHit is one match of a pattern with at most MaxMismatch edits.
type InexactHit struct {
	K, S       int // SA interval of the matched string
	Mismatches int
}

// InexactSearch returns the SA intervals of all strings within
// maxMismatch substitutions of pattern, sorted by mismatch count then
// interval start. Intervals may overlap textually but are distinct in
// the matched string space. lookups, when non-nil, accumulates Occ
// lookups (2 per extension, as in exact search).
func (x *Index) InexactSearch(pattern genome.Seq, maxMismatch int, lookups *uint64) []InexactHit {
	if len(pattern) == 0 {
		return nil
	}
	var scratch uint64
	if lookups == nil {
		lookups = &scratch
	}
	var hits []InexactHit
	var walk func(iv BiInterval, i, mismatches int)
	walk = func(iv BiInterval, i, mismatches int) {
		if iv.S <= 0 {
			return
		}
		if i < 0 {
			hits = append(hits, InexactHit{K: iv.K, S: iv.S, Mismatches: mismatches})
			return
		}
		ext := x.ExtendBackward(iv)
		*lookups += 2
		want := pattern[i] & 3
		// Prefer the exact branch first so results enumerate in
		// roughly increasing mismatch order.
		walk(ext[want], i-1, mismatches)
		if mismatches < maxMismatch {
			for b := 0; b < 4; b++ {
				if genome.Base(b) == want {
					continue
				}
				walk(ext[b], i-1, mismatches+1)
			}
		}
	}
	walk(x.Root(), len(pattern)-1, 0)
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].Mismatches != hits[b].Mismatches {
			return hits[a].Mismatches < hits[b].Mismatches
		}
		return hits[a].K < hits[b].K
	})
	return hits
}

// CountInexact returns the total number of occurrences within
// maxMismatch substitutions of pattern.
func (x *Index) CountInexact(pattern genome.Seq, maxMismatch int) int {
	total := 0
	for _, h := range x.InexactSearch(pattern, maxMismatch, nil) {
		total += h.S
	}
	return total
}
