package fmindex

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/genome"
)

func TestSerializeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := genome.Random(rng, 1000)
	x := Build(g)
	var buf bytes.Buffer
	n, err := x.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	y, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The deserialized index must answer queries identically.
	for trial := 0; trial < 50; trial++ {
		pat := genome.Random(rng, 3+rng.Intn(10))
		if a, b := x.Count(pat), y.Count(pat); a != b {
			t.Fatalf("Count(%s): %d vs %d", pat, a, b)
		}
	}
	read := g[100:180]
	a := x.FindSMEMs(read, 19, 1, nil)
	b := y.FindSMEMs(read, 19, 1, nil)
	if len(a) != len(b) {
		t.Fatalf("SMEM counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("SMEM %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	pa := x.LocateAll(g[50:70], 0)
	pb := y.LocateAll(g[50:70], 0)
	if len(pa) != len(pb) {
		t.Fatal("LocateAll differs")
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("LocateAll positions differ")
		}
	}
}

func TestSerializeDetectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := Build(genome.Random(rng, 500))
	var buf bytes.Buffer
	if _, err := x.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)/2] ^= 0xFF
	if _, err := ReadIndex(bytes.NewReader(data)); err == nil {
		t.Error("corrupted index accepted")
	}
}

func TestSerializeBadMagicAndTruncation(t *testing.T) {
	if _, err := ReadIndex(bytes.NewReader([]byte("nonsense"))); err == nil {
		t.Error("garbage accepted")
	}
	rng := rand.New(rand.NewSource(3))
	x := Build(genome.Random(rng, 300))
	var buf bytes.Buffer
	if _, err := x.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadIndex(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Error("truncated index accepted")
	}
}
