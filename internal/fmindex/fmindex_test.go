package fmindex

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/genome"
)

// naiveSuffixArray sorts suffixes directly.
func naiveSuffixArray(text []byte) []int32 {
	sa := make([]int32, len(text))
	for i := range sa {
		sa[i] = int32(i)
	}
	sort.Slice(sa, func(a, b int) bool {
		return string(text[sa[a]:]) < string(text[sa[b]:])
	})
	return sa
}

func TestSAISMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := [][]byte{
		{0},
		{1, 1, 1, 1},
		{0, 1, 2, 3},
		{3, 2, 1, 0},
		[]byte("banana_ban"), // larger alphabet path
	}
	for i := 0; i < 30; i++ {
		n := 1 + rng.Intn(200)
		s := make([]byte, n)
		for j := range s {
			s[j] = byte(rng.Intn(4))
		}
		cases = append(cases, s)
	}
	for ci, text := range cases {
		k := 0
		for _, b := range text {
			if int(b) >= k {
				k = int(b) + 1
			}
		}
		got := saisBytes(text, k)
		want := naiveSuffixArray(text)
		if len(got) != len(want) {
			t.Fatalf("case %d: length %d vs %d", ci, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("case %d: sa[%d] = %d, want %d (text %v)", ci, j, got[j], want[j], text)
			}
		}
	}
}

func TestSAISLargeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	text := make([]byte, 20000)
	for i := range text {
		text[i] = byte(rng.Intn(4))
	}
	sa := saisBytes(text, 4)
	// Spot-check sortedness at many boundaries.
	for i := 1; i < len(sa); i += 37 {
		a, b := sa[i-1], sa[i]
		if string(text[a:]) >= string(text[b:]) {
			t.Fatalf("suffixes %d,%d out of order", a, b)
		}
	}
}

// countOccurrences counts (possibly overlapping) occurrences of pat in text.
func countOccurrences(text, pat string) int {
	if len(pat) == 0 {
		return len(text) + 1
	}
	n := 0
	for i := 0; i+len(pat) <= len(text); i++ {
		if text[i:i+len(pat)] == pat {
			n++
		}
	}
	return n
}

// testText returns the index's underlying text (genome + rc).
func testText(g genome.Seq) string {
	return g.String() + g.ReverseComplement().String()
}

func TestBackwardSearchCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := genome.Random(rng, 600)
	x := Build(g)
	text := testText(g)
	for trial := 0; trial < 100; trial++ {
		plen := 1 + rng.Intn(12)
		var pat genome.Seq
		if rng.Intn(2) == 0 && plen < len(g) {
			start := rng.Intn(len(g) - plen)
			pat = g[start : start+plen].Clone()
		} else {
			pat = genome.Random(rng, plen)
		}
		want := countOccurrences(text, pat.String())
		if got := x.Count(pat); got != want {
			t.Fatalf("Count(%s) = %d, want %d", pat, got, want)
		}
	}
}

func TestLocateFindsAllPositions(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := genome.Random(rng, 400)
	x := Build(g)
	text := testText(g)
	for trial := 0; trial < 40; trial++ {
		plen := 4 + rng.Intn(8)
		start := rng.Intn(len(g) - plen)
		pat := g[start : start+plen]
		got := x.LocateAll(pat, 0)
		var want []int
		ps := pat.String()
		for i := 0; i+plen <= len(text); i++ {
			if text[i:i+plen] == ps {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("LocateAll(%s): %v, want %v", pat, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("LocateAll(%s): %v, want %v", pat, got, want)
			}
		}
	}
}

func TestReverseComplementAlsoFound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := genome.Random(rng, 500)
	x := Build(g)
	pat := g[100:120]
	if x.Count(pat.ReverseComplement()) == 0 {
		t.Error("reverse complement of a genomic substring not found in FMD index")
	}
}

func TestExtendForwardConsistentWithBackwardSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := genome.Random(rng, 300)
	x := Build(g)
	text := testText(g)
	// Build a pattern forward base by base; interval size must equal
	// the naive occurrence count at every step.
	for trial := 0; trial < 20; trial++ {
		start := rng.Intn(len(g) - 10)
		iv := x.Root()
		for j := 0; j < 10; j++ {
			b := g[start+j]
			iv = x.ExtendForward(iv)[b&3]
			pat := g[start : start+j+1].String()
			want := countOccurrences(text, pat)
			if iv.S != want {
				t.Fatalf("forward extend %q: size %d, want %d", pat, iv.S, want)
			}
		}
	}
}

// naiveSMEMs computes super-maximal exact matches by brute force.
func naiveSMEMs(text string, read genome.Seq, minLen, minHits int) []SMEM {
	rs := read.String()
	occurs := func(b, e int) bool {
		return countOccurrences(text, rs[b:e]) >= minHits
	}
	var maximal [][2]int
	for b := 0; b < len(rs); b++ {
		for e := b + 1; e <= len(rs); e++ {
			if !occurs(b, e) {
				break
			}
			leftMax := b == 0 || !occurs(b-1, e)
			rightMax := e == len(rs) || !occurs(b, e+1)
			if leftMax && rightMax {
				maximal = append(maximal, [2]int{b, e})
			}
		}
	}
	var out []SMEM
	for _, m := range maximal {
		contained := false
		for _, o := range maximal {
			if o != m && o[0] <= m[0] && m[1] <= o[1] {
				contained = true
				break
			}
		}
		if !contained && m[1]-m[0] >= minLen {
			out = append(out, SMEM{QBeg: m[0], QEnd: m[1]})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].QBeg < out[j].QBeg })
	return out
}

func TestSMEMsMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 15; trial++ {
		g := genome.Random(rng, 300)
		x := Build(g)
		text := testText(g)
		// Read: a genomic fragment with a couple of mutations so SMEMs
		// break at mismatch points.
		start := rng.Intn(len(g) - 60)
		read := g[start : start+60].Clone()
		for m := 0; m < 2; m++ {
			p := rng.Intn(len(read))
			read[p] = genome.Base(rng.Intn(4))
		}
		minLen := 8
		got := x.FindSMEMs(read, minLen, 1, nil)
		sort.Slice(got, func(i, j int) bool { return got[i].QBeg < got[j].QBeg })
		want := naiveSMEMs(text, read, minLen, 1)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d SMEMs %v, want %d %v", trial, len(got), spans(got), len(want), spans(want))
		}
		for i := range want {
			if got[i].QBeg != want[i].QBeg || got[i].QEnd != want[i].QEnd {
				t.Fatalf("trial %d: SMEM %d = [%d,%d), want [%d,%d)", trial, i,
					got[i].QBeg, got[i].QEnd, want[i].QBeg, want[i].QEnd)
			}
		}
	}
}

func spans(ms []SMEM) [][2]int {
	out := make([][2]int, len(ms))
	for i, m := range ms {
		out[i] = [2]int{m.QBeg, m.QEnd}
	}
	return out
}

func TestSMEMIntervalSizesCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := genome.Random(rng, 400)
	x := Build(g)
	text := testText(g)
	start := rng.Intn(len(g) - 80)
	read := g[start : start+80].Clone()
	read[40] = genome.Complement(read[40])
	for _, m := range x.FindSMEMs(read, 10, 1, nil) {
		pat := read[m.QBeg:m.QEnd].String()
		if want := countOccurrences(text, pat); m.Hits() != want {
			t.Errorf("SMEM [%d,%d) hits %d, want %d", m.QBeg, m.QEnd, m.Hits(), want)
		}
	}
}

func TestSMEMPerfectReadIsOneMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := genome.Random(rng, 5000)
	x := Build(g)
	read := g[1000:1151]
	smems := x.FindSMEMs(read, 19, 1, nil)
	if len(smems) != 1 {
		t.Fatalf("perfect read yielded %d SMEMs, want 1", len(smems))
	}
	if smems[0].QBeg != 0 || smems[0].QEnd != len(read) {
		t.Errorf("SMEM [%d,%d), want full read", smems[0].QBeg, smems[0].QEnd)
	}
}

func TestRunKernelAggregates(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g := genome.Random(rng, 3000)
	x := Build(g)
	reads := make([]genome.Seq, 20)
	for i := range reads {
		start := rng.Intn(len(g) - 100)
		reads[i] = g[start : start+100]
	}
	for _, threads := range []int{1, 4} {
		cfg := DefaultKernelConfig()
		cfg.Threads = threads
		res := RunKernel(x, reads, cfg)
		if res.Reads != 20 {
			t.Errorf("Reads = %d", res.Reads)
		}
		if res.SMEMs < 20 {
			t.Errorf("threads=%d: SMEMs = %d, want >= 20", threads, res.SMEMs)
		}
		if res.OccLookups == 0 {
			t.Error("no Occ lookups counted")
		}
		if res.TaskStats.Count() != 20 {
			t.Errorf("TaskStats has %d tasks", res.TaskStats.Count())
		}
		if res.Counters.Total() == 0 {
			t.Error("no operations counted")
		}
	}
}

func TestKernelDeterministicAcrossThreads(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := genome.Random(rng, 2000)
	x := Build(g)
	reads := make([]genome.Seq, 10)
	for i := range reads {
		start := rng.Intn(len(g) - 80)
		reads[i] = g[start : start+80]
	}
	cfg1 := DefaultKernelConfig()
	cfg4 := DefaultKernelConfig()
	cfg4.Threads = 4
	r1 := RunKernel(x, reads, cfg1)
	r4 := RunKernel(x, reads, cfg4)
	if r1.SMEMs != r4.SMEMs || r1.OccLookups != r4.OccLookups {
		t.Errorf("thread count changed results: %v vs %v", r1, r4)
	}
}

func TestBackwardSearchProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := genome.Random(rng, 256)
	x := Build(g)
	text := testText(g)
	f := func(raw []byte) bool {
		if len(raw) == 0 || len(raw) > 15 {
			return true
		}
		pat := make(genome.Seq, len(raw))
		for i, b := range raw {
			pat[i] = genome.Base(b % 4)
		}
		return x.Count(pat) == countOccurrences(text, pat.String())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestOptionsDoNotChangeResults(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	g := genome.Random(rng, 800)
	configs := []Options{
		{OccRate: 16, SARate: 4},
		{OccRate: 64, SARate: 32},
		{OccRate: 256, SARate: 64},
	}
	indices := make([]*Index, len(configs))
	for i, o := range configs {
		indices[i] = BuildWithOptions(g, o)
	}
	read := g[100:220]
	want := indices[0].FindSMEMs(read, 19, 1, nil)
	for ci := 1; ci < len(indices); ci++ {
		got := indices[ci].FindSMEMs(read, 19, 1, nil)
		if len(got) != len(want) {
			t.Fatalf("config %d: %d SMEMs vs %d", ci, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("config %d SMEM %d differs", ci, j)
			}
		}
	}
	for trial := 0; trial < 30; trial++ {
		pat := genome.Random(rng, 4+rng.Intn(10))
		c0 := indices[0].Count(pat)
		for ci := 1; ci < len(indices); ci++ {
			if c := indices[ci].Count(pat); c != c0 {
				t.Fatalf("config %d Count(%s) = %d, want %d", ci, pat, c, c0)
			}
		}
		p0 := indices[0].LocateAll(pat, 0)
		for ci := 1; ci < len(indices); ci++ {
			p := indices[ci].LocateAll(pat, 0)
			if len(p) != len(p0) {
				t.Fatalf("config %d LocateAll size differs", ci)
			}
			for j := range p0 {
				if p[j] != p0[j] {
					t.Fatalf("config %d LocateAll positions differ", ci)
				}
			}
		}
	}
}

func TestBuildWithOptionsValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := genome.Random(rng, 100)
	for _, o := range []Options{{OccRate: 3, SARate: 32}, {OccRate: 48, SARate: 32}, {OccRate: 64, SARate: 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("options %+v accepted", o)
				}
			}()
			BuildWithOptions(g, o)
		}()
	}
}

func TestBuildCheckedRejectsBadInput(t *testing.T) {
	if _, err := BuildChecked(nil); err == nil {
		t.Error("BuildChecked(nil) should fail")
	}
	g := genome.Seq{0, 1, 2, 3}
	for _, opts := range []Options{
		{OccRate: 3, SARate: 32},  // not a power of two
		{OccRate: 2, SARate: 32},  // too small
		{OccRate: 64, SARate: 0},  // too small
		{OccRate: 64, SARate: 24}, // not a power of two
	} {
		if _, err := BuildWithOptionsChecked(g, opts); err == nil {
			t.Errorf("BuildWithOptionsChecked(%+v) should fail", opts)
		}
	}
}

func TestBuildCheckedMatchesBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := genome.Random(rng, 400)
	x, err := BuildChecked(g)
	if err != nil {
		t.Fatal(err)
	}
	pat := g[50:70]
	if got, want := x.Count(pat), Build(g).Count(pat); got != want {
		t.Errorf("checked index Count = %d, panicking index = %d", got, want)
	}
}

func TestBuildPanicsOnEmptyGenome(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Error("Build(nil) did not panic")
		}
	}()
	Build(nil)
}
