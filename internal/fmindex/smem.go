package fmindex

import (
	"context"

	"repro/internal/faultinject"
	"repro/internal/genome"
	"repro/internal/parallel"
	"repro/internal/perf"
)

// SMEM is a super-maximal exact match: a read substring [QBeg,QEnd)
// that matches the indexed text and cannot be extended in either
// direction without losing all its occurrences.
type SMEM struct {
	QBeg, QEnd int
	Interval   BiInterval
}

// Len returns the match length.
func (m SMEM) Len() int { return m.QEnd - m.QBeg }

// Hits returns the occurrence count of the match.
func (m SMEM) Hits() int { return m.Interval.S }

// smemEntry is one right-maximal candidate during SMEM enumeration:
// the interval of a match ending at qend. Shared by the serial sweep
// (smem1) and the lock-step batch engine (batch.go), whose per-lane
// candidate lists must evolve exactly like smem1's.
type smemEntry struct {
	iv   BiInterval
	qend int
}

// smem1 enumerates all SMEMs passing through read position x,
// appending them to out and returning the position where the next
// search should start (the end of the longest SMEM found, or x+1).
// It mirrors BWA's bwt_smem1: a forward-extension sweep collecting
// intervals at every size change, then a backward sweep that reports
// matches the moment they stop being extendable. lookups counts Occ
// lookups performed (2 per bidirectional extension).
func (x *Index) smem1(read genome.Seq, pos, minLen, minHits int, out []SMEM, lookups *uint64, tr MemTracer) ([]SMEM, int) {
	type entry = smemEntry
	iv := x.extendBackwardT(x.Root(), tr)[read[pos]&3]
	*lookups += 2
	if iv.S == 0 {
		return out, pos + 1
	}
	// Forward sweep: extend right, recording intervals whenever the
	// occurrence count drops (those are right-maximal candidates).
	var curr []entry
	for i := pos + 1; i <= len(read); i++ {
		if i == len(read) {
			curr = append(curr, entry{iv, i})
			break
		}
		next := x.extendForwardT(iv, tr)[read[i]&3]
		*lookups += 2
		if next.S != iv.S {
			curr = append(curr, entry{iv, i})
		}
		if next.S == 0 {
			break
		}
		iv = next
	}
	// curr is ordered by increasing qend, i.e. decreasing occurrence
	// count. Reverse so the longest candidate comes first.
	for l, r := 0, len(curr)-1; l < r; l, r = l+1, r-1 {
		curr[l], curr[r] = curr[r], curr[l]
	}
	retPos := curr[0].qend

	// Backward sweep: extend all candidates left in lock step. When a
	// candidate dies (or the read starts), the longest still-alive
	// match ending at the previous boundary is super-maximal — unless
	// it is contained in an already-emitted match (same left boundary,
	// shorter right extent).
	prev := curr
	lastBeg := -2 // left boundary of the last emitted SMEM; -2 = none
	for i := pos - 1; i >= -1; i-- {
		var next []entry
		for _, e := range prev {
			var ext BiInterval
			if i >= 0 {
				ext = x.extendBackwardT(e.iv, tr)[read[i]&3]
				*lookups += 2
			}
			if i < 0 || ext.S < minHits {
				// e cannot extend to i. Only the first dead candidate of
				// a round (the longest, since prev is ordered by
				// decreasing qend) can be super-maximal, and only when
				// its span is not contained in the previous emission.
				if len(next) == 0 && (lastBeg == -2 || i+1 < lastBeg) {
					if e.qend-(i+1) >= minLen {
						out = append(out, SMEM{QBeg: i + 1, QEnd: e.qend, Interval: e.iv})
					}
					lastBeg = i + 1
				}
				continue
			}
			// Candidate survives. Drop it if it collapses to the same
			// interval as the previously kept one (same occurrence set).
			if len(next) == 0 || ext.S != next[len(next)-1].iv.S {
				next = append(next, entry{ext, e.qend})
			}
		}
		if len(next) == 0 {
			break
		}
		prev = next
	}
	return out, retPos
}

// FindSMEMs enumerates all SMEMs of read with length ≥ minLen and at
// least minHits occurrences. lookups, when non-nil, accumulates the
// number of Occ-table lookups performed. Lookup addresses go to
// x.Tracer; concurrent searchers use FindSMEMsTraced with private
// tracers instead.
func (x *Index) FindSMEMs(read genome.Seq, minLen, minHits int, lookups *uint64) []SMEM {
	return x.FindSMEMsTraced(read, minLen, minHits, lookups, x.Tracer)
}

// FindSMEMsTraced is FindSMEMs routing the Occ/BWT address stream to
// tr (nil for none) instead of the shared x.Tracer field. This is the
// race-free way to trace concurrent searches: give every worker its
// own tracer and merge afterwards.
func (x *Index) FindSMEMsTraced(read genome.Seq, minLen, minHits int, lookups *uint64, tr MemTracer) []SMEM {
	var scratch uint64
	if lookups == nil {
		lookups = &scratch
	}
	if minHits < 1 {
		minHits = 1
	}
	var out []SMEM
	pos := 0
	for pos < len(read) {
		out, pos = x.smem1(read, pos, minLen, minHits, out, lookups, tr)
	}
	return out
}

// KernelConfig parameterizes the fmi kernel run.
type KernelConfig struct {
	MinSeedLen int // minimum SMEM length (BWA default 19)
	MinHits    int // minimum occurrence count
	Threads    int

	// BatchWidth forces the lock-step batch engine's lane count; 0
	// resolves the fmindex.batch_width tunable (microprobed per host,
	// cached on disk). Width is pure dispatch policy: any value
	// produces bit-identical results (batch_test.go pins this), it
	// only moves the prefetch distance.
	BatchWidth int

	// NewWorkerTracer, when non-nil, is called once per worker to make
	// that worker's private MemTracer; the kernel never shares one
	// tracer between workers (sharing x.Tracer across threads is a data
	// race for unsynchronized tracer implementations). Callers merge
	// the per-worker tracers after RunKernelCtx returns.
	NewWorkerTracer func(worker int) MemTracer
}

// DefaultKernelConfig mirrors BWA-MEM2 defaults.
func DefaultKernelConfig() KernelConfig {
	return KernelConfig{MinSeedLen: 19, MinHits: 1, Threads: 1}
}

// KernelResult aggregates an fmi kernel execution.
type KernelResult struct {
	Reads      int
	SMEMs      int
	OccLookups uint64
	TaskStats  *perf.TaskStats // Occ lookups per read (Table III unit)
	Counters   perf.Counters
}

// RunKernel executes the fmi benchmark: SMEM search for every read,
// dynamically scheduled across threads, with per-read work statistics.
// Reads route through per-worker lock-step BatchEngines (see batch.go)
// so Occ-lookup misses overlap across in-flight reads; results are
// bit-identical to serial FindSMEMs per read.
// It panics on failure; cancellable callers use RunKernelCtx.
func RunKernel(x *Index, reads []genome.Seq, cfg KernelConfig) KernelResult {
	res, err := RunKernelCtx(context.Background(), x, reads, cfg)
	if err != nil {
		panic(err)
	}
	return res
}

// RunKernelCtx is RunKernel with cooperative cancellation and a fault
// trip-point per read. On cancellation, injected fault, or worker panic
// it returns a zero result and the error.
func RunKernelCtx(ctx context.Context, x *Index, reads []genome.Seq, cfg KernelConfig) (KernelResult, error) {
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	type workerState struct {
		smems   int
		lookups uint64
		stats   *perf.TaskStats
		tracer  MemTracer
		engine  *BatchEngine
		_       perf.CacheLinePad // workers update these per task; keep shards on private cache lines
	}
	workers := make([]workerState, cfg.Threads)
	for i := range workers {
		workers[i].stats = perf.NewTaskStats("occ lookups")
		if cfg.NewWorkerTracer != nil {
			workers[i].tracer = cfg.NewWorkerTracer(i)
		}
		workers[i].engine = NewBatchEngine(x, cfg.BatchWidth, workers[i].tracer)
	}
	// Note: x.Tracer is deliberately NOT consulted here — a tracer
	// shared by concurrent workers is a data race. Tracing kernel runs
	// goes through cfg.NewWorkerTracer's per-worker sinks.
	//
	// Reads dispatch in chunks a few batch windows deep: each chunk
	// runs through the claiming worker's engine with its lanes full,
	// while chunk-level claiming keeps dynamic load balance across
	// threads. Per-read fault/cancel points thread through admit.
	width := workers[0].engine.Width()
	chunk := 4 * width
	if per := (len(reads) + cfg.Threads - 1) / cfg.Threads; chunk > per {
		chunk = per
	}
	if chunk < 1 {
		chunk = 1
	}
	nChunks := (len(reads) + chunk - 1) / chunk
	err := parallel.ForEachCtxErr(ctx, nChunks, cfg.Threads, func(tctx context.Context, w, c int) error {
		ws := &workers[w]
		lo := c * chunk
		hi := lo + chunk
		if hi > len(reads) {
			hi = len(reads)
		}
		return ws.engine.Run(reads[lo:hi], cfg.MinSeedLen, cfg.MinHits,
			func(int) error { return faultinject.Point(tctx) },
			func(_ int, smems []SMEM, lookups uint64) {
				ws.smems += len(smems)
				ws.lookups += lookups
				ws.stats.Observe(float64(lookups))
			})
	})
	if err != nil {
		return KernelResult{}, err
	}
	res := KernelResult{Reads: len(reads), TaskStats: perf.NewTaskStats("occ lookups")}
	for i := range workers {
		res.SMEMs += workers[i].smems
		res.OccLookups += workers[i].lookups
		res.TaskStats.Merge(workers[i].stats)
	}
	// Operation mix: each Occ lookup is checkpoint load + block scan
	// (memory heavy, matching the paper's fmi profile).
	res.Counters.Add(perf.Load, res.OccLookups*3)
	res.Counters.Add(perf.IntALU, res.OccLookups*4)
	res.Counters.Add(perf.Branch, res.OccLookups)
	return res, nil
}
