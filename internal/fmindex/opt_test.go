package fmindex

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/genome"
)

// The popcount-ranked occ4 must match the byte-scan reference at every
// position, across checkpoint densities (the primary-row correction
// and boundary trimming are the delicate parts).
func TestOcc4PackedDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, occRate := range []int{4, 16, 64, 256} {
		g := genome.Random(rng, 300+rng.Intn(300))
		opts := DefaultOptions()
		opts.OccRate = occRate
		x := BuildWithOptions(g, opts)
		for p := 0; p <= x.textLen+1; p++ {
			if got, want := x.occ4(p), x.occ4Scalar(p); got != want {
				t.Fatalf("occRate=%d p=%d (primary=%d): packed %v, scalar %v",
					occRate, p, x.primary, got, want)
			}
		}
	}
}

// Deserialized indexes must rebuild the packed Occ blocks: a lookup
// after ReadIndex exercises occPacked.
func TestOcc4PackedAfterRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	g := genome.Random(rng, 500)
	x := Build(g)
	var buf sliceWriter
	if _, err := x.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	y, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p <= y.textLen+1; p += 7 {
		if got, want := y.occ4(p), y.occ4Scalar(p); got != want {
			t.Fatalf("p=%d: packed %v, scalar %v", p, got, want)
		}
	}
}

type sliceWriter struct {
	data []byte
	off  int
}

func (s *sliceWriter) Write(p []byte) (int, error) { s.data = append(s.data, p...); return len(p), nil }
func (s *sliceWriter) Read(p []byte) (int, error) {
	n := copy(p, s.data[s.off:])
	s.off += n
	return n, nil
}

// countingTracer counts accesses with a plain (unsynchronized) field —
// exactly the kind of tracer that raced when shared across workers.
type countingTracer struct {
	accesses uint64
	bytes    uint64
}

func (c *countingTracer) Access(addr uint64, size int, write bool) {
	c.accesses++
	c.bytes += uint64(size)
}

// Regression test for the tracer data race: RunKernelCtx must route
// lookup addresses to per-worker tracers, never to a tracer shared
// between workers. Run under -race this fails if any tracer state is
// shared; it also asserts x.Tracer is left untouched by kernel runs.
func TestRunKernelCtxPerWorkerTracerRace(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	g := genome.Random(rng, 2000)
	x := Build(g)

	// A shared unsynchronized tracer on the index must NOT be used by
	// the kernel (using it concurrently would be a data race).
	shared := &countingTracer{}
	x.Tracer = shared
	defer func() { x.Tracer = nil }()

	reads := make([]genome.Seq, 64)
	for i := range reads {
		off := rng.Intn(len(g) - 100)
		reads[i] = g[off : off+100].Clone()
	}
	cfg := DefaultKernelConfig()
	cfg.Threads = 4
	tracers := make([]*countingTracer, cfg.Threads)
	cfg.NewWorkerTracer = func(w int) MemTracer {
		tracers[w] = &countingTracer{}
		return tracers[w]
	}
	res, err := RunKernelCtx(t.Context(), x, reads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if shared.accesses != 0 {
		t.Fatalf("kernel used the shared x.Tracer (%d accesses): per-worker tracers must be used instead", shared.accesses)
	}
	var merged uint64
	for _, tr := range tracers {
		if tr != nil {
			merged += tr.accesses
		}
	}
	if merged == 0 {
		t.Fatal("per-worker tracers saw no accesses")
	}
	// Every Occ lookup touches checkpoint + block: 2 accesses each.
	if merged != 2*res.OccLookups {
		t.Fatalf("merged tracer accesses = %d, want 2*OccLookups = %d", merged, 2*res.OccLookups)
	}
}

// Concurrent kernel results must be independent of thread count.
func TestRunKernelCtxThreadInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	g := genome.Random(rng, 3000)
	x := Build(g)
	reads := make([]genome.Seq, 40)
	for i := range reads {
		off := rng.Intn(len(g) - 150)
		reads[i] = g[off : off+150].Clone()
	}
	cfg := DefaultKernelConfig()
	cfg.Threads = 1
	want, err := RunKernelCtx(t.Context(), x, reads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Threads = 4
	var spawned atomic.Int32
	cfg.NewWorkerTracer = func(w int) MemTracer { spawned.Add(1); return &countingTracer{} }
	got, err := RunKernelCtx(t.Context(), x, reads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.SMEMs != want.SMEMs || got.OccLookups != want.OccLookups {
		t.Fatalf("threads=4: SMEMs/lookups %d/%d, want %d/%d",
			got.SMEMs, got.OccLookups, want.SMEMs, want.OccLookups)
	}
	if spawned.Load() != 4 {
		t.Fatalf("NewWorkerTracer called %d times, want 4", spawned.Load())
	}
}

// Byte-scan versus popcount Occ ranking: the bench harness's fmindex
// before/after pair. Lookups hit positions spread across the text so
// partial-block ranks of every length occur.
func BenchmarkOcc4(b *testing.B) {
	rng := rand.New(rand.NewSource(35))
	g := genome.Random(rng, 1<<16)
	x := Build(g)
	positions := make([]int, 1024)
	for i := range positions {
		positions[i] = rng.Intn(x.textLen + 1)
	}
	b.Run("scalar", func(b *testing.B) {
		var sink int32
		for i := 0; i < b.N; i++ {
			c := x.occ4Scalar(positions[i%len(positions)])
			sink += c[0]
		}
		_ = sink
	})
	b.Run("packed", func(b *testing.B) {
		var sink int32
		for i := 0; i < b.N; i++ {
			c := x.occ4(positions[i%len(positions)])
			sink += c[0]
		}
		_ = sink
	})
}

// End-to-end SMEM search with packed Occ ranking.
func BenchmarkFindSMEMs(b *testing.B) {
	rng := rand.New(rand.NewSource(36))
	g := genome.Random(rng, 1<<15)
	x := Build(g)
	reads := make([]genome.Seq, 32)
	for i := range reads {
		off := rng.Intn(len(g) - 120)
		reads[i] = g[off : off+120].Clone()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.FindSMEMs(reads[i%len(reads)], 19, 1, nil)
	}
}
