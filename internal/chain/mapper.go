package chain

import (
	"sort"

	"repro/internal/genome"
)

// Mapper is a Minimap2-style reference mapper: a minimizer index over
// the target genome (both strands via canonical orientation handling)
// plus the chaining DP to place reads. This is the full mapping path
// the chain kernel was extracted from, provided so the suite's
// examples can map long reads without the FM index.
type Mapper struct {
	k, w   int
	maxOcc int
	ref    genome.Seq
	// index maps a minimizer hash to its reference positions; negative
	// positions encode reverse-strand minimizers as -(pos+1).
	index map[uint64][]int32
}

// NewMapper indexes the reference with (w,k)-minimizers on both
// strands. maxOcc drops repetitive minimizers at query time.
func NewMapper(ref genome.Seq, k, w, maxOcc int) *Mapper {
	m := &Mapper{k: k, w: w, maxOcc: maxOcc, ref: ref, index: make(map[uint64][]int32)}
	for _, mz := range Minimizers(ref, k, w) {
		m.index[mz.Hash] = append(m.index[mz.Hash], mz.Pos)
	}
	rc := ref.ReverseComplement()
	for _, mz := range Minimizers(rc, k, w) {
		// Position of the minimizer's first base on the forward strand.
		fwd := int32(len(ref)) - mz.Pos - int32(k)
		m.index[mz.Hash] = append(m.index[mz.Hash], -(fwd + 1))
	}
	return m
}

// Mapping is one read placement.
type Mapping struct {
	RefStart, RefEnd int
	QStart, QEnd     int
	Reverse          bool
	Score            float64
	Anchors          int
}

// Map places a read on the reference, returning mappings sorted by
// descending chain score (empty when the read has no chainable seeds).
func (m *Mapper) Map(read genome.Seq, cfg Config) []Mapping {
	var fwd, rev []Anchor
	for _, mz := range Minimizers(read, m.k, m.w) {
		hits := m.index[mz.Hash]
		if len(hits) == 0 || (m.maxOcc > 0 && len(hits) > m.maxOcc) {
			continue
		}
		for _, h := range hits {
			if h >= 0 {
				fwd = append(fwd, Anchor{
					X: h + int32(m.k) - 1,
					Y: mz.Pos + int32(m.k) - 1,
					W: int32(m.k),
				})
			} else {
				// Reverse-strand hit: anchor in reverse-read coordinates.
				pos := -h - 1
				rev = append(rev, Anchor{
					X: pos + int32(m.k) - 1,
					Y: int32(len(read)) - mz.Pos - 1,
					W: int32(m.k),
				})
			}
		}
	}
	var mappings []Mapping
	for strand, anchors := range [][]Anchor{fwd, rev} {
		if len(anchors) == 0 {
			continue
		}
		sort.Slice(anchors, func(i, j int) bool {
			if anchors[i].X != anchors[j].X {
				return anchors[i].X < anchors[j].X
			}
			return anchors[i].Y < anchors[j].Y
		})
		chains, _ := ChainAnchors(anchors, cfg)
		for _, c := range chains {
			x0, x1, y0, y1 := c.Span(anchors)
			mp := Mapping{
				RefStart: int(x0), RefEnd: int(x1),
				QStart: int(y0), QEnd: int(y1),
				Reverse: strand == 1,
				Score:   c.Score,
				Anchors: len(c.Anchors),
			}
			if mp.Reverse {
				// Translate query span back to forward-read coordinates.
				mp.QStart, mp.QEnd = len(read)-int(y1), len(read)-int(y0)
			}
			if mp.RefStart < 0 {
				mp.RefStart = 0
			}
			if mp.QStart < 0 {
				mp.QStart = 0
			}
			mappings = append(mappings, mp)
		}
	}
	sort.Slice(mappings, func(i, j int) bool { return mappings[i].Score > mappings[j].Score })
	return mappings
}
