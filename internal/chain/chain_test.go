package chain

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/genome"
)

func TestMinimizersDeterministicAndSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := genome.Random(rng, 500)
	a := Minimizers(s, 15, 10)
	b := Minimizers(s, 15, 10)
	if len(a) == 0 {
		t.Fatal("no minimizers from 500-base read")
	}
	if len(a) != len(b) {
		t.Fatal("minimizers not deterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("minimizers not deterministic")
		}
		if i > 0 && a[i].Pos <= a[i-1].Pos {
			t.Fatal("minimizer positions not increasing")
		}
	}
	// Density: roughly 2/(w+1) of positions.
	density := float64(len(a)) / 500
	if density < 0.05 || density > 0.5 {
		t.Errorf("minimizer density %.3f implausible for w=10", density)
	}
}

func TestMinimizersDegenerate(t *testing.T) {
	s := genome.MustFromString("ACGTACGT")
	if m := Minimizers(s, 15, 10); m != nil {
		t.Error("expected nil minimizers for short sequence")
	}
	if m := Minimizers(s, 0, 5); m != nil {
		t.Error("expected nil for k=0")
	}
}

func TestSharedAnchorsIdenticalReads(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := genome.Random(rng, 1000)
	anchors := SharedAnchors(s, s, 15, 10, 50)
	if len(anchors) == 0 {
		t.Fatal("identical reads share no anchors")
	}
	diagonal := 0
	for _, a := range anchors {
		if a.X == a.Y {
			diagonal++
		}
	}
	if float64(diagonal)/float64(len(anchors)) < 0.9 {
		t.Errorf("only %d/%d anchors on the diagonal for identical reads", diagonal, len(anchors))
	}
	if !sort.SliceIsSorted(anchors, func(i, j int) bool {
		if anchors[i].X != anchors[j].X {
			return anchors[i].X < anchors[j].X
		}
		return anchors[i].Y < anchors[j].Y
	}) {
		t.Error("anchors not sorted")
	}
}

func TestSharedAnchorsUnrelatedReads(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := genome.Random(rng, 800)
	b := genome.Random(rng, 800)
	anchors := SharedAnchors(a, b, 15, 10, 50)
	// 15-mers collide with probability 4^-15; expect none.
	if len(anchors) > 2 {
		t.Errorf("unrelated reads share %d anchors", len(anchors))
	}
}

func TestChainAnchorsCollinear(t *testing.T) {
	// Perfectly co-linear anchors every 20 bases.
	var anchors []Anchor
	for i := 0; i < 20; i++ {
		anchors = append(anchors, Anchor{X: int32(100 + 20*i), Y: int32(50 + 20*i), W: 15})
	}
	cfg := DefaultConfig()
	chains, comps := ChainAnchors(anchors, cfg)
	if len(chains) != 1 {
		t.Fatalf("got %d chains, want 1", len(chains))
	}
	if len(chains[0].Anchors) != 20 {
		t.Errorf("chain has %d anchors, want 20", len(chains[0].Anchors))
	}
	if comps == 0 {
		t.Error("no comparisons counted")
	}
	// Score: w for first anchor + ~min(20, w)=15 per subsequent link.
	if chains[0].Score < 15+19*15-1 {
		t.Errorf("chain score %.1f lower than expected", chains[0].Score)
	}
}

func TestChainSplitsOnLargeGap(t *testing.T) {
	var anchors []Anchor
	for i := 0; i < 10; i++ {
		anchors = append(anchors, Anchor{X: int32(100 + 20*i), Y: int32(100 + 20*i), W: 15})
	}
	// Second group far beyond MaxDist.
	for i := 0; i < 10; i++ {
		anchors = append(anchors, Anchor{X: int32(50000 + 20*i), Y: int32(300 + 20*i), W: 15})
	}
	cfg := DefaultConfig()
	cfg.MinScore = 20
	chains, _ := ChainAnchors(anchors, cfg)
	if len(chains) != 2 {
		t.Fatalf("got %d chains, want 2 (gap should split)", len(chains))
	}
}

func TestChainAntiDiagonalRejected(t *testing.T) {
	// Anchors with decreasing Y cannot chain (dy <= 0).
	var anchors []Anchor
	for i := 0; i < 10; i++ {
		anchors = append(anchors, Anchor{X: int32(100 + 20*i), Y: int32(400 - 20*i), W: 15})
	}
	cfg := DefaultConfig()
	cfg.MinScore = 20
	cfg.MinAnchors = 2
	chains, _ := ChainAnchors(anchors, cfg)
	if len(chains) != 0 {
		t.Errorf("anti-diagonal anchors formed %d chains", len(chains))
	}
}

func TestChainScoreAtLeastSeedLen(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var anchors []Anchor
	for i := 0; i < 50; i++ {
		anchors = append(anchors, Anchor{
			X: int32(rng.Intn(2000)), Y: int32(rng.Intn(2000)), W: 15,
		})
	}
	sort.Slice(anchors, func(i, j int) bool { return anchors[i].X < anchors[j].X })
	cfg := DefaultConfig()
	cfg.MinScore = 0
	cfg.MinAnchors = 1
	chains, _ := ChainAnchors(anchors, cfg)
	for _, c := range chains {
		if c.Score < 15 {
			t.Errorf("chain score %.1f below seed length", c.Score)
		}
		if !sort.IntsAreSorted(c.Anchors) {
			t.Error("chain anchors not ascending")
		}
	}
}

func TestChainsDoNotShareAnchors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var anchors []Anchor
	for g := 0; g < 4; g++ {
		base := int32(g * 30000)
		for i := 0; i < 15; i++ {
			anchors = append(anchors, Anchor{X: base + int32(20*i), Y: int32(100 + g*500 + 20*i), W: 15})
		}
	}
	_ = rng
	cfg := DefaultConfig()
	cfg.MinScore = 20
	chains, _ := ChainAnchors(anchors, cfg)
	seen := map[int]bool{}
	for _, c := range chains {
		for _, a := range c.Anchors {
			if seen[a] {
				t.Fatalf("anchor %d in two chains", a)
			}
			seen[a] = true
		}
	}
}

func TestEndToEndOverlapDetection(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	src := genome.Random(rng, 4000)
	// Two "long reads" overlapping by 1500 bases.
	readA := src[:2500]
	readB := src[1000:3500]
	anchors := SharedAnchors(readB, readA, 15, 10, 50)
	if len(anchors) < 10 {
		t.Fatalf("only %d anchors between overlapping reads", len(anchors))
	}
	chains, _ := ChainAnchors(anchors, DefaultConfig())
	if len(chains) == 0 {
		t.Fatal("no chain found for overlapping reads")
	}
	x0, x1, y0, y1 := chains[0].Span(anchors)
	// Overlap on readA is [1000,2500); on readB it is [0,1500).
	if x0 > 1100 || x1 < 2400 {
		t.Errorf("target span [%d,%d) misses overlap [1000,2500)", x0, x1)
	}
	if y0 > 100 || y1 < 1400 {
		t.Errorf("query span [%d,%d) misses overlap [0,1500)", y0, y1)
	}
}

func TestRunKernelDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	src := genome.Random(rng, 5000)
	var tasks []Task
	for i := 0; i < 8; i++ {
		a := src[rng.Intn(1000) : 2000+rng.Intn(2000)]
		b := src[rng.Intn(1000) : 2000+rng.Intn(2000)]
		tasks = append(tasks, Task{Anchors: SharedAnchors(a, b, 15, 10, 50)})
	}
	r1 := RunKernel(tasks, DefaultConfig(), 1)
	r4 := RunKernel(tasks, DefaultConfig(), 4)
	if r1.Chains != r4.Chains || r1.Comparisons != r4.Comparisons {
		t.Errorf("threading changed results: %+v vs %+v", r1, r4)
	}
	if r1.TaskStats.Count() != 8 {
		t.Errorf("task count %d", r1.TaskStats.Count())
	}
}

func TestQuickSortOrdering(t *testing.T) {
	xs := []int{5, 3, 1, 4, 2, 0, 9, 8, 7, 6}
	score := []float64{0, 10, 20, 30, 40, 50, 60, 70, 80, 90}
	sortByScoreDesc(xs, score)
	for i := 1; i < len(xs); i++ {
		if score[xs[i-1]] < score[xs[i]] {
			t.Fatalf("not descending at %d", i)
		}
	}
}

// TestSortByScoreDescPathological: duplicate-heavy and pre-ordered
// score arrays drove the unbounded quicksort into deeply skewed
// recursion; the depth-bounded version must sort them all (all-equal
// especially — every anchor tie scores identically) without leaning on
// the goroutine stack, and still produce a descending permutation.
func TestSortByScoreDescPathological(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const n = 200_000
	cases := map[string]func(i int) float64{
		"all-equal": func(int) float64 { return 42 },
		"ascending": func(i int) float64 { return float64(i) },
		"descending": func(i int) float64 { return float64(n - i) },
		"two-valued": func(i int) float64 { return float64(i & 1) },
		"organ-pipe": func(i int) float64 { return float64(min(i, n-i)) },
		"random":    func(int) float64 { return rng.Float64() },
	}
	for name, gen := range cases {
		score := make([]float64, n)
		order := make([]int, n)
		for i := range score {
			score[i] = gen(i)
			order[i] = i
		}
		sortByScoreDesc(order, score)
		seen := make([]bool, n)
		for i, idx := range order {
			if seen[idx] {
				t.Fatalf("%s: index %d appears twice", name, idx)
			}
			seen[idx] = true
			if i > 0 && score[order[i-1]] < score[idx] {
				t.Fatalf("%s: order not descending at %d", name, i)
			}
		}
	}
}
