package chain

import (
	"math/rand"
	"testing"

	"repro/internal/genome"
	"repro/internal/readsim"
)

func TestMapperForwardReads(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ref := genome.NewReference(rng, "chr", 40_000, 0.05)
	m := NewMapper(ref.Seq, 15, 10, 100)
	cfg := DefaultConfig()
	for trial := 0; trial < 20; trial++ {
		length := 1000 + rng.Intn(2000)
		start := rng.Intn(len(ref.Seq) - length)
		read := ref.Seq[start : start+length]
		maps := m.Map(read, cfg)
		if len(maps) == 0 {
			t.Fatalf("trial %d: exact fragment did not map", trial)
		}
		best := maps[0]
		if best.Reverse {
			t.Fatalf("trial %d: forward fragment mapped reverse", trial)
		}
		if d := best.RefStart - start; d < -100 || d > 100 {
			t.Fatalf("trial %d: mapped to %d, true %d", trial, best.RefStart, start)
		}
	}
}

func TestMapperReverseReads(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ref := genome.NewReference(rng, "chr", 30_000, 0.05)
	m := NewMapper(ref.Seq, 15, 10, 100)
	cfg := DefaultConfig()
	for trial := 0; trial < 10; trial++ {
		length := 1500
		start := rng.Intn(len(ref.Seq) - length)
		read := ref.Seq[start : start+length].ReverseComplement()
		maps := m.Map(read, cfg)
		if len(maps) == 0 {
			t.Fatalf("trial %d: reverse fragment did not map", trial)
		}
		best := maps[0]
		if !best.Reverse {
			t.Fatalf("trial %d: reverse fragment mapped forward", trial)
		}
		if d := best.RefStart - start; d < -100 || d > 100 {
			t.Fatalf("trial %d: mapped to %d, true %d", trial, best.RefStart, start)
		}
	}
}

func TestMapperNoisyLongReads(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ref := genome.NewReference(rng, "chr", 50_000, 0.05)
	m := NewMapper(ref.Seq, 15, 10, 100)
	sim := readsim.New(4)
	lcfg := readsim.DefaultLong()
	lcfg.MeanLength = 4000
	lcfg.ErrorRate = 0.08
	reads := sim.LongReads(ref.Seq, -1, 30, lcfg, "lr")
	cfg := DefaultConfig()
	mapped, correct := 0, 0
	for _, r := range reads {
		maps := m.Map(r.Seq, cfg)
		if len(maps) == 0 {
			continue
		}
		mapped++
		best := maps[0]
		if best.Reverse == r.Reverse {
			if d := best.RefStart - r.RefPos; d > -300 && d < 300 {
				correct++
			}
		}
	}
	if mapped < 25 {
		t.Errorf("only %d/30 noisy reads mapped", mapped)
	}
	if correct*10 < mapped*8 {
		t.Errorf("only %d/%d mapped reads near their origin", correct, mapped)
	}
}

func TestMapperUnrelatedReadDoesNotMap(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ref := genome.NewReference(rng, "chr", 20_000, 0.05)
	m := NewMapper(ref.Seq, 15, 10, 100)
	unrelated := genome.Random(rng, 2000)
	if maps := m.Map(unrelated, DefaultConfig()); len(maps) != 0 {
		t.Errorf("unrelated read produced %d mappings", len(maps))
	}
}

func TestMapperQuerySpanWithinRead(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ref := genome.NewReference(rng, "chr", 20_000, 0.05)
	m := NewMapper(ref.Seq, 15, 10, 100)
	read := ref.Seq[5000:7000].ReverseComplement()
	for _, mp := range m.Map(read, DefaultConfig()) {
		if mp.QStart < 0 || mp.QEnd > len(read) || mp.QStart >= mp.QEnd {
			t.Fatalf("query span [%d,%d) outside read of %d", mp.QStart, mp.QEnd, len(read))
		}
		if mp.RefStart >= mp.RefEnd || mp.RefEnd > len(ref.Seq) {
			t.Fatalf("ref span [%d,%d) invalid", mp.RefStart, mp.RefEnd)
		}
	}
}
