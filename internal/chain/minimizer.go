// Package chain implements the chaining kernel from Minimap2: grouping
// co-linear seed matches (anchors) between a pair of reads into
// overlapping regions with the score(i) = max_j{score(j) + alpha(j,i) -
// beta(j,i), w_i} recurrence, each anchor compared against the previous
// N anchors. Anchor generation uses (w,k)-minimizer sketching, the same
// seeding scheme Minimap2 uses.
package chain

import (
	"sort"

	"repro/internal/genome"
)

// Minimizer is one sampled k-mer: its hashed value and read position.
type Minimizer struct {
	Hash uint64
	Pos  int32
}

// hash64 is the invertible integer hash Minimap2 applies to k-mer codes
// so that minimizer sampling is not biased toward poly-A.
func hash64(key, mask uint64) uint64 {
	key = (^key + (key << 21)) & mask
	key = key ^ key>>24
	key = (key + (key << 3) + (key << 8)) & mask
	key = key ^ key>>14
	key = (key + (key << 2) + (key << 4)) & mask
	key = key ^ key>>28
	key = (key + (key << 31)) & mask
	return key
}

// Minimizers extracts the (w,k)-minimizers of s: for every window of w
// consecutive k-mers, the k-mer with the smallest hash is sampled.
// Consecutive duplicate selections are collapsed.
func Minimizers(s genome.Seq, k, w int) []Minimizer {
	if len(s) < k+w-1 || k <= 0 || k > 31 || w <= 0 {
		return nil
	}
	mask := uint64(1)<<(2*uint(k)) - 1
	nk := len(s) - k + 1
	hashes := make([]uint64, nk)
	genome.EachKmer(s, k, func(pos int, code uint64) {
		hashes[pos] = hash64(code, mask)
	})
	var out []Minimizer
	lastPos := int32(-1)
	for start := 0; start+w <= nk; start++ {
		minIdx := start
		for i := start + 1; i < start+w; i++ {
			if hashes[i] < hashes[minIdx] {
				minIdx = i
			}
		}
		if int32(minIdx) != lastPos {
			out = append(out, Minimizer{Hash: hashes[minIdx], Pos: int32(minIdx)})
			lastPos = int32(minIdx)
		}
	}
	return out
}

// Anchor is a seed match between a query and a target read: the
// inclusive END positions of a shared minimizer on each sequence plus
// the seed length (Minimap2's anchor convention).
type Anchor struct {
	X int32 // target end position (inclusive)
	Y int32 // query end position (inclusive)
	W int32 // seed length
}

// SharedAnchors builds the anchors between two reads from their shared
// minimizers, sorted by target then query position — the input format
// of the chaining DP. Minimizers occurring more than maxOcc times in
// the target are skipped as repeats.
func SharedAnchors(query, target genome.Seq, k, w, maxOcc int) []Anchor {
	qm := Minimizers(query, k, w)
	tm := Minimizers(target, k, w)
	tIndex := make(map[uint64][]int32, len(tm))
	for _, m := range tm {
		tIndex[m.Hash] = append(tIndex[m.Hash], m.Pos)
	}
	var anchors []Anchor
	for _, m := range qm {
		positions := tIndex[m.Hash]
		if len(positions) == 0 || (maxOcc > 0 && len(positions) > maxOcc) {
			continue
		}
		for _, tp := range positions {
			anchors = append(anchors, Anchor{
				X: tp + int32(k) - 1,
				Y: m.Pos + int32(k) - 1,
				W: int32(k),
			})
		}
	}
	sort.Slice(anchors, func(i, j int) bool {
		if anchors[i].X != anchors[j].X {
			return anchors[i].X < anchors[j].X
		}
		return anchors[i].Y < anchors[j].Y
	})
	return anchors
}
