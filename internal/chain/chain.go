package chain

import (
	"context"
	"math"
	"math/bits"

	"repro/internal/faultinject"
	"repro/internal/parallel"
	"repro/internal/perf"
)

// Config parameterizes the chaining DP, defaults following Minimap2.
type Config struct {
	MaxLookback int     // N previous anchors compared per anchor (paper default 25)
	MaxDist     int32   // maximum gap between chainable anchors
	GapScale    float64 // linear gap cost coefficient
	MinScore    float64 // minimum chain score to report
	MinAnchors  int     // minimum anchors per reported chain
}

// DefaultConfig mirrors Minimap2's chaining defaults.
func DefaultConfig() Config {
	return Config{
		MaxLookback: 25,
		MaxDist:     5000,
		GapScale:    0.01,
		MinScore:    40,
		MinAnchors:  3,
	}
}

// Chain is one reported co-linear anchor group.
type Chain struct {
	Score   float64
	Anchors []int // indices into the input anchor slice, ascending
}

// Span returns the target and query extents of the chain as
// half-open intervals. Anchor coordinates are seed END positions
// (inclusive), the Minimap2 convention.
func (c Chain) Span(anchors []Anchor) (x0, x1, y0, y1 int32) {
	if len(c.Anchors) == 0 {
		return
	}
	first := anchors[c.Anchors[0]]
	last := anchors[c.Anchors[len(c.Anchors)-1]]
	x0 = first.X - first.W + 1
	x1 = last.X + 1
	y0 = first.Y - first.W + 1
	y1 = last.Y + 1
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	return
}

// alphaBeta computes the match gain alpha(j,i) and gap penalty
// beta(j,i) between anchors j (earlier) and i, following Minimap2:
// alpha is the number of new matching bases after overlap, beta is a
// linear + log penalty on the difference of the two gaps.
func alphaBeta(aj, ai Anchor, cfg *Config) (alpha, beta float64, ok bool) {
	dx := ai.X - aj.X
	dy := ai.Y - aj.Y
	if dy <= 0 || dx <= 0 {
		return 0, 0, false
	}
	if dx > cfg.MaxDist || dy > cfg.MaxDist {
		return 0, 0, false
	}
	minD := dx
	if dy < minD {
		minD = dy
	}
	if int32(ai.W) < minD {
		minD = ai.W
	}
	alpha = float64(minD)
	gap := dx - dy
	if gap < 0 {
		gap = -gap
	}
	if gap != 0 {
		beta = cfg.GapScale*float64(ai.W)*float64(gap) + 0.5*math.Log2(float64(gap))
	}
	return alpha, beta, true
}

// ChainAnchors runs the 1-D chaining DP over anchors (sorted by X) and
// extracts non-overlapping chains by descending score. It returns the
// chains and the number of anchor-pair comparisons performed (the
// kernel's data-parallel computation unit).
func ChainAnchors(anchors []Anchor, cfg Config) ([]Chain, uint64) {
	n := len(anchors)
	if n == 0 {
		return nil, 0
	}
	score := make([]float64, n)
	parent := make([]int, n)
	var comparisons uint64
	for i := 0; i < n; i++ {
		score[i] = float64(anchors[i].W)
		parent[i] = -1
		lo := i - cfg.MaxLookback
		if lo < 0 {
			lo = 0
		}
		for j := i - 1; j >= lo; j-- {
			comparisons++
			alpha, beta, ok := alphaBeta(anchors[j], anchors[i], &cfg)
			if !ok {
				continue
			}
			if s := score[j] + alpha - beta; s > score[i] {
				score[i] = s
				parent[i] = j
			}
		}
	}
	// Extract chains: order anchor end-points by score, walk parents,
	// skipping anchors already consumed by a better chain.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Simple insertion of sort by descending score.
	sortByScoreDesc(order, score)
	used := make([]bool, n)
	var chains []Chain
	for _, end := range order {
		if used[end] || score[end] < cfg.MinScore {
			continue
		}
		var members []int
		for at := end; at >= 0 && !used[at]; at = parent[at] {
			members = append(members, at)
			used[at] = true
		}
		if len(members) < cfg.MinAnchors {
			continue
		}
		// Reverse into ascending order.
		for l, r := 0, len(members)-1; l < r; l, r = l+1, r-1 {
			members[l], members[r] = members[r], members[l]
		}
		chains = append(chains, Chain{Score: score[end], Anchors: members})
	}
	return chains, comparisons
}

func sortByScoreDesc(order []int, score []float64) {
	// Introsort-style quicksort with a closure; isolated for reuse.
	quickSort(order, func(a, b int) bool { return score[a] > score[b] }, 2*bits.Len(uint(len(order))))
}

// quickSort is a depth-bounded Hoare quicksort. Skewed partitions —
// duplicate-heavy score arrays are the common source, and every anchor
// tie scores identically — burn the depth budget instead of the
// goroutine stack: once it is spent the range falls back to insertion
// sort, which is also the small-range finisher. Recursing on the
// smaller half and looping on the larger keeps the stack O(log n)
// even before the budget trips.
func quickSort(xs []int, less func(a, b int) bool, depth int) {
	for len(xs) > 12 {
		if depth == 0 {
			insertionSort(xs, less)
			return
		}
		depth--
		pivot := xs[len(xs)/2]
		left, right := 0, len(xs)-1
		for left <= right {
			for less(xs[left], pivot) {
				left++
			}
			for less(pivot, xs[right]) {
				right--
			}
			if left <= right {
				xs[left], xs[right] = xs[right], xs[left]
				left++
				right--
			}
		}
		if right+1 < len(xs)-left {
			quickSort(xs[:right+1], less, depth)
			xs = xs[left:]
		} else {
			quickSort(xs[left:], less, depth)
			xs = xs[:right+1]
		}
	}
	insertionSort(xs, less)
}

func insertionSort(xs []int, less func(a, b int) bool) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && less(xs[j], xs[j-1]); j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Task is one chaining work item: the anchors shared between one pair
// of reads.
type Task struct {
	Anchors []Anchor
}

// KernelResult aggregates a chain benchmark execution.
type KernelResult struct {
	Tasks       int
	Chains      int
	Comparisons uint64
	TaskStats   *perf.TaskStats // input anchors per task (Table III unit)
	Counters    perf.Counters
}

// RunKernel chains every task with dynamic scheduling.
// It panics on failure; cancellable callers use RunKernelCtx.
func RunKernel(tasks []Task, cfg Config, threads int) KernelResult {
	res, err := RunKernelCtx(context.Background(), tasks, cfg, threads)
	if err != nil {
		panic(err)
	}
	return res
}

// RunKernelCtx is RunKernel with cooperative cancellation and a fault
// trip-point per task.
func RunKernelCtx(ctx context.Context, tasks []Task, cfg Config, threads int) (KernelResult, error) {
	if threads <= 0 {
		threads = 1
	}
	type ws struct {
		chains int
		comps  uint64
		stats  *perf.TaskStats
		_      perf.CacheLinePad // workers update these per task; keep shards on private cache lines
	}
	workers := make([]ws, threads)
	for i := range workers {
		workers[i].stats = perf.NewTaskStats("input anchors")
	}
	err := parallel.ForEachCtxErr(ctx, len(tasks), threads, func(tctx context.Context, w, i int) error {
		if err := faultinject.Point(tctx); err != nil {
			return err
		}
		chains, comps := ChainAnchors(tasks[i].Anchors, cfg)
		workers[w].chains += len(chains)
		workers[w].comps += comps
		workers[w].stats.Observe(float64(len(tasks[i].Anchors)))
		return nil
	})
	if err != nil {
		return KernelResult{}, err
	}
	res := KernelResult{Tasks: len(tasks), TaskStats: perf.NewTaskStats("input anchors")}
	for i := range workers {
		res.Chains += workers[i].chains
		res.Comparisons += workers[i].comps
		res.TaskStats.Merge(workers[i].stats)
	}
	// Chaining is scalar compute-bound: per comparison roughly a dozen
	// integer ops for the gap geometry, an FP gap-cost evaluation
	// (with log2) and data-dependent branches.
	res.Counters.Add(perf.IntALU, res.Comparisons*10)
	res.Counters.Add(perf.FloatOp, res.Comparisons*4)
	res.Counters.Add(perf.Load, res.Comparisons*3)
	res.Counters.Add(perf.Branch, res.Comparisons*4)
	return res, nil
}
