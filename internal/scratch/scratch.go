// Package scratch provides per-worker reusable scratch arenas for the
// suite's hot task loops. The original GenomicsBench kernels allocate
// their DP rows and probe buffers once per thread and reuse them for
// every task; the pure-Go ports initially allocated per call, paying
// allocator and GC costs the paper's kernels never did. An Arena makes
// the original discipline expressible: each scheduler worker owns one
// Arena, calls Reset at the top of every task, and draws grow-only
// typed buffers from it. Steady state (buffer sizes stable across
// tasks) performs zero heap allocations per task.
//
// An Arena is NOT safe for concurrent use; the intended pattern is one
// Arena per parallel worker, threaded through the per-worker state that
// kernels already keep for counters (see bsw.RunKernelCtx).
package scratch

// pool hands out grow-only buffers of one element type in call order.
// Reset rewinds the cursor so the next task reuses the same backing
// arrays; a request larger than a slot's capacity regrows just that
// slot.
type pool[T any] struct {
	bufs [][]T
	next int
}

func (p *pool[T]) get(n int) []T {
	if p.next < len(p.bufs) {
		b := p.bufs[p.next]
		if cap(b) < n {
			b = make([]T, n)
			p.bufs[p.next] = b
		}
		p.next++
		return b[:n]
	}
	b := make([]T, n)
	p.bufs = append(p.bufs, b)
	p.next++
	return b
}

func (p *pool[T]) reset() { p.next = 0 }

// Arena hands out reusable typed buffers. The zero value is ready to
// use. Buffers returned by the getters contain arbitrary stale data;
// callers must initialize every element they read (DP cores already do,
// since they write row 0 / column 0 explicitly).
//
// Buffers stay valid until the Arena is Reset; two successive calls to
// the same getter return distinct buffers.
type Arena struct {
	ints pool[int]
	i16  pool[int16]
	u16  pool[uint16]
	i32  pool[int32]
	u64  pool[uint64]
	f32  pool[float32]
	f64  pool[float64]
	byt  pool[byte]
}

// New returns an empty Arena. Equivalent to new(Arena); provided for
// symmetry with the rest of the suite's constructors.
func New() *Arena { return &Arena{} }

// Reset rewinds the arena so subsequent getters reuse the buffers
// handed out since the previous Reset. Call it at the top of each task.
func (a *Arena) Reset() {
	a.ints.reset()
	a.i16.reset()
	a.u16.reset()
	a.i32.reset()
	a.u64.reset()
	a.f32.reset()
	a.f64.reset()
	a.byt.reset()
}

// Ints returns a reusable []int of length n (contents unspecified).
func (a *Arena) Ints(n int) []int { return a.ints.get(n) }

// Int16s returns a reusable []int16 of length n (contents unspecified).
func (a *Arena) Int16s(n int) []int16 { return a.i16.get(n) }

// Uint16s returns a reusable []uint16 of length n (contents unspecified).
func (a *Arena) Uint16s(n int) []uint16 { return a.u16.get(n) }

// Int32s returns a reusable []int32 of length n (contents unspecified).
func (a *Arena) Int32s(n int) []int32 { return a.i32.get(n) }

// Uint64s returns a reusable []uint64 of length n (contents unspecified).
func (a *Arena) Uint64s(n int) []uint64 { return a.u64.get(n) }

// Float32s returns a reusable []float32 of length n (contents unspecified).
func (a *Arena) Float32s(n int) []float32 { return a.f32.get(n) }

// Float64s returns a reusable []float64 of length n (contents unspecified).
func (a *Arena) Float64s(n int) []float64 { return a.f64.get(n) }

// Bytes returns a reusable []byte of length n (contents unspecified).
func (a *Arena) Bytes(n int) []byte { return a.byt.get(n) }

// Grow returns a slice of length n backed by buf's array when it is
// large enough, allocating a fresh array only when capacity is
// exceeded. It is the free-standing grow-only helper for kernels whose
// scratch is a named struct of typed slices rather than an Arena:
//
//	s.prev = scratch.Grow(s.prev, W)
//
// Contents are unspecified; callers must initialize what they read.
func Grow[T any](buf []T, n int) []T {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]T, n)
}
