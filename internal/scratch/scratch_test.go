package scratch

import "testing"

func TestArenaReuse(t *testing.T) {
	a := New()
	b1 := a.Int32s(100)
	b2 := a.Int32s(50)
	if &b1[0] == &b2[0] {
		t.Fatal("two gets in one epoch must return distinct buffers")
	}
	b1[0], b2[0] = 7, 9
	a.Reset()
	r1 := a.Int32s(100)
	r2 := a.Int32s(50)
	if &r1[0] != &b1[0] || &r2[0] != &b2[0] {
		t.Fatal("after Reset, buffers must be reused in call order")
	}
}

func TestArenaGrowsSlot(t *testing.T) {
	a := New()
	small := a.Float32s(8)
	_ = small
	a.Reset()
	big := a.Float32s(1024)
	if len(big) != 1024 {
		t.Fatalf("len = %d, want 1024", len(big))
	}
	a.Reset()
	again := a.Float32s(1024)
	if &again[0] != &big[0] {
		t.Fatal("regrown slot must be retained across Reset")
	}
}

func TestArenaTypesIndependent(t *testing.T) {
	a := New()
	i := a.Ints(4)
	u := a.Uint64s(4)
	f := a.Float64s(4)
	b := a.Bytes(4)
	if len(i) != 4 || len(u) != 4 || len(f) != 4 || len(b) != 4 {
		t.Fatal("wrong lengths")
	}
}

func TestGrow(t *testing.T) {
	buf := make([]int, 0, 16)
	g := Grow(buf, 10)
	if len(g) != 10 || cap(g) != 16 {
		t.Fatalf("Grow reuse: len=%d cap=%d", len(g), cap(g))
	}
	g2 := Grow(g, 32)
	if len(g2) != 32 {
		t.Fatalf("Grow alloc: len=%d", len(g2))
	}
}

// Steady-state arena use must be allocation-free.
func TestArenaZeroAllocSteadyState(t *testing.T) {
	a := New()
	task := func() {
		a.Reset()
		h := a.Int32s(256)
		e := a.Int32s(256)
		w := a.Uint64s(8)
		h[0], e[0], w[0] = 1, 2, 3
	}
	task() // warm: first epoch allocates
	if n := testing.AllocsPerRun(100, task); n != 0 {
		t.Fatalf("steady-state allocs per task = %v, want 0", n)
	}
}
