package scratch

import "context"

// Pool is a set of per-worker Arenas that outlives a single kernel
// execution. The suite driver installs one Pool per kernel into the
// context it hands resilience.Run, so a retried attempt draws the same
// warm arenas its predecessor grew instead of re-paying every band and
// table allocation from a cold heap. Workers are keyed by the stable
// worker index the schedulers (parallel.ForEachCtx) already hand their
// task bodies.
//
// Like Arena, a Pool is not safe for concurrent use: kernels fetch
// worker arenas in their sequential worker-init loop, and resilience
// never overlaps attempts, so accesses are naturally serialized.
type Pool struct {
	arenas []*Arena
	state  []any
}

// NewPool returns an empty Pool.
func NewPool() *Pool { return &Pool{} }

// Worker returns worker w's Arena, creating it on first use. A nil
// Pool (no pool installed in the context) degrades to a fresh Arena
// per call — exactly the kernels' previous per-execution behaviour.
func (p *Pool) Worker(w int) *Arena {
	if p == nil {
		return New()
	}
	for len(p.arenas) <= w {
		p.arenas = append(p.arenas, nil)
	}
	if p.arenas[w] == nil {
		p.arenas[w] = New()
	}
	return p.arenas[w]
}

// WorkerState returns worker w's kernel-specific scratch slot,
// creating it with mk on first use. It serves kernels whose scratch is
// a named struct rather than an Arena (phmm.Scratch); the caller type-
// asserts the result. A nil Pool returns mk() every call.
func (p *Pool) WorkerState(w int, mk func() any) any {
	if p == nil {
		return mk()
	}
	for len(p.state) <= w {
		p.state = append(p.state, nil)
	}
	if p.state[w] == nil {
		p.state[w] = mk()
	}
	return p.state[w]
}

type poolKey struct{}

// WithPool returns a context carrying p for kernels run beneath it.
func WithPool(ctx context.Context, p *Pool) context.Context {
	return context.WithValue(ctx, poolKey{}, p)
}

// PoolFrom extracts the installed Pool, or nil when the caller did not
// set one up (nil is a valid receiver for Worker and WorkerState).
func PoolFrom(ctx context.Context) *Pool {
	p, _ := ctx.Value(poolKey{}).(*Pool)
	return p
}
