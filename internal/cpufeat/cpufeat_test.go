package cpufeat

import (
	"runtime"
	"strings"
	"testing"
)

func TestDetectBaseline(t *testing.T) {
	f := detect()
	switch runtime.GOARCH {
	case "amd64":
		if !f.HasSSE2 {
			t.Fatal("amd64 must report SSE2: it is part of the architecture baseline")
		}
		if f.HasNEON {
			t.Fatal("amd64 must not report NEON")
		}
	case "arm64":
		if !f.HasNEON {
			t.Fatal("arm64 must report NEON: ASIMD is part of the architecture baseline")
		}
		if f.HasSSE2 || f.HasAVX2 {
			t.Fatal("arm64 must not report x86 tiers")
		}
	default:
		if f.HasSSE2 || f.HasAVX2 || f.HasNEON {
			t.Fatalf("no SIMD tiers expected on %s, got %+v", runtime.GOARCH, f)
		}
	}
}

func TestOverrideLowersCeilingOnly(t *testing.T) {
	hw := detect()

	restore := ForceForTest("off")
	if Get().HasSSE2 || Get().HasAVX2 || Get().HasNEON {
		t.Fatal("GBENCH_SIMD=off must disable every tier")
	}
	if Active() != "portable" {
		t.Fatalf("Active under off = %q, want portable", Active())
	}
	if Wide16() {
		t.Fatal("Wide16 must be false under GBENCH_SIMD=off")
	}
	restore()

	restore = ForceForTest("sse2")
	if Get().HasAVX2 || Get().HasNEON {
		t.Fatal("GBENCH_SIMD=sse2 must disable AVX2 and NEON")
	}
	if Get().HasSSE2 != hw.HasSSE2 {
		t.Fatal("GBENCH_SIMD=sse2 must not invent or remove SSE2 support")
	}
	restore()

	restore = ForceForTest("avx2")
	if Get().HasAVX2 && !hw.HasAVX2 {
		t.Fatal("an override must never enable a tier the hardware lacks")
	}
	restore()

	restore = ForceForTest("neon")
	if Get().HasSSE2 || Get().HasAVX2 {
		t.Fatal("GBENCH_SIMD=neon must disable x86 tiers")
	}
	if Get().HasNEON != hw.HasNEON {
		t.Fatal("an override must never enable NEON where the hardware lacks it")
	}
	restore()

	// After every restore the effective set is back to process state.
	if Get().Override != parseOverride(Get().Override) {
		t.Fatal("restore left a non-canonical override")
	}
}

func TestParseOverride(t *testing.T) {
	for in, want := range map[string]string{
		"off": "off", "OFF": "off", " Sse2 ": "sse2", "avx2": "avx2",
		"neon": "neon", "": "", "bogus": "", "avx512": "",
	} {
		if got := parseOverride(in); got != want {
			t.Errorf("parseOverride(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStringCarriesOverride(t *testing.T) {
	restore := ForceForTest("off")
	defer restore()
	s := String()
	if !strings.Contains(s, "portable") || !strings.Contains(s, "GBENCH_SIMD=off") {
		t.Fatalf("String() = %q, want portable with override stamp", s)
	}
}

func TestWide16MatchesTiers(t *testing.T) {
	f := Get()
	if Wide16() != (f.HasAVX2 || f.HasNEON) {
		t.Fatal("Wide16 must be exactly AVX2-or-NEON")
	}
}
