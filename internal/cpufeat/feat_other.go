//go:build !amd64 && !arm64

package cpufeat

// detect on architectures without any asm kernels: portable Go only.
func detect() Features {
	return Features{}
}
