// Package cpufeat detects, once at startup, which SIMD tiers the
// running CPU supports and which of them the process is allowed to
// use. Every assembly fast path in the suite dispatches through this
// package so that (a) an AVX2 kernel never executes on a host without
// AVX2 (the instruction set is NOT part of the amd64 baseline, unlike
// SSE2), and (b) every asm path has a forced-portable twin reachable
// without recompiling: GBENCH_SIMD pins the dispatch for differential
// testing, benchmarking a single tier, or working around a broken
// microcode level.
//
// Detection is per architecture:
//
//   - amd64: SSE2 is baseline. AVX2 requires CPUID.7.0:EBX[5] AND the
//     OS to have enabled YMM state saving (CPUID.1:ECX.OSXSAVE[27] and
//     XGETBV(0) reporting XMM|YMM, bits 1-2) — a kernel that executes
//     VPADDSW without OS support faults even on an AVX2 CPU.
//   - arm64: ASIMD (NEON) is part of the architectural baseline Go
//     targets; no HWCAP probe is needed.
//   - everything else: no SIMD tiers, portable Go only.
//
// The GBENCH_SIMD environment variable overrides the allowed ceiling:
//
//	GBENCH_SIMD=off    portable Go everywhere (no asm at all)
//	GBENCH_SIMD=sse2   amd64 SSE2 kernels only, no AVX2 (no-op on arm64)
//	GBENCH_SIMD=avx2   allow up to AVX2 (still requires hardware support)
//	GBENCH_SIMD=neon   allow NEON on arm64 (no-op on amd64)
//
// An override can only lower the ceiling below the hardware, never
// raise it above: GBENCH_SIMD=avx2 on a non-AVX2 host still runs the
// SSE2/portable paths. Unset or unrecognized values mean "use the
// best tier detected".
package cpufeat

import (
	"os"
	"strings"
	"sync"
)

// Features is the detected-and-allowed capability set consulted by
// the kernels' dispatch shims.
type Features struct {
	// Hardware capabilities, independent of any override.
	HasSSE2 bool // amd64 baseline
	HasAVX2 bool // amd64 CPUID + OS YMM state
	HasNEON bool // arm64 baseline (ASIMD)

	// Override is the raw GBENCH_SIMD value in effect ("" when unset
	// or unrecognized), recorded so bench host stamps can distinguish
	// a genuinely narrow host from a pinned run.
	Override string
}

var (
	mu    sync.RWMutex
	feats = detectWithOverride()
)

// detectWithOverride combines the arch probe with the environment
// override into the effective feature set.
func detectWithOverride() Features {
	f := detect() // arch-specific (feat_*.go)
	f.Override = parseOverride(os.Getenv("GBENCH_SIMD"))
	return applyOverride(f)
}

// parseOverride canonicalizes a GBENCH_SIMD value; unknown strings
// disable nothing (auto).
func parseOverride(s string) string {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "off", "sse2", "avx2", "neon":
		return strings.ToLower(strings.TrimSpace(s))
	}
	return ""
}

// applyOverride lowers the capability ceiling to the override. The
// hardware Has* bits are preserved in the returned struct only where
// the override allows their use — dispatch sites read the struct
// directly, so "allowed" and "present" collapse into one answer.
func applyOverride(f Features) Features {
	switch f.Override {
	case "off":
		f.HasSSE2, f.HasAVX2, f.HasNEON = false, false, false
	case "sse2":
		f.HasAVX2, f.HasNEON = false, false
	case "neon":
		f.HasSSE2, f.HasAVX2 = false, false
	case "avx2":
		// Ceiling at AVX2: everything detected stays allowed.
	}
	return f
}

// Get returns the effective (detected, override-applied) feature set.
func Get() Features {
	mu.RLock()
	defer mu.RUnlock()
	return feats
}

// AVX2 reports whether AVX2 kernels may run: hardware support present
// and not overridden away.
func AVX2() bool { return Get().HasAVX2 }

// SSE2 reports whether SSE2 kernels may run.
func SSE2() bool { return Get().HasSSE2 }

// NEON reports whether NEON kernels may run.
func NEON() bool { return Get().HasNEON }

// Wide16 reports whether a 16-lane int16 asm kernel may run on this
// host: AVX2 on amd64, NEON on arm64. This is the single dispatch
// question the poa and bsw wide row kernels ask.
func Wide16() bool {
	f := Get()
	return f.HasAVX2 || f.HasNEON
}

// Active names the widest tier the process will actually use —
// "avx2", "neon", "sse2", or "portable" — for host stamps and logs.
func Active() string {
	f := Get()
	switch {
	case f.HasAVX2:
		return "avx2"
	case f.HasNEON:
		return "neon"
	case f.HasSSE2:
		return "sse2"
	}
	return "portable"
}

// String renders the full capability story for the benchjson host
// stamp, e.g. "sse2+avx2", "sse2 (GBENCH_SIMD=sse2)", "portable
// (GBENCH_SIMD=off)". Trend records from different SIMD tiers must be
// distinguishable, so the override state is part of the stamp.
func String() string {
	f := Get()
	var tiers []string
	if f.HasSSE2 {
		tiers = append(tiers, "sse2")
	}
	if f.HasAVX2 {
		tiers = append(tiers, "avx2")
	}
	if f.HasNEON {
		tiers = append(tiers, "neon")
	}
	s := "portable"
	if len(tiers) > 0 {
		s = strings.Join(tiers, "+")
	}
	if f.Override != "" {
		s += " (GBENCH_SIMD=" + f.Override + ")"
	}
	return s
}

// ForceForTest pins the effective feature set to what simd names
// ("off", "sse2", "avx2", "neon", or "auto" to re-detect) and returns
// a restore func. Forcing can only lower the ceiling — forcing "avx2"
// on a non-AVX2 host leaves HasAVX2 false, so tests must skip, not
// assume. Tests that exercise both sides of a dispatch use this
// instead of mutating the environment.
func ForceForTest(simd string) (restore func()) {
	mu.Lock()
	prev := feats
	f := detect()
	f.Override = parseOverride(simd)
	feats = applyOverride(f)
	mu.Unlock()
	return func() {
		mu.Lock()
		feats = prev
		mu.Unlock()
	}
}
