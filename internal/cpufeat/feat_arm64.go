package cpufeat

// detect probes the hardware tiers on arm64. ASIMD (NEON) is part of
// the ARMv8-A baseline the Go toolchain targets, so no HWCAP read is
// needed: if the binary runs at all, the q-register kernels run.
func detect() Features {
	return Features{HasNEON: true}
}
