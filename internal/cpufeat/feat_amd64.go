package cpufeat

// cpuid executes CPUID with the given leaf/subleaf (cpuid_amd64.s).
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (XCR0); only valid when
// CPUID reports OSXSAVE (cpuid_amd64.s).
func xgetbv() (eax, edx uint32)

// detect probes the hardware tiers on amd64. SSE2 is part of the
// amd64 baseline — every binary the Go toolchain emits already
// assumes it — so only AVX2 needs a runtime answer.
func detect() Features {
	f := Features{HasSSE2: true}
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return f
	}
	// OS support first: CPUID.1:ECX bit 27 (OSXSAVE) says XGETBV is
	// usable; XCR0 bits 1-2 say the OS saves XMM and YMM state on
	// context switch. Without both, executing a VEX.256 instruction
	// faults regardless of what leaf 7 advertises.
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsave = 1 << 27
	if ecx1&osxsave == 0 {
		return f
	}
	xlo, _ := xgetbv()
	const xmmYmm = 0x6
	if xlo&xmmYmm != xmmYmm {
		return f
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2Bit = 1 << 5
	f.HasAVX2 = ebx7&avx2Bit != 0
	return f
}
