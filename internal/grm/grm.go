// Package grm implements the genomic relationship matrix kernel from
// PLINK2: G[i][j] = (1/S) * sum_s (x_is - 2p_s)(x_js - 2p_s) /
// (2 p_s (1-p_s)) over S SNV markers for N individuals — a dense
// standardized matrix product G = Z·Zᵀ/S, computed with cache blocking
// and parallelized over output tiles. It is the suite's regular-compute
// kernel (87.7% retiring pipeline slots in the paper's Figure 9).
package grm

import (
	"context"
	"math"
	"math/rand"

	"repro/internal/faultinject"
	"repro/internal/parallel"
	"repro/internal/perf"
)

// Genotypes holds the SNV matrix: Counts[i*S+s] is the number of
// non-reference alleles (0, 1 or 2) individual i carries at site s.
type Genotypes struct {
	N, S   int
	Counts []uint8
	Freqs  []float64 // p_s: population allele frequency per site
}

// Simulate draws a genotype matrix for n individuals over s sites.
// Site frequencies are uniform in [0.05, 0.95]; genotypes are binomial.
// A fraction of individuals are generated as relatives (copying half of
// another individual's genotype) so the matrix has off-diagonal
// structure worth measuring.
func Simulate(rng *rand.Rand, n, s int, relatedFraction float64) *Genotypes {
	g := &Genotypes{
		N:      n,
		S:      s,
		Counts: make([]uint8, n*s),
		Freqs:  make([]float64, s),
	}
	for site := 0; site < s; site++ {
		g.Freqs[site] = 0.05 + 0.9*rng.Float64()
	}
	for i := 0; i < n; i++ {
		if i > 0 && rng.Float64() < relatedFraction {
			// Child of individual i-1: inherit one allele per site.
			parent := i - 1
			for site := 0; site < s; site++ {
				p := g.Freqs[site]
				inherited := uint8(0)
				if pc := g.Counts[parent*s+site]; pc == 2 || (pc == 1 && rng.Intn(2) == 0) {
					inherited = 1
				}
				other := uint8(0)
				if rng.Float64() < p {
					other = 1
				}
				g.Counts[i*s+site] = inherited + other
			}
			continue
		}
		for site := 0; site < s; site++ {
			p := g.Freqs[site]
			c := uint8(0)
			if rng.Float64() < p {
				c++
			}
			if rng.Float64() < p {
				c++
			}
			g.Counts[i*s+site] = c
		}
	}
	return g
}

// Standardize converts genotypes to the Z matrix (N x S, row-major
// float64): z = (x - 2p) / sqrt(2p(1-p)).
func (g *Genotypes) Standardize() []float64 {
	z := make([]float64, g.N*g.S)
	inv := make([]float64, g.S)
	mean := make([]float64, g.S)
	for s := 0; s < g.S; s++ {
		p := g.Freqs[s]
		mean[s] = 2 * p
		inv[s] = 1 / math.Sqrt(2*p*(1-p))
	}
	for i := 0; i < g.N; i++ {
		row := z[i*g.S : (i+1)*g.S]
		counts := g.Counts[i*g.S : (i+1)*g.S]
		for s := range row {
			row[s] = (float64(counts[s]) - mean[s]) * inv[s]
		}
	}
	return z
}

// Compute builds the N x N relationship matrix with tile blocking.
// The result is symmetric; both triangles are filled.
// It panics on failure; cancellable callers use ComputeCtx.
func Compute(g *Genotypes, blockSize, threads int) ([]float64, uint64) {
	out, flops, err := ComputeCtx(context.Background(), g, blockSize, threads)
	if err != nil {
		panic(err)
	}
	return out, flops
}

// ComputeCtx is Compute with cooperative cancellation and a fault
// trip-point per tile.
func ComputeCtx(ctx context.Context, g *Genotypes, blockSize, threads int) ([]float64, uint64, error) {
	if blockSize <= 0 {
		blockSize = 64
	}
	z := g.Standardize()
	n, s := g.N, g.S
	out := make([]float64, n*n)
	nBlocks := (n + blockSize - 1) / blockSize
	// Upper-triangle tiles as independent tasks.
	type tile struct{ bi, bj int }
	var tiles []tile
	for bi := 0; bi < nBlocks; bi++ {
		for bj := bi; bj < nBlocks; bj++ {
			tiles = append(tiles, tile{bi, bj})
		}
	}
	var flops uint64
	flopsPer := make([]uint64, threadCount(threads))
	err := parallel.ForEachCtxErr(ctx, len(tiles), threads, func(tctx context.Context, w, ti int) error {
		if err := faultinject.Point(tctx); err != nil {
			return err
		}
		t := tiles[ti]
		i0, i1 := t.bi*blockSize, min(n, (t.bi+1)*blockSize)
		j0, j1 := t.bj*blockSize, min(n, (t.bj+1)*blockSize)
		var local uint64
		for i := i0; i < i1; i++ {
			zi := z[i*s : (i+1)*s]
			jStart := j0
			if t.bi == t.bj && j0 < i {
				jStart = i
			}
			for j := jStart; j < j1; j++ {
				zj := z[j*s : (j+1)*s]
				var acc float64
				for k := 0; k < s; k++ {
					acc += zi[k] * zj[k]
				}
				v := acc / float64(s)
				out[i*n+j] = v
				out[j*n+i] = v
				local += uint64(s)
			}
		}
		flopsPer[w] += local
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	for _, f := range flopsPer {
		flops += f
	}
	return out, flops, nil
}

// ComputeNaive is the unblocked O(N^2 S) baseline, provided for the
// blocking ablation; production use should call Compute.
func ComputeNaive(g *Genotypes) []float64 {
	z := g.Standardize()
	n, s := g.N, g.S
	out := make([]float64, n*n)
	for i := 0; i < n; i++ {
		zi := z[i*s : (i+1)*s]
		for j := 0; j < n; j++ {
			zj := z[j*s : (j+1)*s]
			var acc float64
			for k := 0; k < s; k++ {
				acc += zi[k] * zj[k]
			}
			out[i*n+j] = acc / float64(s)
		}
	}
	return out
}

func threadCount(threads int) int {
	if threads <= 0 {
		return 1
	}
	return threads
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// KernelResult aggregates a grm benchmark execution.
type KernelResult struct {
	N, S     int
	FLOPs    uint64
	Matrix   []float64
	Counters perf.Counters
}

// RunKernel computes the GRM and records its (very regular) op mix.
// It panics on failure; cancellable callers use RunKernelCtx.
func RunKernel(g *Genotypes, blockSize, threads int) KernelResult {
	res, err := RunKernelCtx(context.Background(), g, blockSize, threads)
	if err != nil {
		panic(err)
	}
	return res
}

// RunKernelCtx is RunKernel with cooperative cancellation and fault
// trip-points inside the tile loop.
func RunKernelCtx(ctx context.Context, g *Genotypes, blockSize, threads int) (KernelResult, error) {
	m, flops, err := ComputeCtx(ctx, g, blockSize, threads)
	if err != nil {
		return KernelResult{}, err
	}
	res := KernelResult{N: g.N, S: g.S, FLOPs: flops, Matrix: m}
	// Dense FMA-dominated multiply: mostly vector FP with streaming
	// loads (high retiring fraction, near-zero branches).
	res.Counters.Add(perf.VecOp, flops)
	res.Counters.Add(perf.FloatOp, flops/4)
	res.Counters.Add(perf.Load, flops/4)
	res.Counters.Add(perf.Store, uint64(g.N)*uint64(g.N)/8)
	res.Counters.Add(perf.Branch, flops/64)
	return res, nil
}
