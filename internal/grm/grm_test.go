package grm

import (
	"math"
	"math/rand"
	"testing"
)

// naiveGRM is the direct O(N^2 S) reference.
func naiveGRM(g *Genotypes) []float64 {
	out := make([]float64, g.N*g.N)
	for i := 0; i < g.N; i++ {
		for j := 0; j < g.N; j++ {
			var sum float64
			for s := 0; s < g.S; s++ {
				p := g.Freqs[s]
				xi := float64(g.Counts[i*g.S+s])
				xj := float64(g.Counts[j*g.S+s])
				sum += (xi - 2*p) * (xj - 2*p) / (2 * p * (1 - p))
			}
			out[i*g.N+j] = sum / float64(g.S)
		}
	}
	return out
}

func TestComputeMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := Simulate(rng, 17, 100, 0) // awkward size vs block
	got, flops := Compute(g, 8, 2)
	want := naiveGRM(g)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("element %d: %v vs %v", i, got[i], want[i])
		}
	}
	if flops == 0 {
		t.Error("no FLOPs counted")
	}
}

func TestMatrixSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := Simulate(rng, 30, 200, 0.2)
	m, _ := Compute(g, 16, 4)
	for i := 0; i < g.N; i++ {
		for j := 0; j < g.N; j++ {
			if m[i*g.N+j] != m[j*g.N+i] {
				t.Fatalf("asymmetry at (%d,%d)", i, j)
			}
		}
	}
}

func TestDiagonalNearOne(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := Simulate(rng, 50, 2000, 0)
	m, _ := Compute(g, 32, 2)
	var sum float64
	for i := 0; i < g.N; i++ {
		sum += m[i*g.N+i]
	}
	mean := sum / float64(g.N)
	// E[z^2] = 1 for Hardy-Weinberg genotypes standardized by true p.
	if mean < 0.8 || mean > 1.2 {
		t.Errorf("mean diagonal %v, want ~1", mean)
	}
}

func TestUnrelatedNearZeroOffDiagonal(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := Simulate(rng, 40, 5000, 0)
	m, _ := Compute(g, 32, 2)
	var sum float64
	var count int
	for i := 0; i < g.N; i++ {
		for j := i + 1; j < g.N; j++ {
			sum += math.Abs(m[i*g.N+j])
			count++
		}
	}
	mean := sum / float64(count)
	// Off-diagonal entries are O(1/sqrt(S)).
	if mean > 0.05 {
		t.Errorf("mean |off-diagonal| %v too large for unrelated individuals", mean)
	}
}

func TestRelativesShowKinship(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Force individual 1 to be the child of individual 0.
	g := Simulate(rng, 2, 8000, 1.0)
	m, _ := Compute(g, 32, 1)
	kinship := m[1] // G[0][1]
	// Parent-child kinship in GRM terms is ~0.5.
	if kinship < 0.3 || kinship > 0.7 {
		t.Errorf("parent-child relatedness %v, want ~0.5", kinship)
	}
}

func TestBlockSizesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := Simulate(rng, 25, 300, 0.1)
	a, _ := Compute(g, 4, 1)
	b, _ := Compute(g, 64, 3)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatalf("block size changed result at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRunKernelCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := Simulate(rng, 20, 100, 0)
	res := RunKernel(g, 16, 2)
	if res.FLOPs == 0 || res.Counters.Total() == 0 {
		t.Error("kernel did not count work")
	}
	fr := res.Counters.Fractions()
	// grm must be overwhelmingly vector/FP: the paper's most regular kernel.
	if fr[2] < 0.5 { // VecOp index
		t.Errorf("vector fraction %v too low for grm", fr[2])
	}
}

func TestSimulateGenotypeRange(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := Simulate(rng, 10, 100, 0.5)
	for _, c := range g.Counts {
		if c > 2 {
			t.Fatalf("genotype count %d out of range", c)
		}
	}
	for _, p := range g.Freqs {
		if p < 0.05 || p > 0.95 {
			t.Fatalf("allele frequency %v out of range", p)
		}
	}
}

func TestComputeNaiveMatchesBlocked(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := Simulate(rng, 23, 150, 0.2)
	blocked, _ := Compute(g, 8, 2)
	naive := ComputeNaive(g)
	for i := range naive {
		if math.Abs(blocked[i]-naive[i]) > 1e-9 {
			t.Fatalf("element %d: blocked %v, naive %v", i, blocked[i], naive[i])
		}
	}
}
