package lanes

// I16x16: the 16-wide int16 lane vector for the wide SIMD tier. Two
// I16x8s nest so the whole value still SSA-decomposes into registers
// (each I16x8 is two four-field quads); lanes 0-7 live in Lo, 8-15 in
// Hi. One I16x16 is exactly one AVX2 ymm register (VPADDSW/VPMAXSW/
// VPBLENDVB lanes) or one NEON q-register pair, which is why the poa
// and bsw wide row kernels speak this type: the portable methods here
// are the bit-level reference the asm row kernels are differential-
// tested against.
//
// Semantics the wide kernels rely on:
//
//   - Add/AddS wrap exactly like Go int16; Adds/AddsS/Subs/SubsS
//     saturate at ±32767/-32768, matching VPADDSW/VPSUBSW and SQADD/
//     SQSUB lane for lane. Under a kernel's range proof the two forms
//     agree (nothing wraps, nothing saturates), which is how the asm
//     kernels — saturating, for sentinel safety — stay bit-identical
//     to scalar int32 references that neither wrap nor clamp.
//   - Saturating subtraction of non-negative decrements composes
//     exactly: sat(sat(x-a)-b) == sat(x-(a+b)) for a,b >= 0. The
//     prefix-max gap chains in the wide kernels (log-step in asm,
//     serial in the portable twins) are value-identical because max
//     distributes over that clamp.
//   - CmpGt16 + Blend16 express the scalar cores' strict-greater
//     update as mask arithmetic, exactly like the I16x8 forms.

// WideWidth is the wide tier's lane count: one ymm register of int16,
// two NEON q-registers.
const WideWidth = 16

// I16x16 is a vector of sixteen int16 DP cells.
type I16x16 struct {
	Lo, Hi I16x8
}

// SplatI16x16 returns a wide vector with x in every lane.
func SplatI16x16(x int16) I16x16 {
	return I16x16{SplatI16(x), SplatI16(x)}
}

// FromArrayI16x16 builds an I16x16 from the array form (lane l = a[l]).
func FromArrayI16x16(a [WideWidth]int16) I16x16 {
	var lo, hi [Width]int16
	copy(lo[:], a[:Width])
	copy(hi[:], a[Width:])
	return I16x16{FromArrayI16(lo), FromArrayI16(hi)}
}

// Array returns the lanes in array form (tests and cold paths).
func (a I16x16) Array() [WideWidth]int16 {
	var out [WideWidth]int16
	lo, hi := a.Lo.Array(), a.Hi.Array()
	copy(out[:Width], lo[:])
	copy(out[Width:], hi[:])
	return out
}

// Load16I16 gathers sixteen consecutive values s[i..i+16) into an
// I16x16 — one VMOVDQU in the asm kernels.
func Load16I16(s []int16, i int) I16x16 {
	return I16x16{Load8I16(s, i), Load8I16(s, i+8)}
}

// Store16I16 scatters a into s[i..i+16).
func Store16I16(s []int16, i int, a I16x16) {
	Store8I16(s, i, a.Lo)
	Store8I16(s, i+8, a.Hi)
}

// Add returns a + b element-wise with Go's wrapping int16 semantics.
func (a I16x16) Add(b I16x16) I16x16 {
	return I16x16{a.Lo.Add(b.Lo), a.Hi.Add(b.Hi)}
}

// AddS returns a + s with a scalar broadcast to every lane (wrapping).
func (a I16x16) AddS(s int16) I16x16 {
	return I16x16{a.Lo.AddS(s), a.Hi.AddS(s)}
}

// Adds returns a + b element-wise, saturating at the int16 range —
// VPADDSW / SQADD.
func (a I16x16) Adds(b I16x16) I16x16 {
	return I16x16{a.Lo.Adds(b.Lo), a.Hi.Adds(b.Hi)}
}

// AddsS returns a + s with a scalar broadcast, saturating.
func (a I16x16) AddsS(s int16) I16x16 {
	return I16x16{a.Lo.AddsS(s), a.Hi.AddsS(s)}
}

// subsI16 is the scalar saturating subtract: the exact difference
// clamped to the int16 range.
func subsI16(a, b int16) int16 {
	d := int32(a) - int32(b)
	if d > 32767 {
		return 32767
	}
	if d < -32768 {
		return -32768
	}
	return int16(d)
}

// subsQuad applies subsI16 across one quad pair.
func subsQuad(a, b QuadI16) QuadI16 {
	return QuadI16{subsI16(a.A, b.A), subsI16(a.B, b.B), subsI16(a.C, b.C), subsI16(a.D, b.D)}
}

// Subs returns a - b element-wise, saturating at the int16 range —
// VPSUBSW / SQSUB.
func (a I16x16) Subs(b I16x16) I16x16 {
	return I16x16{
		I16x8{subsQuad(a.Lo.Lo, b.Lo.Lo), subsQuad(a.Lo.Hi, b.Lo.Hi)},
		I16x8{subsQuad(a.Hi.Lo, b.Hi.Lo), subsQuad(a.Hi.Hi, b.Hi.Hi)},
	}
}

// SubsS returns a - s with a scalar broadcast, saturating.
func (a I16x16) SubsS(s int16) I16x16 {
	return a.Subs(SplatI16x16(s))
}

// Max returns the element-wise maximum; lane l is a_l unless b_l >
// a_l, matching the scalar cores' strict-greater updates (and
// VPMAXSW / SMAX, for which the question is moot on ties).
func (a I16x16) Max(b I16x16) I16x16 {
	return I16x16{a.Lo.Max(b.Lo), a.Hi.Max(b.Hi)}
}

// CmpGt16 returns a per-lane mask with bit l set iff a_l > b_l.
func (a I16x16) CmpGt16(b I16x16) uint16 {
	return uint16(a.Lo.CmpGt(b.Lo)) | uint16(a.Hi.CmpGt(b.Hi))<<8
}

// Blend16 selects per lane by mask bit: lane l is on_l when bit l of
// mask is set, off_l otherwise — VPBLENDVB / BSL through an expanded
// word mask.
func Blend16(mask uint16, on, off I16x16) I16x16 {
	return I16x16{
		BlendI16(uint8(mask), on.Lo, off.Lo),
		BlendI16(uint8(mask>>8), on.Hi, off.Hi),
	}
}

// Pick16 broadcasts a two-value choice through a lane mask: lane l is
// on when bit l of mask is set, off otherwise. This is the wide
// kernels' match-mask expansion: sixteen dense seq2.MatchMaskBits
// bits become sixteen substitution scores in one call (the asm
// kernels do it with a broadcast + bit-test-against-constant +
// compare + blend over one register).
func Pick16(mask uint16, on, off int16) I16x16 {
	return I16x16{
		PickI16(uint8(mask), on, off),
		PickI16(uint8(mask>>8), on, off),
	}
}

// HMax returns the horizontal maximum across all sixteen lanes — the
// bsw wide kernel's row-max reduction.
func (a I16x16) HMax() int16 {
	m := a.Lo.Max(a.Hi)
	q := m.Lo
	if m.Hi.A > q.A {
		q.A = m.Hi.A
	}
	if m.Hi.B > q.B {
		q.B = m.Hi.B
	}
	if m.Hi.C > q.C {
		q.C = m.Hi.C
	}
	if m.Hi.D > q.D {
		q.D = m.Hi.D
	}
	if q.B > q.A {
		q.A = q.B
	}
	if q.C > q.A {
		q.A = q.C
	}
	if q.D > q.A {
		q.A = q.D
	}
	return q.A
}
