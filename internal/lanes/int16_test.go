package lanes

import (
	"math/rand"
	"testing"
)

// i16Edges are the saturation/overflow boundary values every pairwise
// int16 helper is exercised against, exhaustively.
var i16Edges = []int16{-32768, -32767, -16384, -1, 0, 1, 2, 16383, 32766, 32767}

func TestAddsI16Saturates(t *testing.T) {
	for _, a := range i16Edges {
		for _, b := range i16Edges {
			want := int32(a) + int32(b)
			if want > 32767 {
				want = 32767
			}
			if want < -32768 {
				want = -32768
			}
			got := SplatI16(a).Adds(SplatI16(b))
			for l, v := range got.Array() {
				if int32(v) != want {
					t.Fatalf("Adds(%d,%d) lane %d = %d, want %d", a, b, l, v, want)
				}
			}
			if g := SplatI16(a).AddsS(b); g != got {
				t.Fatalf("AddsS(%d,%d) = %v, want %v", a, b, g, got)
			}
		}
	}
}

func TestAddI16WrapsLikeScalar(t *testing.T) {
	for _, a := range i16Edges {
		for _, b := range i16Edges {
			want := a + b // Go's wrapping int16 add is the contract
			got := SplatI16(a).Add(SplatI16(b))
			for l, v := range got.Array() {
				if v != want {
					t.Fatalf("Add(%d,%d) lane %d = %d, want %d", a, b, l, v, want)
				}
			}
			if g := SplatI16(a).AddS(b); g != got {
				t.Fatalf("AddS(%d,%d) = %v, want %v", a, b, g, got)
			}
		}
	}
}

// TestCmpGtI16NoWraparound pins the comparison at the range boundary:
// 32767 > -32768 must hold even though their int16 difference wraps.
func TestCmpGtI16NoWraparound(t *testing.T) {
	for _, a := range i16Edges {
		for _, b := range i16Edges {
			wantBit := uint8(0)
			if a > b {
				wantBit = 1
			}
			mask := SplatI16(a).CmpGt(SplatI16(b))
			want := uint8(0)
			if wantBit == 1 {
				want = 0xff
			}
			if mask != want {
				t.Fatalf("CmpGt(%d,%d) = %02x, want %02x", a, b, mask, want)
			}
		}
	}
}

// TestBlendI16Exhaustive checks all 256 masks against distinct
// per-lane values: the selected value must be bit-exactly one input.
func TestBlendI16Exhaustive(t *testing.T) {
	var onA, offA [Width]int16
	for l := 0; l < Width; l++ {
		onA[l] = int16(100 + l)
		offA[l] = int16(-200 - l)
	}
	on, off := FromArrayI16(onA), FromArrayI16(offA)
	for mask := 0; mask < 256; mask++ {
		got := BlendI16(uint8(mask), on, off).Array()
		for l := 0; l < Width; l++ {
			want := offA[l]
			if mask>>l&1 == 1 {
				want = onA[l]
			}
			if got[l] != want {
				t.Fatalf("Blend(%02x) lane %d = %d, want %d", mask, l, got[l], want)
			}
		}
		pick := PickI16(uint8(mask), 7, -9).Array()
		for l := 0; l < Width; l++ {
			want := int16(-9)
			if mask>>l&1 == 1 {
				want = 7
			}
			if pick[l] != want {
				t.Fatalf("Pick(%02x) lane %d = %d, want %d", mask, l, pick[l], want)
			}
		}
	}
}

// TestMaxI16TieConvention: lane l must be a_l unless b_l is strictly
// greater — the first-operand-wins convention of the scalar cores —
// across the full edge-value cross product.
func TestMaxI16TieConvention(t *testing.T) {
	for _, a := range i16Edges {
		for _, b := range i16Edges {
			want := a
			if b > a {
				want = b
			}
			got := SplatI16(a).Max(SplatI16(b))
			for l, v := range got.Array() {
				if v != want {
					t.Fatalf("Max(%d,%d) lane %d = %d, want %d", a, b, l, v, want)
				}
			}
		}
	}
}

func TestLoadStoreI16RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := make([]int16, 64)
	for i := range s {
		s[i] = int16(rng.Intn(1 << 16))
	}
	for i := 0; i+Width <= len(s); i += 3 {
		v := Load8I16(s, i)
		arr := v.Array()
		for l := 0; l < Width; l++ {
			if arr[l] != s[i+l] {
				t.Fatalf("Load8I16 at %d lane %d = %d, want %d", i, l, arr[l], s[i+l])
			}
		}
		dst := make([]int16, len(s))
		Store8I16(dst, i, v)
		for l := 0; l < Width; l++ {
			if dst[i+l] != s[i+l] {
				t.Fatalf("Store8I16 at %d lane %d = %d, want %d", i, l, dst[i+l], s[i+l])
			}
		}
	}
}
