// Package lanes provides fixed-width float32 lane vectors for the
// suite's floating-point DP kernels. A Lane8 holds eight independent
// DP problems side by side — eight haplotypes of one read in phmm,
// eight band cells in abea — so one pass of the inner loop advances
// all of them at once. This is the inter-task vectorization the
// upstream tools (GATK's AVX PairHMM, f5c's per-band lanes) win their
// speedups with, expressed in portable Go: every helper is an explicit
// eight-element expression, fully unrolled by construction and
// branch-free, sized to inline into the kernels' inner loops.
//
// Layout note: Lane8 is a nested struct of two four-float quads, not
// a [8]float32. The Go compiler only SSA-decomposes structs of at
// most four fields (recursively) — arrays and wider structs live in
// memory, which would force every intermediate lane value through a
// stack slot. The quad nesting keeps whole DP cell updates in
// registers; A/B/.../H of Lo then Hi are lanes 0..7. The fields are
// exported so kernels can hand-schedule a cell update when the method
// chain would exceed the inliner's budget.
//
// Two properties the DP kernels rely on:
//
//   - Per-lane arithmetic is EXACTLY the scalar expression: lane l of
//     a.Mul(b) is a_l*b_l, with no reassociation, no fused
//     multiply-add, and no widening. Any rounding difference against a
//     scalar reference comes from the KERNEL's own restructuring (a
//     factored recurrence, an FMA emitted by the compiler on arm64),
//     never from these helpers; each kernel documents its resulting
//     tolerance and asserts it in a differential test (see
//     internal/phmm and internal/abea).
//   - Blend and Pick2 select through float bit masks (integer and/or
//     on Float32bits), not branches or table loads, so selection cost
//     is data-independent and the selected value is bit-exactly one of
//     the two inputs.
//   - LogSumExpApprox trades exactness for a committed error bound:
//     the pairwise log-sum-exp is within LogSumExpMaxError of
//     math.Log(exp(a)+exp(b)) (natural log), verified over the
//     approximation table's domain by the package tests.
package lanes

import (
	"math"
	"unsafe"
)

// Width is the lane count. Eight float32 values fill two SSE registers
// (or one AVX register); it is also GATK's AVX-float PairHMM batch
// width, which is why phmm groups haplotypes by eight.
const Width = 8

// Quad is four float32 lanes; two quads nest into a Lane8. Four fields
// is the compiler's struct SSA-decomposition limit, which is the whole
// reason this is not a flat eight-field struct or an array.
//
// Quad also carries its own arithmetic method set: a kernel whose cell
// update keeps too many Lane8 values live (amd64 has sixteen float
// registers and every lane costs one) can register-block the pass as
// two Quad sweeps — same lane grouping, half the live floats. The phmm
// forward pass does exactly this.
type Quad struct {
	A, B, C, D float32
}

// Load4 gathers four consecutive values s[i..i+4) into a Quad.
func Load4(s []float32, i int) Quad {
	_ = s[i+3]
	return Quad{s[i], s[i+1], s[i+2], s[i+3]}
}

// Store4 scatters q into s[i..i+4).
func Store4(s []float32, i int, q Quad) {
	_ = s[i+3]
	s[i] = q.A
	s[i+1] = q.B
	s[i+2] = q.C
	s[i+3] = q.D
}

// Load4U and Store4U are the unchecked forms of Load4/Store4 for the
// kernels' innermost loops, where the per-call bounds check is a
// measurable fraction of a DP column's budget (the rows are sized
// once per pass, so every in-loop check re-proves the same fact).
// p is the base of the row (&row[0]) and i the float offset; the
// CALLER owns the proof that i+4 <= len(row). Everything outside a
// kernel's inner loop uses the checked forms.

// Load4U gathers four consecutive floats at p[i..i+4) without bounds
// checks.
func Load4U(p *float32, i int) Quad {
	q := (*[4]float32)(unsafe.Add(unsafe.Pointer(p), uintptr(i)*4))
	return Quad{q[0], q[1], q[2], q[3]}
}

// Store4U scatters q into p[i..i+4) without bounds checks.
func Store4U(p *float32, i int, q Quad) {
	d := (*[4]float32)(unsafe.Add(unsafe.Pointer(p), uintptr(i)*4))
	d[0] = q.A
	d[1] = q.B
	d[2] = q.C
	d[3] = q.D
}

// Add returns a + b element-wise.
func (a Quad) Add(b Quad) Quad {
	return Quad{a.A + b.A, a.B + b.B, a.C + b.C, a.D + b.D}
}

// Mul returns a * b element-wise.
func (a Quad) Mul(b Quad) Quad {
	return Quad{a.A * b.A, a.B * b.B, a.C * b.C, a.D * b.D}
}

// Sub returns a - b element-wise.
func (a Quad) Sub(b Quad) Quad {
	return Quad{a.A - b.A, a.B - b.B, a.C - b.C, a.D - b.D}
}

// Div returns a / b element-wise. No reciprocal approximation: each
// lane performs the same IEEE division the scalar code would.
func (a Quad) Div(b Quad) Quad {
	return Quad{a.A / b.A, a.B / b.B, a.C / b.C, a.D / b.D}
}

// Scale returns a * s with a scalar broadcast to every lane.
func (a Quad) Scale(s float32) Quad {
	return Quad{a.A * s, a.B * s, a.C * s, a.D * s}
}

// Max returns the element-wise maximum with the first-operand-wins
// tie convention of the scalar cores.
func (a Quad) Max(b Quad) Quad {
	return Quad{maxf(a.A, b.A), maxf(a.B, b.B), maxf(a.C, b.C), maxf(a.D, b.D)}
}

// ScaleAdd2 returns a*s + b*t element-wise with every product and the
// sum rounded SEPARATELY. The composed form a.Scale(s).Add(b.Scale(t))
// computes the same reals, but after inlining it exposes a*s + b*t to
// the compiler, which the Go spec permits to fuse into a single-
// rounding FMA on architectures that have one (arm64). The explicit
// float32 conversions here pin each intermediate to float32, which the
// spec forbids fusing across — so this form has ONE rounding order on
// every architecture. On amd64 the conversions are no-ops and the
// generated code is identical to the composed form. Kernels whose
// assembly counterparts must be bit-identical across architectures
// (phmm's row update) use this instead of Scale/Add chains.
func (a Quad) ScaleAdd2(s float32, b Quad, t float32) Quad {
	return Quad{
		float32(a.A*s) + float32(b.A*t),
		float32(a.B*s) + float32(b.B*t),
		float32(a.C*s) + float32(b.C*t),
		float32(a.D*s) + float32(b.D*t),
	}
}

// Sel4 selects per lane through the low four bits of mask: lane l is
// on_l when bit l is set, off_l otherwise.
func Sel4(mask uint32, on, off Quad) Quad {
	return Quad{
		Sel(mask&1, on.A, off.A), Sel(mask>>1&1, on.B, off.B),
		Sel(mask>>2&1, on.C, off.C), Sel(mask>>3&1, on.D, off.D),
	}
}

// Pick4 broadcasts a two-value choice through the low four mask bits.
func Pick4(mask uint32, on, off float32) Quad {
	return Quad{
		Sel(mask&1, on, off), Sel(mask>>1&1, on, off),
		Sel(mask>>2&1, on, off), Sel(mask>>3&1, on, off),
	}
}

// Lane8 is a vector of eight independent float32 DP states: lanes 0-3
// in Lo.A..Lo.D, lanes 4-7 in Hi.A..Hi.D.
type Lane8 struct {
	Lo, Hi Quad
}

// Splat returns a lane vector with x in every lane.
func Splat(x float32) Lane8 {
	return Lane8{Quad{x, x, x, x}, Quad{x, x, x, x}}
}

// FromArray builds a Lane8 from the array form (lane l = a[l]).
func FromArray(a [Width]float32) Lane8 {
	return Lane8{Quad{a[0], a[1], a[2], a[3]}, Quad{a[4], a[5], a[6], a[7]}}
}

// Array returns the lanes in array form (for tests and cold paths).
func (a Lane8) Array() [Width]float32 {
	return [Width]float32{a.Lo.A, a.Lo.B, a.Lo.C, a.Lo.D, a.Hi.A, a.Hi.B, a.Hi.C, a.Hi.D}
}

// At returns lane l. Cold-path accessor: results extraction, tests.
func (a Lane8) At(l int) float32 {
	switch l {
	case 0:
		return a.Lo.A
	case 1:
		return a.Lo.B
	case 2:
		return a.Lo.C
	case 3:
		return a.Lo.D
	case 4:
		return a.Hi.A
	case 5:
		return a.Hi.B
	case 6:
		return a.Hi.C
	}
	return a.Hi.D
}

// Load8 gathers eight consecutive values s[i..i+8) into a Lane8.
func Load8(s []float32, i int) Lane8 {
	_ = s[i+7]
	return Lane8{
		Quad{s[i], s[i+1], s[i+2], s[i+3]},
		Quad{s[i+4], s[i+5], s[i+6], s[i+7]},
	}
}

// Store8 scatters a into s[i..i+8).
func Store8(s []float32, i int, a Lane8) {
	_ = s[i+7]
	s[i] = a.Lo.A
	s[i+1] = a.Lo.B
	s[i+2] = a.Lo.C
	s[i+3] = a.Lo.D
	s[i+4] = a.Hi.A
	s[i+5] = a.Hi.B
	s[i+6] = a.Hi.C
	s[i+7] = a.Hi.D
}

// Add returns a + b element-wise.
func (a Lane8) Add(b Lane8) Lane8 {
	return Lane8{
		Quad{a.Lo.A + b.Lo.A, a.Lo.B + b.Lo.B, a.Lo.C + b.Lo.C, a.Lo.D + b.Lo.D},
		Quad{a.Hi.A + b.Hi.A, a.Hi.B + b.Hi.B, a.Hi.C + b.Hi.C, a.Hi.D + b.Hi.D},
	}
}

// Mul returns a * b element-wise.
func (a Lane8) Mul(b Lane8) Lane8 {
	return Lane8{
		Quad{a.Lo.A * b.Lo.A, a.Lo.B * b.Lo.B, a.Lo.C * b.Lo.C, a.Lo.D * b.Lo.D},
		Quad{a.Hi.A * b.Hi.A, a.Hi.B * b.Hi.B, a.Hi.C * b.Hi.C, a.Hi.D * b.Hi.D},
	}
}

// Sub returns a - b element-wise.
func (a Lane8) Sub(b Lane8) Lane8 {
	return Lane8{
		Quad{a.Lo.A - b.Lo.A, a.Lo.B - b.Lo.B, a.Lo.C - b.Lo.C, a.Lo.D - b.Lo.D},
		Quad{a.Hi.A - b.Hi.A, a.Hi.B - b.Hi.B, a.Hi.C - b.Hi.C, a.Hi.D - b.Hi.D},
	}
}

// Div returns a / b element-wise.
func (a Lane8) Div(b Lane8) Lane8 {
	return Lane8{
		Quad{a.Lo.A / b.Lo.A, a.Lo.B / b.Lo.B, a.Lo.C / b.Lo.C, a.Lo.D / b.Lo.D},
		Quad{a.Hi.A / b.Hi.A, a.Hi.B / b.Hi.B, a.Hi.C / b.Hi.C, a.Hi.D / b.Hi.D},
	}
}

// Scale returns a * s with a scalar broadcast to every lane.
func (a Lane8) Scale(s float32) Lane8 {
	return Lane8{
		Quad{a.Lo.A * s, a.Lo.B * s, a.Lo.C * s, a.Lo.D * s},
		Quad{a.Hi.A * s, a.Hi.B * s, a.Hi.C * s, a.Hi.D * s},
	}
}

// AddS returns a + s with a scalar broadcast to every lane.
func (a Lane8) AddS(s float32) Lane8 {
	return Lane8{
		Quad{a.Lo.A + s, a.Lo.B + s, a.Lo.C + s, a.Lo.D + s},
		Quad{a.Hi.A + s, a.Hi.B + s, a.Hi.C + s, a.Hi.D + s},
	}
}

// maxf is the scalar two-way max with the DP kernels' tie convention:
// the FIRST operand wins ties (and NaN in b never replaces a), exactly
// the `v := stay; if step > v { v = step }` shape of the scalar cores.
func maxf(a, b float32) float32 {
	if b > a {
		return b
	}
	return a
}

// Max returns the element-wise maximum; lane l is a_l unless
// b_l > a_l, matching the scalar cores' strict-greater updates.
func (a Lane8) Max(b Lane8) Lane8 {
	return Lane8{
		Quad{maxf(a.Lo.A, b.Lo.A), maxf(a.Lo.B, b.Lo.B), maxf(a.Lo.C, b.Lo.C), maxf(a.Lo.D, b.Lo.D)},
		Quad{maxf(a.Hi.A, b.Hi.A), maxf(a.Hi.B, b.Hi.B), maxf(a.Hi.C, b.Hi.C), maxf(a.Hi.D, b.Hi.D)},
	}
}

// Sel selects one of two float32 values through a 0/1 bit without a
// branch or a table load: the bit is widened to an all-ones/all-zeros
// mask and applied to the float bit patterns, so the result is
// bit-exactly on (bit==1) or off (bit==0). This is the primitive the
// kernels' hand-scheduled blends are built from.
func Sel(bit uint32, on, off float32) float32 {
	msk := -bit // 0 or 0xffffffff
	return math.Float32frombits(math.Float32bits(on)&msk | math.Float32bits(off)&^msk)
}

// Blend selects per lane by mask bit: lane l is on_l when bit l of
// mask is set, off_l otherwise.
func Blend(mask uint8, on, off Lane8) Lane8 {
	m := uint32(mask)
	return Lane8{
		Quad{
			Sel(m&1, on.Lo.A, off.Lo.A), Sel(m>>1&1, on.Lo.B, off.Lo.B),
			Sel(m>>2&1, on.Lo.C, off.Lo.C), Sel(m>>3&1, on.Lo.D, off.Lo.D),
		},
		Quad{
			Sel(m>>4&1, on.Hi.A, off.Hi.A), Sel(m>>5&1, on.Hi.B, off.Hi.B),
			Sel(m>>6&1, on.Hi.C, off.Hi.C), Sel(m>>7&1, on.Hi.D, off.Hi.D),
		},
	}
}

// Pick2 broadcasts a two-value choice through a lane mask: lane l is
// on when bit l of mask is set, off otherwise. It is Blend for the
// common case where both sides are scalars — phmm's per-cell
// match/mismatch emission prior.
func Pick2(mask uint8, on, off float32) Lane8 {
	m := uint32(mask)
	return Lane8{
		Quad{Sel(m&1, on, off), Sel(m>>1&1, on, off), Sel(m>>2&1, on, off), Sel(m>>3&1, on, off)},
		Quad{Sel(m>>4&1, on, off), Sel(m>>5&1, on, off), Sel(m>>6&1, on, off), Sel(m>>7&1, on, off)},
	}
}

// HMax returns the horizontal maximum and the index of its FIRST
// occurrence, scanning lanes in ascending order with strict-greater
// updates — the same tie convention as the scalar band cores, so a
// lane-blocked argmax lands on the same cell as the scalar sweep.
func (a Lane8) HMax() (m float32, arg int) {
	arr := a.Array()
	m = arr[0]
	for l := 1; l < Width; l++ {
		if arr[l] > m {
			m, arg = arr[l], l
		}
	}
	return m, arg
}

// HSum returns the horizontal sum in ascending lane order.
func (a Lane8) HSum() float32 {
	return ((a.Lo.A + a.Lo.B) + (a.Lo.C + a.Lo.D)) + ((a.Hi.A + a.Hi.B) + (a.Hi.C + a.Hi.D))
}

// ---- log-sum-exp approximation ----

// The float DP kernels occasionally need log(exp(a)+exp(b)) — the
// sum-product counterpart of the Viterbi max in log space. The exact
// form costs an exp and a log1p per lane; the approximation below
// replaces both with one 256-entry table lookup plus a linear
// interpolation of f(d) = log(1+exp(-d)) on d in [0, lseCutoff],
// clamping to 0 beyond the cutoff where f < 2^-24 is unrepresentable
// against |max| anyway.

const (
	// lseCutoff is where f(d) drops below float32 significance.
	lseCutoff = 17.0
	// lseSteps is the interpolation table resolution.
	lseSteps = 256
	// LogSumExpMaxError is the committed absolute error bound of
	// LogSumExpApprox against the exact math.Log(math.Exp(a)+math.Exp(b)),
	// in natural-log units. The table's linear-interpolation error is
	// bounded by max f''·h²/8 = (1/4)·(17/256)²/8 ≈ 1.4e-4; the commit
	// rounds up for float32 evaluation noise. Verified by
	// TestLogSumExpErrorBound over a dense grid of lane pairs.
	LogSumExpMaxError = 5e-4
)

// lseTable[i] = log(1 + exp(-i·h)) for h = lseCutoff/lseSteps,
// built once at init from the float64 reference.
var lseTable [lseSteps + 1]float32

func init() {
	h := lseCutoff / float64(lseSteps)
	for i := range lseTable {
		lseTable[i] = float32(log1pexpRef(float64(i) * h))
	}
}

// log1pexpRef is the float64 reference for log(1+exp(-d)), d >= 0.
func log1pexpRef(d float64) float64 {
	// Direct form is stable for d >= 0.
	return math.Log1p(math.Exp(-d))
}

// log1pexp32 approximates log(1+exp(-d)) for d >= 0 by linear
// interpolation of lseTable; exact 0 beyond the cutoff.
func log1pexp32(d float32) float32 {
	const scale = float32(lseSteps) / float32(lseCutoff)
	x := d * scale
	i := int(x)
	if i >= lseSteps {
		return 0
	}
	frac := x - float32(i)
	lo := lseTable[i]
	return lo + frac*(lseTable[i+1]-lo)
}

// LogSumExp1 is the scalar pairwise log-sum-exp approximation:
// log(exp(a)+exp(b)) within LogSumExpMaxError, computed as
// max(a,b) + f(|a-b|) with the table-interpolated f. Infinities
// degrade gracefully: if either side is -Inf the other is returned.
func LogSumExp1(a, b float32) float32 {
	m, d := a, a-b
	if b > a {
		m, d = b, b-a
	}
	if d != d || d > lseCutoff { // NaN (from inf-inf) or negligible tail
		return m
	}
	return m + log1pexp32(d)
}

// LogSumExpApprox returns the element-wise pairwise log-sum-exp
// approximation of two lanes, each lane within LogSumExpMaxError of
// the exact value.
func LogSumExpApprox(a, b Lane8) Lane8 {
	return Lane8{
		Quad{
			LogSumExp1(a.Lo.A, b.Lo.A), LogSumExp1(a.Lo.B, b.Lo.B),
			LogSumExp1(a.Lo.C, b.Lo.C), LogSumExp1(a.Lo.D, b.Lo.D),
		},
		Quad{
			LogSumExp1(a.Hi.A, b.Hi.A), LogSumExp1(a.Hi.B, b.Hi.B),
			LogSumExp1(a.Hi.C, b.Hi.C), LogSumExp1(a.Hi.D, b.Hi.D),
		},
	}
}
