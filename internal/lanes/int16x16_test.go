package lanes

import (
	"math/rand"
	"testing"
)

// clamp32 is the reference saturation: exact int32 arithmetic clamped
// to the int16 range.
func clamp32(v int32) int16 {
	if v > 32767 {
		return 32767
	}
	if v < -32768 {
		return -32768
	}
	return int16(v)
}

// boundary is the exhaustive saturation-boundary operand set: both
// extremes, their neighbors, zero and its neighbors — every pairing
// that can wrap, saturate, or sit exactly on the rail.
var boundary = []int16{-32768, -32767, -32766, -16384, -2, -1, 0, 1, 2, 16383, 32766, 32767}

// spread builds a wide vector whose sixteen lanes cycle through the
// operand set starting at phase p, so one call covers sixteen distinct
// pairings.
func spread(vals []int16, p int) I16x16 {
	var a [WideWidth]int16
	for l := range a {
		a[l] = vals[(p+l)%len(vals)]
	}
	return FromArrayI16x16(a)
}

func TestI16x16SaturationBoundaries(t *testing.T) {
	// Exhaustive over boundary x boundary for the vector-vector forms,
	// phase-shifted so every lane position sees every pairing.
	for pa := range boundary {
		for pb := range boundary {
			a, b := spread(boundary, pa), spread(boundary, pb)
			aa, ba := a.Array(), b.Array()

			adds, subs := a.Adds(b).Array(), a.Subs(b).Array()
			add := a.Add(b).Array()
			for l := 0; l < WideWidth; l++ {
				if want := clamp32(int32(aa[l]) + int32(ba[l])); adds[l] != want {
					t.Fatalf("Adds lane %d: %d+%d = %d, want %d", l, aa[l], ba[l], adds[l], want)
				}
				if want := clamp32(int32(aa[l]) - int32(ba[l])); subs[l] != want {
					t.Fatalf("Subs lane %d: %d-%d = %d, want %d", l, aa[l], ba[l], subs[l], want)
				}
				if want := aa[l] + ba[l]; add[l] != want { // wrapping reference
					t.Fatalf("Add lane %d: %d+%d = %d, want wrapped %d", l, aa[l], ba[l], add[l], want)
				}
			}
		}
	}
	// Scalar-broadcast forms over the same exhaustive operand set.
	for pa := range boundary {
		a := spread(boundary, pa)
		aa := a.Array()
		for _, s := range boundary {
			addsS, subsS := a.AddsS(s).Array(), a.SubsS(s).Array()
			for l := 0; l < WideWidth; l++ {
				if want := clamp32(int32(aa[l]) + int32(s)); addsS[l] != want {
					t.Fatalf("AddsS lane %d: %d+%d = %d, want %d", l, aa[l], s, addsS[l], want)
				}
				if want := clamp32(int32(aa[l]) - int32(s)); subsS[l] != want {
					t.Fatalf("SubsS lane %d: %d-%d = %d, want %d", l, aa[l], s, subsS[l], want)
				}
			}
		}
	}
}

func TestI16x16SaturatingSubComposes(t *testing.T) {
	// The wide kernels' prefix chains rely on sat(sat(x-a)-b) ==
	// sat(x-(a+b)) for non-negative a, b with a+b in range.
	decs := []int16{0, 1, 7, 100, 8000, 16000}
	for pa := range boundary {
		x := spread(boundary, pa)
		for _, a := range decs {
			for _, b := range decs {
				if int32(a)+int32(b) > 32767 {
					continue
				}
				got := x.SubsS(a).SubsS(b).Array()
				want := x.SubsS(a + b).Array()
				if got != want {
					t.Fatalf("sat sub does not compose at a=%d b=%d: %v vs %v", a, b, got, want)
				}
			}
		}
	}
}

func TestI16x16BlendMaxExhaustiveLanePatterns(t *testing.T) {
	// Every one of the 65536 mask patterns, against lane-distinct
	// payloads so a crossed lane is visible.
	var onA, offA [WideWidth]int16
	for l := range onA {
		onA[l] = int16(1000 + l)
		offA[l] = int16(-1000 - l)
	}
	on, off := FromArrayI16x16(onA), FromArrayI16x16(offA)
	for m := 0; m < 1<<WideWidth; m++ {
		got := Blend16(uint16(m), on, off).Array()
		pick := Pick16(uint16(m), 7, -9).Array()
		for l := 0; l < WideWidth; l++ {
			if m>>l&1 == 1 {
				if got[l] != onA[l] || pick[l] != 7 {
					t.Fatalf("mask %04x lane %d: blend=%d pick=%d, want on", m, l, got[l], pick[l])
				}
			} else {
				if got[l] != offA[l] || pick[l] != -9 {
					t.Fatalf("mask %04x lane %d: blend=%d pick=%d, want off", m, l, got[l], pick[l])
				}
			}
		}
	}
	// Max over every per-lane ordering pattern: lane l of pattern m is
	// (a>b, a<b, a==b) driven by mask bits of two interleaved patterns.
	for m := 0; m < 1<<WideWidth; m++ {
		var aA, bA [WideWidth]int16
		for l := range aA {
			switch {
			case m>>l&1 == 1:
				aA[l], bA[l] = int16(l+1), int16(-l-1) // a wins
			case l%3 == 0:
				aA[l], bA[l] = int16(5), int16(5) // tie
			default:
				aA[l], bA[l] = int16(-l-1), int16(l+1) // b wins
			}
		}
		got := FromArrayI16x16(aA).Max(FromArrayI16x16(bA)).Array()
		for l := range aA {
			want := aA[l]
			if bA[l] > want {
				want = bA[l]
			}
			if got[l] != want {
				t.Fatalf("Max pattern %04x lane %d: got %d want %d", m, l, got[l], want)
			}
		}
	}
}

func TestI16x16CmpGtFullPrecision(t *testing.T) {
	// Comparison must not wrap at the int16 boundary: -32768 > 32767
	// must be false, 32767 > -32768 true.
	lo, hi := SplatI16x16(-32768), SplatI16x16(32767)
	if m := lo.CmpGt16(hi); m != 0 {
		t.Fatalf("-32768 > 32767 mask = %04x, want 0", m)
	}
	if m := hi.CmpGt16(lo); m != 0xffff {
		t.Fatalf("32767 > -32768 mask = %04x, want ffff", m)
	}
	rng := rand.New(rand.NewSource(7))
	for it := 0; it < 2000; it++ {
		var aA, bA [WideWidth]int16
		for l := range aA {
			aA[l], bA[l] = int16(rng.Int()), int16(rng.Int())
		}
		m := FromArrayI16x16(aA).CmpGt16(FromArrayI16x16(bA))
		for l := range aA {
			if (m>>l&1 == 1) != (aA[l] > bA[l]) {
				t.Fatalf("CmpGt16 lane %d: %d > %d mask bit %d", l, aA[l], bA[l], m>>l&1)
			}
		}
	}
}

func TestI16x16RoundTripAndHMax(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	s := make([]int16, 64)
	for it := 0; it < 500; it++ {
		for i := range s {
			s[i] = int16(rng.Int())
		}
		v := Load16I16(s, 3)
		if v.Array() != FromArrayI16x16(v.Array()).Array() {
			t.Fatal("FromArray/Array round trip broken")
		}
		out := make([]int16, 64)
		Store16I16(out, 3, v)
		for l := 0; l < WideWidth; l++ {
			if out[3+l] != s[3+l] {
				t.Fatalf("load/store lane %d mismatch", l)
			}
		}
		want := s[3]
		for l := 1; l < WideWidth; l++ {
			if s[3+l] > want {
				want = s[3+l]
			}
		}
		if got := v.HMax(); got != want {
			t.Fatalf("HMax = %d, want %d", got, want)
		}
	}
}
