// Measured 16-wide-vs-narrow dispatch floor for the wide SIMD tier.
//
// The wide (I16x16 / AVX2 / NEON) row kernels pay fixed setup per
// alignment — mask builds, ramp constants, one asm call per DP row —
// that the narrower paths skip, so tiny problems can lose to the
// narrow path even on hosts where the wide kernels scream. Where the
// break-even sits depends on the host, so it is measured once per
// process (and persisted per host class) instead of assumed: problems
// whose DP area falls below lanes.wide_min_work take the narrow path.
//
// The probe itself lives with the kernel that owns the heaviest wide
// sweep (poa registers it via SetWideProbe at init); binaries that
// link a wide consumer without a registered probe resolve to the
// default 0 — wide whenever eligible. Pin with
// GBENCH_TUNE_LANES_WIDE_MIN_WORK, or GBENCH_TUNE=off for the default.
package lanes

import "repro/internal/tuning"

// WideMinWorkCap bounds the probe's answer: a measurement can turn
// the wide tier off for small problems, not disable it wholesale.
// Exported so consumer tests can pin the floor to its ceiling.
const WideMinWorkCap = 1 << 15

// WideMinWork is the DP-area floor (rows x columns) below which wide
// consumers should prefer their narrow path.
var WideMinWork *tuning.Int

// wideProbeFn is installed by SetWideProbe before the tunable first
// resolves (package init order guarantees it: consumers import lanes).
var wideProbeFn func() int

func init() {
	WideMinWork = tuning.NewInt("lanes.wide_min_work", 0, 0, WideMinWorkCap, func() int {
		if wideProbeFn == nil {
			return 0
		}
		return wideProbeFn()
	})
}

// SetWideProbe installs the microprobe that measures the wide-vs-
// narrow break-even on this host. Call from a consumer package's
// init; the last registration wins, and the probe only runs if the
// tunable resolves without an env override or cached value.
func SetWideProbe(f func() int) { wideProbeFn = f }
