package lanes

import (
	"math"
	"math/rand"
	"testing"
)

func randLane(rng *rand.Rand, scale float32) Lane8 {
	var a [Width]float32
	for l := range a {
		a[l] = (rng.Float32() - 0.5) * 2 * scale
	}
	return FromArray(a)
}

// FromArray/Array/At must round-trip lane-for-lane; everything else in
// this file leans on them as the lane accessors.
func TestArrayRoundTrip(t *testing.T) {
	in := [Width]float32{1, -2, 3.5, 0, 7, -8.25, 9, 1e-7}
	a := FromArray(in)
	if got := a.Array(); got != in {
		t.Fatalf("Array() = %v, want %v", got, in)
	}
	for l := 0; l < Width; l++ {
		if a.At(l) != in[l] {
			t.Fatalf("At(%d) = %v, want %v", l, a.At(l), in[l])
		}
	}
}

func TestLoadStore8(t *testing.T) {
	s := []float32{9, 1, 2, 3, 4, 5, 6, 7, 8, 10}
	a := Load8(s, 1)
	want := [Width]float32{1, 2, 3, 4, 5, 6, 7, 8}
	if a.Array() != want {
		t.Fatalf("Load8 = %v, want %v", a.Array(), want)
	}
	dst := make([]float32, 10)
	Store8(dst, 2, a)
	for l := 0; l < Width; l++ {
		if dst[2+l] != want[l] {
			t.Fatalf("Store8 lane %d = %v, want %v", l, dst[2+l], want[l])
		}
	}
	if dst[0] != 0 || dst[1] != 0 {
		t.Fatal("Store8 wrote outside its span")
	}
}

// Every element-wise helper must compute exactly the scalar expression
// per lane: no reassociation, no widening.
func TestElementwiseMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 200; trial++ {
		a := randLane(rng, 100)
		b := randLane(rng, 100)
		av, bv := a.Array(), b.Array()
		s := (rng.Float32() - 0.5) * 10
		checks := []struct {
			name string
			got  Lane8
			want func(l int) float32
		}{
			{"Add", a.Add(b), func(l int) float32 { return av[l] + bv[l] }},
			{"Sub", a.Sub(b), func(l int) float32 { return av[l] - bv[l] }},
			{"Mul", a.Mul(b), func(l int) float32 { return av[l] * bv[l] }},
			{"Div", a.Div(b), func(l int) float32 { return av[l] / bv[l] }},
			{"Scale", a.Scale(s), func(l int) float32 { return av[l] * s }},
			{"AddS", a.AddS(s), func(l int) float32 { return av[l] + s }},
			{"Max", a.Max(b), func(l int) float32 {
				if bv[l] > av[l] {
					return bv[l]
				}
				return av[l]
			}},
			{"Splat", Splat(s), func(int) float32 { return s }},
		}
		for _, c := range checks {
			for l := 0; l < Width; l++ {
				if want := c.want(l); c.got.At(l) != want {
					t.Fatalf("trial %d: %s lane %d = %v, want %v", trial, c.name, l, c.got.At(l), want)
				}
			}
		}
	}
}

func TestBlendAndPick2(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for trial := 0; trial < 100; trial++ {
		on := randLane(rng, 10)
		off := randLane(rng, 10)
		mask := uint8(rng.Intn(256))
		got := Blend(mask, on, off)
		for l := 0; l < Width; l++ {
			want := off.At(l)
			if mask>>uint(l)&1 != 0 {
				want = on.At(l)
			}
			if got.At(l) != want {
				t.Fatalf("Blend(%08b) lane %d = %v, want %v", mask, l, got.At(l), want)
			}
		}
		x, y := rng.Float32(), rng.Float32()
		p := Pick2(mask, x, y)
		for l := 0; l < Width; l++ {
			want := y
			if mask>>uint(l)&1 != 0 {
				want = x
			}
			if p.At(l) != want {
				t.Fatalf("Pick2(%08b) lane %d = %v, want %v", mask, l, p.At(l), want)
			}
		}
	}
}

// Sel must return bit-exactly one of its inputs, including signed
// zeros and infinities — it is the primitive under every blend.
func TestSelBitExact(t *testing.T) {
	ninf := float32(math.Inf(-1))
	cases := []struct{ on, off float32 }{
		{1.5, -2.5},
		{0, float32(math.Copysign(0, -1))},
		{ninf, 3},
		{1e-38, 1e38},
	}
	for _, c := range cases {
		if got := Sel(1, c.on, c.off); math.Float32bits(got) != math.Float32bits(c.on) {
			t.Fatalf("Sel(1, %v, %v) = %v, want on", c.on, c.off, got)
		}
		if got := Sel(0, c.on, c.off); math.Float32bits(got) != math.Float32bits(c.off) {
			t.Fatalf("Sel(0, %v, %v) = %v, want off", c.on, c.off, got)
		}
	}
}

// HMax must land on the FIRST maximal lane (strict-greater updates),
// the tie convention the adaptive band's argmax depends on.
func TestHMaxFirstWinnerOnTies(t *testing.T) {
	a := FromArray([Width]float32{1, 3, 3, 2, 3, 0, -1, 3})
	m, arg := a.HMax()
	if m != 3 || arg != 1 {
		t.Fatalf("HMax = (%v, %d), want (3, 1)", m, arg)
	}
	neg := Splat(float32(math.Inf(-1)))
	if m, arg := neg.HMax(); arg != 0 || !math.IsInf(float64(m), -1) {
		t.Fatalf("all -inf HMax = (%v, %d), want (-inf, 0)", m, arg)
	}
}

func TestHSumOrder(t *testing.T) {
	a := FromArray([Width]float32{1e-7, 1, 2, 3, 4, 5, 6, 1e7})
	av := a.Array()
	want := ((av[0] + av[1]) + (av[2] + av[3])) + ((av[4] + av[5]) + (av[6] + av[7]))
	if got := a.HSum(); got != want {
		t.Fatalf("HSum = %v, want %v (pairwise sum)", got, want)
	}
}

// The committed contract: LogSumExpApprox is within LogSumExpMaxError
// (natural-log units) of the exact float64 log(exp(a)+exp(b)), over a
// dense grid spanning the table domain and beyond the cutoff.
func TestLogSumExpErrorBound(t *testing.T) {
	worst := 0.0
	for a := -40.0; a <= 5.0; a += 0.037 {
		for d := 0.0; d <= 25.0; d += 0.043 {
			b := a - d
			exact := math.Log(math.Exp(a) + math.Exp(b))
			got := float64(LogSumExp1(float32(a), float32(b)))
			if err := math.Abs(got - exact); err > worst {
				worst = err
			}
			// Symmetry: order of arguments must not matter.
			if sym := LogSumExp1(float32(b), float32(a)); sym != LogSumExp1(float32(a), float32(b)) {
				t.Fatalf("LogSumExp1 asymmetric at (%v, %v)", a, b)
			}
		}
	}
	if worst > LogSumExpMaxError {
		t.Fatalf("worst log-sum-exp error %.2e exceeds committed bound %.2e", worst, LogSumExpMaxError)
	}
	t.Logf("worst error %.2e (bound %.2e)", worst, LogSumExpMaxError)
}

func TestLogSumExpInfinities(t *testing.T) {
	ninf := float32(math.Inf(-1))
	if got := LogSumExp1(ninf, 2); got != 2 {
		t.Fatalf("lse(-inf, 2) = %v, want 2", got)
	}
	if got := LogSumExp1(2, ninf); got != 2 {
		t.Fatalf("lse(2, -inf) = %v, want 2", got)
	}
	if got := LogSumExp1(ninf, ninf); !math.IsInf(float64(got), -1) {
		t.Fatalf("lse(-inf, -inf) = %v, want -inf", got)
	}
	a := FromArray([Width]float32{0, 1, ninf, 2, ninf, -3, 4, 5})
	b := FromArray([Width]float32{0, ninf, 1, 2, ninf, -3, 3, 8})
	got := LogSumExpApprox(a, b)
	for l := 0; l < Width; l++ {
		if want := LogSumExp1(a.At(l), b.At(l)); got.At(l) != want {
			t.Fatalf("lane %d = %v, want %v", l, got.At(l), want)
		}
	}
}

// The lane ops the DP inner loops compose must stay allocation-free.
func TestLaneOpsZeroAlloc(t *testing.T) {
	a := Splat(1.5)
	b := Splat(2.5)
	var sink Lane8
	n := testing.AllocsPerRun(100, func() {
		m := a.Scale(0.25).Add(b.Scale(0.5)).Mul(b)
		m = m.Max(b.AddS(-1))
		m = Blend(0xa5, m, b)
		sink = m.Add(LogSumExpApprox(a, b))
	})
	_ = sink
	if n != 0 {
		t.Fatalf("AllocsPerRun = %v, want 0", n)
	}
}

func BenchmarkLaneMulAddChain(b *testing.B) {
	x := Splat(1.00001)
	y := Splat(0.99999)
	acc := Splat(1)
	for i := 0; i < b.N; i++ {
		acc = acc.Mul(x).Add(y.Scale(1e-9))
	}
	_ = acc
}
