package lanes

// Int16 lane vectors for the suite's integer DP kernels. An I16x8
// holds eight int16 DP cells side by side — eight consecutive columns
// of one poa graph-node row — so one pass of the inner loop advances
// all of them at once. Like the float32 Lane8, the type is a nested
// struct of two four-field quads so the compiler SSA-decomposes whole
// cell updates into registers, and every helper is a fully unrolled,
// branch-free eight-element expression.
//
// Two properties the integer DP kernels rely on:
//
//   - Add/AddS wrap exactly like Go int16 arithmetic; they are the
//     scalar expression per lane, nothing more. Kernels own the proof
//     that their operands stay in range (poa commits a per-window
//     bound before choosing the lane path and falls back to the
//     scalar int32 sweep when it fails). Adds/AddsS are the
//     saturating forms for callers that prefer clamping to wrapping
//     at the range boundary; saturation is a guard, not a semantics
//     change — a kernel that can saturate must not take the lane path.
//   - CmpGt + Blend implement the scalar cores' strict-greater update
//     (`if s > best { best = s }`) as mask arithmetic: CmpGt compares
//     in full int precision (no wraparound at the int16 boundary) and
//     Blend selects bit-exactly one of the two inputs per lane, so a
//     candidate loop over CmpGt/Blend visits candidates in the same
//     order, with the same first-winner ties, as the scalar loop.

// QuadI16 is four int16 lanes; two quads nest into an I16x8.
type QuadI16 struct {
	A, B, C, D int16
}

// I16x8 is a vector of eight int16 DP cells: lanes 0-3 in Lo.A..Lo.D,
// lanes 4-7 in Hi.A..Hi.D.
type I16x8 struct {
	Lo, Hi QuadI16
}

// SplatI16 returns a lane vector with x in every lane.
func SplatI16(x int16) I16x8 {
	return I16x8{QuadI16{x, x, x, x}, QuadI16{x, x, x, x}}
}

// FromArrayI16 builds an I16x8 from the array form (lane l = a[l]).
func FromArrayI16(a [Width]int16) I16x8 {
	return I16x8{QuadI16{a[0], a[1], a[2], a[3]}, QuadI16{a[4], a[5], a[6], a[7]}}
}

// Array returns the lanes in array form (for tests and cold paths).
func (a I16x8) Array() [Width]int16 {
	return [Width]int16{a.Lo.A, a.Lo.B, a.Lo.C, a.Lo.D, a.Hi.A, a.Hi.B, a.Hi.C, a.Hi.D}
}

// Load8I16 gathers eight consecutive values s[i..i+8) into an I16x8.
func Load8I16(s []int16, i int) I16x8 {
	_ = s[i+7]
	return I16x8{
		QuadI16{s[i], s[i+1], s[i+2], s[i+3]},
		QuadI16{s[i+4], s[i+5], s[i+6], s[i+7]},
	}
}

// Store8I16 scatters a into s[i..i+8).
func Store8I16(s []int16, i int, a I16x8) {
	_ = s[i+7]
	s[i] = a.Lo.A
	s[i+1] = a.Lo.B
	s[i+2] = a.Lo.C
	s[i+3] = a.Lo.D
	s[i+4] = a.Hi.A
	s[i+5] = a.Hi.B
	s[i+6] = a.Hi.C
	s[i+7] = a.Hi.D
}

// Add returns a + b element-wise with Go's wrapping int16 semantics.
func (a I16x8) Add(b I16x8) I16x8 {
	return I16x8{
		QuadI16{a.Lo.A + b.Lo.A, a.Lo.B + b.Lo.B, a.Lo.C + b.Lo.C, a.Lo.D + b.Lo.D},
		QuadI16{a.Hi.A + b.Hi.A, a.Hi.B + b.Hi.B, a.Hi.C + b.Hi.C, a.Hi.D + b.Hi.D},
	}
}

// AddS returns a + s with a scalar broadcast to every lane (wrapping).
func (a I16x8) AddS(s int16) I16x8 {
	return I16x8{
		QuadI16{a.Lo.A + s, a.Lo.B + s, a.Lo.C + s, a.Lo.D + s},
		QuadI16{a.Hi.A + s, a.Hi.B + s, a.Hi.C + s, a.Hi.D + s},
	}
}

// addsI16 is the scalar saturating add: the exact sum clamped to the
// int16 range instead of wrapped.
func addsI16(a, b int16) int16 {
	s := int32(a) + int32(b)
	if s > 32767 {
		return 32767
	}
	if s < -32768 {
		return -32768
	}
	return int16(s)
}

// Adds returns a + b element-wise with saturation at the int16 range.
func (a I16x8) Adds(b I16x8) I16x8 {
	return I16x8{
		QuadI16{addsI16(a.Lo.A, b.Lo.A), addsI16(a.Lo.B, b.Lo.B), addsI16(a.Lo.C, b.Lo.C), addsI16(a.Lo.D, b.Lo.D)},
		QuadI16{addsI16(a.Hi.A, b.Hi.A), addsI16(a.Hi.B, b.Hi.B), addsI16(a.Hi.C, b.Hi.C), addsI16(a.Hi.D, b.Hi.D)},
	}
}

// AddsS returns a + s with a scalar broadcast, saturating.
func (a I16x8) AddsS(s int16) I16x8 {
	return I16x8{
		QuadI16{addsI16(a.Lo.A, s), addsI16(a.Lo.B, s), addsI16(a.Lo.C, s), addsI16(a.Lo.D, s)},
		QuadI16{addsI16(a.Hi.A, s), addsI16(a.Hi.B, s), addsI16(a.Hi.C, s), addsI16(a.Hi.D, s)},
	}
}

// maxI16 is the scalar two-way max with the DP kernels' tie
// convention: the FIRST operand wins ties, exactly the
// `if s > best { best = s }` shape of the scalar cores.
func maxI16(a, b int16) int16 {
	if b > a {
		return b
	}
	return a
}

// Max returns the element-wise maximum; lane l is a_l unless
// b_l > a_l, matching the scalar cores' strict-greater updates.
func (a I16x8) Max(b I16x8) I16x8 {
	return I16x8{
		QuadI16{maxI16(a.Lo.A, b.Lo.A), maxI16(a.Lo.B, b.Lo.B), maxI16(a.Lo.C, b.Lo.C), maxI16(a.Lo.D, b.Lo.D)},
		QuadI16{maxI16(a.Hi.A, b.Hi.A), maxI16(a.Hi.B, b.Hi.B), maxI16(a.Hi.C, b.Hi.C), maxI16(a.Hi.D, b.Hi.D)},
	}
}

// gtBit returns 1 when a > b, comparing in int32 so lanes at the
// int16 boundary never wrap the comparison.
func gtBit(a, b int16) uint8 {
	// (b - a) is exact in int32; its sign bit is the comparison.
	return uint8(uint32(int32(b)-int32(a)) >> 31)
}

// CmpGt returns a per-lane mask with bit l set iff a_l > b_l — the
// strict-greater test the scalar DP update loops are built from.
func (a I16x8) CmpGt(b I16x8) uint8 {
	return gtBit(a.Lo.A, b.Lo.A) |
		gtBit(a.Lo.B, b.Lo.B)<<1 |
		gtBit(a.Lo.C, b.Lo.C)<<2 |
		gtBit(a.Lo.D, b.Lo.D)<<3 |
		gtBit(a.Hi.A, b.Hi.A)<<4 |
		gtBit(a.Hi.B, b.Hi.B)<<5 |
		gtBit(a.Hi.C, b.Hi.C)<<6 |
		gtBit(a.Hi.D, b.Hi.D)<<7
}

// selI16 selects one of two int16 values through a 0/1 bit without a
// branch: the bit widens to an all-ones/all-zeros mask applied to the
// raw bit patterns, so the result is bit-exactly on (bit==1) or off.
func selI16(bit uint32, on, off int16) int16 {
	msk := int16(-int32(bit)) // 0 or -1 (all ones)
	return on&msk | off&^msk
}

// BlendI16 selects per lane by mask bit: lane l is on_l when bit l of
// mask is set, off_l otherwise.
func BlendI16(mask uint8, on, off I16x8) I16x8 {
	m := uint32(mask)
	return I16x8{
		QuadI16{
			selI16(m&1, on.Lo.A, off.Lo.A), selI16(m>>1&1, on.Lo.B, off.Lo.B),
			selI16(m>>2&1, on.Lo.C, off.Lo.C), selI16(m>>3&1, on.Lo.D, off.Lo.D),
		},
		QuadI16{
			selI16(m>>4&1, on.Hi.A, off.Hi.A), selI16(m>>5&1, on.Hi.B, off.Hi.B),
			selI16(m>>6&1, on.Hi.C, off.Hi.C), selI16(m>>7&1, on.Hi.D, off.Hi.D),
		},
	}
}

// PickI16 broadcasts a two-value choice through a lane mask: lane l
// is on when bit l of mask is set, off otherwise. It is BlendI16 for
// the common case where both sides are scalars — poa's per-column
// match/mismatch substitution score.
func PickI16(mask uint8, on, off int16) I16x8 {
	m := uint32(mask)
	return I16x8{
		QuadI16{selI16(m&1, on, off), selI16(m>>1&1, on, off), selI16(m>>2&1, on, off), selI16(m>>3&1, on, off)},
		QuadI16{selI16(m>>4&1, on, off), selI16(m>>5&1, on, off), selI16(m>>6&1, on, off), selI16(m>>7&1, on, off)},
	}
}
