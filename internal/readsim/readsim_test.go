package readsim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/genome"
)

func testRef(t *testing.T, n int) *genome.Reference {
	t.Helper()
	return genome.NewReference(rand.New(rand.NewSource(1)), "ref", n, 0.1)
}

func TestShortReadsBasicProperties(t *testing.T) {
	ref := testRef(t, 10000)
	sim := New(7)
	cfg := DefaultShort()
	reads := sim.ShortReads(ref.Seq, -1, 50, cfg, "r")
	if len(reads) != 50 {
		t.Fatalf("got %d reads", len(reads))
	}
	for _, r := range reads {
		if len(r.Seq) != len(r.Qual) {
			t.Fatalf("read %s: seq %d vs qual %d", r.Name, len(r.Seq), len(r.Qual))
		}
		// Length can vary slightly due to indels.
		if len(r.Seq) < cfg.Length-10 || len(r.Seq) > cfg.Length+10 {
			t.Errorf("read %s length %d far from %d", r.Name, len(r.Seq), cfg.Length)
		}
		if r.RefPos < 0 || r.RefEnd > len(ref.Seq) {
			t.Errorf("read %s out-of-range coords %d..%d", r.Name, r.RefPos, r.RefEnd)
		}
		for _, q := range r.Qual {
			if q < 2 || q > 60 {
				t.Fatalf("quality %d out of range", q)
			}
		}
	}
}

func TestShortReadsErrorFreeMatchReference(t *testing.T) {
	ref := testRef(t, 5000)
	sim := New(3)
	cfg := ShortConfig{Length: 100, SubRate: 0, IndelRate: 0, MeanQual: 40, QualSpan: 0}
	reads := sim.ShortReads(ref.Seq, -1, 20, cfg, "r")
	for _, r := range reads {
		frag := ref.Seq[r.RefPos:r.RefEnd]
		want := frag
		if r.Reverse {
			want = frag.ReverseComplement()
		}
		if !r.Seq.Equal(want) {
			t.Fatalf("error-free read %s does not match its source fragment", r.Name)
		}
	}
}

func TestShortReadsErrorRateApprox(t *testing.T) {
	ref := testRef(t, 20000)
	sim := New(11)
	cfg := ShortConfig{Length: 151, SubRate: 0.05, IndelRate: 0, MeanQual: 30, QualSpan: 0}
	reads := sim.ShortReads(ref.Seq, -1, 200, cfg, "r")
	var mismatches, total int
	for _, r := range reads {
		frag := ref.Seq[r.RefPos:r.RefEnd]
		if r.Reverse {
			frag = frag.ReverseComplement()
		}
		for i := range r.Seq {
			if r.Seq[i] != frag[i] {
				mismatches++
			}
			total++
		}
	}
	rate := float64(mismatches) / float64(total)
	if math.Abs(rate-0.05) > 0.01 {
		t.Errorf("observed substitution rate %.4f, want ~0.05", rate)
	}
}

func TestLongReadsLengthDistribution(t *testing.T) {
	ref := testRef(t, 200000)
	sim := New(13)
	cfg := DefaultLong()
	reads := sim.LongReads(ref.Seq, -1, 100, cfg, "l")
	if len(reads) != 100 {
		t.Fatalf("got %d reads", len(reads))
	}
	var sum, minLen, maxLen int
	minLen = 1 << 30
	for _, r := range reads {
		n := len(r.Seq)
		sum += n
		if n < minLen {
			minLen = n
		}
		if n > maxLen {
			maxLen = n
		}
	}
	mean := float64(sum) / 100
	if mean < 4000 || mean > 16000 {
		t.Errorf("mean long-read length %.0f outside plausible band", mean)
	}
	if minLen == maxLen {
		t.Error("long-read lengths show no variation")
	}
}

func TestLongReadsErrorRate(t *testing.T) {
	ref := testRef(t, 100000)
	sim := New(17)
	cfg := DefaultLong()
	cfg.MeanLength = 3000
	reads := sim.LongReads(ref.Seq, -1, 30, cfg, "l")
	// Length difference from indels should be visible but bounded.
	for _, r := range reads {
		orig := r.RefEnd - r.RefPos
		drift := math.Abs(float64(len(r.Seq)-orig)) / float64(orig)
		if drift > 0.2 {
			t.Errorf("read %s length drift %.2f too large", r.Name, drift)
		}
	}
}

func TestCoverageReads(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ref := genome.NewReference(rng, "ref", 30000, 0)
	donor := genome.PlantVariants(rng, ref, 0.001, 0.0001)
	sim := New(19)
	reads := sim.CoverageReads(donor, 10, DefaultShort(), "cov")
	wantReads := int(10 * 30000 / 151)
	if len(reads) != wantReads {
		t.Errorf("got %d reads, want %d", len(reads), wantReads)
	}
	hapCounts := map[int]int{}
	for _, r := range reads {
		hapCounts[r.Hap]++
	}
	if hapCounts[0] == 0 || hapCounts[1] == 0 {
		t.Error("coverage reads missing a haplotype")
	}
}

func TestSimulatorDeterminism(t *testing.T) {
	ref := testRef(t, 5000)
	a := New(99).ShortReads(ref.Seq, -1, 10, DefaultShort(), "r")
	b := New(99).ShortReads(ref.Seq, -1, 10, DefaultShort(), "r")
	for i := range a {
		if !a[i].Seq.Equal(b[i].Seq) || a[i].RefPos != b[i].RefPos {
			t.Fatal("same seed produced different reads")
		}
	}
}

func TestReadName(t *testing.T) {
	if got := readName("r", 0); got != "r0" {
		t.Errorf("readName(r,0) = %s", got)
	}
	if got := readName("x-", 1234); got != "x-1234" {
		t.Errorf("readName(x-,1234) = %s", got)
	}
}

func TestShortReadsTooShortSource(t *testing.T) {
	sim := New(1)
	reads := sim.ShortReads(genome.MustFromString("ACGT"), -1, 5, DefaultShort(), "r")
	if len(reads) != 0 {
		t.Error("expected no reads from a too-short source")
	}
}
