package readsim

import (
	"math"

	"repro/internal/genome"
)

// Paired-end simulation: Illumina sequencers read both ends of a DNA
// fragment, giving two reads with a known insert-size distribution and
// opposite orientations (FR). Paired reads drive the rescue and
// duplicate-marking logic of short-read pipelines, and give aligners a
// second anchor in repeats.

// PairedConfig parameterizes fragment and read geometry.
type PairedConfig struct {
	Read        ShortConfig
	MeanInsert  int     // fragment length mean (outer distance)
	InsertSigma float64 // fragment length standard deviation
}

// DefaultPaired mirrors a standard 2x151 library with ~400 bp inserts.
func DefaultPaired() PairedConfig {
	return PairedConfig{Read: DefaultShort(), MeanInsert: 400, InsertSigma: 50}
}

// ReadPair is one fragment's two reads. R1 is the forward-strand read
// at the fragment's left end; R2 is the reverse-complement read at the
// right end (FR orientation).
type ReadPair struct {
	R1, R2   Read
	Fragment int // true fragment length
}

// PairedReads samples n fragments from src and returns their read
// pairs. Fragments shorter than twice the read length are resampled at
// the minimum workable size.
func (s *Simulator) PairedReads(src genome.Seq, hap, n int, cfg PairedConfig, namePrefix string) []ReadPair {
	rl := cfg.Read.Length
	pairs := make([]ReadPair, 0, n)
	if len(src) < 2*rl {
		return pairs
	}
	for i := 0; i < n; i++ {
		frag := int(float64(cfg.MeanInsert) + s.rng.NormFloat64()*cfg.InsertSigma)
		if frag < 2*rl {
			frag = 2 * rl
		}
		if frag > len(src) {
			frag = len(src)
		}
		start := s.rng.Intn(len(src) - frag + 1)
		// R1: forward read at the left end.
		leftTemplate := src[start : start+rl]
		seq1, qual1 := s.corrupt(leftTemplate, cfg.Read.SubRate, cfg.Read.IndelRate/2, cfg.Read.IndelRate/2, cfg.Read.MeanQual, cfg.Read.QualSpan)
		// R2: reverse-complement read at the right end.
		rightTemplate := src[start+frag-rl : start+frag].ReverseComplement()
		seq2, qual2 := s.corrupt(rightTemplate, cfg.Read.SubRate, cfg.Read.IndelRate/2, cfg.Read.IndelRate/2, cfg.Read.MeanQual, cfg.Read.QualSpan)
		name := readName(namePrefix, i)
		pairs = append(pairs, ReadPair{
			R1: Read{
				Name: name + "/1", Seq: seq1, Qual: qual1,
				RefPos: start, RefEnd: start + rl, Reverse: false, Hap: hap,
			},
			R2: Read{
				Name: name + "/2", Seq: seq2, Qual: qual2,
				RefPos: start + frag - rl, RefEnd: start + frag, Reverse: true, Hap: hap,
			},
			Fragment: frag,
		})
	}
	return pairs
}

// InsertStats summarizes the empirical insert-size distribution of a
// pair set — the statistic aligners estimate for rescue.
func InsertStats(pairs []ReadPair) (mean, stdev float64) {
	if len(pairs) == 0 {
		return 0, 0
	}
	for _, p := range pairs {
		mean += float64(p.Fragment)
	}
	mean /= float64(len(pairs))
	for _, p := range pairs {
		d := float64(p.Fragment) - mean
		stdev += d * d
	}
	stdev = math.Sqrt(stdev / float64(len(pairs)))
	return mean, stdev
}
