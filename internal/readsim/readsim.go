// Package readsim simulates sequencing reads from a genome, replacing
// the human datasets (SRR7733443 short reads, Nanopore WGS Consortium
// long reads) that GenomicsBench ships but which cannot be redistributed
// here. The simulators control exactly the statistical properties the
// kernels are sensitive to: read length, per-base error rate and type,
// base-quality distribution, and coverage.
package readsim

import (
	"math"
	"math/rand"

	"repro/internal/genome"
)

// Read is a simulated sequencing read.
type Read struct {
	Name    string
	Seq     genome.Seq
	Qual    []byte // Phred quality per base (not ASCII-offset)
	RefPos  int    // true sampling position on the reference/haplotype
	RefEnd  int    // one past the last reference base covered
	Reverse bool   // sampled from the reverse strand
	Hap     int    // haplotype of origin (0 or 1); -1 if from reference
}

// ShortConfig parameterizes Illumina-like reads: fixed length, low
// substitution-dominated error, high quality.
type ShortConfig struct {
	Length    int     // read length in bases (paper: 151)
	SubRate   float64 // substitution probability per base
	IndelRate float64 // insertion/deletion probability per base
	MeanQual  float64 // mean Phred quality
	QualSpan  float64 // quality jitter
}

// DefaultShort mirrors the paper's 151-base Illumina reads.
func DefaultShort() ShortConfig {
	return ShortConfig{Length: 151, SubRate: 0.002, IndelRate: 0.0002, MeanQual: 35, QualSpan: 6}
}

// LongConfig parameterizes ONT-like reads: log-normal length mixture and
// 5-15% errors split across substitutions and indels.
type LongConfig struct {
	MeanLength  int     // mean read length (paper reads: kilobases)
	MinLength   int     // floor on sampled lengths
	ErrorRate   float64 // total per-base error probability (0.05-0.15)
	InsFraction float64 // fraction of errors that are insertions
	DelFraction float64 // fraction of errors that are deletions
	LengthSigma float64 // log-normal sigma of the length distribution
	MeanQual    float64
	QualSpan    float64
}

// DefaultLong mirrors ONT-style reads with ~10% error.
func DefaultLong() LongConfig {
	return LongConfig{
		MeanLength: 8000, MinLength: 500,
		ErrorRate: 0.10, InsFraction: 0.3, DelFraction: 0.3,
		LengthSigma: 0.5, MeanQual: 12, QualSpan: 4,
	}
}

// Simulator draws reads from a genome (reference or donor haplotypes).
type Simulator struct {
	rng *rand.Rand
}

// New creates a simulator with its own seeded source.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// sampleQual draws a Phred quality clamped to [2, 60].
func (s *Simulator) sampleQual(mean, span float64) byte {
	q := mean + s.rng.NormFloat64()*span
	if q < 2 {
		q = 2
	}
	if q > 60 {
		q = 60
	}
	return byte(q)
}

// corrupt applies substitutions and indels to a perfect read fragment,
// returning the erroneous sequence and matching qualities. Error
// positions get depressed quality (the basecaller "knows" it is unsure),
// which matters for phmm's quality-weighted priors.
func (s *Simulator) corrupt(frag genome.Seq, subRate, insRate, delRate, meanQ, spanQ float64) (genome.Seq, []byte) {
	out := make(genome.Seq, 0, len(frag)+8)
	qual := make([]byte, 0, len(frag)+8)
	for _, b := range frag {
		r := s.rng.Float64()
		switch {
		case r < delRate:
			continue // base dropped
		case r < delRate+insRate:
			out = append(out, genome.Base(s.rng.Intn(4)), b)
			qual = append(qual, s.sampleQual(meanQ/2, spanQ), s.sampleQual(meanQ, spanQ))
		case r < delRate+insRate+subRate:
			alt := genome.Base(s.rng.Intn(3))
			if alt >= b {
				alt++
			}
			out = append(out, alt)
			qual = append(qual, s.sampleQual(meanQ/2, spanQ))
		default:
			out = append(out, b)
			qual = append(qual, s.sampleQual(meanQ, spanQ))
		}
	}
	return out, qual
}

// ShortReads samples n short reads uniformly from src (hap labels the
// sequence of origin; pass -1 for a plain reference).
func (s *Simulator) ShortReads(src genome.Seq, hap, n int, cfg ShortConfig, namePrefix string) []Read {
	reads := make([]Read, 0, n)
	if len(src) < cfg.Length {
		return reads
	}
	for i := 0; i < n; i++ {
		pos := s.rng.Intn(len(src) - cfg.Length + 1)
		frag := src[pos : pos+cfg.Length]
		reverse := s.rng.Intn(2) == 1
		template := frag
		if reverse {
			template = frag.ReverseComplement()
		}
		seq, qual := s.corrupt(template, cfg.SubRate, cfg.IndelRate/2, cfg.IndelRate/2, cfg.MeanQual, cfg.QualSpan)
		reads = append(reads, Read{
			Name:    readName(namePrefix, i),
			Seq:     seq,
			Qual:    qual,
			RefPos:  pos,
			RefEnd:  pos + cfg.Length,
			Reverse: reverse,
			Hap:     hap,
		})
	}
	return reads
}

// LongReads samples n long reads with log-normal lengths from src.
func (s *Simulator) LongReads(src genome.Seq, hap, n int, cfg LongConfig, namePrefix string) []Read {
	reads := make([]Read, 0, n)
	if len(src) < cfg.MinLength {
		return reads
	}
	mu := math.Log(float64(cfg.MeanLength)) - cfg.LengthSigma*cfg.LengthSigma/2
	subRate := cfg.ErrorRate * (1 - cfg.InsFraction - cfg.DelFraction)
	insRate := cfg.ErrorRate * cfg.InsFraction
	delRate := cfg.ErrorRate * cfg.DelFraction
	for i := 0; i < n; i++ {
		length := int(math.Exp(mu + s.rng.NormFloat64()*cfg.LengthSigma))
		if length < cfg.MinLength {
			length = cfg.MinLength
		}
		if length > len(src) {
			length = len(src)
		}
		pos := s.rng.Intn(len(src) - length + 1)
		frag := src[pos : pos+length]
		reverse := s.rng.Intn(2) == 1
		template := frag
		if reverse {
			template = frag.ReverseComplement()
		}
		seq, qual := s.corrupt(template, subRate, insRate, delRate, cfg.MeanQual, cfg.QualSpan)
		reads = append(reads, Read{
			Name:    readName(namePrefix, i),
			Seq:     seq,
			Qual:    qual,
			RefPos:  pos,
			RefEnd:  pos + length,
			Reverse: reverse,
			Hap:     hap,
		})
	}
	return reads
}

// CoverageReads samples enough short reads from both donor haplotypes to
// reach the requested mean coverage depth, as variant-calling kernels
// (dbg, phmm, pileup) require 30-50x coverage.
func (s *Simulator) CoverageReads(donor *genome.Donor, coverage float64, cfg ShortConfig, namePrefix string) []Read {
	total := int(coverage * float64(len(donor.Ref.Seq)) / float64(cfg.Length))
	perHap := total / 2
	reads := s.ShortReads(donor.Haps[0], 0, perHap, cfg, namePrefix+"h0-")
	reads = append(reads, s.ShortReads(donor.Haps[1], 1, total-perHap, cfg, namePrefix+"h1-")...)
	return reads
}

func readName(prefix string, i int) string {
	const digits = "0123456789"
	buf := []byte(prefix)
	if i == 0 {
		return string(append(buf, '0'))
	}
	start := len(buf)
	for i > 0 {
		buf = append(buf, digits[i%10])
		i /= 10
	}
	for l, r := start, len(buf)-1; l < r; l, r = l+1, r-1 {
		buf[l], buf[r] = buf[r], buf[l]
	}
	return string(buf)
}
