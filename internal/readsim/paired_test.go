package readsim

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/genome"
)

func TestPairedReadsGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := genome.NewReference(rng, "chr", 50_000, 0).Seq
	sim := New(2)
	cfg := DefaultPaired()
	pairs := sim.PairedReads(src, -1, 200, cfg, "frag")
	if len(pairs) != 200 {
		t.Fatalf("got %d pairs", len(pairs))
	}
	for _, p := range pairs {
		if p.R1.Reverse || !p.R2.Reverse {
			t.Fatal("FR orientation violated")
		}
		if p.R1.RefPos+p.Fragment != p.R2.RefEnd {
			t.Fatalf("fragment geometry wrong: R1 at %d, frag %d, R2 end %d",
				p.R1.RefPos, p.Fragment, p.R2.RefEnd)
		}
		if !strings.HasSuffix(p.R1.Name, "/1") || !strings.HasSuffix(p.R2.Name, "/2") {
			t.Fatal("mate naming wrong")
		}
		if p.Fragment < 2*cfg.Read.Length {
			t.Fatalf("fragment %d shorter than two reads", p.Fragment)
		}
	}
}

func TestPairedInsertDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	src := genome.NewReference(rng, "chr", 100_000, 0).Seq
	sim := New(4)
	cfg := DefaultPaired()
	pairs := sim.PairedReads(src, -1, 500, cfg, "f")
	mean, stdev := InsertStats(pairs)
	if math.Abs(mean-400) > 15 {
		t.Errorf("mean insert %.1f, want ~400", mean)
	}
	if stdev < 30 || stdev > 70 {
		t.Errorf("insert stdev %.1f, want ~50", stdev)
	}
}

func TestPairedErrorFreeMatchesSource(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src := genome.NewReference(rng, "chr", 20_000, 0).Seq
	sim := New(6)
	cfg := DefaultPaired()
	cfg.Read.SubRate = 0
	cfg.Read.IndelRate = 0
	pairs := sim.PairedReads(src, -1, 50, cfg, "f")
	for _, p := range pairs {
		want1 := src[p.R1.RefPos:p.R1.RefEnd]
		if !p.R1.Seq.Equal(want1) {
			t.Fatal("R1 does not match its fragment")
		}
		want2 := src[p.R2.RefPos:p.R2.RefEnd].ReverseComplement()
		if !p.R2.Seq.Equal(want2) {
			t.Fatal("R2 does not match its fragment")
		}
	}
}

func TestPairedShortSource(t *testing.T) {
	sim := New(7)
	if pairs := sim.PairedReads(genome.MustFromString("ACGT"), -1, 5, DefaultPaired(), "f"); len(pairs) != 0 {
		t.Error("expected no pairs from tiny source")
	}
}

func TestInsertStatsEmpty(t *testing.T) {
	if m, s := InsertStats(nil); m != 0 || s != 0 {
		t.Error("empty stats nonzero")
	}
}
