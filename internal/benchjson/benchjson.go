// Package benchjson defines the stable JSON schema the gbench-bench
// harness emits (BENCH_PR3.json) and the tolerance-based comparison
// used for CI regression gating. Each entry pairs a baseline variant
// (scalar / allocating) with its optimized counterpart (bit-parallel /
// pooled) for one kernel, so the file documents both absolute cost and
// the speedup the optimization is expected to hold.
package benchjson

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Schema identifies the report format; bump on breaking changes.
const Schema = "gbench-bench/v1"

// Metrics are one benchmark variant's measured costs.
type Metrics struct {
	Name        string  `json:"name"`          // benchmark name, e.g. "bsw/align/scalar"
	NsPerOp     float64 `json:"ns_per_op"`     // wall time per operation
	AllocsPerOp int64   `json:"allocs_per_op"` // heap allocations per operation
	BytesPerOp  int64   `json:"bytes_per_op"`  // heap bytes per operation
	Iterations  int     `json:"iterations"`    // b.N the measurement ran for
}

// Entry is one before/after benchmark pair.
type Entry struct {
	Kernel    string  `json:"kernel"` // e.g. "bsw"
	Pair      string  `json:"pair"`   // e.g. "align"
	Baseline  Metrics `json:"baseline"`
	Optimized Metrics `json:"optimized"`
	Speedup   float64 `json:"speedup"` // baseline ns / optimized ns
}

// Report is the top-level BENCH_PR3.json document.
type Report struct {
	Schema  string  `json:"schema"`
	Entries []Entry `json:"entries"`
}

// New returns an empty report with the current schema stamp.
func New() *Report { return &Report{Schema: Schema} }

// Add appends a pair, computing its speedup.
func (r *Report) Add(kernel, pair string, baseline, optimized Metrics) {
	e := Entry{Kernel: kernel, Pair: pair, Baseline: baseline, Optimized: optimized}
	if optimized.NsPerOp > 0 {
		e.Speedup = baseline.NsPerOp / optimized.NsPerOp
	}
	r.Entries = append(r.Entries, e)
}

// Find returns the entry for (kernel, pair), or nil.
func (r *Report) Find(kernel, pair string) *Entry {
	for i := range r.Entries {
		if r.Entries[i].Kernel == kernel && r.Entries[i].Pair == pair {
			return &r.Entries[i]
		}
	}
	return nil
}

// Write emits the report as indented JSON with entries in stable
// (kernel, pair) order, so committed baselines diff cleanly.
func Write(w io.Writer, r *Report) error {
	sort.SliceStable(r.Entries, func(i, j int) bool {
		if r.Entries[i].Kernel != r.Entries[j].Kernel {
			return r.Entries[i].Kernel < r.Entries[j].Kernel
		}
		return r.Entries[i].Pair < r.Entries[j].Pair
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Read parses and validates a report.
func Read(rd io.Reader) (*Report, error) {
	var r Report
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("benchjson: parse: %w", err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("benchjson: schema %q, want %q", r.Schema, Schema)
	}
	return &r, nil
}

// Regression is one comparison failure.
type Regression struct {
	Kernel string
	Pair   string
	Reason string
}

func (g Regression) String() string {
	return fmt.Sprintf("%s/%s: %s", g.Kernel, g.Pair, g.Reason)
}

// Compare checks current against baseline: every baseline pair must
// still exist, and its optimized variant must not have slowed down by
// more than the tolerance factor (tolerance 1.25 allows 25% slowdown;
// CI smoke runs use a generous factor because single-iteration timings
// are noisy). Returns the list of regressions, empty when clean.
func Compare(baseline, current *Report, tolerance float64) []Regression {
	if tolerance < 1 {
		tolerance = 1
	}
	var regs []Regression
	for i := range baseline.Entries {
		be := &baseline.Entries[i]
		ce := current.Find(be.Kernel, be.Pair)
		if ce == nil {
			regs = append(regs, Regression{be.Kernel, be.Pair, "pair missing from current report"})
			continue
		}
		if be.Optimized.NsPerOp > 0 && ce.Optimized.NsPerOp > be.Optimized.NsPerOp*tolerance {
			regs = append(regs, Regression{be.Kernel, be.Pair, fmt.Sprintf(
				"optimized path slowed %.0fns -> %.0fns/op (tolerance %.2fx)",
				be.Optimized.NsPerOp, ce.Optimized.NsPerOp, tolerance)})
		}
	}
	return regs
}
