// Package benchjson defines the stable JSON schema the gbench-bench
// harness emits (BENCH_PR3.json and its successors), the append-only
// BENCH_HISTORY.ndjson trajectory built from those reports, and the
// comparison/trend gates CI leans on. Each entry pairs a baseline
// variant (scalar / allocating) with its optimized counterpart
// (bit-parallel / pooled) for one kernel, so a report documents both
// absolute cost and the speedup the optimization is expected to hold;
// the history records how both evolve PR over PR.
package benchjson

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Schema identifies the report format; bump on breaking changes.
// Host, label, threads and note fields were added after PR5 — they are
// optional, so v1 files written before them still parse (their host is
// simply unknown).
const Schema = "gbench-bench/v1"

// Metrics are one benchmark variant's measured costs.
type Metrics struct {
	Name        string  `json:"name"`          // benchmark name, e.g. "bsw/align/scalar"
	NsPerOp     float64 `json:"ns_per_op"`     // wall time per operation
	AllocsPerOp int64   `json:"allocs_per_op"` // heap allocations per operation
	BytesPerOp  int64   `json:"bytes_per_op"`  // heap bytes per operation
	Iterations  int     `json:"iterations"`    // b.N the measurement ran for
}

// Host identifies the machine class a report was measured on. Thread
// pairs are only meaningful when NumCPU can actually exercise them,
// and trend comparisons are only meaningful within one host class —
// both gates consult this record.
type Host struct {
	OS         string `json:"os"`
	Arch       string `json:"arch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version,omitempty"`
	// SIMD is the cpufeat stamp active during measurement (detected
	// feature set plus any GBENCH_SIMD override), e.g. "sse2+avx2" or
	// "sse2+avx2 (GBENCH_SIMD=off)". A record measured with the SIMD
	// tier forced down is not comparable to one at full width, and this
	// field is how a reader (or a puzzled trend investigation) tells
	// them apart. Empty on records written before the field existed.
	SIMD string `json:"simd,omitempty"`
}

// Key renders the host class as a compact stable string, e.g.
// "linux/amd64/c1". GOMAXPROCS, the Go version and the SIMD stamp are
// provenance, not identity: the same box at a different GOMAXPROCS is
// still the same hardware.
func (h Host) Key() string {
	return fmt.Sprintf("%s/%s/c%d", h.OS, h.Arch, h.NumCPU)
}

// Entry is one before/after benchmark pair.
type Entry struct {
	Kernel    string  `json:"kernel"` // e.g. "bsw"
	Pair      string  `json:"pair"`   // e.g. "align"
	Threads   int     `json:"threads,omitempty"`
	Baseline  Metrics `json:"baseline"`
	Optimized Metrics `json:"optimized"`
	Speedup   float64 `json:"speedup"` // baseline ns / optimized ns
}

// ThreadCount returns the thread count a */threads pair was measured
// at: the recorded Threads field when present, else parsed from the
// optimized variant's ".../tN" name suffix (reports written before the
// field existed), else 0 for single-threaded pairs.
func (e *Entry) ThreadCount() int {
	if e.Threads > 0 {
		return e.Threads
	}
	name := e.Optimized.Name
	i := strings.LastIndexByte(name, '/')
	if i < 0 || i+2 > len(name) || name[i+1] != 't' {
		return 0
	}
	n, err := strconv.Atoi(name[i+2:])
	if err != nil || n < 1 {
		return 0
	}
	return n
}

// Report is the top-level document: one committed BENCH_PRn.json file,
// or one line of BENCH_HISTORY.ndjson.
type Report struct {
	Schema  string  `json:"schema"`
	Label   string  `json:"label,omitempty"` // e.g. "PR7"; set on history records
	Time    string  `json:"time,omitempty"`  // RFC3339 measurement time, provenance only
	Host    *Host   `json:"host,omitempty"`  // nil on pre-PR7 reports
	Note    string  `json:"note,omitempty"`  // e.g. "reconstructed from BENCH_PR3.json"
	Entries []Entry `json:"entries"`
}

// New returns an empty report with the current schema stamp.
func New() *Report { return &Report{Schema: Schema} }

// Add appends a pair, computing its speedup.
func (r *Report) Add(kernel, pair string, baseline, optimized Metrics) {
	e := Entry{Kernel: kernel, Pair: pair, Baseline: baseline, Optimized: optimized}
	if optimized.NsPerOp > 0 {
		e.Speedup = baseline.NsPerOp / optimized.NsPerOp
	}
	r.Entries = append(r.Entries, e)
}

// Find returns the entry for (kernel, pair), or nil.
func (r *Report) Find(kernel, pair string) *Entry {
	for i := range r.Entries {
		if r.Entries[i].Kernel == kernel && r.Entries[i].Pair == pair {
			return &r.Entries[i]
		}
	}
	return nil
}

// Validate checks the invariants every consumer of a report assumes:
// the schema stamp, unique (kernel, pair) keys, and finite positive
// timings. Duplicate pairs would silently shadow each other in Find
// and corrupt trend computation; a zero or non-finite ns_per_op would
// turn a speedup or a trend ratio into NaN/Inf. Read and AppendHistory
// both enforce this.
func (r *Report) Validate() error {
	if r.Schema != Schema {
		return fmt.Errorf("benchjson: schema %q, want %q", r.Schema, Schema)
	}
	seen := make(map[string]bool, len(r.Entries))
	for i := range r.Entries {
		e := &r.Entries[i]
		if e.Kernel == "" || e.Pair == "" {
			return fmt.Errorf("benchjson: entry %d: empty kernel/pair", i)
		}
		key := e.Kernel + "/" + e.Pair
		if seen[key] {
			return fmt.Errorf("benchjson: duplicate pair %s", key)
		}
		seen[key] = true
		for _, m := range []struct {
			side string
			v    float64
		}{{"baseline", e.Baseline.NsPerOp}, {"optimized", e.Optimized.NsPerOp}} {
			if math.IsNaN(m.v) || math.IsInf(m.v, 0) || m.v <= 0 {
				return fmt.Errorf("benchjson: %s: %s ns_per_op %v is not finite positive", key, m.side, m.v)
			}
		}
		if math.IsNaN(e.Speedup) || math.IsInf(e.Speedup, 0) || e.Speedup < 0 {
			return fmt.Errorf("benchjson: %s: speedup %v is not finite", key, e.Speedup)
		}
	}
	return nil
}

// Write emits the report as indented JSON with entries in stable
// (kernel, pair) order, so committed baselines diff cleanly.
func Write(w io.Writer, r *Report) error {
	sortEntries(r)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

func sortEntries(r *Report) {
	sort.SliceStable(r.Entries, func(i, j int) bool {
		if r.Entries[i].Kernel != r.Entries[j].Kernel {
			return r.Entries[i].Kernel < r.Entries[j].Kernel
		}
		return r.Entries[i].Pair < r.Entries[j].Pair
	})
}

// Read parses and validates a report.
func Read(rd io.Reader) (*Report, error) {
	var r Report
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("benchjson: parse: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// Regression is one comparison failure.
type Regression struct {
	Kernel string
	Pair   string
	Reason string
}

func (g Regression) String() string {
	return fmt.Sprintf("%s/%s: %s", g.Kernel, g.Pair, g.Reason)
}

// Skip is one pair the gate deliberately did not judge, with the
// reason — reported distinctly from a pass so a one-core host's ~1x
// thread pairs never masquerade as healthy scaling.
type Skip struct {
	Kernel string
	Pair   string
	Reason string
}

func (s Skip) String() string {
	return fmt.Sprintf("%s/%s: %s", s.Kernel, s.Pair, s.Reason)
}

// CompareOptions tunes CompareDetailed. Both tolerances are factors
// >= 1 (clamped): NsTolerance bounds how much slower the optimized
// variant's absolute ns/op may get; SpeedupTolerance bounds how far
// the speedup ratio may shrink. Gating both closes the two silent
// failure modes a single gate invites — a change that slows baseline
// and optimized equally holds its ratio while the absolute cost
// regresses, and a baseline-side improvement (or a reverted
// optimization) collapses the ratio while absolute cost looks fine.
type CompareOptions struct {
	NsTolerance      float64
	SpeedupTolerance float64
}

// CompareResult separates judged failures from pairs the gate could
// not meaningfully judge on this host.
type CompareResult struct {
	Regressions []Regression
	Skipped     []Skip
}

// Compare checks current against baseline with the same factor for
// both gates: every baseline pair must still exist, its optimized
// variant must not have slowed by more than the tolerance, and its
// speedup must not have shrunk by more than the tolerance.
func Compare(baseline, current *Report, tolerance float64) []Regression {
	return CompareDetailed(baseline, current, CompareOptions{
		NsTolerance:      tolerance,
		SpeedupTolerance: tolerance,
	}).Regressions
}

// CompareDetailed is Compare with independent tolerances and skip
// accounting. Thread-axis pairs are skipped (not passed) when the
// current host's core count cannot exercise the pair's thread count —
// on a one-core host a */threads ratio is an oversubscription artifact,
// not a measurement.
func CompareDetailed(baseline, current *Report, opt CompareOptions) CompareResult {
	if opt.NsTolerance < 1 {
		opt.NsTolerance = 1
	}
	if opt.SpeedupTolerance < 1 {
		opt.SpeedupTolerance = 1
	}
	var res CompareResult
	for i := range baseline.Entries {
		be := &baseline.Entries[i]
		ce := current.Find(be.Kernel, be.Pair)
		if ce == nil {
			res.Regressions = append(res.Regressions, Regression{be.Kernel, be.Pair, "pair missing from current report"})
			continue
		}
		if reason, skip := skipReason(ce, current.Host); skip {
			res.Skipped = append(res.Skipped, Skip{be.Kernel, be.Pair, reason})
			continue
		}
		var reasons []string
		if be.Optimized.NsPerOp > 0 && ce.Optimized.NsPerOp > be.Optimized.NsPerOp*opt.NsTolerance {
			reasons = append(reasons, fmt.Sprintf(
				"optimized path slowed %.0fns -> %.0fns/op (tolerance %.2fx)",
				be.Optimized.NsPerOp, ce.Optimized.NsPerOp, opt.NsTolerance))
		}
		if be.Speedup > 0 && ce.Speedup > 0 && ce.Speedup < be.Speedup/opt.SpeedupTolerance {
			reasons = append(reasons, fmt.Sprintf(
				"speedup shrank %.2fx -> %.2fx (tolerance %.2fx)",
				be.Speedup, ce.Speedup, opt.SpeedupTolerance))
		}
		if len(reasons) > 0 {
			res.Regressions = append(res.Regressions, Regression{be.Kernel, be.Pair, strings.Join(reasons, "; ")})
		}
	}
	return res
}

// skipReason reports whether an entry's measurement is meaningless on
// the host that produced it. Unknown hosts (pre-PR7 reports) are
// assumed capable, preserving the old gate's behavior on old files.
func skipReason(e *Entry, h *Host) (string, bool) {
	t := e.ThreadCount()
	if t <= 1 || h == nil {
		return "", false
	}
	if h.NumCPU < t {
		return fmt.Sprintf("thread pair needs %d cores, host %s has %d", t, h.Key(), h.NumCPU), true
	}
	return "", false
}
