package benchjson

import (
	"bytes"
	"strings"
	"testing"
)

func sample() *Report {
	r := New()
	r.Add("bsw", "align",
		Metrics{Name: "bsw/align/scalar", NsPerOp: 110000, AllocsPerOp: 2, Iterations: 100},
		Metrics{Name: "bsw/align/packed", NsPerOp: 62000, AllocsPerOp: 0, Iterations: 100})
	r.Add("phmm", "region",
		Metrics{Name: "phmm/region/alloc", NsPerOp: 500000, AllocsPerOp: 338, Iterations: 50},
		Metrics{Name: "phmm/region/pooled", NsPerOp: 480000, AllocsPerOp: 0, Iterations: 50})
	return r
}

func TestRoundTrip(t *testing.T) {
	r := sample()
	var buf bytes.Buffer
	if err := Write(&buf, r); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != Schema || len(got.Entries) != 2 {
		t.Fatalf("round trip: %+v", got)
	}
	e := got.Find("bsw", "align")
	if e == nil || e.Optimized.NsPerOp != 62000 || e.Baseline.AllocsPerOp != 2 {
		t.Fatalf("entry mangled: %+v", e)
	}
	if e.Speedup < 1.7 || e.Speedup > 1.8 {
		t.Fatalf("speedup = %v, want ~1.77", e.Speedup)
	}
}

func TestReadRejectsWrongSchema(t *testing.T) {
	if _, err := Read(strings.NewReader(`{"schema":"other/v9","entries":[]}`)); err == nil {
		t.Fatal("wrong schema accepted")
	}
	if _, err := Read(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestWriteStableOrder(t *testing.T) {
	r := New()
	r.Add("poa", "consensus", Metrics{NsPerOp: 1}, Metrics{NsPerOp: 1})
	r.Add("abea", "align", Metrics{NsPerOp: 1}, Metrics{NsPerOp: 1})
	var buf bytes.Buffer
	if err := Write(&buf, r); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if strings.Index(s, `"abea"`) > strings.Index(s, `"poa"`) {
		t.Fatalf("entries not sorted by kernel:\n%s", s)
	}
}

func TestCompareClean(t *testing.T) {
	base := sample()
	cur := sample()
	// Slightly slower, within tolerance.
	cur.Find("bsw", "align").Optimized.NsPerOp = 70000
	if regs := Compare(base, cur, 1.25); len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
}

func TestCompareFlagsSlowdown(t *testing.T) {
	base := sample()
	cur := sample()
	cur.Find("bsw", "align").Optimized.NsPerOp = 200000 // > 1.25x of 62000
	regs := Compare(base, cur, 1.25)
	if len(regs) != 1 || regs[0].Kernel != "bsw" || regs[0].Pair != "align" {
		t.Fatalf("regressions = %v", regs)
	}
	// The same slowdown passes under a generous CI-smoke tolerance.
	if regs := Compare(base, cur, 10); len(regs) != 0 {
		t.Fatalf("generous tolerance still flagged: %v", regs)
	}
}

func TestCompareFlagsMissingPair(t *testing.T) {
	base := sample()
	cur := New()
	cur.Entries = append(cur.Entries, base.Entries[0])
	regs := Compare(base, cur, 10)
	if len(regs) != 1 || !strings.Contains(regs[0].String(), "missing") {
		t.Fatalf("regressions = %v", regs)
	}
}

func TestCompareClampsTolerance(t *testing.T) {
	base := sample()
	cur := sample()
	// tolerance < 1 is clamped to 1: equal timings must still pass.
	if regs := Compare(base, cur, 0.5); len(regs) != 0 {
		t.Fatalf("clamped tolerance flagged equal reports: %v", regs)
	}
}
